package avtmor

import (
	"errors"
	"fmt"
	"io"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
)

// System wire format (versioned, little-endian) — the request-body twin
// of the ROM format in romio.go, so a client can build a System once,
// serialize it, and POST the bytes to a reduction daemon instead of
// re-shipping a netlist:
//
//	magic   [8]byte  "AVTMSYS\x00"
//	version uint32   currently 1
//	desc    string   (uint32 length + bytes; the Description summary)
//	system  QLDAE body: n uint64, presence byte per matrix
//	        (G1, G1S, G2, G3, D1, then B and L unconditionally)
//
// The QLDAE body encoding is byte-identical to the reduced-system
// section of the ROM format (the two formats share one codec), and
// every float64 travels as its exact IEEE-754 bits: a WriteTo →
// ReadSystem round trip reproduces the same Fingerprint, so a
// serialized system dedupes against its in-process twin in every
// Reducer and store key.

var systemMagic = [8]byte{'A', 'V', 'T', 'M', 'S', 'Y', 'S', 0}

// systemFormatVersion is bumped on any wire-format change; readers
// reject versions they do not understand.
const systemFormatVersion = 1

// ErrBadSystemMagic is returned by ReadSystem when the stream does not
// start with the System magic header (corrupted or foreign data — for
// example a netlist, which callers may then try to parse as text).
var ErrBadSystemMagic = errors.New("avtmor: not a serialized System (bad magic header)")

// ErrSystemVersion is returned by ReadSystem for a well-formed header
// whose format version this build does not support.
var ErrSystemVersion = errors.New("avtmor: unsupported System format version")

// systemBody serializes the QLDAE matrices — shared verbatim between
// the ROM format's reduced-system section and the System format.
func (cw *countingWriter) systemBody(sys *qldae.System) {
	cw.u64(uint64(sys.N))
	writePresent := func(present bool, emit func()) {
		if present {
			cw.write([]byte{1})
			emit()
		} else {
			cw.write([]byte{0})
		}
	}
	writePresent(sys.G1 != nil, func() { cw.dense(sys.G1) })
	writePresent(sys.G1S != nil, func() { cw.csr(sys.G1S) })
	writePresent(sys.G2 != nil, func() { cw.csr(sys.G2) })
	writePresent(sys.G3 != nil, func() { cw.csr(sys.G3) })
	writePresent(sys.D1 != nil, func() {
		cw.u64(uint64(len(sys.D1)))
		for _, d := range sys.D1 {
			writePresent(d != nil, func() { cw.dense(d) })
		}
	})
	cw.dense(sys.B)
	cw.dense(sys.L)
}

// systemBody deserializes the QLDAE matrices. The returned system is
// never nil; failure is reported through cr.err, and the caller must
// check it before trusting (or Validate-ing) the result.
func (cr *countingReader) systemBody() *qldae.System {
	sys := &qldae.System{N: cr.dim()}
	if cr.byte() != 0 {
		sys.G1 = cr.dense()
	}
	if cr.byte() != 0 {
		sys.G1S = cr.csr()
	}
	if cr.byte() != 0 {
		sys.G2 = cr.csr()
	}
	if cr.byte() != 0 {
		sys.G3 = cr.csr()
	}
	if cr.byte() != 0 {
		blocks := cr.dim()
		if cr.err == nil {
			// Grown by append: each block costs at least one presence
			// byte in the stream, so a corrupted count fails on read
			// instead of provoking a huge upfront allocation.
			c := blocks
			if c > readAllocCap {
				c = readAllocCap
			}
			sys.D1 = make([]*mat.Dense, 0, c)
			for i := 0; i < blocks && cr.err == nil; i++ {
				var d *mat.Dense
				if cr.byte() != 0 {
					d = cr.dense()
				}
				sys.D1 = append(sys.D1, d)
			}
		}
	}
	sys.B = cr.dense()
	sys.L = cr.dense()
	return sys
}

// WriteTo serializes the System in the versioned binary format — the
// request-body form accepted by the serve package's POST /v1/reduce in
// place of a netlist. It implements io.WriterTo.
func (s *System) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	cw.write(systemMagic[:])
	cw.u32(systemFormatVersion)
	cw.str(s.desc)
	cw.systemBody(s.sys)
	return cw.n, cw.err
}

// ReadSystem deserializes a System previously written by WriteTo.
// Exactly the System's bytes are consumed (no read-ahead). The loaded
// system validates like a built one and reproduces the original
// Fingerprint bit for bit, so it is cache-equivalent to the instance
// that was serialized.
func ReadSystem(r io.Reader) (*System, error) {
	cr := &countingReader{r: r}
	var magic [8]byte
	cr.read(magic[:])
	if cr.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSystemMagic, cr.err)
	}
	if magic != systemMagic {
		return nil, ErrBadSystemMagic
	}
	if v := cr.u32(); cr.err == nil && v != systemFormatVersion {
		return nil, fmt.Errorf("%w: stream has v%d, this build reads v%d", ErrSystemVersion, v, systemFormatVersion)
	}
	desc := cr.str()
	sys := cr.systemBody()
	if cr.err != nil {
		return nil, fmt.Errorf("avtmor: truncated or corrupted System stream: %w", cr.err)
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("avtmor: deserialized System is inconsistent: %w", err)
	}
	return wrapSystem(sys, desc), nil
}
