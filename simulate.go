package avtmor

import (
	"context"
	"fmt"

	"avtmor/internal/ode"
	"avtmor/internal/qldae"
	"avtmor/internal/solver"
)

// Input is a vector-valued input signal u(t); it must return a slice
// of length Inputs().
type Input func(t float64) []float64

// ConstInput wraps a constant input vector.
func ConstInput(u []float64) Input {
	return func(float64) []float64 { return u }
}

// Result is a recorded trajectory: outputs Y[k] at times T[k].
type Result struct {
	T []float64
	Y [][]float64
	// Steps counts accepted integrator steps; Rejected counts adaptive
	// rejections; NewtonIters counts total Newton iterations (implicit
	// methods only).
	Steps, Rejected, NewtonIters int

	res *ode.Result
}

func wrapResult(r *ode.Result) *Result {
	return &Result{T: r.T, Y: r.Y, Steps: r.Steps, Rejected: r.Rejected, NewtonIters: r.NewtonIters, res: r}
}

// OutputAt linearly interpolates output channel ch at time t.
func (r *Result) OutputAt(t float64, ch int) float64 { return r.res.OutputAt(t, ch) }

// MaxRelErr returns the maximum pointwise relative error of output
// channel ch between a reference and an approximate trajectory,
// normalized by the reference peak (the paper's relative-error
// convention, well behaved near zero crossings).
func MaxRelErr(ref, approx *Result, ch int) float64 {
	return ode.MaxRelErr(ref.res, approx.res, ch)
}

type simMethod int

const (
	simRK4 simMethod = iota
	simTrapezoidal
	simDopri5
)

type simConfig struct {
	method     simMethod
	steps      int
	rtol, atol float64
	solver     SolverKind
	forced     bool // a solver was explicitly selected
	x0         []float64
}

// SimOption configures a Simulate call.
type SimOption func(*simConfig)

// WithRK4 selects the classical fixed-step fourth-order Runge–Kutta
// integrator with the given step count (the default, 4000 steps).
func WithRK4(steps int) SimOption {
	return func(c *simConfig) { c.method, c.steps = simRK4, steps }
}

// WithTrapezoidal selects the implicit trapezoidal rule with Newton
// iteration — the right choice for stiff systems. The Newton matrix is
// factored once per step through the solver layer (sparse assembly for
// large CSR-mirrored systems).
func WithTrapezoidal(steps int) SimOption {
	return func(c *simConfig) { c.method, c.steps = simTrapezoidal, steps }
}

// WithDopri5 selects the adaptive Dormand–Prince 5(4) pair with the
// given relative/absolute local error tolerances.
func WithDopri5(rtol, atol float64) SimOption {
	return func(c *simConfig) { c.method, c.rtol, c.atol = simDopri5, rtol, atol }
}

// WithSimSolver forces the linear-solver backend of the implicit
// integrator's Newton steps (default: auto-routed).
func WithSimSolver(k SolverKind) SimOption {
	return func(c *simConfig) { c.solver, c.forced = k, true }
}

// WithInitialState sets the initial state (default: the origin).
func WithInitialState(x0 []float64) SimOption {
	return func(c *simConfig) { c.x0 = x0 }
}

// simulate drives an internal QLDAE with the resolved configuration.
func simulate(ctx context.Context, sys *qldae.System, u Input, tEnd float64, opts []SimOption) (*Result, error) {
	c := simConfig{method: simRK4, steps: 4000, rtol: 1e-7, atol: 1e-9}
	for _, o := range opts {
		o(&c)
	}
	if c.steps < 1 {
		return nil, fmt.Errorf("avtmor: Simulate needs a positive step count, got %d", c.steps)
	}
	x0 := c.x0
	if x0 == nil {
		x0 = make([]float64, sys.N)
	}
	if len(x0) != sys.N {
		return nil, fmt.Errorf("avtmor: initial state has %d entries, system has %d states", len(x0), sys.N)
	}
	var (
		res *ode.Result
		err error
	)
	switch c.method {
	case simTrapezoidal:
		var ls solver.LinearSolver
		if c.forced {
			ls = solver.ByKind(c.solver.kind())
		}
		res, err = ode.TrapezoidalSolverCtx(ctx, sys, x0, ode.Input(u), tEnd, c.steps, ls)
	case simDopri5:
		res, err = ode.Dopri5Ctx(ctx, sys, x0, ode.Input(u), tEnd, c.rtol, c.atol)
	default:
		res, err = ode.RK4Ctx(ctx, sys, x0, ode.Input(u), tEnd, c.steps)
	}
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// Simulate integrates the full system from the origin (or
// WithInitialState) over [0, tEnd] under input u.
func (s *System) Simulate(ctx context.Context, u Input, tEnd float64, opts ...SimOption) (*Result, error) {
	return simulate(ctx, s.sys, u, tEnd, opts)
}
