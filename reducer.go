package avtmor

import (
	"container/list"
	"context"
	"sync"
)

// Reducer is a concurrency-safe reduction service: a ROM cache keyed
// by (system fingerprint, canonicalized options) with singleflight
// semantics. N concurrent identical requests trigger exactly one
// underlying reduction — the others coalesce onto it and share the
// result — which lifts the paper's "LU of G1 for once" amortization
// one level higher, across requests.
//
// The in-memory cache holds completed ROMs until Purge, or — under
// WithCacheLimit — evicts least-recently-used entries so a long-lived
// daemon cannot grow without bound. With a WithROMStore second tier,
// the cache is write-through: every fresh reduction is persisted, an
// in-memory miss consults the store before reducing, and an evicted
// entry is therefore a cheap store load away instead of a recompute.
//
// Cancellation is per caller: a waiter whose context expires returns
// immediately, and the in-flight reduction itself is canceled only
// when every waiter has given up (so one impatient client cannot kill
// work others still want). Abandoned reductions are not cached; the
// next request recomputes.
//
// Every outcome is counted in Stats; the serving tier bridges those
// counters onto its metrics endpoints (docs/METRICS.md), so Reducer
// accounting is fleet observability.
type Reducer struct {
	mu       sync.Mutex
	cache    map[string]*list.Element // guarded by mu; key → entry in lru
	lru      *list.List               // guarded by mu; of *cacheEntry; front = most recently used
	limit    int                      // > 0 bounds len(cache)
	store    ROMStore
	inflight map[string]*flight // guarded by mu

	stats ReducerStats // guarded by mu
}

type cacheEntry struct {
	key string
	rom *ROM
}

type flight struct {
	refs   int // waiters still interested
	cancel context.CancelFunc
	done   chan struct{}
	rom    *ROM
	err    error
}

// ROMStore is a second-tier ROM cache consulted on in-memory misses
// and written through on every fresh reduction — typically an on-disk,
// process-surviving artifact store (the serve package wires one up).
// Implementations must be safe for concurrent use, including
// same-key calls: in-memory cache hits re-issue Store to heal
// externally deleted or quarantined artifacts, so Store should be
// cheap (an index probe) when the key is already persisted.
type ROMStore interface {
	// Load returns the ROM stored under key, or (nil, nil) on a miss.
	// A returned ROM must be a fresh instance (e.g. via ReadROM): the
	// Reducer publishes it as a shared cache entry.
	Load(key string) (*ROM, error)
	// Store persists rom under key.
	Store(key string, rom *ROM) error
}

// ReducerOption configures a Reducer at construction.
type ReducerOption func(*Reducer)

// WithCacheLimit bounds the in-memory ROM cache to at most n entries,
// evicting least-recently-used ROMs (counted in Stats().Evictions).
// n <= 0 keeps the default: unbounded.
func WithCacheLimit(n int) ReducerOption {
	return func(rd *Reducer) { rd.limit = n }
}

// WithROMStore attaches a write-through second-tier store.
func WithROMStore(st ROMStore) ReducerOption {
	return func(rd *Reducer) { rd.store = st }
}

// ReducerStats counts the service's lifetime outcomes.
type ReducerStats struct {
	// Reductions is the number of underlying reductions actually
	// executed; CacheHits the requests served from the in-memory
	// completed-ROM cache; Coalesced the requests that joined an
	// in-flight reduction; StoreHits the requests served by loading
	// from the second-tier ROMStore instead of reducing.
	Reductions, CacheHits, Coalesced, StoreHits int64
	// StoreErrors counts failed ROMStore Load/Store calls. They are
	// never fatal to the request — a failed load falls through to a
	// fresh reduction, a failed write-through still returns the ROM.
	StoreErrors int64
	// Evictions counts in-memory LRU evictions under WithCacheLimit.
	Evictions int64
	// Solver-spine aggregates across every fresh reduction this service
	// executed (cache/store hits contribute nothing — their solve work
	// was paid when the artifact was first built): shifted-pencil factor
	// steps, block back-solve calls, and the RHS columns those blocks
	// carried. BatchColumns/BatchSolves is the realized multi-RHS
	// batching width of the fleet. SymbolicAnalyses/NumericRefactors
	// split the sparse factor steps into full symbolic analyses vs
	// numeric-only refills of a cached pattern — the refactor share is
	// the symbolic/numeric split's amortization across the fleet.
	Factorizations, BatchSolves, BatchColumns int64
	SymbolicAnalyses, NumericRefactors        int64
	// CachedROMs is the current cache population; InFlight the
	// reductions currently executing.
	CachedROMs, InFlight int
}

// NewReducer returns an empty reduction service.
func NewReducer(opts ...ReducerOption) *Reducer {
	rd := &Reducer{
		cache:    map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*flight{},
	}
	for _, o := range opts {
		o(rd)
	}
	return rd
}

// Stats returns a snapshot of the service counters.
func (rd *Reducer) Stats() ReducerStats {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	s := rd.stats
	s.CachedROMs = rd.lru.Len()
	s.InFlight = len(rd.inflight)
	return s
}

// Purge drops every in-memory cached ROM (in-flight reductions and the
// ROMStore are unaffected).
func (rd *Reducer) Purge() {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	rd.cache = map[string]*list.Element{}
	rd.lru.Init()
}

// RequestKey returns the canonical cache key of a Reduce request — the
// system fingerprint plus every option that changes the resulting ROM
// (see Reducer.Reduce). It is the key space shared by the in-memory
// cache and any attached ROMStore, so callers that address artifacts
// out of band (the serve package's content-addressed store) derive
// their addresses from it. Returns "" for a nil system.
func RequestKey(sys *System, opts ...Option) string {
	return requestKey(sys, methodAssoc, opts)
}

// RequestKeyNORM is RequestKey for ReduceNORM requests (a distinct key
// space).
func RequestKeyNORM(sys *System, opts ...Option) string {
	return requestKey(sys, methodNORM, opts)
}

func requestKey(sys *System, method string, opts []Option) string {
	if sys == nil || sys.sys == nil {
		return ""
	}
	return buildConfig(opts).cacheKey(sys, method)
}

// Lookup returns the ROM already available under a canonical request
// key (see RequestKey) without ever launching a reduction: the
// in-memory cache is probed first (counted in CacheHits, refreshing
// the LRU position), then the attached ROMStore (counted in
// StoreHits, and promoted into the in-memory cache). A miss returns
// (nil, nil). A store read failure returns (nil, err) and counts in
// StoreErrors — callers that can compute elsewhere (the serve tier's
// cluster forwarding treats a Lookup miss as "ask the owner") should
// treat it as a miss.
func (rd *Reducer) Lookup(key string) (*ROM, error) {
	if key == "" {
		return nil, nil
	}
	rd.mu.Lock()
	if el, ok := rd.cache[key]; ok {
		rd.stats.CacheHits++
		rd.lru.MoveToFront(el)
		rom := el.Value.(*cacheEntry).rom
		rd.mu.Unlock()
		return rom, nil
	}
	st := rd.store
	rd.mu.Unlock()
	if st == nil {
		return nil, nil
	}
	rom, err := st.Load(key)
	if err != nil {
		rd.mu.Lock()
		rd.stats.StoreErrors++
		rd.mu.Unlock()
		return nil, err
	}
	if rom == nil {
		return nil, nil
	}
	rom.shared = true
	rd.mu.Lock()
	rd.stats.StoreHits++
	rd.cacheAdd(key, rom)
	rd.mu.Unlock()
	return rom, nil
}

// Reduce returns the cached ROM for (sys, opts), joining an in-flight
// identical reduction or launching a new one. The options are
// canonicalized for the cache key: everything that changes the ROM
// participates; WithParallel and WithProgress do not (a coalesced
// caller's progress callback is not invoked — only the launching
// request's is). See Reduce for the reduction semantics.
func (rd *Reducer) Reduce(ctx context.Context, sys *System, opts ...Option) (*ROM, error) {
	return rd.reduce(ctx, sys, methodAssoc, opts)
}

// ReduceNORM is Reduce with the NORM baseline engine (cached under a
// distinct key space).
func (rd *Reducer) ReduceNORM(ctx context.Context, sys *System, opts ...Option) (*ROM, error) {
	return rd.reduce(ctx, sys, methodNORM, opts)
}

func (rd *Reducer) reduce(ctx context.Context, sys *System, method string, opts []Option) (*ROM, error) {
	if sys == nil || sys.sys == nil {
		return nil, errNilSystem
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		// A dead-on-arrival context must not launch (and immediately
		// abandon) a flight.
		return nil, err
	}
	cfg := buildConfig(opts)
	key := cfg.cacheKey(sys, method)

	rd.mu.Lock()
	if el, ok := rd.cache[key]; ok {
		rd.stats.CacheHits++
		rd.lru.MoveToFront(el)
		rom := el.Value.(*cacheEntry).rom
		rd.mu.Unlock()
		// Re-ensure persistence on every hit: a no-op index probe when
		// the artifact is on disk, a rewrite when it was quarantined
		// or deleted behind our back — so a memory-resident entry
		// cannot indefinitely orphan its advertised content address.
		rd.ensureStored(key, rom)
		return rom, nil
	}
	fl, ok := rd.inflight[key]
	if ok && fl.refs > 0 {
		fl.refs++
		rd.stats.Coalesced++
	} else {
		// Launch a fresh flight. refs == 0 means the listed flight was
		// abandoned (every waiter canceled, fl.cancel fired) and is
		// merely unwinding — joining it would hand this live caller a
		// context.Canceled it did not cause, so replace the entry; the
		// old goroutine's cleanup only deletes its own entry.
		//
		// The flight runs under its own cancelable context detached
		// from any single caller's: it must survive one waiter's
		// cancellation as long as another still wants the result.
		//avtmorlint:ignore ctxflow the flight is deliberately detached: it must survive one waiter's cancellation while others still wait
		ictx, cancel := context.WithCancel(context.Background())
		fl = &flight{refs: 1, cancel: cancel, done: make(chan struct{})}
		rd.inflight[key] = fl
		go func(fl *flight) {
			rom, err := rd.fill(ictx, sys, method, cfg, key)
			fl.rom, fl.err = rom, err
			rd.mu.Lock()
			if rd.inflight[key] == fl {
				delete(rd.inflight, key)
			}
			if err == nil {
				rd.cacheAdd(key, rom)
			}
			rd.mu.Unlock()
			close(fl.done)
			cancel()
		}(fl)
	}
	rd.mu.Unlock()

	select {
	case <-fl.done:
		return fl.rom, fl.err
	case <-ctx.Done():
		rd.mu.Lock()
		fl.refs--
		abandoned := fl.refs == 0
		rd.mu.Unlock()
		if abandoned {
			fl.cancel()
		}
		return nil, ctx.Err()
	}
}

// fill produces the ROM for one flight: second-tier store load when
// available, fresh reduction otherwise, written through to the store.
// The returned ROM is marked shared before publication (the flight's
// close(done) is the happens-before edge): it is about to become a
// cache entry handed to arbitrarily many callers, and ReadFrom must
// refuse to mutate it.
func (rd *Reducer) fill(ctx context.Context, sys *System, method string, cfg *config, key string) (*ROM, error) {
	if rd.store != nil {
		switch rom, err := rd.store.Load(key); {
		case err != nil:
			// Fall through to a fresh reduction.
			rd.mu.Lock()
			rd.stats.StoreErrors++
			rd.mu.Unlock()
		case rom != nil:
			rom.shared = true
			rd.mu.Lock()
			rd.stats.StoreHits++
			rd.mu.Unlock()
			return rom, nil
		}
	}
	rd.mu.Lock()
	rd.stats.Reductions++
	rd.mu.Unlock()
	rom, err := reduceWith(ctx, sys, method, cfg)
	if err != nil {
		return nil, err
	}
	st := rom.Stats()
	rd.mu.Lock()
	rd.stats.Factorizations += st.Factorizations
	rd.stats.BatchSolves += st.BatchSolves
	rd.stats.BatchColumns += st.BatchColumns
	rd.stats.SymbolicAnalyses += st.SymbolicAnalyses
	rd.stats.NumericRefactors += st.NumericRefactors
	rd.mu.Unlock()
	rom.shared = true
	rd.ensureStored(key, rom)
	return rom, nil
}

// ensureStored write-throughs rom to the second tier when one is
// attached. Failures are counted, never fatal.
func (rd *Reducer) ensureStored(key string, rom *ROM) {
	if rd.store == nil {
		return
	}
	if err := rd.store.Store(key, rom); err != nil {
		rd.mu.Lock()
		rd.stats.StoreErrors++
		rd.mu.Unlock()
	}
}

// cacheAdd inserts (key, rom) as most recently used and evicts from
// the cold end past the limit. Caller holds rd.mu.
func (rd *Reducer) cacheAdd(key string, rom *ROM) {
	if el, ok := rd.cache[key]; ok {
		// Double completion on one key: an abandoned flight whose
		// store load or reduction finished anyway, racing the
		// replacement flight a later caller launched. Refresh the
		// existing entry in place — pushing a second element would
		// orphan one in the LRU list and desynchronize eviction.
		el.Value.(*cacheEntry).rom = rom
		rd.lru.MoveToFront(el)
		return
	}
	rd.cache[key] = rd.lru.PushFront(&cacheEntry{key: key, rom: rom})
	for rd.limit > 0 && rd.lru.Len() > rd.limit {
		back := rd.lru.Back()
		rd.lru.Remove(back)
		delete(rd.cache, back.Value.(*cacheEntry).key)
		rd.stats.Evictions++
	}
}
