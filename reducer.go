package avtmor

import (
	"context"
	"sync"
)

// Reducer is a concurrency-safe reduction service: a ROM cache keyed
// by (system fingerprint, canonicalized options) with singleflight
// semantics. N concurrent identical requests trigger exactly one
// underlying reduction — the others coalesce onto it and share the
// result — which lifts the paper's "LU of G1 for once" amortization
// one level higher, across requests. Completed ROMs stay cached until
// Purge.
//
// Cancellation is per caller: a waiter whose context expires returns
// immediately, and the in-flight reduction itself is canceled only
// when every waiter has given up (so one impatient client cannot kill
// work others still want). Abandoned reductions are not cached; the
// next request recomputes.
type Reducer struct {
	mu       sync.Mutex
	cache    map[string]*ROM
	inflight map[string]*flight

	stats ReducerStats
}

type flight struct {
	refs   int // waiters still interested
	cancel context.CancelFunc
	done   chan struct{}
	rom    *ROM
	err    error
}

// ReducerStats counts the service's lifetime outcomes.
type ReducerStats struct {
	// Reductions is the number of underlying reductions launched;
	// CacheHits the requests served from the completed-ROM cache;
	// Coalesced the requests that joined an in-flight reduction.
	Reductions, CacheHits, Coalesced int64
	// CachedROMs is the current cache population; InFlight the
	// reductions currently executing.
	CachedROMs, InFlight int
}

// NewReducer returns an empty reduction service.
func NewReducer() *Reducer {
	return &Reducer{
		cache:    map[string]*ROM{},
		inflight: map[string]*flight{},
	}
}

// Stats returns a snapshot of the service counters.
func (rd *Reducer) Stats() ReducerStats {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	s := rd.stats
	s.CachedROMs = len(rd.cache)
	s.InFlight = len(rd.inflight)
	return s
}

// Purge drops every cached ROM (in-flight reductions are unaffected).
func (rd *Reducer) Purge() {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	rd.cache = map[string]*ROM{}
}

// Reduce returns the cached ROM for (sys, opts), joining an in-flight
// identical reduction or launching a new one. The options are
// canonicalized for the cache key: everything that changes the ROM
// participates; WithParallel and WithProgress do not (a coalesced
// caller's progress callback is not invoked — only the launching
// request's is). See Reduce for the reduction semantics.
func (rd *Reducer) Reduce(ctx context.Context, sys *System, opts ...Option) (*ROM, error) {
	return rd.reduce(ctx, sys, methodAssoc, opts)
}

// ReduceNORM is Reduce with the NORM baseline engine (cached under a
// distinct key space).
func (rd *Reducer) ReduceNORM(ctx context.Context, sys *System, opts ...Option) (*ROM, error) {
	return rd.reduce(ctx, sys, methodNORM, opts)
}

func (rd *Reducer) reduce(ctx context.Context, sys *System, method string, opts []Option) (*ROM, error) {
	if sys == nil || sys.sys == nil {
		return nil, errNilSystem
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := buildConfig(opts)
	key := cfg.cacheKey(sys, method)

	rd.mu.Lock()
	if rom, ok := rd.cache[key]; ok {
		rd.stats.CacheHits++
		rd.mu.Unlock()
		return rom, nil
	}
	fl, ok := rd.inflight[key]
	if ok && fl.refs > 0 {
		fl.refs++
		rd.stats.Coalesced++
	} else {
		// Launch a fresh flight. refs == 0 means the listed flight was
		// abandoned (every waiter canceled, fl.cancel fired) and is
		// merely unwinding — joining it would hand this live caller a
		// context.Canceled it did not cause, so replace the entry; the
		// old goroutine's cleanup only deletes its own entry.
		//
		// The reduction runs under its own cancelable context detached
		// from any single caller's: it must survive one waiter's
		// cancellation as long as another still wants the result.
		ictx, cancel := context.WithCancel(context.Background())
		fl = &flight{refs: 1, cancel: cancel, done: make(chan struct{})}
		rd.inflight[key] = fl
		rd.stats.Reductions++
		go func(fl *flight) {
			rom, err := reduceWith(ictx, sys, method, cfg)
			if err == nil {
				// Mark before publication (the close below is the
				// happens-before edge): this instance is now a shared
				// cache entry and ReadFrom must refuse to mutate it.
				rom.shared = true
			}
			fl.rom, fl.err = rom, err
			rd.mu.Lock()
			if rd.inflight[key] == fl {
				delete(rd.inflight, key)
			}
			if err == nil {
				rd.cache[key] = rom
			}
			rd.mu.Unlock()
			close(fl.done)
			cancel()
		}(fl)
	}
	rd.mu.Unlock()

	select {
	case <-fl.done:
		return fl.rom, fl.err
	case <-ctx.Done():
		rd.mu.Lock()
		fl.refs--
		abandoned := fl.refs == 0
		rd.mu.Unlock()
		if abandoned {
			fl.cancel()
		}
		return nil, ctx.Err()
	}
}
