package serve

// Cost-aware admission: price a reduce request from its parsed input
// before it touches the worker pool, and admit against a concurrent
// cost budget instead of a job count. Counting jobs treats a 3-state
// clipper and a 2000-state multipoint reduce as equals, so a burst of
// expensive requests fills the queue and 429s the cheap traffic behind
// it; pricing by the moment-generation work (the same expansion-factor
// economics the reducer's own cost model uses to pick its solver)
// lets cheap requests keep flowing while expensive ones wait their
// turn.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"avtmor"
	"avtmor/internal/query"
	"avtmor/internal/quota"
)

// Admission/quota headers.
const (
	// HeaderCost carries the server's cost estimate for the request, in
	// admission units, on every priced response (success or rejection).
	HeaderCost = "X-Avtmor-Cost"
	// HeaderAPIKey identifies the client for per-key quota buckets.
	// Absent or unknown keys share the default bucket.
	HeaderAPIKey = "X-Avtmor-Api-Key"
)

// nominalAutoOrder prices auto-order requests: the order is unknown
// until the Hankel decay is inspected, so admission assumes the
// reducer's typical pick. Overcharging an easy system only delays it;
// the budget is released when the work finishes either way.
const nominalAutoOrder = 6

// costDivisor converts moment-generation work (solve triangles ×
// states) into admission units; chosen so the smallest netlists price
// at 1 unit and a 2000-state multipoint reduce prices in the hundreds.
const costDivisor = 4096

// estimateCost prices one reduce request in admission units from its
// parsed system and options. The driver is moment generation: per
// expansion shift, one factorization plus k block solves over a matrix
// with nnz + 4n working nonzeros (the Jacobian plus the E/G bordering
// the solver actually factors), so cost scales with (nnz+4n)·k·shifts.
// The +1 floor keeps every request visible to the budget.
func estimateCost(sys *avtmor.System, req *query.Request) int64 {
	k := req.K1 + req.K2 + req.K3
	if req.Auto {
		k = nominalAutoOrder
	}
	if k < 1 {
		k = 1
	}
	shifts := req.Shifts
	if shifts < 1 {
		shifts = 1
	}
	n := int64(sys.States())
	nnz := int64(sys.Nonzeros())
	work := (nnz + 4*n) * int64(k) * int64(shifts)
	return 1 + work/costDivisor
}

// simulateCost prices a simulation: integration work is step-count ×
// ROM order, tiny next to a reduction of the same system, but a
// dopri5 run over a large window still deserves more than a clipper
// reduce.
func simulateCost(order, steps int) int64 {
	if steps < 1 {
		steps = 4000
	}
	return 1 + int64(order)*int64(steps)/(costDivisor*16)
}

// overBudgetError rejects a request whose estimated cost did not fit
// the concurrent budget within its admission window. It carries the
// estimate so the handler can answer with a cost-proportional
// Retry-After.
type overBudgetError struct {
	cost int64
}

func (e *overBudgetError) Error() string {
	return fmt.Sprintf("serve: admission budget exhausted (request cost %d)", e.cost)
}

// admission is the concurrent cost budget. Admit reserves units for
// the lifetime of one request's compute; requests that do not fit wait
// until running work releases units, bounded by the caller's context.
//
// Fairness: a heavy request (cost > budget/8) may hold at most 7/8 of
// the budget, so one slice is always reserved for cheap traffic — an
// expensive burst queues behind itself while clippers keep flowing.
// An idle server admits anything (a request dearer than the whole
// budget must still be able to run alone).
type admission struct {
	budget int64
	mu     sync.Mutex
	cond   *sync.Cond
	inUse  int64 // guarded by mu
}

func newAdmission(budget int64) *admission {
	a := &admission{budget: budget}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// heavyCap is the reservation ceiling for heavy requests: 7/8 of the
// budget, keeping one slice free for cheap traffic.
func (a *admission) heavyCap() int64 { return a.budget - a.budget/8 }

// fits reports whether a request of the given cost may start now.
// The caller holds a.mu.
func (a *admission) fits(cost int64) bool { // holds a.mu
	if a.inUse == 0 {
		return true // an idle server serves anything, however dear
	}
	limit := a.budget
	if cost > a.budget/8 {
		limit = a.heavyCap()
	}
	return a.inUse+cost <= limit
}

// admit reserves cost units, waiting until they fit or ctx expires.
// The returned release must be called exactly once when the request's
// compute finishes.
func (a *admission) admit(ctx context.Context, cost int64) (release func(), err error) {
	// A context door: wake the cond loop when the caller gives up.
	stop := context.AfterFunc(ctx, func() {
		a.mu.Lock()
		a.cond.Broadcast()
		a.mu.Unlock()
	})
	defer stop()
	a.mu.Lock()
	defer a.mu.Unlock()
	for !a.fits(cost) {
		if ctx.Err() != nil {
			return nil, &overBudgetError{cost: cost}
		}
		a.cond.Wait()
	}
	a.inUse += cost
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inUse -= cost
			a.cond.Broadcast()
			a.mu.Unlock()
		})
	}, nil
}

// tryAdmit reserves cost units only if they fit right now.
func (a *admission) tryAdmit(cost int64) (release func(), ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.fits(cost) {
		return nil, false
	}
	a.inUse += cost
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inUse -= cost
			a.cond.Broadcast()
			a.mu.Unlock()
		})
	}, true
}

// used returns the units currently reserved (the admission gauge).
func (a *admission) used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// admitWindow bounds how long an over-budget request waits for units
// before shedding with 429 — long enough to ride out a short burst,
// short enough that the client's retry governs, not our queue.
const admitWindow = 2 * time.Second

// admitted reserves cost units for the request, waiting up to
// admitWindow. On rejection it answers 429 with a cost-proportional
// Retry-After and returns a nil release.
func (s *Server) admitted(w http.ResponseWriter, r *http.Request, cost int64) (release func(), ok bool) {
	ctx, cancel := context.WithTimeout(r.Context(), admitWindow)
	defer cancel()
	release, err := s.adm.admit(ctx, cost)
	if err == nil {
		return release, true
	}
	if r.Context().Err() != nil {
		s.httpError(w, 499, "client canceled")
		return nil, false
	}
	s.admissionRejected.Add(1)
	// Scale the retry hint with how much of the budget the request
	// wants: a clipper retries in a second, a fleet-filling multipoint
	// reduce backs off harder.
	retry := 1 + 4*cost/s.adm.budget
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
	w.Header().Set(HeaderCost, fmt.Sprintf("%d", cost))
	s.httpError(w, http.StatusTooManyRequests,
		"admission budget exhausted (request cost %d of %d), retry later", cost, s.adm.budget)
	return nil, false
}

// checkQuota charges the request's API key n tokens, answering 429
// with Retry-After itself when the bucket is dry. Forwarded peer
// requests bypass quotas — the entry node already charged the client.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request, n float64) bool {
	if s.quotas == nil || r.Header.Get(HeaderForwarded) != "" {
		return true
	}
	ok, retry := s.quotas.Allow(r.Header.Get(HeaderAPIKey), n)
	if ok {
		return true
	}
	s.quotaRejected.Add(1)
	secs := int64(retry / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	s.httpError(w, http.StatusTooManyRequests, "quota exhausted, retry in %ds", secs)
	return false
}

// setCost stamps the admission estimate on the response.
func setCost(w http.ResponseWriter, cost int64) {
	w.Header().Set(HeaderCost, fmt.Sprintf("%d", cost))
}

// QuotaSpec re-exports quota.Spec for Config literals.
type QuotaSpec = quota.Spec
