package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"avtmor"
	"avtmor/serve"
)

// clipper is the 3-state diode clipper netlist of the facade tests —
// small enough that a full reduction is test-cheap.
const clipper = `
I1 0 n1 IN0 1.0
C1 n1 0 1.0
R1 n1 0 2.0
D1 n1 0 1.0 0.05
R12 n1 n2 1.0
C2 n2 0 1.0
R2 n2 0 2.0
.out n2
`

const reducePath = "/v1/reduce?k1=2&k2=1&s0=0.4"

func newTestServer(t testing.TB, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postReduce(t testing.TB, base, path, body string) ([]byte, string) {
	t.Helper()
	resp, err := http.Post(base+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, data)
	}
	key := resp.Header.Get("X-Avtmor-Rom-Key")
	if key == "" {
		t.Fatal("response carries no X-Avtmor-Rom-Key")
	}
	return data, key
}

func metrics(t testing.TB, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServeDurabilityAcrossRestart is the subsystem acceptance check:
// reduce over HTTP, restart the daemon on the same store directory,
// re-request the same key — the artifact is served from disk
// byte-identical to the first response, with the store hit visible in
// /metrics.
func TestServeDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	s1, err := serve.New(serve.Config{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	body1, key1 := postReduce(t, ts1.URL, reducePath, clipper)
	// Same process, same request: served from memory, still identical.
	body1b, _ := postReduce(t, ts1.URL, reducePath, clipper)
	if !bytes.Equal(body1, body1b) {
		t.Fatal("same-process re-request returned different bytes")
	}
	m := metrics(t, ts1.URL)
	if m["reductions"] != 1 || m["cache_hits"] != 1 || m["store_roms"] != 1 {
		t.Fatalf("first-process metrics: %v", m)
	}
	ts1.Close()
	s1.Close()

	// "Restart": a fresh Server over the same directory, its in-memory
	// tiers empty.
	s2, ts2 := newTestServer(t, serve.Config{StoreDir: dir, Workers: 2})
	_ = s2
	body2, key2 := postReduce(t, ts2.URL, reducePath, clipper)
	if key2 != key1 {
		t.Fatalf("content address changed across restart: %s vs %s", key2, key1)
	}
	if !bytes.Equal(body2, body1) {
		t.Fatal("restarted daemon served different bytes for the same key")
	}
	m = metrics(t, ts2.URL)
	if m["reductions"] != 0 {
		t.Fatalf("restarted daemon re-reduced instead of loading from store: %v", m)
	}
	if m["store_hits"] != 1 {
		t.Fatalf("store hit not visible in /metrics: %v", m)
	}

	// The artifact is also addressable directly.
	resp, err := http.Get(ts2.URL + "/v1/roms/" + key1)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(direct, body1) {
		t.Fatalf("GET /v1/roms/%s: %d, identical=%v", key1, resp.StatusCode, bytes.Equal(direct, body1))
	}

	// And it deserializes into a working ROM client-side.
	rom, err := avtmor.ReadROM(bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	if rom.Order() < 1 {
		t.Fatalf("order %d", rom.Order())
	}
}

// TestServeConcurrentColdRequests: N identical cold requests against a
// fresh daemon perform exactly one underlying reduction (singleflight
// across HTTP), all answered with identical bytes. Run under -race in
// CI.
func TestServeConcurrentColdRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{StoreDir: t.TempDir(), Workers: 8})
	const callers = 8
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+reducePath, "text/plain", strings.NewReader(clipper))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("caller %d: %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = data
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d received different bytes", i)
		}
	}
	m := metrics(t, ts.URL)
	if m["reductions"] != 1 {
		t.Fatalf("%v underlying reductions for %d identical requests, want exactly 1", m["reductions"], callers)
	}
	if m["coalesced"]+m["cache_hits"] != callers-1 {
		t.Fatalf("coalesced %v + cache hits %v, want %d", m["coalesced"], m["cache_hits"], callers-1)
	}
}

// TestServeSerializedSystemBody: a binary System body reduces to the
// same artifact (same content address) as its netlist twin only when
// matrices match; here we just assert the binary path works end to end
// and dedupes with itself.
func TestServeSerializedSystemBody(t *testing.T) {
	sys, err := avtmor.ParseNetlist(strings.NewReader(clipper))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if _, err := sys.WriteTo(&bin); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{StoreDir: t.TempDir(), Workers: 2})

	fromNetlist, keyN := postReduce(t, ts.URL, reducePath, clipper)
	fromBinary, keyB := postReduce(t, ts.URL, reducePath, bin.String())
	if keyB != keyN {
		t.Fatalf("binary and netlist bodies of the same circuit got different addresses: %s vs %s", keyB, keyN)
	}
	if !bytes.Equal(fromBinary, fromNetlist) {
		t.Fatal("binary body produced different artifact bytes")
	}
	m := metrics(t, ts.URL)
	if m["reductions"] != 1 {
		t.Fatalf("binary twin re-reduced: %v", m)
	}
}

// TestServeSimulate: a stored ROM simulates over the wire, and the
// trajectory matches a client-side simulation of the same artifact
// exactly (same integrator, same bytes, same arithmetic).
func TestServeSimulate(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{StoreDir: t.TempDir(), Workers: 2})
	body, key := postReduce(t, ts.URL, reducePath, clipper)

	workload := `{"tEnd": 5, "steps": 200, "input": {"kind": "const", "values": [1]}}`
	resp, err := http.Post(ts.URL+"/v1/roms/"+key+"/simulate", "application/json", strings.NewReader(workload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("simulate: %d: %s", resp.StatusCode, data)
	}
	var got struct {
		T []float64   `json:"t"`
		Y [][]float64 `json:"y"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.T) != len(got.Y) || len(got.T) != 201 {
		t.Fatalf("trajectory shape: %d times, %d outputs", len(got.T), len(got.Y))
	}

	rom, err := avtmor.ReadROM(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rom.Simulate(t.Context(), avtmor.ConstInput([]float64{1}), 5, avtmor.WithRK4(200))
	if err != nil {
		t.Fatal(err)
	}
	for k := range ref.T {
		if got.T[k] != ref.T[k] || got.Y[k][0] != ref.Y[k][0] {
			t.Fatalf("sample %d: wire (%g, %g) vs local (%g, %g)", k, got.T[k], got.Y[k][0], ref.T[k], ref.Y[k][0])
		}
	}

	// CSV rendering of the same workload.
	resp, err = http.Post(ts.URL+"/v1/roms/"+key+"/simulate?format=csv", "application/json", strings.NewReader(workload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	csvData, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if resp.StatusCode != http.StatusOK || lines[0] != "t,y0" || len(lines) != 202 {
		t.Fatalf("csv: %d, header %q, %d lines", resp.StatusCode, lines[0], len(lines))
	}
}

// TestServeErrors: malformed requests map to the right statuses and
// never crash the daemon.
func TestServeErrors(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}
	if code, msg := post("/v1/reduce", "R1 notanode\n"); code != http.StatusBadRequest {
		t.Fatalf("bad netlist: %d %s", code, msg)
	}
	if code, msg := post("/v1/reduce", ""); code != http.StatusBadRequest {
		t.Fatalf("empty body: %d %s", code, msg)
	}
	if code, msg := post("/v1/reduce?k1=notanumber", clipper); code != http.StatusBadRequest {
		t.Fatalf("bad option: %d %s", code, msg)
	}
	if code, msg := post("/v1/reduce?k1=2&auto=1e-4", clipper); code != http.StatusBadRequest {
		t.Fatalf("conflicting orders: %d %s", code, msg)
	}
	// Explicit but useless/negative orders must error, not silently
	// fall through to auto selection.
	if code, msg := post("/v1/reduce?k1=0&k2=0", clipper); code != http.StatusBadRequest {
		t.Fatalf("all-zero explicit orders: %d %s", code, msg)
	}
	if code, msg := post("/v1/reduce?k1=2&k2=-2", clipper); code != http.StatusBadRequest {
		t.Fatalf("negative order: %d %s", code, msg)
	}
	if code, msg := post("/v1/reduce?method=magic", clipper); code != http.StatusBadRequest {
		t.Fatalf("bad method: %d %s", code, msg)
	}
	// A corrupted serialized-System body is reported as such, not
	// parsed as a netlist.
	var bin bytes.Buffer
	sys, _ := avtmor.ParseNetlist(strings.NewReader(clipper))
	sys.WriteTo(&bin)
	if code, msg := post(reducePath, bin.String()[:bin.Len()/2]); code != http.StatusBadRequest || !strings.Contains(msg, "System") {
		t.Fatalf("truncated binary body: %d %s", code, msg)
	}
	// Unreducible request against a fine system: unprocessable.
	if code, msg := post("/v1/reduce?k1=2&k2=1", clipper); code != http.StatusUnprocessableEntity {
		// DC expansion of the clipper hits the singular-G1 path.
		t.Logf("note: %d %s", code, msg)
	}
	// Deadline that cannot be met.
	if code, msg := post("/v1/reduce?k1=2&k2=1&s0=0.4&timeout=1ns", clipper); code != http.StatusGatewayTimeout {
		t.Fatalf("timeout: %d %s", code, msg)
	}

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/roms/deadbeef"); code != http.StatusNotFound {
		t.Fatalf("unknown ROM: %d", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := post("/v1/roms/deadbeef/simulate", "{}"); code != http.StatusNotFound {
		t.Fatal("simulate on unknown ROM must 404")
	}

	// Simulate validation errors on a real ROM.
	_, key := postReduce(t, ts.URL, reducePath, clipper)
	simURL := "/v1/roms/" + key + "/simulate"
	for _, bad := range []string{
		`not json`,
		`{"tEnd": 0, "input": {"kind": "const", "values": [1]}}`,
		`{"tEnd": 1, "input": {"kind": "const", "values": [1, 2]}}`,
		`{"tEnd": 1, "input": {"kind": "warble", "values": [1]}}`,
		`{"tEnd": 1, "integrator": "euler", "input": {"kind": "const", "values": [1]}}`,
		`{"tEnd": 1, "x0": [], "input": {"kind": "const", "values": [1]}}`,
		`{"tEnd": 1, "unknownField": true, "input": {"kind": "const", "values": [1]}}`,
	} {
		if code, msg := post(simURL, bad); code != http.StatusBadRequest {
			t.Fatalf("workload %s: %d %s", bad, code, msg)
		}
	}
}
