package serve

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"avtmor"
)

// simRequest is the workload JSON accepted by POST
// /v1/roms/{key}/simulate: a time window, an integrator, and a stimulus.
type simRequest struct {
	// TEnd is the integration window [0, TEnd]; required, > 0.
	TEnd float64 `json:"tEnd"`
	// Steps is the fixed step count of rk4/trapezoidal (default 4000).
	Steps int `json:"steps,omitempty"`
	// Integrator is "rk4" (default), "trapezoidal" (stiff systems), or
	// "dopri5" (adaptive, with rtol/atol).
	Integrator string  `json:"integrator,omitempty"`
	RTol       float64 `json:"rtol,omitempty"`
	ATol       float64 `json:"atol,omitempty"`
	// X0 is the initial state in reduced coordinates (default origin).
	X0 []float64 `json:"x0,omitempty"`
	// Every decimates the recorded trajectory: keep every k-th sample
	// (default 1 = all).
	Every int `json:"every,omitempty"`
	// Timeout bounds the simulation (Go duration string).
	Timeout string   `json:"timeout,omitempty"`
	Input   simInput `json:"input"`
}

// simInput describes the stimulus u(t), vector-valued over the ROM's
// input channels.
type simInput struct {
	// Kind is "const" (u = values), "sin" (u_i =
	// values_i·sin(2π·freqHz_i·t + phase_i)), or "step" (u = 0 before
	// at, values after).
	Kind   string    `json:"kind"`
	Values []float64 `json:"values"`
	FreqHz []float64 `json:"freqHz,omitempty"`
	Phase  []float64 `json:"phase,omitempty"`
	At     float64   `json:"at,omitempty"`
}

// simResponse is the JSON trajectory: outputs Y[k] recorded at T[k].
type simResponse struct {
	T           []float64   `json:"t"`
	Y           [][]float64 `json:"y"`
	Steps       int         `json:"steps"`
	Rejected    int         `json:"rejected"`
	NewtonIters int         `json:"newtonIters"`
}

// handleSimulate integrates a stored ROM under a JSON-described
// workload and returns the trajectory as JSON (default) or CSV
// (?format=csv or Accept: text/csv). Simulations share the reduce
// worker pool: a saturated daemon sheds them with 429 too.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.simReqs.Add(1)
	start := time.Now()
	if !s.checkQuota(w, r, 1) {
		return
	}
	digest := r.PathValue("key")
	if owners := s.route(r, digest); owners != nil {
		if s.hasLocal(digest) {
			s.cluster.localHits.Add(1)
		} else {
			// Forwarding needs the workload bytes twice (relay, then
			// possibly the local fallback), so buffer them up front.
			body, ok := s.readBody(w, r)
			if !ok {
				return
			}
			for _, owner := range owners {
				if s.relay(w, r, owner, bytes.NewReader(body)) {
					return
				}
			}
			s.cluster.fallbackLocal.Add(1)
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
	}
	rom, err := s.lookup(digest)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "loading ROM: %v", err)
		return
	}
	if rom == nil {
		s.httpError(w, http.StatusNotFound, "no ROM with key %s", digest)
		return
	}
	var req simRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "decoding workload JSON: %v", err)
		return
	}
	u, opts, timeout, err := req.build(rom)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cost := simulateCost(rom.Order(), req.Steps)
	setCost(w, cost)
	release, admitted := s.admitted(w, r, cost)
	if !admitted {
		return
	}
	defer release()
	var (
		res  *avtmor.Result
		serr error
	)
	if err := s.run(ctx, func() {
		res, serr = rom.Simulate(ctx, u, req.TEnd, opts...)
	}); err != nil {
		s.runError(w, err)
		return
	}
	if serr != nil {
		s.opError(w, "simulation", serr)
		return
	}
	s.simLatency.Observe(time.Since(start).Seconds())
	every := req.Every
	if every < 1 {
		every = 1
	}
	out := simResponse{Steps: res.Steps, Rejected: res.Rejected, NewtonIters: res.NewtonIters}
	for k := 0; k < len(res.T); k += every {
		out.T = append(out.T, res.T[k])
		out.Y = append(out.Y, res.Y[k])
	}
	if r.URL.Query().Get("format") == "csv" || r.Header.Get("Accept") == "text/csv" {
		writeCSV(w, rom.Outputs(), &out)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(&out)
}

// build resolves the workload into the facade's Input and SimOptions.
func (req *simRequest) build(rom *avtmor.ROM) (avtmor.Input, []avtmor.SimOption, time.Duration, error) {
	if !(req.TEnd > 0) || math.IsInf(req.TEnd, 0) {
		return nil, nil, 0, fmt.Errorf("tEnd must be a positive finite time, got %g", req.TEnd)
	}
	m := rom.Inputs()
	in := req.Input
	if len(in.Values) != m {
		return nil, nil, 0, fmt.Errorf("input.values has %d channels, ROM has %d inputs", len(in.Values), m)
	}
	var u avtmor.Input
	switch in.Kind {
	case "", "const":
		u = avtmor.ConstInput(in.Values)
	case "sin":
		if len(in.FreqHz) != m {
			return nil, nil, 0, fmt.Errorf("input.freqHz has %d channels, ROM has %d inputs", len(in.FreqHz), m)
		}
		if in.Phase != nil && len(in.Phase) != m {
			return nil, nil, 0, fmt.Errorf("input.phase has %d channels, ROM has %d inputs", len(in.Phase), m)
		}
		amp, freq, phase := in.Values, in.FreqHz, in.Phase
		u = func(t float64) []float64 {
			out := make([]float64, m)
			for i := range out {
				arg := 2 * math.Pi * freq[i] * t
				if phase != nil {
					arg += phase[i]
				}
				out[i] = amp[i] * math.Sin(arg)
			}
			return out
		}
	case "step":
		vals, at, zero := in.Values, in.At, make([]float64, m)
		u = func(t float64) []float64 {
			if t < at {
				return zero
			}
			return vals
		}
	default:
		return nil, nil, 0, fmt.Errorf("input.kind: want const, sin, or step, got %q", in.Kind)
	}

	steps := req.Steps
	if steps == 0 {
		steps = 4000
	}
	var opts []avtmor.SimOption
	switch req.Integrator {
	case "", "rk4":
		opts = append(opts, avtmor.WithRK4(steps))
	case "trapezoidal":
		opts = append(opts, avtmor.WithTrapezoidal(steps))
	case "dopri5":
		rtol, atol := req.RTol, req.ATol
		if rtol == 0 {
			rtol = 1e-7
		}
		if atol == 0 {
			atol = 1e-9
		}
		opts = append(opts, avtmor.WithDopri5(rtol, atol))
	default:
		return nil, nil, 0, fmt.Errorf("integrator: want rk4, trapezoidal, or dopri5, got %q", req.Integrator)
	}
	if req.X0 != nil {
		if len(req.X0) != rom.Order() {
			return nil, nil, 0, fmt.Errorf("x0 has %d entries, ROM order is %d", len(req.X0), rom.Order())
		}
		opts = append(opts, avtmor.WithInitialState(req.X0))
	}
	var timeout time.Duration
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			return nil, nil, 0, fmt.Errorf("timeout: want a positive Go duration, got %q", req.Timeout)
		}
		timeout = d
	}
	return u, opts, timeout, nil
}

// writeCSV renders the trajectory as "t,y0,…,y{p-1}" rows.
func writeCSV(w http.ResponseWriter, outputs int, res *simResponse) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	cw := csv.NewWriter(w)
	header := make([]string, 1+outputs)
	header[0] = "t"
	for j := 0; j < outputs; j++ {
		header[j+1] = "y" + strconv.Itoa(j)
	}
	cw.Write(header)
	row := make([]string, 1+outputs)
	for k := range res.T {
		row[0] = strconv.FormatFloat(res.T[k], 'g', -1, 64)
		for j, v := range res.Y[k] {
			row[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		cw.Write(row)
	}
	cw.Flush()
}
