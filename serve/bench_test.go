package serve_test

// Service-tier benchmarks, recorded in BENCH_solver.json. Regenerate:
//
//	go test -run XXX -bench 'BenchmarkServeReduce(Cold|StoreHit)|BenchmarkServeHTTPRoundTrip' \
//	    -benchtime 100x ./serve/
//
// Cold pays a full reduction of a fresh 3-state clipper variant per
// request (handler only, no sockets); StoreHit alternates two keys
// through a 1-entry memory cache so every request reloads its artifact
// from disk; HTTPRoundTrip hammers the memory-cached hot path through
// a real TCP listener, measuring the wire overhead of the serving
// tier.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"avtmor/serve"
)

// clipperVar is the test circuit with one load resistor left open for
// per-iteration variation (distinct fingerprint → cold request).
const clipperVar = `
I1 0 n1 IN0 1.0
C1 n1 0 1.0
R1 n1 0 %.9f
D1 n1 0 1.0 0.05
R12 n1 n2 1.0
C2 n2 0 1.0
R2 n2 0 2.0
.out n2
`

func benchPost(b *testing.B, h http.Handler, path, body string) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		b.Fatalf("POST %s: %d: %s", path, rr.Code, rr.Body.String())
	}
	return rr
}

func BenchmarkServeReduceCold(b *testing.B) {
	s, err := serve.New(serve.Config{StoreDir: b.TempDir(), Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(clipperVar, 2.0+float64(i+1)*1e-6)
		benchPost(b, h, reducePath, body)
	}
}

func BenchmarkServeReduceStoreHit(b *testing.B) {
	s, err := serve.New(serve.Config{StoreDir: b.TempDir(), Workers: 2, CacheLimit: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	bodies := []string{
		fmt.Sprintf(clipperVar, 2.0),
		fmt.Sprintf(clipperVar, 3.0),
	}
	for _, body := range bodies {
		benchPost(b, h, reducePath, body)
	}
	b.ResetTimer()
	// With a 1-entry cache, alternating keys makes every request an
	// in-memory miss answered by the on-disk store.
	for i := 0; i < b.N; i++ {
		benchPost(b, h, reducePath, bodies[i%2])
	}
}

func BenchmarkServeHTTPRoundTrip(b *testing.B) {
	s, err := serve.New(serve.Config{StoreDir: b.TempDir(), Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := fmt.Sprintf(clipperVar, 2.0)
	do := func() {
		resp, err := http.Post(ts.URL+reducePath, "text/plain", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		// Drain so the transport can reuse the connection.
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
	}
	do() // warm the cache: the loop measures the hot serving path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}
