package serve_test

// Service-tier benchmarks, recorded in BENCH_solver.json. Regenerate:
//
//	go test -run XXX -bench 'BenchmarkServeReduce(Cold|StoreHit)|BenchmarkServeHTTPRoundTrip' \
//	    -benchtime 100x ./serve/
//
// Cold pays a full reduction of a fresh 3-state clipper variant per
// request (handler only, no sockets); StoreHit alternates two keys
// through a 1-entry memory cache so every request reloads its artifact
// from disk; HTTPRoundTrip hammers the memory-cached hot path through
// a real TCP listener, measuring the wire overhead of the serving
// tier.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"avtmor/avtmorclient"
	"avtmor/internal/wire"
	"avtmor/serve"
)

// clipperVar is the test circuit with one load resistor left open for
// per-iteration variation (distinct fingerprint → cold request).
const clipperVar = `
I1 0 n1 IN0 1.0
C1 n1 0 1.0
R1 n1 0 %.9f
D1 n1 0 1.0 0.05
R12 n1 n2 1.0
C2 n2 0 1.0
R2 n2 0 2.0
.out n2
`

func benchPost(b *testing.B, h http.Handler, path, body string) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		b.Fatalf("POST %s: %d: %s", path, rr.Code, rr.Body.String())
	}
	return rr
}

func BenchmarkServeReduceCold(b *testing.B) {
	s, err := serve.New(serve.Config{StoreDir: b.TempDir(), Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(clipperVar, 2.0+float64(i+1)*1e-6)
		benchPost(b, h, reducePath, body)
	}
}

func BenchmarkServeReduceStoreHit(b *testing.B) {
	s, err := serve.New(serve.Config{StoreDir: b.TempDir(), Workers: 2, CacheLimit: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	bodies := []string{
		fmt.Sprintf(clipperVar, 2.0),
		fmt.Sprintf(clipperVar, 3.0),
	}
	for _, body := range bodies {
		benchPost(b, h, reducePath, body)
	}
	b.ResetTimer()
	// With a 1-entry cache, alternating keys makes every request an
	// in-memory miss answered by the on-disk store.
	for i := 0; i < b.N; i++ {
		benchPost(b, h, reducePath, bodies[i%2])
	}
}

func BenchmarkServeHTTPRoundTrip(b *testing.B) {
	s, err := serve.New(serve.Config{StoreDir: b.TempDir(), Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := fmt.Sprintf(clipperVar, 2.0)
	do := func() {
		resp, err := http.Post(ts.URL+reducePath, "text/plain", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		// Drain so the transport can reuse the connection.
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
	}
	do() // warm the cache: the loop measures the hot serving path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}

// BenchmarkServeBatch measures POST /v1/reduce/batch over real TCP
// with n distinct pre-warmed (in-memory cache hit) netlists per
// request — the same workload BenchmarkServeHTTPRoundTrip pays one
// round trip *per netlist* for. ns/op is the whole batch; the
// ns/netlist metric is the per-item cost, directly comparable to
// HTTPRoundTrip's ns/op. On this host a single CPU serializes the
// reductions anyway, so the win is pure wire amortization: one
// connection acquisition, one header parse, one routing decision for
// n artifacts.
func BenchmarkServeBatch(b *testing.B) {
	for _, n := range []int{1, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := serve.New(serve.Config{StoreDir: b.TempDir(), Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			bodies := make([][]byte, n)
			for i := range bodies {
				body := fmt.Sprintf(clipperVar, 2.0+float64(i+1)*1e-3)
				benchPost(b, s.Handler(), reducePath, body) // warm each key
				bodies[i] = []byte(body)
			}
			var frame bytes.Buffer
			if err := wire.WriteBatchRequest(&frame, bodies); err != nil {
				b.Fatal(err)
			}
			batchPath := ts.URL + "/v1/reduce/batch?k1=2&k2=1&s0=0.4"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(batchPath, wire.BatchContentType, bytes.NewReader(frame.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				results, err := wire.ReadBatchResponse(resp.Body, 1<<24)
				resp.Body.Close()
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if !res.OK() {
						b.Fatalf("item failed: %d %s", res.Status, res.Body)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/netlist")
		})
	}
}

// BenchmarkClientDirect is the ring-aware client's answer to
// BenchmarkServeClusterForward: the same hot reduce against a 2-node
// fleet, but the client computes the owner itself and dials it
// directly, so there is no relay hop to pay. Compare
// BenchmarkServeHTTPRoundTrip — the single-node wire floor — to see
// the placement overhead, and ServeClusterForward to see the
// forwarding tax it removes.
func BenchmarkClientDirect(b *testing.B) {
	nodes := startCluster(b, 2)
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	c, err := avtmorclient.New(avtmorclient.Config{Nodes: addrs})
	if err != nil {
		b.Fatal(err)
	}
	body := []byte(fmt.Sprintf(clipperVar, 2.0))
	params := url.Values{"k1": {"2"}, "k2": {"1"}, "s0": {"0.4"}}
	ctx := context.Background()
	if _, err := c.Reduce(ctx, body, params); err != nil {
		b.Fatal(err) // warm the owner's cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reduce(ctx, body, params); err != nil {
			b.Fatal(err)
		}
	}
}
