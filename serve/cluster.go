package serve

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"avtmor/internal/cluster"
	"avtmor/internal/promtext"
	"avtmor/internal/replica"
)

// HeaderForwarded marks a request that already crossed one peer hop.
// Its value is the forwarding node's address. A server that receives
// it always answers locally — never re-forwards — so divergent ring
// views (a fleet mid-membership-transition) degrade to one extra hop
// instead of a forwarding loop.
const HeaderForwarded = "X-Avtmor-Forwarded"

// HeaderEpoch carries a node's membership epoch: stamped on every
// response and on every forwarded request. A mismatch is how divergent
// views detect each other mid-transition — the behind node refreshes
// its membership from the ahead one instead of routing blind until the
// next anti-entropy sweep.
const HeaderEpoch = "X-Avtmor-Epoch"

// peerVars is the per-peer counter pair surfaced under
// /metrics → cluster.peers.<addr>.
type peerVars struct {
	forwards, forwardErrors expvar.Int
}

// clusterState is the routing tier of a Server: the epoch-versioned
// membership (ring + replication factor), the HTTP client used for
// peer hops, the anti-entropy sweeper, and the counters that make
// routing observable. A nil clusterState (no -peers) keeps the server
// a plain single process.
type clusterState struct {
	state *replica.State
	self  string
	hc    *http.Client

	sweeper    *replica.Sweeper // nil without a store or with sweeps disabled
	refreshing atomic.Bool      // one membership refresh in flight at a time

	promReg *promtext.Registry // set by initProm; nil during construction

	mu       sync.Mutex
	peers    map[string]*peerVars // guarded by mu; normalized peer addr → counters (self excluded)
	peersVar *expvar.Map          // per-peer metrics map; grows with membership

	// ownerHits counts requests this node answered because the ring
	// placed the key here; forwardedServes the requests answered
	// locally because a peer forwarded them (loop guard); localHits
	// by-address requests served locally although another node owns
	// the key (the artifact was already on this node); fallbackLocal
	// requests computed/served locally because every owner was
	// unreachable or draining.
	ownerHits, forwardedServes, localHits, fallbackLocal expvar.Int
	// replicaWrites counts replica copies accepted over
	// PUT /v1/cluster/roms (write-through pushes, sweeper pushes);
	// replicaPushes/replicaPushErrors the outbound side; readRepairs
	// GETs that pulled a missing local copy from a co-replica;
	// epochMismatches requests or relays that met a different epoch;
	// orphansMarked fallback artifacts tagged for anti-entropy handoff.
	replicaWrites, replicaPushes, replicaPushErrors expvar.Int
	readRepairs, epochMismatches, orphansMarked     expvar.Int
}

// newClusterState validates and builds the routing tier from Config.
// An empty peer list returns (nil, nil): clustering disabled.
func newClusterState(cfg Config) (*clusterState, error) {
	if len(cfg.Peers) == 0 {
		if cfg.Node != "" {
			return nil, fmt.Errorf("serve: Node %q set without Peers", cfg.Node)
		}
		if cfg.Replicas > 1 {
			return nil, fmt.Errorf("serve: Replicas %d set without Peers", cfg.Replicas)
		}
		return nil, nil
	}
	self := cluster.Normalize(cfg.Node)
	if self == "" {
		return nil, fmt.Errorf("serve: Peers configured but Node is empty; set Node to this server's address as it appears in Peers")
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("serve: negative Replicas %d", cfg.Replicas)
	}
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = 1
	}
	state := replica.NewState(cfg.Peers, replicas)
	if !state.Contains(self) {
		return nil, fmt.Errorf("serve: Node %q is not in Peers %v", self, state.Ring().Nodes())
	}
	headerTimeout := cfg.PeerHeaderTimeout
	if headerTimeout <= 0 {
		headerTimeout = 30 * time.Second
	}
	cs := &clusterState{
		state:    state,
		self:     self,
		peers:    map[string]*peerVars{},
		peersVar: new(expvar.Map).Init(),
		hc: &http.Client{
			// No overall client timeout: the forwarded request carries
			// the caller's context (and ?timeout= deadline). The dial
			// timeout is what turns a dead owner into a fast local
			// fallback instead of a hung entry node, and the response
			// header timeout does the same for an owner that accepts
			// the connection but then wedges — without it a stalled
			// peer pins the relay goroutine (and the caller) until the
			// request deadline, if there is one at all.
			Transport: &http.Transport{
				DialContext: (&net.Dialer{
					Timeout:   2 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
				MaxIdleConnsPerHost:   16,
				IdleConnTimeout:       90 * time.Second,
				ResponseHeaderTimeout: headerTimeout,
			},
		},
	}
	for _, p := range state.Ring().Nodes() {
		if p != self {
			cs.peerVar(p)
		}
	}
	return cs, nil
}

// peerVar returns the counter pair for a peer, creating (and mounting
// under /metrics.json → cluster.peers plus the labeled Prometheus
// children) one the first time a dynamically joined peer is addressed.
func (cs *clusterState) peerVar(addr string) *peerVars {
	cs.mu.Lock()
	pv, ok := cs.peers[addr]
	if !ok {
		pv = &peerVars{}
		cs.peers[addr] = pv
		pm := new(expvar.Map).Init()
		pm.Set("forwards", &pv.forwards)
		pm.Set("forward_errors", &pv.forwardErrors)
		cs.peersVar.Set(addr, pm)
	}
	cs.mu.Unlock()
	if !ok {
		// Outside cs.mu: registration takes the registry lock, and a
		// scrape holding that lock reads gauges that may want cs.mu.
		cs.promPeer(addr)
	}
	return pv
}

// ownersFor returns the digest's replica set (primary first) under the
// current membership.
func (cs *clusterState) ownersFor(digest string) []string {
	ms, ring := cs.state.View()
	return ring.Owners(digest, min(ms.Replicas, ring.Len()))
}

// vars renders the routing tier as a nested expvar map mounted at
// /metrics → "cluster".
func (cs *clusterState) vars() *expvar.Map {
	m := new(expvar.Map).Init()
	self := cs.self
	m.Set("node", expvar.Func(func() any { return self }))
	m.Set("nodes", expvar.Func(func() any { return cs.state.Ring().Len() }))
	m.Set("epoch", expvar.Func(func() any { return cs.state.Epoch() }))
	m.Set("replicas", expvar.Func(func() any { return cs.state.Replicas() }))
	m.Set("owner_hits", &cs.ownerHits)
	m.Set("forwarded_serves", &cs.forwardedServes)
	m.Set("local_hits", &cs.localHits)
	m.Set("fallback_local", &cs.fallbackLocal)
	m.Set("replica_writes", &cs.replicaWrites)
	m.Set("replica_pushes", &cs.replicaPushes)
	m.Set("replica_push_errors", &cs.replicaPushErrors)
	m.Set("read_repairs", &cs.readRepairs)
	m.Set("epoch_mismatches", &cs.epochMismatches)
	m.Set("orphans_marked", &cs.orphansMarked)
	sweep := func(f func(replica.SweepStats) any) expvar.Func {
		return func() any {
			if cs.sweeper == nil {
				return 0
			}
			return f(cs.sweeper.Stats())
		}
	}
	m.Set("anti_entropy_pulls", sweep(func(st replica.SweepStats) any { return st.Pulls }))
	m.Set("anti_entropy_sweeps", sweep(func(st replica.SweepStats) any { return st.Sweeps }))
	m.Set("orphan_handoffs", sweep(func(st replica.SweepStats) any { return st.Handoffs }))
	m.Set("membership_updates", sweep(func(st replica.SweepStats) any { return st.MembershipUpdates }))
	m.Set("peers", cs.peersVar)
	return m
}

// route classifies a request against the ring. It returns the replica
// set to forward to (primary first) when no replica is this node, or
// nil when the request must be served locally (not clustered,
// loop-guarded, or this node is a replica).
func (s *Server) route(r *http.Request, digest string) []string {
	cs := s.cluster
	if cs == nil {
		return nil
	}
	if r.Header.Get(HeaderForwarded) != "" {
		cs.forwardedServes.Add(1)
		return nil
	}
	owners := cs.ownersFor(digest)
	if len(owners) == 0 || slices.Contains(owners, cs.self) {
		cs.ownerHits.Add(1)
		return nil
	}
	return owners
}

// hasLocal reports whether the artifact with the given content
// address is already present on this node (store index/stat probe, or
// the in-memory by-address map when persistence is disabled) — in
// which case a by-address request is served locally even when another
// node owns the key: content addressing makes every copy identical.
func (s *Server) hasLocal(digest string) bool {
	if s.st != nil {
		return s.st.Has(digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem[digest] != nil
}

// relay forwards the request to owner and streams the owner's
// response back verbatim. It returns false — having written nothing —
// when the owner is unreachable or draining (connect error, 503), so
// the caller can try the next replica or fall back to serving locally;
// any other owner response, including client errors and backpressure,
// is the answer and is relayed as-is.
func (s *Server) relay(w http.ResponseWriter, r *http.Request, owner string, body io.Reader) bool {
	cs := s.cluster
	pv := cs.peerVar(owner)
	pv.forwards.Add(1)
	u := *r.URL
	u.Scheme = "http"
	u.Host = owner
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), body)
	if err != nil {
		pv.forwardErrors.Add(1)
		return false
	}
	req.Header.Set(HeaderForwarded, cs.self)
	req.Header.Set(HeaderEpoch, strconv.FormatUint(cs.state.Epoch(), 10))
	if rid := requestID(r.Context()); rid != "" {
		req.Header.Set(HeaderRequestID, rid)
	}
	for _, h := range []string{"Content-Type", "Accept", "If-None-Match", "If-Modified-Since", HeaderAPIKey} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	start := time.Now()
	resp, err := cs.hc.Do(req)
	if err != nil {
		pv.forwardErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	s.noteEpoch(owner, resp.Header.Get(HeaderEpoch))
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The owner is draining (or shedding its shutdown): treat it as
		// down and let this node degrade to the next replica or local
		// service rather than bubbling a 5xx to the client.
		io.Copy(io.Discard, resp.Body)
		pv.forwardErrors.Add(1)
		return false
	}
	for _, h := range []string{
		"Content-Type", "Content-Length", "ETag", "Last-Modified",
		"X-Avtmor-Rom-Key", "X-Avtmor-Rom-Order", "Retry-After",
		HeaderCost,
	} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	if s.forwardLatency != nil {
		s.forwardLatency.Observe(time.Since(start).Seconds())
	}
	return true
}

// noteEpoch compares a peer's advertised epoch against the local one
// and, when the peer is ahead, starts an asynchronous membership
// refresh from it — the epoch-mismatch half of dynamic membership:
// divergence is detected on the first request that crosses it, not on
// the next sweep.
func (s *Server) noteEpoch(peer, header string) {
	if header == "" {
		return
	}
	cs := s.cluster
	peerEpoch, err := strconv.ParseUint(header, 10, 64)
	if err != nil {
		return
	}
	epoch := cs.state.Epoch()
	if peerEpoch == epoch {
		return
	}
	cs.epochMismatches.Add(1)
	if peerEpoch > epoch {
		s.refreshMembership(peer)
	}
}

// refreshMembership fetches and applies peer's membership in the
// background, coalescing concurrent triggers into one in-flight
// refresh.
func (s *Server) refreshMembership(peer string) {
	cs := s.cluster
	if !cs.refreshing.CompareAndSwap(false, true) {
		return
	}
	s.repWG.Add(1)
	go func() {
		defer s.repWG.Done()
		defer cs.refreshing.Store(false)
		ctx, cancel := context.WithTimeout(context.Background(), peerOpTimeout)
		defer cancel()
		if m, err := (peerOps{s}).Membership(ctx, peer); err == nil {
			cs.state.Apply(m)
		}
	}()
}

// withEpoch stamps every response with this node's membership epoch
// and inspects the epoch a forwarding peer attached to its request; a
// peer that is ahead triggers a membership refresh. The forwarded
// request itself is still served (one-hop guard): mid-transition the
// two views disagree about placement for at most that hop.
func (s *Server) withEpoch(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cs := s.cluster
		w.Header().Set(HeaderEpoch, strconv.FormatUint(cs.state.Epoch(), 10))
		if from := cluster.Normalize(r.Header.Get(HeaderForwarded)); from != "" {
			s.noteEpoch(from, r.Header.Get(HeaderEpoch))
		}
		next.ServeHTTP(w, r)
	})
}

// Drain flips /healthz to 503 "draining" so load balancers and ring
// peers stop routing new work here, while everything already accepted
// (and forwarded peer traffic on open connections) keeps being served.
// Drain is idempotent and implied by Close; cmd/avtmord calls it on
// SIGTERM before the listener closes so the fleet observes the
// departure ahead of connection errors.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }
