package serve

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"avtmor/internal/cluster"
)

// HeaderForwarded marks a request that already crossed one peer hop.
// Its value is the forwarding node's address. A server that receives
// it always answers locally — never re-forwards — so divergent ring
// views (a fleet mid-rollout with different -peers lists) degrade to
// one extra hop instead of a forwarding loop.
const HeaderForwarded = "X-Avtmor-Forwarded"

// peerVars is the per-peer counter pair surfaced under
// /metrics → cluster.peers.<addr>.
type peerVars struct {
	forwards, forwardErrors expvar.Int
}

// clusterState is the routing tier of a Server: the consistent-hash
// ring over the static peer list, the HTTP client used for peer hops,
// and the counters that make routing observable. A nil clusterState
// (no -peers) keeps the server a plain single process.
type clusterState struct {
	ring *cluster.Ring
	self string
	hc   *http.Client

	peers map[string]*peerVars // normalized peer addr → counters (self excluded)
	// ownerHits counts requests this node answered because the ring
	// placed the key here; forwardedServes the requests answered
	// locally because a peer forwarded them (loop guard); localHits
	// by-address requests served locally although another node owns
	// the key (the artifact was already on this node); fallbackLocal
	// requests computed/served locally because the owner was
	// unreachable or draining.
	ownerHits, forwardedServes, localHits, fallbackLocal expvar.Int
}

// newClusterState validates and builds the routing tier from Config.
// An empty peer list returns (nil, nil): clustering disabled.
func newClusterState(cfg Config) (*clusterState, error) {
	if len(cfg.Peers) == 0 {
		if cfg.Node != "" {
			return nil, fmt.Errorf("serve: Node %q set without Peers", cfg.Node)
		}
		return nil, nil
	}
	self := cluster.Normalize(cfg.Node)
	if self == "" {
		return nil, fmt.Errorf("serve: Peers configured but Node is empty; set Node to this server's address as it appears in Peers")
	}
	ring := cluster.New(cfg.Peers, 0)
	if !ring.Contains(self) {
		return nil, fmt.Errorf("serve: Node %q is not in Peers %v", self, ring.Nodes())
	}
	headerTimeout := cfg.PeerHeaderTimeout
	if headerTimeout <= 0 {
		headerTimeout = 30 * time.Second
	}
	cs := &clusterState{
		ring:  ring,
		self:  self,
		peers: map[string]*peerVars{},
		hc: &http.Client{
			// No overall client timeout: the forwarded request carries
			// the caller's context (and ?timeout= deadline). The dial
			// timeout is what turns a dead owner into a fast local
			// fallback instead of a hung entry node, and the response
			// header timeout does the same for an owner that accepts
			// the connection but then wedges — without it a stalled
			// peer pins the relay goroutine (and the caller) until the
			// request deadline, if there is one at all.
			Transport: &http.Transport{
				DialContext: (&net.Dialer{
					Timeout:   2 * time.Second,
					KeepAlive: 30 * time.Second,
				}).DialContext,
				MaxIdleConnsPerHost:   16,
				IdleConnTimeout:       90 * time.Second,
				ResponseHeaderTimeout: headerTimeout,
			},
		},
	}
	for _, p := range ring.Nodes() {
		if p != self {
			cs.peers[p] = &peerVars{}
		}
	}
	return cs, nil
}

// vars renders the routing tier as a nested expvar map mounted at
// /metrics → "cluster".
func (cs *clusterState) vars() *expvar.Map {
	m := new(expvar.Map).Init()
	self := cs.self
	m.Set("node", expvar.Func(func() any { return self }))
	m.Set("nodes", expvar.Func(func() any { return len(cs.ring.Nodes()) }))
	m.Set("owner_hits", &cs.ownerHits)
	m.Set("forwarded_serves", &cs.forwardedServes)
	m.Set("local_hits", &cs.localHits)
	m.Set("fallback_local", &cs.fallbackLocal)
	peers := new(expvar.Map).Init()
	for addr, pv := range cs.peers {
		pm := new(expvar.Map).Init()
		pm.Set("forwards", &pv.forwards)
		pm.Set("forward_errors", &pv.forwardErrors)
		peers.Set(addr, pm)
	}
	m.Set("peers", peers)
	return m
}

// route classifies a request against the ring. It returns the owner's
// address when the request should be forwarded, or "" when it must be
// served locally (not clustered, loop-guarded, or owned here).
func (s *Server) route(r *http.Request, digest string) string {
	cs := s.cluster
	if cs == nil {
		return ""
	}
	if r.Header.Get(HeaderForwarded) != "" {
		cs.forwardedServes.Add(1)
		return ""
	}
	owner := cs.ring.Owner(digest)
	if owner == cs.self || owner == "" {
		cs.ownerHits.Add(1)
		return ""
	}
	return owner
}

// hasLocal reports whether the artifact with the given content
// address is already present on this node (store index/stat probe, or
// the in-memory by-address map when persistence is disabled) — in
// which case a by-address request is served locally even when another
// node owns the key: content addressing makes every copy identical.
func (s *Server) hasLocal(digest string) bool {
	if s.st != nil {
		return s.st.Has(digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem[digest] != nil
}

// relay forwards the request to owner and streams the owner's
// response back verbatim. It returns false — having written nothing —
// when the owner is unreachable or draining (connect error, 503), so
// the caller can fall back to serving locally; any other owner
// response, including client errors and backpressure, is the answer
// and is relayed as-is.
func (s *Server) relay(w http.ResponseWriter, r *http.Request, owner string, body io.Reader) bool {
	cs := s.cluster
	pv := cs.peers[owner]
	pv.forwards.Add(1)
	u := *r.URL
	u.Scheme = "http"
	u.Host = owner
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), body)
	if err != nil {
		pv.forwardErrors.Add(1)
		return false
	}
	req.Header.Set(HeaderForwarded, cs.self)
	for _, h := range []string{"Content-Type", "Accept", "If-None-Match", "If-Modified-Since"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := cs.hc.Do(req)
	if err != nil {
		pv.forwardErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The owner is draining (or shedding its shutdown): treat it as
		// down and let this node degrade to local service rather than
		// bubbling a 5xx to the client.
		io.Copy(io.Discard, resp.Body)
		pv.forwardErrors.Add(1)
		return false
	}
	for _, h := range []string{
		"Content-Type", "Content-Length", "ETag", "Last-Modified",
		"X-Avtmor-Rom-Key", "X-Avtmor-Rom-Order", "Retry-After",
	} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// Drain flips /healthz to 503 "draining" so load balancers and ring
// peers stop routing new work here, while everything already accepted
// (and forwarded peer traffic on open connections) keeps being served.
// Drain is idempotent and implied by Close; cmd/avtmord calls it on
// SIGTERM before the listener closes so the fleet observes the
// departure ahead of connection errors.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }
