package serve

// The replication half of the cluster tier: write-through pushes to
// co-replicas, read-repair on by-address GETs, the /v1/cluster/*
// surfaces (key-list exchange, membership gossip, join/leave
// handshake, replica-copy PUT), and the adapters that plug the
// anti-entropy sweeper into the store and the peer HTTP client.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"time"

	"avtmor"
	"avtmor/internal/cluster"
	"avtmor/internal/replica"
	"avtmor/internal/store"
)

// peerOpTimeout bounds one background peer operation (replica push,
// membership refresh, handshake broadcast): long enough for a ROM
// upload on a congested link, short enough that a dead peer never
// pins a goroutine past the next sweep.
const peerOpTimeout = 10 * time.Second

// maxPullBytes bounds an artifact fetched from a peer during
// read-repair or anti-entropy — same ceiling as request bodies.
const maxPullBytes = 64 << 20

// afterWrite runs the replication side of a freshly computed artifact.
// On a replica, the write is already durable locally (synchronous
// primary write); the remaining copies are pushed to the co-replicas
// asynchronously — best-effort, because the anti-entropy sweep
// backstops any push that fails. On a non-replica (owner-down
// fallback), the local copy is tagged as an orphan so the sweep hands
// it to the real owners and reclaims the space, instead of leaving
// dead weight that never serves a request. ctx contributes only the
// request ID, so the originating request is greppable on the
// co-replica's access log; the pushes themselves outlive the request.
func (s *Server) afterWrite(ctx context.Context, digest string, rom *avtmor.ROM) {
	cs := s.cluster
	if cs == nil {
		return
	}
	owners := cs.ownersFor(digest)
	if !slices.Contains(owners, cs.self) {
		if s.st != nil && s.st.MarkOrphan(digest) == nil {
			cs.orphansMarked.Add(1)
		}
		return
	}
	rid := requestID(ctx)
	for _, o := range owners {
		if o == cs.self {
			continue
		}
		s.repWG.Add(1)
		go s.pushReplica(o, digest, rid, rom)
	}
}

// pushReplica uploads one artifact copy to a co-replica. It runs
// detached from any request: the client's response never waits on
// follower writes.
func (s *Server) pushReplica(owner, digest, rid string, rom *avtmor.ROM) {
	defer s.repWG.Done()
	cs := s.cluster
	var buf bytes.Buffer
	if _, err := rom.WriteTo(&buf); err != nil {
		cs.replicaPushErrors.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerOpTimeout)
	defer cancel()
	if rid != "" {
		ctx = context.WithValue(ctx, ridKey{}, rid)
	}
	start := time.Now()
	if err := s.putReplica(ctx, owner, digest, buf.Bytes()); err != nil {
		cs.replicaPushErrors.Add(1)
		return
	}
	if s.pushLatency != nil {
		s.pushLatency.Observe(time.Since(start).Seconds())
	}
	cs.replicaPushes.Add(1)
}

// putReplica PUTs raw artifact bytes to a peer's replica endpoint.
func (s *Server) putReplica(ctx context.Context, peer, digest string, raw []byte) error {
	cs := s.cluster
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		"http://"+peer+"/v1/cluster/roms/"+digest, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderEpoch, strconv.FormatUint(cs.state.Epoch(), 10))
	if rid := requestID(ctx); rid != "" {
		req.Header.Set(HeaderRequestID, rid)
	}
	resp, err := cs.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	s.noteEpoch(peer, resp.Header.Get(HeaderEpoch))
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("serve: peer %s answered %d to replica put", peer, resp.StatusCode)
	}
	return nil
}

// readRepair restores this node's missing copy of an artifact it owns
// by pulling from a co-replica, synchronously (the requester is
// waiting, and after the pull the GET is a local hit). Reports whether
// a copy was restored.
func (s *Server) readRepair(ctx context.Context, digest string) bool {
	cs := s.cluster
	owners := cs.ownersFor(digest)
	if !slices.Contains(owners, cs.self) {
		return false
	}
	for _, o := range owners {
		if o == cs.self {
			continue
		}
		if err := (peerOps{s}).Pull(ctx, o, digest); err == nil {
			cs.readRepairs.Add(1)
			return true
		}
	}
	return false
}

// handleClusterKeys is GET /v1/cluster/keys?shard=<node>: the sorted
// content addresses stored here that the given ring node owns under
// the current membership. This is the anti-entropy exchange surface —
// content addressing turns "what is peer X missing" into a set
// difference over two of these lists.
func (s *Server) handleClusterKeys(w http.ResponseWriter, r *http.Request) {
	shard := cluster.Normalize(r.URL.Query().Get("shard"))
	if shard == "" {
		s.httpError(w, http.StatusBadRequest, "missing shard parameter")
		return
	}
	cs := s.cluster
	ms, ring := cs.state.View()
	rf := min(ms.Replicas, ring.Len())
	var keys []string
	for _, d := range s.localKeys() {
		if slices.Contains(ring.Owners(d, rf), shard) {
			keys = append(keys, d)
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	replica.WriteKeyList(w, keys)
}

// localKeys enumerates every content address stored on this node.
func (s *Server) localKeys() []string {
	if s.st != nil {
		return s.st.Keys()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return slices.Clone(s.memOrder)
}

// handlePutReplica is PUT /v1/cluster/roms/{key}: accept one replica
// copy pushed by a peer (write-through follower write, or anti-entropy
// orphan handoff). The bytes are validated as a ROM before they are
// indexed, and an accepted copy clears any orphan tag — receiving a
// replica write means placement says the artifact belongs here.
func (s *Server) handlePutReplica(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("key")
	if !store.ValidDigest(digest) {
		s.httpError(w, http.StatusBadRequest, "invalid content address %q", digest)
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if s.st != nil {
		if err := s.st.PutRaw(digest, raw); err != nil {
			s.httpError(w, http.StatusUnprocessableEntity, "replica bytes rejected: %v", err)
			return
		}
		s.st.ClearOrphan(digest)
	} else {
		rom, err := avtmor.ReadROM(bufio.NewReader(bytes.NewReader(raw)))
		if err != nil {
			s.httpError(w, http.StatusUnprocessableEntity, "replica bytes rejected: %v", err)
			return
		}
		s.remember(digest, rom)
	}
	s.cluster.replicaWrites.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleGetMembership is GET /v1/cluster/membership: the node's
// current epoch-versioned view.
func (s *Server) handleGetMembership(w http.ResponseWriter, r *http.Request) {
	ms, _ := s.cluster.state.View()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	replica.EncodeMembership(w, ms)
}

// handlePostMembership is POST /v1/cluster/membership: membership
// gossip. The posted view is adopted if newer (total order), and the
// response is whichever view won — so one round trip converges both
// sides.
func (s *Server) handlePostMembership(w http.ResponseWriter, r *http.Request) {
	m, err := replica.DecodeMembership(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.cluster.state.Apply(m)
	s.handleGetMembership(w, r)
}

// handleJoin is POST /v1/cluster/join: admit a node into the fleet.
// The new membership (epoch bumped, joiner included) is returned to
// the joiner and broadcast to the rest of the fleet asynchronously;
// nodes the broadcast misses converge via epoch headers and sweeps.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.handleTransition(w, r, s.cluster.state.Join)
}

// handleLeave is POST /v1/cluster/leave: announce a node's departure.
// Placement excludes it as soon as the new epoch propagates; artifacts
// it held are re-replicated by the surviving owners' sweeps.
func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	s.handleTransition(w, r, s.cluster.state.Leave)
}

// handleTransition decodes a join/leave body, applies the transition,
// broadcasts the resulting membership, and answers with it.
func (s *Server) handleTransition(w http.ResponseWriter, r *http.Request, apply func(string) replica.Membership) {
	req, err := replica.DecodeJoin(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	before := s.cluster.state.Epoch()
	m := apply(req.Node)
	if m.Epoch != before {
		s.broadcastMembership(m, cluster.Normalize(req.Node))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	replica.EncodeMembership(w, m)
}

// broadcastMembership pushes a freshly minted membership to every
// other fleet member (skipping the transitioning node, which gets it
// in the handshake response). Best-effort: a missed node converges on
// the next epoch-stamped request or sweep.
func (s *Server) broadcastMembership(m replica.Membership, skip string) {
	cs := s.cluster
	for _, p := range m.Peers {
		if p == cs.self || p == skip {
			continue
		}
		s.repWG.Add(1)
		go func(peer string) {
			defer s.repWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), peerOpTimeout)
			defer cancel()
			var body bytes.Buffer
			replica.EncodeMembership(&body, m)
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				"http://"+peer+"/v1/cluster/membership", &body)
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := cs.hc.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
		}(p)
	}
}

// Join performs the join handshake against seed: this node asks to be
// admitted, adopts the returned membership, and is from then on part
// of placement fleet-wide. Call it after the listener is up, so peers
// can immediately forward to the new member.
func (s *Server) Join(ctx context.Context, seed string) error {
	cs := s.cluster
	if cs == nil {
		return errors.New("serve: Join on a non-clustered server")
	}
	seed = cluster.Normalize(seed)
	if seed == "" || seed == cs.self {
		return fmt.Errorf("serve: invalid join seed %q", seed)
	}
	m, err := s.transitionVia(ctx, seed, "join")
	if err != nil {
		return err
	}
	if !slices.Contains(m.Peers, cs.self) {
		return fmt.Errorf("serve: seed %s admitted a membership without this node", seed)
	}
	cs.state.Apply(m)
	return nil
}

// Leave announces this node's departure to the first reachable peer
// and adopts the resulting membership locally (so this node stops
// considering itself an owner while it drains). The artifacts it
// stores stay on disk; surviving owners re-replicate via anti-entropy.
func (s *Server) Leave(ctx context.Context) error {
	cs := s.cluster
	if cs == nil {
		return errors.New("serve: Leave on a non-clustered server")
	}
	var lastErr error
	for _, p := range cs.state.Ring().Nodes() {
		if p == cs.self {
			continue
		}
		m, err := s.transitionVia(ctx, p, "leave")
		if err != nil {
			lastErr = err
			continue
		}
		cs.state.Apply(m)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("serve: no peer reachable to announce departure")
	}
	return lastErr
}

// transitionVia POSTs this node's join/leave request to peer and
// decodes the membership it answers with.
func (s *Server) transitionVia(ctx context.Context, peer, op string) (replica.Membership, error) {
	cs := s.cluster
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"node":%q}`, cs.self)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+"/v1/cluster/"+op, &body)
	if err != nil {
		return replica.Membership{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cs.hc.Do(req)
	if err != nil {
		return replica.Membership{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return replica.Membership{}, fmt.Errorf("serve: peer %s answered %d to %s", peer, resp.StatusCode, op)
	}
	return replica.DecodeMembership(io.LimitReader(resp.Body, 1<<20))
}

// peerOps adapts the Server's peer HTTP client to replica.PeerOps for
// the sweeper (and read-repair).
type peerOps struct{ s *Server }

func (p peerOps) Keys(ctx context.Context, peer, shard string) ([]string, uint64, error) {
	cs := p.s.cluster
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+peer+"/v1/cluster/keys?shard="+shard, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := cs.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, fmt.Errorf("serve: peer %s answered %d to key list", peer, resp.StatusCode)
	}
	epoch, _ := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64)
	keys, err := replica.ReadKeyList(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return keys, epoch, nil
}

// Pull fetches one artifact from peer and stores it locally. The GET
// carries the forwarded marker so the peer serves its local copy
// instead of re-routing — a pull must never bounce around the ring.
func (p peerOps) Pull(ctx context.Context, peer, digest string) error {
	s := p.s
	cs := s.cluster
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+peer+"/v1/roms/"+digest, nil)
	if err != nil {
		return err
	}
	req.Header.Set(HeaderForwarded, cs.self)
	req.Header.Set(HeaderEpoch, strconv.FormatUint(cs.state.Epoch(), 10))
	resp, err := cs.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("serve: peer %s answered %d to pull", peer, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPullBytes))
	if err != nil {
		return err
	}
	if s.st != nil {
		return s.st.PutRaw(digest, raw)
	}
	rom, err := avtmor.ReadROM(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		return err
	}
	s.remember(digest, rom)
	return nil
}

func (p peerOps) Push(ctx context.Context, peer, digest string) error {
	s := p.s
	if s.st == nil {
		return errors.New("serve: push without a store")
	}
	raw, err := s.st.RawBytes(digest)
	if err != nil {
		return err
	}
	return s.putReplica(ctx, peer, digest, raw)
}

func (p peerOps) Membership(ctx context.Context, peer string) (replica.Membership, error) {
	cs := p.s.cluster
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+peer+"/v1/cluster/membership", nil)
	if err != nil {
		return replica.Membership{}, err
	}
	resp, err := cs.hc.Do(req)
	if err != nil {
		return replica.Membership{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return replica.Membership{}, fmt.Errorf("serve: peer %s answered %d to membership", peer, resp.StatusCode)
	}
	return replica.DecodeMembership(io.LimitReader(resp.Body, 1<<20))
}

// localOps adapts the store to replica.LocalOps.
type localOps struct{ st *store.Store }

func (l localOps) Keys() []string      { return l.st.Keys() }
func (l localOps) Has(d string) bool   { return l.st.Has(d) }
func (l localOps) Orphans() []string   { return l.st.Orphans() }
func (l localOps) Keep(d string)       { l.st.ClearOrphan(d) }
func (l localOps) Drop(d string) error { return l.st.Remove(d) }

// startSweeper wires and starts the anti-entropy sweeper. It requires
// a store (orphan tags and raw puts live there) and a positive
// interval; cfg.AntiEntropyInterval < 0 disables sweeping explicitly.
func (s *Server) startSweeper() {
	cs := s.cluster
	if cs == nil || s.st == nil || s.cfg.AntiEntropyInterval < 0 {
		return
	}
	cs.sweeper = replica.NewSweeper(replica.Config{
		Self:     cs.self,
		State:    cs.state,
		Interval: s.cfg.AntiEntropyInterval,
		Local:    localOps{s.st},
		Peer:     peerOps{s},
		Rejoin: func() {
			if s.draining.Load() {
				return // departing on purpose; do not fight the leave
			}
			ctx, cancel := context.WithTimeout(context.Background(), peerOpTimeout)
			defer cancel()
			for _, p := range cs.state.Ring().Nodes() {
				if p == cs.self {
					continue
				}
				if err := s.Join(ctx, p); err == nil {
					return
				}
			}
		},
	})
	s.repWG.Add(1)
	go func() {
		defer s.repWG.Done()
		cs.sweeper.Run()
	}()
}
