package serve_test

// E2E tests of the replicated cluster tier: real servers, real TCP,
// R > 1 placement, write-through, read availability under a dead
// primary, anti-entropy convergence of a late joiner, orphan handoff,
// and epoch-based join/leave — the assertions behind DESIGN.md §11.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"net/url"

	"avtmor/avtmorclient"
	"avtmor/internal/cluster"
	"avtmor/internal/query"
	"avtmor/internal/replica"
	"avtmor/internal/store"
	"avtmor/serve"
)

// startReplicated boots n nodes with replication factor r and the
// given anti-entropy interval (negative disables sweeping).
func startReplicated(t testing.TB, n, r int, sweep time.Duration) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		s, err := serve.New(serve.Config{
			StoreDir:            t.TempDir(),
			Workers:             2,
			Node:                addrs[i],
			Peers:               addrs,
			Replicas:            r,
			AntiEntropyInterval: sweep,
		})
		if err != nil {
			t.Fatal(err)
		}
		node := &clusterNode{
			s:    s,
			srv:  &http.Server{Handler: s.Handler()},
			addr: addrs[i],
			url:  "http://" + addrs[i],
		}
		go node.srv.Serve(lns[i])
		nodes[i] = node
		t.Cleanup(func() { node.kill(t) })
	}
	return nodes
}

// joinNode boots one extra node that enters the fleet through seed via
// the dynamic-membership handshake.
func joinNode(t testing.TB, seed string, r int, sweep time.Duration) *clusterNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s, err := serve.New(serve.Config{
		StoreDir:            t.TempDir(),
		Workers:             2,
		Node:                addr,
		Peers:               []string{addr, seed},
		Replicas:            r,
		AntiEntropyInterval: sweep,
	})
	if err != nil {
		t.Fatal(err)
	}
	node := &clusterNode{
		s:    s,
		srv:  &http.Server{Handler: s.Handler()},
		addr: addr,
		url:  "http://" + addr,
	}
	go node.srv.Serve(ln)
	t.Cleanup(func() { node.kill(t) })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Join(ctx, seed); err != nil {
		t.Fatalf("joining via %s: %v", seed, err)
	}
	return node
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// nodeKeys fetches the digests node holds for shard over the
// anti-entropy wire endpoint.
func nodeKeys(t testing.TB, nodeURL, shard string) []string {
	t.Helper()
	resp, err := http.Get(nodeURL + "/v1/cluster/keys?shard=" + shard)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("keys: %d: %s", resp.StatusCode, data)
	}
	keys, err := replica.ReadKeyList(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func hasKey(keys []string, digest string) bool {
	for _, k := range keys {
		if k == digest {
			return true
		}
	}
	return false
}

// TestReplicatedWriteAndFailover is the tentpole acceptance test: on a
// 3-node R=2 fleet one reduction yields two copies, and killing the
// primary leaves every artifact readable byte-identically from the
// surviving replica with zero recomputes.
func TestReplicatedWriteAndFailover(t *testing.T) {
	// Anti-entropy disabled: the second copy must come from the
	// synchronous-write/async-push write-through path alone.
	nodes := startReplicated(t, 3, 2, -1)
	addrs := []string{nodes[0].addr, nodes[1].addr, nodes[2].addr}
	ring := cluster.New(addrs, 0)

	ref, key := postReduce(t, nodes[0].url, reducePath, clipper)
	owners := ring.Owners(key, 2)
	idx := map[string]int{}
	for i, a := range addrs {
		idx[a] = i
	}
	primary, follower := nodes[idx[owners[0]]], nodes[idx[owners[1]]]

	// One replica reduced synchronously (whichever of the two the
	// request landed on); the other's copy arrives on the async
	// write-through push. Both owners — and nobody else — must end up
	// holding the artifact.
	waitFor(t, 5*time.Second, "write-through to both replicas", func() bool {
		return num(t, metricsAny(t, primary.url), "store_roms") == 1 &&
			num(t, metricsAny(t, follower.url), "store_roms") == 1
	})
	for _, n := range nodes {
		if n == primary || n == follower {
			continue
		}
		if got := num(t, metricsAny(t, n.url), "store_roms"); got != 0 {
			t.Fatalf("non-replica %s persisted %v artifacts", n.addr, got)
		}
	}
	writes := num(t, sub(t, metricsAny(t, primary.url), "cluster"), "replica_writes") +
		num(t, sub(t, metricsAny(t, follower.url), "cluster"), "replica_writes")
	if writes != 1 {
		t.Fatalf("replica_writes across the owners = %v, want exactly 1 (one pushed copy)", writes)
	}
	if total := totalReductions(t, nodes); total != 1 {
		t.Fatalf("fleet reductions = %v, want exactly 1", total)
	}

	// Kill the primary. Every survivor must still serve the exact
	// bytes — the follower locally, the non-replica by walking the
	// replica set past the dead primary — without any recompute.
	before := map[string]float64{}
	for _, n := range nodes {
		if n != primary {
			before[n.addr] = num(t, metricsAny(t, n.url), "reductions")
		}
	}
	primary.kill(t)
	for _, n := range nodes {
		if n == primary {
			continue
		}
		resp, err := http.Get(n.url + "/v1/roms/" + key)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET via %s after primary death: %d", n.addr, resp.StatusCode)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("GET via %s returned different bytes after primary death", n.addr)
		}
	}
	for _, n := range nodes {
		if n == primary {
			continue
		}
		if got := num(t, metricsAny(t, n.url), "reductions"); got != before[n.addr] {
			t.Fatalf("node %s recomputed after primary death (%v -> %v)", n.addr, before[n.addr], got)
		}
	}
}

// TestAntiEntropyLateJoiner: a node joining a loaded fleet converges
// to exactly the key set the new ring assigns it, by pulling — never
// recomputing — and the whole fleet adopts the bumped epoch.
func TestAntiEntropyLateJoiner(t *testing.T) {
	nodes := startReplicated(t, 3, 2, 40*time.Millisecond)

	var keys []string
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(clipperVar, 2.0+float64(i)*1e-3)
		_, key := postReduce(t, nodes[i%3].url, reducePath, body)
		keys = append(keys, key)
	}

	d := joinNode(t, nodes[0].addr, 2, 40*time.Millisecond)
	for _, n := range nodes {
		n := n
		waitFor(t, 5*time.Second, "epoch propagation to "+n.addr, func() bool {
			cl := sub(t, metricsAny(t, n.url), "cluster")
			return num(t, cl, "epoch") == 2 && num(t, cl, "nodes") == 4
		})
	}

	addrs := []string{nodes[0].addr, nodes[1].addr, nodes[2].addr, d.addr}
	ring := cluster.New(addrs, 0)
	var owned []string
	for _, k := range keys {
		owners := ring.Owners(k, 2)
		if owners[0] == d.addr || owners[1] == d.addr {
			owned = append(owned, k)
		}
	}
	if len(owned) == 0 {
		t.Skip("ring assigned the joiner none of the test keys (hash-dependent); nothing to converge")
	}

	waitFor(t, 10*time.Second, "late joiner convergence", func() bool {
		got := nodeKeys(t, d.url, d.addr)
		if len(got) != len(owned) {
			return false
		}
		for _, k := range owned {
			if !hasKey(got, k) {
				return false
			}
		}
		return true
	})
	m := metricsAny(t, d.url)
	if got := num(t, m, "reductions"); got != 0 {
		t.Fatalf("joiner recomputed %v artifacts instead of pulling", got)
	}
	if pulls := num(t, sub(t, m, "cluster"), "anti_entropy_pulls"); pulls < float64(len(owned)) {
		t.Fatalf("anti_entropy_pulls = %v, want >= %d", pulls, len(owned))
	}
	// Pulled copies are the owners' exact bytes: a GET served by the
	// joiner matches a GET served by an original owner.
	for _, k := range owned {
		viaD, _ := fetchROM(t, d.url, k)
		viaOld, _ := fetchROM(t, nodes[0].url, k)
		if !bytes.Equal(viaD, viaOld) {
			t.Fatalf("joiner's copy of %s differs from the fleet's", k)
		}
	}
}

// fetchROM fetches an artifact by content address.
func fetchROM(t testing.TB, base, digest string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/roms/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return data, resp.StatusCode
}

// TestOrphanHandoff: an artifact that lands on a non-replica (here via
// a forged forwarded request, the same shape an owner-down fallback
// leaves behind) is tagged, handed to its real owner by the sweeper,
// and then dropped locally — the fix for the orphaned-fallback leak.
func TestOrphanHandoff(t *testing.T) {
	nodes := startReplicated(t, 3, 1, 40*time.Millisecond)
	addrs := []string{nodes[0].addr, nodes[1].addr, nodes[2].addr}
	ring := cluster.New(addrs, 0)

	// Aim a forwarded-tagged reduce at a node that does not own the
	// key: the loop guard makes it compute and store locally, and the
	// write-through path must tag the copy as an orphan.
	_, probe := postReduce(t, nodes[0].url, reducePath, clipper)
	_ = probe
	variant := fmt.Sprintf(clipperVar, 7.25)
	var nonOwner, owner *clusterNode
	var key string
	for i := 0; i < 50; i++ {
		body := fmt.Sprintf(clipperVar, 7.25+float64(i)*1e-3)
		sysKey := reduceDigest(t, body)
		own := ring.Owner(sysKey)
		for _, n := range nodes {
			if n.addr != own {
				nonOwner = n
				variant = body
				key = sysKey
				break
			}
		}
		if nonOwner != nil {
			for _, n := range nodes {
				if n.addr == own {
					owner = n
				}
			}
			break
		}
	}
	req, err := http.NewRequest("POST", nonOwner.url+reducePath, strings.NewReader(variant))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.HeaderForwarded, "test-forger")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forged forwarded reduce: %d", resp.StatusCode)
	}
	if got := num(t, sub(t, metricsAny(t, nonOwner.url), "cluster"), "orphans_marked"); got != 1 {
		t.Fatalf("orphans_marked = %v, want 1", got)
	}

	// The sweeper hands the copy to the owner and drops it here. The
	// owner may also pull the copy through its own anti-entropy sweep
	// first (the orphan is listed under the owner's shard), so the
	// handoff counter is part of the convergence condition, not a
	// post-hoc assertion.
	waitFor(t, 10*time.Second, "orphan handoff", func() bool {
		return hasKey(nodeKeys(t, owner.url, owner.addr), key) &&
			!hasKey(nodeKeys(t, nonOwner.url, nonOwner.addr), key) &&
			num(t, sub(t, metricsAny(t, nonOwner.url), "cluster"), "orphan_handoffs") >= 1
	})
	// The artifact stayed reachable throughout — and still is, from
	// anywhere.
	if _, code := fetchROM(t, nonOwner.url, key); code != http.StatusOK {
		t.Fatalf("GET after handoff: %d", code)
	}
}

// reduceDigest computes the content address the fleet will assign a
// reduce body under the test's fixed query parameters — the same
// client-side placement computation avtmorclient runs.
func reduceDigest(t testing.TB, body string) string {
	t.Helper()
	params, err := url.ParseQuery("k1=2&k2=1&s0=0.4")
	if err != nil {
		t.Fatal(err)
	}
	req, err := query.Parse(params)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := query.System([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	return store.Digest(req.Key(sys))
}

// reduceParams is the parsed form of reducePath's query string.
func reduceParams(t testing.TB) url.Values {
	t.Helper()
	params, err := url.ParseQuery("k1=2&k2=1&s0=0.4")
	if err != nil {
		t.Fatal(err)
	}
	return params
}

// TestEpochJoinLeave: join bumps the fleet epoch and spreads the new
// membership everywhere; a graceful leave bumps it again and shrinks
// the view, and a stale client re-syncs off the epoch header instead
// of dialing by a dead map.
func TestEpochJoinLeave(t *testing.T) {
	nodes := startReplicated(t, 2, 1, 40*time.Millisecond)

	// A client built on the initial 2-node view adopts epoch 1 on first
	// contact.
	c, err := avtmorclient.New(avtmorclient.Config{Nodes: []string{nodes[0].addr, nodes[1].addr}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Reduce(ctx, []byte(clipper), reduceParams(t)); err != nil {
		t.Fatal(err)
	}

	d := joinNode(t, nodes[0].addr, 1, 40*time.Millisecond)
	for _, n := range nodes {
		n := n
		waitFor(t, 5*time.Second, "join epoch on "+n.addr, func() bool {
			cl := sub(t, metricsAny(t, n.url), "cluster")
			return num(t, cl, "epoch") == 2 && num(t, cl, "nodes") == 3
		})
	}

	// The next request's response carries epoch 2; the client notices
	// and refreshes its membership to the 3-node view.
	if _, err := c.Reduce(ctx, []byte(fmt.Sprintf(clipperVar, 3.5)), reduceParams(t)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().EpochRefreshes; got < 1 {
		t.Fatalf("client EpochRefreshes = %d, want >= 1", got)
	}
	if got := c.Nodes(); len(got) != 3 {
		t.Fatalf("client view after refresh = %v, want 3 nodes", got)
	}

	// Graceful leave: epoch 3, the survivors' view shrinks back.
	if err := d.s.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		n := n
		waitFor(t, 5*time.Second, "leave epoch on "+n.addr, func() bool {
			cl := sub(t, metricsAny(t, n.url), "cluster")
			return num(t, cl, "epoch") == 3 && num(t, cl, "nodes") == 2
		})
	}
}

// BenchmarkServeReduceReplicated measures the replicated write path on
// a 2-node R=2 fleet: every iteration reduces a distinct circuit on
// its primary (synchronous) and write-through pushes the copy to the
// follower (asynchronous, off the request's critical path). Compare
// with BenchmarkServeReduceDistinct for the replication tax. Recorded
// in BENCH_solver.json.
func BenchmarkServeReduceReplicated(b *testing.B) {
	nodes := startReplicated(b, 2, 2, -1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(clipperVar, 2.0+float64(i+1)*1e-6)
		resp, err := http.Post(nodes[0].url+reducePath, "text/plain", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
