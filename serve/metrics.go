package serve

// The Prometheus face of the server: GET /metrics renders an
// internal/promtext registry whose counters and gauges read the same
// cells /metrics.json reports (no double bookkeeping — the expvar
// surface stays the single source of truth for counts), plus the
// latency histograms that JSON surface never had. Cluster gauges that
// must be mutually consistent (epoch, node count, replication factor)
// are filled from ONE membership snapshot taken in an OnScrape
// prelude, so a scrape racing a membership transition can never
// observe a torn combination like the new epoch with the old node
// count.

import (
	"expvar"
	"net/http"

	"avtmor"
	"avtmor/internal/promtext"
	"avtmor/internal/replica"
)

// Histogram bucket layouts. Latency buckets span 100µs–60s (queue
// waits and reduces live at opposite ends); width buckets cover the
// practical batch range.
var (
	latencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60}
	widthBuckets   = []float64{1, 2, 4, 8, 16, 32, 64, 128}
)

// memSnap is the consistent membership snapshot the cluster gauges
// render from. It is refreshed under the registry lock by the OnScrape
// prelude, and only read by gauge funcs that run under that same lock
// — so epoch/nodes/replicas always describe one membership view.
type memSnap struct {
	epoch    uint64
	nodes    int
	replicas int
}

// initProm builds the Prometheus registry. Counters bridge the
// existing expvar cells via CounterFunc; histograms are the only new
// state. Call after initVars and cluster construction.
func (s *Server) initProm() {
	r := promtext.NewRegistry()
	s.prom = r

	ivar := func(v *expvar.Int) func() float64 {
		return func() float64 { return float64(v.Value()) }
	}
	r.CounterFunc("avtmor_reduce_total", "Reduce requests received (counted before quota and admission).", ivar(&s.reduceReqs))
	r.CounterFunc("avtmor_simulate_total", "Simulation requests accepted for handling.", ivar(&s.simReqs))
	r.CounterFunc("avtmor_rom_get_total", "By-address ROM GET requests.", ivar(&s.romGets))
	r.CounterFunc("avtmor_batch_total", "Batch reduce requests.", ivar(&s.batchReqs))
	r.CounterFunc("avtmor_batch_items_total", "Items across all batch requests.", ivar(&s.batchItems))
	r.CounterFunc("avtmor_rejected_total", "Requests shed with 429 or 503 (backpressure, drain).", ivar(&s.rejected))
	r.CounterFunc("avtmor_client_errors_total", "Requests answered with a 4xx other than backpressure.", ivar(&s.clientErrs))
	r.CounterFunc("avtmor_server_errors_total", "Requests answered with a 5xx.", ivar(&s.srvErrs))
	r.CounterFunc("avtmor_quota_rejected_total", "Requests shed because the client's quota bucket was dry.", ivar(&s.quotaRejected))
	r.CounterFunc("avtmor_admission_rejected_total", "Requests shed because their cost did not fit the admission budget.", ivar(&s.admissionRejected))

	r.GaugeFunc("avtmor_workers", "Size of the reduce/simulate worker pool.",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("avtmor_workers_busy", "Workers currently executing.",
		func() float64 { return float64(s.busy.Load()) })
	r.GaugeFunc("avtmor_queue_capacity", "Bounded wait-queue capacity.",
		func() float64 { return float64(s.cfg.QueueDepth) })
	r.GaugeFunc("avtmor_queue_depth", "Requests waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("avtmor_admission_budget", "Concurrent cost budget, in admission units.",
		func() float64 { return float64(s.adm.budget) })
	r.GaugeFunc("avtmor_admission_in_use", "Admission units reserved by running requests.",
		func() float64 { return float64(s.adm.used()) })
	r.GaugeFunc("avtmor_draining", "1 while Drain/Close has been called, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})

	rstat := func(f func(avtmor.ReducerStats) int64) func() float64 {
		return func() float64 { return float64(f(s.reducer.Stats())) }
	}
	r.CounterFunc("avtmor_reductions_total", "Reductions actually executed (cache misses).",
		rstat(func(st avtmor.ReducerStats) int64 { return st.Reductions }))
	r.CounterFunc("avtmor_cache_hits_total", "Reduce requests answered from the in-memory ROM cache.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.CacheHits }))
	r.CounterFunc("avtmor_store_hits_total", "Reduce requests answered from the on-disk store.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.StoreHits }))
	r.CounterFunc("avtmor_store_errors_total", "Store read/write failures observed by the reducer.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.StoreErrors }))
	r.CounterFunc("avtmor_coalesced_total", "Reduce requests coalesced onto an identical in-flight reduction.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.Coalesced }))
	r.CounterFunc("avtmor_evictions_total", "ROMs evicted from the in-memory cache.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.Evictions }))
	r.GaugeFunc("avtmor_cached_roms", "ROMs resident in the in-memory cache.",
		rstat(func(st avtmor.ReducerStats) int64 { return int64(st.CachedROMs) }))
	r.GaugeFunc("avtmor_inflight_reductions", "Reductions executing or coalescing right now.",
		rstat(func(st avtmor.ReducerStats) int64 { return int64(st.InFlight) }))
	r.CounterFunc("avtmor_solver_factorizations_total", "Sparse/dense factorizations performed.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.Factorizations }))
	r.CounterFunc("avtmor_solver_batch_solves_total", "Blocked multi-RHS solve calls.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.BatchSolves }))
	r.CounterFunc("avtmor_solver_batch_columns_total", "Right-hand-side columns across blocked solves.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.BatchColumns }))
	r.CounterFunc("avtmor_solver_symbolic_analyses_total", "Symbolic LU analyses (pattern-level work).",
		rstat(func(st avtmor.ReducerStats) int64 { return st.SymbolicAnalyses }))
	r.CounterFunc("avtmor_solver_numeric_refactors_total", "Numeric refactorizations reusing a symbolic analysis.",
		rstat(func(st avtmor.ReducerStats) int64 { return st.NumericRefactors }))

	r.GaugeFunc("avtmor_store_roms", "Artifacts resident in the on-disk store.",
		func() float64 {
			if s.st == nil {
				return 0
			}
			return float64(s.st.Len())
		})
	r.GaugeFunc("avtmor_store_quarantined", "Store files quarantined by the magic sniff.",
		func() float64 {
			if s.st == nil {
				return 0
			}
			return float64(s.st.Stats().Quarantined)
		})

	s.queueWait = r.Histogram("avtmor_queue_wait_seconds",
		"Time an admitted job waited for a worker before executing.", latencyBuckets)
	s.reduceLatency = r.Histogram("avtmor_reduce_seconds",
		"End-to-end reduce handling time (queue wait + reduction).", latencyBuckets)
	s.simLatency = r.Histogram("avtmor_simulate_seconds",
		"End-to-end simulate handling time.", latencyBuckets)
	s.httpLatency = r.Histogram("avtmor_http_request_seconds",
		"Wall time of every HTTP request, all endpoints.", latencyBuckets)
	s.batchWidth = r.Histogram("avtmor_batch_width",
		"Items per batch request.", widthBuckets)

	if cs := s.cluster; cs != nil {
		cs.initProm(r)
		s.forwardLatency = r.Histogram("avtmor_forward_seconds",
			"Time to relay a request to a ring peer and stream its response.", latencyBuckets)
		s.pushLatency = r.Histogram("avtmor_replica_push_seconds",
			"Time to push one replica copy to a co-replica.", latencyBuckets)
	}
}

// initProm registers the cluster gauges and counters. The
// epoch/nodes/replicas trio reads the snap refreshed by the OnScrape
// prelude — the torn-read fix: one State.View() per scrape, not three
// independent reads racing a membership transition.
func (cs *clusterState) initProm(r *promtext.Registry) {
	cs.promReg = r
	snap := &memSnap{}
	r.OnScrape(func() {
		ms, ring := cs.state.View()
		snap.epoch = ms.Epoch
		snap.nodes = ring.Len()
		snap.replicas = ms.Replicas
	})
	r.GaugeFunc("avtmor_cluster_epoch", "Membership epoch of this node's view.",
		func() float64 { return float64(snap.epoch) })
	r.GaugeFunc("avtmor_cluster_nodes", "Fleet size under this node's membership view.",
		func() float64 { return float64(snap.nodes) })
	r.GaugeFunc("avtmor_cluster_replicas", "Replication factor R under this node's membership view.",
		func() float64 { return float64(snap.replicas) })

	ivar := func(v *expvar.Int) func() float64 {
		return func() float64 { return float64(v.Value()) }
	}
	r.CounterFunc("avtmor_cluster_owner_hits_total", "Requests served here because the ring placed the key here.", ivar(&cs.ownerHits))
	r.CounterFunc("avtmor_cluster_forwarded_serves_total", "Requests served here because a peer forwarded them (loop guard).", ivar(&cs.forwardedServes))
	r.CounterFunc("avtmor_cluster_local_hits_total", "Peer-owned requests served from a local copy.", ivar(&cs.localHits))
	r.CounterFunc("avtmor_cluster_fallback_local_total", "Requests computed locally because every owner was unreachable or draining.", ivar(&cs.fallbackLocal))
	r.CounterFunc("avtmor_cluster_replica_writes_total", "Replica copies accepted over PUT /v1/cluster/roms.", ivar(&cs.replicaWrites))
	r.CounterFunc("avtmor_cluster_replica_pushes_total", "Replica copies pushed to co-replicas.", ivar(&cs.replicaPushes))
	r.CounterFunc("avtmor_cluster_replica_push_errors_total", "Replica pushes that failed (anti-entropy will retry).", ivar(&cs.replicaPushErrors))
	r.CounterFunc("avtmor_cluster_read_repairs_total", "Missing local copies restored from a co-replica during a GET.", ivar(&cs.readRepairs))
	r.CounterFunc("avtmor_cluster_epoch_mismatches_total", "Requests or relays that met a peer on a different epoch.", ivar(&cs.epochMismatches))
	r.CounterFunc("avtmor_cluster_orphans_marked_total", "Fallback artifacts tagged for anti-entropy handoff.", ivar(&cs.orphansMarked))

	sweep := func(f func(st replica.SweepStats) int64) func() float64 {
		return func() float64 {
			if cs.sweeper == nil {
				return 0
			}
			return float64(f(cs.sweeper.Stats()))
		}
	}
	r.CounterFunc("avtmor_cluster_anti_entropy_sweeps_total", "Anti-entropy sweep rounds completed.",
		sweep(func(st replica.SweepStats) int64 { return st.Sweeps }))
	r.CounterFunc("avtmor_cluster_anti_entropy_pulls_total", "Missing replica copies pulled during sweeps.",
		sweep(func(st replica.SweepStats) int64 { return st.Pulls }))
	r.CounterFunc("avtmor_cluster_orphan_handoffs_total", "Orphaned fallback artifacts handed to their owners.",
		sweep(func(st replica.SweepStats) int64 { return st.Handoffs }))
	r.CounterFunc("avtmor_cluster_membership_updates_total", "Membership views adopted from peers.",
		sweep(func(st replica.SweepStats) int64 { return st.MembershipUpdates }))

	// Per-peer counters for statically configured peers register now;
	// dynamically joined peers register on first contact via peerVar.
	cs.mu.Lock()
	peers := make([]string, 0, len(cs.peers))
	for addr := range cs.peers {
		peers = append(peers, addr)
	}
	cs.mu.Unlock()
	for _, addr := range peers {
		cs.promPeer(addr)
	}
}

// promPeer registers the per-peer forward counters as labeled children
// of the peer counter families. Safe to call once per peer; peerVar
// guards the once.
func (cs *clusterState) promPeer(addr string) {
	r := cs.promReg
	if r == nil {
		return
	}
	cs.mu.Lock()
	pv := cs.peers[addr]
	cs.mu.Unlock()
	if pv == nil {
		return
	}
	lbl := promtext.Label{Name: "peer", Value: addr}
	r.CounterFunc("avtmor_cluster_peer_forwards_total", "Requests relayed to this peer.",
		func() float64 { return float64(pv.forwards.Value()) }, lbl)
	r.CounterFunc("avtmor_cluster_peer_forward_errors_total", "Relays to this peer that failed or found it draining.",
		func() float64 { return float64(pv.forwardErrors.Value()) }, lbl)
}

// handlePromMetrics is GET /metrics: the Prometheus text exposition.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.prom.WriteTo(w)
}
