// Package serve exposes the avtmor reduction engine as an HTTP
// service: POST a netlist (or a serialized System) and get back a ROM
// artifact; simulate stored ROMs over the wire; survive restarts via a
// content-addressed on-disk store. It is the serving tier of the
// paper's amortization argument — reduce once, evaluate many — lifted
// to the process boundary.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST /v1/reduce                  netlist or serialized-System body → ROM binary
//	POST /v1/reduce/batch            many bodies in one batch frame → multi-ROM frame
//	GET  /v1/roms/{key}              stored ROM binary by content address (ETag/304)
//	POST /v1/roms/{key}/simulate     workload JSON → transient result JSON/CSV
//	GET  /healthz                    liveness
//	GET  /metrics                    Prometheus text exposition (docs/METRICS.md)
//	GET  /metrics.json               legacy expvar-style JSON counters
//
// Reductions and simulations execute on a bounded worker pool with a
// bounded wait queue; overflow is answered 429 so load sheds at the
// edge instead of piling up goroutines. Identical concurrent reduce
// requests coalesce onto one reduction (Reducer singleflight), and
// completed artifacts are written through to the store, where a
// restarted daemon finds them again.
//
// Load is managed in three layers, outermost first: per-API-key
// token-bucket quotas (Config.Quotas, X-Avtmor-Api-Key), a cost-aware
// admission budget that prices each request from its parsed input
// before it queues (Config.CostBudget, estimate echoed in
// X-Avtmor-Cost), and the worker pool itself. Every request carries a
// trace ID (X-Avtmor-Request-Id, minted at the entry node) that
// propagates across forwards, batch fan-out, and replica pushes, and
// lands in the optional JSON access log (Config.AccessLog). The
// operator-facing story is docs/OPERATIONS.md.
package serve

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"avtmor"
	"avtmor/internal/promtext"
	"avtmor/internal/quota"
	"avtmor/internal/store"
)

// Config parameterizes a Server.
type Config struct {
	// StoreDir is the on-disk ROM store directory. "" disables
	// persistence: artifacts live in memory only and die with the
	// process.
	StoreDir string
	// Workers bounds concurrently executing reductions and
	// simulations. Default: runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds requests waiting for a worker; overflow is
	// answered 429. Default 64; negative means no queue (a request
	// either starts immediately or is rejected).
	QueueDepth int
	// CacheLimit bounds the in-memory ROM cache (LRU eviction; evicted
	// entries reload from the store). With persistence disabled it
	// also bounds the by-address artifact map (oldest dropped, so old
	// keys stop resolving — configure a StoreDir to keep them).
	// 0 = unbounded.
	CacheLimit int
	// MaxBodyBytes caps request bodies. Default 64 MiB.
	MaxBodyBytes int64
	// Node and Peers enable the cluster tier: Peers is the static
	// address list of every node in the fleet (this one included) and
	// Node is this server's own entry in it. Keys are placed on a
	// consistent-hash ring over Peers; requests for keys owned by
	// another node are forwarded there (one hop at most, guarded by
	// X-Avtmor-Forwarded), and an unreachable or draining owner
	// degrades to local service. Empty Peers keeps the server a plain
	// single process. See DESIGN.md §7.
	Node  string
	Peers []string
	// PeerHeaderTimeout bounds how long a forwarded request waits for
	// the owner's response headers before the relay gives up and the
	// entry node falls back to local service. Default 30s.
	PeerHeaderTimeout time.Duration
	// Replicas is the replication factor R: every artifact is placed
	// on the R distinct clockwise ring successors of its content
	// address, written through to all of them, and servable from any.
	// 0 defaults to 1 (primary only, the pre-replication behavior);
	// values above the fleet size are clamped. See DESIGN.md §11.
	Replicas int
	// AntiEntropyInterval is the background sweep period that repairs
	// missing replica copies and hands off orphaned fallback
	// artifacts. 0 selects the default (5s); negative disables
	// sweeping. Sweeping requires a StoreDir.
	AntiEntropyInterval time.Duration
	// CostBudget bounds the total estimated cost of concurrently
	// admitted work, in admission units (see docs/OPERATIONS.md for the
	// cost model). Requests are priced before enqueue and admitted
	// against this budget instead of a job count, so expensive reduces
	// queue behind their own kind while cheap ones keep flowing.
	// Default 1024.
	CostBudget int64
	// Quotas maps API keys (the X-Avtmor-Api-Key header) to token
	// buckets enforced before admission. The "" key is the default
	// bucket shared by unkeyed requests and unlisted keys; with no ""
	// entry, unlisted keys are unlimited. Empty map disables quotas.
	Quotas map[string]QuotaSpec
	// AccessLog, when non-nil, receives one JSON line per completed
	// request (request ID, status, duration, cost). Writes are
	// serialized by the server.
	AccessLog io.Writer
}

// Server is the HTTP reduction service. Create with New, mount
// Handler, and Close on shutdown.
type Server struct {
	cfg     Config
	reducer *avtmor.Reducer
	st      *store.Store // nil when persistence is disabled

	mu       sync.Mutex
	mem      map[string]*avtmor.ROM // guarded by mu; digest → artifact, when st == nil
	memOrder []string               // guarded by mu; insertion order, for CacheLimit trimming

	queue    chan func()
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
	repWG    sync.WaitGroup // background replication/membership goroutines
	busy     atomic.Int64
	draining atomic.Bool

	cluster *clusterState // nil when Peers is empty

	adm    *admission     // concurrent cost budget
	quotas *quota.Limiter // nil when no quotas configured
	logMu  sync.Mutex     // serializes AccessLog lines

	vars                             *expvar.Map
	reduceReqs, simReqs, romGets     expvar.Int
	batchReqs, batchItems            expvar.Int
	rejected, clientErrs, srvErrs    expvar.Int
	quotaRejected, admissionRejected expvar.Int

	prom           *promtext.Registry
	queueWait      *promtext.Histogram
	reduceLatency  *promtext.Histogram
	simLatency     *promtext.Histogram
	httpLatency    *promtext.Histogram
	batchWidth     *promtext.Histogram
	forwardLatency *promtext.Histogram // nil when not clustered
	pushLatency    *promtext.Histogram // nil when not clustered
}

// New opens the store (when configured), builds the Reducer tier, and
// starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	var ropts []avtmor.ReducerOption
	if cfg.CacheLimit > 0 {
		ropts = append(ropts, avtmor.WithCacheLimit(cfg.CacheLimit))
	}
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir); err != nil {
			return nil, fmt.Errorf("serve: opening ROM store: %w", err)
		}
		ropts = append(ropts, avtmor.WithROMStore(st))
	}
	cs, err := newClusterState(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.CostBudget <= 0 {
		cfg.CostBudget = 1024
	}
	s := &Server{
		cfg:     cfg,
		reducer: avtmor.NewReducer(ropts...),
		st:      st,
		mem:     map[string]*avtmor.ROM{},
		queue:   make(chan func(), cfg.QueueDepth),
		closed:  make(chan struct{}),
		cluster: cs,
		adm:     newAdmission(cfg.CostBudget),
	}
	if len(cfg.Quotas) > 0 {
		s.quotas = quota.New(cfg.Quotas)
	}
	s.initVars()
	s.initProm()
	s.startSweeper()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the route table. It can be mounted under a prefix
// with http.StripPrefix. On a clustered server the /v1/cluster
// surfaces are mounted too, and every response carries the membership
// epoch (X-Avtmor-Epoch).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reduce", s.handleReduce)
	mux.HandleFunc("POST /v1/reduce/batch", s.handleReduceBatch)
	mux.HandleFunc("GET /v1/roms/{key}", s.handleGetROM)
	mux.HandleFunc("POST /v1/roms/{key}/simulate", s.handleSimulate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetrics)
	var h http.Handler = mux
	if s.cluster != nil {
		mux.HandleFunc("GET /v1/cluster/keys", s.handleClusterKeys)
		mux.HandleFunc("GET /v1/cluster/membership", s.handleGetMembership)
		mux.HandleFunc("POST /v1/cluster/membership", s.handlePostMembership)
		mux.HandleFunc("POST /v1/cluster/join", s.handleJoin)
		mux.HandleFunc("POST /v1/cluster/leave", s.handleLeave)
		mux.HandleFunc("PUT /v1/cluster/roms/{key}", s.handlePutReplica)
		h = s.withEpoch(h)
	}
	// Observability is the outermost layer: request IDs exist before
	// any routing decision, and the access log sees the final status.
	return s.withObservability(h)
}

// handleHealthz is the load-balancer (and ring-peer) health probe:
// "ok" while serving, 503 "draining" from the moment Drain or Close
// is called — before the listener stops accepting — so routers pull
// this node out of rotation ahead of hard connection errors.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// Close marks the server draining (/healthz → 503) and drains the
// worker pool: waiting requests are answered 503, and Close returns
// once in-flight work finishes (work holds a request context, so an
// upstream http.Server shutdown that cancels request contexts bounds
// the wait).
func (s *Server) Close() error {
	s.Drain()
	if cs := s.cluster; cs != nil && cs.sweeper != nil {
		cs.sweeper.Stop()
	}
	s.closeOne.Do(func() { close(s.closed) })
	s.wg.Wait()
	s.repWG.Wait()
	return nil
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case fn := <-s.queue:
			s.busy.Add(1)
			fn()
			s.busy.Add(-1)
		}
	}
}

// Pool submission outcomes that map to HTTP statuses.
var (
	errBusy   = errors.New("serve: worker pool and queue are full")
	errClosed = errors.New("serve: server is shutting down")
)

// run executes fn on the worker pool, waiting for completion, the
// caller's context, or shutdown. A full queue fails fast with errBusy
// (backpressure, not buffering). When run returns nil, fn has
// completed and its captured results are safe to read.
func (s *Server) run(ctx context.Context, fn func()) error {
	select {
	case <-s.closed:
		return errClosed
	default:
	}
	done := make(chan struct{})
	enqueued := time.Now()
	job := func() {
		defer close(done)
		s.queueWait.Observe(time.Since(enqueued).Seconds())
		if ctx.Err() == nil {
			fn()
		}
	}
	select {
	case s.queue <- job:
	default:
		return errBusy
	}
	select {
	case <-done:
		if err := ctx.Err(); err != nil {
			// The job was popped after the caller's deadline and
			// skipped the work; report the context, not success.
			return err
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.closed:
		return errClosed
	}
}

// lookup resolves a content address to a servable ROM, or (nil, nil)
// when unknown.
func (s *Server) lookup(digest string) (*avtmor.ROM, error) {
	if s.st != nil {
		return s.st.Get(digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem[digest], nil
}

// remember records a reduced artifact for by-address lookups when no
// store is configured, trimming oldest-first past CacheLimit so the
// persistence-disabled daemon stays bounded too.
func (s *Server) remember(digest string, rom *avtmor.ROM) {
	if s.st != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[digest]; ok {
		return
	}
	s.mem[digest] = rom
	s.memOrder = append(s.memOrder, digest)
	if n := s.cfg.CacheLimit; n > 0 {
		for len(s.memOrder) > n {
			delete(s.mem, s.memOrder[0])
			s.memOrder = s.memOrder[1:]
		}
	}
}

func (s *Server) initVars() {
	m := new(expvar.Map).Init()
	m.Set("reduce_requests", &s.reduceReqs)
	m.Set("simulate_requests", &s.simReqs)
	m.Set("rom_gets", &s.romGets)
	m.Set("batch_requests", &s.batchReqs)
	m.Set("batch_items", &s.batchItems)
	m.Set("rejected", &s.rejected)
	m.Set("client_errors", &s.clientErrs)
	m.Set("server_errors", &s.srvErrs)
	m.Set("quota_rejected", &s.quotaRejected)
	m.Set("admission_rejected", &s.admissionRejected)
	m.Set("workers", intVar(int64(s.cfg.Workers)))
	m.Set("queue_capacity", intVar(int64(s.cfg.QueueDepth)))
	gauge := func(name string, f func() any) { m.Set(name, expvar.Func(f)) }
	gauge("queue_depth", func() any { return len(s.queue) })
	gauge("workers_busy", func() any { return s.busy.Load() })
	gauge("admission_budget", func() any { return s.adm.budget })
	gauge("admission_in_use", func() any { return s.adm.used() })
	rstat := func(f func(avtmor.ReducerStats) any) func() any {
		return func() any { return f(s.reducer.Stats()) }
	}
	gauge("reductions", rstat(func(st avtmor.ReducerStats) any { return st.Reductions }))
	gauge("cache_hits", rstat(func(st avtmor.ReducerStats) any { return st.CacheHits }))
	gauge("store_hits", rstat(func(st avtmor.ReducerStats) any { return st.StoreHits }))
	gauge("store_errors", rstat(func(st avtmor.ReducerStats) any { return st.StoreErrors }))
	gauge("coalesced", rstat(func(st avtmor.ReducerStats) any { return st.Coalesced }))
	gauge("solver_factorizations", rstat(func(st avtmor.ReducerStats) any { return st.Factorizations }))
	gauge("solver_batch_solves", rstat(func(st avtmor.ReducerStats) any { return st.BatchSolves }))
	gauge("solver_batch_columns", rstat(func(st avtmor.ReducerStats) any { return st.BatchColumns }))
	gauge("solver_symbolic_analyses", rstat(func(st avtmor.ReducerStats) any { return st.SymbolicAnalyses }))
	gauge("solver_numeric_refactors", rstat(func(st avtmor.ReducerStats) any { return st.NumericRefactors }))
	gauge("evictions", rstat(func(st avtmor.ReducerStats) any { return st.Evictions }))
	gauge("cached_roms", rstat(func(st avtmor.ReducerStats) any { return st.CachedROMs }))
	gauge("inflight_reductions", rstat(func(st avtmor.ReducerStats) any { return st.InFlight }))
	gauge("store_roms", func() any {
		if s.st == nil {
			return 0
		}
		return s.st.Len()
	})
	gauge("store_quarantined", func() any {
		if s.st == nil {
			return 0
		}
		return s.st.Stats().Quarantined
	})
	gauge("store_loads", func() any {
		if s.st == nil {
			return 0
		}
		return s.st.Stats().Loads
	})
	gauge("store_raw_opens", func() any {
		if s.st == nil {
			return 0
		}
		return s.st.Stats().RawOpens
	})
	gauge("draining", func() any {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	if s.cluster != nil {
		m.Set("cluster", s.cluster.vars())
	}
	s.vars = m
}

// intVar is a constant expvar value.
type intVar int64

func (v intVar) String() string { return fmt.Sprintf("%d", int64(v)) }

// handleMetrics renders every counter and gauge as one JSON object —
// expvar's wire shape, served from per-Server vars instead of the
// process-global expvar page so multiple Servers (and tests) never
// collide on names.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, s.vars.String())
}

// countError buckets a non-200 status into the error counters.
func (s *Server) countError(code int) {
	if code >= 500 {
		s.srvErrs.Add(1)
	} else if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		s.rejected.Add(1)
	} else {
		s.clientErrs.Add(1)
	}
}

// httpError writes a plain-text error and counts it.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.countError(code)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// poolStatus maps pool/context failures to statuses: backpressure →
// 429, shutdown → 503, deadline → 504, client gone → 499 (nginx's
// convention; the client never sees it). It is the one taxonomy both
// the single-request and the per-item batch paths speak.
func poolStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests, "worker pool saturated, retry later"
	case errors.Is(err, errClosed):
		return http.StatusServiceUnavailable, "shutting down"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline exceeded"
	default:
		return 499, "client canceled"
	}
}

// runError answers a pool/context failure over HTTP.
func (s *Server) runError(w http.ResponseWriter, err error) {
	code, msg := poolStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.httpError(w, code, "%s", msg)
}
