package serve_test

// E2E tests of the cluster tier: N real serve.Servers behind real TCP
// listeners, a shared static peer list, and the assertions that make
// the sharding story true — any entry node answers with the
// byte-identical artifact while exactly one node pays the reduction,
// and a dead owner degrades to local compute instead of a 5xx.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"avtmor"
	"avtmor/internal/cluster"
	"avtmor/internal/query"
	"avtmor/internal/store"
	"avtmor/internal/wire"
	"avtmor/serve"
)

// clusterNode is one in-process daemon: a serve.Server on its own
// listener and store directory, sharing the fleet's peer list.
type clusterNode struct {
	s    *serve.Server
	srv  *http.Server
	addr string
	url  string
	dead bool
}

// startCluster boots n nodes whose -peers lists contain each other.
// Listeners are created first so every node knows the full address set
// before any server starts.
func startCluster(t testing.TB, n int) []*clusterNode {
	return startClusterCfg(t, n, nil)
}

// startClusterCfg is startCluster with a per-node Config hook, applied
// after the shared fields are set (access-log sinks, quotas, budgets).
func startClusterCfg(t testing.TB, n int, mut func(i int, cfg *serve.Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := serve.Config{
			StoreDir: t.TempDir(),
			Workers:  2,
			Node:     addrs[i],
			Peers:    addrs,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		s, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		node := &clusterNode{
			s:    s,
			srv:  &http.Server{Handler: s.Handler()},
			addr: addrs[i],
			url:  "http://" + addrs[i],
		}
		go node.srv.Serve(lns[i])
		nodes[i] = node
		t.Cleanup(func() { node.kill(t) })
	}
	return nodes
}

// kill hard-stops a node: listener and connections closed, workers
// drained. Idempotent.
func (n *clusterNode) kill(t testing.TB) {
	t.Helper()
	if n.dead {
		return
	}
	n.dead = true
	n.srv.Close()
	n.s.Close()
}

// metricsAny fetches /metrics.json without assuming flat values (the
// cluster section is a nested object).
func metricsAny(t testing.TB, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func num(t testing.TB, m map[string]any, key string) float64 {
	t.Helper()
	v, ok := m[key].(float64)
	if !ok {
		t.Fatalf("metric %q is %T (%v), want number", key, m[key], m[key])
	}
	return v
}

func sub(t testing.TB, m map[string]any, key string) map[string]any {
	t.Helper()
	v, ok := m[key].(map[string]any)
	if !ok {
		t.Fatalf("metric %q is %T, want object", key, m[key])
	}
	return v
}

// totalReductions sums the reductions counter across the fleet's
// surviving nodes.
func totalReductions(t testing.TB, nodes []*clusterNode) float64 {
	t.Helper()
	var total float64
	for _, n := range nodes {
		if n.dead {
			continue
		}
		total += num(t, metricsAny(t, n.url), "reductions")
	}
	return total
}

// ownerIndex identifies the node that performed a reduction (the
// ring owner of the test circuit's key).
func ownerIndex(t testing.TB, nodes []*clusterNode) int {
	t.Helper()
	owner := -1
	for i, n := range nodes {
		if n.dead {
			continue
		}
		if num(t, metricsAny(t, n.url), "reductions") > 0 {
			if owner >= 0 {
				t.Fatalf("nodes %d and %d both reduced", owner, i)
			}
			owner = i
		}
	}
	if owner < 0 {
		t.Fatal("no node performed a reduction")
	}
	return owner
}

// TestClusterSingleOwner is the tentpole acceptance test: a reduce
// issued to every entry node of a 3-node fleet returns byte-identical
// artifacts while exactly one node performs the reduction, and
// by-address GET/simulate requests work through any entry node.
func TestClusterSingleOwner(t *testing.T) {
	nodes := startCluster(t, 3)

	bodies := make([][]byte, len(nodes))
	var key string
	for i, n := range nodes {
		var k string
		bodies[i], k = postReduce(t, n.url, reducePath, clipper)
		if key == "" {
			key = k
		} else if k != key {
			t.Fatalf("node %d returned content address %s, node 0 returned %s", i, k, key)
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("node %d returned different artifact bytes", i)
		}
	}
	if total := totalReductions(t, nodes); total != 1 {
		t.Fatalf("total reductions across the fleet = %v, want exactly 1", total)
	}
	owner := ownerIndex(t, nodes)

	// The owner's cluster counters show it answered for its keyspace;
	// every other node shows the forward.
	for i, n := range nodes {
		cl := sub(t, metricsAny(t, n.url), "cluster")
		if i == owner {
			if num(t, cl, "forwarded_serves") < 2 {
				t.Fatalf("owner forwarded_serves = %v, want >= 2", cl["forwarded_serves"])
			}
			continue
		}
		peers := sub(t, cl, "peers")
		pv := sub(t, peers, nodes[owner].addr)
		if num(t, pv, "forwards") < 1 {
			t.Fatalf("node %d never forwarded to the owner: %v", i, cl)
		}
		if num(t, pv, "forward_errors") != 0 {
			t.Fatalf("node %d saw forward errors against a healthy owner: %v", i, cl)
		}
	}

	// By-address fetch through every entry node: same bytes, exactly
	// one stored copy (the owner's).
	stored := 0
	for i, n := range nodes {
		resp, err := http.Get(n.url + "/v1/roms/" + key)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Equal(got, bodies[0]) {
			t.Fatalf("GET via node %d: %d, identical=%v", i, resp.StatusCode, bytes.Equal(got, bodies[0]))
		}
		if num(t, metricsAny(t, n.url), "store_roms") > 0 {
			stored++
		}
	}
	if stored != 1 {
		t.Fatalf("%d nodes persisted the artifact, want exactly the owner", stored)
	}

	// Simulation through a non-owner entry node is forwarded and
	// answered.
	entry := (owner + 1) % len(nodes)
	workload := `{"tEnd": 5, "steps": 100, "input": {"kind": "const", "values": [1]}}`
	resp, err := http.Post(nodes[entry].url+"/v1/roms/"+key+"/simulate", "application/json", strings.NewReader(workload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("forwarded simulate: %d: %s", resp.StatusCode, data)
	}
	var traj struct {
		T []float64 `json:"t"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.T) != 101 {
		t.Fatalf("forwarded simulate returned %d samples, want 101", len(traj.T))
	}
}

// TestClusterOwnerDownFallback: killing the owner must not surface a
// 5xx — an entry node that cannot reach the owner computes locally
// and still answers with the byte-identical artifact.
func TestClusterOwnerDownFallback(t *testing.T) {
	nodes := startCluster(t, 3)

	entry := 0
	ref, key := postReduce(t, nodes[entry].url, reducePath, clipper)
	owner := ownerIndex(t, nodes)
	if entry == owner {
		entry = 1
	}
	nodes[owner].kill(t)

	// Reduce through a surviving entry node: the forward fails fast,
	// the entry node degrades to computing the artifact itself, and
	// the client sees a clean 200. The recompute is a fresh reduction,
	// so its stream differs in run-dependent stats (build wall-clock),
	// but it must carry the same content address and the same model.
	got, gotKey := postReduce(t, nodes[entry].url, reducePath, clipper)
	if gotKey != key {
		t.Fatalf("fallback changed the content address: %s vs %s", gotKey, key)
	}
	refROM, err := avtmor.ReadROM(bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}
	gotROM, err := avtmor.ReadROM(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if gotROM.Order() != refROM.Order() || gotROM.Inputs() != refROM.Inputs() {
		t.Fatalf("fallback artifact shape (q=%d m=%d) differs from the owner's (q=%d m=%d)",
			gotROM.Order(), gotROM.Inputs(), refROM.Order(), refROM.Inputs())
	}
	m := metricsAny(t, nodes[entry].url)
	if num(t, m, "reductions") != 1 {
		t.Fatalf("entry node reductions = %v, want 1 (local fallback compute)", m["reductions"])
	}
	cl := sub(t, m, "cluster")
	if num(t, cl, "fallback_local") < 1 {
		t.Fatalf("fallback_local = %v, want >= 1", cl["fallback_local"])
	}
	pv := sub(t, sub(t, cl, "peers"), nodes[owner].addr)
	if num(t, pv, "forward_errors") < 1 {
		t.Fatalf("dead owner produced no forward_errors: %v", cl)
	}

	// The fallback copy now serves by-address requests on the entry
	// node too (local_hits, no forward attempt against the dead peer).
	resp, err := http.Get(nodes[entry].url + "/v1/roms/" + key)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(direct, got) {
		t.Fatalf("GET after fallback: %d, identical=%v", resp.StatusCode, bytes.Equal(direct, got))
	}
	cl = sub(t, metricsAny(t, nodes[entry].url), "cluster")
	if num(t, cl, "local_hits") < 1 {
		t.Fatalf("local_hits = %v, want >= 1", cl["local_hits"])
	}
}

// TestClusterLoopGuard: a request carrying X-Avtmor-Forwarded is
// served where it lands, even by a node that does not own the key —
// the guard that turns divergent ring views into one extra hop
// instead of a forwarding loop.
func TestClusterLoopGuard(t *testing.T) {
	nodes := startCluster(t, 2)

	// Find the non-owner without reducing: ask for a placement via a
	// real reduce, then aim the forged forwarded request at the other
	// node with a *different* circuit so its reduction is fresh.
	_, _ = postReduce(t, nodes[0].url, reducePath, clipper)
	owner := ownerIndex(t, nodes)
	nonOwner := 1 - owner

	variant := strings.Replace(clipper, "R2 n2 0 2.0", "R2 n2 0 3.0", 1)
	req, err := http.NewRequest("POST", nodes[nonOwner].url+reducePath, strings.NewReader(variant))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.HeaderForwarded, "test-forger")
	before := num(t, metricsAny(t, nodes[nonOwner].url), "reductions")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: %d: %s", resp.StatusCode, data)
	}
	m := metricsAny(t, nodes[nonOwner].url)
	if num(t, m, "reductions") != before+1 {
		t.Fatalf("forwarded request did not reduce locally: %v", m["reductions"])
	}
	if num(t, sub(t, m, "cluster"), "forwarded_serves") < 1 {
		t.Fatal("forwarded_serves not counted")
	}
}

// TestServeDrainingHealthz: Drain flips /healthz to 503 "draining"
// (Close implies it) while the metrics gauge follows, so load
// balancers and ring peers can stop routing before the listener dies.
func TestServeDrainingHealthz(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Workers: 1})
	check := func(wantCode int, wantBody string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode || !strings.Contains(string(body), wantBody) {
			t.Fatalf("healthz: %d %q, want %d %q", resp.StatusCode, body, wantCode, wantBody)
		}
	}
	check(http.StatusOK, "ok")
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}
	s.Drain()
	if !s.Draining() {
		t.Fatal("Drain did not latch")
	}
	check(http.StatusServiceUnavailable, "draining")
	if m := metrics(t, ts.URL); m["draining"] != 1 {
		t.Fatalf("draining gauge = %v, want 1", m["draining"])
	}
	// A draining node still serves traffic until the listener closes.
	if _, key := postReduce(t, ts.URL, reducePath, clipper); key == "" {
		t.Fatal("draining node refused work")
	}
	s.Close()
	check(http.StatusServiceUnavailable, "draining")
}

// TestClusterConfigValidation: a clustered Config must be coherent.
func TestClusterConfigValidation(t *testing.T) {
	if _, err := serve.New(serve.Config{Workers: 1, Peers: []string{":1", ":2"}}); err == nil {
		t.Fatal("Peers without Node accepted")
	}
	if _, err := serve.New(serve.Config{Workers: 1, Node: ":9", Peers: []string{":1", ":2"}}); err == nil {
		t.Fatal("Node outside Peers accepted")
	}
	if _, err := serve.New(serve.Config{Workers: 1, Node: ":9"}); err == nil {
		t.Fatal("Node without Peers accepted")
	}
	s, err := serve.New(serve.Config{Workers: 1, Node: ":8081", Peers: []string{":8081", "127.0.0.1:8082"}})
	if err != nil {
		t.Fatalf("normalized self entry rejected: %v", err)
	}
	s.Close()
}

// BenchmarkServeClusterForward measures the cluster tax: a reduce
// request entering at a non-owner node, forwarded one hop to the
// owner's hot in-memory cache, streamed back through the entry node.
// Compare with BenchmarkServeHTTPRoundTrip (the same hot hit without
// the extra hop). Recorded in BENCH_solver.json.
func BenchmarkServeClusterForward(b *testing.B) {
	nodes := startCluster(b, 2)
	body := fmt.Sprintf(clipperVar, 2.0)
	_, _ = postReduce(b, nodes[0].url, reducePath, body)
	owner := 0
	if num(b, metricsAny(b, nodes[1].url), "reductions") > 0 {
		owner = 1
	}
	entry := nodes[1-owner]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(entry.url+reducePath, "text/plain", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// TestClusterBatchMultiOwner: a batch whose keys span several ring
// owners enters at one node, is split into per-owner sub-batches, and
// every item is reduced exactly once on its owner — then sequential
// submission of the same inputs through the *other* entry nodes yields
// byte-identical ROMs under identical content addresses, proving the
// batch and single-request paths interchangeable fleet-wide.
func TestClusterBatchMultiOwner(t *testing.T) {
	nodes := startCluster(t, 3)
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	ring := cluster.New(addrs, 0)
	params, err := url.ParseQuery("k1=2&k2=1&s0=0.4")
	if err != nil {
		t.Fatal(err)
	}
	req, err := query.Parse(params)
	if err != nil {
		t.Fatal(err)
	}

	// Generate distinct circuits until the batch provably spans at
	// least two owners (placement computed client-side, same ring).
	var bodies [][]byte
	ownedBy := map[string]int{} // node addr → item count
	for i := 0; (len(bodies) < 6 || len(ownedBy) < 2) && i < 200; i++ {
		body := []byte(fmt.Sprintf(clipperVar, 2.0+float64(i)*1e-3))
		sys, err := query.System(body)
		if err != nil {
			t.Fatal(err)
		}
		ownedBy[ring.Owner(store.Digest(req.Key(sys)))]++
		bodies = append(bodies, body)
	}
	if len(ownedBy) < 2 {
		t.Fatalf("could not build a multi-owner batch over %v", addrs)
	}
	unique := len(bodies)
	// A duplicate item rides along: same key, must coalesce, not
	// double-reduce.
	bodies = append(bodies, bodies[0])

	var frame bytes.Buffer
	if err := wire.WriteBatchRequest(&frame, bodies); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(nodes[0].url+"/v1/reduce/batch?k1=2&k2=1&s0=0.4", wire.BatchContentType, bytes.NewReader(frame.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: %d: %s", resp.StatusCode, data)
	}
	results, err := wire.ReadBatchResponse(resp.Body, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(bodies) {
		t.Fatalf("%d results for %d items", len(results), len(bodies))
	}
	for i, res := range results {
		if !res.OK() {
			t.Fatalf("item %d: %d %s", i, res.Status, res.Body)
		}
	}
	if !bytes.Equal(results[len(results)-1].Body, results[0].Body) || results[len(results)-1].Key != results[0].Key {
		t.Fatal("duplicate item diverged from its twin")
	}

	// Exactly one reduction per unique item, distributed to the owners
	// the client-side ring predicted.
	if total := totalReductions(t, nodes); total != float64(unique) {
		t.Fatalf("fleet performed %v reductions for %d unique items", total, unique)
	}
	for _, n := range nodes {
		got := num(t, metricsAny(t, n.url), "reductions")
		if got != float64(ownedBy[n.addr]) {
			t.Fatalf("node %s reduced %v items, ring owns %d", n.addr, got, ownedBy[n.addr])
		}
	}

	// Sequential re-submission through the other entry nodes: identical
	// addresses and bytes, zero fresh reductions.
	for i := 0; i < unique; i++ {
		entry := nodes[1+i%2]
		seq, key := postReduce(t, entry.url, reducePath, string(bodies[i]))
		if key != results[i].Key {
			t.Fatalf("item %d: sequential key %s, batch key %s", i, key, results[i].Key)
		}
		if !bytes.Equal(seq, results[i].Body) {
			t.Fatalf("item %d: sequential bytes differ from batch bytes", i)
		}
	}
	if total := totalReductions(t, nodes); total != float64(unique) {
		t.Fatalf("sequential follow-ups re-reduced: %v", total)
	}
}
