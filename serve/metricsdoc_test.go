package serve_test

// Drift guard between the runtime metrics surface and its reference
// documentation. docs/METRICS.md is declared the source of truth for
// metric names: every family a live clustered node emits must be
// documented there, and every documented row tagged `stable` must
// actually be emitted. Adding a metric without documenting it — or
// documenting one that no longer exists — fails this test, so the two
// can never drift apart silently.

import (
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"

	"avtmor/internal/promtext"
)

// docRow matches one table row of docs/METRICS.md whose first cell is
// a backticked metric name.
var docRow = regexp.MustCompile("^\\|\\s*`(avtmor_[a-zA-Z0-9_]+)`\\s*\\|")

// documentedMetrics parses docs/METRICS.md into name → stable?.
func documentedMetrics(t *testing.T) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile("../docs/METRICS.md")
	if err != nil {
		t.Fatalf("reading docs/METRICS.md: %v", err)
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := docRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if _, dup := out[name]; dup {
			t.Fatalf("docs/METRICS.md documents %s twice", name)
		}
		out[name] = strings.Contains(line, "| stable |")
	}
	if len(out) == 0 {
		t.Fatal("docs/METRICS.md contains no metric table rows")
	}
	return out
}

// TestMetricsDocDriftGuard scrapes a live clustered test server and
// checks both directions of the docs contract.
func TestMetricsDocDriftGuard(t *testing.T) {
	docs := documentedMetrics(t)

	// A clustered node emits the full surface, cluster families
	// included; one reduce makes the counters live.
	nodes := startCluster(t, 3)
	postReduce(t, nodes[0].url, reducePath, clipper)

	resp, err := http.Get(nodes[0].url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scrape, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	emitted := map[string]bool{}
	for _, name := range scrape.Families() {
		emitted[name] = true
	}

	// Direction 1: everything emitted is documented.
	for name := range emitted {
		if _, ok := docs[name]; !ok {
			t.Errorf("metric %s is emitted but not documented in docs/METRICS.md", name)
		}
	}
	// Direction 2: everything documented as stable is emitted.
	for name, stable := range docs {
		if stable && !emitted[name] {
			t.Errorf("docs/METRICS.md tags %s stable but a clustered node does not emit it", name)
		}
	}
}
