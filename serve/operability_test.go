package serve_test

// E2E tests of the operability surfaces: per-key quotas, admission
// edge cases around malformed input, request-ID minting and fleet-wide
// propagation, and the Prometheus exposition of a live cluster.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"avtmor/internal/promtext"
	"avtmor/serve"
)

// TestQuotaExhaustion: the default bucket rejects once its burst is
// spent, with a Retry-After the client can sleep on, while a keyed
// client with its own bucket keeps flowing and forwarded peer traffic
// is never charged twice.
func TestQuotaExhaustion(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		StoreDir: t.TempDir(),
		Workers:  2,
		Quotas: map[string]serve.QuotaSpec{
			"":     {Rate: 0.001, Burst: 2}, // effectively no refill within the test
			"gold": {Rate: 1000, Burst: 1000},
		},
	})

	post := func(key string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+reducePath, strings.NewReader(clipper))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("X-Avtmor-Api-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Burst of 2: two unkeyed requests pass, the third is shed.
	for i := 0; i < 2; i++ {
		if resp := post(""); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: %d, want 200", i, resp.StatusCode)
		}
	}
	resp := post("")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("quota 429 Retry-After = %q, want a positive integer", ra)
	}

	// A key with its own bucket is unaffected by the drained default.
	if resp := post("gold"); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed request against the drained default bucket: %d, want 200", resp.StatusCode)
	}

	// An unconfigured key falls to the (drained) default bucket.
	if resp := post("stranger"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unlisted key should share the default bucket: %d, want 429", resp.StatusCode)
	}

	// The rejections are visible in the legacy JSON metrics.
	if m := metrics(t, ts.URL); m["quota_rejected"] < 2 {
		t.Fatalf("quota_rejected = %v, want >= 2", m["quota_rejected"])
	}
}

// TestAdmissionEdgeInputs: malformed and oversized bodies are rejected
// before any cost is estimated or budget reserved — admission never
// leaks units to requests that cannot run.
func TestAdmissionEdgeInputs(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		StoreDir:     t.TempDir(),
		Workers:      2,
		MaxBodyBytes: 1 << 10,
	})

	// Malformed netlist: 400, unpriced.
	resp, err := http.Post(ts.URL+reducePath, "text/plain", strings.NewReader("R1 this is not a netlist"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed netlist: %d, want 400", resp.StatusCode)
	}
	if c := resp.Header.Get("X-Avtmor-Cost"); c != "" {
		t.Fatalf("malformed netlist was priced (cost %s); estimation must follow parsing", c)
	}

	// Oversized body: shed by the byte cap, also unpriced.
	big := strings.Repeat("* comment line\n", 1<<10)
	resp, err = http.Post(ts.URL+reducePath, "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		t.Fatalf("oversized body: %d, want a 4xx rejection", resp.StatusCode)
	}
	if c := resp.Header.Get("X-Avtmor-Cost"); c != "" {
		t.Fatalf("oversized body was priced (cost %s)", c)
	}

	// No admission units leaked by either rejection.
	if m := metrics(t, ts.URL); m["admission_in_use"] != 0 {
		t.Fatalf("admission_in_use = %v after rejected requests, want 0", m["admission_in_use"])
	}
}

// TestRequestIDMintAndEcho: the entry node mints a valid trace ID when
// the client supplies none (or an invalid one) and echoes a valid
// client ID back unchanged.
func TestRequestIDMintAndEcho(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{StoreDir: t.TempDir(), Workers: 2})

	get := func(rid string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if rid != "" {
			req.Header.Set("X-Avtmor-Request-Id", rid)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Avtmor-Request-Id")
	}

	if minted := get(""); len(minted) != 16 {
		t.Fatalf("minted request ID %q, want 16 hex characters", minted)
	}
	if echoed := get("my-trace.0042"); echoed != "my-trace.0042" {
		t.Fatalf("valid client ID not echoed: got %q", echoed)
	}
	if replaced := get("bad id, has spaces"); replaced == "bad id, has spaces" || len(replaced) != 16 {
		t.Fatalf("invalid client ID not replaced with a minted one: got %q", replaced)
	}
}

// syncBuffer is a concurrency-safe access-log sink for cluster tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

// records decodes the buffered JSON lines.
func (sb *syncBuffer) records(t testing.TB) []map[string]any {
	t.Helper()
	sb.mu.Lock()
	lines := strings.Split(strings.TrimSpace(sb.b.String()), "\n")
	sb.mu.Unlock()
	var out []map[string]any
	for _, line := range lines {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestRequestIDPropagation: a trace ID attached at any entry node of a
// 3-node fleet appears in the access log of every node the request
// touched — the entry nodes and the owner that served their forwards —
// so one grep follows the request across the fleet.
func TestRequestIDPropagation(t *testing.T) {
	logs := make([]*syncBuffer, 3)
	nodes := startClusterCfg(t, 3, func(i int, cfg *serve.Config) {
		logs[i] = &syncBuffer{}
		cfg.AccessLog = logs[i]
	})

	const rid = "trace-e2e-0042"
	for i, n := range nodes {
		req, err := http.NewRequest(http.MethodPost, n.url+reducePath, strings.NewReader(clipper))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Avtmor-Request-Id", rid)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reduce via node %d: %d", i, resp.StatusCode)
		}
		if echoed := resp.Header.Get("X-Avtmor-Request-Id"); echoed != rid {
			t.Fatalf("node %d echoed request ID %q, want %q", i, echoed, rid)
		}
	}

	owner := ownerIndex(t, nodes)

	// Log lines are written after the response is on the wire; poll.
	countRID := func(i int, forwardedOnly bool) int {
		n := 0
		for _, rec := range logs[i].records(t) {
			if rec["request_id"] != rid {
				continue
			}
			if forwardedOnly && rec["forwarded_from"] == nil {
				continue
			}
			n++
		}
		return n
	}
	waitFor(t, 5*time.Second, "request ID in every entry node's log", func() bool {
		for i := range nodes {
			if countRID(i, false) == 0 {
				return false
			}
		}
		return true
	})
	// The two non-owner entries forwarded; the owner logged both
	// forwarded serves under the same trace ID, with the forwarding
	// peer recorded.
	waitFor(t, 5*time.Second, "forwarded serves in the owner's log", func() bool {
		return countRID(owner, true) >= 2
	})
	for _, rec := range logs[owner].records(t) {
		if rec["request_id"] == rid && rec["forwarded_from"] != nil {
			if rec["node"] != nodes[owner].addr {
				t.Fatalf("owner log line carries node %v, want %s", rec["node"], nodes[owner].addr)
			}
		}
	}
}

// TestPromExpositionCluster: every node of a live replicated fleet
// serves a valid Prometheus text exposition (validated by the strict
// parser, histogram invariants included), the fleet-wide reduce
// counter is live, and the cluster gauges agree with the membership.
func TestPromExpositionCluster(t *testing.T) {
	nodes := startCluster(t, 3)
	for _, n := range nodes {
		postReduce(t, n.url, reducePath, clipper)
	}

	var reduceTotal float64
	for i, n := range nodes {
		resp, err := http.Get(n.url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("node %d /metrics Content-Type = %q", i, ct)
		}
		scrape, err := promtext.Parse(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("node %d: invalid exposition: %v", i, err)
		}
		v, ok := scrape.Value("avtmor_reduce_total")
		if !ok {
			t.Fatalf("node %d: no avtmor_reduce_total", i)
		}
		reduceTotal += v
		if nn, ok := scrape.Value("avtmor_cluster_nodes"); !ok || nn != 3 {
			t.Fatalf("node %d: avtmor_cluster_nodes = %v (ok=%v), want 3", i, nn, ok)
		}
		fam := scrape.Family("avtmor_http_request_seconds")
		if fam == nil || fam.Type != "histogram" {
			t.Fatalf("node %d: avtmor_http_request_seconds missing or not a histogram", i)
		}
	}
	if reduceTotal < 3 {
		t.Fatalf("fleet-wide avtmor_reduce_total = %v, want >= 3", reduceTotal)
	}

	// The legacy JSON surface still answers with the PR 5 schema.
	m := metricsAny(t, nodes[0].url)
	for _, key := range []string{"reductions", "cache_hits", "store_roms", "workers", "cluster"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("/metrics.json lost key %q: %v", key, m)
		}
	}
}
