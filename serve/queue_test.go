package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"avtmor"
)

// TestRunBackpressure exercises the pool mechanics directly: with one
// worker and a queue of one, the third concurrent submission is shed
// with errBusy (→ 429), and capacity frees once work completes.
func TestRunBackpressure(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		first <- s.run(context.Background(), func() { close(started); <-block })
	}()
	<-started // the only worker is now busy

	second := make(chan error, 1)
	go func() {
		second <- s.run(context.Background(), func() {})
	}()
	// Wait for the second job to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if err := s.run(context.Background(), func() {}); !errors.Is(err, errBusy) {
		t.Fatalf("third submission: %v, want errBusy", err)
	}
	rr := httptest.NewRecorder()
	s.runError(rr, errBusy)
	if rr.Code != 429 || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("errBusy mapped to %d (Retry-After %q)", rr.Code, rr.Header().Get("Retry-After"))
	}

	close(block)
	if err := <-first; err != nil {
		t.Fatalf("first job: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second job: %v", err)
	}
	// Capacity is back: a fresh submission runs.
	if err := s.run(context.Background(), func() {}); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestRunAbandonedWhileQueued: a caller whose context dies while its
// job is still queued gets the context error, and the worker skips the
// stale work instead of executing it.
func TestRunAbandonedWhileQueued(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go s.run(context.Background(), func() { close(started); <-block })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	queued := make(chan error, 1)
	go func() {
		queued <- s.run(ctx, func() { ran = true })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned caller: %v", err)
	}
	close(block)
	// Let the worker pop the stale job; it must skip fn.
	for len(s.queue) != 0 {
		time.Sleep(time.Millisecond)
	}
	if err := s.run(context.Background(), func() {}); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("worker executed a job whose caller had abandoned it")
	}
}

// TestRememberBounded: with persistence disabled, the by-address
// artifact map honors CacheLimit (oldest trimmed first) instead of
// growing without bound.
func TestRememberBounded(t *testing.T) {
	s, err := New(Config{Workers: 1, CacheLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	roms := []*avtmor.ROM{{}, {}, {}}
	for i, r := range roms {
		s.remember(string(rune('a'+i)), r)
	}
	s.remember("c", roms[2]) // re-remember of a resident key must not duplicate
	if len(s.mem) != 2 || len(s.memOrder) != 2 {
		t.Fatalf("mem %d entries, order %d; want 2", len(s.mem), len(s.memOrder))
	}
	if rom, _ := s.lookup("a"); rom != nil {
		t.Fatal("oldest artifact survived past the limit")
	}
	for i, d := range []string{"b", "c"} {
		if rom, _ := s.lookup(d); rom != roms[i+1] {
			t.Fatalf("artifact %s lost", d)
		}
	}
	// Unbounded when CacheLimit is 0.
	u, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	for i := 0; i < 100; i++ {
		u.remember(string(rune(i)), &avtmor.ROM{})
	}
	if len(u.mem) != 100 {
		t.Fatalf("unbounded mem trimmed to %d", len(u.mem))
	}
}

// TestCloseShedsAndStops: Close stops the workers, and submissions
// after Close fail with errClosed (→ 503).
func TestCloseShedsAndStops(t *testing.T) {
	s, err := New(Config{Workers: 2, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.run(context.Background(), func() {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.run(context.Background(), func() {}); !errors.Is(err, errClosed) {
		t.Fatalf("post-Close submission: %v, want errClosed", err)
	}
	rr := httptest.NewRecorder()
	s.runError(rr, errClosed)
	if rr.Code != 503 {
		t.Fatalf("errClosed mapped to %d", rr.Code)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
