package serve

// Internal tests of the operability tier: the admission ledger's
// fairness invariants, the cache-hit bypass that keeps warm traffic
// flowing through a saturated budget, and the scrape-consistency pin
// for the cluster gauges (the torn-read fix). These live inside the
// package because they reach the admission struct and the prom
// registry directly.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"avtmor/internal/promtext"
	"avtmor/internal/replica"
)

// TestAdmissionFairness pins the heavy-lane cap: a heavy request
// (cost > budget/8) may hold at most 7/8 of the budget, so cheap
// traffic always has a slice, while an idle server admits anything.
func TestAdmissionFairness(t *testing.T) {
	a := newAdmission(64) // budget/8 = 8, heavyCap = 56

	// Idle server: even a request dearer than the whole budget runs.
	relDear, ok := a.tryAdmit(100)
	if !ok {
		t.Fatal("idle server rejected a request dearer than the budget")
	}
	relDear()
	relDear() // release is idempotent
	if got := a.used(); got != 0 {
		t.Fatalf("after idempotent release: inUse = %d, want 0", got)
	}

	// A heavy request holds 40 of 64 units.
	relHeavy, ok := a.tryAdmit(40)
	if !ok {
		t.Fatal("idle server rejected the first heavy request")
	}
	// A second heavy (cost 20 > 8) would reach 60 > heavyCap 56: queued.
	if _, ok := a.tryAdmit(20); ok {
		t.Fatal("second heavy request admitted past the heavy cap")
	}
	// Cheap traffic still flows: 40+4 = 44 <= 64.
	relCheap, ok := a.tryAdmit(4)
	if !ok {
		t.Fatal("cheap request rejected while the heavy lane is capped")
	}
	relCheap()

	// admit() with an expired context sheds instead of blocking forever.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.admit(ctx, 20); err == nil {
		t.Fatal("admit returned no error with the heavy lane full and the context expired")
	}

	// Releasing the heavy holder wakes a waiter.
	done := make(chan struct{})
	go func() {
		defer close(done)
		rel, err := a.admit(context.Background(), 20)
		if err != nil {
			t.Errorf("admit after release: %v", err)
			return
		}
		rel()
	}()
	relHeavy()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by release")
	}
	if got := a.used(); got != 0 {
		t.Fatalf("final inUse = %d, want 0", got)
	}
}

// clipperBody is the 3-state diode clipper used by the external tests,
// duplicated here because test packages cannot share helpers.
const clipperBody = `
I1 0 n1 IN0 1.0
C1 n1 0 1.0
R1 n1 0 2.0
D1 n1 0 1.0 0.05
R12 n1 n2 1.0
C2 n2 0 1.0
R2 n2 0 2.0
.out n2
`

// TestCacheHitBypassesSaturatedBudget is the queue-fairness
// acceptance check: with the admission budget fully reserved by
// expensive work, a warm key is still answered immediately (cache hits
// bypass the pool and the budget), while a cold key sheds with a
// cost-stamped 429 after its admission window.
func TestCacheHitBypassesSaturatedBudget(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 2, CostBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the key.
	resp, err := http.Post(ts.URL+"/v1/reduce?k1=2&k2=1&s0=0.4", "text/plain", strings.NewReader(clipperBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming reduce: %d", resp.StatusCode)
	}
	if resp.Header.Get(HeaderCost) == "" {
		t.Fatal("reduce response carries no X-Avtmor-Cost")
	}

	// Saturate: an expensive burst has reserved the whole budget.
	release, ok := s.adm.tryAdmit(8)
	if !ok {
		t.Fatal("could not reserve the full budget on an idle server")
	}
	defer release()

	// Warm key: answered from cache without touching the budget.
	done := make(chan *http.Response, 1)
	go func() {
		r2, err := http.Post(ts.URL+"/v1/reduce?k1=2&k2=1&s0=0.4", "text/plain", strings.NewReader(clipperBody))
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- r2
	}()
	select {
	case r2 := <-done:
		if r2 == nil {
			t.FailNow()
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("warm key under saturation: %d, want 200", r2.StatusCode)
		}
	case <-time.After(admitWindow + 3*time.Second):
		t.Fatal("warm key queued behind the saturated budget instead of bypassing it")
	}

	// Cold key: waits its window, then 429 with a cost-aware Retry-After.
	r3, err := http.Post(ts.URL+"/v1/reduce?k1=1&k2=1&s0=0.7", "text/plain", strings.NewReader(clipperBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold key under saturation: %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("admission 429 carries no Retry-After")
	}
	if r3.Header.Get(HeaderCost) == "" {
		t.Fatal("admission 429 carries no X-Avtmor-Cost")
	}
}

// TestClusterGaugeScrapeConsistency pins the torn-read fix: the
// cluster gauges (epoch, nodes, replicas) are read from one membership
// snapshot per scrape, so a scrape racing membership churn never pairs
// one view's epoch with another view's node count. Runs under -race in
// CI; the value assertion below catches the tear even without it.
func TestClusterGaugeScrapeConsistency(t *testing.T) {
	s, err := New(Config{
		StoreDir: t.TempDir(),
		Workers:  1,
		Node:     "127.0.0.1:7101",
		Peers:    []string{"127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Churn: odd epochs see 3 peers, even epochs see 5. A torn read
	// shows an epoch with the other parity's node count.
	three := []string{"127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"}
	five := append(append([]string{}, three...), "127.0.0.1:7104", "127.0.0.1:7105")
	nodesFor := func(epoch uint64) float64 {
		if epoch%2 == 1 {
			return 3
		}
		return 5
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for epoch := uint64(10); ; epoch++ {
			select {
			case <-stop:
				return
			default:
			}
			peers := three
			if epoch%2 == 0 {
				peers = five
			}
			s.cluster.state.Apply(replica.Membership{Epoch: epoch, Peers: peers, Replicas: 1})
		}
	}()

	for i := 0; i < 200; i++ {
		var buf bytes.Buffer
		if _, err := s.prom.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		scrape, err := promtext.Parse(&buf)
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		epoch, ok := scrape.Value("avtmor_cluster_epoch")
		if !ok {
			t.Fatal("no avtmor_cluster_epoch in the scrape")
		}
		nodes, ok := scrape.Value("avtmor_cluster_nodes")
		if !ok {
			t.Fatal("no avtmor_cluster_nodes in the scrape")
		}
		if epoch >= 10 {
			if want := nodesFor(uint64(epoch)); nodes != want {
				t.Fatalf("torn scrape: epoch %g paired with %g nodes, want %g", epoch, nodes, want)
			}
		}
	}
	close(stop)
	wg.Wait()
}
