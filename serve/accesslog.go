package serve

// Request tracing and the structured access log. Every request gets a
// request ID — minted at the entry node, honored when a forwarding
// peer (or a tracing client) already attached one — and the ID rides
// X-Avtmor-Request-Id across forwards, replica pushes, and batch
// fan-out, so one grep over the fleet's access logs follows a request
// end to end. The access log itself is one JSON object per line,
// written after the response completes.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// HeaderRequestID carries the request's trace ID. The entry node mints
// one when the client did not; peers receiving a forwarded request
// reuse it.
const HeaderRequestID = "X-Avtmor-Request-Id"

// ridKey is the context key the request ID travels under inside the
// process (handlers, afterWrite replica pushes).
type ridKey struct{}

// requestID returns the trace ID attached to ctx, or "".
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// mintRequestID returns 16 random hex characters.
func mintRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// validRequestID accepts client- or peer-supplied IDs: 1–64
// characters from the URL- and log-safe set. Anything else is
// replaced at the door, so log lines stay greppable and header
// injection stays impossible.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// accessRecord is one access-log line.
type accessRecord struct {
	Time      string  `json:"time"`
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Query     string  `json:"query,omitempty"`
	Status    int     `json:"status"`
	Bytes     int64   `json:"bytes"`
	DurMS     float64 `json:"duration_ms"`
	Remote    string  `json:"remote,omitempty"`
	APIKey    string  `json:"api_key,omitempty"`
	Forwarded string  `json:"forwarded_from,omitempty"`
	Cost      string  `json:"cost,omitempty"`
	Node      string  `json:"node,omitempty"`
}

// statusWriter records the status and byte count a handler produced.
// It deliberately implements io.ReaderFrom by delegation so the
// zero-copy GET path (http.ServeContent → sendfile) survives the
// wrapping.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// ReadFrom keeps the response sendfile-eligible: io.Copy in
// http.ServeContent probes for io.ReaderFrom on the writer it is
// handed, and a wrapper without this method would silently downgrade
// artifact GETs to a userspace copy loop.
func (sw *statusWriter) ReadFrom(r io.Reader) (int64, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := io.Copy(sw.ResponseWriter, r)
	sw.bytes += n
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer
// (flush, hijack) through the wrapper.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// withObservability is the outermost middleware: resolve the request
// ID (mint, or adopt a valid inbound one), expose it on the response
// and the request context, time the handler, and emit one access-log
// line when a log sink is configured.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(HeaderRequestID)
		if !validRequestID(rid) {
			rid = mintRequestID()
		}
		w.Header().Set(HeaderRequestID, rid)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, rid))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.httpLatency.Observe(elapsed.Seconds())
		if s.cfg.AccessLog == nil {
			return
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rec := accessRecord{
			Time:      start.UTC().Format(time.RFC3339Nano),
			RequestID: rid,
			Method:    r.Method,
			Path:      r.URL.Path,
			Query:     r.URL.RawQuery,
			Status:    status,
			Bytes:     sw.bytes,
			DurMS:     float64(elapsed.Microseconds()) / 1000,
			Remote:    r.RemoteAddr,
			APIKey:    r.Header.Get(HeaderAPIKey),
			Forwarded: r.Header.Get(HeaderForwarded),
			Cost:      sw.Header().Get(HeaderCost),
			Node:      s.cfg.Node,
		}
		s.logAccess(&rec)
	})
}

// logAccess emits one JSON line; logMu serializes writers so
// concurrent handlers never interleave lines into one another.
func (s *Server) logAccess(rec *accessRecord) {
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.logMu.Lock()
	s.cfg.AccessLog.Write(line)
	s.logMu.Unlock()
}
