package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"avtmor"
	"avtmor/internal/store"
)

// handleReduce accepts a netlist (text) or a serialized System
// (binary, sniffed by magic) body, reduces it on the worker pool, and
// streams the ROM artifact back. The response carries the artifact's
// content address in X-Avtmor-Rom-Key for later GET/simulate calls.
//
// Query parameters (all optional):
//
//	k1,k2,k3     moment counts (WithOrders)
//	auto         Hankel auto-order tolerance (WithAutoOrders); the
//	             default when no k1/k2/k3 is given either
//	s0           real expansion frequency, xp=f1,f2,… extra points
//	droptol      deflation tolerance
//	decoupledh2  1/true selects the Eq.-(18) Sylvester path
//	solver       auto|dense|sparse
//	parallel     1/true fans moment generation out over goroutines
//	method       assoc (default) | norm
//	timeout      per-request deadline (Go duration, e.g. 30s)
func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	s.reduceReqs.Add(1)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sys, err := parseSystemBody(body)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "parsing system: %v", err)
		return
	}
	req, err := parseReduceQuery(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx := r.Context()
	if req.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
		defer cancel()
	}
	key := avtmor.RequestKey(sys, req.opts...)
	reduce := s.reducer.Reduce
	if req.norm {
		key = avtmor.RequestKeyNORM(sys, req.opts...)
		reduce = s.reducer.ReduceNORM
	}
	digest := store.Digest(key)
	if owner := s.route(r, digest); owner != "" {
		// Another node owns this key. If the artifact somehow already
		// lives here (pre-cluster history, an earlier owner-down
		// fallback), answer from the local tiers — content addressing
		// makes every copy identical. Otherwise forward the original
		// body bytes to the owner, and degrade to computing locally
		// only when the owner is unreachable or draining.
		if cached, err := s.reducer.Lookup(key); err == nil && cached != nil {
			s.cluster.localHits.Add(1)
			s.remember(digest, cached)
			writeROM(w, digest, cached)
			return
		}
		if s.relay(w, r, owner, bytes.NewReader(body)) {
			return
		}
		s.cluster.fallbackLocal.Add(1)
	}
	var (
		rom  *avtmor.ROM
		rerr error
	)
	if err := s.run(ctx, func() {
		rom, rerr = reduce(ctx, sys, req.opts...)
	}); err != nil {
		s.runError(w, err)
		return
	}
	if rerr != nil {
		s.opError(w, "reduction", rerr)
		return
	}
	s.remember(digest, rom)
	writeROM(w, digest, rom)
}

// readBody reads the bounded request body, answering 413/400 itself
// on failure.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
		} else {
			s.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// writeROM streams an artifact with its content-address headers.
func writeROM(w http.ResponseWriter, digest string, rom *avtmor.ROM) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Avtmor-Rom-Key", digest)
	w.Header().Set("X-Avtmor-Rom-Order", strconv.Itoa(rom.Order()))
	rom.WriteTo(w)
}

// handleGetROM streams a stored artifact by content address. On a
// clustered server, addresses owned by a peer are forwarded there
// unless the artifact is already local; an unreachable owner degrades
// to the local lookup (a miss is then the honest 404).
func (s *Server) handleGetROM(w http.ResponseWriter, r *http.Request) {
	s.romGets.Add(1)
	digest := r.PathValue("key")
	if owner := s.route(r, digest); owner != "" {
		switch {
		case s.hasLocal(digest):
			s.cluster.localHits.Add(1)
		case s.relay(w, r, owner, nil):
			return
		default:
			s.cluster.fallbackLocal.Add(1)
		}
	}
	rom, err := s.lookup(digest)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "loading ROM: %v", err)
		return
	}
	if rom == nil {
		s.httpError(w, http.StatusNotFound, "no ROM with key %s", digest)
		return
	}
	writeROM(w, digest, rom)
}

// opError maps engine failures of op ("reduction"/"simulation"):
// context expiry → 504, anything else (singular expansion point,
// order too large, diverged Newton, …) is the client's request
// meeting this system → 422.
func (s *Server) opError(w http.ResponseWriter, op string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.httpError(w, http.StatusGatewayTimeout, "%s deadline exceeded", op)
	case errors.Is(err, context.Canceled):
		s.httpError(w, 499, "client canceled")
	default:
		s.httpError(w, http.StatusUnprocessableEntity, "%s failed: %v", op, err)
	}
}

// parseSystemBody sniffs the body format: serialized System bytes, or
// netlist text for anything that does not carry the System magic.
func parseSystemBody(body []byte) (*avtmor.System, error) {
	if len(bytes.TrimSpace(body)) == 0 {
		return nil, errors.New("empty body; POST a netlist or a serialized System")
	}
	sys, err := avtmor.ReadSystem(bytes.NewReader(body))
	if err == nil {
		return sys, nil
	}
	if !errors.Is(err, avtmor.ErrBadSystemMagic) {
		// It was a System stream — just a broken one. Netlist parsing
		// would only produce a misleading error.
		return nil, err
	}
	return avtmor.ParseNetlist(bytes.NewReader(body))
}

type reduceRequest struct {
	opts    []avtmor.Option
	norm    bool
	timeout time.Duration
}

func parseReduceQuery(q url.Values) (*reduceRequest, error) {
	req := &reduceRequest{}
	getInt := func(name string) (int, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, false, errf("parameter %s: %v", name, err)
		}
		return n, true, nil
	}
	getFloat := func(name string) (float64, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false, errf("parameter %s: %v", name, err)
		}
		return f, true, nil
	}
	getBool := func(name string) (bool, error) {
		switch v := q.Get(name); v {
		case "", "0", "false":
			return false, nil
		case "1", "true":
			return true, nil
		default:
			return false, errf("parameter %s: want 1/true or 0/false, got %q", name, v)
		}
	}

	k1, hasK1, err := getInt("k1")
	if err != nil {
		return nil, err
	}
	k2, hasK2, err := getInt("k2")
	if err != nil {
		return nil, err
	}
	k3, hasK3, err := getInt("k3")
	if err != nil {
		return nil, err
	}
	hasK := hasK1 || hasK2 || hasK3
	if k1 < 0 || k2 < 0 || k3 < 0 {
		return nil, errf("moment counts must be non-negative, got k1=%d k2=%d k3=%d", k1, k2, k3)
	}
	auto, hasAuto, err := getFloat("auto")
	if err != nil {
		return nil, err
	}
	switch {
	case hasAuto && hasK:
		return nil, errf("auto and k1/k2/k3 are mutually exclusive")
	case hasAuto:
		req.opts = append(req.opts, avtmor.WithAutoOrders(auto))
	case hasK:
		if k1+k2+k3 == 0 {
			return nil, errf("explicit orders need at least one positive count (or drop them for auto selection)")
		}
		req.opts = append(req.opts, avtmor.WithOrders(k1, k2, k3))
	default:
		// No order selection at all: pick them from the Hankel decay.
		req.opts = append(req.opts, avtmor.WithAutoOrders(0))
	}

	s0, hasS0, err := getFloat("s0")
	if err != nil {
		return nil, err
	}
	var extra []float64
	if xp := q.Get("xp"); xp != "" {
		for _, part := range strings.Split(xp, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, errf("parameter xp: %v", err)
			}
			extra = append(extra, f)
		}
	}
	if hasS0 || len(extra) > 0 {
		req.opts = append(req.opts, avtmor.WithExpansion(s0, extra...))
	}

	if tol, ok, err := getFloat("droptol"); err != nil {
		return nil, err
	} else if ok {
		req.opts = append(req.opts, avtmor.WithDropTol(tol))
	}
	if dec, err := getBool("decoupledh2"); err != nil {
		return nil, err
	} else if dec {
		req.opts = append(req.opts, avtmor.WithDecoupledH2())
	}
	if par, err := getBool("parallel"); err != nil {
		return nil, err
	} else if par {
		req.opts = append(req.opts, avtmor.WithParallel())
	}
	switch v := q.Get("solver"); v {
	case "", "auto":
	case "dense":
		req.opts = append(req.opts, avtmor.WithSolver(avtmor.SolverDense))
	case "sparse":
		req.opts = append(req.opts, avtmor.WithSolver(avtmor.SolverSparse))
	default:
		return nil, errf("parameter solver: want auto, dense, or sparse, got %q", v)
	}
	switch v := q.Get("method"); v {
	case "", "assoc":
	case "norm":
		req.norm = true
	default:
		return nil, errf("parameter method: want assoc or norm, got %q", v)
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, errf("parameter timeout: want a positive Go duration, got %q", v)
		}
		req.timeout = d
	}
	return req, nil
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
