package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"strings"
	"time"

	"avtmor"
	"avtmor/internal/query"
	"avtmor/internal/store"
)

// handleReduce accepts a netlist (text) or a serialized System
// (binary, sniffed by magic) body, reduces it on the worker pool, and
// streams the ROM artifact back. The response carries the artifact's
// content address in X-Avtmor-Rom-Key for later GET/simulate calls.
//
// Query parameters are documented on query.Parse (k1/k2/k3, auto, s0,
// xp, droptol, decoupledh2, solver, parallel, method, timeout).
func (s *Server) handleReduce(w http.ResponseWriter, r *http.Request) {
	s.reduceReqs.Add(1)
	start := time.Now()
	if !s.checkQuota(w, r, 1) {
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sys, err := query.System(body)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "parsing system: %v", err)
		return
	}
	req, err := query.Parse(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cost := estimateCost(sys, req)
	setCost(w, cost)
	ctx := r.Context()
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	key := req.Key(sys)
	reduce := s.reducer.Reduce
	if req.Norm {
		reduce = s.reducer.ReduceNORM
	}
	digest := store.Digest(key)
	if owners := s.route(r, digest); owners != nil {
		// Other nodes own this key. If the artifact somehow already
		// lives here (pre-cluster history, an earlier owner-down
		// fallback), answer from the local tiers — content addressing
		// makes every copy identical. Otherwise forward the original
		// body bytes to the replicas in ring order, and degrade to
		// computing locally only when every one is unreachable or
		// draining.
		if cached, err := s.reducer.Lookup(key); err == nil && cached != nil {
			s.cluster.localHits.Add(1)
			s.remember(digest, cached)
			writeROM(w, digest, cached)
			return
		}
		for _, owner := range owners {
			if s.relay(w, r, owner, bytes.NewReader(body)) {
				return
			}
		}
		s.cluster.fallbackLocal.Add(1)
	}
	// Cache and store hits cost no compute: answer them without
	// touching the admission budget, so a warm key is never queued
	// behind an expensive burst.
	if cached, err := s.reducer.Lookup(key); err == nil && cached != nil {
		s.remember(digest, cached)
		s.reduceLatency.Observe(time.Since(start).Seconds())
		writeROM(w, digest, cached)
		return
	}
	release, admitted := s.admitted(w, r, cost)
	if !admitted {
		return
	}
	defer release()
	had := s.hasLocal(digest)
	var (
		rom  *avtmor.ROM
		rerr error
	)
	if err := s.run(ctx, func() {
		rom, rerr = reduce(ctx, sys, req.Opts...)
	}); err != nil {
		s.runError(w, err)
		return
	}
	if rerr != nil {
		s.opError(w, "reduction", rerr)
		return
	}
	s.remember(digest, rom)
	if !had {
		// A fresh artifact: write through to the co-replicas (or tag it
		// for handoff if this was an owner-down fallback).
		s.afterWrite(ctx, digest, rom)
	}
	s.reduceLatency.Observe(time.Since(start).Seconds())
	writeROM(w, digest, rom)
}

// readBody reads the bounded request body, answering 413/400 itself
// on failure.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
		} else {
			s.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// writeROM buffers an artifact and streams it with its content-address
// headers. Buffering (ROMs are small — they are the *reduced* models)
// buys an exact Content-Length on every response instead of a chunked
// stream of whatever the serialization produced, and the digest doubles
// as a strong ETag so clients can revalidate later GETs for free.
func writeROM(w http.ResponseWriter, digest string, rom *avtmor.ROM) {
	var buf bytes.Buffer
	if _, err := rom.WriteTo(&buf); err != nil {
		http.Error(w, fmt.Sprintf("serializing ROM: %v", err), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	h.Set("ETag", `"`+digest+`"`)
	h.Set("X-Avtmor-Rom-Key", digest)
	h.Set("X-Avtmor-Rom-Order", strconv.Itoa(rom.Order()))
	w.Write(buf.Bytes())
}

// serveArtifact hands ROM bytes to http.ServeContent, which supplies
// Content-Length, range support, and the If-None-Match → 304 dance
// against the digest ETag. With an *os.File content the body copy is
// sendfile-eligible — the artifact travels disk → socket without
// touching user space, and without a single parse.
func serveArtifact(w http.ResponseWriter, r *http.Request, digest string, mtime time.Time, content io.ReadSeeker) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("ETag", `"`+digest+`"`)
	h.Set("X-Avtmor-Rom-Key", digest)
	http.ServeContent(w, r, "", mtime, content)
}

// handleGetROM serves a stored artifact by content address. On a
// clustered server, addresses owned by a peer are forwarded there
// unless the artifact is already local; an unreachable owner degrades
// to the local lookup (a miss is then the honest 404).
//
// With a store configured this is the zero-copy path: the store file
// is served directly (store.OpenRaw), so a GET costs an open + stat +
// sendfile instead of the old parse + re-serialize round trip, and an
// If-None-Match revalidation costs no artifact I/O at all. A file that
// fails the store's magic sniff is quarantined and reported 404 — the
// client re-reduces, the fleet self-heals. X-Avtmor-Rom-Order is a
// reduce-response header only; by-address GETs identify the artifact
// by its address alone (the order is in the bytes the client parses).
func (s *Server) handleGetROM(w http.ResponseWriter, r *http.Request) {
	s.romGets.Add(1)
	digest := r.PathValue("key")
	if etagMatches(r.Header.Get("If-None-Match"), digest) {
		// Content addressing makes revalidation free: the ETag *is* the
		// content identity, so a client presenting the digest already
		// holds the exact bytes. Answer 304 before routing — no peer
		// hop, no file I/O, no parse.
		h := w.Header()
		h.Set("ETag", `"`+digest+`"`)
		h.Set("X-Avtmor-Rom-Key", digest)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if owners := s.route(r, digest); owners != nil {
		if s.hasLocal(digest) {
			s.cluster.localHits.Add(1)
		} else {
			for _, owner := range owners {
				if s.relay(w, r, owner, nil) {
					return
				}
			}
			s.cluster.fallbackLocal.Add(1)
		}
	} else if s.cluster != nil && !s.hasLocal(digest) {
		// This node is a replica for the address but is missing its
		// copy (crash recovery, a write-through push that never
		// arrived): read-repair from a co-replica before answering, so
		// the GET is served and the replica count is restored in one
		// round trip.
		s.readRepair(r.Context(), digest)
	}
	if s.st != nil {
		f, fi, err := s.st.OpenRaw(digest)
		if errors.Is(err, fs.ErrNotExist) {
			s.httpError(w, http.StatusNotFound, "no ROM with key %s", digest)
			return
		}
		if err != nil {
			s.httpError(w, http.StatusInternalServerError, "opening ROM: %v", err)
			return
		}
		defer f.Close()
		serveArtifact(w, r, digest, fi.ModTime(), f)
		return
	}
	// No persistence: serve the in-memory artifact through the same
	// ServeContent path so ETag revalidation works identically.
	s.mu.Lock()
	rom := s.mem[digest]
	s.mu.Unlock()
	if rom == nil {
		s.httpError(w, http.StatusNotFound, "no ROM with key %s", digest)
		return
	}
	var buf bytes.Buffer
	if _, err := rom.WriteTo(&buf); err != nil {
		s.httpError(w, http.StatusInternalServerError, "serializing ROM: %v", err)
		return
	}
	serveArtifact(w, r, digest, time.Time{}, bytes.NewReader(buf.Bytes()))
}

// etagMatches reports whether an If-None-Match header names the
// artifact's digest ETag (strong or weak form, any list position).
func etagMatches(inm, digest string) bool {
	if inm == "" {
		return false
	}
	want := `"` + digest + `"`
	for _, part := range strings.Split(inm, ",") {
		if strings.TrimPrefix(strings.TrimSpace(part), "W/") == want {
			return true
		}
	}
	return false
}

// opStatus maps engine failures of op ("reduction"/"simulation"):
// context expiry → 504, anything else (singular expansion point,
// order too large, diverged Newton, …) is the client's request
// meeting this system → 422.
func opStatus(op string, err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, op + " deadline exceeded"
	case errors.Is(err, context.Canceled):
		return 499, "client canceled"
	default:
		return http.StatusUnprocessableEntity, fmt.Sprintf("%s failed: %v", op, err)
	}
}

// opError answers an engine failure over HTTP.
func (s *Server) opError(w http.ResponseWriter, op string, err error) {
	code, msg := opStatus(op, err)
	s.httpError(w, code, "%s", msg)
}
