package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"sync"

	"avtmor"
	"avtmor/internal/query"
	"avtmor/internal/store"
	"avtmor/internal/wire"
)

// handleReduceBatch is POST /v1/reduce/batch: many netlist/System
// bodies in one length-prefixed request (internal/wire framing), one
// multi-ROM response with per-item status. One POST amortizes routing,
// framing, and queueing across N reductions — the wire-level analogue
// of the solver's block multi-RHS path. Reduction options apply
// batch-wide via the usual query parameters.
//
// Admission is cost-weighted: every item that needs compute is
// submitted to the worker pool individually, so a batch of N cold
// items consumes N admission units and pool overflow sheds per item
// (429 in that item's status) instead of rejecting or buffering the
// whole batch; cache hits are answered inline and consume nothing. The HTTP status is 200
// whenever the batch itself parsed; per-item outcomes live in the
// response frame, in request order.
//
// On a clustered server the batch is split by ring owner: items owned
// here (or already cached here) are computed locally, the rest are
// regrouped into per-owner sub-batches and forwarded in one hop
// (guarded by X-Avtmor-Forwarded, like single requests). A peer that
// is unreachable or draining degrades to computing its group locally.
func (s *Server) handleReduceBatch(w http.ResponseWriter, r *http.Request) {
	s.batchReqs.Add(1)
	req, err := query.Parse(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	items, err := wire.ReadBatchRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxBodyBytes)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "reading batch: %v", err)
		return
	}
	// A batch draws one quota token per item: N reduces in one frame
	// and N single POSTs cost a client the same.
	if !s.checkQuota(w, r, float64(len(items))) {
		return
	}
	s.batchItems.Add(int64(len(items)))
	s.batchWidth.Observe(float64(len(items)))
	ctx := r.Context()
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}

	results := make([]wire.Result, len(items))
	states := make([]*batchItem, len(items))
	var local []int
	var totalCost int64
	groups := map[string][]int{}

	// One forwarded-hop check for the whole batch: a sub-batch from a
	// peer is always answered locally, never re-split (loop guard).
	forwarded := false
	if cs := s.cluster; cs != nil && r.Header.Get(HeaderForwarded) != "" {
		cs.forwardedServes.Add(1)
		forwarded = true
	}

	for i, body := range items {
		sys, err := query.System(body)
		if err != nil {
			s.countError(http.StatusBadRequest)
			results[i] = wire.Result{Status: http.StatusBadRequest, Body: []byte(fmt.Sprintf("parsing system: %v", err))}
			continue
		}
		key := req.Key(sys)
		it := &batchItem{sys: sys, key: key, digest: store.Digest(key), cost: estimateCost(sys, req)}
		states[i] = it
		totalCost += it.cost
		owner := ""
		if cs := s.cluster; cs != nil && !forwarded {
			// Batch items forward to the primary replica only: the
			// owner-down degradation below already covers a dead primary
			// by computing the group locally, and keeping each sub-batch
			// on one peer preserves the amortization the batch exists for.
			if owners := cs.ownersFor(it.digest); len(owners) > 0 && !slices.Contains(owners, cs.self) {
				owner = owners[0]
			} else {
				cs.ownerHits.Add(1)
			}
		}
		if owner == "" {
			// Cache hits bypass the pool: admission is cost-weighted, and
			// a hit costs no compute — spending an admission unit (and a
			// goroutine) on it would let a sweep of warm keys shed work
			// that is actually free.
			if cached, err := s.reducer.Lookup(it.key); err == nil && cached != nil {
				s.remember(it.digest, cached)
				results[i] = romResult(it.digest, cached)
				continue
			}
			local = append(local, i)
			continue
		}
		// Peer-owned, but maybe already here (pre-cluster history, an
		// earlier fallback): content addressing makes every copy
		// identical, so answer from the local tiers and skip the hop.
		if cached, err := s.reducer.Lookup(it.key); err == nil && cached != nil {
			s.cluster.localHits.Add(1)
			s.remember(it.digest, cached)
			results[i] = romResult(it.digest, cached)
			continue
		}
		groups[owner] = append(groups[owner], i)
	}

	// The envelope estimate covers every parsed item, local or
	// forwarded — what this batch asks of the fleet as a whole.
	setCost(w, totalCost)

	var wg sync.WaitGroup
	for _, i := range local {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.batchItemLocal(ctx, states[i], req)
		}(i)
	}
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			bodies := make([][]byte, len(idxs))
			for j, i := range idxs {
				bodies[j] = items[i]
			}
			if res, err := s.relayBatch(ctx, owner, r.URL.RawQuery, bodies); err == nil {
				for j, i := range idxs {
					results[i] = res[j]
				}
				return
			}
			// Owner unreachable or draining: compute the group here,
			// like the single-request fallback.
			s.cluster.fallbackLocal.Add(1)
			var gwg sync.WaitGroup
			for _, i := range idxs {
				gwg.Add(1)
				go func(i int) {
					defer gwg.Done()
					results[i] = s.batchItemLocal(ctx, states[i], req)
				}(i)
			}
			gwg.Wait()
		}(owner, idxs)
	}
	wg.Wait()

	// Buffer the frame for an exact Content-Length; per-item bodies are
	// already in memory, so this costs one copy, not a serialization.
	var buf bytes.Buffer
	if err := wire.WriteBatchResponse(&buf, results); err != nil {
		s.httpError(w, http.StatusInternalServerError, "framing batch response: %v", err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", wire.BatchContentType)
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes())
}

// batchItem is one parsed batch entry.
type batchItem struct {
	sys    *avtmor.System
	key    string
	digest string
	cost   int64
}

// batchItemLocal reduces one item on the worker pool, mapping failures
// through the same status taxonomy as single requests. Each item is
// admitted against the cost budget individually, so a batch of heavy
// items self-paces instead of reserving the fleet in one gulp.
func (s *Server) batchItemLocal(ctx context.Context, it *batchItem, req *query.Request) wire.Result {
	reduce := s.reducer.Reduce
	if req.Norm {
		reduce = s.reducer.ReduceNORM
	}
	admitCtx, cancel := context.WithTimeout(ctx, admitWindow)
	release, err := s.adm.admit(admitCtx, it.cost)
	cancel()
	if err != nil {
		s.admissionRejected.Add(1)
		s.countError(http.StatusTooManyRequests)
		return wire.Result{Status: http.StatusTooManyRequests, Key: it.digest,
			Body: []byte(fmt.Sprintf("admission budget exhausted (item cost %d)", it.cost))}
	}
	defer release()
	had := s.hasLocal(it.digest)
	var (
		rom  *avtmor.ROM
		rerr error
	)
	if err := s.run(ctx, func() {
		rom, rerr = reduce(ctx, it.sys, req.Opts...)
	}); err != nil {
		code, msg := poolStatus(err)
		s.countError(code)
		return wire.Result{Status: code, Key: it.digest, Body: []byte(msg)}
	}
	if rerr != nil {
		code, msg := opStatus("reduction", rerr)
		s.countError(code)
		return wire.Result{Status: code, Key: it.digest, Body: []byte(msg)}
	}
	s.remember(it.digest, rom)
	if !had {
		s.afterWrite(ctx, it.digest, rom)
	}
	return romResult(it.digest, rom)
}

// romResult serializes a ROM into a per-item success result.
func romResult(digest string, rom *avtmor.ROM) wire.Result {
	var buf bytes.Buffer
	if _, err := rom.WriteTo(&buf); err != nil {
		return wire.Result{Status: http.StatusInternalServerError, Key: digest, Body: []byte(fmt.Sprintf("serializing ROM: %v", err))}
	}
	return wire.Result{Status: http.StatusOK, Key: digest, Body: buf.Bytes()}
}

// relayBatch forwards one owner's sub-batch and returns its per-item
// results (exactly one per body, in order). Any transport failure,
// non-200 answer, or malformed frame is returned as an error so the
// caller degrades to local compute for the group.
func (s *Server) relayBatch(ctx context.Context, owner, rawQuery string, bodies [][]byte) ([]wire.Result, error) {
	cs := s.cluster
	pv := cs.peerVar(owner)
	pv.forwards.Add(1)
	var frame bytes.Buffer
	if err := wire.WriteBatchRequest(&frame, bodies); err != nil {
		pv.forwardErrors.Add(1)
		return nil, err
	}
	u := "http://" + owner + "/v1/reduce/batch"
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(frame.Bytes()))
	if err != nil {
		pv.forwardErrors.Add(1)
		return nil, err
	}
	req.Header.Set(HeaderForwarded, cs.self)
	req.Header.Set(HeaderEpoch, strconv.FormatUint(cs.state.Epoch(), 10))
	req.Header.Set("Content-Type", wire.BatchContentType)
	if rid := requestID(ctx); rid != "" {
		req.Header.Set(HeaderRequestID, rid)
	}
	resp, err := cs.hc.Do(req)
	if err != nil {
		pv.forwardErrors.Add(1)
		return nil, err
	}
	defer resp.Body.Close()
	s.noteEpoch(owner, resp.Header.Get(HeaderEpoch))
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		pv.forwardErrors.Add(1)
		return nil, fmt.Errorf("peer %s answered %d", owner, resp.StatusCode)
	}
	res, err := wire.ReadBatchResponse(resp.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		pv.forwardErrors.Add(1)
		return nil, err
	}
	if len(res) != len(bodies) {
		pv.forwardErrors.Add(1)
		return nil, fmt.Errorf("peer %s answered %d results for %d items", owner, len(res), len(bodies))
	}
	return res, nil
}
