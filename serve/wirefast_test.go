package serve_test

// Tests of the wire fast path (DESIGN.md §9): zero-copy conditional
// GET with the digest as a strong ETag, the batch reduce endpoint's
// per-item status semantics, and the hardened peer-forwarding
// transport against a stalling owner.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"avtmor/internal/cluster"
	"avtmor/internal/wire"
	"avtmor/serve"
)

// getROM issues a GET with optional If-None-Match and returns status,
// headers, body.
func getROM(t testing.TB, base, digest, inm string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/roms/"+digest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServeGetROMConditional: a by-address GET serves the store file
// with Content-Length, Content-Type, and the digest as a strong ETag;
// If-None-Match revalidation answers 304 with zero artifact parsing
// (the store's Loads counter must not move); a file corrupted behind
// the store's back is quarantined and reported 404, never served.
func TestServeGetROMConditional(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{StoreDir: t.TempDir(), Workers: 2})
	ref, key := postReduce(t, ts.URL, reducePath, clipper)

	// Unconditional GET: raw store bytes with full headers.
	resp, body := getROM(t, ts.URL, key, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, ref) {
		t.Fatal("GET served different bytes than the reduce response")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(ref)) {
		t.Fatalf("Content-Length = %q, want %d", cl, len(ref))
	}
	wantETag := `"` + key + `"`
	if et := resp.Header.Get("ETag"); et != wantETag {
		t.Fatalf("ETag = %q, want %q", et, wantETag)
	}
	m := metrics(t, ts.URL)
	if m["store_raw_opens"] < 1 {
		t.Fatalf("store_raw_opens = %v, want >= 1 (zero-copy path not taken)", m["store_raw_opens"])
	}

	// Revalidation: 304, empty body, and — the acceptance criterion —
	// zero store Loads on the conditional path.
	loadsBefore := m["store_loads"]
	rawBefore := m["store_raw_opens"]
	resp, body = getROM(t, ts.URL, key, wantETag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body))
	}
	if et := resp.Header.Get("ETag"); et != wantETag {
		t.Fatalf("304 ETag = %q, want %q", et, wantETag)
	}
	m = metrics(t, ts.URL)
	if m["store_loads"] != loadsBefore {
		t.Fatalf("304 path parsed the artifact: store_loads %v -> %v", loadsBefore, m["store_loads"])
	}
	if m["store_raw_opens"] != rawBefore {
		t.Fatalf("304 path opened the file: store_raw_opens %v -> %v", rawBefore, m["store_raw_opens"])
	}

	// The weak form and an etag list revalidate too.
	if resp, _ := getROM(t, ts.URL, key, `"zzz", W/`+wantETag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak/list If-None-Match: %d, want 304", resp.StatusCode)
	}
	// A stale etag for the same address refetches the body.
	if resp, body := getROM(t, ts.URL, key, `"0000"`); resp.StatusCode != http.StatusOK || !bytes.Equal(body, ref) {
		t.Fatalf("mismatched If-None-Match: %d, identical=%v", resp.StatusCode, bytes.Equal(body, ref))
	}

	// Miss: honest 404 with an error Content-Length.
	bogus := strings.Repeat("ab", 32)
	resp, _ = getROM(t, ts.URL, bogus, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown address: %d, want 404", resp.StatusCode)
	}
	if resp.Header.Get("Content-Length") == "" {
		t.Fatal("404 carries no Content-Length")
	}
}

// TestServeGetROMCorruptFile: corruption that lands after the store's
// open-time scan (truncation/zeroing behind the store's back) is caught
// by the raw path's magic sniff — quarantined and answered 404, so the
// client re-reduces instead of parsing garbage.
func TestServeGetROMCorruptFile(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, serve.Config{StoreDir: dir, Workers: 2})
	_, key := postReduce(t, ts.URL, reducePath, clipper)

	path := dir + "/" + key + ".rom"
	if err := writeFileHead(path, []byte("GARBAGE!")); err != nil {
		t.Fatal(err)
	}
	resp, body := getROM(t, ts.URL, key, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupted artifact: %d: %s, want 404", resp.StatusCode, body)
	}
	if m := metrics(t, ts.URL); m["store_quarantined"] != 1 {
		t.Fatalf("store_quarantined = %v, want 1", m["store_quarantined"])
	}
}

// writeFileHead overwrites the first bytes of a file in place —
// corruption landing behind the store's back.
func writeFileHead(path string, head []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(head, 0)
	return err
}

// TestServeBatchReduce: a batch of N bodies answers one frame with
// per-item results in order; a bad item fails alone (per-item 400)
// while the rest succeed; reductions stay minimal; and batched output
// is byte-identical — same content addresses, same ROM bytes — to
// sequential submission of the same inputs.
func TestServeBatchReduce(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{StoreDir: t.TempDir(), Workers: 2})

	good1 := fmt.Sprintf(clipperVar, 2.0)
	good2 := fmt.Sprintf(clipperVar, 3.0)
	bad := "R1 notanode\n"
	var frame bytes.Buffer
	if err := wire.WriteBatchRequest(&frame, [][]byte{[]byte(good1), []byte(bad), []byte(good2)}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/reduce/batch?k1=2&k2=1&s0=0.4", wire.BatchContentType, bytes.NewReader(frame.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.BatchContentType {
		t.Fatalf("batch Content-Type = %q", ct)
	}
	if resp.Header.Get("Content-Length") == "" {
		t.Fatal("batch response carries no Content-Length")
	}
	results, err := wire.ReadBatchResponse(resp.Body, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if !results[0].OK() || !results[2].OK() {
		t.Fatalf("good items failed: %d / %d", results[0].Status, results[2].Status)
	}
	if results[1].Status != http.StatusBadRequest || !strings.Contains(string(results[1].Body), "parsing system") {
		t.Fatalf("bad item: %d %q, want per-item 400", results[1].Status, results[1].Body)
	}
	if results[1].Key != "" {
		t.Fatalf("unparsable item got a content address %q", results[1].Key)
	}

	m := metrics(t, ts.URL)
	if m["reductions"] != 2 {
		t.Fatalf("reductions = %v, want 2 (one per good item)", m["reductions"])
	}
	if m["batch_requests"] != 1 || m["batch_items"] != 3 {
		t.Fatalf("batch counters: requests=%v items=%v", m["batch_requests"], m["batch_items"])
	}

	// Sequential submission of the same inputs: identical addresses,
	// identical bytes (served from the tiers the batch populated — no
	// re-reduction), so batch and single paths are interchangeable.
	seq1, key1 := postReduce(t, ts.URL, reducePath, good1)
	seq2, key2 := postReduce(t, ts.URL, reducePath, good2)
	if key1 != results[0].Key || key2 != results[2].Key {
		t.Fatalf("sequential keys (%s, %s) differ from batch keys (%s, %s)", key1, key2, results[0].Key, results[2].Key)
	}
	if !bytes.Equal(seq1, results[0].Body) || !bytes.Equal(seq2, results[2].Body) {
		t.Fatal("sequential ROM bytes differ from batch ROM bytes")
	}
	if m := metrics(t, ts.URL); m["reductions"] != 2 {
		t.Fatalf("sequential follow-up re-reduced: %v", m["reductions"])
	}

	// Malformed frames are a whole-request 400, not a hang.
	resp2, err := http.Post(ts.URL+"/v1/reduce/batch", wire.BatchContentType, strings.NewReader("not a batch"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frame: %d, want 400", resp2.StatusCode)
	}
}

// TestClusterStallingPeer: an owner that accepts connections but never
// answers must not pin the relay until the request deadline — the
// hardened transport's ResponseHeaderTimeout fires and the entry node
// falls back to local service.
func TestClusterStallingPeer(t *testing.T) {
	// A fake peer that accepts and then goes silent.
	stall, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	go func() {
		for {
			conn, err := stall.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, never respond
		}
	}()
	stallAddr := stall.Addr().String()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s, err := serve.New(serve.Config{
		StoreDir:          t.TempDir(),
		Workers:           2,
		Node:              addr,
		Peers:             []string{addr, stallAddr},
		PeerHeaderTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); s.Close() })

	// Find a digest the ring places on the stalling peer.
	ring := cluster.New([]string{addr, stallAddr}, 0)
	digest := ""
	for i := 0; i < 1000; i++ {
		sum := sha256.Sum256([]byte(strconv.Itoa(i)))
		d := hex.EncodeToString(sum[:])
		if ring.Owner(d) == cluster.Normalize(stallAddr) {
			digest = d
			break
		}
	}
	if digest == "" {
		t.Fatal("no digest landed on the stalling peer")
	}

	start := time.Now()
	resp, _ := getROM(t, "http://"+addr, digest, "")
	elapsed := time.Since(start)
	// The relay gave up at the header timeout and the local lookup
	// answered the honest 404 — quickly, not at some distant deadline.
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET through stalled owner: %d, want 404 fallback", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("fallback took %v; the stalled owner pinned the relay", elapsed)
	}
	cl := sub(t, metricsAny(t, "http://"+addr), "cluster")
	if num(t, sub(t, sub(t, cl, "peers"), cluster.Normalize(stallAddr)), "forward_errors") < 1 {
		t.Fatalf("stalled owner produced no forward_errors: %v", cl)
	}
	if num(t, cl, "fallback_local") < 1 {
		t.Fatalf("fallback_local = %v, want >= 1", cl["fallback_local"])
	}
}
