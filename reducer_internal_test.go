package avtmor

import "testing"

// TestCacheAddDoubleCompletion pins the LRU invariant under the
// abandoned-flight race: two flights completing on one key (the first
// abandoned but finishing anyway — e.g. a ctx-blind store load — the
// second its replacement) must leave exactly one list element per map
// entry, or eviction under WithCacheLimit deletes live mappings while
// orphans pin ROMs in the list forever.
func TestCacheAddDoubleCompletion(t *testing.T) {
	rd := NewReducer(WithCacheLimit(2))
	romA, romB, romC := &ROM{}, &ROM{}, &ROM{}
	rd.mu.Lock()
	rd.cacheAdd("k", romA)
	rd.cacheAdd("k", romB) // the racing second completion
	rd.cacheAdd("other", romC)
	rd.mu.Unlock()

	rd.mu.Lock()
	if len(rd.cache) != rd.lru.Len() || len(rd.cache) != 2 {
		rd.mu.Unlock()
		t.Fatalf("map has %d entries, list %d; want 2 and 2", len(rd.cache), rd.lru.Len())
	}
	got := rd.cache["k"].Value.(*cacheEntry).rom
	rd.mu.Unlock()
	if got != romB {
		t.Fatal("second completion did not refresh the cached ROM")
	}
	if st := rd.Stats(); st.Evictions != 0 || st.CachedROMs != 2 {
		t.Fatalf("stats %+v", st)
	}

	// Filling past the limit evicts exactly one cold entry ("k", LRU
	// behind "other") and keeps map and list in lockstep.
	rd.mu.Lock()
	rd.cacheAdd("third", &ROM{})
	if len(rd.cache) != rd.lru.Len() || len(rd.cache) != 2 {
		rd.mu.Unlock()
		t.Fatalf("after eviction: map %d, list %d", len(rd.cache), rd.lru.Len())
	}
	_, kLives := rd.cache["k"]
	_, otherLives := rd.cache["other"]
	rd.mu.Unlock()
	if kLives || !otherLives {
		t.Fatalf("eviction order wrong: k alive=%v, other alive=%v", kLives, otherLives)
	}
	if st := rd.Stats(); st.Evictions != 1 || st.CachedROMs != 2 {
		t.Fatalf("stats after eviction %+v", st)
	}
}
