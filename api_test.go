package avtmor_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"avtmor"
)

// buildChain constructs a small RC chain with one quadratic
// conductance through the public SystemBuilder — the quickstart system.
func buildChain(t *testing.T, n int) *avtmor.System {
	t.Helper()
	b := avtmor.NewSystemBuilder(n, 1, 1)
	for k := 0; k < n; k++ {
		d := -0.5
		if k > 0 {
			b.G1(k, k-1, 1)
			d -= 1
		}
		if k < n-1 {
			b.G1(k, k+1, 1)
			d -= 1
		}
		b.G1(k, k, d)
	}
	b.G2(1, 1, 1, -0.2)
	b.B(0, 0, 1)
	b.L(0, 0, 1)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicReduceAndSimulate(t *testing.T) {
	ctx := context.Background()
	sys := buildChain(t, 20)
	if sys.States() != 20 || sys.Inputs() != 1 || sys.Outputs() != 1 {
		t.Fatalf("dims: %d/%d/%d", sys.States(), sys.Inputs(), sys.Outputs())
	}
	if !sys.HasQuadratic() || sys.HasCubic() || sys.HasBilinear() {
		t.Fatal("term flags wrong")
	}
	var events atomic.Int64 // WithParallel delivers progress concurrently
	rom, err := avtmor.Reduce(ctx, sys,
		avtmor.WithOrders(4, 2, 1),
		avtmor.WithParallel(),
		avtmor.WithProgress(func(avtmor.Progress) { events.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	if rom.Order() <= 0 || rom.Order() >= 20 {
		t.Fatalf("order %d", rom.Order())
	}
	if rom.Method() != "assoc" {
		t.Fatalf("method %q", rom.Method())
	}
	if events.Load() == 0 {
		t.Fatal("no progress events delivered")
	}
	// Backend reports the backend that actually ran: a 20-state dense
	// system under the default auto policy routes to the dense LU.
	st := rom.Stats()
	if st.Candidates < rom.Order() || st.Backend != "dense" || st.Factorizations < 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Frequency-domain probe against the full model.
	if e, err := rom.H1Error(0, 0.05i); err != nil || e > 1e-6 {
		t.Fatalf("H1 error %g, %v", e, err)
	}
	// Time-domain agreement.
	u := avtmor.ConstInput([]float64{0.1})
	full, err := sys.Simulate(ctx, u, 10, avtmor.WithRK4(2000))
	if err != nil {
		t.Fatal(err)
	}
	red, err := rom.Simulate(ctx, u, 10, avtmor.WithRK4(2000))
	if err != nil {
		t.Fatal(err)
	}
	if e := avtmor.MaxRelErr(full, red, 0); e > 1e-4 {
		t.Fatalf("transient error %g", e)
	}
	// Lift maps reduced states back to n coordinates.
	x, err := rom.Lift(make([]float64, rom.Order()))
	if err != nil || len(x) != 20 {
		t.Fatalf("lift: %v len %d", err, len(x))
	}
}

func TestPublicReduceNORMAndTransfer(t *testing.T) {
	ctx := context.Background()
	w := avtmor.NTLCurrent(30)
	prop, err := avtmor.Reduce(ctx, w.System, avtmor.WithOrders(4, 2, 0), avtmor.WithExpansion(w.S0))
	if err != nil {
		t.Fatal(err)
	}
	norm, err := avtmor.ReduceNORM(ctx, w.System, avtmor.WithOrders(4, 2, 0), avtmor.WithExpansion(w.S0))
	if err != nil {
		t.Fatal(err)
	}
	if norm.Order() <= prop.Order() {
		t.Fatalf("NORM order %d should exceed proposed %d", norm.Order(), prop.Order())
	}
	// The two ROMs approximate the same H1: their reduced transfer
	// functions must agree closely near the expansion point.
	ya, err := prop.TransferH1(0, complex(w.S0, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	yb, err := norm.TransferH1(0, complex(w.S0, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if len(ya) != 1 || len(yb) != 1 {
		t.Fatalf("transfer lengths %d/%d", len(ya), len(yb))
	}
	d := ya[0] - yb[0]
	if abs := real(d)*real(d) + imag(d)*imag(d); abs > 1e-8 {
		t.Fatalf("transfer mismatch %v vs %v", ya[0], yb[0])
	}
}

func TestPublicNetlistAndWorkloadSimulate(t *testing.T) {
	const clipper = `
I1 0 n1 IN0 1.0
C1 n1 0 1.0
R1 n1 0 2.0
D1 n1 0 1.0 0.05
R12 n1 n2 1.0
C2 n2 0 1.0
R2 n2 0 2.0
.out n2
`
	sys, err := avtmor.ParseNetlist(strings.NewReader(clipper))
	if err != nil {
		t.Fatal(err)
	}
	if sys.States() != 3 || !sys.HasBilinear() {
		t.Fatalf("netlist system: n=%d bilinear=%v", sys.States(), sys.HasBilinear())
	}
	if !strings.Contains(sys.Description(), "nodes=2") {
		t.Fatalf("description %q", sys.Description())
	}
	ctx := context.Background()
	rom, err := avtmor.Reduce(ctx, sys, avtmor.WithOrders(2, 1, 1), avtmor.WithExpansion(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if rom.Order() < 1 {
		t.Fatal("empty ROM")
	}
	// Workload-driven simulation through the Model interface.
	w := avtmor.NTLCurrent(20)
	w.Steps = 400
	w.TEnd = 4
	full, err := w.Simulate(ctx, w.System)
	if err != nil {
		t.Fatal(err)
	}
	wrom, err := avtmor.Reduce(ctx, w.System, avtmor.WithOrders(4, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	red, err := w.Simulate(ctx, wrom)
	if err != nil {
		t.Fatal(err)
	}
	if e := avtmor.MaxRelErr(full, red, 0); e > 1e-2 {
		t.Fatalf("workload transient error %g", e)
	}
}

func TestPublicAutoOrders(t *testing.T) {
	w := avtmor.NTLCurrent(40)
	rom, err := avtmor.Reduce(context.Background(), w.System,
		avtmor.WithAutoOrders(1e-4), avtmor.WithExpansion(w.S0))
	if err != nil {
		t.Fatal(err)
	}
	if q := rom.Order(); q < 2 || q >= 40 {
		t.Fatalf("auto-selected order %d implausible", q)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected a panic on an out-of-range index", name)
			}
		}()
		f()
	}
	b := avtmor.NewSystemBuilder(10, 1, 1)
	mustPanic("G2 q", func() { b.G2(0, 0, 10, 1) })
	mustPanic("G3 r", func() { b.G3(0, 0, 0, -1, 1) })
	mustPanic("B input", func() { b.B(0, 1, 1) })
	mustPanic("L output", func() { b.L(1, 0, 1) })
	mustPanic("D1 col", func() { b.D1(0, 0, 10, 1) })
}

func TestFingerprintStability(t *testing.T) {
	a := buildChain(t, 12)
	b := buildChain(t, 12)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical systems must fingerprint equal")
	}
	c := buildChain(t, 13)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different systems should not collide on n±1")
	}
}
