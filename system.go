package avtmor

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"avtmor/internal/mat"
	"avtmor/internal/netlist"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
)

// System is a quadratic-linear differential-algebraic system
//
//	x' = G1·x + G2·(x⊗x) + G3·(x⊗x⊗x) + Σ_i D1_i·x·u_i + B·u,  y = L·x
//
// in the paper's trimmed form (2). Build one with NewSystemBuilder,
// ParseNetlist, or a workload constructor (NTLVoltage, RLCLine, …).
// A System is immutable once built: Reduce, Simulate, and the Reducer
// cache key (Fingerprint) all assume its matrices never change.
type System struct {
	sys  *qldae.System
	desc string

	fpOnce sync.Once
	fp     uint64
}

// States returns the state dimension n.
func (s *System) States() int { return s.sys.N }

// Inputs returns the input count m.
func (s *System) Inputs() int { return s.sys.Inputs() }

// Outputs returns the output count p.
func (s *System) Outputs() int { return s.sys.Outputs() }

// SparseOnly reports whether the system carries only the CSR form of
// G1 (the multi-thousand-state regime where no dense G1 is ever
// materialized and only K1/H1 reductions are available).
func (s *System) SparseOnly() bool { return s.sys.G1 == nil }

// Nonzeros returns the stored nonzero count of G1.
func (s *System) Nonzeros() int {
	if s.sys.G1S != nil {
		return s.sys.G1S.NNZ()
	}
	nnz := 0
	for _, v := range s.sys.G1.A {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// HasQuadratic reports a nonzero G2 term.
func (s *System) HasQuadratic() bool { return s.sys.G2 != nil }

// HasCubic reports a nonzero G3 term.
func (s *System) HasCubic() bool { return s.sys.G3 != nil }

// HasBilinear reports a nonzero D1 (state×input) term.
func (s *System) HasBilinear() bool { return s.sys.D1 != nil }

// Description returns a short human-readable inventory (netlist
// systems carry the parsed card summary; built systems the dimensions).
func (s *System) Description() string {
	if s.desc != "" {
		return s.desc
	}
	return fmt.Sprintf("qldae: n=%d inputs=%d outputs=%d quad=%v cubic=%v bilinear=%v",
		s.States(), s.Inputs(), s.Outputs(), s.HasQuadratic(), s.HasCubic(), s.HasBilinear())
}

// Fingerprint returns a 64-bit FNV-1a digest of every matrix of the
// system (values, sparsity structure, and which representations are
// present). It is computed once and cached; together with the
// canonicalized reduction options it forms the Reducer cache key.
// Covering the representation set is deliberate: a dense-only and a
// CSR-mirrored copy of the same matrix can route to different solver
// backends under SolverAuto and so may not produce bit-identical
// ROMs — such systems must not alias one cache entry. Two systems
// built the same way with the same values always hash equal.
func (s *System) Fingerprint() uint64 {
	s.fpOnce.Do(func() {
		h := fnv.New64a()
		var buf [8]byte
		w64 := func(v uint64) {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		wf := func(v float64) { w64(math.Float64bits(v)) }
		wDense := func(tag string, d *mat.Dense) {
			io.WriteString(h, tag)
			if d == nil {
				w64(0)
				return
			}
			w64(uint64(d.R))
			w64(uint64(d.C))
			for _, v := range d.A {
				wf(v)
			}
		}
		wCSR := func(tag string, c *sparse.CSR) {
			io.WriteString(h, tag)
			if c == nil {
				w64(0)
				return
			}
			w64(uint64(c.Rows))
			w64(uint64(c.Cols))
			for _, p := range c.RowPtr {
				w64(uint64(p))
			}
			for _, j := range c.ColIdx {
				w64(uint64(j))
			}
			for _, v := range c.Val {
				wf(v)
			}
		}
		w64(uint64(s.sys.N))
		wDense("G1", s.sys.G1)
		wCSR("G1S", s.sys.G1S)
		wCSR("G2", s.sys.G2)
		wCSR("G3", s.sys.G3)
		io.WriteString(h, "D1")
		w64(uint64(len(s.sys.D1)))
		for _, d := range s.sys.D1 {
			wDense("d", d)
		}
		wDense("B", s.sys.B)
		wDense("L", s.sys.L)
		s.fp = h.Sum64()
	})
	return s.fp
}

// wrapSystem adopts an internal QLDAE (assumed validated).
func wrapSystem(sys *qldae.System, desc string) *System {
	return &System{sys: sys, desc: desc}
}

// ParseNetlist reads a SPICE-like circuit description (see the grammar
// in the README: R/C/L/G/D/I cards plus .out), quadratic-linearizes
// any exponential diodes, and assembles the QLDAE.
func ParseNetlist(r io.Reader) (*System, error) {
	ckt, err := netlist.Parse(r)
	if err != nil {
		return nil, err
	}
	sys, err := ckt.Build()
	if err != nil {
		return nil, err
	}
	return wrapSystem(sys, ckt.Summary()), nil
}

// denseMirrorLimit bounds the state count up to which SystemBuilder
// also materializes the dense G1 alongside the CSR form. Beyond it the
// system is CSR-only: linear (K1) reductions and sparse-Newton
// transients work, the Schur-based H2/H3 machinery reports an error.
const denseMirrorLimit = 2500

// SystemBuilder accumulates matrix entries for a System. Duplicate
// coordinates sum; out-of-range indices panic (they are programming
// errors, like slice bounds). Build validates the result.
type SystemBuilder struct {
	n, inputs, outputs int
	g1                 *sparse.Builder
	g2                 *sparse.Builder
	g3                 *sparse.Builder
	d1                 []*mat.Dense
	b                  *mat.Dense
	l                  *mat.Dense
}

// NewSystemBuilder starts a builder for an n-state system with the
// given input and output counts.
func NewSystemBuilder(states, inputs, outputs int) *SystemBuilder {
	if states < 1 || inputs < 1 || outputs < 1 {
		panic("avtmor: SystemBuilder needs at least one state, input, and output")
	}
	return &SystemBuilder{
		n:       states,
		inputs:  inputs,
		outputs: outputs,
		g1:      sparse.NewBuilder(states, states),
		b:       mat.NewDense(states, inputs),
		l:       mat.NewDense(outputs, states),
	}
}

// ckIdx panics when an index is outside [0, bound) — the builder's
// contract for programming errors. Every coordinate is checked
// individually; flattened Kronecker indices and dense backing arrays
// would otherwise silently alias neighboring coefficients.
func ckIdx(what string, i, bound int) {
	if i < 0 || i >= bound {
		panic(fmt.Sprintf("avtmor: SystemBuilder %s index %d out of [0,%d)", what, i, bound))
	}
}

// G1 adds v to the linear term at (i, j).
func (sb *SystemBuilder) G1(i, j int, v float64) *SystemBuilder {
	ckIdx("G1 row", i, sb.n)
	ckIdx("G1 col", j, sb.n)
	sb.g1.Add(i, j, v)
	return sb
}

// G2 adds v to the quadratic term coefficient of x_p·x_q in equation i.
func (sb *SystemBuilder) G2(i, p, q int, v float64) *SystemBuilder {
	ckIdx("G2 row", i, sb.n)
	ckIdx("G2 p", p, sb.n)
	ckIdx("G2 q", q, sb.n)
	if sb.g2 == nil {
		sb.g2 = sparse.NewBuilder(sb.n, sb.n*sb.n)
	}
	sb.g2.Add(i, p*sb.n+q, v)
	return sb
}

// G3 adds v to the cubic term coefficient of x_p·x_q·x_r in equation i.
func (sb *SystemBuilder) G3(i, p, q, r int, v float64) *SystemBuilder {
	ckIdx("G3 row", i, sb.n)
	ckIdx("G3 p", p, sb.n)
	ckIdx("G3 q", q, sb.n)
	ckIdx("G3 r", r, sb.n)
	if sb.g3 == nil {
		sb.g3 = sparse.NewBuilder(sb.n, sb.n*sb.n*sb.n)
	}
	sb.g3.Add(i, (p*sb.n+q)*sb.n+r, v)
	return sb
}

// D1 adds v to the bilinear (state×input) block of the given input
// channel at (i, j).
func (sb *SystemBuilder) D1(input, i, j int, v float64) *SystemBuilder {
	ckIdx("D1 input", input, sb.inputs)
	ckIdx("D1 row", i, sb.n)
	ckIdx("D1 col", j, sb.n)
	if sb.d1 == nil {
		sb.d1 = make([]*mat.Dense, sb.inputs)
	}
	if sb.d1[input] == nil {
		sb.d1[input] = mat.NewDense(sb.n, sb.n)
	}
	sb.d1[input].Add(i, j, v)
	return sb
}

// B adds v to the input map at (i, input).
func (sb *SystemBuilder) B(i, input int, v float64) *SystemBuilder {
	ckIdx("B row", i, sb.n)
	ckIdx("B input", input, sb.inputs)
	sb.b.Add(i, input, v)
	return sb
}

// L adds v to the output map at (output, j).
func (sb *SystemBuilder) L(output, j int, v float64) *SystemBuilder {
	ckIdx("L output", output, sb.outputs)
	ckIdx("L col", j, sb.n)
	sb.l.Add(output, j, v)
	return sb
}

// Build assembles and validates the System. Small systems (n ≤ 2500)
// carry both the dense G1 and its CSR mirror so the solver layer can
// route by size and density; larger ones stay CSR-only.
func (sb *SystemBuilder) Build() (*System, error) {
	sys := &qldae.System{
		N:   sb.n,
		G1S: sb.g1.Build(),
		B:   sb.b,
		L:   sb.l,
	}
	if sb.n <= denseMirrorLimit {
		sys.G1 = sys.G1S.Dense()
	}
	if sb.g2 != nil {
		if g2 := sb.g2.Build(); g2.NNZ() > 0 {
			sys.G2 = g2
		}
	}
	if sb.g3 != nil {
		if g3 := sb.g3.Build(); g3.NNZ() > 0 {
			sys.G3 = g3
		}
	}
	if sb.d1 != nil {
		any := false
		for _, d := range sb.d1 {
			if d != nil {
				any = true
			}
		}
		if any {
			sys.D1 = sb.d1
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return wrapSystem(sys, ""), nil
}
