package avtmor_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"avtmor"
)

// validROMBytes reduces a small workload once per test binary and
// serializes it — the canonical well-formed stream for corruption
// tests.
func validROMBytes(t testing.TB) []byte {
	t.Helper()
	w := avtmor.NTLCurrent(12)
	rom, err := avtmor.Reduce(context.Background(), w.System, avtmor.WithOrders(2, 1, 0), avtmor.WithExpansion(w.S0))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if _, err := rom.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// romStream hand-assembles a ROM header followed by raw little-endian
// fields, for streams WriteTo would never produce.
type romStream struct{ bytes.Buffer }

func newROMStream(version uint32) *romStream {
	s := &romStream{}
	s.WriteString("AVTMROM\x00")
	s.u32(version)
	return s
}

func (s *romStream) u32(v uint32) { binary.Write(&s.Buffer, binary.LittleEndian, v) }
func (s *romStream) u64(v uint64) { binary.Write(&s.Buffer, binary.LittleEndian, v) }
func (s *romStream) str(v string) { s.u32(uint32(len(v))); s.WriteString(v) }

// header writes the method/stats/flags prefix up to (not including)
// the system body.
func (s *romStream) header() *romStream {
	s.str("assoc")
	for i := 0; i < 3; i++ {
		s.u64(0) // candidates, order, build
	}
	s.str("dense")
	s.u64(0) // factorizations
	s.u64(0) // cache hits
	s.u64(0) // flags
	return s
}

// TestROMReadFromCorrupt: the documented failure taxonomy. Every case
// must produce its classified error — never a panic, never a bogus
// success.
func TestROMReadFromCorrupt(t *testing.T) {
	valid := validROMBytes(t)
	cases := []struct {
		name    string
		data    []byte
		wantErr error  // errors.Is target, or
		wantMsg string // substring of the error text
	}{
		{name: "empty", data: nil, wantErr: avtmor.ErrBadMagic},
		{name: "foreign data", data: []byte("GET /v1/reduce HTTP/1.1\r\n"), wantErr: avtmor.ErrBadMagic},
		{name: "magic cut short", data: []byte("AVTM"), wantErr: avtmor.ErrBadMagic},
		{name: "wrong magic", data: append([]byte("AVTMROM\x01"), valid[8:]...), wantErr: avtmor.ErrBadMagic},
		{name: "system stream not a ROM", data: systemBytes(t), wantErr: avtmor.ErrBadMagic},
		{
			name:    "future version",
			data:    newROMStream(99).header().Bytes(),
			wantErr: avtmor.ErrVersion,
		},
		{
			name:    "implausible method string length",
			data:    func() []byte { s := newROMStream(1); s.u32(1 << 30); return s.Bytes() }(),
			wantMsg: "implausible string length",
		},
		{
			name:    "implausible state dimension",
			data:    func() []byte { s := newROMStream(1).header(); s.u64(1 << 40); return s.Bytes() }(),
			wantMsg: "implausible dimension",
		},
		{
			name: "implausible dense matrix",
			data: func() []byte {
				s := newROMStream(1).header()
				s.u64(4)       // n
				s.WriteByte(1) // G1 present
				s.u64(1 << 20) // rows
				s.u64(1 << 20) // cols → rows*cols over the element bound
				return s.Bytes()
			}(),
			wantMsg: "implausible dense matrix",
		},
		{
			name: "implausible CSR nonzero count",
			data: func() []byte {
				s := newROMStream(1).header()
				s.u64(4)
				s.WriteByte(0) // no G1
				s.WriteByte(1) // G1S present
				s.u64(4)
				s.u64(4)
				s.u64(1 << 35) // nnz, over the dimension bound
				return s.Bytes()
			}(),
			wantMsg: "implausible dimension",
		},
		{
			name: "corrupted CSR row pointers",
			data: func() []byte {
				s := newROMStream(1).header()
				s.u64(2)
				s.WriteByte(0)
				s.WriteByte(1)                        // G1S present
				s.u64(2)                              // rows
				s.u64(2)                              // cols
				s.u64(1)                              // nnz
				for _, p := range []uint64{0, 0, 7} { // RowPtr[rows] != nnz
					s.u64(p)
				}
				s.u64(0)                  // ColIdx
				s.u64(0x3FF0000000000000) // 1.0
				return s.Bytes()
			}(),
			wantMsg: "corrupted CSR row pointers",
		},
		{
			name: "CSR column index out of range",
			data: func() []byte {
				s := newROMStream(1).header()
				s.u64(2)
				s.WriteByte(0)
				s.WriteByte(1)
				s.u64(2)
				s.u64(2)
				s.u64(1)
				for _, p := range []uint64{0, 1, 1} {
					s.u64(p)
				}
				s.u64(99) // column 99 of 2
				s.u64(0x3FF0000000000000)
				return s.Bytes()
			}(),
			wantMsg: "column index",
		},
		{
			name: "inconsistent deserialized system",
			data: func() []byte {
				s := newROMStream(1).header()
				s.u64(3) // n = 3, but B/L sized for n = 2
				for i := 0; i < 5; i++ {
					s.WriteByte(0) // no G1/G1S/G2/G3/D1
				}
				s.u64(2) // B rows
				s.u64(1) // B cols
				s.u64(0)
				s.u64(0)
				s.u64(1) // L rows
				s.u64(2) // L cols
				s.u64(0)
				s.u64(0)
				return s.Bytes()
			}(),
			wantMsg: "inconsistent",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rom := &avtmor.ROM{}
			_, err := rom.ReadFrom(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt stream accepted")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q lacks %q", err, tc.wantMsg)
			}
		})
	}
}

func systemBytes(t testing.TB) []byte {
	t.Helper()
	w := avtmor.NTLCurrent(12)
	var b bytes.Buffer
	if _, err := w.System.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestROMReadFromTruncated: a valid stream cut at every possible
// length must error (io truncation), never panic and never succeed.
func TestROMReadFromTruncated(t *testing.T) {
	valid := validROMBytes(t)
	for n := 0; n < len(valid); n++ {
		rom := &avtmor.ROM{}
		if _, err := rom.ReadFrom(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", n, len(valid))
		}
	}
}

// TestROMReadFromBitFlips: flipping each byte of a valid stream must
// never panic; every outcome is either a classified error or a parse
// that yields a ROM we can re-serialize.
func TestROMReadFromBitFlips(t *testing.T) {
	valid := validROMBytes(t)
	data := make([]byte, len(valid))
	for i := range valid {
		copy(data, valid)
		data[i] ^= 0xFF
		rom := &avtmor.ROM{}
		if _, err := rom.ReadFrom(bytes.NewReader(data)); err == nil {
			// A flip in matrix payload bytes parses fine — the result
			// must still be a structurally servable artifact.
			if _, werr := rom.WriteTo(&bytes.Buffer{}); werr != nil {
				t.Fatalf("flip at %d: parsed ROM fails to re-serialize: %v", i, werr)
			}
		}
	}
}

// FuzzROMReadFrom drives ReadFrom with arbitrary bytes: any input may
// fail, none may panic, allocate absurdly, or yield a ROM that cannot
// be re-serialized. Seeds cover the valid stream, truncations, and the
// header corruptions; go test runs the corpus as regression tests.
func FuzzROMReadFrom(f *testing.F) {
	valid := validROMBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte{})
	f.Add([]byte("AVTMROM\x00"))
	f.Add(newROMStream(2).Bytes())
	f.Add(newROMStream(1).header().Bytes())
	f.Add(systemBytes(f))
	corrupt := append([]byte{}, valid...)
	corrupt[20] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		rom := &avtmor.ROM{}
		n, err := rom.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > int64(len(data)) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if _, werr := rom.WriteTo(&bytes.Buffer{}); werr != nil {
			t.Fatalf("accepted ROM fails to re-serialize: %v", werr)
		}
	})
}

// FuzzReadSystem is the same contract for the System wire format.
func FuzzReadSystem(f *testing.F) {
	valid := systemBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("AVTMSYS\x00"))
	f.Add(validROMBytes(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := avtmor.ReadSystem(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, werr := sys.WriteTo(&bytes.Buffer{}); werr != nil {
			t.Fatalf("accepted System fails to re-serialize: %v", werr)
		}
	})
}
