package avtmor_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"avtmor"
)

// TestReducerSingleflight is the service acceptance check: N
// concurrent identical requests trigger exactly one underlying
// reduction and share one ROM. Run under -race in CI.
func TestReducerSingleflight(t *testing.T) {
	rd := avtmor.NewReducer()
	w := avtmor.NTLCurrent(50)
	opts := []avtmor.Option{avtmor.WithOrders(6, 3, 2), avtmor.WithExpansion(w.S0)}
	const callers = 16
	roms := make([]*avtmor.ROM, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			roms[i], errs[i] = rd.Reduce(context.Background(), w.System, opts...)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if roms[i] != roms[0] {
			t.Fatalf("caller %d received a different ROM instance", i)
		}
	}
	st := rd.Stats()
	if st.Reductions != 1 {
		t.Fatalf("%d underlying reductions for identical requests, want exactly 1", st.Reductions)
	}
	if st.Coalesced != callers-1 {
		t.Fatalf("coalesced %d, want %d", st.Coalesced, callers-1)
	}
	if st.CachedROMs != 1 {
		t.Fatalf("cache population %d", st.CachedROMs)
	}
	// A later identical request is a pure cache hit.
	again, err := rd.Reduce(context.Background(), w.System, opts...)
	if err != nil || again != roms[0] {
		t.Fatalf("cache hit failed: %v", err)
	}
	if st = rd.Stats(); st.CacheHits != 1 || st.Reductions != 1 {
		t.Fatalf("stats after hit: %+v", st)
	}
	// Cache entries are shared instances: ReadFrom must refuse to
	// mutate them rather than let one caller poison every other's ROM.
	if _, err := again.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadFrom on a Reducer-cached ROM must be refused")
	}
	// And a nil system errors instead of panicking in the key hash.
	if _, err := rd.Reduce(context.Background(), nil); err == nil {
		t.Fatal("nil system must error")
	}
}

// TestReducerDistinctRequests: concurrent different requests do not
// coalesce — each gets its own reduction, and the cache keys them
// apart.
func TestReducerDistinctRequests(t *testing.T) {
	rd := avtmor.NewReducer()
	w := avtmor.NTLCurrent(40)
	variants := [][]avtmor.Option{
		{avtmor.WithOrders(4, 2, 0), avtmor.WithExpansion(w.S0)},
		{avtmor.WithOrders(5, 2, 0), avtmor.WithExpansion(w.S0)},
		{avtmor.WithOrders(4, 2, 0), avtmor.WithExpansion(w.S0, 0.4)},
		{avtmor.WithOrders(4, 2, 0), avtmor.WithExpansion(w.S0), avtmor.WithDropTol(1e-10)},
	}
	roms := make([]*avtmor.ROM, len(variants))
	var wg sync.WaitGroup
	for i, opts := range variants {
		wg.Add(1)
		go func(i int, opts []avtmor.Option) {
			defer wg.Done()
			var err error
			roms[i], err = rd.Reduce(context.Background(), w.System, opts...)
			if err != nil {
				t.Errorf("variant %d: %v", i, err)
			}
		}(i, opts)
	}
	wg.Wait()
	st := rd.Stats()
	if st.Reductions != int64(len(variants)) || st.CachedROMs != len(variants) {
		t.Fatalf("stats: %+v, want %d distinct reductions", st, len(variants))
	}
	// Parallel and Progress do not participate in the key: the same
	// request with them toggled is a cache hit.
	again, err := rd.Reduce(context.Background(), w.System,
		avtmor.WithOrders(4, 2, 0), avtmor.WithExpansion(w.S0),
		avtmor.WithParallel(), avtmor.WithProgress(func(avtmor.Progress) {}))
	if err != nil || again != roms[0] {
		t.Fatalf("Parallel/Progress changed the cache key: %v", err)
	}
	// NORM is keyed separately from assoc.
	nm, err := rd.ReduceNORM(context.Background(), w.System,
		avtmor.WithOrders(4, 2, 0), avtmor.WithExpansion(w.S0))
	if err != nil {
		t.Fatal(err)
	}
	if nm == roms[0] || nm.Method() != "norm" {
		t.Fatal("NORM request must not alias the assoc cache entry")
	}
}

// TestReducerWaiterCancellation: one waiter abandoning does not kill
// the reduction another still wants; abandoning them all does, and the
// aborted result is not cached.
func TestReducerWaiterCancellation(t *testing.T) {
	rd := avtmor.NewReducer()
	w := avtmor.RLCLine(2000)
	opts := []avtmor.Option{avtmor.WithOrders(200, 0, 0), avtmor.WithSolver(avtmor.SolverSparse)}

	impatient, cancelImpatient := context.WithCancel(context.Background())
	patientDone := make(chan error, 1)
	impatientDone := make(chan error, 1)
	go func() {
		_, err := rd.Reduce(context.Background(), w.System, opts...)
		patientDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	go func() {
		_, err := rd.Reduce(impatient, w.System, opts...)
		impatientDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancelImpatient()
	if err := <-impatientDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient waiter: %v", err)
	}
	if err := <-patientDone; err != nil {
		t.Fatalf("patient waiter must still get its ROM: %v", err)
	}
	if st := rd.Stats(); st.Reductions != 1 || st.CachedROMs != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// All waiters gone: the in-flight reduction aborts and nothing is
	// cached under that key. A longer Krylov chain keeps the flight
	// safely mid-generation when the cancel lands.
	rd2 := avtmor.NewReducer()
	longOpts := []avtmor.Option{avtmor.WithOrders(800, 0, 0), avtmor.WithSolver(avtmor.SolverSparse)}
	solo, cancelSolo := context.WithCancel(context.Background())
	soloDone := make(chan error, 1)
	go func() {
		_, err := rd2.Reduce(solo, w.System, longOpts...)
		soloDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelSolo()
	if err := <-soloDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("solo waiter: %v", err)
	}
	// Wait for the abandoned flight to unwind, then verify nothing was
	// cached under its key.
	deadline := time.Now().Add(10 * time.Second)
	for rd2.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned flight never unwound")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := rd2.Stats(); st.CachedROMs != 0 {
		t.Fatalf("abandoned reduction was cached: %+v", st)
	}
}
