// Command avtmor regenerates the evaluation of "Fast Nonlinear Model Order
// Reduction via Associated Transforms of High-Order Volterra Transfer
// Functions" (DAC 2012): transient figures 2–5, the runtime Table 1, and
// the §4 subspace-growth ablation, all driven through the public avtmor
// API (the experiment harness internal/exper sits on the facade).
//
// Usage:
//
//	avtmor [-out DIR] [-cpuprofile FILE] [-memprofile FILE]
//	       [fig2|fig3|fig4|fig5|table1|ablation|scale|all]
//
// "scale" runs the sparse-direct solver-spine experiment on ≥1000-state
// RLC transmission lines (dense vs sparse LU backends, CSR-only regime);
// it is not part of "all" because its dense half is deliberately slow.
//
// Targets are validated before anything runs: an unknown target, a
// duplicate, or a figure listed alongside "all" (which already covers
// it) prints the usage and exits non-zero without burning minutes on
// the experiments that preceded it on the command line.
//
// Each experiment prints a summary to stdout; figure experiments also
// write their series as CSV files under -out (default "results").
//
// avtmor runs the evaluation offline, in-process. To serve reductions
// over HTTP — POST netlists, get durable ROM artifacts from a
// content-addressed on-disk store, simulate them remotely — run the
// sibling daemon, cmd/avtmord.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiments (the CPU profile covers the whole run; the heap profile
// is written after a final GC), so the solver spine is inspectable
// with `go tool pprof` without an instrumented rebuild.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"avtmor/internal/exper"
)

var targetOrder = []string{"fig2", "fig3", "fig4", "fig5", "table1", "ablation", "scale"}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: avtmor [-out DIR] [target ...]\n")
	fmt.Fprintf(os.Stderr, "targets: %v, or \"all\" (= every target except scale); default all\n", targetOrder)
	fmt.Fprintf(os.Stderr, "(avtmor replays the paper's evaluation offline; to reduce and simulate\nover HTTP with a persistent ROM store, run the daemon: avtmord)\n")
	flag.PrintDefaults()
}

func main() {
	flag.Usage = usage
	out := flag.String("out", "results", "directory for CSV figure series")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC) to this file on exit")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		// LIFO: StopCPUProfile must flush before the file closes.
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// The heap snapshot runs after the experiments but before the
		// deferred CPU-profile teardown; a forced GC first, so the profile
		// shows live retention rather than garbage awaiting collection.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	runners := map[string]func() (*exper.Report, error){
		"fig2":     exper.Fig2,
		"fig3":     exper.Fig3,
		"fig4":     exper.Fig4,
		"fig5":     exper.Fig5,
		"table1":   exper.Table1,
		"ablation": exper.Ablation,
		"scale":    exper.Scale,
	}
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	// Validate the whole command line up front: a typo in the last
	// target must not cost the runtime of the first ones, and a
	// duplicate — literal, or a target "all" already covers — almost
	// certainly is not what the caller meant.
	inAll := map[string]bool{} // everything in targetOrder except scale
	for _, t := range targetOrder {
		inAll[t] = t != "scale"
	}
	seen := map[string]bool{}
	hasAll := false
	for _, t := range targets {
		if t == "all" {
			hasAll = true
		}
	}
	for _, t := range targets {
		if t != "all" && runners[t] == nil {
			fmt.Fprintf(os.Stderr, "avtmor: unknown target %q\n", t)
			usage()
			os.Exit(2)
		}
		if seen[t] {
			fmt.Fprintf(os.Stderr, "avtmor: duplicate target %q\n", t)
			usage()
			os.Exit(2)
		}
		if hasAll && inAll[t] {
			fmt.Fprintf(os.Stderr, "avtmor: target %q is already included in \"all\"\n", t)
			usage()
			os.Exit(2)
		}
		seen[t] = true
	}
	var reports []*exper.Report
	for _, t := range targets {
		if t == "all" {
			rs, err := exper.All()
			if err != nil {
				fatal(err)
			}
			reports = append(reports, rs...)
			continue
		}
		r, err := runners[t]()
		if err != nil {
			fatal(err)
		}
		reports = append(reports, r)
	}
	for _, r := range reports {
		fmt.Printf("== %s ==\n", r.Title)
		for _, l := range r.Lines {
			fmt.Println("  " + l)
		}
		if r.CSV != nil {
			if err := writeCSV(*out, r.ID+".csv", r.CSV); err != nil {
				fatal(err)
			}
			fmt.Printf("  series written to %s\n", filepath.Join(*out, r.ID+".csv"))
		}
		fmt.Println()
	}
}

func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avtmor:", err)
	os.Exit(1)
}
