// Command avtmor regenerates the evaluation of "Fast Nonlinear Model Order
// Reduction via Associated Transforms of High-Order Volterra Transfer
// Functions" (DAC 2012): transient figures 2–5, the runtime Table 1, and
// the §4 subspace-growth ablation.
//
// Usage:
//
//	avtmor [-out DIR] [fig2|fig3|fig4|fig5|table1|ablation|scale|all]
//
// "scale" runs the sparse-direct solver-spine experiment on ≥1000-state
// RLC transmission lines (dense vs sparse LU backends, CSR-only regime);
// it is not part of "all" because its dense half is deliberately slow.
//
// Each experiment prints a summary to stdout; figure experiments also
// write their series as CSV files under -out (default "results").
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"avtmor/internal/exper"
)

func main() {
	out := flag.String("out", "results", "directory for CSV figure series")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	runners := map[string]func() (*exper.Report, error){
		"fig2":     exper.Fig2,
		"fig3":     exper.Fig3,
		"fig4":     exper.Fig4,
		"fig5":     exper.Fig5,
		"table1":   exper.Table1,
		"ablation": exper.Ablation,
		"scale":    exper.Scale,
	}
	order := []string{"fig2", "fig3", "fig4", "fig5", "table1", "ablation", "scale"}
	var reports []*exper.Report
	for _, t := range targets {
		switch {
		case t == "all":
			rs, err := exper.All()
			if err != nil {
				fatal(err)
			}
			reports = append(reports, rs...)
		case runners[t] != nil:
			r, err := runners[t]()
			if err != nil {
				fatal(err)
			}
			reports = append(reports, r)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q (choose from %v or all)\n", t, order)
			os.Exit(2)
		}
	}
	for _, r := range reports {
		fmt.Printf("== %s ==\n", r.Title)
		for _, l := range r.Lines {
			fmt.Println("  " + l)
		}
		if r.CSV != nil {
			if err := writeCSV(*out, r.ID+".csv", r.CSV); err != nil {
				fatal(err)
			}
			fmt.Printf("  series written to %s\n", filepath.Join(*out, r.ID+".csv"))
		}
		fmt.Println()
	}
}

func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avtmor:", err)
	os.Exit(1)
}
