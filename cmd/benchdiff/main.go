// Command benchdiff is the CI bench-regression gate: it parses `go
// test -bench` output, compares every measured benchmark against the
// committed baseline in BENCH_solver.json (ns/op and allocs/op), and
// exits nonzero when any benchmark regressed past the threshold — so
// a refactor that silently gives back the solver spine's speed fails
// the nightly build instead of landing unnoticed.
//
// Usage:
//
//	go test -run XXX -bench ReduceBlocked -benchmem -benchtime 10x . > bench.out
//	benchdiff [-baseline BENCH_solver.json] [-threshold 0.30] bench.out [more.out ...]
//
// With no file arguments, bench output is read from stdin. Benchmarks
// in the output but absent from the baseline are reported and skipped
// (record them when regenerating the baseline); a run that matches
// nothing at all is an error, so a typo'd -bench regex cannot produce
// a silently green gate. Wall-clock comparisons are honest only on
// hardware comparable to the baseline host (recorded in the baseline's
// cpu/cpus fields, printed on every run); allocs/op is
// machine-independent and gated with the same threshold.
//
// Benchmarks listed in the baseline's ungated_ns array have their
// ns/op printed for reference but never gated — single hot TCP round
// trips belong there, being latency-jitter bound — while their
// allocs/op, if recorded, stays gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline is the subset of BENCH_solver.json the gate reads.
type baseline struct {
	Date    string             `json:"date"`
	Go      string             `json:"go"`
	CPU     string             `json:"cpu"`
	CPUs    int                `json:"cpus"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
	Allocs  map[string]float64 `json:"allocs_per_op"`
	// UngatedNs lists benchmarks whose ns/op is recorded for reference
	// but excluded from the wall-clock gate (their allocs/op, if
	// recorded, is still gated). Single hot TCP round trips belong
	// here: they are latency-jitter bound and swing well past any
	// useful threshold between identical runs on the baseline host,
	// while their allocation counts are deterministic.
	UngatedNs []string           `json:"ungated_ns"`
	Derived   map[string]float64 `json:"derived"`
	Comment   string             `json:"comment"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	Preamble  map[string]any     `json:"-"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	name      string // normalized: GOMAXPROCS suffix stripped
	nsPerOp   float64
	allocs    float64
	hasAllocs bool
}

// benchLine matches `BenchmarkName-8   100   15234 ns/op ...`; the
// allocs column only appears under -benchmem.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+(?:[eE][+-]?[0-9]+)?) ns/op(.*)$`)
	allocsCol  = regexp.MustCompile(`(^|\s)([0-9.]+) allocs/op`)
	procSuffix = regexp.MustCompile(`-[0-9]+$`)
)

// normalize strips the -GOMAXPROCS suffix go test appends to every
// benchmark name, so measurements match the baseline's keys.
func normalize(name string) string { return procSuffix.ReplaceAllString(name, "") }

// parseBench extracts every benchmark measurement from go test output.
func parseBench(r io.Reader) ([]measurement, error) {
	var out []measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing ns/op of %s: %w", m[1], err)
		}
		meas := measurement{name: normalize(m[1]), nsPerOp: ns}
		if a := allocsCol.FindStringSubmatch(m[3]); a != nil {
			meas.allocs, err = strconv.ParseFloat(a[2], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing allocs/op of %s: %w", m[1], err)
			}
			meas.hasAllocs = true
		}
		out = append(out, meas)
	}
	return out, sc.Err()
}

// finding is one gate verdict: a benchmark compared against its
// baseline entry.
type finding struct {
	name                string
	metric              string // "ns/op" or "allocs/op"
	measured, base      float64
	ratio               float64 // measured / base
	regressed, improved bool
	ungated             bool // recorded for reference, never gated
}

// compare gates measurements against the baseline: a measurement
// regresses when measured > base·(1+threshold), and is flagged as a
// notable improvement when measured < base·(1−threshold) (a hint to
// refresh the baseline so future regressions are caught from the new
// level). Returns the findings plus the measured names missing from
// the baseline.
func compare(meas []measurement, base *baseline, threshold float64) (findings []finding, missing []string) {
	ungated := map[string]bool{}
	for _, name := range base.UngatedNs {
		ungated[name] = true
	}
	for _, m := range meas {
		bns, ok := base.NsPerOp[m.name]
		if !ok {
			missing = append(missing, m.name)
			continue
		}
		f := finding{name: m.name, metric: "ns/op", measured: m.nsPerOp, base: bns, ungated: ungated[m.name]}
		if bns > 0 {
			f.ratio = m.nsPerOp / bns
			if !f.ungated {
				f.regressed = f.ratio > 1+threshold
				f.improved = f.ratio < 1-threshold
			}
		}
		findings = append(findings, f)
		if ba, ok := base.Allocs[m.name]; ok && m.hasAllocs {
			fa := finding{name: m.name, metric: "allocs/op", measured: m.allocs, base: ba}
			switch {
			case ba > 0:
				fa.ratio = m.allocs / ba
				fa.regressed = fa.ratio > 1+threshold
				fa.improved = fa.ratio < 1-threshold
			case m.allocs > 0:
				// A zero-alloc baseline that now allocates is a
				// regression no ratio can express.
				fa.ratio = -1
				fa.regressed = true
			default:
				fa.ratio = 1
			}
			findings = append(findings, fa)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].name != findings[j].name {
			return findings[i].name < findings[j].name
		}
		return findings[i].metric < findings[j].metric
	})
	return findings, missing
}

// usage writes the command's help text, including the baseline fields
// the gate interprets — in particular ungated_ns, whose absence from
// the docs once cost a debugging session when a serve benchmark
// "failed to gate".
func usage(w io.Writer) {
	fmt.Fprint(w, `usage: benchdiff [-baseline BENCH_solver.json] [-threshold 0.30] [bench.out ...]

Parses `+"`go test -bench`"+` output (stdin when no files are named) and
compares every measured benchmark against the committed baseline,
exiting nonzero on any ns/op or allocs/op regression beyond the
threshold.

Baseline fields the gate reads:
  ns_per_op      gated wall-clock per benchmark
  allocs_per_op  gated allocation count per benchmark
  ungated_ns     list of benchmarks whose ns/op is printed for
                 reference but never gated (single hot TCP round trips
                 belong here: latency-jitter bound); their allocs/op,
                 if recorded, is still gated
  cpu, cpus      the baseline host, printed on every run: wall-clock
                 verdicts are only as honest as the runner's
                 resemblance to it

Flags:
`)
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_solver.json", "committed baseline JSON")
	threshold := flag.Float64("threshold", 0.30, "allowed fractional regression (0.30 = +30%) for ns/op and allocs/op")
	flag.Usage = func() {
		usage(os.Stderr)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold must be positive")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	var meas []measurement
	if flag.NArg() == 0 {
		if meas, err = parseBench(os.Stdin); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		part, err := parseBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(2)
		}
		meas = append(meas, part...)
	}
	if len(meas) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input (empty run or wrong file?)")
		os.Exit(2)
	}

	findings, missing := compare(meas, &base, *threshold)
	if len(findings) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: none of the %d measured benchmarks appear in %s — check the -bench regex\n",
			len(meas), *baselinePath)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %d measurements vs %s (baseline %s, %s, go %s, cpus %d), threshold +%.0f%%\n",
		len(findings), *baselinePath, base.Date, base.CPU, base.Go, base.CPUs, *threshold*100)
	regressions := 0
	for _, f := range findings {
		verdict := "ok"
		switch {
		case f.ungated:
			verdict = "ungated (reference only)"
		case f.regressed:
			verdict = "REGRESSED"
			regressions++
		case f.improved:
			verdict = "improved (refresh baseline?)"
		}
		ratio := "n/a"
		if f.ratio >= 0 {
			ratio = fmt.Sprintf("%.2fx", f.ratio)
		}
		fmt.Printf("  %-52s %-10s %14.1f vs %14.1f  %-6s %s\n",
			f.name, f.metric, f.measured, f.base, ratio, verdict)
	}
	for _, name := range missing {
		fmt.Printf("  %-52s (not in baseline — record it on the next regeneration)\n", name)
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: FAIL — %d regression(s) beyond +%.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: PASS")
}
