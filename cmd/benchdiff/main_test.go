package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: avtmor
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReduceBlocked-1         	      20	   2200000 ns/op	  920000 B/op	    6000 allocs/op
BenchmarkSolveBatchSparse/k=16-1 	      20	    150000 ns/op	     512 B/op	       2 allocs/op
BenchmarkSolveBatchSparse/k=4-8  	      20	     37000 ns/op	     256 B/op	       2 allocs/op
BenchmarkNotInBaseline-1         	     100	      1000 ns/op
PASS
ok  	avtmor	1.234s
`

func sampleBaseline() *baseline {
	return &baseline{
		NsPerOp: map[string]float64{
			"BenchmarkReduceBlocked":         2110933,
			"BenchmarkSolveBatchSparse/k=16": 152441,
			"BenchmarkSolveBatchSparse/k=4":  37089,
			"BenchmarkNeverMeasured":         1,
		},
		Allocs: map[string]float64{
			"BenchmarkReduceBlocked":         6234,
			"BenchmarkSolveBatchSparse/k=16": 2,
			"BenchmarkSolveBatchSparse/k=4":  2,
		},
	}
}

func TestParseBench(t *testing.T) {
	meas, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 4 {
		t.Fatalf("parsed %d measurements, want 4: %+v", len(meas), meas)
	}
	// GOMAXPROCS suffixes are stripped, sub-benchmark names survive.
	if meas[1].name != "BenchmarkSolveBatchSparse/k=16" || meas[1].nsPerOp != 150000 {
		t.Fatalf("sub-benchmark parsed as %+v", meas[1])
	}
	if !meas[0].hasAllocs || meas[0].allocs != 6000 {
		t.Fatalf("allocs column parsed as %+v", meas[0])
	}
	if meas[3].hasAllocs {
		t.Fatalf("benchmark without -benchmem claims allocs: %+v", meas[3])
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	meas, _ := parseBench(strings.NewReader(sampleOutput))
	findings, missing := compare(meas, sampleBaseline(), 0.30)
	for _, f := range findings {
		if f.regressed {
			t.Fatalf("within-threshold run flagged: %+v", f)
		}
	}
	if len(missing) != 1 || missing[0] != "BenchmarkNotInBaseline" {
		t.Fatalf("missing = %v", missing)
	}
	// ns/op + allocs/op per matched benchmark: 3 matched, all with
	// alloc baselines.
	if len(findings) != 6 {
		t.Fatalf("%d findings, want 6: %+v", len(findings), findings)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := sampleBaseline()
	base.NsPerOp["BenchmarkReduceBlocked"] = 1000000 // measured 2.2e6 → 2.2x
	findings, _ := compare(mustParse(t, sampleOutput), base, 0.30)
	var hit *finding
	for i := range findings {
		if findings[i].name == "BenchmarkReduceBlocked" && findings[i].metric == "ns/op" {
			hit = &findings[i]
		}
	}
	if hit == nil || !hit.regressed {
		t.Fatalf("2.2x slowdown not flagged: %+v", hit)
	}
	if hit.improved {
		t.Fatal("regression also marked improved")
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := sampleBaseline()
	base.Allocs["BenchmarkReduceBlocked"] = 1000 // measured 6000 → 6x
	findings, _ := compare(mustParse(t, sampleOutput), base, 0.30)
	seen := false
	for _, f := range findings {
		if f.name == "BenchmarkReduceBlocked" && f.metric == "allocs/op" {
			seen = true
			if !f.regressed {
				t.Fatalf("6x alloc growth not flagged: %+v", f)
			}
		}
	}
	if !seen {
		t.Fatal("alloc finding missing")
	}
}

func TestCompareZeroAllocBaseline(t *testing.T) {
	base := sampleBaseline()
	base.Allocs["BenchmarkSolveBatchSparse/k=16"] = 0 // was alloc-free, now 2
	findings, _ := compare(mustParse(t, sampleOutput), base, 0.30)
	for _, f := range findings {
		if f.name == "BenchmarkSolveBatchSparse/k=16" && f.metric == "allocs/op" {
			if !f.regressed {
				t.Fatalf("allocs appearing on a zero-alloc baseline not flagged: %+v", f)
			}
			return
		}
	}
	t.Fatal("zero-alloc finding missing")
}

func TestCompareMarksImprovement(t *testing.T) {
	base := sampleBaseline()
	base.NsPerOp["BenchmarkSolveBatchSparse/k=4"] = 370000 // measured 37000 → 0.1x
	findings, _ := compare(mustParse(t, sampleOutput), base, 0.30)
	for _, f := range findings {
		if f.name == "BenchmarkSolveBatchSparse/k=4" && f.metric == "ns/op" {
			if !f.improved || f.regressed {
				t.Fatalf("10x speedup not marked improved: %+v", f)
			}
			return
		}
	}
	t.Fatal("finding missing")
}

func mustParse(t *testing.T, out string) []measurement {
	t.Helper()
	meas, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return meas
}

// TestUsageDocumentsUngatedNs pins the help text to the baseline
// schema: every field compare() interprets — ungated_ns above all,
// since its effect (a benchmark that never fails the wall-clock gate)
// is invisible without documentation — must appear in the usage output.
func TestUsageDocumentsUngatedNs(t *testing.T) {
	var buf strings.Builder
	usage(&buf)
	for _, field := range []string{"ungated_ns", "ns_per_op", "allocs_per_op"} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("usage text does not mention baseline field %q:\n%s", field, buf.String())
		}
	}
}

func TestCompareUngatedNs(t *testing.T) {
	base := sampleBaseline()
	base.UngatedNs = []string{"BenchmarkReduceBlocked"}
	meas := []measurement{
		// 10x the recorded wall clock: far past the threshold, but the
		// entry is ungated, so only its (regressed) allocs may fail.
		{name: "BenchmarkReduceBlocked", nsPerOp: 22000000, allocs: 9000, hasAllocs: true},
	}
	findings, _ := compare(meas, base, 0.30)
	if len(findings) != 2 {
		t.Fatalf("%d findings, want 2: %+v", len(findings), findings)
	}
	for _, f := range findings {
		switch f.metric {
		case "ns/op":
			if f.regressed || f.improved {
				t.Fatalf("ungated ns/op was gated: %+v", f)
			}
			if !f.ungated {
				t.Fatalf("ns/op finding not marked ungated: %+v", f)
			}
		case "allocs/op":
			if !f.regressed {
				t.Fatalf("allocs of an ungated-ns benchmark must stay gated: %+v", f)
			}
		}
	}
}
