// Command avtmorctl is the thin CLI over avtmorclient: reduce
// netlists against an avtmord fleet (ring-aware — each request dials
// the key's owner directly), submit many inputs as one batch, and
// fetch artifacts by content address with ETag revalidation against a
// previously saved copy.
//
// Usage:
//
//	avtmorctl reduce  -nodes HOST:PORT[,HOST:PORT...] [-q QUERY] [-o FILE] NETLIST
//	avtmorctl batch   -nodes ... [-q QUERY] [-out DIR] NETLIST...
//	avtmorctl get     -nodes ... [-o FILE] [-revalidate] DIGEST
//	avtmorctl metrics -nodes ... [-nonzero NAME]...
//
// reduce prints the artifact's content address on stdout and writes
// the ROM to -o when given. batch prints one line per item
// ("<status> <digest> <bytes|error>") in input order and, with -out,
// writes each successful ROM to DIR/<digest>.rom; it exits non-zero
// if any item failed. get writes the ROM to -o (stdout by default);
// with -revalidate and an existing -o file, the file's bytes seed the
// client cache so an unchanged artifact answers 304 and the file is
// left untouched ("revalidated" is printed to stderr).
//
// QUERY is the reduce query string, e.g. 'k1=4&k2=2&s0=0.4' — the
// same parameters POST /v1/reduce accepts.
//
// metrics scrapes GET /metrics on every node, validates the Prometheus
// text exposition (metadata before samples, histogram bucket
// invariants), prints per-node sample counts, and with each repeatable
// -nonzero NAME asserts that NAME sums to a positive value across the
// fleet — CI uses it as an exposition smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avtmor/avtmorclient"
	"avtmor/internal/promtext"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "reduce":
		err = cmdReduce(args)
	case "batch":
		err = cmdBatch(args)
	case "get":
		err = cmdGet(args)
	case "cluster":
		err = cmdCluster(args)
	case "metrics":
		err = cmdMetrics(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "avtmorctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "avtmorctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  avtmorctl reduce -nodes HOST:PORT[,...] [-q QUERY] [-o FILE] NETLIST
  avtmorctl batch  -nodes HOST:PORT[,...] [-q QUERY] [-out DIR] NETLIST...
  avtmorctl get    -nodes HOST:PORT[,...] [-o FILE] [-revalidate] DIGEST
  avtmorctl cluster -nodes HOST:PORT[,...] [-verify]
  avtmorctl metrics -nodes HOST:PORT[,...] [-nonzero NAME]...`)
}

// fleetFlags installs the flags every subcommand shares.
func fleetFlags(fs *flag.FlagSet) (nodes, q *string, timeout *time.Duration) {
	nodes = fs.String("nodes", "", "comma-separated fleet addresses (required)")
	q = fs.String("q", "", "reduce query string, e.g. 'k1=4&k2=2&s0=0.4'")
	timeout = fs.Duration("timeout", 5*time.Minute, "overall deadline")
	return
}

func newClient(nodes string) (*avtmorclient.Client, error) {
	if nodes == "" {
		return nil, fmt.Errorf("-nodes is required")
	}
	var list []string
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			list = append(list, n)
		}
	}
	return avtmorclient.New(avtmorclient.Config{Nodes: list})
}

func parseQuery(q string) (url.Values, error) {
	v, err := url.ParseQuery(q)
	if err != nil {
		return nil, fmt.Errorf("parsing -q: %w", err)
	}
	return v, nil
}

func cmdReduce(args []string) error {
	fs := flag.NewFlagSet("reduce", flag.ExitOnError)
	nodes, q, timeout := fleetFlags(fs)
	out := fs.String("o", "", "write the ROM here (omitted: key only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("reduce wants exactly one netlist file, got %d", fs.NArg())
	}
	body, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := newClient(*nodes)
	if err != nil {
		return err
	}
	params, err := parseQuery(*q)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := c.Reduce(ctx, body, params)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, res.Raw, 0o644); err != nil {
			return err
		}
	}
	fmt.Println(res.Key)
	return nil
}

func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	nodes, q, timeout := fleetFlags(fs)
	out := fs.String("out", "", "write each successful ROM to DIR/<digest>.rom")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("batch wants one or more netlist files")
	}
	bodies := make([][]byte, fs.NArg())
	for i, name := range fs.Args() {
		b, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		bodies[i] = b
	}
	c, err := newClient(*nodes)
	if err != nil {
		return err
	}
	params, err := parseQuery(*q)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	items, err := c.ReduceBatch(ctx, bodies, params)
	if err != nil {
		return err
	}
	failed := 0
	for _, it := range items {
		if it.OK() {
			fmt.Printf("%d %s %d\n", it.Status, it.Key, len(it.Raw))
			if *out != "" {
				if err := os.WriteFile(filepath.Join(*out, it.Key+".rom"), it.Raw, 0o644); err != nil {
					return err
				}
			}
			continue
		}
		failed++
		fmt.Printf("%d %s %s\n", it.Status, orDash(it.Key), it.Err)
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d items failed", failed, len(items))
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	nodes, _, timeout := fleetFlags(fs)
	out := fs.String("o", "", "write the ROM here (default stdout)")
	reval := fs.Bool("revalidate", false, "seed the cache from an existing -o file and revalidate via ETag")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("get wants exactly one content address, got %d", fs.NArg())
	}
	digest := fs.Arg(0)
	c, err := newClient(*nodes)
	if err != nil {
		return err
	}
	if *reval {
		if *out == "" {
			return fmt.Errorf("-revalidate needs -o pointing at the previously saved artifact")
		}
		if prev, err := os.ReadFile(*out); err == nil {
			c.SeedCache(digest, prev)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	raw, err := c.GetROM(ctx, digest)
	if err != nil {
		return err
	}
	if c.Stats().Revalidated > 0 {
		// The artifact is unchanged; the saved file already holds it.
		fmt.Fprintln(os.Stderr, "revalidated")
		return nil
	}
	if *out == "" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(*out, raw, 0o644)
}

// cmdCluster prints the fleet's membership view — epoch, replication
// factor, and for every member its health plus how many content
// addresses it holds — and with -verify audits placement: every
// address anywhere in the fleet must be present on each of its ring
// owners, and the command exits non-zero listing what is missing
// where. CI uses the verify mode to poll a churned fleet until
// anti-entropy has restored full replication.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes, _, timeout := fleetFlags(fs)
	verify := fs.Bool("verify", false, "audit placement: fail unless every artifact is on all of its replica owners")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("cluster takes no positional arguments")
	}
	c, err := newClient(*nodes)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	m, err := c.Membership(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("epoch %d, replicas %d, %d nodes\n", m.Epoch, m.Replicas, len(m.Peers))

	held := make(map[string]map[string]bool, len(m.Peers))
	for _, peer := range m.Peers {
		health := healthOf(ctx, peer)
		keys, err := c.Keys(ctx, peer, peer)
		if err != nil {
			fmt.Printf("  %-21s %-8s keys unavailable: %v\n", peer, health, err)
			continue
		}
		fmt.Printf("  %-21s %-8s %d keys\n", peer, health, len(keys))
		set := make(map[string]bool, len(keys))
		for _, k := range keys {
			set[k] = true
		}
		held[peer] = set
	}
	if !*verify {
		return nil
	}

	// Placement audit against the fleet's own view: the union of every
	// node's key list is the ground truth, and each address must be on
	// all of its owners (the client ring and the fleet ring are the same
	// construction, verified continuously by the key-check guard).
	all := map[string]bool{}
	for _, set := range held {
		for k := range set {
			all[k] = true
		}
	}
	missing := 0
	for k := range all {
		for _, owner := range c.Owners(k) {
			set, ok := held[owner]
			if !ok {
				// Key listing failed above; already reported.
				continue
			}
			if !set[k] {
				missing++
				fmt.Printf("under-replicated: %s missing on owner %s\n", k, owner)
			}
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d replica copies missing", missing)
	}
	fmt.Printf("verify ok: %d keys fully replicated\n", len(all))
	return nil
}

// stringList collects a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// cmdMetrics scrapes every node's Prometheus endpoint through the
// validating exposition parser, so a malformed scrape — metadata after
// samples, a non-cumulative histogram, a duplicate series — fails the
// command, not just a dashboard somewhere. Each -nonzero NAME then
// asserts that NAME's samples sum to > 0 across the fleet (counters
// prove traffic actually flowed; per-node values may legitimately be
// zero on nodes the ring never placed work on).
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	nodes, _, timeout := fleetFlags(fs)
	var nonzero stringList
	fs.Var(&nonzero, "nonzero", "metric name that must sum to > 0 across the fleet (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("metrics takes no positional arguments")
	}
	if *nodes == "" {
		return fmt.Errorf("-nodes is required")
	}
	var list []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			list = append(list, n)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	sums := map[string]float64{}
	for _, node := range list {
		scrape, samples, err := scrapeNode(ctx, node)
		if err != nil {
			return fmt.Errorf("node %s: %w", node, err)
		}
		fmt.Printf("%-21s %d families, %d samples\n", node, len(scrape.Families()), samples)
		for _, name := range nonzero {
			if v, ok := scrape.Value(name); ok {
				sums[name] += v
			}
		}
	}
	for _, name := range nonzero {
		if !(sums[name] > 0) {
			return fmt.Errorf("metric %s sums to %g across the fleet, want > 0", name, sums[name])
		}
		fmt.Printf("nonzero ok: %s = %g\n", name, sums[name])
	}
	return nil
}

// scrapeNode fetches and validates one node's exposition.
func scrapeNode(ctx context.Context, node string) (*promtext.Scrape, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+node+"/metrics", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, 0, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	scrape, err := promtext.Parse(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("invalid exposition: %w", err)
	}
	samples := 0
	for _, name := range scrape.Families() {
		samples += len(scrape.Family(name).Samples)
	}
	return scrape, samples, nil
}

// healthOf probes one node's /healthz.
func healthOf(ctx context.Context, node string) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+node+"/healthz", nil)
	if err != nil {
		return "error"
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "down"
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return "ok"
	case http.StatusServiceUnavailable:
		return "draining"
	default:
		return fmt.Sprintf("http %d", resp.StatusCode)
	}
}
