// Command avtmord is the avtmor reduction daemon: an HTTP service that
// accepts netlists (or serialized Systems), reduces them with the
// associated-transform engine, persists the resulting ROM artifacts in
// a content-addressed on-disk store, and simulates stored ROMs on
// demand. Identical concurrent requests coalesce onto one reduction;
// artifacts survive restarts; overload sheds with 429 at a bounded
// worker pool instead of piling up goroutines.
//
// Usage:
//
//	avtmord [-addr HOST:PORT] [-store DIR] [-workers N] [-queue N]
//	        [-cache-limit N] [-grace D] [-drain-notice D]
//	        [-node HOST:PORT -peers HOST:PORT,HOST:PORT,...]
//	        [-replicas N] [-join HOST:PORT] [-leave] [-anti-entropy D]
//	        [-cost-budget N] [-quota [KEY=]RATE:BURST]...
//	        [-access-log FILE] [-pprof HOST:PORT]
//
// Operability (docs/OPERATIONS.md has the full runbook): GET /metrics
// serves Prometheus text exposition, GET /metrics.json the legacy
// expvar JSON. -cost-budget bounds the total estimated cost of
// concurrently admitted work (expensive reduces queue behind their own
// kind while cheap ones keep flowing; the estimate is returned in
// X-Avtmor-Cost). -quota attaches a token bucket to an API key (the
// X-Avtmor-Api-Key header); the form without KEY= sets the default
// bucket shared by unkeyed clients. -access-log appends one JSON line
// per request ("-" for stdout), each carrying the request ID that
// X-Avtmor-Request-Id propagates across the fleet.
//
// -pprof exposes net/http/pprof on its own listener (off by default;
// bind it to loopback): profiling never rides the serving listener, so
// the debug surface cannot leak through whatever exposes the service
// port, and a profile scrape contends with requests only for CPU.
//
// Quickstart against a local daemon:
//
//	avtmord -addr 127.0.0.1:8472 -store ./roms &
//	curl -s --data-binary @circuit.sp 'http://127.0.0.1:8472/v1/reduce?k1=4&k2=2' -o rom.bin
//	key=$(curl -si --data-binary @circuit.sp 'http://127.0.0.1:8472/v1/reduce?k1=4&k2=2' \
//	      -o /dev/null -w '%header{X-Avtmor-Rom-Key}')
//	curl -s -d '{"tEnd":1e-9,"steps":2000,"input":{"kind":"const","values":[1]}}' \
//	      "http://127.0.0.1:8472/v1/roms/$key/simulate"
//	curl -s http://127.0.0.1:8472/metrics
//
// Cluster mode shards the ROM key space over a static fleet with a
// consistent-hash ring: start every node with the same -peers list and
// its own -node entry, point clients at any of them, and each key is
// reduced and stored on exactly one owner (requests entering elsewhere
// are forwarded one hop). When -addr is left at its default, the
// daemon listens on the -node address:
//
//	avtmord -node :8081 -peers :8081,:8082,:8083 -store ./roms-1 &
//	avtmord -node :8082 -peers :8081,:8082,:8083 -store ./roms-2 &
//	avtmord -node :8083 -peers :8081,:8082,:8083 -store ./roms-3 &
//
// With -replicas R > 1 each artifact lives on R distinct ring
// successors (written through synchronously on the primary,
// best-effort async on the followers, repaired by a background
// anti-entropy sweeper), so any single node can die without losing
// availability or recomputing. Membership is dynamic: a new node
// joins a running fleet through any member, and -leave announces a
// graceful departure during drain:
//
//	avtmord -node :8084 -join :8081 -replicas 2 -store ./roms-4 -leave &
//
// See the serve package and DESIGN.md §5/§7 for the endpoint,
// backpressure, and forwarding contracts. SIGINT/SIGTERM drain
// gracefully: /healthz flips to 503 "draining" first, the listener
// stays open for -drain-notice so load balancers and ring peers
// observe the departure, then in-flight work drains within -grace.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"avtmor/internal/quota"
	"avtmor/serve"
)

const defaultAddr = "127.0.0.1:8472"

// quotaFlags collects repeatable -quota [KEY=]RATE:BURST values into a
// serve.Config.Quotas map.
type quotaFlags struct {
	specs map[string]serve.QuotaSpec
}

func (q *quotaFlags) String() string { return fmt.Sprintf("%v", q.specs) }

func (q *quotaFlags) Set(v string) error {
	key := ""
	specText := v
	if i := strings.IndexByte(v, '='); i >= 0 {
		key, specText = v[:i], v[i+1:]
	}
	spec, err := quota.ParseSpec(specText)
	if err != nil {
		return err
	}
	if q.specs == nil {
		q.specs = map[string]serve.QuotaSpec{}
	}
	if _, dup := q.specs[key]; dup {
		return fmt.Errorf("duplicate -quota for key %q", key)
	}
	q.specs[key] = spec
	return nil
}

func main() {
	addr := flag.String("addr", defaultAddr, "listen address (port 0 picks an ephemeral port; defaults to -node in cluster mode)")
	dir := flag.String("store", "avtmord-store", "ROM store directory; \"\" keeps artifacts in memory only")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "reduction/simulation worker pool size")
	queue := flag.Int("queue", 64, "pending-request queue depth; 0 = no queue, a request runs immediately or is answered 429")
	cacheLimit := flag.Int("cache-limit", 256, "max ROMs held in memory, LRU-evicted to the store (0 = unbounded)")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown drain window")
	drainNotice := flag.Duration("drain-notice", time.Second, "how long /healthz advertises 503 draining before the listener closes (0 disables)")
	node := flag.String("node", "", "this node's address as it appears in -peers (enables cluster mode)")
	peers := flag.String("peers", "", "comma-separated static peer list of the whole fleet, this node included")
	replicas := flag.Int("replicas", 1, "replication factor R: each artifact lives on R distinct ring successors")
	join := flag.String("join", "", "existing fleet node to join through at startup (dynamic membership; implies -peers of just that seed and -node)")
	leave := flag.Bool("leave", false, "announce departure to the fleet on drain (epoch bump) instead of relying on anti-entropy")
	antiEntropy := flag.Duration("anti-entropy", 0, "anti-entropy sweep interval (0 = default 5s in cluster mode with a store; negative disables)")
	costBudget := flag.Int64("cost-budget", 0, "concurrent admission budget in cost units (0 = default 1024)")
	var quotas quotaFlags
	flag.Var(&quotas, "quota", "token-bucket quota [KEY=]RATE:BURST; repeatable; no KEY= sets the default bucket")
	accessLog := flag.String("access-log", "", "append one JSON access-log line per request to this file (\"-\" = stdout); empty disables")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); empty disables")
	flag.Parse()
	log.SetPrefix("avtmord: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "avtmord: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	if *join != "" {
		if *node == "" {
			fmt.Fprintln(os.Stderr, "avtmord: -join requires -node (the ring identity this node joins as)")
			flag.Usage()
			os.Exit(2)
		}
		if len(peerList) == 0 {
			// The seed is the whole initial view; the join handshake
			// replaces it with the fleet's real membership (and epoch)
			// right after the listener is up.
			peerList = []string{*join, *node}
		}
	}
	if (len(peerList) > 0) != (*node != "") {
		fmt.Fprintln(os.Stderr, "avtmord: -node and -peers must be set together")
		flag.Usage()
		os.Exit(2)
	}
	addrSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "addr" {
			addrSet = true
		}
	})
	listenAddr := *addr
	if *node != "" && !addrSet {
		listenAddr = *node
	}
	if *node != "" && addrSet && listenAddr != *node {
		// Legitimate when binding wide (-addr 0.0.0.0:8081 -node
		// hostA:8081), a fleet-degrading typo otherwise: peers forward
		// to the ring identity, and if that address does not reach this
		// listener every forward burns a dial timeout and falls back to
		// redundant local compute.
		log.Printf("warning: listening on %s but joining the ring as %s — peers forward to the latter; make sure it routes here", listenAddr, *node)
	}

	qd := *queue
	if qd == 0 {
		qd = -1 // the flag's 0 means "no queue"; Config's 0 means "default"
	}
	var logSink io.Writer
	switch *accessLog {
	case "":
	case "-":
		logSink = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening access log: %v", err)
		}
		defer f.Close()
		logSink = f
	}
	s, err := serve.New(serve.Config{
		StoreDir:            *dir,
		Workers:             *workers,
		QueueDepth:          qd,
		CacheLimit:          *cacheLimit,
		Node:                *node,
		Peers:               peerList,
		Replicas:            *replicas,
		AntiEntropyInterval: *antiEntropy,
		CostBudget:          *costBudget,
		Quotas:              quotas.specs,
		AccessLog:           logSink,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		log.Fatal(err)
	}
	if *pprofAddr != "" {
		// An explicit mux, never http.DefaultServeMux, and never the
		// serving listener: the debug surface stays exactly as reachable
		// as the operator made -pprof, regardless of what any library
		// registers globally or what exposes the service port.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("pprof listening on %s", pln.Addr())
		go func() {
			if err := (&http.Server{Handler: pmux}).Serve(pln); err != nil {
				log.Printf("pprof listener closed: %v", err)
			}
		}()
	}
	if len(peerList) > 0 {
		log.Printf("cluster node %s in fleet %v", *node, peerList)
	}
	log.Printf("listening on %s (store %q, workers %d, queue %d, cache limit %d)",
		ln.Addr(), *dir, *workers, *queue, *cacheLimit)

	srv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if *join != "" {
		// Handshake after the listener is up so the fleet's membership
		// broadcast (and the first forwarded request) can reach us.
		jctx, jcancel := context.WithTimeout(ctx, 10*time.Second)
		if err := s.Join(jctx, *join); err != nil {
			log.Printf("warning: joining via %s failed (%v); serving with the seed view, anti-entropy will converge", *join, err)
		} else {
			log.Printf("joined fleet via %s", *join)
		}
		jcancel()
	}

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Drain sequence: advertise the departure first — /healthz answers
	// 503 "draining" while the listener is still accepting — so load
	// balancers and ring peers reroute ahead of connection errors,
	// then stop accepting and let in-flight work finish.
	s.Drain()
	log.Printf("draining (notice %s, grace %s)", *drainNotice, *grace)
	if *leave {
		// Announce the departure while the listener is still open: the
		// epoch bump re-homes this node's key ranges immediately instead
		// of waiting for peers' sweeps to time out against a dead socket.
		// Artifacts stay on disk; surviving owners re-replicate via
		// anti-entropy.
		lctx, lcancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Leave(lctx); err != nil {
			log.Printf("warning: leave announcement failed: %v", err)
		} else {
			log.Printf("left fleet membership")
		}
		lcancel()
	}
	if *drainNotice > 0 {
		time.Sleep(*drainNotice)
	}
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// Stragglers past the window: closing their connections cancels
		// their request contexts, which unwinds in-flight reductions.
		log.Printf("drain window expired (%v), closing connections", err)
		srv.Close()
	}
	s.Close()
	log.Printf("store flushed, goodbye")
}
