// Command avtmord is the avtmor reduction daemon: an HTTP service that
// accepts netlists (or serialized Systems), reduces them with the
// associated-transform engine, persists the resulting ROM artifacts in
// a content-addressed on-disk store, and simulates stored ROMs on
// demand. Identical concurrent requests coalesce onto one reduction;
// artifacts survive restarts; overload sheds with 429 at a bounded
// worker pool instead of piling up goroutines.
//
// Usage:
//
//	avtmord [-addr HOST:PORT] [-store DIR] [-workers N] [-queue N]
//	        [-cache-limit N] [-grace D]
//
// Quickstart against a local daemon:
//
//	avtmord -addr 127.0.0.1:8472 -store ./roms &
//	curl -s --data-binary @circuit.sp 'http://127.0.0.1:8472/v1/reduce?k1=4&k2=2' -o rom.bin
//	key=$(curl -si --data-binary @circuit.sp 'http://127.0.0.1:8472/v1/reduce?k1=4&k2=2' \
//	      -o /dev/null -w '%header{X-Avtmor-Rom-Key}')
//	curl -s -d '{"tEnd":1e-9,"steps":2000,"input":{"kind":"const","values":[1]}}' \
//	      "http://127.0.0.1:8472/v1/roms/$key/simulate"
//	curl -s http://127.0.0.1:8472/metrics
//
// See the serve package and DESIGN.md §5 for the endpoint and
// backpressure contracts. SIGINT/SIGTERM drain gracefully within the
// -grace window.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"avtmor/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8472", "listen address (port 0 picks an ephemeral port)")
	dir := flag.String("store", "avtmord-store", "ROM store directory; \"\" keeps artifacts in memory only")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "reduction/simulation worker pool size")
	queue := flag.Int("queue", 64, "pending-request queue depth; 0 = no queue, a request runs immediately or is answered 429")
	cacheLimit := flag.Int("cache-limit", 256, "max ROMs held in memory, LRU-evicted to the store (0 = unbounded)")
	grace := flag.Duration("grace", 10*time.Second, "graceful-shutdown drain window")
	flag.Parse()
	log.SetPrefix("avtmord: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "avtmord: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	qd := *queue
	if qd == 0 {
		qd = -1 // the flag's 0 means "no queue"; Config's 0 means "default"
	}
	s, err := serve.New(serve.Config{
		StoreDir:   *dir,
		Workers:    *workers,
		QueueDepth: qd,
		CacheLimit: *cacheLimit,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (store %q, workers %d, queue %d, cache limit %d)",
		ln.Addr(), *dir, *workers, *queue, *cacheLimit)

	srv := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (drain window %s)", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// Stragglers past the window: closing their connections cancels
		// their request contexts, which unwinds in-flight reductions.
		log.Printf("drain window expired (%v), closing connections", err)
		srv.Close()
	}
	s.Close()
	log.Printf("store flushed, goodbye")
}
