package main

import (
	"fmt"
	"strings"
	"testing"

	"avtmor/internal/lint"
)

const seededPattern = "../../internal/lint/testdata/seeded/..."

var allNames = []string{"ctxflow", "wspool", "detrom", "cappedread", "lockedfield"}

// TestSeededViolations is the local twin of the CI smoke step: the
// seeded testdata tree carries exactly one violation of every analyzer
// class, so the wall must exit 1 and report all five tags.
func TestSeededViolations(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-novet", seededPattern}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d on seeded violations, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, name := range allNames {
		if !strings.Contains(stdout.String(), "["+name+"] ") {
			t.Errorf("no [%s] finding on the seeded tree:\n%s", name, stdout.String())
		}
	}
}

// TestSeededViolationsDisable proves each analyzer is load-bearing:
// disabling it (and only it) makes its seeded finding disappear while
// the other four still fire.
func TestSeededViolationsDisable(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run([]string{"-novet", "-disable", name, seededPattern}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit %d, want 1 (the other analyzers still have findings)\nstderr:\n%s", code, stderr.String())
			}
			if strings.Contains(stdout.String(), "["+name+"] ") {
				t.Errorf("-disable %s did not silence it:\n%s", name, stdout.String())
			}
			for _, other := range allNames {
				if other != name && !strings.Contains(stdout.String(), "["+other+"] ") {
					t.Errorf("-disable %s also silenced [%s]:\n%s", name, other, stdout.String())
				}
			}
		})
	}
}

func TestUnknownDisableRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-disable", "nosuch", seededPattern}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for unknown -disable name, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuch") {
		t.Errorf("error does not name the unknown analyzer:\n%s", stderr.String())
	}
}

// TestAnalyzerScopes pins where the package-scoped analyzers run: the
// determinism contract covers the module root and the numerics spine,
// the capped-read contract covers the root codecs and the wire tier,
// and the other three run everywhere.
func TestAnalyzerScopes(t *testing.T) {
	const mod = "avtmor"
	cases := []struct {
		importPath string
		want       []string
	}{
		{mod, allNames},
		{mod + "/internal/core", []string{"ctxflow", "wspool", "detrom", "lockedfield"}},
		{mod + "/internal/assoc", []string{"ctxflow", "wspool", "detrom", "lockedfield"}},
		{mod + "/internal/qldae", []string{"ctxflow", "wspool", "detrom", "lockedfield"}},
		{mod + "/internal/wire", []string{"ctxflow", "wspool", "cappedread", "lockedfield"}},
		{mod + "/internal/promtext", []string{"ctxflow", "wspool", "cappedread", "lockedfield"}},
		{mod + "/internal/ode", []string{"ctxflow", "wspool", "lockedfield"}},
		{mod + "/serve", []string{"ctxflow", "wspool", "lockedfield"}},
	}
	for _, c := range cases {
		got := analyzersFor(mod, c.importPath, nil)
		var names []string
		for _, a := range got {
			names = append(names, a.Name)
		}
		if fmt.Sprint(names) != fmt.Sprint(c.want) {
			t.Errorf("analyzersFor(%s) = %v, want %v", c.importPath, names, c.want)
		}
	}
	if got := analyzersFor(mod, mod, map[string]bool{"detrom": true}); len(got) != len(lint.All())-1 {
		t.Errorf("disable map not honored at the module root: got %d analyzers", len(got))
	}
}

// TestTreeClean asserts the wall's steady state: the real tree has no
// findings, so CI can block on exit status. Skipped in -short mode —
// it typechecks the whole module.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-novet", "../../..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("avtmorlint is not clean on the tree (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}
