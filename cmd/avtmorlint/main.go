// Command avtmorlint is the project's invariant wall: it runs the five
// analyzers of internal/lint (ctxflow, wspool, detrom, cappedread,
// lockedfield) over the named packages, alongside the stock `go vet`
// passes, and exits nonzero on any finding. CI blocks on it; run it
// locally with
//
//	go run ./cmd/avtmorlint ./...
//
// Determinism-scoped analyzers only run where their contract applies:
// detrom on the packages that feed ROM bytes and cache keys (the module
// root, core, assoc, qldae), cappedread on the wire tier (the module
// root's romio/systemio and internal/wire). The other three run
// everywhere. Packages under testdata are invisible to ./... wildcards
// but can be named explicitly, which is how the CI smoke proves the
// wall fails on seeded violations:
//
//	go run ./cmd/avtmorlint -novet ./internal/lint/testdata/seeded/...
//
// Flags:
//
//	-disable name[,name...]   skip the named analyzers
//	-novet                    skip the stock go vet passes
//
// Exit status: 0 clean, 1 findings (or vet failure), 2 usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path"
	"strings"

	"avtmor/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("avtmorlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	novet := fs.Bool("novet", false, "skip the stock go vet passes")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: avtmorlint [-disable name,...] [-novet] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	disabled := map[string]bool{}
	if *disable != "" {
		known := map[string]bool{}
		for _, a := range lint.All() {
			known[a.Name] = true
		}
		for _, name := range strings.Split(*disable, ",") {
			if !known[name] {
				fmt.Fprintf(stderr, "avtmorlint: unknown analyzer %q in -disable\n", name)
				return 2
			}
			disabled[name] = true
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "avtmorlint: %v\n", err)
		return 2
	}
	moduleRoot, modulePath, err := lint.FindModule(wd)
	if err != nil {
		fmt.Fprintf(stderr, "avtmorlint: %v\n", err)
		return 2
	}

	failed := false
	if !*novet {
		vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
		vet.Dir = wd
		vet.Stdout = stdout
		vet.Stderr = stderr
		if err := vet.Run(); err != nil {
			fmt.Fprintf(stderr, "avtmorlint: go vet failed\n")
			failed = true
		}
	}

	loader := lint.NewLoader(moduleRoot, modulePath, "")
	pkgs, err := loader.LoadPatterns(wd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "avtmorlint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		analyzers := analyzersFor(modulePath, pkg.ImportPath, disabled)
		if len(analyzers) == 0 {
			continue
		}
		fs, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "avtmorlint: %v\n", err)
			return 2
		}
		for _, f := range fs {
			fmt.Fprintln(stdout, f)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "avtmorlint: %d finding(s)\n", findings)
	}
	if findings > 0 || failed {
		return 1
	}
	return 0
}

// scopes restricts analyzers whose contract is package-specific. base
// is the last import-path element; root marks the module root package
// (romio, systemio, and the cache-key canonicalization live there).
var scopes = map[string]func(base string, root bool) bool{
	"detrom": func(base string, root bool) bool {
		// replica is in scope: anti-entropy convergence must depend
		// only on content addresses and membership epochs, never on
		// wall-clock or iteration order (the sweeper's pacing ticker
		// carries the one reasoned ignore).
		return root || base == "core" || base == "assoc" || base == "qldae" || base == "replica"
	},
	"cappedread": func(base string, root bool) bool {
		// replica decodes peer-supplied key lists and membership JSON,
		// promtext parses scraped expositions (avtmorctl feeds it fleet
		// responses) — wire-tier trust level, wire-tier read caps.
		return root || base == "wire" || base == "replica" || base == "promtext"
	},
}

// analyzersFor selects the analyzers that apply to importPath, honoring
// the -disable set.
func analyzersFor(modulePath, importPath string, disabled map[string]bool) []*lint.Analyzer {
	var out []*lint.Analyzer
	base := path.Base(importPath)
	root := importPath == modulePath
	for _, a := range lint.All() {
		if disabled[a.Name] {
			continue
		}
		if in, scoped := scopes[a.Name]; scoped && !in(base, root) {
			continue
		}
		out = append(out, a)
	}
	return out
}
