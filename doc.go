// Package avtmor reduces quadratic-linear differential-algebraic
// systems (QLDAEs) by the associated-transform nonlinear model order
// reduction of "Fast Nonlinear Model Order Reduction via Associated
// Transforms of High-Order Volterra Transfer Functions" (Y. Zhang,
// H. Liu, Q. Wang, N. Fong, N. Wong — DAC 2012, pp. 289–294), as a
// self-contained, stdlib-only Go library.
//
// This package is the public facade; the engine lives under internal/
// (see DESIGN.md for the boundary). The typical flow is
//
//	sys, _ := avtmor.ParseNetlist(f)            // or SystemBuilder / workload constructors
//	rom, _ := avtmor.Reduce(ctx, sys,
//	        avtmor.WithOrders(6, 3, 2),
//	        avtmor.WithExpansion(0.5),
//	        avtmor.WithParallel())
//	res, _ := rom.Simulate(ctx, u, tEnd, avtmor.WithTrapezoidal(4000))
//
// Reductions honor context cancellation down to the Krylov-step and
// sparse-LU-column granularity. A ROM is a durable artifact: it
// serializes to a versioned binary format (WriteTo/ReadFrom,
// bit-exact round trip) and reloaded ROMs simulate identically;
// Systems serialize too (System.WriteTo/ReadSystem) for shipping to a
// remote reducer. The Reducer type adds a concurrency-safe ROM cache
// with singleflight semantics — N concurrent identical requests
// trigger one reduction — optionally LRU-bounded (WithCacheLimit) and
// backed by a write-through second-tier ROMStore for serving ROMs
// under load.
//
// cmd/avtmor regenerates every table and figure of the paper's
// evaluation; bench_test.go wraps the same experiments as benchmarks.
// The serve subpackage and cmd/avtmord expose the whole engine as an
// HTTP service with a content-addressed on-disk artifact store,
// Prometheus metrics, cost-aware admission, and per-client quotas
// (docs/OPERATIONS.md is the operator runbook, docs/API.md the wire
// surface); avtmorclient is the matching ring-aware Go client.
package avtmor
