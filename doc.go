// Package avtmor reproduces "Fast Nonlinear Model Order Reduction via
// Associated Transforms of High-Order Volterra Transfer Functions"
// (Y. Zhang, H. Liu, Q. Wang, N. Fong, N. Wong — DAC 2012, pp. 289–294)
// as a self-contained, stdlib-only Go library.
//
// The implementation lives under internal/: see internal/core for the
// reduction entry points (Reduce, ReduceNORM), internal/assoc for the
// associated-transform realizations, and DESIGN.md for the full system
// inventory. cmd/avtmor regenerates every table and figure of the paper's
// evaluation; bench_test.go wraps the same experiments as benchmarks.
package avtmor
