package avtmor_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"avtmor"
)

// TestReduceCancelPrompt is the cancellation acceptance check: on a
// ≥1000-state RLCLine reduction, Reduce must return promptly — well
// under the cost of finishing the Krylov chains — once the caller
// gives up.
func TestReduceCancelPrompt(t *testing.T) {
	w := avtmor.RLCLine(2000) // n = 3999, CSR-only
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	canceledAt := make(chan time.Time, 1)
	go func() {
		_, err := avtmor.Reduce(ctx, w.System,
			avtmor.WithOrders(400, 0, 0), // a long H1 chain: hundreds of back-solves
			avtmor.WithSolver(avtmor.SolverSparse),
			avtmor.WithProgress(func(avtmor.Progress) {}))
		at := <-canceledAt
		done <- outcome{err: err, elapsed: time.Since(at)}
	}()
	time.Sleep(20 * time.Millisecond) // let the chain get going
	canceledAt <- time.Now()
	cancel()
	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", out.err)
		}
		// A single Krylov step on this system is a sparse back-solve
		// (~µs–ms); one second is orders of magnitude of slack while
		// staying flake-proof on loaded CI hosts.
		if out.elapsed > time.Second {
			t.Fatalf("Reduce took %v to honor cancellation", out.elapsed)
		}
		t.Logf("canceled Reduce returned in %v", out.elapsed)
	case <-time.After(30 * time.Second):
		t.Fatal("canceled Reduce never returned")
	}
}

// TestReducePreCanceled: a context that is already dead never starts
// the factorization machinery.
func TestReducePreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := avtmor.RLCLine(200)
	start := time.Now()
	_, err := avtmor.Reduce(ctx, w.System, avtmor.WithOrders(8, 0, 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("pre-canceled Reduce took %v", d)
	}
}

// TestTrapezoidalCancel: the implicit integrator aborts mid-run.
func TestTrapezoidalCancel(t *testing.T) {
	w := avtmor.RLCLine(500) // n = 999
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := w.System.Simulate(ctx, w.U, w.TEnd, avtmor.WithTrapezoidal(100000),
		avtmor.WithSimSolver(avtmor.SolverSparse))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled transient took %v", d)
	}
}

// TestRK4Cancel covers the explicit integrator's per-step poll.
func TestRK4Cancel(t *testing.T) {
	w := avtmor.NTLCurrent(60)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := w.System.Simulate(ctx, w.U, w.TEnd, avtmor.WithRK4(5_000_000))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
}

// TestReduceNORMCancel: the multivariate generator loops poll too.
func TestReduceNORMCancel(t *testing.T) {
	w := avtmor.NTLCurrent(70)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := avtmor.ReduceNORM(ctx, w.System, avtmor.WithOrders(6, 3, 2), avtmor.WithExpansion(w.S0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}
