// Package quota implements per-key token-bucket rate limiting for the
// avtmor serving tier. Each API key maps to a bucket refilled at a
// steady rate up to a burst ceiling; a request is admitted when its
// charge fits in the bucket, and otherwise rejected along with the
// wait that would make it fit — the serving tier turns that wait into
// a Retry-After header.
//
// The key "" names the default bucket: requests with no API key, and
// requests whose key has no configured bucket, all share it. With no
// default configured, unknown keys are unlimited (quota enforcement is
// opt-in per deployment).
package quota

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Spec configures one bucket: Rate tokens per second refill, Burst
// tokens capacity.
type Spec struct {
	Rate  float64
	Burst float64
}

// ParseSpec parses "rate:burst" (e.g. "5:20"). Rate must be positive;
// burst must be >= 1.
func ParseSpec(s string) (Spec, error) {
	rateText, burstText, ok := strings.Cut(s, ":")
	if !ok {
		return Spec{}, fmt.Errorf("quota spec %q: want rate:burst", s)
	}
	rate, err := strconv.ParseFloat(rateText, 64)
	if err != nil || rate <= 0 {
		return Spec{}, fmt.Errorf("quota spec %q: bad rate", s)
	}
	burst, err := strconv.ParseFloat(burstText, 64)
	if err != nil || burst < 1 {
		return Spec{}, fmt.Errorf("quota spec %q: bad burst", s)
	}
	return Spec{Rate: rate, Burst: burst}, nil
}

// bucket is one token bucket. tokens is the balance as of last.
type bucket struct {
	spec   Spec
	tokens float64
	last   time.Time
}

// Limiter enforces per-key buckets. The zero value is unusable; use
// New.
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
	now     func() time.Time   // injectable for tests
}

// New builds a limiter from key→spec config. The "" key, if present,
// is the default bucket shared by unkeyed requests and keys without
// their own entry.
func New(specs map[string]Spec) *Limiter {
	buckets := map[string]*bucket{}
	for key, spec := range specs {
		buckets[key] = &bucket{spec: spec, tokens: spec.Burst}
	}
	return &Limiter{buckets: buckets, now: time.Now}
}

// SetClock replaces the limiter's time source (tests only).
func (l *Limiter) SetClock(now func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.now = now
}

// Configured reports whether any bucket exists — a nil or empty
// limiter enforces nothing.
func (l *Limiter) Configured() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets) > 0
}

// Allow charges n tokens against key's bucket. Charges larger than the
// bucket's burst are clamped to the burst, so an oversized request is
// rate-limited rather than permanently unadmittable. When the charge
// doesn't fit, Allow returns false and the wait until it would.
//
// A key with no bucket of its own is charged against the default ""
// bucket; with no default either, the request is admitted untouched.
func (l *Limiter) Allow(key string, n float64) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = l.buckets[""]
	}
	if b == nil {
		return true, 0
	}
	if n > b.spec.Burst {
		n = b.spec.Burst
	}
	now := l.now()
	if b.last.IsZero() {
		b.last = now
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.spec.Rate
		if b.tokens > b.spec.Burst {
			b.tokens = b.spec.Burst
		}
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	wait := time.Duration(deficit / b.spec.Rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}
