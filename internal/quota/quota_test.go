package quota

import (
	"testing"
	"time"
)

// fakeClock is a settable time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(specs map[string]Spec) (*Limiter, *fakeClock) {
	l := New(specs)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	l.SetClock(clk.now)
	return l, clk
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("5:20")
	if err != nil || spec.Rate != 5 || spec.Burst != 20 {
		t.Fatalf("ParseSpec(5:20) = %+v, %v", spec, err)
	}
	for _, bad := range []string{"", "5", "0:10", "-1:10", "5:0", "x:y"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestBurstThenRefill(t *testing.T) {
	l, clk := newTestLimiter(map[string]Spec{"alice": {Rate: 1, Burst: 3}})
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("alice", 1); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, retry := l.Allow("alice", 1)
	if ok {
		t.Fatal("request over burst admitted")
	}
	if retry < time.Second || retry > 2*time.Second {
		t.Fatalf("retry = %v; want ~1s", retry)
	}
	clk.advance(time.Second)
	if ok, _ := l.Allow("alice", 1); !ok {
		t.Fatal("refilled token not granted")
	}
}

func TestDefaultBucketShared(t *testing.T) {
	l, _ := newTestLimiter(map[string]Spec{"": {Rate: 1, Burst: 2}})
	if ok, _ := l.Allow("", 1); !ok {
		t.Fatal("unkeyed request rejected within burst")
	}
	// An unconfigured key drains the same default bucket.
	if ok, _ := l.Allow("stranger", 1); !ok {
		t.Fatal("unknown key rejected within burst")
	}
	if ok, _ := l.Allow("", 1); ok {
		t.Fatal("default bucket not shared: third token granted")
	}
}

func TestNoDefaultUnlimited(t *testing.T) {
	l, _ := newTestLimiter(map[string]Spec{"vip": {Rate: 1, Burst: 1}})
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("stranger", 1); !ok {
			t.Fatal("unconfigured key limited despite no default bucket")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("anyone", 1); !ok {
		t.Fatal("nil limiter rejected")
	}
	if nilL.Configured() {
		t.Fatal("nil limiter claims configuration")
	}
}

func TestOversizedChargeClamped(t *testing.T) {
	l, clk := newTestLimiter(map[string]Spec{"": {Rate: 10, Burst: 5}})
	// A charge above burst is clamped: admitted when the bucket is full,
	// not rejected forever.
	if ok, _ := l.Allow("", 50); !ok {
		t.Fatal("oversized charge rejected on full bucket")
	}
	if ok, _ := l.Allow("", 50); ok {
		t.Fatal("second oversized charge admitted on empty bucket")
	}
	clk.advance(time.Second) // 10 tokens back, capped at 5
	if ok, _ := l.Allow("", 50); !ok {
		t.Fatal("oversized charge rejected after refill")
	}
}

func TestFractionalCharge(t *testing.T) {
	l, _ := newTestLimiter(map[string]Spec{"": {Rate: 1, Burst: 2}})
	// Charges below one token round up: an "almost free" request still
	// costs a token.
	if ok, _ := l.Allow("", 0.1); !ok {
		t.Fatal("fractional charge rejected")
	}
	if ok, _ := l.Allow("", 0.1); !ok {
		t.Fatal("second fractional charge rejected")
	}
	if ok, _ := l.Allow("", 0.1); ok {
		t.Fatal("bucket should be empty after two min-1 charges")
	}
}
