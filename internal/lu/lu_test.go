package lu

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"avtmor/internal/mat"
)

func residual(a *mat.Dense, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	mat.Axpy(-1, b, r)
	return mat.NormInf(r)
}

func TestSolveKnown(t *testing.T) {
	a := mat.FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=3, x+3y=5 → x=4/5, y=7/5.
	if math.Abs(x[0]-0.8) > 1e-14 || math.Abs(x[1]-1.4) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveRandomResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := mat.RandStable(rng, n, 0.1) // well-conditioned by construction
		b := mat.RandVec(rng, n)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return residual(a, x, b) < 1e-9*(1+mat.NormInf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorReusable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandStable(rng, 12, 0.1)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b := mat.RandVec(rng, 12)
		x := make([]float64, 12)
		f.Solve(x, b)
		if residual(a, x, b) > 1e-10 {
			t.Fatalf("trial %d residual too large", trial)
		}
	}
}

func TestSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.RandStable(rng, 8, 0.1)
	f, _ := Factor(a)
	b := mat.RandVec(rng, 8)
	bCopy := mat.CopyVec(b)
	f.Solve(b, b) // in-place
	if residual(a, b, bCopy) > 1e-10 {
		t.Fatal("in-place solve broken")
	}
}

func TestSingular(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestNonSquare(t *testing.T) {
	if _, err := Factor(mat.NewDense(2, 3)); err == nil {
		t.Fatal("want error for non-square input")
	}
}

func TestDet(t *testing.T) {
	a := mat.FromRows([][]float64{{0, 1}, {1, 0}}) // det = -1, forces a pivot swap
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()+1) > 1e-15 {
		t.Fatalf("det = %v", f.Det())
	}
	b := mat.Diag([]float64{2, 3, 4})
	fb, _ := Factor(b)
	if math.Abs(fb.Det()-24) > 1e-12 {
		t.Fatalf("det = %v", fb.Det())
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandStable(rng, 10, 0.1)
	f, _ := Factor(a)
	if !a.Mul(f.Inverse()).Equalish(mat.Eye(10), 1e-9) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestSolveMat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mat.RandStable(rng, 7, 0.1)
	b := mat.RandDense(rng, 7, 3)
	f, _ := Factor(a)
	x := f.SolveMat(b)
	if !a.Mul(x).Equalish(b, 1e-9) {
		t.Fatal("A·X != B")
	}
}

func TestComplexSolveKnown(t *testing.T) {
	// (1+i) x = 2 → x = 1 - i.
	a := mat.NewCDense(1, 1)
	a.Set(0, 0, 1+1i)
	x, err := SolveC(a, []complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-(1-1i)) > 1e-14 {
		t.Fatalf("x = %v", x[0])
	}
}

func TestComplexSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ar := mat.RandStable(rng, n, 0.1)
		a := ar.Complex()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+complex(0, 0.3*(2*rng.Float64()-1)))
			}
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
		x, err := SolveC(a, b)
		if err != nil {
			return false
		}
		r := make([]complex128, n)
		a.MulVec(r, x)
		mat.CAxpy(-1, b, r)
		return mat.CNorm2(r) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftedReal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.RandStable(rng, 9, 0.1)
	sigma := 0.7 + 1.3i
	f, err := ShiftedReal(a, sigma)
	if err != nil {
		t.Fatal(err)
	}
	b := mat.ToComplex(mat.RandVec(rng, 9))
	x := make([]complex128, 9)
	f.Solve(x, b)
	// Residual against (A + σI) x = b.
	r := make([]complex128, 9)
	a.Complex().MulVec(r, x)
	mat.CAxpy(sigma, x, r)
	mat.CAxpy(-1, b, r)
	if mat.CNorm2(r) > 1e-10 {
		t.Fatalf("shifted residual %v", mat.CNorm2(r))
	}
}

func TestCLUSingular(t *testing.T) {
	a := mat.NewCDense(2, 2)
	a.Set(0, 0, 1i)
	a.Set(1, 0, 2i) // second column all zero → singular
	if _, err := FactorC(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func BenchmarkFactor100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandStable(rng, 100, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandStable(rng, 100, 0.1)
	f, _ := Factor(a)
	rhs := mat.RandVec(rng, 100)
	x := make([]float64, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(x, rhs)
	}
}
