package lu

import (
	"errors"
	"math/cmplx"

	"avtmor/internal/mat"
)

// CLU holds a complex LU factorization with partial pivoting. The shifted
// solves (G1 − σI)⁻¹ with complex σ — needed for quasi-triangular blocks
// with complex eigenvalue pairs and for transfer-function evaluation on the
// jω axis — all route through this type.
type CLU struct {
	lu  *mat.CDense
	piv []int
}

// FactorC computes the LU factorization of a complex matrix.
func FactorC(a *mat.CDense) (*CLU, error) {
	if a.R != a.C {
		return nil, errors.New("lu: matrix must be square")
	}
	n := a.R
	f := &CLU{lu: a.Clone(), piv: make([]int, n)}
	for i := range f.piv {
		f.piv[i] = i
	}
	w := f.lu
	for k := 0; k < n; k++ {
		p, best := k, cmplx.Abs(w.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(w.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rp := w.A[p*n : (p+1)*n]
			rk := w.A[k*n : (k+1)*n]
			for j := range rp {
				rp[j], rk[j] = rk[j], rp[j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
		}
		inv := 1 / w.At(k, k)
		for i := k + 1; i < n; i++ {
			l := w.At(i, k) * inv
			w.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri := w.A[i*n : (i+1)*n]
			rk := w.A[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return f, nil
}

// ShiftedReal factors (a + σI) for a real matrix a and complex shift σ.
func ShiftedReal(a *mat.Dense, sigma complex128) (*CLU, error) {
	c := a.Complex()
	for i := 0; i < a.R; i++ {
		c.Set(i, i, c.At(i, i)+sigma)
	}
	return FactorC(c)
}

// N returns the matrix dimension.
func (f *CLU) N() int { return f.lu.R }

// Solve computes x with A x = b (dst may alias b).
func (f *CLU) Solve(dst, b []complex128) {
	n := f.N()
	if len(b) != n || len(dst) != n {
		panic("lu: CLU Solve length mismatch")
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	w := f.lu
	for i := 1; i < n; i++ {
		row := w.A[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := w.A[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	copy(dst, x)
}

// SolveC is a convenience one-shot complex solve.
func SolveC(a *mat.CDense, b []complex128) ([]complex128, error) {
	f, err := FactorC(a)
	if err != nil {
		return nil, err
	}
	x := make([]complex128, len(b))
	f.Solve(x, b)
	return x, nil
}
