// Package lu implements LU factorization with partial pivoting for dense
// real and complex matrices, with solve, inverse, and determinant helpers.
//
// Shift-invert Krylov iteration (paper §2.3: "expanding at s = 0 ... at the
// expense of computing the matrix factorization (e.g., LU) of G1 for once")
// needs exactly this: factor once, back-solve many times.
package lu

import (
	"context"
	"errors"
	"math"

	"avtmor/internal/mat"
)

// ErrSingular is returned when a pivot vanishes (to working precision the
// matrix is not invertible).
var ErrSingular = errors.New("lu: matrix is singular")

// LU holds a factorization P·A = L·U of a real square matrix.
type LU struct {
	lu   *mat.Dense
	piv  []int // row i of lu came from row piv[i] of A
	sign float64
}

// Factor computes the LU factorization of a. The input is not modified.
func Factor(a *mat.Dense) (*LU, error) {
	if a.R != a.C {
		return nil, errors.New("lu: matrix must be square")
	}
	n := a.R
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	w := f.lu
	for k := 0; k < n; k++ {
		p, best := k, math.Abs(w.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(w.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != k {
			swapRows(w, p, k)
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		inv := 1 / w.At(k, k)
		for i := k + 1; i < n; i++ {
			l := w.At(i, k) * inv
			w.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rk := w.Row(i), w.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return f, nil
}

// N returns the matrix dimension.
func (f *LU) N() int { return f.lu.R }

// Solve computes x with A x = b, writing into dst (dst may alias b).
// The permuted working copy comes from the shared workspace pool, so
// steady-state chain iterations solve without allocating.
func (f *LU) Solve(dst, b []float64) {
	n := f.N()
	if len(b) != n || len(dst) != n {
		panic("lu: Solve length mismatch")
	}
	x := mat.GetVec(n)
	defer mat.PutVec(x)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	w := f.lu
	for i := 1; i < n; i++ {
		row := w.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := w.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	copy(dst, x)
}

// SolveBatch solves A·x = cols[c] for every column of the batch, in
// place: each cols[c] is read as a right-hand side and overwritten with
// its solution. The substitution sweeps the triangular factors once per
// batch with a column-major inner loop over the right-hand sides, so
// every factor row is fetched once for the whole batch instead of once
// per column; per-column arithmetic is identical (same operations, same
// order) to a loop of Solve calls, so results are bit-exact either way.
// Columns must not alias one another.
func (f *LU) SolveBatch(cols [][]float64) {
	_ = f.solveBatch(nil, cols)
}

// SolveBatchCtx is SolveBatch with cooperative cancellation: ctx is
// polled between row sweeps (every batchCtxStride rows). On abort the
// columns are left untouched — solutions only scatter back once the
// whole batch completes.
func (f *LU) SolveBatchCtx(ctx context.Context, cols [][]float64) error {
	return f.solveBatch(ctx, cols)
}

// batchCtxStride is the row cadence of ctx polls inside a batched
// substitution — coarse enough to vanish from the profile, fine enough
// that a canceled large solve aborts in a few thousand row updates.
const batchCtxStride = 512

func (f *LU) solveBatch(ctx context.Context, cols [][]float64) error {
	n := f.N()
	k := len(cols)
	if k == 0 {
		return nil
	}
	for _, c := range cols {
		if len(c) != n {
			panic("lu: SolveBatch length mismatch")
		}
	}
	// Contiguous k×n scratch: column c lives at [c*n, (c+1)*n).
	x := mat.GetVec(k * n)
	defer mat.PutVec(x)
	for c, col := range cols {
		xc := x[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			xc[i] = col[f.piv[i]]
		}
	}
	w := f.lu
	for i := 1; i < n; i++ {
		if ctx != nil && i%batchCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row := w.Row(i)
		for c := 0; c < k; c++ {
			xc := x[c*n : c*n+n]
			s := xc[i]
			for j := 0; j < i; j++ {
				s -= row[j] * xc[j]
			}
			xc[i] = s
		}
	}
	for i := n - 1; i >= 0; i-- {
		if ctx != nil && i%batchCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row := w.Row(i)
		for c := 0; c < k; c++ {
			xc := x[c*n : c*n+n]
			s := xc[i]
			for j := i + 1; j < n; j++ {
				s -= row[j] * xc[j]
			}
			xc[i] = s / row[i]
		}
	}
	for c, col := range cols {
		copy(col, x[c*n:(c+1)*n])
	}
	return nil
}

// SolveMat solves A X = B through one batched substitution over all
// columns (one factor traversal for the whole right-hand-side block).
func (f *LU) SolveMat(b *mat.Dense) *mat.Dense {
	if b.R != f.N() {
		panic("lu: SolveMat shape mismatch")
	}
	x := mat.NewDense(b.R, b.C)
	cols := make([][]float64, b.C)
	for j := 0; j < b.C; j++ {
		cols[j] = b.Col(j)
	}
	f.SolveBatch(cols)
	for j, col := range cols {
		x.SetCol(j, col)
	}
	return x
}

// Inverse returns A⁻¹.
func (f *LU) Inverse() *mat.Dense {
	return f.SolveMat(mat.Eye(f.N()))
}

// MinAbsPivot returns the smallest |U_ii| of the factorization — a cheap
// near-singularity witness: for a structurally rank-deficient matrix it
// sits at rounding level relative to the matrix scale.
func (f *LU) MinAbsPivot() float64 {
	n := f.N()
	if n == 0 {
		return 0
	}
	m := math.Abs(f.lu.At(0, 0))
	for i := 1; i < n; i++ {
		if v := math.Abs(f.lu.At(i, i)); v < m {
			m = v
		}
	}
	return m
}

// Det returns det(A).
func (f *LU) Det() float64 {
	d := f.sign
	n := f.N()
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve is a convenience one-shot solve of A x = b.
func Solve(a *mat.Dense, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	f.Solve(x, b)
	return x, nil
}

func swapRows(m *mat.Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
