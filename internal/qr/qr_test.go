package qr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"avtmor/internal/mat"
)

func TestFactorReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(20)
		n := 1 + rng.Intn(m)
		a := mat.RandDense(rng, m, n)
		qr := Factor(a)
		if OrthoError(qr.Q) > 1e-12 {
			return false
		}
		return qr.Q.Mul(qr.R).Equalish(a, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandDense(rng, 8, 5)
	qr := Factor(a)
	for i := 0; i < qr.R.R; i++ {
		for j := 0; j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Fatalf("R[%d][%d] = %v below diagonal", i, j, qr.R.At(i, j))
			}
		}
	}
}

func TestFactorSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.RandStable(rng, 10, 0.1)
	qr := Factor(a)
	if !qr.Q.Mul(qr.R).Equalish(a, 1e-11) {
		t.Fatal("square QR reconstruction failed")
	}
}

func TestOrthonormalizeBasic(t *testing.T) {
	cols := [][]float64{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}}
	v := Orthonormalize(cols, 1e-10)
	if v == nil || v.C != 3 {
		t.Fatalf("expected 3 basis vectors, got %v", v)
	}
	if OrthoError(v) > 1e-13 {
		t.Fatalf("not orthonormal: %v", OrthoError(v))
	}
}

func TestOrthonormalizeDeflation(t *testing.T) {
	// Third column is a linear combination — must be dropped.
	cols := [][]float64{{1, 0, 0}, {0, 1, 0}, {2, 3, 0}}
	v := Orthonormalize(cols, 1e-10)
	if v.C != 2 {
		t.Fatalf("expected deflation to 2 vectors, got %d", v.C)
	}
}

func TestOrthonormalizeZeroAndNil(t *testing.T) {
	if v := Orthonormalize([][]float64{{0, 0}}, 1e-10); v != nil {
		t.Fatal("zero column should deflate to nil basis")
	}
	if v := Orthonormalize(nil, 1e-10); v != nil {
		t.Fatal("empty input should give nil basis")
	}
}

func TestOrthonormalizeSpanPreserved(t *testing.T) {
	// Every input column must be reproducible from the basis: c = V Vᵀ c.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		k := 1 + rng.Intn(n)
		cols := make([][]float64, k)
		for i := range cols {
			cols[i] = mat.RandVec(rng, n)
		}
		v := Orthonormalize(cols, 1e-12)
		if v == nil {
			return false
		}
		for _, c := range cols {
			tmp := make([]float64, v.C)
			v.MulVecT(tmp, c)
			rec := make([]float64, n)
			v.MulVec(rec, tmp)
			mat.Axpy(-1, c, rec)
			if mat.Norm2(rec) > 1e-9*mat.Norm2(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendOrthonormal(t *testing.T) {
	v := Orthonormalize([][]float64{{1, 0, 0, 0}}, 1e-10)
	v2 := AppendOrthonormal(v, [][]float64{{1, 1, 0, 0}, {1, 0, 0, 0}}, 1e-10)
	if v2.C != 2 {
		t.Fatalf("expected 2 columns after append, got %d", v2.C)
	}
	if OrthoError(v2) > 1e-13 {
		t.Fatal("appended basis not orthonormal")
	}
	// Appending to nil behaves like Orthonormalize.
	v3 := AppendOrthonormal(nil, [][]float64{{0, 1}}, 1e-10)
	if v3 == nil || v3.C != 1 {
		t.Fatal("append to nil failed")
	}
}

func TestOrthonormalizeNearDependent(t *testing.T) {
	// A vector differing from span by 1e-14 must deflate at dropTol 1e-8.
	base := []float64{1, 2, 3}
	mat.ScaleVec(1/mat.Norm2(base), base)
	almost := mat.CopyVec(base)
	almost[0] += 1e-14
	v := Orthonormalize([][]float64{base, almost}, 1e-8)
	if v.C != 1 {
		t.Fatalf("expected deflation, got %d columns", v.C)
	}
}

func TestOrthoErrorDetects(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 0.5}, {0, 1}})
	if OrthoError(m) < 0.4 {
		t.Fatal("OrthoError failed to flag non-orthogonal matrix")
	}
	if e := OrthoError(mat.Eye(4)); e != 0 {
		t.Fatalf("identity ortho error %v", e)
	}
}

func TestFactorTallThin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandDense(rng, 50, 3)
	qr := Factor(a)
	if qr.Q.R != 50 || qr.Q.C != 3 || qr.R.R != 3 {
		t.Fatalf("thin shapes wrong: Q %d×%d R %d×%d", qr.Q.R, qr.Q.C, qr.R.R, qr.R.C)
	}
	if !qr.Q.Mul(qr.R).Equalish(a, 1e-11) {
		t.Fatal("tall-thin reconstruction failed")
	}
}

func TestFactorNeedsPivotlessColumn(t *testing.T) {
	// First column zero: reflector degenerates but factorization must survive.
	a := mat.FromRows([][]float64{{0, 1}, {0, 0}, {0, 2}})
	qr := Factor(a)
	if !qr.Q.Mul(qr.R).Equalish(a, 1e-12) {
		t.Fatal("zero-column reconstruction failed")
	}
}

func BenchmarkOrthonormalize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cols := make([][]float64, 30)
	for i := range cols {
		cols[i] = mat.RandVec(rng, 200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Orthonormalize(cols, 1e-10)
	}
}
