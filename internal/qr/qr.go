// Package qr provides Householder QR factorization and the
// orthonormalization primitives used to assemble projection matrices from
// unions of Krylov/moment subspaces (paper §2.3).
package qr

import (
	"math"

	"avtmor/internal/mat"
)

// QR holds a thin Householder factorization A = Q·R with Q m×n
// column-orthonormal and R n×n upper triangular (requires m ≥ n).
type QR struct {
	Q *mat.Dense
	R *mat.Dense
}

// Factor computes the thin QR factorization of a (m ≥ n).
func Factor(a *mat.Dense) *QR {
	m, n := a.R, a.C
	if m < n {
		panic("qr: Factor requires rows >= cols")
	}
	r := a.Clone()
	// Store Householder vectors.
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		x := make([]float64, m-k)
		for i := k; i < m; i++ {
			x[i-k] = r.At(i, k)
		}
		alpha := mat.Norm2(x)
		if x[0] > 0 {
			alpha = -alpha
		}
		v := mat.CopyVec(x)
		v[0] -= alpha
		vn := mat.Norm2(v)
		if vn > 0 {
			mat.ScaleVec(1/vn, v)
			applyReflector(r, v, k)
		}
		vs = append(vs, v)
	}
	// Accumulate Q by applying the reflectors to the first n columns of I.
	q := mat.NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		if mat.Norm2(vs[k]) > 0 {
			applyReflector(q, vs[k], k)
		}
	}
	// Zero out the strictly-lower part of R and truncate to n×n.
	rr := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.Set(i, j, r.At(i, j))
		}
	}
	return &QR{Q: q, R: rr}
}

// applyReflector applies H = I - 2 v vᵀ (v unit, living in rows k..m-1) to
// the rows k..m-1 of a, for all columns.
func applyReflector(a *mat.Dense, v []float64, k int) {
	m, n := a.R, a.C
	for j := 0; j < n; j++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += v[i-k] * a.At(i, j)
		}
		s *= 2
		if s == 0 {
			continue
		}
		for i := k; i < m; i++ {
			a.Add(i, j, -s*v[i-k])
		}
	}
}

// Orthonormalize builds an orthonormal basis for the span of the given
// column vectors by modified Gram–Schmidt with one reorthogonalization
// pass. Columns whose remainder after projection is below dropTol times
// their original norm are deflated (skipped). Zero columns are skipped.
// The returned matrix has one column per surviving vector; it may be nil
// if everything deflates.
func Orthonormalize(cols [][]float64, dropTol float64) *mat.Dense {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	basis := make([][]float64, 0, len(cols))
	for _, c := range cols {
		if len(c) != n {
			panic("qr: Orthonormalize ragged columns")
		}
		orig := mat.Norm2(c)
		if orig == 0 {
			continue
		}
		w := mat.CopyVec(c)
		for pass := 0; pass < 2; pass++ {
			for _, q := range basis {
				mat.Axpy(-mat.Dot(q, w), q, w)
			}
		}
		if rem := mat.Norm2(w); rem > dropTol*orig {
			mat.ScaleVec(1/rem, w)
			basis = append(basis, w)
		}
	}
	if len(basis) == 0 {
		return nil
	}
	v := mat.NewDense(n, len(basis))
	for j, q := range basis {
		v.SetCol(j, q)
	}
	return v
}

// AppendOrthonormal extends an existing column-orthonormal matrix v with
// the given candidate vectors (same deflation rule as Orthonormalize) and
// returns the enlarged basis. v may be nil.
func AppendOrthonormal(v *mat.Dense, cols [][]float64, dropTol float64) *mat.Dense {
	var existing [][]float64
	if v != nil {
		for j := 0; j < v.C; j++ {
			existing = append(existing, v.Col(j))
		}
	}
	return Orthonormalize(append(existing, cols...), dropTol)
}

// OrthoError returns max |QᵀQ - I|, a quick orthonormality diagnostic.
func OrthoError(q *mat.Dense) float64 {
	g := q.T().Mul(q)
	worst := 0.0
	for i := 0; i < g.R; i++ {
		for j := 0; j < g.C; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(g.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}
