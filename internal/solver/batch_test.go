package solver

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

// rlcLineCSR rebuilds the paper-workload sparsity pattern (the RLC
// transmission line of the scale experiments: ~2.5 nnz/row, states
// interleaving node voltages and branch currents) without importing
// internal/circuits, which sits above this package.
func rlcLineCSR(sections int) *sparse.CSR {
	m := sections
	n := 2*m - 1
	ib := func(k int) int { return m + k }
	b := sparse.NewBuilder(n, n)
	for k := 0; k < m; k++ {
		diag := -0.02
		if k == m-1 {
			diag -= 1.0
		}
		b.Add(k, k, diag)
		if k > 0 {
			b.Add(k, ib(k-1), 1)
		}
		if k < m-1 {
			b.Add(k, ib(k), -1)
		}
	}
	for k := 0; k < m-1; k++ {
		b.Add(ib(k), k, 1)
		b.Add(ib(k), k+1, -1)
		b.Add(ib(k), ib(k), -0.1)
	}
	return b.Build()
}

// batchCases enumerates the operands the equivalence suite runs over:
// random diagonally-dominant fills plus the banded paper workload.
func batchCases(t *testing.T) map[string]*sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	return map[string]*sparse.CSR{
		"rand-n37":  randSparse(rng, 37, 0.12),
		"rand-n120": randSparse(rng, 120, 0.04),
		"rlc-n99":   rlcLineCSR(50),
	}
}

// TestSolveBatchBitExact verifies, for every backend, that SolveBatch
// output is bit-identical to a loop of single Solve calls — the
// contract that makes the block solve path invisible in ROM
// fingerprints.
func TestSolveBatchBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	backends := map[string]LinearSolver{"dense": Dense{}, "sparse": Sparse{}, "auto": Auto{}}
	for caseName, a := range batchCases(t) {
		op := Operand(a.Dense(), a)
		n := a.Rows
		for beName, ls := range backends {
			f, err := ls.Factor(op)
			if err != nil {
				t.Fatalf("%s/%s: factor: %v", caseName, beName, err)
			}
			for _, k := range []int{1, 3, 8} {
				cols := make([][]float64, k)
				want := make([][]float64, k)
				for c := 0; c < k; c++ {
					cols[c] = mat.RandVec(rng, n)
					want[c] = make([]float64, n)
					f.Solve(want[c], cols[c])
				}
				f.SolveBatch(cols)
				for c := 0; c < k; c++ {
					for i := 0; i < n; i++ {
						if cols[c][i] != want[c][i] {
							t.Fatalf("%s/%s k=%d: col %d row %d: batch %v, loop %v (must be bit-identical)",
								caseName, beName, k, c, i, cols[c][i], want[c][i])
						}
					}
				}
			}
		}
	}
}

// TestSolveBatchShiftedBitExact runs the same equivalence through the
// ShiftedCache (shifted pencils, both backends, counting wrapper on).
func TestSolveBatchShiftedBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := rlcLineCSR(40)
	n := a.Rows
	for _, ls := range []LinearSolver{Dense{}, Sparse{}} {
		sc := NewShiftedCache(Operand(a.Dense(), a), nil, ls)
		for _, sigma := range []float64{0, -0.4, 1.3} {
			f, err := sc.Factor(sigma)
			if err != nil {
				t.Fatalf("%s σ=%g: %v", ls.Name(), sigma, err)
			}
			const k = 5
			cols := make([][]float64, k)
			want := make([][]float64, k)
			for c := 0; c < k; c++ {
				cols[c] = mat.RandVec(rng, n)
				want[c] = make([]float64, n)
				f.Solve(want[c], cols[c])
			}
			f.SolveBatch(cols)
			for c := 0; c < k; c++ {
				for i := 0; i < n; i++ {
					if cols[c][i] != want[c][i] {
						t.Fatalf("%s σ=%g col %d row %d: batch %v, loop %v",
							ls.Name(), sigma, c, i, cols[c][i], want[c][i])
					}
				}
			}
		}
		st := sc.Stats()
		if st.BatchSolves != 3 || st.BatchColumns != 15 {
			t.Fatalf("%s: batch stats = %+v, want 3 solves / 15 columns", ls.Name(), st)
		}
	}
}

// TestSolveBatchCtxAbort checks that a canceled batched solve reports
// the context error and leaves the columns untouched.
func TestSolveBatchCtxAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := rlcLineCSR(300) // n = 599 > the ctx poll stride guard sizes
	for _, ls := range []LinearSolver{Dense{}, Sparse{}} {
		f, err := ls.Factor(Operand(a.Dense(), a))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		col := mat.RandVec(rng, a.Rows)
		orig := mat.CopyVec(col)
		if err := f.SolveBatchCtx(ctx, [][]float64{col}); err != context.Canceled {
			t.Fatalf("%s: got %v, want context.Canceled", ls.Name(), err)
		}
		for i := range col {
			if col[i] != orig[i] {
				t.Fatalf("%s: aborted solve mutated its column at %d", ls.Name(), i)
			}
		}
		// A live context completes and matches Solve.
		want := make([]float64, a.Rows)
		f.Solve(want, col)
		if err := f.SolveBatchCtx(context.Background(), [][]float64{col}); err != nil {
			t.Fatal(err)
		}
		for i := range col {
			if col[i] != want[i] {
				t.Fatalf("%s: live-ctx batch diverged from Solve at %d", ls.Name(), i)
			}
		}
	}
}

// TestShiftedCacheSingleflight drives many concurrent workers at the
// same shift (run with -race: this is the WithParallel race that used
// to be able to double-factor a sigma) and asserts the pencil was
// factored exactly once, with every other request counted as a hit.
func TestShiftedCacheSingleflight(t *testing.T) {
	a := rlcLineCSR(200)
	for _, ls := range []LinearSolver{Dense{}, Sparse{}} {
		sc := NewShiftedCache(Operand(a.Dense(), a), nil, ls)
		const workers = 16
		var wg sync.WaitGroup
		facts := make([]Factorization, workers)
		errs := make([]error, workers)
		start := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				facts[w], errs[w] = sc.Factor(-0.5)
			}(w)
		}
		close(start)
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatalf("%s: worker %d: %v", ls.Name(), w, errs[w])
			}
			if facts[w] != facts[0] {
				t.Fatalf("%s: worker %d got a different factorization instance", ls.Name(), w)
			}
		}
		st := sc.Stats()
		if st.Factorizations != 1 {
			t.Fatalf("%s: %d factorizations for one shift under %d concurrent workers, want exactly 1",
				ls.Name(), st.Factorizations, workers)
		}
		if st.Hits != workers-1 {
			t.Fatalf("%s: hits = %d, want %d", ls.Name(), st.Hits, workers-1)
		}
	}
}

// TestShiftedCacheCanceledLeaderRetries checks the singleflight
// recovery path: a waiter with a live context must not inherit the
// canceled leader's error — it re-factors as the new leader.
func TestShiftedCacheCanceledLeaderRetries(t *testing.T) {
	a := rlcLineCSR(400)
	sc := NewShiftedCache(FromCSR(a), nil, Sparse{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.FactorCtx(ctx, -0.3); err == nil {
		t.Fatal("expected a context error from the canceled leader")
	}
	f, err := sc.FactorCtx(context.Background(), -0.3)
	if err != nil {
		t.Fatalf("live retry after canceled leader: %v", err)
	}
	if f == nil {
		t.Fatal("nil factorization from live retry")
	}
	if st := sc.Stats(); st.Factorizations != 1 {
		t.Fatalf("factorizations = %d, want 1 (the canceled attempt never completed)", st.Factorizations)
	}
}
