package solver

import (
	"sync"

	"avtmor/internal/sparse"
)

// ShiftedCache caches factorizations of the shifted pencil G + σ·C per
// expansion point σ, with C = I when no descriptor is supplied — the
// paper's "compute the LU of G1 for once" amortization, shared across
// H1/H2/H3 moment generation and across multipoint expansion
// frequencies. It is safe for concurrent use, and concurrent requests
// for distinct shifts factor in parallel (only same-shift requests
// block on one another).
type ShiftedCache struct {
	g, c *Matrix // c == nil means identity
	ls   LinearSolver

	mu      sync.Mutex
	entries map[float64]*shiftEntry
}

type shiftEntry struct {
	once sync.Once
	f    Factorization
	err  error
}

// NewShiftedCache prepares a cache over G + σ·C for the given backend
// (nil backend selects Auto). Pass c == nil for the identity descriptor
// of the trimmed QLDAE form.
func NewShiftedCache(g *Matrix, c *Matrix, ls LinearSolver) *ShiftedCache {
	if ls == nil {
		ls = Auto{}
	}
	return &ShiftedCache{g: g, c: c, ls: ls, entries: map[float64]*shiftEntry{}}
}

// Solver exposes the backend the cache factors through.
func (sc *ShiftedCache) Solver() LinearSolver { return sc.ls }

// Scale returns max |g_ij|, the reference for pivot-ratio checks.
func (sc *ShiftedCache) Scale() float64 { return sc.g.MaxAbs() }

// N returns the pencil dimension.
func (sc *ShiftedCache) N() int { return sc.g.N() }

// Factor returns the cached factorization of G + σ·C, computing it on
// first use.
func (sc *ShiftedCache) Factor(sigma float64) (Factorization, error) {
	sc.mu.Lock()
	e, ok := sc.entries[sigma]
	if !ok {
		e = &shiftEntry{}
		sc.entries[sigma] = e
	}
	sc.mu.Unlock()
	e.once.Do(func() {
		e.f, e.err = sc.ls.Factor(sc.shifted(sigma))
	})
	return e.f, e.err
}

// shifted assembles G + σ·C in whichever representation the backend
// will consume, without densifying a sparse-only G.
func (sc *ShiftedCache) shifted(sigma float64) *Matrix {
	if sigma == 0 {
		return sc.g
	}
	if wantsDense(sc.ls, sc.g) {
		d := sc.g.AsDense().Clone()
		if sc.c == nil {
			for i := 0; i < d.R; i++ {
				d.Add(i, i, sigma)
			}
		} else {
			d.AddScaled(sigma, sc.c.AsDense())
		}
		return FromDense(d)
	}
	g := sc.g.AsCSR()
	var c *sparse.CSR
	if sc.c == nil {
		c = sparse.Eye(g.Rows)
	} else {
		c = sc.c.AsCSR()
	}
	return FromCSR(sparse.Add(1, g, sigma, c))
}

// wantsDense reports whether the backend would factor m densely, so the
// shift is applied in the representation that will actually be used.
func wantsDense(ls LinearSolver, m *Matrix) bool {
	if a, ok := ls.(Auto); ok {
		ls = a.Pick(m)
	}
	_, dense := ls.(Dense)
	return dense
}
