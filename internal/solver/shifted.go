package solver

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

// ShiftedCache caches factorizations of the shifted pencil G + σ·C per
// expansion point σ, with C = I when no descriptor is supplied — the
// paper's "compute the LU of G1 for once" amortization, shared across
// H1/H2/H3 moment generation and across multipoint expansion
// frequencies. It is safe for concurrent use, and concurrent requests
// for distinct shifts factor in parallel.
//
// Same-shift concurrency is a per-shift singleflight: the first
// requester becomes the leader and factors; every concurrent request
// for the same σ waits on the leader's outcome instead of factoring
// again, so each shift pays exactly one factor step no matter how many
// WithParallel workers race on it. A leader abandoned by its context
// evicts its entry, and a live-context waiter then retries as the new
// leader rather than inheriting the stale cancellation error.
type ShiftedCache struct {
	g, c *Matrix // c == nil means identity
	ls   LinearSolver

	// sym holds the one symbolic analysis all shifts share: for σ ≠ 0 the
	// shifted pencil is assembled as the union pattern of G and C (exact
	// cancellations keep their explicit slots — see sparse.Add), so every
	// expansion point presents the identical sparsity pattern and a cache
	// miss pays only the numeric phase after the first factorization.
	sym SymbolicCache

	factorizations atomic.Int64 // completed factor steps
	hits           atomic.Int64 // Factor calls served from the cache
	batchSolves    atomic.Int64 // SolveBatch calls on cached factorizations
	batchColumns   atomic.Int64 // total RHS columns across those calls

	mu      sync.Mutex
	entries map[float64]*shiftEntry // guarded by mu
}

// shiftEntry is one singleflight slot: done closes when the leader's
// factor step resolves, after which f/err are immutable.
type shiftEntry struct {
	done chan struct{}
	f    Factorization
	err  error
}

// CacheStats is the observable outcome of a ShiftedCache's lifetime:
// how many pencils were actually factored, how many Factor calls found
// a ready (or in-flight) entry instead, and how the block solve path
// was used. The layers above surface these in core.Stats, the
// experiment reports, and the serving tier's /metrics.
type CacheStats struct {
	Factorizations int64
	Hits           int64
	// BatchSolves counts SolveBatch/SolveBatchCtx calls issued against
	// factorizations served by this cache; BatchColumns the total
	// right-hand-side columns they carried. BatchColumns/BatchSolves is
	// the realized batching width — the multi-RHS amortization made
	// observable.
	BatchSolves  int64
	BatchColumns int64
	// SymbolicAnalyses counts sparse factorizations that paid the full
	// symbolic analysis (pattern discovery, RCM, reachability DFS);
	// NumericRefactors counts those served numeric-only from the cached
	// pattern. Dense-routed pencils count under neither, so for a sparse
	// workload Factorizations = SymbolicAnalyses + NumericRefactors and
	// the refactor share is the symbolic amortization made observable.
	SymbolicAnalyses int64
	NumericRefactors int64
}

// NewShiftedCache prepares a cache over G + σ·C for the given backend
// (nil backend selects Auto). Pass c == nil for the identity descriptor
// of the trimmed QLDAE form.
func NewShiftedCache(g *Matrix, c *Matrix, ls LinearSolver) *ShiftedCache {
	if ls == nil {
		ls = Auto{}
	}
	return &ShiftedCache{g: g, c: c, ls: ls, entries: map[float64]*shiftEntry{}}
}

// Solver exposes the backend the cache factors through.
func (sc *ShiftedCache) Solver() LinearSolver { return sc.ls }

// BackendName names the backend the pencil actually factors through:
// for Auto it resolves the per-operand routing decision ("dense" or
// "sparse"), so the observability layer reports what ran, not the
// policy that was requested.
func (sc *ShiftedCache) BackendName() string {
	if a, ok := sc.ls.(Auto); ok {
		return a.Pick(sc.g).Name()
	}
	return sc.ls.Name()
}

// Scale returns max |g_ij|, the reference for pivot-ratio checks.
func (sc *ShiftedCache) Scale() float64 { return sc.g.MaxAbs() }

// N returns the pencil dimension.
func (sc *ShiftedCache) N() int { return sc.g.N() }

// Stats reports factorization, hit, and batch-solve counters.
func (sc *ShiftedCache) Stats() CacheStats {
	analyses, refactors := sc.sym.Stats()
	return CacheStats{
		Factorizations:   sc.factorizations.Load(),
		Hits:             sc.hits.Load(),
		BatchSolves:      sc.batchSolves.Load(),
		BatchColumns:     sc.batchColumns.Load(),
		SymbolicAnalyses: analyses,
		NumericRefactors: refactors,
	}
}

// Factor returns the cached factorization of G + σ·C, computing it on
// first use.
func (sc *ShiftedCache) Factor(sigma float64) (Factorization, error) {
	return sc.FactorCtx(context.Background(), sigma)
}

// FactorCtx is Factor with cooperative cancellation. A factorization
// aborted by ctx is NOT cached: the leader evicts its entry, so a later
// (or concurrently waiting) request with a live context recomputes it
// instead of inheriting the stale cancellation error.
func (sc *ShiftedCache) FactorCtx(ctx context.Context, sigma float64) (Factorization, error) {
	for {
		sc.mu.Lock()
		e, ok := sc.entries[sigma]
		if !ok {
			// Leader: factor under no lock, publish, wake the waiters.
			e = &shiftEntry{done: make(chan struct{})}
			sc.entries[sigma] = e
			sc.mu.Unlock()
			f, err := sc.sym.FactorCtx(ctx, sc.ls, sc.shifted(sigma))
			if err == nil {
				sc.factorizations.Add(1)
				// The counting wrapper is created once and cached, so
				// repeat hits observe the identical Factorization value.
				e.f = &countedFact{inner: f, sc: sc}
			} else {
				e.err = err
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					sc.mu.Lock()
					if sc.entries[sigma] == e {
						delete(sc.entries, sigma)
					}
					sc.mu.Unlock()
				}
			}
			close(e.done)
			return e.f, e.err
		}
		sc.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil &&
				(errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) &&
				ctx.Err() == nil {
				// The leader was canceled but this waiter is still live:
				// loop and retry (the canceled leader evicted its entry,
				// so the retry elects a new leader). Not a cache hit —
				// the retry pays the factor step itself.
				continue
			}
			// Only requests actually served by the entry count as hits
			// (a waiter that aborts on its own context was served
			// nothing, and a retrying waiter is counted on its retry).
			sc.hits.Add(1)
			return e.f, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// countedFact wraps a cached factorization so the cache can observe the
// batch-solve traffic flowing through it. Solve semantics are forwarded
// untouched; only counters move.
type countedFact struct {
	inner Factorization
	sc    *ShiftedCache
}

func (c *countedFact) N() int                           { return c.inner.N() }
func (c *countedFact) MinAbsPivot() float64             { return c.inner.MinAbsPivot() }
func (c *countedFact) Solve(dst, b []float64)           { c.inner.Solve(dst, b) }
func (c *countedFact) SolveMat(b *mat.Dense) *mat.Dense { return c.inner.SolveMat(b) }

func (c *countedFact) SolveBatch(cols [][]float64) {
	c.sc.batchSolves.Add(1)
	c.sc.batchColumns.Add(int64(len(cols)))
	c.inner.SolveBatch(cols)
}

func (c *countedFact) SolveBatchCtx(ctx context.Context, cols [][]float64) error {
	c.sc.batchSolves.Add(1)
	c.sc.batchColumns.Add(int64(len(cols)))
	return c.inner.SolveBatchCtx(ctx, cols)
}

// shifted assembles G + σ·C in whichever representation the backend
// will consume, without densifying a sparse-only G.
func (sc *ShiftedCache) shifted(sigma float64) *Matrix {
	if sigma == 0 {
		return sc.g
	}
	if wantsDense(sc.ls, sc.g) {
		d := sc.g.AsDense().Clone()
		if sc.c == nil {
			for i := 0; i < d.R; i++ {
				d.Add(i, i, sigma)
			}
		} else {
			d.AddScaled(sigma, sc.c.AsDense())
		}
		return FromDense(d)
	}
	g := sc.g.AsCSR()
	var c *sparse.CSR
	if sc.c == nil {
		c = sparse.Eye(g.Rows)
	} else {
		c = sc.c.AsCSR()
	}
	return FromCSR(sparse.Add(1, g, sigma, c))
}

// wantsDense reports whether the backend would factor m densely, so the
// shift is applied in the representation that will actually be used.
func wantsDense(ls LinearSolver, m *Matrix) bool {
	if a, ok := ls.(Auto); ok {
		ls = a.Pick(m)
	}
	_, dense := ls.(Dense)
	return dense
}
