package solver

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"avtmor/internal/sparse"
)

// ShiftedCache caches factorizations of the shifted pencil G + σ·C per
// expansion point σ, with C = I when no descriptor is supplied — the
// paper's "compute the LU of G1 for once" amortization, shared across
// H1/H2/H3 moment generation and across multipoint expansion
// frequencies. It is safe for concurrent use, and concurrent requests
// for distinct shifts factor in parallel (only same-shift requests
// block on one another).
type ShiftedCache struct {
	g, c *Matrix // c == nil means identity
	ls   LinearSolver

	factorizations atomic.Int64 // completed factor steps
	hits           atomic.Int64 // Factor calls served from the cache

	mu      sync.Mutex
	entries map[float64]*shiftEntry
}

type shiftEntry struct {
	once sync.Once
	f    Factorization
	err  error
}

// CacheStats is the observable outcome of a ShiftedCache's lifetime:
// how many pencils were actually factored and how many Factor calls
// found a ready (or in-flight) entry instead. The layers above surface
// these in core.Stats and the experiment reports.
type CacheStats struct {
	Factorizations int64
	Hits           int64
}

// NewShiftedCache prepares a cache over G + σ·C for the given backend
// (nil backend selects Auto). Pass c == nil for the identity descriptor
// of the trimmed QLDAE form.
func NewShiftedCache(g *Matrix, c *Matrix, ls LinearSolver) *ShiftedCache {
	if ls == nil {
		ls = Auto{}
	}
	return &ShiftedCache{g: g, c: c, ls: ls, entries: map[float64]*shiftEntry{}}
}

// Solver exposes the backend the cache factors through.
func (sc *ShiftedCache) Solver() LinearSolver { return sc.ls }

// BackendName names the backend the pencil actually factors through:
// for Auto it resolves the per-operand routing decision ("dense" or
// "sparse"), so the observability layer reports what ran, not the
// policy that was requested.
func (sc *ShiftedCache) BackendName() string {
	if a, ok := sc.ls.(Auto); ok {
		return a.Pick(sc.g).Name()
	}
	return sc.ls.Name()
}

// Scale returns max |g_ij|, the reference for pivot-ratio checks.
func (sc *ShiftedCache) Scale() float64 { return sc.g.MaxAbs() }

// N returns the pencil dimension.
func (sc *ShiftedCache) N() int { return sc.g.N() }

// Stats reports factorization and hit counters.
func (sc *ShiftedCache) Stats() CacheStats {
	return CacheStats{Factorizations: sc.factorizations.Load(), Hits: sc.hits.Load()}
}

// Factor returns the cached factorization of G + σ·C, computing it on
// first use.
func (sc *ShiftedCache) Factor(sigma float64) (Factorization, error) {
	return sc.FactorCtx(context.Background(), sigma)
}

// FactorCtx is Factor with cooperative cancellation. A factorization
// aborted by ctx is NOT cached: the entry is evicted so a later request
// (with a live context) recomputes it instead of inheriting the stale
// cancellation error. Waiters that coalesce onto an in-flight factor
// step block until it resolves, sharing the leader's outcome.
func (sc *ShiftedCache) FactorCtx(ctx context.Context, sigma float64) (Factorization, error) {
	sc.mu.Lock()
	e, ok := sc.entries[sigma]
	if !ok {
		e = &shiftEntry{}
		sc.entries[sigma] = e
	} else {
		sc.hits.Add(1)
	}
	sc.mu.Unlock()
	e.once.Do(func() {
		e.f, e.err = sc.ls.FactorCtx(ctx, sc.shifted(sigma))
		if e.err == nil {
			sc.factorizations.Add(1)
		}
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		sc.mu.Lock()
		if sc.entries[sigma] == e {
			delete(sc.entries, sigma)
		}
		sc.mu.Unlock()
	}
	return e.f, e.err
}

// shifted assembles G + σ·C in whichever representation the backend
// will consume, without densifying a sparse-only G.
func (sc *ShiftedCache) shifted(sigma float64) *Matrix {
	if sigma == 0 {
		return sc.g
	}
	if wantsDense(sc.ls, sc.g) {
		d := sc.g.AsDense().Clone()
		if sc.c == nil {
			for i := 0; i < d.R; i++ {
				d.Add(i, i, sigma)
			}
		} else {
			d.AddScaled(sigma, sc.c.AsDense())
		}
		return FromDense(d)
	}
	g := sc.g.AsCSR()
	var c *sparse.CSR
	if sc.c == nil {
		c = sparse.Eye(g.Rows)
	} else {
		c = sc.c.AsCSR()
	}
	return FromCSR(sparse.Add(1, g, sigma, c))
}

// wantsDense reports whether the backend would factor m densely, so the
// shift is applied in the representation that will actually be used.
func wantsDense(ls LinearSolver, m *Matrix) bool {
	if a, ok := ls.(Auto); ok {
		ls = a.Pick(m)
	}
	_, dense := ls.(Dense)
	return dense
}
