// Package solver is the sparse-direct spine of avtmor: a LinearSolver
// abstraction over the square real systems that dominate the paper's
// runtime — the shift-inverted Krylov back-solves of the moment
// generation (§2.3's "one LU of G1, then cheap back-solves per moment")
// and the Newton steps of the implicit transient integrators.
//
// Two backends implement the interface: the existing dense LU with
// partial pivoting (package lu, O(n³) factor / O(n²) solve) and a sparse
// LU over CSR with a fill-reducing RCM preorder and threshold/Markowitz
// pivoting (O(nnz·fill) factor, O(nnz(L+U)) solve). Auto picks by
// dimension and nonzero density, which is what every layer above — the
// associated-transform realizations, NORM, and ode.Trapezoidal —
// consumes by default.
package solver

import (
	"context"
	"errors"
	"math"
	"sync"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

// ErrSingular is returned when a factorization encounters a vanishing
// pivot column.
var ErrSingular = errors.New("solver: matrix is singular")

// Factorization is a ready-to-reuse triangular factorization of a square
// matrix A: the factor step is paid once, back-solves are cheap. A
// Factorization is safe for concurrent solves (scratch comes from a
// shared pool, never from factorization state).
type Factorization interface {
	// N returns the matrix dimension.
	N() int
	// Solve computes x with A·x = b, writing into dst (dst may alias b).
	Solve(dst, b []float64)
	// SolveBatch solves A·x = cols[c] for every column of the batch, in
	// place: each column is read as a right-hand side and overwritten
	// with its solution. One traversal of the factor structure serves
	// the whole batch (column-major inner loops), and per-column
	// arithmetic is identical to a loop of Solve calls — results are
	// bit-exact either way. Columns must not alias one another.
	SolveBatch(cols [][]float64)
	// SolveBatchCtx is SolveBatch with cooperative cancellation: ctx is
	// polled along the substitution sweeps, and on abort the columns
	// are left untouched (solutions scatter back only on completion).
	SolveBatchCtx(ctx context.Context, cols [][]float64) error
	// SolveMat solves A·X = B (one batched substitution).
	SolveMat(b *mat.Dense) *mat.Dense
	// MinAbsPivot returns the smallest |U_ii| — the cheap
	// near-singularity witness the shifted-system callers check against
	// the matrix scale.
	MinAbsPivot() float64
}

// Matrix is a square solver operand carrying a dense and/or a CSR
// representation; either may be nil, and conversions are cached. Large
// circuits carry only the CSR side, which is what makes the n ≈ 10³–10⁴
// regime reachable without ever materializing n² dense entries.
//
// The cached conversions make the Matrix stateful, and ShiftedCache
// hands the same operand to concurrent factorizations, so every access
// to the representation fields is mutex-guarded.
type Matrix struct {
	mu    sync.Mutex
	dense *mat.Dense  // guarded by mu
	csr   *sparse.CSR // guarded by mu
}

// FromDense wraps a dense operand.
func FromDense(d *mat.Dense) *Matrix { return &Matrix{dense: d} }

// FromCSR wraps a sparse operand.
func FromCSR(c *sparse.CSR) *Matrix { return &Matrix{csr: c} }

// Operand bundles whichever representations exist (either may be nil,
// not both).
func Operand(d *mat.Dense, c *sparse.CSR) *Matrix {
	if d == nil && c == nil {
		panic("solver: empty operand")
	}
	return &Matrix{dense: d, csr: c}
}

// N returns the matrix dimension.
func (m *Matrix) N() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.csr != nil {
		return m.csr.Rows
	}
	return m.dense.R
}

// HasDense reports whether a dense representation is present.
func (m *Matrix) HasDense() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dense != nil
}

// HasCSR reports whether a sparse representation is present.
func (m *Matrix) HasCSR() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.csr != nil
}

// NNZ returns the stored-nonzero count (falls back to a dense scan).
func (m *Matrix) NNZ() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.csr != nil {
		return m.csr.NNZ()
	}
	nnz := 0
	for _, v := range m.dense.A {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// AsDense returns (and caches) the dense representation.
func (m *Matrix) AsDense() *mat.Dense {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dense == nil {
		m.dense = m.csr.Dense()
	}
	return m.dense
}

// AsCSR returns (and caches) the sparse representation.
func (m *Matrix) AsCSR() *sparse.CSR {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.csr == nil {
		m.csr = sparse.FromDense(m.dense)
	}
	return m.csr
}

// MaxAbs returns max |a_ij|, the scale the near-singularity checks
// normalize against.
func (m *Matrix) MaxAbs() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.csr != nil {
		worst := 0.0
		for _, v := range m.csr.Val {
			if a := math.Abs(v); a > worst {
				worst = a
			}
		}
		return worst
	}
	return m.dense.MaxAbs()
}

// LinearSolver factors solver operands.
type LinearSolver interface {
	// Name identifies the backend ("dense", "sparse", "auto").
	Name() string
	// Factor computes a factorization of a; a is not modified.
	Factor(a *Matrix) (Factorization, error)
	// FactorCtx is Factor with cooperative cancellation: long
	// factorizations (the sparse-LU column loop) poll ctx and abort with
	// its error, so a caller that gives up on a reduction is not stuck
	// behind an O(nnz·fill) factor step.
	FactorCtx(ctx context.Context, a *Matrix) (Factorization, error)
}

// Dense is the dense-LU backend (partial pivoting, package lu).
type Dense struct{}

// Name returns "dense".
func (Dense) Name() string { return "dense" }

// Factor runs the dense LU.
func (Dense) Factor(a *Matrix) (Factorization, error) {
	return Dense.FactorCtx(Dense{}, context.Background(), a)
}

// FactorCtx runs the dense LU (the ctx is checked on entry only; the
// dense kernel is a tight third-party-free loop kept check-free).
func (Dense) FactorCtx(ctx context.Context, a *Matrix) (Factorization, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := lu.Factor(a.AsDense())
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Sparse is the sparse-LU backend (RCM preorder, threshold pivoting with
// a Markowitz-style sparsity tie-break).
type Sparse struct {
	// PivotTol is the threshold-pivoting relaxation in (0, 1]: a row is
	// pivot-eligible when |candidate| ≥ PivotTol·|column max|, and the
	// sparsest eligible row wins. 1 forces pure partial pivoting;
	// 0 selects the default 0.1.
	PivotTol float64
}

// Name returns "sparse".
func (Sparse) Name() string { return "sparse" }

// Factor runs the sparse LU of splu.go.
func (s Sparse) Factor(a *Matrix) (Factorization, error) {
	return factorCSR(context.Background(), a.AsCSR(), s.PivotTol)
}

// FactorCtx runs the sparse LU, polling ctx along the column loop.
func (s Sparse) FactorCtx(ctx context.Context, a *Matrix) (Factorization, error) {
	return factorCSR(ctx, a.AsCSR(), s.PivotTol)
}

// Auto routing thresholds: below AutoDenseCutoff states the dense LU's
// simplicity wins (and matches the seed's numerics bit for bit); above
// it, matrices sparser than autoMaxDensity go through the sparse LU.
// AutoDenseCutoff is exported so layers that assemble operands before
// routing (ode's Newton matrices) stay in sync with the policy.
const (
	AutoDenseCutoff = 256
	autoMaxDensity  = 0.05
)

// Auto selects dense vs sparse per operand by dimension and density.
type Auto struct {
	// Sparse configures the sparse backend when selected.
	Sparse Sparse
}

// Name returns "auto".
func (Auto) Name() string { return "auto" }

// Pick returns the backend Auto would route a to.
func (a Auto) Pick(m *Matrix) LinearSolver {
	n := m.N()
	if n < AutoDenseCutoff && m.HasDense() {
		return Dense{}
	}
	nnz := m.NNZ()
	if float64(nnz) <= autoMaxDensity*float64(n)*float64(n) || !m.HasDense() {
		return a.Sparse
	}
	return Dense{}
}

// Factor routes to the picked backend.
func (a Auto) Factor(m *Matrix) (Factorization, error) {
	return a.Pick(m).Factor(m)
}

// FactorCtx routes to the picked backend with cancellation.
func (a Auto) FactorCtx(ctx context.Context, m *Matrix) (Factorization, error) {
	return a.Pick(m).FactorCtx(ctx, m)
}

// Kind names a backend selection policy for the layers above (core's
// Options, the experiment harness, cmd flags).
type Kind int

const (
	// KindAuto picks per matrix by size and density (the default).
	KindAuto Kind = iota
	// KindDense forces the dense LU.
	KindDense
	// KindSparse forces the sparse LU.
	KindSparse
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDense:
		return "dense"
	case KindSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// ByKind returns the backend for a policy.
func ByKind(k Kind) LinearSolver {
	switch k {
	case KindDense:
		return Dense{}
	case KindSparse:
		return Sparse{}
	default:
		return Auto{}
	}
}
