package solver

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"avtmor/internal/sparse"
)

// sameFactor asserts two factorizations are bit-identical in every
// stored field — the contract a completed Refactor makes against a
// fresh factorCSR of the same operand.
func sameFactor(t *testing.T, got, want *spLU) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n = %d, want %d", got.n, want.n)
	}
	for i := range want.colperm {
		if got.colperm[i] != want.colperm[i] {
			t.Fatalf("colperm[%d] = %d, want %d", i, got.colperm[i], want.colperm[i])
		}
	}
	for i := range want.prow {
		if got.prow[i] != want.prow[i] {
			t.Fatalf("prow[%d] = %d, want %d", i, got.prow[i], want.prow[i])
		}
	}
	if len(got.lidx) != len(want.lidx) || len(got.uidx) != len(want.uidx) {
		t.Fatalf("factor nnz L=%d U=%d, want L=%d U=%d", len(got.lidx), len(got.uidx), len(want.lidx), len(want.uidx))
	}
	for i := range want.lidx {
		if got.lidx[i] != want.lidx[i] || got.lval[i] != want.lval[i] {
			t.Fatalf("L slot %d = (%d, %v), want (%d, %v)", i, got.lidx[i], got.lval[i], want.lidx[i], want.lval[i])
		}
	}
	for i := range want.uidx {
		if got.uidx[i] != want.uidx[i] || got.uval[i] != want.uval[i] {
			t.Fatalf("U slot %d = (%d, %v), want (%d, %v)", i, got.uidx[i], got.uval[i], want.uidx[i], want.uval[i])
		}
	}
	for i := range want.d {
		if got.d[i] != want.d[i] {
			t.Fatalf("d[%d] = %v, want %v", i, got.d[i], want.d[i])
		}
	}
	for i := range want.lptr {
		if got.lptr[i] != want.lptr[i] || got.uptr[i] != want.uptr[i] {
			t.Fatalf("ptr[%d] = (%d, %d), want (%d, %d)", i, got.lptr[i], got.uptr[i], want.lptr[i], want.uptr[i])
		}
	}
}

// sameValues overwrites a's values in place with fresh ones, keeping
// the structure: the refactor contract is about patterns, and tests
// exercise it with many value sets over one recorded pattern.
func withValues(a *sparse.CSR, vals []float64) *sparse.CSR {
	return &sparse.CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: a.RowPtr, ColIdx: a.ColIdx, Val: vals}
}

// TestRefactorBitExact is the bit-exactness property test: across
// random patterns and value sets — gentle perturbations that keep the
// recorded pivot sequence and wild redraws that may reject it — every
// accepted Refactor must equal a fresh factorCSR of the same operand
// in every bit, and the crafted cases below pin the rejection paths.
func TestRefactorBitExact(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	accepted, rejected, refused, recorded := 0, 0, 0, 0
	nudges, nudgeAccepted := 0, 0
	for _, n := range []int{12, 47, 120} {
		for trial := 0; trial < 4; trial++ {
			a := randSparse(rng, n, 0.06)
			_, rec, err := factorCSRRecord(ctx, a, 0, true)
			if err != nil {
				t.Fatalf("n=%d trial=%d: record: %v", n, trial, err)
			}
			if rec == nil {
				// Legitimate: the reachability DFS over-approximates the
				// numeric pattern, and an unsymmetric random matrix often has
				// structurally-reached rows whose value is exactly zero — the
				// fresh path drops those, so recording refuses rather than
				// freeze a pattern a value change would diverge from.
				refused++
				continue
			}
			recorded++
			for mode := 0; mode < 6; mode++ {
				vals := make([]float64, len(a.Val))
				if mode < 3 {
					// Same values up to a relative nudge: the pivot sequence
					// almost always survives. Not always — at a catastrophic-
					// cancellation fill slot (value within an ulp of zero) the
					// nudge can land exactly on 0.0, which a fresh
					// factorization would drop from the pattern, so the replay
					// must reject there too.
					nudges++
					for i, v := range a.Val {
						vals[i] = v * (1 + 1e-9*rng.Float64())
					}
				} else {
					// Full redraw on the same pattern: acceptance is up to
					// threshold pivoting, equivalence is not.
					for i := range vals {
						vals[i] = rng.NormFloat64()
					}
				}
				av := withValues(a, vals)
				f, ok, err := rec.Refactor(ctx, av, 0, 1)
				if err != nil {
					t.Fatalf("n=%d mode=%d: refactor: %v", n, mode, err)
				}
				if !ok {
					rejected++
					continue
				}
				accepted++
				if mode < 3 {
					nudgeAccepted++
				}
				fresh, err := factorCSR(ctx, av, 0)
				if err != nil {
					t.Fatalf("n=%d mode=%d: accepted refactor but fresh factorization failed: %v", n, mode, err)
				}
				sameFactor(t, f, fresh)
			}
		}
	}
	if recorded == 0 {
		t.Fatal("no pattern was ever recorded; the symbolic path is dead")
	}
	if accepted == 0 {
		t.Fatal("no refactor was ever accepted; the numeric-only path is dead")
	}
	if nudgeAccepted*10 < nudges*9 {
		t.Fatalf("only %d/%d nudged refactors accepted; pivot replay is too brittle", nudgeAccepted, nudges)
	}
	t.Logf("recorded %d patterns (%d refused), accepted %d refactors (%d/%d nudges), rejected %d",
		recorded, refused, accepted, nudgeAccepted, nudges, rejected)
}

// TestRefactorShiftedPencil pins the amortization the ShiftedCache
// banks on: all nonzero shifts of G + σ·I present the identical union
// pattern (sparse.Add keeps exact-cancellation slots), so one symbolic
// analysis serves every expansion point, and the per-shift factors are
// bit-identical to factoring fresh.
func TestRefactorShiftedPencil(t *testing.T) {
	ctx := context.Background()
	g := rlcLineCSR(128) // 255 states, the paper's RLC-line shape
	eye := sparse.Eye(g.Rows)
	base := sparse.Add(1, g, 1.0, eye)
	_, rec, err := factorCSRRecord(ctx, base, 0, true)
	if err != nil || rec == nil {
		t.Fatalf("record: %v (rec=%v)", err, rec != nil)
	}
	for _, sigma := range []float64{2.5, 0.7, 10} {
		shifted := sparse.Add(1, g, sigma, eye)
		if !rec.matches(shifted) {
			t.Fatalf("σ=%v: shifted pencil pattern does not match the recorded one", sigma)
		}
		f, ok, err := rec.Refactor(ctx, shifted, 0, 1)
		if err != nil {
			t.Fatalf("σ=%v: %v", sigma, err)
		}
		if !ok {
			t.Fatalf("σ=%v: refactor rejected — the shifted-cache amortization premise is broken", sigma)
		}
		fresh, err := factorCSR(ctx, shifted, 0)
		if err != nil {
			t.Fatalf("σ=%v: fresh: %v", sigma, err)
		}
		sameFactor(t, f, fresh)
	}
}

// TestShiftedCacheSymbolicStats checks the counter wiring end to end:
// K distinct shifts through a ShiftedCache pay one symbolic analysis
// and K−1 numeric refactors.
func TestShiftedCacheSymbolicStats(t *testing.T) {
	g := rlcLineCSR(128)
	sc := NewShiftedCache(FromCSR(g), nil, Sparse{})
	shifts := []float64{1, 2.5, 0.7, 10}
	for _, sigma := range shifts {
		if _, err := sc.Factor(sigma); err != nil {
			t.Fatalf("σ=%v: %v", sigma, err)
		}
	}
	st := sc.Stats()
	if st.Factorizations != int64(len(shifts)) {
		t.Fatalf("factorizations = %d, want %d", st.Factorizations, len(shifts))
	}
	if st.SymbolicAnalyses != 1 || st.NumericRefactors != int64(len(shifts)-1) {
		t.Fatalf("analyses=%d refactors=%d, want 1 and %d", st.SymbolicAnalyses, st.NumericRefactors, len(shifts)-1)
	}
}

// TestRefactorPivotRejection forces the threshold-pivoting fallback: a
// value change that flips the pivot choice must reject the recorded
// sequence, and the SymbolicCache must then serve the fresh path —
// still bit-identical to an uncached factorization — and re-record.
func TestRefactorPivotRejection(t *testing.T) {
	ctx := context.Background()
	build := func(diag float64) *sparse.CSR {
		b := sparse.NewBuilder(2, 2)
		b.Add(0, 0, diag)
		b.Add(0, 1, 1)
		b.Add(1, 0, 1)
		b.Add(1, 1, diag)
		return b.Build()
	}
	strong, weak := build(10), build(0.01)
	const tol = 0.5
	_, rec, err := factorCSRRecord(ctx, strong, tol, true)
	if err != nil || rec == nil {
		t.Fatalf("record: %v (rec=%v)", err, rec != nil)
	}
	if _, ok, err := rec.Refactor(ctx, weak, tol, 1); err != nil || ok {
		// With tol 0.5 the dominant off-diagonal is the only eligible
		// pivot for the weak values, disagreeing with the recorded
		// diagonal choice.
		t.Fatalf("refactor of pivot-flipping values: ok=%v err=%v, want rejection", ok, err)
	}
	var cache SymbolicCache
	if _, err := cache.FactorCtx(ctx, Sparse{PivotTol: tol}, FromCSR(strong)); err != nil {
		t.Fatal(err)
	}
	got, err := cache.FactorCtx(ctx, Sparse{PivotTol: tol}, FromCSR(weak))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := factorCSR(ctx, weak, tol)
	if err != nil {
		t.Fatal(err)
	}
	sameFactor(t, got.(*spLU), fresh)
	if a, r := cache.Stats(); a != 2 || r != 0 {
		t.Fatalf("analyses=%d refactors=%d, want 2 and 0 (rejection re-records)", a, r)
	}
}

// TestSymbolicCachePatternMiss: a different sparsity pattern must miss
// the cache and trigger a fresh analysis, never a structural reuse.
func TestSymbolicCachePatternMiss(t *testing.T) {
	ctx := context.Background()
	a1 := rlcLineCSR(16)
	a2 := rlcLineCSR(17)
	_, rec, err := factorCSRRecord(ctx, a1, 0, true)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}
	if rec.matches(a2) {
		t.Fatal("pattern of a different circuit matched the recorded one")
	}
	var cache SymbolicCache
	for _, a := range []*sparse.CSR{a1, a2} {
		if _, err := cache.FactorCtx(ctx, Sparse{}, FromCSR(a)); err != nil {
			t.Fatal(err)
		}
	}
	if an, rf := cache.Stats(); an != 2 || rf != 0 {
		t.Fatalf("analyses=%d refactors=%d, want 2 and 0", an, rf)
	}
}

// blockLinesCSR builds a block-diagonal matrix of independent RLC
// lines: blocks disconnected components whose elimination levels
// overlap, so the level schedule is wide (width ≈ blocks) — the shape
// the level-parallel numeric phase exists for, which a single banded
// line (a width-1 chain of levels) never exercises.
func blockLinesCSR(blocks, sections int) *sparse.CSR {
	line := rlcLineCSR(sections)
	bn := line.Rows
	b := sparse.NewBuilder(blocks*bn, blocks*bn)
	for blk := 0; blk < blocks; blk++ {
		off := blk * bn
		for r := 0; r < bn; r++ {
			for k := line.RowPtr[r]; k < line.RowPtr[r+1]; k++ {
				b.Add(off+r, off+line.ColIdx[k], line.Val[k])
			}
		}
	}
	return b.Build()
}

// TestRefactorLevelParallelDeterminism proves the level-parallel
// numeric phase is schedule-independent: refactoring a wide workload
// with 1, 2, 4, and 8 workers yields factors bit-identical to each
// other and to a fresh factorization. Run under -race in CI, this is
// also the data-race witness for the per-level barrier discipline.
func TestRefactorLevelParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	a := blockLinesCSR(32, 8) // 480 states, level width ~32
	if a.Rows < parallelRefactorMinN {
		t.Fatalf("workload has %d states, below the parallel gate %d", a.Rows, parallelRefactorMinN)
	}
	_, rec, err := factorCSRRecord(ctx, a, 0, true)
	if err != nil || rec == nil {
		t.Fatalf("record: %v (rec=%v)", err, rec != nil)
	}
	if rec.maxWidth < parallelRefactorMinWidth {
		t.Fatalf("level schedule width %d never engages the parallel phase", rec.maxWidth)
	}
	fresh, err := factorCSR(ctx, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		f, ok, err := rec.Refactor(ctx, a, 0, workers)
		if err != nil || !ok {
			t.Fatalf("workers=%d: ok=%v err=%v", workers, ok, err)
		}
		sameFactor(t, f, fresh)
	}
}

// TestRefactorLevelParallelRejection: a pivot rejection inside a
// parallel level must surface as a clean ok=false, not a panic or a
// torn result, regardless of which worker hits it.
func TestRefactorLevelParallelRejection(t *testing.T) {
	ctx := context.Background()
	a := blockLinesCSR(32, 8)
	_, rec, err := factorCSRRecord(ctx, a, 0, true)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}
	// The line's couplings (±1) dominate its diagonals (−0.02, −0.1),
	// so the recorded pivots are coupling rows; blowing one block's
	// diagonal up by 1e9 flips that block's pivots to the diagonal
	// while every other block still agrees — the rejection races the
	// rest of the level's honest work.
	vals := append([]float64(nil), a.Val...)
	for r := 0; r < 15; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.ColIdx[k] == r {
				vals[k] *= 1e9
			}
		}
	}
	av := withValues(a, vals)
	for _, workers := range []int{2, 8} {
		f, ok, err := rec.Refactor(ctx, av, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ok || f != nil {
			t.Fatalf("workers=%d: pivot-flipped block was not rejected", workers)
		}
	}
}

// shiftedLine is the 1023-state benchmark pencil: the shifted RLC-line
// workload every solver bench in this repo is calibrated on.
func shiftedLine() *sparse.CSR {
	g := rlcLineCSR(512)
	return sparse.Add(1, g, 2.5, sparse.Eye(g.Rows))
}

// BenchmarkFactorFresh is the pre-split cost of one shifted factor
// step: full symbolic analysis plus the numeric phase, per op.
func BenchmarkFactorFresh(b *testing.B) {
	a := shiftedLine()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := factorCSR(ctx, a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFactorNumericOnly is the post-split cost of the same factor
// step when the pattern is already analyzed: Refactor into the
// recorded structure, no DFS, no CSC rebuild, no RCM. This is what
// every ShiftedCache miss after the first and every Newton
// refactorization of a transient pays.
func BenchmarkFactorNumericOnly(b *testing.B) {
	a := shiftedLine()
	ctx := context.Background()
	_, rec, err := factorCSRRecord(ctx, a, 0, true)
	if err != nil || rec == nil {
		b.Fatalf("record: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := rec.Refactor(ctx, a, 0, 1)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkFactorParallel measures the level-parallel numeric phase on
// a wide workload (64 independent 31-state blocks, level width ~64) at
// fixed worker counts. On the single-CPU bench host p=4 measures pure
// scheduling overhead — its ns/op is recorded ungated — while the
// allocs/op of both entries gate the fan-out's allocation discipline.
func BenchmarkFactorParallel(b *testing.B) {
	a := blockLinesCSR(64, 16) // 1984 states
	ctx := context.Background()
	_, rec, err := factorCSRRecord(ctx, a, 0, true)
	if err != nil || rec == nil {
		b.Fatalf("record: %v", err)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, ok, err := rec.Refactor(ctx, a, 0, p)
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
