package solver

import (
	"context"
	"fmt"
	"math"

	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

// Sparse LU: a left-looking Gilbert–Peierls factorization P·A·Q = L·U
// over CSR input. Q is the fill-reducing RCM column preorder (order.go);
// P is chosen per column by threshold pivoting — any row within
// PivotTol of the column maximum is eligible, and the eligible row with
// the fewest original nonzeros wins (the Markowitz bias toward sparse
// pivot rows). Each column costs one symbolic reachability DFS over the
// partial L plus a numeric scatter/gather, so the total work is
// proportional to the flops of the fill-in actually produced, not n³.

const defaultPivotTol = 0.1

// spLU is the sparse Factorization. The triangular factors are stored
// flat, CSC-style: column k of L occupies lidx/lval[lptr[k]:lptr[k+1]]
// (original-row indices and multipliers, unit diagonal implicit) and
// column k of U occupies uidx/uval[uptr[k]:uptr[k+1]] (earlier-step
// indices and values, diagonal in d). Flat slabs instead of per-column
// slices keep the factor build to O(log nnz) allocations — append-grown
// in step order, each column finalized before the next begins — and
// give the solves one contiguous metadata stream to traverse.
type spLU struct {
	n       int
	colperm []int // factored column k ↔ original column colperm[k]
	prow    []int // pivot (original) row of step k
	lptr    []int32
	lidx    []int32
	lval    []float64
	uptr    []int32
	uidx    []int32
	uval    []float64
	d       []float64
}

// ctxCheckStride is how many factored columns pass between ctx polls:
// coarse enough to stay invisible in the profile, fine enough that a
// canceled multi-thousand-column factorization aborts in well under a
// Krylov-step's worth of work.
const ctxCheckStride = 256

// factorCSR computes the factorization; a is not modified. ctx is
// polled every ctxCheckStride columns.
func factorCSR(ctx context.Context, a *sparse.CSR, pivotTol float64) (*spLU, error) {
	f, _, err := factorCSRRecord(ctx, a, pivotTol, false)
	return f, err
}

// factorCSRRecord is factorCSR with optional symbolic recording: with
// record set it additionally returns the symbolicLU capturing this
// factorization's pattern, pivot sequence, and scan orders for later
// numeric-only refactorizations (symbolic.go). The numeric path is
// byte-identical either way — recording only copies structure aside.
// The symbolic result is nil (with a valid factorization) when any L
// candidate was exactly zero: the fresh path drops such entries, so the
// recorded pattern would not describe what a fresh factorization of
// slightly different values does, and the replay's bit-exactness
// argument needs the recorded L structure to be drop-free.
func factorCSRRecord(ctx context.Context, a *sparse.CSR, pivotTol float64, record bool) (*spLU, *symbolicLU, error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("solver: sparse LU needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	if pivotTol <= 0 || pivotTol > 1 {
		pivotTol = defaultPivotTol
	}
	n := a.Rows
	f := &spLU{
		n:       n,
		colperm: rcmOrder(a),
		prow:    make([]int, n),
		lptr:    make([]int32, n+1),
		lidx:    make([]int32, 0, a.NNZ()),
		lval:    make([]float64, 0, a.NNZ()),
		uptr:    make([]int32, n+1),
		uidx:    make([]int32, 0, a.NNZ()),
		uval:    make([]float64, 0, a.NNZ()),
		d:       make([]float64, n),
	}
	// CSC view of A (column pointers into row-index/value arrays).
	colPtr, rowIdx, vals, cscSrc := toCSC(a, record)
	var rec *symbolicLU
	if record {
		rec = &symbolicLU{
			n:      n,
			rowPtr: a.RowPtr,
			colIdx: a.ColIdx,
			cscPtr: colPtr,
			cscSrc: cscSrc,
			pptr:   make([]int32, n+1),
			prows:  make([]int32, 0, 2*a.NNZ()),
		}
	}
	dropped := false // an exactly-zero L candidate poisons the recording
	// Static Markowitz row weights: original nonzeros per row.
	rowCount := make([]int, n)
	for r := 0; r < n; r++ {
		rowCount[r] = a.RowPtr[r+1] - a.RowPtr[r]
	}
	rowStep := make([]int, n) // original row → pivot step, -1 while unpivoted
	for i := range rowStep {
		rowStep[i] = -1
	}
	x := make([]float64, n)       // sparse accumulator over original rows
	inPat := make([]int, n)       // stamp: row already in this column's pattern
	visited := make([]int, n)     // stamp: step already on the DFS reach
	pattern := make([]int, 0, 16) // nonzero original rows of the working column
	topo := make([]int, 0, 16)    // reached steps in DFS postorder
	dfsStack := make([]int, 0, 16)
	posStack := make([]int, 0, 16)
	scale := 0.0
	for _, v := range a.Val {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	for k := 0; k < n; k++ {
		if k%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		j := f.colperm[k]
		stamp := k + 1
		pattern = pattern[:0]
		topo = topo[:0]
		// Scatter A[:, j] and run the reachability DFS from its pivoted
		// rows: step s reaches step t when prow[t] appears in L[:, s],
		// and every row of a reached step's L column joins the pattern.
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			r := rowIdx[p]
			x[r] = vals[p]
			inPat[r] = stamp
			pattern = append(pattern, r)
		}
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			if s := rowStep[rowIdx[p]]; s >= 0 && visited[s] != stamp {
				dfsStack = append(dfsStack[:0], s)
				posStack = append(posStack[:0], 0)
				visited[s] = stamp
				for len(dfsStack) > 0 {
					top := len(dfsStack) - 1
					s := dfsStack[top]
					advanced := false
					l0, l1 := int(f.lptr[s]), int(f.lptr[s+1])
					for pos := posStack[top]; pos < l1-l0; pos++ {
						r := int(f.lidx[l0+pos])
						if inPat[r] != stamp {
							inPat[r] = stamp
							pattern = append(pattern, r)
							x[r] = 0
						}
						if t := rowStep[r]; t >= 0 && visited[t] != stamp {
							posStack[top] = pos + 1
							dfsStack = append(dfsStack, t)
							posStack = append(posStack, 0)
							visited[t] = stamp
							advanced = true
							break
						}
					}
					if !advanced {
						topo = append(topo, s)
						dfsStack = dfsStack[:top]
						posStack = posStack[:top]
					}
				}
			}
		}
		// The pattern is complete once the DFS ends; record its exact
		// append order — the pivot replay's strict comparisons make ties
		// fall to the earliest-scanned row, so scan order is structure.
		if record {
			for _, r := range pattern {
				rec.prows = append(rec.prows, int32(r))
			}
			rec.pptr[k+1] = int32(len(rec.prows))
		}
		// Numeric left-looking updates in topological (reverse-postorder)
		// dependency order.
		for i := len(topo) - 1; i >= 0; i-- {
			s := topo[i]
			uv := x[f.prow[s]]
			if uv != 0 {
				for p := int(f.lptr[s]); p < int(f.lptr[s+1]); p++ {
					x[f.lidx[p]] -= f.lval[p] * uv
				}
			}
			f.uidx = append(f.uidx, int32(s))
			f.uval = append(f.uval, uv)
		}
		// Pivot: max-magnitude row, relaxed to the sparsest row within
		// pivotTol of the maximum.
		best, vmax := -1, 0.0
		for _, r := range pattern {
			if rowStep[r] >= 0 {
				continue
			}
			if av := math.Abs(x[r]); av > vmax {
				vmax, best = av, r
			}
		}
		if best < 0 || vmax == 0 || (scale > 0 && vmax < 1e-300*scale) {
			return nil, nil, fmt.Errorf("%w (column %d)", ErrSingular, j)
		}
		pivot := best
		bestCount := rowCount[pivot]
		for _, r := range pattern {
			if rowStep[r] >= 0 || r == pivot {
				continue
			}
			if av := math.Abs(x[r]); av >= pivotTol*vmax && rowCount[r] < bestCount {
				pivot, bestCount = r, rowCount[r]
			}
		}
		piv := x[pivot]
		f.d[k] = piv
		f.prow[k] = pivot
		rowStep[pivot] = k
		for _, r := range pattern {
			if rowStep[r] >= 0 {
				continue
			}
			if v := x[r]; v != 0 {
				f.lidx = append(f.lidx, int32(r))
				f.lval = append(f.lval, v/piv)
			} else {
				dropped = true
			}
		}
		f.lptr[k+1] = int32(len(f.lidx))
		f.uptr[k+1] = int32(len(f.uidx))
	}
	if record && !dropped {
		rec.colperm = f.colperm
		rec.prow = f.prow
		rec.lptr, rec.lidx = f.lptr, f.lidx
		rec.uptr, rec.uidx = f.uptr, f.uidx
		rec.rowStepAll = rowStep
		rec.rowCount = rowCount
		rec.levelPtr, rec.levelSteps, rec.maxWidth = levelSchedule(f.uptr, f.uidx, n)
		return f, rec, nil
	}
	return f, nil, nil
}

// toCSC builds column-compressed access to a CSR matrix. With withSrc
// it also returns each CSC slot's CSR value index — the gather map a
// symbolic recording keeps so numeric refactorizations can re-scatter
// fresh values without rebuilding the CSC (src is nil otherwise).
func toCSC(a *sparse.CSR, withSrc bool) (colPtr, rowIdx []int, vals []float64, src []int32) {
	n := a.Cols
	colPtr = make([]int, n+1)
	for _, c := range a.ColIdx {
		colPtr[c+1]++
	}
	for c := 0; c < n; c++ {
		colPtr[c+1] += colPtr[c]
	}
	rowIdx = make([]int, len(a.ColIdx))
	vals = make([]float64, len(a.Val))
	if withSrc {
		src = make([]int32, len(a.Val))
	}
	next := append([]int(nil), colPtr...)
	for r := 0; r < a.Rows; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			c := a.ColIdx[k]
			rowIdx[next[c]] = r
			vals[next[c]] = a.Val[k]
			if withSrc {
				src[next[c]] = int32(k)
			}
			next[c]++
		}
	}
	return colPtr, rowIdx, vals, src
}

// N returns the matrix dimension.
func (f *spLU) N() int { return f.n }

// Solve computes x with A·x = b (dst may alias b). Scratch comes from
// the shared workspace pool, so chain iterations solve allocation-free.
func (f *spLU) Solve(dst, b []float64) {
	n := f.n
	if len(b) != n || len(dst) != n {
		panic("solver: sparse Solve length mismatch")
	}
	// Forward: L·z = b over steps, consuming the residual in row space.
	res := mat.GetVec(n)
	defer mat.PutVec(res)
	copy(res, b)
	z := mat.GetVec(n)
	defer mat.PutVec(z)
	for k := 0; k < n; k++ {
		zk := res[f.prow[k]]
		z[k] = zk
		if zk == 0 {
			continue
		}
		for p := int(f.lptr[k]); p < int(f.lptr[k+1]); p++ {
			res[f.lidx[p]] -= f.lval[p] * zk
		}
	}
	// Backward: U·w = z, column-oriented.
	for k := n - 1; k >= 0; k-- {
		wk := z[k] / f.d[k]
		z[k] = wk
		if wk == 0 {
			continue
		}
		for p := int(f.uptr[k]); p < int(f.uptr[k+1]); p++ {
			z[f.uidx[p]] -= f.uval[p] * wk
		}
	}
	for k := 0; k < n; k++ {
		dst[f.colperm[k]] = z[k]
	}
}

// SolveBatch solves A·x = cols[c] for every column, in place: each
// column is read as a right-hand side and overwritten with its
// solution. One traversal of the factor's step metadata (pivot rows,
// column pointers) serves the whole batch, with a column-major inner
// loop over the right-hand sides; per-column arithmetic is identical to
// a loop of Solve calls, so results are bit-exact either way. Columns
// must not alias one another.
func (f *spLU) SolveBatch(cols [][]float64) {
	_ = f.solveBatch(nil, cols)
}

// SolveBatchCtx is SolveBatch with cooperative cancellation, polled
// every batchCtxStride steps. On abort the columns are left untouched —
// solutions only scatter back once the whole batch completes.
func (f *spLU) SolveBatchCtx(ctx context.Context, cols [][]float64) error {
	return f.solveBatch(ctx, cols)
}

func (f *spLU) solveBatch(ctx context.Context, cols [][]float64) error {
	n := f.n
	k := len(cols)
	if k == 0 {
		return nil
	}
	for _, c := range cols {
		if len(c) != n {
			panic("solver: sparse SolveBatch length mismatch")
		}
	}
	res := mat.GetVec(k * n)
	defer mat.PutVec(res)
	z := mat.GetVec(k * n)
	defer mat.PutVec(z)
	for c, col := range cols {
		copy(res[c*n:(c+1)*n], col)
	}
	for step := 0; step < n; step++ {
		if ctx != nil && step%batchSolveCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		pr := f.prow[step]
		p0, p1 := int(f.lptr[step]), int(f.lptr[step+1])
		for c := 0; c < k; c++ {
			rc := res[c*n : c*n+n]
			zk := rc[pr]
			z[c*n+step] = zk
			if zk == 0 {
				continue
			}
			for p := p0; p < p1; p++ {
				rc[f.lidx[p]] -= f.lval[p] * zk
			}
		}
	}
	for step := n - 1; step >= 0; step-- {
		if ctx != nil && step%batchSolveCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		dk := f.d[step]
		p0, p1 := int(f.uptr[step]), int(f.uptr[step+1])
		for c := 0; c < k; c++ {
			zc := z[c*n : c*n+n]
			wk := zc[step] / dk
			zc[step] = wk
			if wk == 0 {
				continue
			}
			for p := p0; p < p1; p++ {
				zc[f.uidx[p]] -= f.uval[p] * wk
			}
		}
	}
	for c, col := range cols {
		zc := z[c*n : (c+1)*n]
		for step := 0; step < n; step++ {
			col[f.colperm[step]] = zc[step]
		}
	}
	return nil
}

// batchSolveCtxStride is the per-step ctx poll cadence of the batched
// sparse substitution.
const batchSolveCtxStride = 512

// SolveMat solves A·X = B through one batched substitution over all
// columns.
func (f *spLU) SolveMat(b *mat.Dense) *mat.Dense {
	if b.R != f.n {
		panic("solver: sparse SolveMat shape mismatch")
	}
	x := mat.NewDense(b.R, b.C)
	cols := make([][]float64, b.C)
	for j := 0; j < b.C; j++ {
		cols[j] = b.Col(j)
	}
	f.SolveBatch(cols)
	for j, col := range cols {
		x.SetCol(j, col)
	}
	return x
}

// MinAbsPivot returns min |U_kk|.
func (f *spLU) MinAbsPivot() float64 {
	if f.n == 0 {
		return 0
	}
	m := math.Abs(f.d[0])
	for _, v := range f.d[1:] {
		if a := math.Abs(v); a < m {
			m = a
		}
	}
	return m
}

// NNZ returns the stored factor nonzeros (fill diagnostics).
func (f *spLU) NNZ() int {
	return f.n + len(f.lidx) + len(f.uidx)
}
