package solver

import (
	"avtmor/internal/sparse"
)

// Fill-reducing preorder: reverse Cuthill–McKee over the symmetrized
// pattern of A. Circuit matrices are near-banded once nodes are numbered
// along the physical topology, and RCM recovers that numbering for
// arbitrary input orderings, keeping the LU fill of ladder/grid
// structures close to the O(band·n) minimum.
//
// The adjacency is held flat (CSR-style offsets into one index slab)
// and the per-node degree sorts are in-place insertion sorts, so the
// whole preorder costs a handful of allocations regardless of n — it
// runs inside every sparse factor step, which the batch solve path
// wants allocation-lean.

// rcmOrder returns a permutation p such that factoring columns in the
// order p[0], p[1], … keeps the profile of A[p, p] small.
func rcmOrder(a *sparse.CSR) []int {
	n := a.Rows
	// Pass 1: count the directed endpoints of A + Aᵀ minus the diagonal
	// (duplicates included; they are deduped in place below).
	ptr := make([]int, n+1)
	for r := 0; r < n; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if c := a.ColIdx[k]; c != r {
				ptr[r+1]++
				ptr[c+1]++
			}
		}
	}
	for u := 0; u < n; u++ {
		ptr[u+1] += ptr[u]
	}
	// Pass 2: scatter neighbors in the same row-scan order the edge
	// list used to be built in. (Adjacency construction order is
	// preserved exactly; the degree sort below is a stable insertion
	// sort, so equal-degree tie-breaking — and with it the permutation
	// on tie-heavy graphs — may differ from the earlier unstable
	// sort.Slice. Both are valid RCM orders; nothing in the repo
	// depends on the old byte-level choice.)
	flat := make([]int32, ptr[n])
	next := make([]int, n)
	copy(next, ptr[:n])
	for r := 0; r < n; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if c := a.ColIdx[k]; c != r {
				flat[next[r]] = int32(c)
				next[r]++
				flat[next[c]] = int32(r)
				next[c]++
			}
		}
	}
	// Dedup each neighbor list in place (first occurrence wins), then
	// record degrees. end[u] is the deduped list's upper bound.
	end := make([]int, n)
	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		w := ptr[u]
		for k := ptr[u]; k < next[u]; k++ {
			v := int(flat[k])
			if seen[v] != u {
				seen[v] = u
				flat[w] = int32(v)
				w++
			}
		}
		end[u] = w
		deg[u] = w - ptr[u]
	}
	// Order each list by neighbor degree (stable insertion sort — the
	// lists are a few entries for circuit matrices).
	for u := 0; u < n; u++ {
		list := flat[ptr[u]:end[u]]
		for i := 1; i < len(list); i++ {
			v := list[i]
			j := i - 1
			for j >= 0 && deg[list[j]] > deg[v] {
				list[j+1] = list[j]
				j--
			}
			list[j+1] = v
		}
	}
	order := make([]int, 0, n)
	placed := make([]bool, n)
	queue := make([]int, 0, n)
	dist := make([]int32, n) // pseudoPeripheral scratch, stamped by visit
	visit := make([]int, n)
	for i := range visit {
		visit[i] = -1
	}
	visitID := 0
	for {
		// Start the next component at a minimum-degree unplaced node,
		// pushed toward the periphery by one extra BFS.
		start := -1
		for u := 0; u < n; u++ {
			if !placed[u] && (start < 0 || deg[u] < deg[start]) {
				start = u
			}
		}
		if start < 0 {
			break
		}
		start = pseudoPeripheral(flat, ptr, end, deg, placed, start, dist, visit, &visitID)
		queue = append(queue[:0], start)
		placed[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for k := ptr[u]; k < end[u]; k++ {
				if v := int(flat[k]); !placed[v] {
					placed[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	// Reverse (the "R" of RCM).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// pseudoPeripheral walks to an approximate end of the component: the
// lowest-degree node of the last BFS level, iterated until the
// eccentricity stops growing. dist/visit are caller-owned scratch
// (stamp-cleared per BFS, never reallocated).
func pseudoPeripheral(flat []int32, ptr, end, deg []int, placed []bool, start int, dist []int32, visit []int, visitID *int) int {
	best, bestEcc := start, -1
	queue := make([]int, 0, 64)
	for iter := 0; iter < 4; iter++ {
		*visitID++
		id := *visitID
		visit[best] = id
		dist[best] = 0
		queue = append(queue[:0], best)
		last, ecc := best, int32(0)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for k := ptr[u]; k < end[u]; k++ {
				v := int(flat[k])
				if placed[v] || visit[v] == id {
					continue
				}
				visit[v] = id
				dist[v] = dist[u] + 1
				queue = append(queue, v)
				if dist[v] > ecc || (dist[v] == ecc && deg[v] < deg[last]) {
					ecc, last = dist[v], v
				}
			}
		}
		if int(ecc) <= bestEcc {
			break
		}
		best, bestEcc = last, int(ecc)
	}
	return best
}

// Level schedule over the column-dependency DAG of a recorded
// factorization: step k depends on exactly the steps in its U column
// (uidx[uptr[k]:uptr[k+1]] — those are the partial columns its
// left-looking update reads), so level(k) = 1 + max level of its
// dependencies, and all steps of one level touch disjoint factor slabs
// and only completed lower-level columns. That makes a level the unit
// of safe parallelism for the numeric refactor phase: columns within
// it can fill in any order, on any number of workers, without changing
// a single bit of the result.
//
// Steps are emitted level-major, ascending within each level —
// levelSteps[levelPtr[l]:levelPtr[l+1]] — and maxWidth (the widest
// level) is the schedule's available parallelism: a banded RCM-ordered
// ladder degenerates to a chain (width 1, no parallel win), while
// block-structured or multi-component circuits fan wide.
func levelSchedule(uptr, uidx []int32, n int) (levelPtr, levelSteps []int32, maxWidth int) {
	lvl := make([]int32, n)
	nLevels := int32(0)
	for k := 0; k < n; k++ {
		l := int32(0)
		for p := uptr[k]; p < uptr[k+1]; p++ {
			if d := lvl[uidx[p]] + 1; d > l {
				l = d
			}
		}
		lvl[k] = l
		if l+1 > nLevels {
			nLevels = l + 1
		}
	}
	levelPtr = make([]int32, nLevels+1)
	for _, l := range lvl {
		levelPtr[l+1]++
	}
	for l := int32(0); l < nLevels; l++ {
		if w := int(levelPtr[l+1]); w > maxWidth {
			maxWidth = w
		}
		levelPtr[l+1] += levelPtr[l]
	}
	levelSteps = make([]int32, n)
	next := append([]int32(nil), levelPtr[:nLevels]...)
	for k := 0; k < n; k++ {
		levelSteps[next[lvl[k]]] = int32(k)
		next[lvl[k]]++
	}
	return levelPtr, levelSteps, maxWidth
}
