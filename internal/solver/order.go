package solver

import (
	"sort"

	"avtmor/internal/sparse"
)

// Fill-reducing preorder: reverse Cuthill–McKee over the symmetrized
// pattern of A. Circuit matrices are near-banded once nodes are numbered
// along the physical topology, and RCM recovers that numbering for
// arbitrary input orderings, keeping the LU fill of ladder/grid
// structures close to the O(band·n) minimum.

// rcmOrder returns a permutation p such that factoring columns in the
// order p[0], p[1], … keeps the profile of A[p, p] small.
func rcmOrder(a *sparse.CSR) []int {
	n := a.Rows
	// Adjacency of A + Aᵀ without the diagonal.
	adj := make([][]int, n)
	seen := make([]int, n)
	for i := range seen {
		seen[i] = -1
	}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		adj[u] = append(adj[u], v)
	}
	for r := 0; r < n; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			c := a.ColIdx[k]
			addEdge(r, c)
			addEdge(c, r)
		}
	}
	for u := range adj {
		// Dedup neighbor lists, then order by degree for the CM visit.
		list := adj[u][:0]
		for _, v := range adj[u] {
			if seen[v] != u {
				seen[v] = u
				list = append(list, v)
			}
		}
		adj[u] = list
	}
	deg := make([]int, n)
	for u := range adj {
		deg[u] = len(adj[u])
	}
	for u := range adj {
		sort.Slice(adj[u], func(i, j int) bool { return deg[adj[u][i]] < deg[adj[u][j]] })
	}
	order := make([]int, 0, n)
	placed := make([]bool, n)
	queue := make([]int, 0, n)
	for {
		// Start the next component at a minimum-degree unplaced node,
		// pushed toward the periphery by one extra BFS.
		start := -1
		for u := 0; u < n; u++ {
			if !placed[u] && (start < 0 || deg[u] < deg[start]) {
				start = u
			}
		}
		if start < 0 {
			break
		}
		start = pseudoPeripheral(adj, deg, placed, start)
		queue = append(queue[:0], start)
		placed[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, v := range adj[u] {
				if !placed[v] {
					placed[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	// Reverse (the "R" of RCM).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// pseudoPeripheral walks to an approximate end of the component: the
// lowest-degree node of the last BFS level, iterated until the
// eccentricity stops growing.
func pseudoPeripheral(adj [][]int, deg []int, placed []bool, start int) int {
	dist := make(map[int]int)
	best, bestEcc := start, -1
	for iter := 0; iter < 4; iter++ {
		for k := range dist {
			delete(dist, k)
		}
		dist[best] = 0
		queue := []int{best}
		last, ecc := best, 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if placed[v] {
					continue
				}
				if _, ok := dist[v]; !ok {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
					if dist[v] > ecc || (dist[v] == ecc && deg[v] < deg[last]) {
						ecc, last = dist[v], v
					}
				}
			}
		}
		if ecc <= bestEcc {
			break
		}
		best, bestEcc = last, ecc
	}
	return best
}
