package solver

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

// Symbolic/numeric split of the sparse LU. One factorization's cost has
// two unequal halves: the symbolic analysis (RCM preorder, CSC
// conversion, per-column reachability DFS, fill-pattern discovery, slab
// layout) depends only on the sparsity pattern, while the numeric phase
// (scatter, left-looking updates, pivoting, division) depends on the
// values. Every shifted pencil G + σ·C of a multipoint reduce and every
// Newton matrix of a stiff transient shares one pattern, so the
// analysis is pure per-pattern overhead that the pre-split code paid
// per factorization. A symbolicLU records the analysis once; Refactor
// then fills fresh values into the recorded structure with no DFS, no
// toCSC, no RCM — and a level schedule over the column-dependency DAG
// lets the numeric phase use multiple cores without perturbing a bit
// of the result.
//
// Bit-exactness contract: a completed Refactor is bit-identical to
// factorCSR on the same operand. The replay does not trust the
// recorded pivots — it re-runs the fresh selection rule (strict
// max-magnitude scan plus the Markowitz relaxation, over the recorded
// scan order, which equals the fresh scan order while all earlier
// pivots agree) and rejects on the first disagreement. An exactly-zero
// L candidate also rejects: the fresh path drops such entries from the
// pattern, which changes downstream reachability, so the recorded
// structure no longer describes what a fresh factorization would do.
// Rejection is not an error — the caller falls back to one fresh full
// factorization (which may also re-record). ROMs therefore stay
// byte-identical whether or not a symbolic cache is interposed, at any
// GOMAXPROCS.

// symbolicLU is the per-pattern symbolic object: everything a
// factorization of one sparsity pattern computes that its values cannot
// change. All fields are immutable after factorCSRRecord returns; the
// structural slices (colperm, prow, lptr/lidx, uptr/uidx) are shared by
// every spLU refactored from this object.
type symbolicLU struct {
	n int
	// Pattern identity of the analyzed operand. These alias the analyzed
	// CSR's index slabs (CSR structure is immutable by convention in this
	// codebase); matches compares against them before any reuse.
	rowPtr []int
	colIdx []int
	// Structure shared with every refactored spLU.
	colperm []int
	prow    []int
	lptr    []int32
	lidx    []int32
	uptr    []int32
	uidx    []int32
	// Replay state. rowStepAll maps original row → pivot step of the
	// recorded sequence (-1 never pivoted cannot occur: every row pivots
	// exactly once); "pivoted before step k" during replay is
	// rowStepAll[r] < k, which equals the fresh rowStep test while all
	// earlier pivots agree. rowCount is the static Markowitz weight
	// (original nonzeros per row — structural).
	rowStepAll []int
	rowCount   []int
	// CSC view of the pattern: column j's slots are cscPtr[j]:cscPtr[j+1]
	// and cscSrc maps each slot to its CSR value index — the gather map
	// that re-scatters fresh values without rebuilding the CSC.
	cscPtr []int
	cscSrc []int32
	// Per-step scatter pattern in the exact append order of the recording
	// factorization: prows[pptr[k]:pptr[k+1]], the first
	// cscPtr[j+1]-cscPtr[j] entries being column j's A rows in CSC order,
	// the rest the DFS fill in discovery order. The order is load-bearing:
	// the pivot replay's strict comparisons make ties fall to the
	// earliest-scanned row, exactly as in the fresh scan.
	pptr  []int32
	prows []int32
	// Level schedule over the column-dependency DAG (order.go);
	// maxWidth is the widest level, the schedule's usable parallelism.
	levelPtr   []int32
	levelSteps []int32
	maxWidth   int
}

// matches reports whether a carries exactly the analyzed sparsity
// pattern. Shared index slabs short-circuit; otherwise one O(nnz)
// integer compare — noise next to even a numeric-only refactor.
func (s *symbolicLU) matches(a *sparse.CSR) bool {
	if a.Rows != s.n || a.Cols != s.n || len(a.ColIdx) != len(s.colIdx) {
		return false
	}
	if &a.RowPtr[0] == &s.rowPtr[0] && (len(s.colIdx) == 0 || &a.ColIdx[0] == &s.colIdx[0]) {
		return true
	}
	for i, p := range s.rowPtr {
		if a.RowPtr[i] != p {
			return false
		}
	}
	for i, c := range s.colIdx {
		if a.ColIdx[i] != c {
			return false
		}
	}
	return true
}

// Level-parallel engagement thresholds: below parallelRefactorMinN
// states the whole numeric phase is microseconds and the fan-out is
// pure overhead; a level narrower than parallelRefactorMinWidth runs
// inline in the coordinator (banded circuits degenerate to width-1
// chains — see levelSchedule).
const (
	parallelRefactorMinN     = 256
	parallelRefactorMinWidth = 4
)

// Refactor fills fresh numeric values into the recorded structure — no
// DFS, no CSC rebuild, no RCM — and reports ok=false when threshold
// pivoting rejects the recorded pivot sequence for these values (or a
// computed L entry is exactly zero, which would have changed the fresh
// pattern). The caller answers a rejection with one fresh full
// factorization; a completed refactor is bit-identical to what that
// fresh factorization would have produced. a must match the recorded
// pattern (the caller checks matches). workers > 1 engages the
// level-parallel numeric phase, 0 means GOMAXPROCS; the worker count
// never changes the result, only the wall clock.
func (s *symbolicLU) Refactor(ctx context.Context, a *sparse.CSR, pivotTol float64, workers int) (f *spLU, ok bool, err error) {
	if pivotTol <= 0 || pivotTol > 1 {
		pivotTol = defaultPivotTol
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	n := s.n
	f = &spLU{
		n:       n,
		colperm: s.colperm,
		prow:    s.prow,
		lptr:    s.lptr,
		lidx:    s.lidx,
		uptr:    s.uptr,
		uidx:    s.uidx,
		lval:    make([]float64, len(s.lidx)),
		uval:    make([]float64, len(s.uidx)),
		d:       make([]float64, n),
	}
	scale := 0.0
	for _, v := range a.Val {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && n >= parallelRefactorMinN && s.maxWidth >= parallelRefactorMinWidth {
		ok, err := s.refactorLevels(ctx, f, a.Val, pivotTol, scale, workers)
		if !ok || err != nil {
			return nil, false, err
		}
		return f, true, nil
	}
	x := mat.GetVec(n)
	defer mat.PutVec(x)
	for k := 0; k < n; k++ {
		if k%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
		}
		if !s.refactorStep(f, a.Val, pivotTol, scale, k, x) {
			return nil, false, nil
		}
	}
	return f, true, nil
}

// refactorStep computes step k's numeric column into f using scratch x
// (length n, arbitrary prior contents — every read slot is written by
// the scatter first). It returns false when the recorded pivot sequence
// is rejected for these values. Writes touch only step k's disjoint
// slab ranges (f.lval/f.uval slices fixed by lptr/uptr, f.d[k]) and
// reads touch only A's values and lower-level columns' completed slabs,
// which is what makes the level-parallel caller race-free.
func (s *symbolicLU) refactorStep(f *spLU, vals []float64, pivotTol, scale float64, k int, x []float64) bool {
	j := s.colperm[k]
	rows := s.prows[s.pptr[k]:s.pptr[k+1]]
	c0 := s.cscPtr[j]
	na := s.cscPtr[j+1] - c0
	// Scatter A[:, j] through the recorded gather map, zero the fill.
	for i, r := range rows {
		if i < na {
			x[r] = vals[s.cscSrc[c0+i]]
		} else {
			x[r] = 0
		}
	}
	// Left-looking updates in the recorded application order (fresh
	// stores uidx in reverse postorder, i.e. already in the order it
	// applied them — replay walks it forward).
	for q := int(s.uptr[k]); q < int(s.uptr[k+1]); q++ {
		st := s.uidx[q]
		uv := x[s.prow[st]]
		f.uval[q] = uv
		if uv != 0 {
			for p := int(s.lptr[st]); p < int(s.lptr[st+1]); p++ {
				x[s.lidx[p]] -= f.lval[p] * uv
			}
		}
	}
	// Pivot replay: re-run the fresh selection rule over the recorded
	// scan order and reject on any disagreement with the recorded pivot.
	best, vmax := -1, 0.0
	for _, r32 := range rows {
		r := int(r32)
		if st := s.rowStepAll[r]; st < k {
			continue // pivoted at an earlier step of the agreed sequence
		}
		if av := math.Abs(x[r]); av > vmax {
			vmax, best = av, r
		}
	}
	if best < 0 || vmax == 0 || (scale > 0 && vmax < 1e-300*scale) {
		return false // fresh would report ErrSingular; let it say so
	}
	pivot := best
	bestCount := s.rowCount[pivot]
	for _, r32 := range rows {
		r := int(r32)
		if s.rowStepAll[r] < k || r == pivot {
			continue
		}
		if av := math.Abs(x[r]); av >= pivotTol*vmax && s.rowCount[r] < bestCount {
			pivot, bestCount = r, s.rowCount[r]
		}
	}
	if pivot != s.prow[k] {
		return false
	}
	piv := x[pivot]
	f.d[k] = piv
	for p := int(s.lptr[k]); p < int(s.lptr[k+1]); p++ {
		v := x[s.lidx[p]]
		if v == 0 {
			return false // fresh would drop this entry and change the pattern
		}
		f.lval[p] = v / piv
	}
	return true
}

// refactorLevels is the level-parallel numeric phase: levels run in
// order, columns within a wide level are chunked across workers.
// Determinism is by construction, not by reduction order: each column's
// arithmetic reads only columns from completed earlier levels (the
// per-level WaitGroup is the happens-before edge) and writes only its
// own slab ranges, so there is no cross-column accumulation whose order
// a scheduler could perturb — any GOMAXPROCS yields identical bits.
func (s *symbolicLU) refactorLevels(ctx context.Context, f *spLU, vals []float64, pivotTol, scale float64, workers int) (bool, error) {
	n := s.n
	x0 := mat.GetVec(n)
	defer mat.PutVec(x0)
	// rejected only ever flips false→true; workers set it, the
	// coordinator reads it after each level's barrier. A rejected level
	// may leave later slab entries unwritten — the whole factorization is
	// discarded, so partially-filled values are never observed.
	var rejected atomic.Bool
	sinceCheck := 0
	for l := 0; l+1 < len(s.levelPtr); l++ {
		if sinceCheck >= ctxCheckStride { // amortized poll at the serial path's cadence
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		steps := s.levelSteps[s.levelPtr[l]:s.levelPtr[l+1]]
		sinceCheck += len(steps)
		if len(steps) < parallelRefactorMinWidth {
			for _, k := range steps {
				if !s.refactorStep(f, vals, pivotTol, scale, int(k), x0) {
					return false, nil
				}
			}
			continue
		}
		w := workers
		if w > len(steps) {
			w = len(steps)
		}
		var wg sync.WaitGroup
		for wi := 0; wi < w; wi++ {
			chunk := steps[wi*len(steps)/w : (wi+1)*len(steps)/w]
			wg.Add(1)
			go func() {
				defer wg.Done()
				x := mat.GetVec(n)
				defer mat.PutVec(x)
				for _, k := range chunk {
					if rejected.Load() {
						return
					}
					if !s.refactorStep(f, vals, pivotTol, scale, int(k), x) {
						rejected.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		if rejected.Load() {
			return false, nil
		}
	}
	return true, nil
}

// SymbolicCache holds one symbolic analysis and serves numeric-only
// refactorizations against it. It is the reuse unit the layers above
// hold per system: ShiftedCache keeps one for G + σ·C across all
// shifts, ode.Trapezoidal one across all Newton matrices of a
// transient. The zero value is ready to use; a nil *SymbolicCache
// degrades to plain backend factorization.
type SymbolicCache struct {
	mu  sync.Mutex
	sym *symbolicLU // guarded by mu

	analyses  atomic.Int64 // full symbolic+numeric factorizations recorded
	refactors atomic.Int64 // factorizations served numeric-only
}

// Stats reports how many factorizations paid the full symbolic
// analysis and how many were served numeric-only from the cached
// pattern.
func (c *SymbolicCache) Stats() (analyses, refactors int64) {
	if c == nil {
		return 0, 0
	}
	return c.analyses.Load(), c.refactors.Load()
}

// FactorCtx factors m through ls, serving the numeric-only path when ls
// resolves to the sparse backend and m matches the cached pattern. On a
// pattern miss or a pivot rejection it runs the fresh factorization and
// re-records the symbolic object (the new pattern, or the pivot
// sequence that suits the new values). Dense-routed operands pass
// through untouched. Results are bit-identical to ls.FactorCtx in every
// case — the cache changes the cost of a factorization, never its bits.
func (c *SymbolicCache) FactorCtx(ctx context.Context, ls LinearSolver, m *Matrix) (Factorization, error) {
	if a, ok := ls.(Auto); ok {
		ls = a.Pick(m)
	}
	sp, ok := ls.(Sparse)
	if !ok || c == nil {
		return ls.FactorCtx(ctx, m)
	}
	a := m.AsCSR()
	c.mu.Lock()
	sym := c.sym
	c.mu.Unlock()
	if sym != nil && sym.matches(a) {
		f, ok, err := sym.Refactor(ctx, a, sp.PivotTol, 0)
		if err != nil {
			return nil, err
		}
		if ok {
			c.refactors.Add(1)
			return f, nil
		}
	}
	f, rec, err := factorCSRRecord(ctx, a, sp.PivotTol, true)
	if err != nil {
		return nil, err
	}
	c.analyses.Add(1)
	if rec != nil {
		c.mu.Lock()
		c.sym = rec
		c.mu.Unlock()
	}
	return f, nil
}
