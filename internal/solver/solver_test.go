package solver

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

// randSparse builds a random diagonally-dominant n×n CSR with about
// fill·n² off-diagonal nonzeros (dominance keeps both backends near
// machine precision, so the agreement check is a pure algebra test).
func randSparse(rng *rand.Rand, n int, fill float64) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	rowAbs := make([]float64, n)
	offDiag := int(fill * float64(n) * float64(n))
	for k := 0; k < offDiag; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.NormFloat64()
		b.Add(i, j, v)
		rowAbs[i] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return b.Build()
}

func TestSparseLUMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 17, 60, 140} {
		for trial := 0; trial < 3; trial++ {
			a := randSparse(rng, n, 0.08)
			fs, err := (Sparse{}).Factor(FromCSR(a))
			if err != nil {
				t.Fatalf("n=%d: sparse factor: %v", n, err)
			}
			fd, err := (Dense{}).Factor(FromDense(a.Dense()))
			if err != nil {
				t.Fatalf("n=%d: dense factor: %v", n, err)
			}
			b := mat.RandVec(rng, n)
			xs := make([]float64, n)
			xd := make([]float64, n)
			fs.Solve(xs, b)
			fd.Solve(xd, b)
			for i := range xs {
				if d := math.Abs(xs[i] - xd[i]); d > 1e-12*(1+math.Abs(xd[i])) {
					t.Fatalf("n=%d trial %d: solution mismatch at %d: sparse %g dense %g", n, trial, i, xs[i], xd[i])
				}
			}
			// Residual check directly against A.
			res := make([]float64, n)
			a.MulVec(res, xs)
			mat.Axpy(-1, b, res)
			if r := mat.NormInf(res); r > 1e-10*(1+mat.NormInf(b)) {
				t.Fatalf("n=%d: residual %g too large", n, r)
			}
		}
	}
}

func TestSparseLUNonDominantPivoting(t *testing.T) {
	// Zero leading diagonal forces a genuine row exchange; the
	// threshold pivot must keep the factorization accurate.
	b := sparse.NewBuilder(3, 3)
	b.Add(0, 1, 2)
	b.Add(0, 2, 1)
	b.Add(1, 0, 4)
	b.Add(1, 1, 1)
	b.Add(2, 0, 1)
	b.Add(2, 2, 3)
	a := b.Build()
	f, err := (Sparse{}).Factor(FromCSR(a))
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, 2, 3}
	x := make([]float64, 3)
	f.Solve(x, rhs)
	res := make([]float64, 3)
	a.MulVec(res, x)
	mat.Axpy(-1, rhs, res)
	if mat.NormInf(res) > 1e-12 {
		t.Fatalf("residual %g", mat.NormInf(res))
	}
}

func TestSparseLUSingular(t *testing.T) {
	// Structurally singular: an empty row.
	b := sparse.NewBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(2, 2, 1)
	if _, err := (Sparse{}).Factor(FromCSR(b.Build())); err == nil {
		t.Fatal("expected singular error for an empty row")
	} else if !strings.Contains(err.Error(), "singular") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Numerically singular: two identical rows.
	b2 := sparse.NewBuilder(2, 2)
	b2.Add(0, 0, 1)
	b2.Add(0, 1, 2)
	b2.Add(1, 0, 1)
	b2.Add(1, 1, 2)
	if _, err := (Sparse{}).Factor(FromCSR(b2.Build())); err == nil {
		t.Fatal("expected singular error for a rank-deficient matrix")
	}
	// Non-square input is rejected.
	if _, err := (Sparse{}).Factor(FromCSR(sparse.NewBuilder(2, 3).Build())); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSparseLUSolveMatAndPivotWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSparse(rng, 40, 0.1)
	f, err := (Sparse{}).Factor(FromCSR(a))
	if err != nil {
		t.Fatal(err)
	}
	if f.MinAbsPivot() <= 0 {
		t.Fatal("MinAbsPivot must be positive for a nonsingular matrix")
	}
	bm := mat.RandDense(rng, 40, 3)
	x := f.SolveMat(bm)
	for j := 0; j < 3; j++ {
		col := x.Col(j)
		prod := make([]float64, 40)
		a.MulVec(prod, col)
		for i := 0; i < 40; i++ {
			if math.Abs(prod[i]-bm.At(i, j)) > 1e-10 {
				t.Fatalf("SolveMat residual at (%d,%d)", i, j)
			}
		}
	}
}

func TestBandedFillStaysLinear(t *testing.T) {
	// A tridiagonal system (the RLC-line pattern): factor nonzeros must
	// stay O(n), not O(n²) — the point of the RCM preorder.
	n := 500
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i > 0 {
			b.Add(i, i-1, 1)
		}
		if i < n-1 {
			b.Add(i, i+1, 1)
		}
	}
	f, err := factorCSR(context.Background(), b.Build(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if nnz := f.NNZ(); nnz > 10*n {
		t.Fatalf("tridiagonal fill blew up: %d stored entries for n=%d", nnz, n)
	}
}

func TestRCMOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 9, 64} {
		p := rcmOrder(randSparse(rng, n, 0.05))
		if len(p) != n {
			t.Fatalf("n=%d: got %d entries", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShiftedCacheIdentityDescriptor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSparse(rng, 30, 0.1)
	for _, ls := range []LinearSolver{Dense{}, Sparse{}, Auto{}} {
		sc := NewShiftedCache(Operand(a.Dense(), a), nil, ls)
		for _, sigma := range []float64{0, -0.7, 2.5} {
			f, err := sc.Factor(sigma)
			if err != nil {
				t.Fatalf("%s σ=%g: %v", ls.Name(), sigma, err)
			}
			// Check (A + σI)·x = b.
			b := mat.RandVec(rng, 30)
			x := make([]float64, 30)
			f.Solve(x, b)
			res := make([]float64, 30)
			a.MulVec(res, x)
			mat.Axpy(sigma, x, res)
			mat.Axpy(-1, b, res)
			if mat.NormInf(res) > 1e-10 {
				t.Fatalf("%s σ=%g: residual %g", ls.Name(), sigma, mat.NormInf(res))
			}
			// Second request hits the cache (same pointer).
			f2, _ := sc.Factor(sigma)
			if f2 != f {
				t.Fatalf("%s σ=%g: cache miss on repeat", ls.Name(), sigma)
			}
		}
	}
}

func TestShiftedCacheGeneralDescriptor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randSparse(rng, 20, 0.1)
	c := randSparse(rng, 20, 0.1)
	sc := NewShiftedCache(FromCSR(g), FromCSR(c), Sparse{})
	sigma := 0.3
	f, err := sc.Factor(sigma)
	if err != nil {
		t.Fatal(err)
	}
	b := mat.RandVec(rng, 20)
	x := make([]float64, 20)
	f.Solve(x, b)
	res := make([]float64, 20)
	g.MulVec(res, x)
	tmp := make([]float64, 20)
	c.MulVec(tmp, x)
	mat.Axpy(sigma, tmp, res)
	mat.Axpy(-1, b, res)
	if mat.NormInf(res) > 1e-10 {
		t.Fatalf("residual %g", mat.NormInf(res))
	}
}

func TestShiftedCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Two operand flavors: CSR-only, and dense-only above the routing
	// cutoff so Auto sends concurrent factorizations through the lazy
	// AsCSR conversion of one shared Matrix (the race-prone path).
	small := randSparse(rng, 50, 0.08)
	big := randSparse(rng, 300, 0.005)
	for name, op := range map[string]*Matrix{
		"csr-only":   FromCSR(small),
		"dense-only": FromDense(big.Dense()),
	} {
		sc := NewShiftedCache(op, nil, Auto{})
		shifts := []float64{0, -0.1, -0.2, 0.4, 1.1, 2.2}
		var wg sync.WaitGroup
		errs := make([]error, 24)
		for w := 0; w < len(errs); w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, errs[w] = sc.Factor(shifts[w%len(shifts)])
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestAutoRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	small := randSparse(rng, 8, 0.3)
	if got := (Auto{}).Pick(Operand(small.Dense(), small)).Name(); got != "dense" {
		t.Fatalf("small operand routed to %s", got)
	}
	big := randSparse(rng, 400, 0.005)
	if got := (Auto{}).Pick(Operand(big.Dense(), big)).Name(); got != "sparse" {
		t.Fatalf("large sparse operand routed to %s", got)
	}
	if got := (Auto{}).Pick(FromCSR(big)).Name(); got != "sparse" {
		t.Fatalf("CSR-only operand routed to %s", got)
	}
	dense := mat.RandDense(rng, 400, 400)
	for i := 0; i < 400; i++ {
		dense.Add(i, i, 500)
	}
	if got := (Auto{}).Pick(FromDense(dense)).Name(); got != "dense" {
		t.Fatalf("dense operand routed to %s", got)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindAuto, KindDense, KindSparse} {
		if ByKind(k).Name() != k.String() && k != KindAuto {
			t.Fatalf("kind %v mismatch", k)
		}
	}
}

func TestDenseBackendMatchesLUPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := mat.RandDense(rng, 12, 12)
	for i := 0; i < 12; i++ {
		a.Add(i, i, 15)
	}
	f, err := (Dense{}).Factor(FromDense(a))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := lu.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := mat.RandVec(rng, 12)
	x1 := make([]float64, 12)
	x2 := make([]float64, 12)
	f.Solve(x1, b)
	ref.Solve(x2, b)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("dense backend must be the package-lu factorization")
		}
	}
}
