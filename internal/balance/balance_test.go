package balance

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
)

func lyapResidual(a, x, rhs *mat.Dense) float64 {
	// ‖A·X + X·Aᵀ + RHS‖∞.
	return a.Mul(x).Plus(x.Mul(a.T())).Plus(rhs).MaxAbs()
}

func TestGramiansResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandStable(rng, 12, 0.3)
	b := mat.RandDense(rng, 12, 2)
	c := mat.RandDense(rng, 1, 12)
	p, q, err := Gramians(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if r := lyapResidual(a, p, b.Mul(b.T())); r > 1e-8 {
		t.Fatalf("P residual %g", r)
	}
	if r := lyapResidual(a.T(), q, c.T().Mul(c)); r > 1e-8 {
		t.Fatalf("Q residual %g", r)
	}
	// Gramians of a stable system are PSD: check xᵀPx ≥ 0 on probes.
	for trial := 0; trial < 10; trial++ {
		x := mat.RandVec(rng, 12)
		px := make([]float64, 12)
		p.MulVec(px, x)
		if mat.Dot(x, px) < -1e-10 {
			t.Fatal("P not PSD")
		}
	}
}

func TestHSVDiagonalKnown(t *testing.T) {
	// For A = diag(−a_i), B = C ᵀ = e_i-ish decoupled SISO sums the HSVs
	// are b_i·c_i/(2a_i).
	a := mat.Diag([]float64{-1, -2})
	b := mat.FromRows([][]float64{{1}, {2}})
	c := mat.FromRows([][]float64{{3, 1}})
	hsv, err := HSV(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// P = diag(b_i²/(2a_i)) + coupling; compute reference numerically via
	// the known closed form for this 2×2 case is messy — instead check
	// monotonicity and positivity, and cross-check σ_max against the
	// Hankel-norm lower bound ‖H‖_∞/2 ≤ ... keep it simple: positive,
	// sorted.
	if len(hsv) != 2 || hsv[0] < hsv[1] || hsv[1] < 0 {
		t.Fatalf("hsv = %v", hsv)
	}
	if hsv[0] < 1 { // the (b=2,c=1,a=2) + (b=1,c=3,a=1) system is not tiny
		t.Fatalf("σ_max = %v suspiciously small", hsv[0])
	}
}

func TestSuggestOrder(t *testing.T) {
	hsv := []float64{1, 0.5, 1e-3, 1e-9}
	if k := SuggestOrder(hsv, 1e-2); k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if k := SuggestOrder(hsv, 1e-6); k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	if k := SuggestOrder(nil, 1e-2); k != 0 {
		t.Fatalf("empty: %d", k)
	}
	if k := SuggestOrder([]float64{1}, 2); k != 1 {
		t.Fatalf("floor: %d", k)
	}
}

// transfer evaluates C·(sI−A)⁻¹·B (SISO-ish: returns the (0,0) entry).
func transfer(t *testing.T, a, b, c *mat.Dense, s complex128) complex128 {
	t.Helper()
	n := a.R
	f, err := lu.ShiftedReal(a.Clone().Scale(-1), s)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = complex(b.At(i, 0), 0)
	}
	f.Solve(x, x)
	var y complex128
	for i := 0; i < n; i++ {
		y += complex(c.At(0, i), 0) * x[i]
	}
	return y
}

func TestTruncatePreservesTransfer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.RandStable(rng, 16, 0.3)
	b := mat.RandDense(rng, 16, 1)
	c := mat.RandDense(rng, 1, 16)
	hsv, err := HSV(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	k := SuggestOrder(hsv, 1e-6)
	red, err := Truncate(a, b, c, k)
	if err != nil {
		t.Fatal(err)
	}
	if red.A.R != k {
		t.Fatalf("reduced order %d, want %d", red.A.R, k)
	}
	// Balanced-truncation error bound: ‖H − Ĥ‖∞ ≤ 2·Σ_{i>k} σ_i.
	bound := 0.0
	for i := k; i < len(hsv); i++ {
		bound += 2 * hsv[i]
	}
	for _, s := range []complex128{0, 1i, 0.5 + 2i, 10i} {
		hFull := transfer(t, a, b, c, s)
		hRed := transfer(t, red.A, red.B, red.C, s)
		if d := cmplx.Abs(hFull - hRed); d > bound*10+1e-9 {
			t.Fatalf("s=%v: |ΔH| = %g exceeds bound %g", s, d, bound)
		}
	}
}

func TestTruncateObliqueProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandStable(rng, 10, 0.3)
	b := mat.RandDense(rng, 10, 1)
	c := mat.RandDense(rng, 1, 10)
	red, err := Truncate(a, b, c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Wᵀ·V = I (oblique projector property).
	if d := red.W.T().Mul(red.V).Sub(mat.Eye(4)).MaxAbs(); d > 1e-8 {
		t.Fatalf("WᵀV − I = %g", d)
	}
}

func TestTruncateBalancedGramians(t *testing.T) {
	// The reduced system's gramians must both equal diag(σ_1..σ_k).
	rng := rand.New(rand.NewSource(4))
	a := mat.RandStable(rng, 12, 0.3)
	b := mat.RandDense(rng, 12, 1)
	c := mat.RandDense(rng, 1, 12)
	const k = 5
	red, err := Truncate(a, b, c, k)
	if err != nil {
		t.Fatal(err)
	}
	p, q, err := Gramians(red.A, red.B, red.C)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if math.Abs(p.At(i, i)-red.HSV[i]) > 1e-6*(1+red.HSV[0]) {
			t.Fatalf("P[%d][%d] = %g, want σ=%g", i, i, p.At(i, i), red.HSV[i])
		}
		if math.Abs(q.At(i, i)-red.HSV[i]) > 1e-6*(1+red.HSV[0]) {
			t.Fatalf("Q[%d][%d] = %g, want σ=%g", i, i, q.At(i, i), red.HSV[i])
		}
		for j := 0; j < k; j++ {
			if i != j && (math.Abs(p.At(i, j)) > 1e-6*(1+red.HSV[0]) || math.Abs(q.At(i, j)) > 1e-6*(1+red.HSV[0])) {
				t.Fatalf("gramians not diagonal at (%d,%d)", i, j)
			}
		}
	}
}

func TestTruncateRejectsBadOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.RandStable(rng, 6, 0.3)
	b := mat.RandDense(rng, 6, 1)
	c := mat.RandDense(rng, 1, 6)
	if _, err := Truncate(a, b, c, 0); err == nil {
		t.Fatal("order 0 must error")
	}
	if _, err := Truncate(a, b, c, 7); err == nil {
		t.Fatal("order > n must error")
	}
}
