// Package balance provides linear balanced-truncation machinery: Lyapunov
// gramians, Hankel singular values, and the square-root balancing
// transform. The paper's §4 (first bullet) points out that, because the
// associated transforms are ordinary single-s transfer functions,
// "automatic selection of moment numbers in H1(s), H2(s), H3(s) etc. can
// utilize the Hankel singular values or similar measure inherent to
// linear MOR" — core.SuggestOrders builds on this package to do exactly
// that.
package balance

import (
	"errors"
	"math"
	"sort"

	"avtmor/internal/mat"
	"avtmor/internal/schur"
	"avtmor/internal/sylv"
)

// Gramians solves the controllability and observability Lyapunov
// equations of a stable linear system (A, B, C):
//
//	A·P + P·Aᵀ + B·Bᵀ = 0,    Aᵀ·Q + Q·A + Cᵀ·C = 0.
func Gramians(a, b, c *mat.Dense) (p, q *mat.Dense, err error) {
	sa, err := schur.Decompose(a)
	if err != nil {
		return nil, nil, err
	}
	bbT := b.Mul(b.T()).Scale(-1)
	p, err = sylv.SolveTFactored(sa, sa, bbT)
	if err != nil {
		return nil, nil, err
	}
	sat, err := schur.Decompose(a.T())
	if err != nil {
		return nil, nil, err
	}
	cTc := c.T().Mul(c).Scale(-1)
	q, err = sylv.SolveTFactored(sat, sat, cTc)
	if err != nil {
		return nil, nil, err
	}
	symmetrize(p)
	symmetrize(q)
	return p, q, nil
}

func symmetrize(m *mat.Dense) {
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.C; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// HSV returns the Hankel singular values of (A, B, C) in decreasing
// order: σ_i = sqrt(λ_i(P·Q)).
func HSV(a, b, c *mat.Dense) ([]float64, error) {
	p, q, err := Gramians(a, b, c)
	if err != nil {
		return nil, err
	}
	eigs, err := schur.Eigenvalues(p.Mul(q))
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(eigs))
	for _, e := range eigs {
		// P·Q is similar to a PSD matrix: eigenvalues are real ≥ 0 up to
		// rounding.
		out = append(out, math.Sqrt(math.Max(0, real(e))))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out, nil
}

// SuggestOrder returns the number of Hankel singular values above
// tol·σ_max (at least 1 for a nonzero system).
func SuggestOrder(hsv []float64, tol float64) int {
	if len(hsv) == 0 || hsv[0] == 0 {
		return 0
	}
	k := 0
	for _, s := range hsv {
		if s > tol*hsv[0] {
			k++
		}
	}
	if k == 0 {
		k = 1
	}
	return k
}

// Reduced is a balanced-truncated linear state-space model.
type Reduced struct {
	A, B, C *mat.Dense
	// HSV are the full model's Hankel singular values (decreasing); the
	// retained ones are HSV[:k].
	HSV []float64
	// W, V are the oblique projection matrices (x ≈ V·x̂, x̂ = Wᵀ·x,
	// WᵀV = I).
	W, V *mat.Dense
}

// Truncate computes the order-k balanced truncation of (A, B, C) by the
// square-root method: with P = Zp·Zpᵀ, Q = Zq·Zqᵀ and the SVD
// Zqᵀ·Zp = U·Σ·Yᵀ, the projectors are V = Zp·Y·Σ^{-1/2}, W = Zq·U·Σ^{-1/2}.
func Truncate(a, b, c *mat.Dense, k int) (*Reduced, error) {
	n := a.R
	if k < 1 || k > n {
		return nil, errors.New("balance: order out of range")
	}
	p, q, err := Gramians(a, b, c)
	if err != nil {
		return nil, err
	}
	zp, err := psdFactor(p)
	if err != nil {
		return nil, err
	}
	zq, err := psdFactor(q)
	if err != nil {
		return nil, err
	}
	m := zq.T().Mul(zp)
	u, sv, y, err := svd(m)
	if err != nil {
		return nil, err
	}
	if k > len(sv) || sv[k-1] <= 0 {
		return nil, errors.New("balance: requested order exceeds numerical Hankel rank")
	}
	// V = Zp·Y_k·Σ_k^{-1/2}, W = Zq·U_k·Σ_k^{-1/2}.
	vk := mat.NewDense(y.R, k)
	wk := mat.NewDense(u.R, k)
	for j := 0; j < k; j++ {
		s := 1 / math.Sqrt(sv[j])
		for i := 0; i < y.R; i++ {
			vk.Set(i, j, y.At(i, j)*s)
		}
		for i := 0; i < u.R; i++ {
			wk.Set(i, j, u.At(i, j)*s)
		}
	}
	v := zp.Mul(vk)
	w := zq.Mul(wk)
	red := &Reduced{
		A:   w.T().Mul(a).Mul(v),
		B:   w.T().Mul(b),
		C:   c.Mul(v),
		HSV: sv2hsv(sv),
		W:   w,
		V:   v,
	}
	return red, nil
}

func sv2hsv(sv []float64) []float64 {
	out := make([]float64, len(sv))
	copy(out, sv)
	return out
}

// psdFactor returns Z with M = Z·Zᵀ for a symmetric PSD matrix via its
// spectral decomposition (robust to semidefiniteness, unlike Cholesky).
func psdFactor(m *mat.Dense) (*mat.Dense, error) {
	s, err := schur.Decompose(m)
	if err != nil {
		return nil, err
	}
	n := m.R
	// For symmetric input the Schur form is (numerically) diagonal.
	z := mat.NewDense(n, n)
	for j := 0; j < n; j++ {
		lam := s.T.At(j, j)
		if lam < 0 {
			lam = 0
		}
		r := math.Sqrt(lam)
		for i := 0; i < n; i++ {
			z.Set(i, j, s.Q.At(i, j)*r)
		}
	}
	return z, nil
}

// svd computes a thin SVD M = U·diag(σ)·Vᵀ through the spectral
// decompositions of MᵀM (for V, σ) and M·V/σ (for U). Adequate for the
// well-separated Hankel spectra this package sees; columns with σ at
// rounding level get zero U columns.
func svd(m *mat.Dense) (u *mat.Dense, sv []float64, v *mat.Dense, err error) {
	n := m.C
	mtm := m.T().Mul(m)
	symmetrize(mtm)
	s, err := schur.Decompose(mtm)
	if err != nil {
		return nil, nil, nil, err
	}
	// Sort eigenpairs decreasing.
	type pair struct {
		lam float64
		idx int
	}
	ps := make([]pair, n)
	for j := 0; j < n; j++ {
		ps[j] = pair{math.Max(0, s.T.At(j, j)), j}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].lam > ps[j].lam })
	v = mat.NewDense(n, n)
	sv = make([]float64, n)
	for j, pr := range ps {
		sv[j] = math.Sqrt(pr.lam)
		for i := 0; i < n; i++ {
			v.Set(i, j, s.Q.At(i, pr.idx))
		}
	}
	mv := m.Mul(v)
	u = mat.NewDense(m.R, n)
	for j := 0; j < n; j++ {
		if sv[j] <= 1e-300 {
			continue
		}
		inv := 1 / sv[j]
		for i := 0; i < m.R; i++ {
			u.Set(i, j, mv.At(i, j)*inv)
		}
	}
	return u, sv, v, nil
}
