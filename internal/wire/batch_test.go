package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestBatchRequestRoundTrip(t *testing.T) {
	items := [][]byte{
		[]byte("R1 n1 0 2.0\n.out n1\n"),
		{},
		bytes.Repeat([]byte{0xAB}, 3*readAllocCap+17), // forces chunked blob reads
	}
	var buf bytes.Buffer
	if err := WriteBatchRequest(&buf, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatchRequest(bytes.NewReader(buf.Bytes()), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("round trip returned %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if !bytes.Equal(got[i], items[i]) {
			t.Fatalf("item %d corrupted in round trip", i)
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	results := []Result{
		{Status: 200, Key: strings.Repeat("ab", 32), Body: []byte("fake rom bytes")},
		{Status: 400, Key: "", Body: []byte("parsing system: no such node")},
		{Status: 429, Key: strings.Repeat("cd", 32), Body: []byte("worker pool saturated")},
	}
	var buf bytes.Buffer
	if err := WriteBatchResponse(&buf, results); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatchResponse(bytes.NewReader(buf.Bytes()), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(results) {
		t.Fatalf("%d results, want %d", len(got), len(results))
	}
	for i, r := range results {
		g := got[i]
		if g.Status != r.Status || g.Key != r.Key || !bytes.Equal(g.Body, r.Body) {
			t.Fatalf("result %d: got %+v want %+v", i, g, r)
		}
	}
	if got[0].OK() != true || got[1].OK() != false {
		t.Fatal("OK() disagrees with status")
	}
}

func TestBatchRequestLimits(t *testing.T) {
	if err := WriteBatchRequest(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	big := make([][]byte, MaxBatchItems+1)
	for i := range big {
		big[i] = []byte("x")
	}
	if err := WriteBatchRequest(&bytes.Buffer{}, big); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// An item above the reader's bound must be rejected, not allocated.
	var buf bytes.Buffer
	if err := WriteBatchRequest(&buf, [][]byte{bytes.Repeat([]byte("y"), 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBatchRequest(bytes.NewReader(buf.Bytes()), 10); err == nil {
		t.Fatal("item above maxItem accepted")
	}
}

func TestBatchCorruptStreams(t *testing.T) {
	var good bytes.Buffer
	if err := WriteBatchRequest(&good, [][]byte{[]byte("body")}); err != nil {
		t.Fatal(err)
	}
	// Foreign bytes: magic error, not a panic or garbage parse.
	if _, err := ReadBatchRequest(strings.NewReader("GET / HTTP/1.1\r\n\r\n"), 1<<20); !errors.Is(err, ErrBadBatchMagic) {
		t.Fatalf("foreign stream: %v, want ErrBadBatchMagic", err)
	}
	if _, err := ReadBatchResponse(bytes.NewReader(good.Bytes()), 1<<20); !errors.Is(err, ErrBadBatchMagic) {
		t.Fatalf("request bytes read as response: %v, want ErrBadBatchMagic", err)
	}
	// Truncations at every boundary must error cleanly.
	raw := good.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadBatchRequest(bytes.NewReader(raw[:cut]), 1<<20); err == nil {
			t.Fatalf("truncation at %d/%d bytes parsed successfully", cut, len(raw))
		}
	}
	// A length field claiming far more than the stream holds fails with
	// bounded allocation (the chunked blob reader stops at EOF).
	bad := append([]byte{}, raw...)
	bad[16] = 0xFF // low byte of the first item's u64 length
	bad[17] = 0xFF
	bad[18] = 0xFF
	if _, err := ReadBatchRequest(bytes.NewReader(bad), 1<<30); err == nil {
		t.Fatal("huge claimed length parsed successfully")
	}
	// Version drift is reported as such.
	vbad := append([]byte{}, raw...)
	vbad[8] = 99
	if _, err := ReadBatchRequest(bytes.NewReader(vbad), 1<<20); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v, want version error", err)
	}
}
