// Package wire holds the batch framing of the serving tier: the
// length-prefixed multi-body request and multi-ROM response formats of
// POST /v1/reduce/batch, shared by the serve package (decode request,
// encode response) and the avtmorclient package (the mirror image).
// The framing exists because one HTTP request per reduction makes the
// wire the bottleneck for small artifacts — per-request routing,
// framing, and queueing overhead swamps the payload work — so sweep
// clients concatenate many inputs into one POST and the fleet answers
// with one stream of per-item results.
//
// Batch request (Content-Type application/x-avtmor-batch):
//
//	magic   [8]byte  "AVTMBRQ\x00"
//	version uint32   currently 1
//	count   uint32   item count, 1..MaxBatchItems
//	items   count ×  { length uint64 + body bytes }
//
// Each item body is exactly what POST /v1/reduce accepts: netlist text
// or a serialized System (sniffed by magic). Reduction options apply
// batch-wide via the usual query parameters.
//
// Batch response:
//
//	magic   [8]byte  "AVTMBRS\x00"
//	version uint32   currently 1
//	count   uint32   item count, equals the request's
//	items   count ×  {
//	          status uint32   HTTP status semantics per item
//	          key    uint32 length + bytes   content address ("" on parse errors)
//	          body   uint64 length + bytes   ROM wire bytes on 200, error text otherwise
//	        }
//
// Results arrive in request order, so item k of the response answers
// item k of the request. All integers are little-endian, matching the
// ROM wire format. ROM bodies are the bit-exact WriteTo bytes — the
// ROM format was designed to concatenate, and the per-item length
// prefix makes the split explicit without read-ahead.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
)

// MaxBatchItems bounds the item count of one batch request: large
// enough for any realistic sweep chunk, small enough that a corrupted
// count field cannot demand an absurd allocation.
const MaxBatchItems = 4096

// BatchContentType is the Content-Type of both batch frames.
const BatchContentType = "application/x-avtmor-batch"

const batchVersion = 1

var (
	reqMagic  = [8]byte{'A', 'V', 'T', 'M', 'B', 'R', 'Q', 0}
	respMagic = [8]byte{'A', 'V', 'T', 'M', 'B', 'R', 'S', 0}
)

// ErrBadBatchMagic is returned when a stream does not start with the
// expected batch magic (a foreign or corrupted body).
var ErrBadBatchMagic = errors.New("wire: not a batch stream (bad magic header)")

// Result is one per-item outcome of a batch reduce. Status carries
// HTTP semantics (200 OK; 400/422/429/499/503/504 mirror the
// single-request error taxonomy); Key is the artifact's content
// address when the item parsed; Body holds the ROM wire bytes on
// success and a plain-text error message otherwise.
type Result struct {
	Status int
	Key    string
	Body   []byte
}

// OK reports whether the item succeeded.
func (r *Result) OK() bool { return r.Status == 200 }

// WriteBatchRequest frames items into w.
func WriteBatchRequest(w io.Writer, items [][]byte) error {
	if len(items) == 0 {
		return errors.New("wire: empty batch")
	}
	if len(items) > MaxBatchItems {
		return fmt.Errorf("wire: %d items exceeds the batch limit of %d", len(items), MaxBatchItems)
	}
	bw := &batchWriter{w: w}
	bw.write(reqMagic[:])
	bw.u32(batchVersion)
	bw.u32(uint32(len(items)))
	for _, body := range items {
		bw.u64(uint64(len(body)))
		bw.write(body)
	}
	return bw.err
}

// ReadBatchRequest parses a frame written by WriteBatchRequest.
// maxItem bounds each item's length (a server passes its body limit);
// allocation grows in step with bytes that actually arrive, so a
// corrupted length field fails with an error instead of a huge make.
func ReadBatchRequest(r io.Reader, maxItem int64) ([][]byte, error) {
	br := &batchReader{r: r}
	if err := br.magic(reqMagic); err != nil {
		return nil, err
	}
	n := br.count()
	if br.err != nil {
		return nil, br.err
	}
	items := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		body := br.blob(uint64(maxItem))
		if br.err != nil {
			return nil, fmt.Errorf("wire: batch item %d: %w", i, br.err)
		}
		items = append(items, body)
	}
	return items, nil
}

// WriteBatchResponse frames per-item results into w, in request order.
func WriteBatchResponse(w io.Writer, results []Result) error {
	bw := &batchWriter{w: w}
	bw.write(respMagic[:])
	bw.u32(batchVersion)
	bw.u32(uint32(len(results)))
	for i := range results {
		res := &results[i]
		bw.u32(uint32(res.Status))
		bw.u32(uint32(len(res.Key)))
		bw.write([]byte(res.Key))
		bw.u64(uint64(len(res.Body)))
		bw.write(res.Body)
	}
	return bw.err
}

// ReadBatchResponse parses a frame written by WriteBatchResponse.
// maxItem bounds each ROM body's length.
func ReadBatchResponse(r io.Reader, maxItem int64) ([]Result, error) {
	br := &batchReader{r: r}
	if err := br.magic(respMagic); err != nil {
		return nil, err
	}
	n := br.count()
	if br.err != nil {
		return nil, br.err
	}
	results := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		status := br.u32()
		keyLen := br.u32()
		if br.err == nil && keyLen > 1<<10 {
			br.err = fmt.Errorf("implausible key length %d", keyLen)
		}
		key := br.bytes(int(keyLen))
		body := br.blob(uint64(maxItem))
		if br.err != nil {
			return nil, fmt.Errorf("wire: batch result %d: %w", i, br.err)
		}
		results = append(results, Result{Status: int(status), Key: string(key), Body: body})
	}
	return results, nil
}

type batchWriter struct {
	w   io.Writer
	err error
}

func (bw *batchWriter) write(p []byte) {
	if bw.err != nil {
		return
	}
	_, bw.err = bw.w.Write(p)
}

func (bw *batchWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	bw.write(b[:])
}

func (bw *batchWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	bw.write(b[:])
}

type batchReader struct {
	r   io.Reader
	err error
}

func (br *batchReader) read(p []byte) {
	if br.err != nil {
		return
	}
	_, br.err = io.ReadFull(br.r, p)
}

func (br *batchReader) magic(want [8]byte) error {
	var got [8]byte
	br.read(got[:])
	if br.err != nil {
		return fmt.Errorf("%w: %v", ErrBadBatchMagic, br.err)
	}
	if got != want {
		return ErrBadBatchMagic
	}
	version := br.u32()
	if br.err == nil && version != batchVersion {
		br.err = fmt.Errorf("wire: unsupported batch version %d (this build speaks v%d)", version, batchVersion)
	}
	return br.err
}

func (br *batchReader) count() int {
	n := br.u32()
	if br.err == nil && (n == 0 || n > MaxBatchItems) {
		br.err = fmt.Errorf("wire: batch item count %d outside 1..%d", n, MaxBatchItems)
	}
	return int(n)
}

func (br *batchReader) u32() uint32 {
	var b [4]byte
	br.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (br *batchReader) u64() uint64 {
	var b [8]byte
	br.read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (br *batchReader) bytes(n int) []byte {
	if br.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	br.read(b)
	return b
}

// readAllocCap caps the upfront capacity of a length-prefixed blob,
// mirroring the ROM reader: growth past it happens strictly in step
// with bytes that actually arrived.
const readAllocCap = 1 << 16

// blob reads one uint64 length prefix and its payload, bounded by max.
func (br *batchReader) blob(max uint64) []byte {
	n := br.u64()
	if br.err != nil {
		return nil
	}
	if max > 0 && n > max {
		br.err = fmt.Errorf("length %d exceeds the %d-byte limit", n, max)
		return nil
	}
	c := n
	if c > readAllocCap {
		c = readAllocCap
	}
	// Read straight into the destination's tail — no scratch buffer, so
	// a small blob (the common case: netlists and reduced-order ROMs)
	// costs exactly one right-sized allocation.
	dst := make([]byte, 0, c)
	for uint64(len(dst)) < n {
		k := int(min(n-uint64(len(dst)), readAllocCap))
		off := len(dst)
		dst = slices.Grow(dst, k)[:off+k]
		br.read(dst[off:])
		if br.err != nil {
			return nil
		}
	}
	return dst
}
