package circuits

import (
	"math"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/ode"
	"avtmor/internal/schur"
)

func checkWorkload(t *testing.T, w *Workload, wantN int) {
	t.Helper()
	if w.Sys.N != wantN {
		t.Fatalf("%s: n = %d, want %d", w.Name, w.Sys.N, wantN)
	}
	if err := w.Sys.Validate(); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	// The origin must be an equilibrium with zero input.
	dst := make([]float64, w.Sys.N)
	w.Sys.Eval(dst, make([]float64, w.Sys.N), make([]float64, w.Sys.Inputs()))
	if mat.NormInf(dst) != 0 {
		t.Fatalf("%s: origin is not an equilibrium (|f| = %g)", w.Name, mat.NormInf(dst))
	}
	// No right-half-plane eigenvalues. Exact quadratic-linearization
	// carries structurally neutral (zero) modes — the slaved directions
	// z − 40·w — which is why such workloads set S0 ≠ 0.
	eigs, err := schur.Eigenvalues(w.Sys.G1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eigs {
		if real(e) > 1e-8 {
			t.Fatalf("%s: unstable eigenvalue %v", w.Name, e)
		}
	}
	// The stimulus must be finite over the window.
	for _, tt := range []float64{0, w.TEnd / 3, w.TEnd} {
		for _, u := range w.U(tt) {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				t.Fatalf("%s: bad input at t=%v", w.Name, tt)
			}
		}
	}
}

func TestNTLVoltageStructure(t *testing.T) {
	w := NTLVoltage(50)
	checkWorkload(t, w, 100)
	// D1 must be genuinely nonzero (the point of §3.1).
	if w.Sys.D1 == nil || w.Sys.D1[0].MaxAbs() == 0 {
		t.Fatal("voltage-source line must carry a D1 term")
	}
	if w.S0 == 0 {
		t.Fatal("quadratic-linearized line needs a non-DC expansion point")
	}
}

func TestNTLCurrentStructure(t *testing.T) {
	w := NTLCurrent(70)
	checkWorkload(t, w, 70)
	if w.Sys.D1 != nil {
		t.Fatal("current-source line must have no D1 term")
	}
	// One ground branch + 69 junction branches, each junction expanding
	// into 3 monomials on each of its two nodes (minus cancellations where
	// branches share a node).
	if w.Sys.G2 == nil || w.Sys.G2.NNZ() < 2*70 {
		t.Fatalf("junction quadratics missing: nnz = %d", w.Sys.G2.NNZ())
	}
	// Off-diagonal coupling must be present (v_k·v_{k+1} monomials).
	hasCross := false
	for r := 0; r < w.Sys.G2.Rows && !hasCross; r++ {
		for k := w.Sys.G2.RowPtr[r]; k < w.Sys.G2.RowPtr[r+1]; k++ {
			c := w.Sys.G2.ColIdx[k]
			if c/70 != c%70 {
				hasCross = true
				break
			}
		}
	}
	if !hasCross {
		t.Fatal("G2 has no cross monomials; junction nonlinearity miswired")
	}
}

func TestRFReceiverStructure(t *testing.T) {
	w := RFReceiver()
	checkWorkload(t, w, 173)
	if w.Sys.Inputs() != 2 {
		t.Fatalf("receiver must have two inputs, got %d", w.Sys.Inputs())
	}
	// The RLC chain must produce complex eigenvalue pairs (they exercise
	// the 2×2 Schur-block paths of the structured solvers).
	eigs, err := schur.Eigenvalues(w.Sys.G1)
	if err != nil {
		t.Fatal(err)
	}
	complexCount := 0
	for _, e := range eigs {
		if imag(e) != 0 {
			complexCount++
		}
	}
	if complexCount < 8 {
		t.Fatalf("expected complex pairs from the LC path, got %d", complexCount)
	}
}

func TestVaristorStructure(t *testing.T) {
	w := Varistor()
	checkWorkload(t, w, 102)
	if w.Sys.G3 == nil || w.Sys.G3.NNZ() != 1 {
		t.Fatal("varistor must have exactly one cubic branch")
	}
	if !w.Stiff {
		t.Fatal("varistor workload should request the stiff integrator")
	}
}

func TestNTLVoltageQuadraticLinearizationExact(t *testing.T) {
	// Simulate the QLDAE and the raw nonlinear ODE with the same stimulus:
	// the node voltages must agree to integrator accuracy (the
	// linearization is exact, not an approximation).
	const stages = 8
	w := NTLVoltage(stages)
	x0 := make([]float64, w.Sys.N)
	res := ode.RK4(w.Sys, x0, w.U, 10, 4000)

	// Raw ODE integration (plain RK4 on the node voltages).
	v := make([]float64, stages)
	k1 := make([]float64, stages)
	k2 := make([]float64, stages)
	k3 := make([]float64, stages)
	k4 := make([]float64, stages)
	vs := make([]float64, stages)
	h := 10.0 / 4000
	var rawOut []float64
	rawOut = append(rawOut, v[0])
	for s := 0; s < 4000; s++ {
		tt := float64(s) * h
		RawNTLVoltageRHS(stages, k1, v, w.U(tt)[0])
		for i := range vs {
			vs[i] = v[i] + 0.5*h*k1[i]
		}
		RawNTLVoltageRHS(stages, k2, vs, w.U(tt + 0.5*h)[0])
		for i := range vs {
			vs[i] = v[i] + 0.5*h*k2[i]
		}
		RawNTLVoltageRHS(stages, k3, vs, w.U(tt + 0.5*h)[0])
		for i := range vs {
			vs[i] = v[i] + h*k3[i]
		}
		RawNTLVoltageRHS(stages, k4, vs, w.U(tt + h)[0])
		for i := range v {
			v[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		rawOut = append(rawOut, v[0])
	}
	// Compare node-0 voltage across the window.
	peak := 0.0
	for _, y := range rawOut {
		if a := math.Abs(y); a > peak {
			peak = a
		}
	}
	if peak < 1e-4 {
		t.Fatal("stimulus produced no response; test is vacuous")
	}
	worst := 0.0
	for k := range rawOut {
		if d := math.Abs(rawOut[k] - res.Y[k][0]); d > worst {
			worst = d
		}
	}
	if worst > 1e-8*peak+1e-12 {
		t.Fatalf("QLDAE deviates from raw nonlinear ODE by %g (peak %g)", worst, peak)
	}
}

func TestVaristorClamps(t *testing.T) {
	// The surge must be clamped: protected-side voltage ≪ source peak.
	w := Varistor()
	x0 := make([]float64, w.Sys.N)
	res, err := ode.Trapezoidal(w.Sys, x0, w.U, w.TEnd, w.Steps)
	if err != nil {
		t.Fatal(err)
	}
	peakOut := 0.0
	for _, y := range res.Y {
		if a := math.Abs(y[0]); a > peakOut {
			peakOut = a
		}
	}
	if peakOut > 1.0 {
		t.Fatalf("varistor failed to clamp: output peak %g kV", peakOut)
	}
	if peakOut < 0.05 {
		t.Fatalf("output suspiciously small (%g kV); circuit may be miswired", peakOut)
	}
}

func TestNTLCurrentRespondsNonlinearly(t *testing.T) {
	// Doubling the input must NOT exactly double the output (quadratic
	// conductances at work).
	w := NTLCurrent(30)
	x0 := make([]float64, w.Sys.N)
	r1 := ode.RK4(w.Sys, x0, w.U, 15, 3000)
	u2 := func(t float64) []float64 { return []float64{2 * w.U(t)[0]} }
	r2 := ode.RK4(w.Sys, x0, u2, 15, 3000)
	maxDev := 0.0
	for k := range r1.Y {
		dev := math.Abs(r2.Y[k][0] - 2*r1.Y[k][0])
		if dev > maxDev {
			maxDev = dev
		}
	}
	if maxDev < 1e-5 {
		t.Fatalf("response scales linearly (dev %g); nonlinearity missing", maxDev)
	}
}
