// Package circuits builds the QLDAE workloads of the paper's §3:
//
//   - NTLVoltage — §3.1/Fig. 2: nonlinear RC-diode transmission line with a
//     voltage source behind a series resistor; the exp-diode I–V
//     iD = e^{40·vD}−1 is quadratic-linearized exactly with one auxiliary
//     state per diode, producing a QLDAE with a nonzero D1 term.
//   - NTLCurrent — §3.2/Fig. 3: current-driven line with polynomial
//     (quadratic) shunt conductances; directly quadratic, D1 = 0 exactly.
//   - RFReceiver — §3.3/Fig. 4: a synthetic two-input receiver chain (RLC
//     ladder with quadratic gain-compression stages), 173 states.
//   - Varistor — §3.4/Fig. 5: ZnO varistor surge protector, cubic I–V,
//     102 states, driven by a 9.8 kV double-exponential surge.
//
// DESIGN.md §4 records how each maps onto the paper's (incompletely
// specified) testbench circuits.
package circuits

import (
	"math"

	"avtmor/internal/mat"
	"avtmor/internal/ode"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
)

// Workload bundles a system with its experiment stimulus.
type Workload struct {
	Name string
	Sys  *qldae.System
	// U is the experiment input; TEnd the simulated window ("ns" in the
	// paper's axes; dimensionless R=C=1 units here).
	U    ode.Input
	TEnd float64
	// Steps is the reference fixed-step count for the full model.
	Steps int
	// Stiff selects the trapezoidal integrator for the experiment.
	Stiff bool
	// S0 is the recommended moment-expansion point. The exactly
	// quadratic-linearized line has a structurally singular G1 (the
	// auxiliary-state manifold directions are linearly neutral), so its
	// moments must be expanded off DC — the paper's §4 "non-DC expansion"
	// remark; the other workloads use s0 = 0.
	S0 float64
	// OutputName labels the observed quantity.
	OutputName string
}

// NTLVoltage builds the §3.1 line with the given number of stages
// (states = 2·stages: node voltages + diode states). Diode 0 connects
// node 0 to ground; diode k (k ≥ 1) connects node k−1 to node k. The
// voltage source drives node 0 through a unit resistor; R = C = 1,
// iD = e^{40·vD} − 1.
func NTLVoltage(stages int) *Workload {
	nV := stages
	n := 2 * nV
	// Linear part of the node equations over the full state [v; ẑ]
	// (ẑ = e^{40w} − 1 so the rest point is the origin).
	av := mat.NewDense(nV, n) // v̇ = av·x + bv·u
	bv := make([]float64, nV)
	zi := func(k int) int { return nV + k }
	// Node 0: u − 2v0 + v1 − ẑ0 − ẑ1.
	av.Add(0, 0, -2)
	if nV > 1 {
		av.Add(0, 1, 1)
		av.Add(0, zi(1), -1)
	}
	av.Add(0, zi(0), -1)
	bv[0] = 1
	// Interior nodes.
	for k := 1; k < nV-1; k++ {
		av.Add(k, k-1, 1)
		av.Add(k, k, -2)
		av.Add(k, k+1, 1)
		av.Add(k, zi(k), 1)
		av.Add(k, zi(k+1), -1)
	}
	// Last node (unit load resistor to ground).
	if nV > 1 {
		k := nV - 1
		av.Add(k, k-1, 1)
		av.Add(k, k, -2)
		av.Add(k, zi(k), 1)
	}
	// Junction voltage rates r_k = ẇ_k as rows over the state.
	// w_0 = v_0, w_k = v_{k−1} − v_k.
	rRow := func(k int) ([]float64, float64) {
		row := make([]float64, n)
		var bu float64
		if k == 0 {
			copy(row, av.Row(0))
			bu = bv[0]
			return row, bu
		}
		copy(row, av.Row(k-1))
		bu = bv[k-1]
		for j, v := range av.Row(k) {
			row[j] -= v
		}
		bu -= bv[k]
		return row, bu
	}
	g1 := mat.NewDense(n, n)
	for k := 0; k < nV; k++ {
		copy(g1.Row(k), av.Row(k))
	}
	g2b := sparse.NewBuilder(n, n*n)
	d1 := mat.NewDense(n, n)
	b := mat.NewDense(n, 1)
	for k := 0; k < nV; k++ {
		b.Set(k, 0, bv[k])
	}
	const slope = 40.0
	for k := 0; k < nV; k++ {
		row, bu := rRow(k)
		zr := zi(k)
		// ẑ̇_k = 40·r_k + 40·ẑ_k·r_k (+ bilinear input term).
		for j, c := range row {
			if c == 0 {
				continue
			}
			g1.Add(zr, j, slope*c)
			g2b.Add(zr, zr*n+j, slope*c)
		}
		if bu != 0 {
			b.Add(zr, 0, slope*bu)
			d1.Add(zr, zr, slope*bu)
		}
	}
	l := mat.NewDense(1, n)
	l.Set(0, 0, 1) // observe node-0 voltage
	sys := &qldae.System{
		N:   n,
		G1:  g1,
		G1S: sparse.FromDense(g1),
		G2:  g2b.Build(),
		D1:  []*mat.Dense{d1},
		B:   b,
		L:   l,
	}
	return &Workload{
		Name: "ntl-voltage",
		Sys:  sys,
		S0:   0.5,
		U: func(t float64) []float64 {
			return []float64{0.12 * math.Sin(2*math.Pi*t/10) * math.Exp(-t/20)}
		},
		TEnd:       30,
		Steps:      6000,
		OutputName: "node-0 voltage (V)",
	}
}

// NTLCurrent builds the §3.2 current-driven line with n nodes. Each node
// carries a unit capacitor, unit series resistors, and a polynomial shunt
// conductance i = g·v + γ·v²; the source current enters node 0. The QLDAE
// has exactly D1 = 0 and no auxiliary states.
func NTLCurrent(n int) *Workload {
	// Taylor expansion of the paper's diode iD = e^{40·vD} − 1 around the
	// origin: iD ≈ 40·w + 800·w², carried by every junction branch (in
	// parallel with the unit resistor) and by the ground branch at the
	// driven node. The strong slope spreads the spectrum of G1 the way the
	// exponential diodes do in the paper's testbench.
	const (
		gd    = 40.0
		gamma = 800.0
	)
	g1 := mat.NewDense(n, n)
	g2b := sparse.NewBuilder(n, n*n)
	// Junction nonlinearities mirror the paper's inter-node diodes: the
	// branch between node k and k+1 carries i = g·w + γ·w², w = v_k−v_{k+1},
	// and node 0 additionally has a ground branch (the "ground diode").
	// Expanding γ·w² produces off-diagonal G2 entries — the coupling that
	// differentiates NORM's multivariate moment space from the associated
	// one.
	addQuad := func(row int, sign float64, p, q int, coef float64) {
		g2b.Add(row, p*n+q, sign*coef)
	}
	for k := 0; k < n; k++ {
		diag := 0.0
		if k > 0 {
			g1.Add(k, k-1, 1+gd)
			diag -= 1 + gd
		}
		if k < n-1 {
			g1.Add(k, k+1, 1+gd)
			diag -= 1 + gd
		} else {
			diag -= 1 // load resistor at the far end
		}
		g1.Add(k, k, diag)
	}
	// Ground diode branch at the driven node.
	g1.Add(0, 0, -gd)
	addQuad(0, -1, 0, 0, gamma)
	// Junction quadratics: branch k→k+1 with w = v_k − v_{k+1} removes
	// γ·w² from node k and injects it into node k+1.
	for k := 0; k < n-1; k++ {
		for _, t := range []struct {
			p, q int
			c    float64
		}{{k, k, gamma}, {k, k + 1, -2 * gamma}, {k + 1, k + 1, gamma}} {
			addQuad(k, -1, t.p, t.q, t.c)
			addQuad(k+1, 1, t.p, t.q, t.c)
		}
	}
	b := mat.NewDense(n, 1)
	b.Set(0, 0, 1)
	l := mat.NewDense(1, n)
	l.Set(0, 0, 1)
	sys := &qldae.System{N: n, G1: g1, G1S: sparse.FromDense(g1), G2: g2b.Build(), B: b, L: l}
	return &Workload{
		Name: "ntl-current",
		Sys:  sys,
		U: func(t float64) []float64 {
			return []float64{0.25 * math.Sin(2*math.Pi*t/8) * math.Exp(-t/25)}
		},
		TEnd:  30,
		Steps: 3000,
		// Circuit-simulator style implicit integration: the full model
		// pays a dense Newton/LU per step — the cost the ROM removes
		// (Table 1's "ODE solve" column).
		Stiff:      true,
		OutputName: "node-0 voltage (V)",
	}
}

// RFReceiver builds the §3.3 two-input receiver chain with 173 MNA
// unknowns: a 13-node RC cascade as the main signal path (LNA → mixer →
// PA, with quadratic gain-compression conductances at the amplifier
// outputs), four damped LC bias tanks (8 states, giving G1 genuine
// complex eigenvalue pairs, which exercise the 2×2 Schur-block solver
// paths at experiment scale), and twelve RC parasitic trees (152 states)
// — the bulk that makes the full model large and a ~14-state ROM
// sufficient. Input 0 is the antenna signal at the front node; input 1 is
// interference coupled into the mixer node.
func RFReceiver() *Workload {
	const (
		mainNodes = 13
		gSer      = 2.0  // main-path series conductance (R = 0.5)
		cNode     = 0.5  // main-path node capacitance
		gShunt    = 0.1  // main-path shunt loss
		gamma     = 0.25 // gain-compression curvature
		rPar      = 5.0  // parasitic coupling resistance
		cPar      = 0.5
		gLeak     = 0.3 // bias leak on every parasitic node
	)
	n := 173
	g1 := mat.NewDense(n, n)
	g2b := sparse.NewBuilder(n, n*n)
	// Main RC cascade: nodes 0..12.
	for k := 0; k < mainNodes; k++ {
		diag := -gShunt / cNode
		if k > 0 {
			g1.Add(k, k-1, gSer/cNode)
			diag -= gSer / cNode
		}
		if k < mainNodes-1 {
			g1.Add(k, k+1, gSer/cNode)
			diag -= gSer / cNode
		} else {
			diag -= gSer / cNode // output load
		}
		g1.Add(k, k, diag)
		if k == 2 || k == 4 || k == 6 || k == 8 || k == 10 {
			// Gain-compression conductances along the amplifier chain
			// (LNA, mixer, PA stages).
			g2b.Add(k, k*n+k, -gamma/cNode)
		}
	}
	next := mainNodes
	// Four damped series-RLC bias tanks on nodes 2, 5, 8, 11:
	// İ = (v_m − i − v_t)/1, v̇_t = i  (L = C = R = 1, ζ = 0.5).
	for _, m := range []int{2, 5, 8, 11} {
		iSt, vSt := next, next+1
		next += 2
		g1.Add(iSt, m, 1)
		g1.Add(iSt, iSt, -1)
		g1.Add(iSt, vSt, -1)
		g1.Add(vSt, iSt, 1)
		g1.Add(m, iSt, -1/cNode)
	}
	// Twelve parasitic RC trees on nodes 1..12: 152 states.
	perTree := (n - next) / 12
	extra := (n - next) % 12
	for j := 1; j <= 12; j++ {
		length := perTree
		if j <= extra {
			length++
		}
		prev := j
		for s := 0; s < length; s++ {
			w := next
			next++
			g1.Add(w, prev, 1/(rPar*cPar))
			g1.Add(w, w, -(1/rPar+gLeak)/cPar)
			upC := cPar
			if prev == j {
				upC = cNode
			}
			g1.Add(prev, w, 1/(rPar*upC))
			g1.Add(prev, prev, -1/(rPar*upC))
			prev = w
		}
	}
	if next != n {
		panic("circuits: RFReceiver state count mismatch")
	}
	b := mat.NewDense(n, 2)
	b.Set(0, 0, 1/cNode)   // antenna signal
	b.Set(6, 1, 0.5/cNode) // interference into the mixer node
	l := mat.NewDense(1, n)
	l.Set(0, mainNodes-1, 1)
	sys := &qldae.System{N: n, G1: g1, G1S: sparse.FromDense(g1), G2: g2b.Build(), B: b, L: l}
	return &Workload{
		Name: "rf-receiver",
		Sys:  sys,
		U: func(t float64) []float64 {
			return []float64{
				0.3 * math.Sin(2*math.Pi*t/12) * (1 - math.Exp(-t/3)),
				0.08 * math.Sin(2*math.Pi*t/5.1+1),
			}
		},
		TEnd:       24,
		Steps:      2500,
		Stiff:      true,
		OutputName: "output-node voltage (V)",
	}
}

// Varistor builds the §3.4 ZnO surge protector: source → Ri → L1/R1 →
// clamp node (C1 ∥ varistor) → L2/R2 → smoothing node (C2) → RC ladder
// modelling the protected consumer circuits. The varistor I–V is the odd
// cubic i = g1·v + g3·v³ (voltages in kV), sized to clamp the 9.8 kV surge
// near UB = 0.2 kV. States: [i1, v1, i2, v2, w_0..w_97] = 102.
func Varistor() *Workload {
	const (
		ladder = 98
		ri     = 0.5
		l1     = 0.5
		r1     = 0.1
		c1     = 1.0
		l2     = 0.5
		r2     = 0.1
		c2     = 1.0
		rl     = 0.5
		cl     = 0.2
		gv1    = 0.05
		gv3    = 2000.0
	)
	n := 4 + ladder
	g1 := mat.NewDense(n, n)
	// i̇1 = (u − (ri+r1)·i1 − v1)/l1.
	g1.Add(0, 0, -(ri+r1)/l1)
	g1.Add(0, 1, -1/l1)
	// v̇1 = (i1 − i2 − gv1·v1 − gv3·v1³)/c1.
	g1.Add(1, 0, 1/c1)
	g1.Add(1, 2, -1/c1)
	g1.Add(1, 1, -gv1/c1)
	// i̇2 = (v1 − v2 − r2·i2)/l2.
	g1.Add(2, 1, 1/l2)
	g1.Add(2, 3, -1/l2)
	g1.Add(2, 2, -r2/l2)
	// v̇2 = (i2 − (v2 − w0)/rl)/c2.
	g1.Add(3, 2, 1/c2)
	g1.Add(3, 3, -1/(rl*c2))
	g1.Add(3, 4, 1/(rl*c2))
	// Ladder nodes w_j (state 4+j).
	for j := 0; j < ladder; j++ {
		s := 4 + j
		left := s - 1 // v2 for j = 0
		g1.Add(s, left, 1/(rl*cl))
		g1.Add(s, s, -1/(rl*cl))
		if j < ladder-1 {
			g1.Add(s, s, -1/(rl*cl))
			g1.Add(s, s+1, 1/(rl*cl))
		} else {
			g1.Add(s, s, -1/(rl*cl)) // terminating resistor
		}
	}
	g3b := sparse.NewBuilder(n, n*n*n)
	g3b.Add(1, (1*n+1)*n+1, -gv3/c1)
	b := mat.NewDense(n, 1)
	b.Set(0, 0, 1/l1)
	l := mat.NewDense(1, n)
	l.Set(0, 3, 1) // protected-side voltage v2
	sys := &qldae.System{N: n, G1: g1, G1S: sparse.FromDense(g1), G3: g3b.Build(), B: b, L: l}
	return &Workload{
		Name: "varistor",
		Sys:  sys,
		// The 1.2/50-style surge concentrates its energy around
		// s ≈ 1/τ_rise…1/τ_decay; expanding the moments at s0 = 0.3
		// (inside that band) instead of DC cuts the ROM transient error
		// by an order of magnitude at equal order.
		S0: 0.3,
		U: func(t float64) []float64 {
			// 9.8 kV double-exponential surge (rise τ 0.3, decay τ 8).
			return []float64{9.8 * 1.12 * (math.Exp(-t/8) - math.Exp(-t/0.3))}
		},
		TEnd:       30,
		Steps:      4000,
		Stiff:      true,
		OutputName: "protected-side voltage (kV)",
	}
}

// rlcDenseMirrorLimit bounds the state count up to which RLCLine also
// materializes the dense G1 (for dense-vs-sparse comparison runs);
// beyond it the workload is CSR-only — the regime the dense path cannot
// touch at all.
const rlcDenseMirrorLimit = 2500

// RLCLine builds a linear RLC transmission line with the given number
// of sections — the classic interconnect/power-grid workload that
// motivates the sparse-direct spine (ROADMAP: thousands of nodes).
// Section k carries a node with unit capacitance and a small shunt
// loss, joined to the next node by a series R–L branch; the far end is
// resistively loaded. States: sections node voltages followed by
// sections−1 inductor branch currents (n = 2·sections − 1, G1 has ≈ 2.5
// nonzeros per row). The line is linear (G2 = G3 = D1 = nil), so
// Reduce matches H1 moments only — the path where the sparse LU turns
// the "one LU of G1" of §2.3 from O(n³) into O(n).
func RLCLine(sections int) *Workload {
	const (
		rSer  = 0.1  // series resistance per section
		lSer  = 1.0  // series inductance
		cNode = 1.0  // node capacitance
		gSh   = 0.02 // shunt loss keeps G1 invertible at DC
		gLoad = 1.0  // far-end load
	)
	if sections < 2 {
		panic("circuits: RLCLine needs at least 2 sections")
	}
	m := sections
	n := 2*m - 1
	ib := func(k int) int { return m + k } // branch k joins node k → k+1
	g1b := sparse.NewBuilder(n, n)
	for k := 0; k < m; k++ {
		diag := -gSh
		if k == m-1 {
			diag -= gLoad
		}
		g1b.Add(k, k, diag/cNode)
		if k > 0 {
			g1b.Add(k, ib(k-1), 1/cNode)
		}
		if k < m-1 {
			g1b.Add(k, ib(k), -1/cNode)
		}
	}
	for k := 0; k < m-1; k++ {
		g1b.Add(ib(k), k, 1/lSer)
		g1b.Add(ib(k), k+1, -1/lSer)
		g1b.Add(ib(k), ib(k), -rSer/lSer)
	}
	g1s := g1b.Build()
	b := mat.NewDense(n, 1)
	b.Set(0, 0, 1/cNode) // current source into the driven node
	l := mat.NewDense(1, n)
	l.Set(0, m-1, 1) // observe the far-end voltage
	sys := &qldae.System{N: n, G1S: g1s, B: b, L: l}
	if n <= rlcDenseMirrorLimit {
		sys.G1 = g1s.Dense()
	}
	return &Workload{
		Name: "rlc-line",
		Sys:  sys,
		U: func(t float64) []float64 {
			return []float64{0.5 * math.Sin(2*math.Pi*t/15) * (1 - math.Exp(-t/4))}
		},
		TEnd:       40,
		Steps:      4000,
		Stiff:      true,
		OutputName: "far-end voltage (V)",
	}
}

// RawNTLVoltageRHS evaluates the original (pre-linearization) nonlinear
// ODE of the NTLVoltage circuit on the nV node voltages: the fidelity
// oracle showing the quadratic-linearization is exact (up to the invariant
// z = e^{40w} manifold).
func RawNTLVoltageRHS(nV int, dst, v []float64, u float64) {
	iD := func(w float64) float64 { return math.Exp(40*w) - 1 }
	for k := 0; k < nV; k++ {
		var s float64
		switch {
		case k == 0:
			s = u - 2*v[0] - iD(v[0]) - iD(v[0]-at(v, 1))
			if nV > 1 {
				s += v[1]
			}
		case k < nV-1:
			s = v[k-1] - 2*v[k] + v[k+1] + iD(v[k-1]-v[k]) - iD(v[k]-v[k+1])
		default:
			s = v[k-1] - 2*v[k] + iD(v[k-1]-v[k])
		}
		dst[k] = s
	}
}

func at(v []float64, i int) float64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}
