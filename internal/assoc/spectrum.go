package assoc

// Spectral structure of the associated realizations (§4, third bullet):
// the Eq.-(17) realization is block triangular, so its spectrum is the
// union of eig(G1) and eig(⊕²G1) = {λi + λj} — computable from the one
// cached Schur form, never forming G̃2. Consequently a Hurwitz G1 makes
// every associated single-s realization Hurwitz: the cascade
// decomposition "allows insightful interpretation of stability … of the
// original nonlinear model".

// SpectrumGt2 returns the eigenvalues of the (n+n²)-dimensional Eq.-(17)
// matrix G̃2: eig(G1) followed by all pairwise sums λi + λj.
func (r *Realization) SpectrumGt2() ([]complex128, error) {
	s, err := r.Schur()
	if err != nil {
		return nil, err
	}
	lam := s.Eigenvalues()
	n := len(lam)
	out := make([]complex128, 0, n+n*n)
	out = append(out, lam...)
	for _, a := range lam {
		for _, b := range lam {
			out = append(out, a+b)
		}
	}
	return out, nil
}

// SpectrumKron3 returns the eigenvalues of the H̃3 operator G1⊕G̃2:
// every sum λp + μ with μ ∈ eig(G̃2), i.e. {λp+λi, λp+λi+λj}.
func (r *Realization) SpectrumKron3() ([]complex128, error) {
	s, err := r.Schur()
	if err != nil {
		return nil, err
	}
	lam := s.Eigenvalues()
	g2spec, err := r.SpectrumGt2()
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, len(lam)*len(g2spec))
	for _, p := range lam {
		for _, mu := range g2spec {
			out = append(out, p+mu)
		}
	}
	return out, nil
}

// IsHurwitz reports whether every eigenvalue of the given spectrum has
// real part below −margin.
func IsHurwitz(spec []complex128, margin float64) bool {
	for _, e := range spec {
		if real(e) >= -margin {
			return false
		}
	}
	return true
}
