package assoc

import (
	"avtmor/internal/kron"
	"avtmor/internal/mat"
)

// Transfer-function evaluation of the associated transforms at a complex
// frequency s, through the structured solvers (never forming G̃2). These
// are the quantities the verification suite compares against the analytic
// oracle of package volterra.

// EvalH1 computes H1(s) = (sI − G1)⁻¹·b_in.
func (r *Realization) EvalH1(in int, s complex128) ([]complex128, error) {
	f, err := r.shiftedCLU(s)
	if err != nil {
		return nil, err
	}
	// (G1 − sI)⁻¹(−b) = (sI − G1)⁻¹ b.
	n := r.Sys.N
	rhs := make([]complex128, n)
	for i, v := range r.Sys.B.Col(in) {
		rhs[i] = complex(-v, 0)
	}
	f.Solve(rhs, rhs)
	return rhs, nil
}

// EvalAssocH2 computes A2(H2⁽ⁱʲ⁾)(s) = c̃2·(sI − G̃2)⁻¹·b̃2⁽ⁱʲ⁾ (Eq. 17).
func (r *Realization) EvalAssocH2(i, j int, s complex128) ([]complex128, error) {
	n := r.Sys.N
	bt := mat.ToComplex(r.Btilde2(i, j))
	// (sI − G̃2)⁻¹ b̃2 = −(G̃2 − sI)⁻¹ b̃2.
	z, err := r.gt2.SolveShiftedC(s, bt)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = -z[k]
	}
	return out, nil
}

// EvalAssocH3 computes A3(H3)(s) = (sI−G1)⁻¹·(G2·H̃3(s) + D1²·b) for a
// SISO quadratic QLDAE (§2.2). H̃3 is assembled from one (G1⊕G̃2)-solve
// using the transpose symmetry of the two subsystems.
func (r *Realization) EvalAssocH3(s complex128) ([]complex128, error) {
	sys := r.Sys
	if sys.Inputs() != 1 {
		return nil, errNotSISO
	}
	n := sys.N
	n2 := n + n*n
	// v = b ⊗ b̃2, stored as n columns of length n+n².
	bt := r.Btilde2(0, 0)
	b := sys.B.Col(0)
	v := make([]complex128, n*n2)
	for p := 0; p < n; p++ {
		if b[p] == 0 {
			continue
		}
		col := v[p*n2 : (p+1)*n2]
		for q, w := range bt {
			col[q] = complex(b[p]*w, 0)
		}
	}
	// (sI − G1⊕G̃2)⁻¹ v = −(G1⊕G̃2 − sI)⁻¹ v.
	z, err := r.SolveKronC(s, v)
	if err != nil {
		return nil, err
	}
	// First subsystem output: y1 = vec(c̃2·X); second: y2 = vec((c̃2·X)ᵀ).
	h3t := make([]complex128, n*n)
	for jcol := 0; jcol < n; jcol++ {
		for irow := 0; irow < n; irow++ {
			top := -z[jcol*n2+irow] // minus from the resolvent sign flip
			h3t[jcol*n+irow] += top
			h3t[irow*n+jcol] += top
		}
	}
	// G2·H̃3 + D1²b.
	rhs := make([]complex128, n)
	if sys.G2 != nil {
		r.Sys.G2.MulVecC(rhs, h3t)
	}
	if sys.D1 != nil && sys.D1[0] != nil {
		d1b := mat.GetVec(n)
		sys.D1[0].MulVec(d1b, b)
		d1d1b := mat.GetVec(n)
		sys.D1[0].MulVec(d1d1b, d1b)
		for k := range rhs {
			rhs[k] += complex(d1d1b[k], 0)
		}
		mat.PutVec(d1b)
		mat.PutVec(d1d1b)
	}
	// (sI − G1)⁻¹ rhs = −(G1 − sI)⁻¹ rhs.
	f, err := r.shiftedCLU(s)
	if err != nil {
		return nil, err
	}
	f.Solve(rhs, rhs)
	for k := range rhs {
		rhs[k] = -rhs[k]
	}
	return rhs, nil
}

// EvalAssocH3Cubic computes A3(H3)(s) = (sI−G1)⁻¹·G3·(sI−⊕³G1)⁻¹·b^{3⊗}
// for a SISO cubic system (Corollary 1 + property (8)).
func (r *Realization) EvalAssocH3Cubic(s3 *kron.SumSolver3, s complex128) ([]complex128, error) {
	sys := r.Sys
	if sys.Inputs() != 1 || sys.G3 == nil {
		return nil, errNotSISO
	}
	n := sys.N
	b := sys.B.Col(0)
	b3 := kron.VecKron(kron.VecKron(b, b), b)
	z, err := s3.SolveC(s, mat.ToComplex(b3))
	if err != nil {
		return nil, err
	}
	rhs := make([]complex128, n)
	tmp := mat.GetCVec(len(z))
	for i, v := range z {
		tmp[i] = -v
	}
	sys.G3.MulVecC(rhs, tmp)
	mat.PutCVec(tmp)
	f, err := r.shiftedCLU(s)
	if err != nil {
		return nil, err
	}
	f.Solve(rhs, rhs)
	for k := range rhs {
		rhs[k] = -rhs[k]
	}
	return rhs, nil
}
