// Package assoc implements the associated-transform realizations that are
// the paper's core contribution: the single-s linear state spaces of
// A2(H2) (Eq. (17)) and A3(H3) (§2.2), together with the structure-
// exploiting shifted solvers of §2.3. The realization matrix
//
//	G̃2 = ⎡G1  G2⎤   ∈ R^{(n+n²)×(n+n²)},  b̃2 = ⎡D1·b⎤,  c̃2 = [I 0]
//	     ⎣0  ⊕²G1⎦                              ⎣b⊗b ⎦
//
// is never formed: every (G̃2 − τI)⁻¹ application is one Kronecker-sum
// solve (a Sylvester equation over the cached Schur form of G1) plus one
// shifted LU solve with G1 — O(n³) instead of O((n+n²)³).
package assoc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"avtmor/internal/kron"
	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/schur"
	"avtmor/internal/solver"
)

// Realization bundles a QLDAE with the cached factorizations used by every
// associated-transform computation. All shift-invert back-solves with
// (G1 − τI) go through one solver.ShiftedCache, so the backend (dense LU,
// sparse LU, or auto-routed) is a constructor choice and factorizations
// are shared across H1/H2/H3 and across multipoint expansion
// frequencies. The Schur form of G1 that powers the Kronecker-sum
// solves of H2/H3 is computed lazily on first use: linear-only (H1)
// reductions of large sparse circuits never pay the O(n³) step.
//
// A Realization is safe for the concurrent moment generation of
// core.Reduce's parallel fan-out: the shifted caches are mutexed, and
// distinct shifts factor concurrently.
type Realization struct {
	Sys   *qldae.System
	gt2   *Gt2
	sc    *solver.ShiftedCache // cache: (G1 − τI) factorizations
	ctx   context.Context      // cancels the Krylov chains and factor steps
	block int                  // SolveBatch width cap; 0 = batch everything

	mu     sync.Mutex
	s2     *kron.SumSolver2       // guarded by mu; (⊕²G1 − σI)⁻¹ via Schur(G1), lazy
	s2err  error                  // guarded by mu
	s2done bool                   // guarded by mu
	luCplx map[complex128]*lu.CLU // guarded by mu
}

// New prepares the realization with the auto-routed solver backend.
func New(sys *qldae.System) (*Realization, error) {
	return NewWithSolver(sys, nil)
}

// NewWithSolver prepares the realization with an explicit linear-solver
// backend (nil selects solver.Auto).
func NewWithSolver(sys *qldae.System, ls solver.LinearSolver) (*Realization, error) {
	return NewWithSolverCtx(context.Background(), sys, ls)
}

// NewWithSolverCtx is NewWithSolver bound to a context: every moment
// chain, resolvent power, and shifted factor step of this realization
// polls ctx and aborts with its error once the caller gives up. One
// Realization serves one Reduce call, so binding the context at
// construction keeps the per-iteration hot paths signature-stable.
func NewWithSolverCtx(ctx context.Context, sys *qldae.System, ls solver.LinearSolver) (*Realization, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := &Realization{
		Sys:    sys,
		sc:     solver.NewShiftedCache(solver.Operand(sys.G1, sys.G1S), nil, ls),
		ctx:    ctx,
		luCplx: map[complex128]*lu.CLU{},
	}
	r.gt2 = &Gt2{r: r}
	return r, nil
}

// SetBlockSize caps how many right-hand sides the moment generators
// group into one SolveBatch call: 0 (the default) batches every column
// that shares a shift, 1 reproduces the vector-granular legacy path,
// and k > 1 caps blocks at k columns. Per-column results are
// bit-identical for every setting — SolveBatch is arithmetic-equivalent
// to looped Solve — so the ROM does not depend on the choice; only the
// locality/scratch-memory trade-off moves. Call before moment
// generation starts: the value is read concurrently afterwards.
func (r *Realization) SetBlockSize(k int) {
	if k < 0 {
		k = 0
	}
	r.block = k
}

// solveBatch pushes cols through f in blocks of the configured width.
// Each column is overwritten in place with its solution.
func (r *Realization) solveBatch(f solver.Factorization, cols [][]float64) {
	n := len(cols)
	if n == 0 {
		return
	}
	bs := r.block
	if bs <= 0 || bs > n {
		bs = n
	}
	for i := 0; i < n; i += bs {
		j := i + bs
		if j > n {
			j = n
		}
		f.SolveBatch(cols[i:j])
	}
}

// SolverStats reports the shifted-factorization cache counters (factor
// steps actually paid, cache hits, batch-solve traffic) for the
// observability layer.
func (r *Realization) SolverStats() solver.CacheStats { return r.sc.Stats() }

// SolverBackend names the backend the shifted pencil actually factors
// through (Auto resolved to its routing decision).
func (r *Realization) SolverBackend() string { return r.sc.BackendName() }

// Sum2 returns the lazily-built Kronecker-sum solver over Schur(G1).
// The H2/H3 structured solves need the dense G1; CSR-only systems get
// an explanatory error instead of an n×n densification.
func (r *Realization) Sum2() (*kron.SumSolver2, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.s2done {
		r.s2done = true
		if r.Sys.G1 == nil {
			r.s2err = errors.New("assoc: H2/H3 associated solves need a dense G1 (CSR-only system); supply qldae.System.G1 or reduce with K2 = K3 = 0")
		} else if s2, err := kron.NewSumSolver2(r.Sys.G1); err != nil {
			r.s2err = fmt.Errorf("assoc: Schur of G1 failed: %w", err)
		} else {
			r.s2 = s2
		}
	}
	return r.s2, r.s2err
}

// Schur returns the cached Schur form of G1 (computing it on first use).
func (r *Realization) Schur() (*schur.Schur, error) {
	s2, err := r.Sum2()
	if err != nil {
		return nil, err
	}
	return s2.Schur(), nil
}

// Gt2Solver returns the shifted solver for the Eq.-(17) matrix G̃2.
func (r *Realization) Gt2Solver() *Gt2 { return r.gt2 }

// shiftedLU returns a cached factorization of (G1 − τI) from the
// solver-backed shift cache.
func (r *Realization) shiftedLU(tau float64) (solver.Factorization, error) {
	f, err := r.sc.FactorCtx(r.ctx, -tau)
	if err != nil {
		return nil, fmt.Errorf("assoc: (G1 − %g·I) singular: %w", tau, err)
	}
	// Scale of the shifted pencil (max(‖G1‖_max, |τ|) bounds
	// ‖G1 − τI‖_max within a factor of 2), so the ratio test keeps its
	// meaning when |τ| dwarfs the matrix entries.
	scale := math.Max(r.sc.Scale(), math.Abs(tau))
	if f.MinAbsPivot() < 1e-12*scale {
		return nil, fmt.Errorf("assoc: (G1 − %g·I) is numerically singular (pivot ratio %.2g); expand at a non-DC point s0",
			tau, f.MinAbsPivot()/scale)
	}
	return f, nil
}

// shiftedCLU returns a cached complex factorization of (G1 − τI); this
// verification-only path stays dense.
func (r *Realization) shiftedCLU(tau complex128) (*lu.CLU, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.luCplx[tau]; ok {
		return f, nil
	}
	if r.Sys.G1 == nil {
		return nil, errors.New("assoc: complex-frequency evaluation needs a dense G1 (CSR-only system)")
	}
	f, err := lu.ShiftedReal(r.Sys.G1, -tau)
	if err != nil {
		return nil, fmt.Errorf("assoc: (G1 − %v·I) singular: %w", tau, err)
	}
	r.luCplx[tau] = f
	return f, nil
}

// Btilde2 builds the input column of the Eq.-(17) realization for input
// pair (i, j): [½(D1ᵢ·bⱼ + D1ⱼ·bᵢ); ½(bᵢ⊗bⱼ + bⱼ⊗bᵢ)]. For SISO (i=j=0)
// this is exactly [D1·b; b⊗b].
func (r *Realization) Btilde2(i, j int) []float64 {
	sys := r.Sys
	n := sys.N
	out := make([]float64, n+n*n)
	tmp := make([]float64, n)
	if sys.D1 != nil {
		if sys.D1[i] != nil {
			sys.D1[i].MulVec(tmp, sys.B.Col(j))
			mat.Axpy(0.5, tmp, out[:n])
		}
		if sys.D1[j] != nil {
			sys.D1[j].MulVec(tmp, sys.B.Col(i))
			mat.Axpy(0.5, tmp, out[:n])
		}
	}
	bi, bj := sys.B.Col(i), sys.B.Col(j)
	kij := kron.VecKron(bi, bj)
	kji := kron.VecKron(bj, bi)
	for k := range kij {
		out[n+k] = 0.5 * (kij[k] + kji[k])
	}
	return out
}

// Gt2 solves (G̃2 − τI)·z = rhs by block back-substitution:
// w = (⊕²G1 − τI)⁻¹·g, then x = (G1 − τI)⁻¹·(f − G2·w). It implements
// kron.ShiftedSolver so that the H̃3 operator (G1 ⊕ G̃2) can be handled by
// the shared column recurrence.
type Gt2 struct {
	r *Realization
}

// Dim returns n + n².
func (g *Gt2) Dim() int {
	n := g.r.Sys.N
	return n + n*n
}

// SolveShifted computes (G̃2 − τI)⁻¹·rhs for real τ. It is the inner
// solve of every H2 Arnoldi step and of each H3 resolvent column, so
// the ctx poll here is what makes those chains cancelable.
func (g *Gt2) SolveShifted(tau float64, rhs []float64) ([]float64, error) {
	if err := g.r.ctx.Err(); err != nil {
		return nil, err
	}
	n := g.r.Sys.N
	if len(rhs) != n+n*n {
		panic("assoc: Gt2 SolveShifted length mismatch")
	}
	s2, err := g.r.Sum2()
	if err != nil {
		return nil, err
	}
	w, err := s2.Solve(tau, rhs[n:])
	if err != nil {
		return nil, err
	}
	f, err := g.r.shiftedLU(tau)
	if err != nil {
		return nil, err
	}
	top := mat.CopyVec(rhs[:n])
	if g.r.Sys.G2 != nil {
		g.r.Sys.G2.AddMulVec(top, -1, w)
	}
	f.Solve(top, top)
	out := make([]float64, n+n*n)
	copy(out[:n], top)
	copy(out[n:], w)
	return out, nil
}

// SolveShiftedBatch computes (G̃2 − τI)⁻¹·rhs for a block of right-hand
// sides sharing one shift: the Kronecker-sum solves stay per column
// (the Schur recurrence is inherently vector-granular), but the top
// blocks all go through one batched (G1 − τI) substitution — the chain
// grouping of the block solve path. Per-column results are
// bit-identical to looped SolveShifted calls.
func (g *Gt2) SolveShiftedBatch(tau float64, rhss [][]float64) ([][]float64, error) {
	if err := g.r.ctx.Err(); err != nil {
		return nil, err
	}
	n := g.r.Sys.N
	s2, err := g.r.Sum2()
	if err != nil {
		return nil, err
	}
	f, err := g.r.shiftedLU(tau)
	if err != nil {
		return nil, err
	}
	// The top blocks solve in place inside the output buffers: outs[i]
	// is assembled as [rhs top | w] and its leading n entries are then
	// corrected and substituted directly — no per-column staging copy.
	outs := make([][]float64, len(rhss))
	tops := make([][]float64, len(rhss))
	ws := make([][]float64, len(rhss))
	for i, rhs := range rhss {
		if len(rhs) != n+n*n {
			panic("assoc: Gt2 SolveShiftedBatch length mismatch")
		}
		w, err := s2.Solve(tau, rhs[n:])
		if err != nil {
			return nil, err
		}
		out := make([]float64, n+n*n)
		copy(out[:n], rhs[:n])
		copy(out[n:], w)
		outs[i] = out
		tops[i] = out[:n]
		ws[i] = out[n:]
	}
	if g.r.Sys.G2 != nil {
		// One batched G2 pass for every column's coupling term (the row
		// metadata of the n×n² block is traversed once for the block).
		g2w := make([][]float64, len(ws))
		for i := range g2w {
			g2w[i] = mat.GetVec(n)
		}
		g.r.Sys.G2.MulBatchTo(g2w, ws)
		for i := range tops {
			mat.Axpy(-1, g2w[i], tops[i])
			mat.PutVec(g2w[i])
		}
	}
	g.r.solveBatch(f, tops)
	return outs, nil
}

// SolveShiftedC computes (G̃2 − τI)⁻¹·rhs for complex τ.
func (g *Gt2) SolveShiftedC(tau complex128, rhs []complex128) ([]complex128, error) {
	n := g.r.Sys.N
	if len(rhs) != n+n*n {
		panic("assoc: Gt2 SolveShiftedC length mismatch")
	}
	s2, err := g.r.Sum2()
	if err != nil {
		return nil, err
	}
	w, err := s2.SolveC(tau, rhs[n:])
	if err != nil {
		return nil, err
	}
	f, err := g.r.shiftedCLU(tau)
	if err != nil {
		return nil, err
	}
	top := make([]complex128, n)
	copy(top, rhs[:n])
	if g.r.Sys.G2 != nil {
		g2w := make([]complex128, n)
		g.r.Sys.G2.MulVecC(g2w, w)
		for i := range top {
			top[i] -= g2w[i]
		}
	}
	f.Solve(top, top)
	out := make([]complex128, n+n*n)
	copy(out[:n], top)
	copy(out[n:], w)
	return out, nil
}

// SolveKron solves (G1⊕G̃2 − σI)·z = v, the resolvent of the H̃3
// realization, via the shared column recurrence over Schur(G1) with inner
// G̃2 solves. v has length n·(n+n²), stored as n column-stacked blocks.
func (r *Realization) SolveKron(sigma float64, v []float64) ([]float64, error) {
	s, err := r.Schur()
	if err != nil {
		return nil, err
	}
	return kron.ColumnSylvester(r.gt2, s, sigma, v)
}

// SolveKronC is the complex-shift variant of SolveKron.
func (r *Realization) SolveKronC(sigma complex128, v []complex128) ([]complex128, error) {
	s, err := r.Schur()
	if err != nil {
		return nil, err
	}
	return kron.ColumnSylvesterC(r.gt2, s, sigma, v)
}

// BuildGt2Dense forms G̃2 explicitly. Exponential in memory (n+n²)²; test
// and diagnostic use only.
func BuildGt2Dense(sys *qldae.System) *mat.Dense {
	n := sys.N
	nn := n + n*n
	g := mat.NewDense(nn, nn)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, sys.G1.At(i, j))
		}
	}
	if sys.G2 != nil {
		d := sys.G2.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n*n; j++ {
				g.Set(i, n+j, d.At(i, j))
			}
		}
	}
	ks := kron.SumDense(sys.G1, sys.G1)
	for i := 0; i < n*n; i++ {
		for j := 0; j < n*n; j++ {
			g.Set(n+i, n+j, ks.At(i, j))
		}
	}
	return g
}

// errNotSISO flags H3 paths that are implemented for single-input systems.
var errNotSISO = errors.New("assoc: third-order associated transform requires a SISO system")
