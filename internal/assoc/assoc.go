// Package assoc implements the associated-transform realizations that are
// the paper's core contribution: the single-s linear state spaces of
// A2(H2) (Eq. (17)) and A3(H3) (§2.2), together with the structure-
// exploiting shifted solvers of §2.3. The realization matrix
//
//	G̃2 = ⎡G1  G2⎤   ∈ R^{(n+n²)×(n+n²)},  b̃2 = ⎡D1·b⎤,  c̃2 = [I 0]
//	     ⎣0  ⊕²G1⎦                              ⎣b⊗b ⎦
//
// is never formed: every (G̃2 − τI)⁻¹ application is one Kronecker-sum
// solve (a Sylvester equation over the cached Schur form of G1) plus one
// shifted LU solve with G1 — O(n³) instead of O((n+n²)³).
package assoc

import (
	"errors"
	"fmt"

	"avtmor/internal/kron"
	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/schur"
)

// Realization bundles a QLDAE with the cached factorizations used by every
// associated-transform computation.
type Realization struct {
	Sys *qldae.System
	S2  *kron.SumSolver2 // (⊕²G1 − σI)⁻¹ via Schur(G1)
	gt2 *Gt2

	luReal map[float64]*lu.LU // cache: (G1 − τI) factorizations
	luCplx map[complex128]*lu.CLU
}

// New prepares the realization (one Schur decomposition of G1).
func New(sys *qldae.System) (*Realization, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	s2, err := kron.NewSumSolver2(sys.G1)
	if err != nil {
		return nil, fmt.Errorf("assoc: Schur of G1 failed: %w", err)
	}
	r := &Realization{
		Sys:    sys,
		S2:     s2,
		luReal: map[float64]*lu.LU{},
		luCplx: map[complex128]*lu.CLU{},
	}
	r.gt2 = &Gt2{r: r}
	return r, nil
}

// Schur returns the cached Schur form of G1.
func (r *Realization) Schur() *schur.Schur { return r.S2.Schur() }

// Gt2Solver returns the shifted solver for the Eq.-(17) matrix G̃2.
func (r *Realization) Gt2Solver() *Gt2 { return r.gt2 }

// shiftedLU returns a cached factorization of (G1 − τI).
func (r *Realization) shiftedLU(tau float64) (*lu.LU, error) {
	if f, ok := r.luReal[tau]; ok {
		return f, nil
	}
	m := r.Sys.G1.Clone()
	for i := 0; i < m.R; i++ {
		m.Add(i, i, -tau)
	}
	f, err := lu.Factor(m)
	if err != nil {
		return nil, fmt.Errorf("assoc: (G1 − %g·I) singular: %w", tau, err)
	}
	scale := m.MaxAbs()
	if f.MinAbsPivot() < 1e-12*scale {
		return nil, fmt.Errorf("assoc: (G1 − %g·I) is numerically singular (pivot ratio %.2g); expand at a non-DC point s0",
			tau, f.MinAbsPivot()/scale)
	}
	r.luReal[tau] = f
	return f, nil
}

// shiftedCLU returns a cached complex factorization of (G1 − τI).
func (r *Realization) shiftedCLU(tau complex128) (*lu.CLU, error) {
	if f, ok := r.luCplx[tau]; ok {
		return f, nil
	}
	f, err := lu.ShiftedReal(r.Sys.G1, -tau)
	if err != nil {
		return nil, fmt.Errorf("assoc: (G1 − %v·I) singular: %w", tau, err)
	}
	r.luCplx[tau] = f
	return f, nil
}

// Btilde2 builds the input column of the Eq.-(17) realization for input
// pair (i, j): [½(D1ᵢ·bⱼ + D1ⱼ·bᵢ); ½(bᵢ⊗bⱼ + bⱼ⊗bᵢ)]. For SISO (i=j=0)
// this is exactly [D1·b; b⊗b].
func (r *Realization) Btilde2(i, j int) []float64 {
	sys := r.Sys
	n := sys.N
	out := make([]float64, n+n*n)
	tmp := make([]float64, n)
	if sys.D1 != nil {
		if sys.D1[i] != nil {
			sys.D1[i].MulVec(tmp, sys.B.Col(j))
			mat.Axpy(0.5, tmp, out[:n])
		}
		if sys.D1[j] != nil {
			sys.D1[j].MulVec(tmp, sys.B.Col(i))
			mat.Axpy(0.5, tmp, out[:n])
		}
	}
	bi, bj := sys.B.Col(i), sys.B.Col(j)
	kij := kron.VecKron(bi, bj)
	kji := kron.VecKron(bj, bi)
	for k := range kij {
		out[n+k] = 0.5 * (kij[k] + kji[k])
	}
	return out
}

// Gt2 solves (G̃2 − τI)·z = rhs by block back-substitution:
// w = (⊕²G1 − τI)⁻¹·g, then x = (G1 − τI)⁻¹·(f − G2·w). It implements
// kron.ShiftedSolver so that the H̃3 operator (G1 ⊕ G̃2) can be handled by
// the shared column recurrence.
type Gt2 struct {
	r *Realization
}

// Dim returns n + n².
func (g *Gt2) Dim() int {
	n := g.r.Sys.N
	return n + n*n
}

// SolveShifted computes (G̃2 − τI)⁻¹·rhs for real τ.
func (g *Gt2) SolveShifted(tau float64, rhs []float64) ([]float64, error) {
	n := g.r.Sys.N
	if len(rhs) != n+n*n {
		panic("assoc: Gt2 SolveShifted length mismatch")
	}
	w, err := g.r.S2.Solve(tau, rhs[n:])
	if err != nil {
		return nil, err
	}
	f, err := g.r.shiftedLU(tau)
	if err != nil {
		return nil, err
	}
	top := mat.CopyVec(rhs[:n])
	if g.r.Sys.G2 != nil {
		g.r.Sys.G2.AddMulVec(top, -1, w)
	}
	f.Solve(top, top)
	out := make([]float64, n+n*n)
	copy(out[:n], top)
	copy(out[n:], w)
	return out, nil
}

// SolveShiftedC computes (G̃2 − τI)⁻¹·rhs for complex τ.
func (g *Gt2) SolveShiftedC(tau complex128, rhs []complex128) ([]complex128, error) {
	n := g.r.Sys.N
	if len(rhs) != n+n*n {
		panic("assoc: Gt2 SolveShiftedC length mismatch")
	}
	w, err := g.r.S2.SolveC(tau, rhs[n:])
	if err != nil {
		return nil, err
	}
	f, err := g.r.shiftedCLU(tau)
	if err != nil {
		return nil, err
	}
	top := make([]complex128, n)
	copy(top, rhs[:n])
	if g.r.Sys.G2 != nil {
		g2w := make([]complex128, n)
		g.r.Sys.G2.MulVecC(g2w, w)
		for i := range top {
			top[i] -= g2w[i]
		}
	}
	f.Solve(top, top)
	out := make([]complex128, n+n*n)
	copy(out[:n], top)
	copy(out[n:], w)
	return out, nil
}

// SolveKron solves (G1⊕G̃2 − σI)·z = v, the resolvent of the H̃3
// realization, via the shared column recurrence over Schur(G1) with inner
// G̃2 solves. v has length n·(n+n²), stored as n column-stacked blocks.
func (r *Realization) SolveKron(sigma float64, v []float64) ([]float64, error) {
	return kron.ColumnSylvester(r.gt2, r.Schur(), sigma, v)
}

// SolveKronC is the complex-shift variant of SolveKron.
func (r *Realization) SolveKronC(sigma complex128, v []complex128) ([]complex128, error) {
	return kron.ColumnSylvesterC(r.gt2, r.Schur(), sigma, v)
}

// BuildGt2Dense forms G̃2 explicitly. Exponential in memory (n+n²)²; test
// and diagnostic use only.
func BuildGt2Dense(sys *qldae.System) *mat.Dense {
	n := sys.N
	nn := n + n*n
	g := mat.NewDense(nn, nn)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, sys.G1.At(i, j))
		}
	}
	if sys.G2 != nil {
		d := sys.G2.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n*n; j++ {
				g.Set(i, n+j, d.At(i, j))
			}
		}
	}
	ks := kron.SumDense(sys.G1, sys.G1)
	for i := 0; i < n*n; i++ {
		for j := 0; j < n*n; j++ {
			g.Set(n+i, n+j, ks.At(i, j))
		}
	}
	return g
}

// errNotSISO flags H3 paths that are implemented for single-input systems.
var errNotSISO = errors.New("assoc: third-order associated transform requires a SISO system")
