package assoc

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"avtmor/internal/kron"
	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
	"avtmor/internal/volterra"
)

// testSystem builds a small random stable SISO QLDAE with G2 and D1.
func testSystem(rng *rand.Rand, n int, withD1 bool) *qldae.System {
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 3*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.4*(2*rng.Float64()-1))
	}
	s := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G2: g2b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	if withD1 {
		s.D1 = []*mat.Dense{mat.RandDense(rng, n, n).Scale(0.3)}
	}
	return s
}

func cdiff(a, b []complex128) float64 {
	d := make([]complex128, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return mat.CNorm2(d)
}

func TestGt2SolveAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(4)
		sys := testSystem(rng, n, true)
		r, err := New(sys)
		if err != nil {
			t.Fatal(err)
		}
		gd := BuildGt2Dense(sys)
		nn := n + n*n
		tau := 0.3 * rng.Float64()
		rhs := mat.RandVec(rng, nn)
		got, err := r.Gt2Solver().SolveShifted(tau, rhs)
		if err != nil {
			t.Fatal(err)
		}
		shifted := gd.Clone()
		for i := 0; i < nn; i++ {
			shifted.Add(i, i, -tau)
		}
		want, err := lu.Solve(shifted, rhs)
		if err != nil {
			t.Fatal(err)
		}
		diff := make([]float64, nn)
		mat.SubVec(diff, got, want)
		if mat.Norm2(diff) > 1e-8*(1+mat.Norm2(want)) {
			t.Fatalf("trial %d: structured vs dense G̃2 solve differ by %g", trial, mat.Norm2(diff))
		}
	}
}

func TestGt2SolveComplexAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3
	sys := testSystem(rng, n, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	gd := BuildGt2Dense(sys)
	nn := n + n*n
	tau := 0.2 + 1.4i
	rhs := make([]complex128, nn)
	for i := range rhs {
		rhs[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	got, err := r.Gt2Solver().SolveShiftedC(tau, rhs)
	if err != nil {
		t.Fatal(err)
	}
	// Dense residual: (G̃2 − τI)·got − rhs.
	res := make([]complex128, nn)
	gd.Complex().MulVec(res, got)
	for i := range res {
		res[i] -= tau*got[i] + rhs[i]
	}
	if mat.CNorm2(res) > 1e-8 {
		t.Fatalf("complex G̃2 residual %g", mat.CNorm2(res))
	}
}

func TestSolveKronAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 3
	sys := testSystem(rng, n, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	gd := BuildGt2Dense(sys)
	big := kron.SumDense(sys.G1, gd) // G1 ⊕ G̃2
	nn := big.R
	sigma := 0.15
	v := mat.RandVec(rng, nn)
	got, err := r.SolveKron(sigma, v)
	if err != nil {
		t.Fatal(err)
	}
	shifted := big.Clone()
	for i := 0; i < nn; i++ {
		shifted.Add(i, i, -sigma)
	}
	want, err := lu.Solve(shifted, v)
	if err != nil {
		t.Fatal(err)
	}
	diff := make([]float64, nn)
	mat.SubVec(diff, got, want)
	if mat.Norm2(diff) > 1e-7*(1+mat.Norm2(want)) {
		t.Fatalf("G1⊕G̃2 solve differs from dense by %g", mat.Norm2(diff))
	}
}

func TestEvalAssocH2AgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4; trial++ {
		n := 3 + rng.Intn(4)
		sys := testSystem(rng, n, trial%2 == 0)
		r, err := New(sys)
		if err != nil {
			t.Fatal(err)
		}
		o, err := volterra.NewOracle(sys)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := o.AssocH2(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []complex128{0.9, 0.3 + 2i, -0.1 + 0.7i, 5} {
			got, err := r.EvalAssocH2(0, 0, s)
			if err != nil {
				t.Fatal(err)
			}
			want := pf.Eval(s)
			if d := cdiff(got, want); d > 1e-7*(1+mat.CNorm2(want)) {
				t.Fatalf("trial %d s=%v: realization vs oracle differ by %g", trial, s, d)
			}
		}
	}
}

func TestEvalAssocH3AgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		n := 3 + rng.Intn(3)
		sys := testSystem(rng, n, true)
		r, err := New(sys)
		if err != nil {
			t.Fatal(err)
		}
		o, err := volterra.NewOracle(sys)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := o.AssocH3()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []complex128{1.1, 0.4 + 1.3i, 3} {
			got, err := r.EvalAssocH3(s)
			if err != nil {
				t.Fatal(err)
			}
			want := pf.Eval(s)
			if d := cdiff(got, want); d > 1e-6*(1+mat.CNorm2(want)) {
				t.Fatalf("trial %d s=%v: A3(H3) realization vs oracle differ by %g", trial, s, d)
			}
		}
	}
}

func TestOracleResidueSumIsD1b(t *testing.T) {
	// h2(0,0) = D1·b — the identity behind the D1²b term of A3(H3).
	rng := rand.New(rand.NewSource(6))
	sys := testSystem(rng, 5, true)
	o, err := volterra.NewOracle(sys)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := o.AssocH2(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := pf.SumResidues()
	want := make([]float64, sys.N)
	sys.D1[0].MulVec(want, sys.B.Col(0))
	for i := range got {
		if cmplx.Abs(got[i]-complex(want[i], 0)) > 1e-7 {
			t.Fatalf("Σ residues component %d: %v vs D1b %v", i, got[i], want[i])
		}
	}
}

func TestDiagonalKernelAgainstExpm(t *testing.T) {
	// h2(t,t) = c̃2·e^{G̃2·t}·b̃2 (dense matrix exponential) must match the
	// inverse Laplace of the oracle PF: Σ res_m·e^{μ_m·t}.
	rng := rand.New(rand.NewSource(7))
	sys := testSystem(rng, 3, true)
	o, err := volterra.NewOracle(sys)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := o.AssocH2(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := New(sys)
	gd := BuildGt2Dense(sys)
	bt := r.Btilde2(0, 0)
	for _, tt := range []float64{0.1, 0.5, 1.5} {
		e := mat.Expm(gd.Clone().Scale(tt))
		full := make([]float64, len(bt))
		e.MulVec(full, bt)
		want := full[:sys.N]
		got := make([]complex128, sys.N)
		for m, mu := range pf.Poles {
			em := cmplx.Exp(mu * complex(tt, 0))
			for i, res := range pf.Res[m] {
				got[i] += res * em
			}
		}
		for i := range want {
			if cmplx.Abs(got[i]-complex(want[i], 0)) > 1e-7 {
				t.Fatalf("t=%v comp %d: PF %v vs expm %v", tt, i, got[i], want[i])
			}
		}
	}
}

func TestEvalAssocH3CubicAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 4
	g3b := sparse.NewBuilder(n, n*n*n)
	for i := 0; i < 2*n; i++ {
		g3b.Add(rng.Intn(n), rng.Intn(n*n*n), 0.3*(2*rng.Float64()-1))
	}
	sys := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G3: g3b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := kron.NewSumSolver3(sys.G1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := volterra.NewOracle(sys)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := o.AssocH3Cubic()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []complex128{0.8, 0.2 + 1.1i} {
		got, err := r.EvalAssocH3Cubic(s3, s)
		if err != nil {
			t.Fatal(err)
		}
		want := pf.Eval(s)
		if d := cdiff(got, want); d > 1e-7*(1+mat.CNorm2(want)) {
			t.Fatalf("s=%v: cubic A3(H3) differs from oracle by %g", s, d)
		}
	}
}

func TestEvalH1MatchesVolterra(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sys := testSystem(rng, 6, false)
	r, _ := New(sys)
	s := 0.3 + 0.9i
	got, err := r.EvalH1(0, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := volterra.H1(sys, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if d := cdiff(got, want); d > 1e-10 {
		t.Fatalf("H1 mismatch %g", d)
	}
}
