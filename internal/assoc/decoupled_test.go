package assoc

import (
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/qr"
)

func TestSolvePiResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3; trial++ {
		sys := testSystem(rng, 4+trial, trial%2 == 0)
		r, err := New(sys)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := r.SolvePi()
		if err != nil {
			t.Fatal(err)
		}
		if res := r.PiResidual(pi); res > 1e-8 {
			t.Fatalf("trial %d: Π residual %g", trial, res)
		}
	}
}

func TestSolvePiDiagonalizes(t *testing.T) {
	// With Π in hand, Eq. (18) says the transformed realization is block
	// diagonal: verify H2(s) = (sI−G1)⁻¹(D1b − Πb²) + Π(sI−⊕²G1)⁻¹b²
	// against the block-triangular evaluation at sample points.
	rng := rand.New(rand.NewSource(22))
	sys := testSystem(rng, 5, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := r.SolvePi()
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N
	bt := r.Btilde2(0, 0)
	top, b2 := bt[:n], bt[n:]
	for _, s := range []complex128{0.7, 0.2 + 1.1i} {
		want, err := r.EvalAssocH2(0, 0, s)
		if err != nil {
			t.Fatal(err)
		}
		// Subsystem 1: (sI−G1)⁻¹(top − Π·b²).
		seed := make([]float64, n)
		pi.MulVec(seed, b2)
		mat.ScaleVec(-1, seed)
		mat.Axpy(1, top, seed)
		f, err := r.shiftedCLU(s)
		if err != nil {
			t.Fatal(err)
		}
		x1 := mat.ToComplex(seed)
		f.Solve(x1, x1)
		for i := range x1 {
			x1[i] = -x1[i] // (sI−G1)⁻¹ = −(G1−sI)⁻¹
		}
		// Subsystem 2: Π·(sI−⊕²G1)⁻¹·b².
		s2, err := r.Sum2()
		if err != nil {
			t.Fatal(err)
		}
		w, err := s2.SolveC(s, mat.ToComplex(b2))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n)
		piC := pi.Complex()
		piC.MulVec(got, w)
		for i := range got {
			got[i] = x1[i] - got[i] // minus: (sI−⊕²G1)⁻¹ = −solver result
		}
		if d := cdiff(got, want); d > 1e-7*(1+mat.CNorm2(want)) {
			t.Fatalf("s=%v: decoupled H2 differs from block-triangular by %g", s, d)
		}
	}
}

func TestH2CandidatesDecoupledSpansSameSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sys := testSystem(rng, 6, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	const k2 = 3
	blockPath, err := r.H2Candidates(k2, 0)
	if err != nil {
		t.Fatal(err)
	}
	decoupled, err := r.H2CandidatesDecoupled(k2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoupled) < len(blockPath) {
		t.Fatalf("decoupled path produced fewer candidates (%d < %d)", len(decoupled), len(blockPath))
	}
	// Every block-path vector must lie in the decoupled span (the
	// decoupled set splits the same sums into separate chains).
	basis := qr.Orthonormalize(decoupled, 1e-12)
	for k, v := range blockPath {
		coef := make([]float64, basis.C)
		basis.MulVecT(coef, v)
		rec := make([]float64, len(v))
		basis.MulVec(rec, coef)
		mat.Axpy(-1, v, rec)
		if mat.Norm2(rec) > 1e-6 {
			t.Fatalf("block-path candidate %d outside decoupled span (residual %g)", k, mat.Norm2(rec))
		}
	}
}

func TestDecoupledFallsBackWithoutG2(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 5
	sys := testSystem(rng, n, true)
	sys.G2 = nil
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := r.H2CandidatesDecoupled(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cand) == 0 {
		t.Fatal("expected D1-only H2 candidates via fallback")
	}
	if _, err := r.SolvePi(); err == nil {
		t.Fatal("SolvePi without G2 must error")
	}
}
