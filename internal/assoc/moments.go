package assoc

import (
	"fmt"

	"avtmor/internal/arnoldi"
	"avtmor/internal/kron"
	"avtmor/internal/mat"
)

// Moment-space generation for the proposed NMOR scheme (§2.3): one Krylov
// subspace per Volterra order, all in the single associated variable s.
// Every vector returned lives in the original n-dimensional state space.

// H1Moments returns the k1 shift-inverted Krylov vectors
// {M⁻¹b, …, M^{−k1}b} per input, M = G1 − s0·I (iterates are normalized;
// spans are unchanged). The back-solves run through the solver-backed
// factorization cache, so the one factor of M — dense or sparse LU —
// is shared with every other moment order and expansion point.
func (r *Realization) H1Moments(k1 int, s0 float64) ([][]float64, error) {
	if k1 <= 0 {
		return nil, nil
	}
	f, err := r.shiftedLU(s0)
	if err != nil {
		return nil, err
	}
	op := arnoldi.SolveOp{F: f}
	var out [][]float64
	for in := 0; in < r.Sys.Inputs(); in++ {
		w := r.Sys.B.Col(in)
		for k := 0; k < k1; k++ {
			if err := r.ctx.Err(); err != nil {
				return nil, err
			}
			next := make([]float64, len(w))
			op.Apply(next, w)
			if n2 := mat.Norm2(next); n2 > 0 {
				mat.ScaleVec(1/n2, next)
			}
			out = append(out, next)
			w = next
		}
	}
	return out, nil
}

// H2Candidates runs k2 steps of block Arnoldi on (G̃2 − s0·I)⁻¹ in the
// (n+n²)-dimensional realization space, starting from the b̃2 columns of
// every unordered input pair, and returns the top-n blocks of the
// orthonormal iterates. Those blocks span the state-moment space of
// A2(H2)(s) about s0 (the orthonormalization is a triangular change of
// basis, which the block extraction commutes with).
func (r *Realization) H2Candidates(k2 int, s0 float64) ([][]float64, error) {
	if k2 <= 0 {
		return nil, nil
	}
	sys := r.Sys
	if sys.G2 == nil && sys.D1 == nil {
		return nil, nil // H2 ≡ 0
	}
	n := sys.N
	var start [][]float64
	var solveErr error
	for i := 0; i < sys.Inputs(); i++ {
		for j := i; j < sys.Inputs(); j++ {
			bt := r.Btilde2(i, j)
			if mat.Norm2(bt) == 0 {
				continue
			}
			w, err := r.gt2.SolveShifted(s0, bt)
			if err != nil {
				return nil, err
			}
			start = append(start, w)
		}
	}
	if len(start) == 0 {
		return nil, nil
	}
	op := arnoldi.FuncOp{N: r.gt2.Dim(), F: func(dst, src []float64) {
		w, err := r.gt2.SolveShifted(s0, src)
		if err != nil {
			solveErr = err
			mat.Zero(dst)
			return
		}
		copy(dst, w)
	}}
	res := arnoldi.Krylov(op, start, k2, 0)
	if solveErr != nil {
		return nil, solveErr
	}
	if res.V == nil {
		return nil, nil
	}
	var out [][]float64
	for c := 0; c < res.V.C; c++ {
		col := res.V.Col(c)
		top := mat.CopyVec(col[:n])
		if n2 := mat.Norm2(top); n2 > 1e-14 {
			mat.ScaleVec(1/n2, top)
			out = append(out, top)
		}
	}
	return out, nil
}

// H3Moments returns the exact state-moment vectors m_0 … m_{k3−1} of
// A3(H3)(s) about s0 for a SISO quadratic QLDAE:
//
//	m_k = Σ_{i+j=k} M^{−(i+1)}·G2·out_j − M^{−(k+1)}·D1²b,
//
// where out_j is the symmetrized output of the j-th resolvent power of
// the H̃3 realization (one (G1⊕G̃2 − s0·I)-solve per j).
func (r *Realization) H3Moments(k3 int, s0 float64) ([][]float64, error) {
	if k3 <= 0 {
		return nil, nil
	}
	sys := r.Sys
	if sys.Inputs() != 1 {
		return nil, errNotSISO
	}
	if sys.G2 == nil && (sys.D1 == nil || sys.D1[0] == nil) {
		return nil, nil // H3 of the quadratic branch vanishes
	}
	n := sys.N
	n2 := n + n*n
	f, err := r.shiftedLU(s0)
	if err != nil {
		return nil, err
	}
	// w_j = G2·out_j for j = 0..k3-1.
	ws := make([][]float64, 0, k3)
	if sys.G2 != nil {
		bt := r.Btilde2(0, 0)
		b := sys.B.Col(0)
		z := make([]float64, n*n2)
		for p := 0; p < n; p++ {
			if b[p] == 0 {
				continue
			}
			col := z[p*n2 : (p+1)*n2]
			for q, v := range bt {
				col[q] = b[p] * v
			}
		}
		h3t := make([]float64, n*n)
		for j := 0; j < k3; j++ {
			z, err = r.SolveKron(s0, z)
			if err != nil {
				return nil, fmt.Errorf("assoc: H3 resolvent power %d: %w", j+1, err)
			}
			mat.Zero(h3t)
			for jcol := 0; jcol < n; jcol++ {
				for irow := 0; irow < n; irow++ {
					top := z[jcol*n2+irow]
					h3t[jcol*n+irow] += top
					h3t[irow*n+jcol] += top
				}
			}
			w := make([]float64, n)
			sys.G2.MulVec(w, h3t)
			ws = append(ws, w)
		}
	}
	// d2 = D1²·b.
	var d2 []float64
	if sys.D1 != nil && sys.D1[0] != nil {
		b := sys.B.Col(0)
		d1b := make([]float64, n)
		sys.D1[0].MulVec(d1b, b)
		d2 = make([]float64, n)
		sys.D1[0].MulVec(d2, d1b)
	}
	// Table c[j][i] = M^{−(i+1)}·w_j.
	table := make([][][]float64, len(ws))
	for j := range ws {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		cur := ws[j]
		for i := 0; i+j < k3; i++ {
			next := make([]float64, n)
			f.Solve(next, cur)
			table[j] = append(table[j], next)
			cur = next
		}
	}
	// d-term powers M^{−(k+1)}·d2.
	var dpow [][]float64
	if d2 != nil {
		cur := d2
		for k := 0; k < k3; k++ {
			next := make([]float64, n)
			f.Solve(next, cur)
			dpow = append(dpow, next)
			cur = next
		}
	}
	out := make([][]float64, 0, k3)
	for k := 0; k < k3; k++ {
		m := make([]float64, n)
		for j := 0; j <= k && j < len(table); j++ {
			mat.Axpy(1, table[j][k-j], m)
		}
		if dpow != nil {
			mat.Axpy(-1, dpow[k], m)
		}
		if n2v := mat.Norm2(m); n2v > 0 {
			mat.ScaleVec(1/n2v, m)
			out = append(out, m)
		}
	}
	return out, nil
}

// H3MomentsCubic returns the exact state-moment vectors of the cubic
// associated transform A3(H3)(s) = (sI−G1)⁻¹G3(sI−⊕³G1)⁻¹b^{3⊗}:
//
//	m_k = Σ_{i+j=k} M^{−(i+1)}·G3·N3^{−(j+1)}·b^{3⊗},  N3 = ⊕³G1 − s0·I.
func (r *Realization) H3MomentsCubic(s3 *kron.SumSolver3, k3 int, s0 float64) ([][]float64, error) {
	if k3 <= 0 {
		return nil, nil
	}
	sys := r.Sys
	if sys.Inputs() != 1 {
		return nil, errNotSISO
	}
	if sys.G3 == nil {
		return nil, nil
	}
	n := sys.N
	f, err := r.shiftedLU(s0)
	if err != nil {
		return nil, err
	}
	b := sys.B.Col(0)
	z := kron.VecKron(kron.VecKron(b, b), b)
	ws := make([][]float64, 0, k3)
	for j := 0; j < k3; j++ {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		z, err = s3.Solve(s0, z)
		if err != nil {
			return nil, fmt.Errorf("assoc: cubic resolvent power %d: %w", j+1, err)
		}
		w := make([]float64, n)
		sys.G3.MulVec(w, z)
		ws = append(ws, w)
	}
	table := make([][][]float64, len(ws))
	for j := range ws {
		cur := ws[j]
		for i := 0; i+j < k3; i++ {
			next := make([]float64, n)
			f.Solve(next, cur)
			table[j] = append(table[j], next)
			cur = next
		}
	}
	out := make([][]float64, 0, k3)
	for k := 0; k < k3; k++ {
		m := make([]float64, n)
		for j := 0; j <= k; j++ {
			mat.Axpy(1, table[j][k-j], m)
		}
		if n2v := mat.Norm2(m); n2v > 0 {
			mat.ScaleVec(1/n2v, m)
			out = append(out, m)
		}
	}
	return out, nil
}
