package assoc

import (
	"fmt"

	"avtmor/internal/arnoldi"
	"avtmor/internal/kron"
	"avtmor/internal/mat"
	"avtmor/internal/solver"
)

// Moment-space generation for the proposed NMOR scheme (§2.3): one Krylov
// subspace per Volterra order, all in the single associated variable s.
// Every vector returned lives in the original n-dimensional state space.
//
// All chains that share a shift are pushed through the factorization in
// blocks (SolveBatch): the H1 chains of every input advance in
// lockstep, the H3 moment table sweeps all its diagonals at once, and
// the block-Arnoldi frontier of H2 applies the shifted operator to its
// whole frontier per step. Batching is a pure traversal amortization —
// per-column arithmetic is identical to the vector-granular path, so
// the generated candidates (and therefore the ROM) are bit-exact
// regardless of the configured block size.

// H1Moments returns the k1 shift-inverted Krylov vectors
// {M⁻¹b, …, M^{−k1}b} per input, M = G1 − s0·I (iterates are normalized;
// spans are unchanged). The back-solves run through the solver-backed
// factorization cache, so the one factor of M — dense or sparse LU —
// is shared with every other moment order and expansion point; the m
// input chains advance together, one SolveBatch of m columns per
// Krylov step.
func (r *Realization) H1Moments(k1 int, s0 float64) ([][]float64, error) {
	if k1 <= 0 {
		return nil, nil
	}
	f, err := r.shiftedLU(s0)
	if err != nil {
		return nil, err
	}
	m := r.Sys.Inputs()
	// out stays input-major — out[in*k1+k] — matching the legacy chain
	// ordering while the solves sweep step-major across inputs.
	out := make([][]float64, m*k1)
	cur := make([][]float64, m)
	for in := 0; in < m; in++ {
		cur[in] = r.Sys.B.Col(in)
	}
	batch := make([][]float64, m)
	for k := 0; k < k1; k++ {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		for in := 0; in < m; in++ {
			batch[in] = mat.CopyVec(cur[in])
		}
		r.solveBatch(f, batch)
		for in := 0; in < m; in++ {
			next := batch[in]
			if n2 := mat.Norm2(next); n2 > 0 {
				mat.ScaleVec(1/n2, next)
			}
			out[in*k1+k] = next
			cur[in] = next
		}
	}
	return out, nil
}

// gt2Op adapts the block-triangular G̃2 solver to the Arnoldi operator
// interfaces; ApplyBatch pushes a whole frontier through one
// SolveShiftedBatch (one batched top-block substitution per step).
type gt2Op struct {
	g   *Gt2
	s0  float64
	err *error
}

func (o gt2Op) Dim() int { return o.g.Dim() }

func (o gt2Op) Apply(dst, src []float64) {
	w, err := o.g.SolveShifted(o.s0, src)
	if err != nil {
		*o.err = err
		mat.Zero(dst)
		return
	}
	copy(dst, w)
}

func (o gt2Op) ApplyBatch(dst, src [][]float64) {
	ws, err := o.g.SolveShiftedBatch(o.s0, src)
	if err != nil {
		*o.err = err
		for _, d := range dst {
			mat.Zero(d)
		}
		return
	}
	for i := range dst {
		copy(dst[i], ws[i])
	}
}

// H2Candidates runs k2 steps of block Arnoldi on (G̃2 − s0·I)⁻¹ in the
// (n+n²)-dimensional realization space, starting from the b̃2 columns of
// every unordered input pair, and returns the top-n blocks of the
// orthonormal iterates. Those blocks span the state-moment space of
// A2(H2)(s) about s0 (the orthonormalization is a triangular change of
// basis, which the block extraction commutes with). The start block and
// every Arnoldi frontier go through the batched shifted solve.
func (r *Realization) H2Candidates(k2 int, s0 float64) ([][]float64, error) {
	if k2 <= 0 {
		return nil, nil
	}
	sys := r.Sys
	if sys.G2 == nil && sys.D1 == nil {
		return nil, nil // H2 ≡ 0
	}
	n := sys.N
	var seeds [][]float64
	for i := 0; i < sys.Inputs(); i++ {
		for j := i; j < sys.Inputs(); j++ {
			bt := r.Btilde2(i, j)
			if mat.Norm2(bt) == 0 {
				continue
			}
			seeds = append(seeds, bt)
		}
	}
	if len(seeds) == 0 {
		return nil, nil
	}
	start, err := r.gt2.SolveShiftedBatch(s0, seeds)
	if err != nil {
		return nil, err
	}
	var solveErr error
	res := arnoldi.Krylov(gt2Op{g: r.gt2, s0: s0, err: &solveErr}, start, k2, 0)
	if solveErr != nil {
		return nil, solveErr
	}
	if res.V == nil {
		return nil, nil
	}
	var out [][]float64
	for c := 0; c < res.V.C; c++ {
		col := res.V.Col(c)
		top := mat.CopyVec(col[:n])
		if n2 := mat.Norm2(top); n2 > 1e-14 {
			mat.ScaleVec(1/n2, top)
			out = append(out, top)
		}
	}
	return out, nil
}

// solveMomentTable computes table[j][i] = M^{−(i+1)}·ws[j] for i+j < k3
// plus (when d2 != nil) dpow[i] = M^{−(i+1)}·d2 — the triangular solve
// table of the H3 moment assembly. The independent chains advance in
// lockstep: sweep i applies M⁻¹ to every still-active chain through one
// batched substitution, with values bit-identical to per-chain loops.
func (r *Realization) solveMomentTable(f solver.Factorization, ws [][]float64, d2 []float64, k3 int) (table [][][]float64, dpow [][]float64, err error) {
	table = make([][][]float64, len(ws))
	cols := make([][]float64, 0, len(ws)+1)
	for i := 0; i < k3; i++ {
		if err := r.ctx.Err(); err != nil {
			return nil, nil, err
		}
		cols = cols[:0]
		for j := range ws {
			if i+j >= k3 {
				continue
			}
			src := ws[j]
			if i > 0 {
				src = table[j][i-1]
			}
			next := mat.CopyVec(src)
			table[j] = append(table[j], next)
			cols = append(cols, next)
		}
		if d2 != nil {
			src := d2
			if i > 0 {
				src = dpow[i-1]
			}
			next := mat.CopyVec(src)
			dpow = append(dpow, next)
			cols = append(cols, next)
		}
		if len(cols) == 0 {
			break
		}
		r.solveBatch(f, cols)
	}
	return table, dpow, nil
}

// H3Moments returns the exact state-moment vectors m_0 … m_{k3−1} of
// A3(H3)(s) about s0 for a SISO quadratic QLDAE:
//
//	m_k = Σ_{i+j=k} M^{−(i+1)}·G2·out_j − M^{−(k+1)}·D1²b,
//
// where out_j is the symmetrized output of the j-th resolvent power of
// the H̃3 realization (one (G1⊕G̃2 − s0·I)-solve per j).
func (r *Realization) H3Moments(k3 int, s0 float64) ([][]float64, error) {
	if k3 <= 0 {
		return nil, nil
	}
	sys := r.Sys
	if sys.Inputs() != 1 {
		return nil, errNotSISO
	}
	if sys.G2 == nil && (sys.D1 == nil || sys.D1[0] == nil) {
		return nil, nil // H3 of the quadratic branch vanishes
	}
	n := sys.N
	n2 := n + n*n
	f, err := r.shiftedLU(s0)
	if err != nil {
		return nil, err
	}
	// w_j = G2·out_j for j = 0..k3-1.
	ws := make([][]float64, 0, k3)
	if sys.G2 != nil {
		bt := r.Btilde2(0, 0)
		b := sys.B.Col(0)
		z := make([]float64, n*n2)
		for p := 0; p < n; p++ {
			if b[p] == 0 {
				continue
			}
			col := z[p*n2 : (p+1)*n2]
			for q, v := range bt {
				col[q] = b[p] * v
			}
		}
		h3t := make([]float64, n*n)
		for j := 0; j < k3; j++ {
			z, err = r.SolveKron(s0, z)
			if err != nil {
				return nil, fmt.Errorf("assoc: H3 resolvent power %d: %w", j+1, err)
			}
			mat.Zero(h3t)
			for jcol := 0; jcol < n; jcol++ {
				for irow := 0; irow < n; irow++ {
					top := z[jcol*n2+irow]
					h3t[jcol*n+irow] += top
					h3t[irow*n+jcol] += top
				}
			}
			w := make([]float64, n)
			sys.G2.MulVec(w, h3t)
			ws = append(ws, w)
		}
	}
	// d2 = D1²·b.
	var d2 []float64
	if sys.D1 != nil && sys.D1[0] != nil {
		b := sys.B.Col(0)
		d1b := mat.GetVec(n)
		sys.D1[0].MulVec(d1b, b)
		d2 = make([]float64, n)
		sys.D1[0].MulVec(d2, d1b)
		mat.PutVec(d1b)
	}
	// Table c[j][i] = M^{−(i+1)}·w_j and the d-term powers
	// M^{−(k+1)}·d2, all chains advancing together one batched solve
	// per sweep.
	table, dpow, err := r.solveMomentTable(f, ws, d2, k3)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, 0, k3)
	for k := 0; k < k3; k++ {
		m := make([]float64, n)
		for j := 0; j <= k && j < len(table); j++ {
			mat.Axpy(1, table[j][k-j], m)
		}
		if dpow != nil {
			mat.Axpy(-1, dpow[k], m)
		}
		if n2v := mat.Norm2(m); n2v > 0 {
			mat.ScaleVec(1/n2v, m)
			out = append(out, m)
		}
	}
	return out, nil
}

// H3MomentsCubic returns the exact state-moment vectors of the cubic
// associated transform A3(H3)(s) = (sI−G1)⁻¹G3(sI−⊕³G1)⁻¹b^{3⊗}:
//
//	m_k = Σ_{i+j=k} M^{−(i+1)}·G3·N3^{−(j+1)}·b^{3⊗},  N3 = ⊕³G1 − s0·I.
func (r *Realization) H3MomentsCubic(s3 *kron.SumSolver3, k3 int, s0 float64) ([][]float64, error) {
	if k3 <= 0 {
		return nil, nil
	}
	sys := r.Sys
	if sys.Inputs() != 1 {
		return nil, errNotSISO
	}
	if sys.G3 == nil {
		return nil, nil
	}
	n := sys.N
	f, err := r.shiftedLU(s0)
	if err != nil {
		return nil, err
	}
	b := sys.B.Col(0)
	z := kron.VecKron(kron.VecKron(b, b), b)
	ws := make([][]float64, 0, k3)
	for j := 0; j < k3; j++ {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		z, err = s3.Solve(s0, z)
		if err != nil {
			return nil, fmt.Errorf("assoc: cubic resolvent power %d: %w", j+1, err)
		}
		w := make([]float64, n)
		sys.G3.MulVec(w, z)
		ws = append(ws, w)
	}
	table, _, err := r.solveMomentTable(f, ws, nil, k3)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, 0, k3)
	for k := 0; k < k3; k++ {
		m := make([]float64, n)
		for j := 0; j <= k; j++ {
			mat.Axpy(1, table[j][k-j], m)
		}
		if n2v := mat.Norm2(m); n2v > 0 {
			mat.ScaleVec(1/n2v, m)
			out = append(out, m)
		}
	}
	return out, nil
}
