package assoc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"avtmor/internal/kron"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/qr"
	"avtmor/internal/sparse"
)

// taylorCoeffs extracts Taylor coefficients of an analytic vector function
// about s0 by trapezoidal contour sampling on a radius-ρ circle.
func taylorCoeffs(f func(complex128) ([]complex128, error), s0 complex128, rho float64, kmax, n int, t *testing.T) [][]complex128 {
	t.Helper()
	const m = 32
	samples := make([][]complex128, m)
	for l := 0; l < m; l++ {
		theta := 2 * math.Pi * float64(l) / m
		s := s0 + complex(rho*math.Cos(theta), rho*math.Sin(theta))
		v, err := f(s)
		if err != nil {
			t.Fatal(err)
		}
		samples[l] = v
	}
	coeffs := make([][]complex128, kmax)
	for k := 0; k < kmax; k++ {
		c := make([]complex128, n)
		for l := 0; l < m; l++ {
			theta := 2 * math.Pi * float64(l) / m
			w := cmplx.Exp(complex(0, -float64(k)*theta)) / complex(float64(m)*math.Pow(rho, float64(k)), 0)
			for i := range c {
				c[i] += w * samples[l][i]
			}
		}
		coeffs[k] = c
	}
	return coeffs
}

// inSpan reports the relative residual of (the real part of) v after
// projection onto the orthonormalized columns.
func inSpan(cols [][]float64, v []complex128) float64 {
	basis := qr.Orthonormalize(cols, 1e-12)
	if basis == nil {
		return 1
	}
	re := mat.RealPart(v)
	nrm := mat.Norm2(re)
	if nrm == 0 {
		return 0
	}
	coef := make([]float64, basis.C)
	basis.MulVecT(coef, re)
	rec := make([]float64, len(re))
	basis.MulVec(rec, coef)
	mat.Axpy(-1, re, rec)
	return mat.Norm2(rec) / nrm
}

func TestH1MomentsSpanTaylor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sys := testSystem(rng, 6, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	const k1 = 4
	ms, err := r.H1Moments(k1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != k1 {
		t.Fatalf("got %d H1 moments", len(ms))
	}
	coeffs := taylorCoeffs(func(s complex128) ([]complex128, error) {
		return r.EvalH1(0, s)
	}, 0, 0.05, k1, sys.N, t)
	for k, c := range coeffs {
		if res := inSpan(ms[:k+1], c); res > 1e-6 {
			t.Fatalf("H1 Taylor coefficient %d not in moment span (residual %g)", k, res)
		}
	}
}

func TestH2CandidatesSpanTaylor(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sys := testSystem(rng, 5, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	const k2 = 3
	cand, err := r.H2Candidates(k2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cand) == 0 {
		t.Fatal("no H2 candidates")
	}
	coeffs := taylorCoeffs(func(s complex128) ([]complex128, error) {
		return r.EvalAssocH2(0, 0, s)
	}, 0, 0.05, k2, sys.N, t)
	for k, c := range coeffs {
		if res := inSpan(cand, c); res > 1e-5 {
			t.Fatalf("A2(H2) Taylor coefficient %d not in candidate span (residual %g)", k, res)
		}
	}
}

func TestH3MomentsSpanTaylor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sys := testSystem(rng, 4, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	const k3 = 3
	ms, err := r.H3Moments(k3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != k3 {
		t.Fatalf("got %d H3 moments", len(ms))
	}
	coeffs := taylorCoeffs(func(s complex128) ([]complex128, error) {
		return r.EvalAssocH3(s)
	}, 0, 0.05, k3, sys.N, t)
	for k, c := range coeffs {
		// m_k is the exact k-th moment (up to scale), so the span of
		// m_0..m_k must contain the k-th Taylor coefficient.
		if res := inSpan(ms[:k+1], c); res > 1e-5 {
			t.Fatalf("A3(H3) Taylor coefficient %d not in moment span (residual %g)", k, res)
		}
	}
}

func TestH3MomentsCubicSpanTaylor(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 4
	g3b := sparse.NewBuilder(n, n*n*n)
	for i := 0; i < 3*n; i++ {
		g3b.Add(rng.Intn(n), rng.Intn(n*n*n), 0.3*(2*rng.Float64()-1))
	}
	sys := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G3: g3b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := kron.NewSumSolver3(sys.G1)
	if err != nil {
		t.Fatal(err)
	}
	const k3 = 2
	ms, err := r.H3MomentsCubic(s3, k3, 0)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := taylorCoeffs(func(s complex128) ([]complex128, error) {
		return r.EvalAssocH3Cubic(s3, s)
	}, 0, 0.05, k3, sys.N, t)
	for k, c := range coeffs {
		if res := inSpan(ms[:k+1], c); res > 1e-5 {
			t.Fatalf("cubic A3(H3) Taylor coefficient %d not in span (residual %g)", k, res)
		}
	}
}

func TestH2CandidatesMISO(t *testing.T) {
	// Two inputs: candidates must cover all three input pairs.
	rng := rand.New(rand.NewSource(15))
	n := 5
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 3*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.3*(2*rng.Float64()-1))
	}
	sys := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G2: g2b.Build(),
		B:  mat.RandDense(rng, n, 2),
		L:  mat.RandDense(rng, 1, n),
	}
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := r.H2Candidates(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cand) < 3 {
		t.Fatalf("MISO H2 candidates too few: %d", len(cand))
	}
	// Zeroth Taylor coefficients of all pairs must be in span.
	for i := 0; i <= 1; i++ {
		for j := i; j <= 1; j++ {
			v, err := r.EvalAssocH2(i, j, 1e-4)
			if err != nil {
				t.Fatal(err)
			}
			if res := inSpan(cand, v); res > 1e-4 {
				t.Fatalf("pair (%d,%d) moment not covered (residual %g)", i, j, res)
			}
		}
	}
}

func TestMomentsAtNonzeroExpansionPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	sys := testSystem(rng, 4, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	s0 := -0.5 // expansion about s = −0.5 (multipoint support, §4 bullet 3)
	ms, err := r.H3Moments(2, s0)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := taylorCoeffs(func(s complex128) ([]complex128, error) {
		return r.EvalAssocH3(s)
	}, complex(s0, 0), 0.04, 2, sys.N, t)
	for k, c := range coeffs {
		if res := inSpan(ms[:k+1], c); res > 1e-5 {
			t.Fatalf("s0=%v coefficient %d residual %g", s0, k, res)
		}
	}
}

func TestH3MomentsRejectsMIMO(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sys := testSystem(rng, 4, false)
	sys.B = mat.RandDense(rng, 4, 2)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.H3Moments(2, 0); err == nil {
		t.Fatal("expected SISO-only error")
	}
}
