package assoc

import (
	"fmt"

	"avtmor/internal/kron"
	"avtmor/internal/mat"
	"avtmor/internal/schur"
)

// Eq. (18): the one-time similarity transform that block-diagonalizes the
// realization of A2(H2). Solving the Sylvester equation
//
//	G1·Π + G2 = Π·(⊕²G1)
//
// (always solvable for stable G1: λi+λj+λk ≠ 0) splits H2(s) into two
// decoupled subsystems,
//
//	H2(s) = (sI−G1)⁻¹·(D1·b − Π·b^{2⊗}) + Π·(sI−⊕²G1)⁻¹·b^{2⊗},
//
// whose Krylov subspaces can be generated independently (and in parallel,
// as §2.3 notes). This is the alternative H2 moment path benchmarked by
// BenchmarkAblationDecoupledH2.

// SolvePi computes Π by one Bartels–Stewart recurrence: transposed, the
// equation reads ⊕²(G1ᵀ)·Y + Y·(−G1)ᵀ = G2ᵀ with Y = Πᵀ, which is the
// shared column-recurrence form with L = ⊕²(G1ᵀ).
func (r *Realization) SolvePi() (*mat.Dense, error) {
	sys := r.Sys
	if sys.G2 == nil {
		return nil, fmt.Errorf("assoc: SolvePi needs a quadratic term")
	}
	if sys.G1 == nil {
		return nil, fmt.Errorf("assoc: the Eq.-(18) decoupling needs a dense G1 (CSR-only system); supply qldae.System.G1 or use the block-triangular H2 path")
	}
	n := sys.N
	g1t := sys.G1.T()
	opT, err := kron.NewSumSolver2(g1t)
	if err != nil {
		return nil, err
	}
	sMinus, err := schur.Decompose(sys.G1.Clone().Scale(-1))
	if err != nil {
		return nil, err
	}
	// V = vec(G2ᵀ): column j of Y corresponds to row j of G2.
	v := make([]float64, n*n*n)
	g2d := sys.G2 // CSR rows are dense n² slices of v
	for j := 0; j < n; j++ {
		col := v[j*n*n : (j+1)*n*n]
		for k := g2d.RowPtr[j]; k < g2d.RowPtr[j+1]; k++ {
			col[g2d.ColIdx[k]] = g2d.Val[k]
		}
	}
	y, err := kron.ColumnSylvester(opT, sMinus, 0, v)
	if err != nil {
		return nil, fmt.Errorf("assoc: Π Sylvester equation: %w", err)
	}
	// Π = Yᵀ with Y stored as n columns of length n².
	pi := mat.NewDense(n, n*n)
	for j := 0; j < n; j++ {
		col := y[j*n*n : (j+1)*n*n]
		for i, val := range col {
			pi.Set(j, i, val)
		}
	}
	return pi, nil
}

// PiResidual returns ‖G1·Π + G2 − Π·(⊕²G1)‖_∞ (test/diagnostic).
func (r *Realization) PiResidual(pi *mat.Dense) float64 {
	sys := r.Sys
	n := sys.N
	// G1·Π + G2 − Π·(⊕²G1), evaluated column block by column block using
	// (⊕²G1) column action: (Π·⊕²G1)[:,c] = Σ_d Π[:,d]·(⊕²G1)[d,c]; use
	// the apply form instead: for each row of Π, (rowᵀ applied to ⊕²G1)
	// equals SumApply2 of the transposed operator... simpler: residual
	// applied to random probe vectors.
	worst := 0.0
	probe := make([]float64, n*n)
	tmp := make([]float64, n*n)
	out1 := make([]float64, n)
	out2 := make([]float64, n)
	for trial := 0; trial < 4; trial++ {
		for i := range probe {
			probe[i] = float64((i*2654435761+trial*40503)%1000)/500 - 1
		}
		// (G1·Π + G2 − Π·⊕²G1)·probe.
		pip := make([]float64, n)
		pi.MulVec(pip, probe)
		sys.G1.MulVec(out1, pip)
		sys.G2.MulVec(out2, probe)
		mat.AddVec(out1, out1, out2)
		kron.SumApply2(sys.G1, tmp, probe)
		pi.MulVec(pip, tmp)
		mat.Axpy(-1, pip, out1)
		if v := mat.NormInf(out1); v > worst {
			worst = v
		}
	}
	return worst
}

// H2CandidatesDecoupled generates the H2 moment space through the
// Eq.-(18) decoupling: Krylov chains of the two independent subsystems.
// SISO and single-pair MIMO blocks are concatenated per input pair.
func (r *Realization) H2CandidatesDecoupled(k2 int, s0 float64) ([][]float64, error) {
	if k2 <= 0 {
		return nil, nil
	}
	sys := r.Sys
	if sys.G2 == nil {
		return r.H2Candidates(k2, s0) // no quadratic part: fall back
	}
	pi, err := r.SolvePi()
	if err != nil {
		return nil, err
	}
	n := sys.N
	f, err := r.shiftedLU(s0)
	if err != nil {
		return nil, err
	}
	// Subsystem-1 seeds of every input pair: M⁻¹-chains from
	// D1b − Π·b². The chains are independent, so they advance in
	// lockstep — one Π·b² batch multiply and one SolveBatch over all
	// pairs per Krylov step — while the emitted candidate order below
	// stays pair-major, exactly as the vector-granular path produced it.
	var tops, b2s [][]float64
	for i := 0; i < sys.Inputs(); i++ {
		for j := i; j < sys.Inputs(); j++ {
			bt := r.Btilde2(i, j)
			tops = append(tops, bt[:n])
			b2s = append(b2s, bt[n:])
		}
	}
	seeds := make([][]float64, len(b2s))
	for p := range seeds {
		seeds[p] = make([]float64, n)
	}
	pi.MulBatchTo(seeds, b2s)
	for p, seed := range seeds {
		mat.ScaleVec(-1, seed)
		mat.Axpy(1, tops[p], seed)
	}
	npairs := len(seeds)
	sub1 := make([][][]float64, npairs)
	cur := seeds
	batch := make([][]float64, npairs)
	for k := 0; k < k2; k++ {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		for p := 0; p < npairs; p++ {
			batch[p] = mat.CopyVec(cur[p])
		}
		r.solveBatch(f, batch)
		for p := 0; p < npairs; p++ {
			next := batch[p]
			if nn := mat.Norm2(next); nn > 0 {
				mat.ScaleVec(1/nn, next)
			}
			sub1[p] = append(sub1[p], next)
			cur[p] = next
		}
	}
	// Subsystem 2: Π·(⊕²G1 − s0·I)^{-k}·b², per pair (the Kronecker-sum
	// recurrence is vector-granular).
	s2, err := r.Sum2()
	if err != nil {
		return nil, err
	}
	var out [][]float64
	for p := 0; p < npairs; p++ {
		out = append(out, sub1[p]...)
		w := b2s[p]
		for k := 0; k < k2; k++ {
			w, err = s2.Solve(s0, w)
			if err != nil {
				return nil, err
			}
			if nn := mat.Norm2(w); nn > 0 {
				mat.ScaleVec(1/nn, w)
			}
			piw := make([]float64, n)
			pi.MulVec(piw, w)
			if nn := mat.Norm2(piw); nn > 1e-14 {
				mat.ScaleVec(1/nn, piw)
				out = append(out, piw)
			}
		}
	}
	return out, nil
}
