package assoc

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"avtmor/internal/schur"
)

func TestSpectrumGt2MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sys := testSystem(rng, 4, true)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.SpectrumGt2()
	if err != nil {
		t.Fatal(err)
	}
	want, err := schur.Eigenvalues(BuildGt2Dense(sys))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("count %d vs %d", len(got), len(want))
	}
	// Multiset comparison by greedy nearest matching (sorting alone
	// cannot tie-break conjugate pairs whose real parts differ by ulps).
	used := make([]bool, len(want))
	for i, g := range got {
		best, bestD := -1, 1e300
		for j, w := range want {
			if used[j] {
				continue
			}
			if d := cmplx.Abs(g - w); d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 || bestD > 1e-6*(1+cmplx.Abs(g)) {
			t.Fatalf("eigenvalue %d (%v): nearest unmatched is off by %g", i, g, bestD)
		}
		used[best] = true
	}
}

func TestStabilityInheritance(t *testing.T) {
	// §4 bullet 3: a Hurwitz G1 makes every associated realization
	// Hurwitz — the whole single-s cascade is stable by construction.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 4; trial++ {
		sys := testSystem(rng, 3+trial, trial%2 == 0)
		r, err := New(sys)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := r.Schur()
		if err != nil {
			t.Fatal(err)
		}
		if !IsHurwitz(sch.Eigenvalues(), 0) {
			t.Fatal("test system not Hurwitz; vacuous")
		}
		sg2, err := r.SpectrumGt2()
		if err != nil {
			t.Fatal(err)
		}
		if !IsHurwitz(sg2, 0) {
			t.Fatal("G̃2 lost stability")
		}
		sk3, err := r.SpectrumKron3()
		if err != nil {
			t.Fatal(err)
		}
		if !IsHurwitz(sk3, 0) {
			t.Fatal("G1⊕G̃2 lost stability")
		}
	}
}

func TestSpectrumKron3Count(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sys := testSystem(rng, 3, false)
	r, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N
	sk3, err := r.SpectrumKron3()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sk3); got != n*(n+n*n) {
		t.Fatalf("Kron3 spectrum size %d, want %d", got, n*(n+n*n))
	}
}

func TestIsHurwitzMargin(t *testing.T) {
	spec := []complex128{-1, -0.5 + 2i}
	if !IsHurwitz(spec, 0.4) {
		t.Fatal("should pass at margin 0.4")
	}
	if IsHurwitz(spec, 0.6) {
		t.Fatal("should fail at margin 0.6")
	}
}
