package replica

import (
	"context"
	"sync"
	"time"

	"avtmor/internal/cluster"
)

// DefaultInterval is the sweep period when the caller leaves
// Config.Interval zero: frequent enough that a cold node converges in
// seconds, cheap enough to be noise (one sorted key-list exchange per
// peer per sweep).
const DefaultInterval = 5 * time.Second

// LocalOps is the sweeper's view of the local artifact store.
type LocalOps interface {
	// Keys returns the sorted content addresses stored locally.
	Keys() []string
	// Has reports local presence of one content address.
	Has(digest string) bool
	// Orphans returns the sorted content addresses tagged as computed
	// here by owner-down fallback but owned elsewhere.
	Orphans() []string
	// Keep clears the orphan tag: placement now says the artifact is
	// rightfully local.
	Keep(digest string)
	// Drop removes a handed-off orphan.
	Drop(digest string) error
}

// PeerOps is the sweeper's client to one remote peer. Every call is
// best-effort: an unreachable peer fails the call and the sweep moves
// on — the next round retries.
type PeerOps interface {
	// Keys fetches the sorted content addresses peer stores that shard
	// (a ring node address) owns, plus the peer's membership epoch.
	Keys(ctx context.Context, peer, shard string) (keys []string, epoch uint64, err error)
	// Pull fetches one artifact from peer and persists it locally.
	Pull(ctx context.Context, peer, digest string) error
	// Push uploads the local artifact to peer.
	Push(ctx context.Context, peer, digest string) error
	// Membership fetches the peer's current membership view.
	Membership(ctx context.Context, peer string) (Membership, error)
}

// SweepStats is a snapshot of the sweeper's lifetime counters.
type SweepStats struct {
	// Sweeps counts completed rounds.
	Sweeps int64
	// Pulls counts artifacts fetched because an owner was missing its
	// copy; Pushes counts orphan copies handed to their owners.
	Pulls, Pushes int64
	// Handoffs counts orphans dropped locally after delivery to every
	// owner; Adoptions counts orphans kept because placement now says
	// they are local.
	Handoffs, Adoptions int64
	// PeerErrors counts failed peer calls (unreachable, bad body).
	PeerErrors int64
	// MembershipUpdates counts sweeps that adopted a newer membership
	// learned from a peer.
	MembershipUpdates int64
}

// Config assembles a Sweeper.
type Config struct {
	// Self is this node's ring address.
	Self string
	// State is the shared membership state the sweeper reads placement
	// from and feeds newer peer views into.
	State *State
	// Interval is the sweep period; zero selects DefaultInterval.
	Interval time.Duration
	// Local and Peer are the store and peer transports.
	Local LocalOps
	Peer  PeerOps
	// Rejoin, if set, is called when a sweep discovers that Self has
	// fallen out of the adopted membership (lost a concurrent-join tie,
	// or the fleet moved on while this node was down). It should start
	// a join handshake.
	Rejoin func()
}

// Sweeper is the anti-entropy loop: each round it asks every peer for
// the keys this node should own and pulls the missing ones, hands
// orphaned fallback artifacts to their owners, and converges
// membership by adopting any newer epoch a peer reports. Content
// addressing does the heavy lifting — "what am I missing" is a set
// difference over sorted digest lists, and every copy of an address is
// bit-identical, so repair is idempotent and order-free.
type Sweeper struct {
	cfg Config

	mu    sync.Mutex
	stats SweepStats // guarded by mu

	stop chan struct{}
	done chan struct{}
}

// NewSweeper builds a sweeper; call Run (usually in a goroutine) to
// start it.
func NewSweeper(cfg Config) *Sweeper {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	return &Sweeper{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Stats returns a snapshot of the sweep counters.
func (sw *Sweeper) Stats() SweepStats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.stats
}

// Run sweeps on the configured interval until Stop. The first sweep
// fires after one interval, not immediately: at process start the
// serve tier is still warming and a join handshake may be in flight.
func (sw *Sweeper) Run() {
	defer close(sw.done)
	// The ticker is the legitimate use of wall-clock time here: sweep
	// cadence is operational pacing, not data, and no solver result
	// depends on it.
	ticker := time.NewTicker(sw.cfg.Interval) //avtmorlint:ignore detrom sweep pacing is wall-clock by design; no numeric result depends on it
	defer ticker.Stop()
	for {
		select {
		case <-sw.stop:
			return
		case <-ticker.C:
			sw.Sweep(context.Background())
		}
	}
}

// Stop terminates Run and waits for an in-flight sweep to finish.
// Safe to call more than once.
func (sw *Sweeper) Stop() {
	select {
	case <-sw.stop:
	default:
		close(sw.stop)
	}
	<-sw.done
}

// Sweep runs one anti-entropy round. Exported so tests (and a future
// admin endpoint) can force convergence without waiting out the
// ticker.
func (sw *Sweeper) Sweep(ctx context.Context) {
	_, ring := sw.cfg.State.View()
	self := cluster.Normalize(sw.cfg.Self)

	// Membership first: a peer on a newer epoch changes placement, and
	// repairing against a stale ring would pull the wrong keys.
	for _, peer := range ring.Nodes() {
		if peer == self {
			continue
		}
		pm, err := sw.cfg.Peer.Membership(ctx, peer)
		if err != nil {
			sw.count(func(st *SweepStats) { st.PeerErrors++ })
			continue
		}
		if sw.cfg.State.Apply(pm) {
			sw.count(func(st *SweepStats) { st.MembershipUpdates++ })
		}
	}
	ms, ring := sw.cfg.State.View()
	r := min(ms.Replicas, ring.Len())

	if !ring.Contains(self) {
		// This node lost its membership (concurrent-join tiebreak, or the
		// fleet reformed while it was down). Nothing it stores is owned by
		// it under the adopted view; re-join and repair next round.
		if sw.cfg.Rejoin != nil {
			sw.cfg.Rejoin()
		}
		return
	}

	// Pull phase: every peer tells us which of its keys we own; fetch
	// the ones we are missing.
	for _, peer := range ring.Nodes() {
		if peer == self {
			continue
		}
		keys, _, err := sw.cfg.Peer.Keys(ctx, peer, self)
		if err != nil {
			sw.count(func(st *SweepStats) { st.PeerErrors++ })
			continue
		}
		for _, d := range keys {
			if sw.cfg.Local.Has(d) {
				continue
			}
			if err := sw.cfg.Peer.Pull(ctx, peer, d); err != nil {
				sw.count(func(st *SweepStats) { st.PeerErrors++ })
				continue
			}
			sw.count(func(st *SweepStats) { st.Pulls++ })
		}
	}

	// Handoff phase: deliver owner-down fallback artifacts to their real
	// owners, then drop them here. An orphan is dropped only once every
	// owner confirmed its copy — until then it stays, tagged, and the
	// next sweep retries.
	for _, d := range sw.cfg.Local.Orphans() {
		owners := ring.Owners(d, r)
		if contains(owners, self) {
			sw.cfg.Local.Keep(d)
			sw.count(func(st *SweepStats) { st.Adoptions++ })
			continue
		}
		delivered := true
		for _, o := range owners {
			if err := sw.cfg.Peer.Push(ctx, o, d); err != nil {
				sw.count(func(st *SweepStats) { st.PeerErrors++ })
				delivered = false
				continue
			}
			sw.count(func(st *SweepStats) { st.Pushes++ })
		}
		if delivered {
			if err := sw.cfg.Local.Drop(d); err == nil {
				sw.count(func(st *SweepStats) { st.Handoffs++ })
			}
		}
	}

	sw.count(func(st *SweepStats) { st.Sweeps++ })
}

// count applies one stats mutation under the lock.
func (sw *Sweeper) count(f func(*SweepStats)) {
	sw.mu.Lock()
	f(&sw.stats)
	sw.mu.Unlock()
}

// contains reports membership of s in the small ring-ordered slice ns.
func contains(ns []string, s string) bool {
	for _, n := range ns {
		if n == s {
			return true
		}
	}
	return false
}
