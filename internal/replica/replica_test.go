package replica

import (
	"bytes"
	"fmt"
	"slices"
	"strings"
	"testing"

	"avtmor/internal/store"
)

func TestMembershipCompareTotalOrder(t *testing.T) {
	ms := []Membership{
		{Epoch: 1, Peers: []string{"127.0.0.1:1"}, Replicas: 1},
		{Epoch: 1, Peers: []string{"127.0.0.1:1", "127.0.0.1:2"}, Replicas: 1},
		{Epoch: 1, Peers: []string{"127.0.0.1:1", "127.0.0.1:3"}, Replicas: 1},
		{Epoch: 2, Peers: []string{"127.0.0.1:1"}, Replicas: 1},
		{Epoch: 3, Peers: []string{"127.0.0.1:9"}, Replicas: 2},
	}
	for i, a := range ms {
		if Compare(a, a) != 0 {
			t.Fatalf("Compare(m, m) != 0 for %+v", a)
		}
		for j, b := range ms {
			got, want := Compare(a, b), 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Fatalf("Compare(ms[%d], ms[%d]) = %d, want %d", i, j, got, want)
			}
			if Compare(b, a) != -got {
				t.Fatalf("Compare is not antisymmetric for ms[%d], ms[%d]", i, j)
			}
		}
	}
}

func TestStateJoinLeave(t *testing.T) {
	st := NewState([]string{":8081", ":8082"}, 2)
	if e := st.Epoch(); e != 1 {
		t.Fatalf("fresh state epoch = %d, want 1", e)
	}

	m := st.Join(":8083")
	if m.Epoch != 2 || !slices.Contains(m.Peers, "127.0.0.1:8083") {
		t.Fatalf("join: %+v", m)
	}
	if again := st.Join("127.0.0.1:8083"); again.Epoch != 2 {
		t.Fatalf("re-join of a member bumped the epoch: %+v", again)
	}

	m = st.Leave(":8082")
	if m.Epoch != 3 || slices.Contains(m.Peers, "127.0.0.1:8082") {
		t.Fatalf("leave: %+v", m)
	}
	if again := st.Leave(":8082"); again.Epoch != 3 {
		t.Fatalf("leave of a non-member bumped the epoch: %+v", again)
	}

	// The last node never removes itself.
	st.Leave(":8081")
	if m := st.Leave(":8083"); len(m.Peers) != 1 || m.Peers[0] != "127.0.0.1:8083" {
		t.Fatalf("last node left the fleet: %+v", m)
	}
}

func TestStateApplyAdoptsOnlyNewer(t *testing.T) {
	st := NewState([]string{":8081"}, 1)
	newer := Membership{Epoch: 5, Peers: []string{"127.0.0.1:8081", "127.0.0.1:8082"}, Replicas: 2}
	if !st.Apply(newer) {
		t.Fatal("Apply rejected a newer membership")
	}
	if e := st.Epoch(); e != 5 {
		t.Fatalf("epoch after apply = %d, want 5", e)
	}
	if st.Apply(Membership{Epoch: 4, Peers: []string{"127.0.0.1:9"}, Replicas: 1}) {
		t.Fatal("Apply adopted an older membership")
	}
	if st.Apply(newer) {
		t.Fatal("Apply re-adopted the current membership")
	}
	if st.Apply(Membership{Epoch: 6, Peers: nil, Replicas: 1}) {
		t.Fatal("Apply adopted an invalid membership")
	}
}

// TestStateConvergence: two nodes minting the same epoch concurrently
// (a join race) converge once they exchange views, whichever order the
// exchange happens in.
func TestStateConvergence(t *testing.T) {
	base := []string{":8081", ":8082"}
	a, b := NewState(base, 2), NewState(base, 2)
	ma := a.Join(":8083") // both mint epoch 2 with different peers
	mb := b.Join(":8084")

	a.Apply(mb)
	b.Apply(ma)
	va, _ := a.View()
	vb, _ := b.View()
	if Compare(va, vb) != 0 {
		t.Fatalf("views diverge after exchange: %+v vs %+v", va, vb)
	}
	// Exactly one of the two joiners lost the tie and is missing from
	// the converged view — that is what the sweeper's Rejoin hook fixes.
	in83, in84 := slices.Contains(va.Peers, "127.0.0.1:8083"), slices.Contains(va.Peers, "127.0.0.1:8084")
	if in83 == in84 {
		t.Fatalf("tie-break should admit exactly one concurrent joiner: %v", va.Peers)
	}
}

func TestKeyListRoundTrip(t *testing.T) {
	var keys []string
	for i := 0; i < 50; i++ {
		keys = append(keys, store.Digest(fmt.Sprintf("key-%d", i)))
	}
	var buf bytes.Buffer
	if err := WriteKeyList(&buf, keys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeyList(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("round trip lost keys: got %d, want %d", len(got), len(want))
	}

	if _, err := ReadKeyList(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream decoded")
	}
}

func TestKeyListRejectsHostileInput(t *testing.T) {
	d := store.Digest("k")
	cases := map[string]string{
		"huge count":     fmt.Sprintf("AVTMKEYS 1 %d\n", MaxKeys+1),
		"negative count": "AVTMKEYS 1 -1\n",
		"bad magic":      "NOTKEYS 1 0\n",
		"bad version":    "AVTMKEYS 9 0\n",
		"truncated":      "AVTMKEYS 1 2\n" + d + "\n",
		"bad digest":     "AVTMKEYS 1 1\n" + strings.Repeat("Z", store.DigestLen) + "\n",
		"unsorted":       "AVTMKEYS 1 2\n" + store.Digest("b") + "\n" + store.Digest("x") + "\n",
		"trailing":       "AVTMKEYS 1 1\n" + d + "\nextra",
	}
	// "unsorted" needs Digest("b") > Digest("x") to actually be unsorted;
	// build a genuinely descending pair instead.
	lo, hi := store.Digest("b"), store.Digest("x")
	if lo > hi {
		lo, hi = hi, lo
	}
	cases["unsorted"] = "AVTMKEYS 1 2\n" + hi + "\n" + lo + "\n"

	for name, in := range cases {
		if _, err := ReadKeyList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// A declared-huge-but-legal count must not allocate up front: the
	// incremental reader fails fast at the first missing entry.
	if _, err := ReadKeyList(strings.NewReader(fmt.Sprintf("AVTMKEYS 1 %d\n", MaxKeys))); err == nil {
		t.Error("million-key header with empty body decoded")
	}
}

func TestMembershipCodec(t *testing.T) {
	m := Membership{Epoch: 7, Peers: []string{"127.0.0.1:8081", "127.0.0.1:8082"}, Replicas: 2}
	var buf bytes.Buffer
	if err := EncodeMembership(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMembership(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Compare(got, m) != 0 || got.Replicas != 2 {
		t.Fatalf("round trip: %+v", got)
	}

	for name, in := range map[string]string{
		"no peers":     `{"epoch":1,"peers":[],"replicas":1}`,
		"zero r":       `{"epoch":1,"peers":["a:1"],"replicas":0}`,
		"empty peer":   `{"epoch":1,"peers":[""],"replicas":1}`,
		"trailing doc": `{"epoch":1,"peers":["a:1"],"replicas":1}{"x":1}`,
		"not json":     `hello`,
	} {
		if _, err := DecodeMembership(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	if _, err := DecodeJoin(strings.NewReader(`{"node":":8084"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeJoin(strings.NewReader(`{"node":""}`)); err == nil {
		t.Fatal("empty join node decoded")
	}
}

// FuzzReadKeyList: no hostile key-list body may panic the decoder or
// force an allocation beyond the bytes actually delivered; whatever
// decodes must be sorted valid digests that re-encode canonically.
func FuzzReadKeyList(f *testing.F) {
	var seed bytes.Buffer
	WriteKeyList(&seed, []string{store.Digest("a"), store.Digest("b")})
	f.Add(seed.Bytes())
	f.Add([]byte("AVTMKEYS 1 0\n"))
	f.Add([]byte(fmt.Sprintf("AVTMKEYS 1 %d\n", MaxKeys)))
	f.Add([]byte("AVTMKEYS 1 1\n" + store.Digest("x") + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, err := ReadKeyList(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, k := range keys {
			if !store.ValidDigest(k) {
				t.Fatalf("decoded invalid digest %q", k)
			}
			if i > 0 && keys[i-1] >= k {
				t.Fatalf("decoded unsorted list")
			}
		}
		var buf bytes.Buffer
		if err := WriteKeyList(&buf, keys); err != nil {
			t.Fatal(err)
		}
		round, err := ReadKeyList(bytes.NewReader(buf.Bytes()))
		if err != nil || !slices.Equal(round, keys) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// FuzzDecodeMembership: the join/leave handshake bodies must reject
// anything that fails validation and never panic; every accepted
// membership is safe to build a ring from.
func FuzzDecodeMembership(f *testing.F) {
	f.Add([]byte(`{"epoch":1,"peers":["127.0.0.1:8081"],"replicas":1}`))
	f.Add([]byte(`{"epoch":18446744073709551615,"peers":[":1",":2"],"replicas":2}`))
	f.Add([]byte(`{"node":":8084"}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeMembership(bytes.NewReader(data)); err == nil {
			if err := m.Validate(); err != nil {
				t.Fatalf("decoded membership fails validation: %v", err)
			}
			st := NewState([]string{":1"}, 1)
			st.Apply(m) // must not panic
		}
		if j, err := DecodeJoin(bytes.NewReader(data)); err == nil {
			if j.Node == "" || len(j.Node) > MaxAddrLen {
				t.Fatalf("decoded join violates bounds: %q", j.Node)
			}
		}
	})
}
