package replica

import (
	"context"
	"errors"
	"slices"
	"sort"
	"sync"
	"testing"
)

// fakeStore is an in-memory LocalOps.
type fakeStore struct {
	mu      sync.Mutex
	keys    map[string]bool // guarded by mu
	orphans map[string]bool // guarded by mu
}

func newFakeStore(keys ...string) *fakeStore {
	fs := &fakeStore{keys: map[string]bool{}, orphans: map[string]bool{}}
	for _, k := range keys {
		fs.keys[k] = true
	}
	return fs
}

func (fs *fakeStore) Keys() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.keys))
	for k := range fs.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (fs *fakeStore) Has(d string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.keys[d]
}

func (fs *fakeStore) Orphans() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.orphans))
	for k := range fs.orphans {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (fs *fakeStore) Keep(d string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.orphans, d)
}

func (fs *fakeStore) Drop(d string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.keys, d)
	delete(fs.orphans, d)
	return nil
}

func (fs *fakeStore) put(d string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.keys[d] = true
}

func (fs *fakeStore) markOrphan(d string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.keys[d] = true
	fs.orphans[d] = true
}

// fakeFleet is a PeerOps over a map of fakeStores, placing keys with a
// shared State.
type fakeFleet struct {
	state  *State
	stores map[string]*fakeStore
	local  *fakeStore // the sweeping node's own store, target of Pull
	down   map[string]bool
}

var errDown = errors.New("peer down")

func (ff *fakeFleet) Keys(_ context.Context, peer, shard string) ([]string, uint64, error) {
	ps, ok := ff.stores[peer]
	if !ok || ff.down[peer] {
		return nil, 0, errDown
	}
	ms, ring := ff.state.View()
	r := min(ms.Replicas, ring.Len())
	var owned []string
	for _, d := range ps.Keys() {
		if contains(ring.Owners(d, r), shard) {
			owned = append(owned, d)
		}
	}
	return owned, ms.Epoch, nil
}

func (ff *fakeFleet) Pull(_ context.Context, peer, digest string) error {
	ps, ok := ff.stores[peer]
	if !ok || ff.down[peer] || !ps.Has(digest) {
		return errDown
	}
	ff.local.put(digest)
	return nil
}

func (ff *fakeFleet) Push(_ context.Context, peer, digest string) error {
	ps, ok := ff.stores[peer]
	if !ok || ff.down[peer] {
		return errDown
	}
	ps.put(digest)
	return nil
}

func (ff *fakeFleet) Membership(_ context.Context, peer string) (Membership, error) {
	if _, ok := ff.stores[peer]; !ok || ff.down[peer] {
		return Membership{}, errDown
	}
	ms, _ := ff.state.View()
	return ms, nil
}

// TestSweeperPullsMissingOwnedKeys: a cold node converges to exactly
// the key set it owns — no more, no less.
func TestSweeperPullsMissingOwnedKeys(t *testing.T) {
	peers := []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}
	st := NewState(peers, 2)
	_, ring := st.View()

	self := "127.0.0.1:3"
	local := newFakeStore()
	full := newFakeStore() // peer 1 has everything
	var owned, notOwned []string
	for _, d := range testDigests(60) {
		full.put(d)
		if contains(ring.Owners(d, 2), self) {
			owned = append(owned, d)
		} else {
			notOwned = append(notOwned, d)
		}
	}
	if len(owned) == 0 || len(notOwned) == 0 {
		t.Fatal("test digests did not split across owners")
	}

	fleet := &fakeFleet{state: st, local: local, stores: map[string]*fakeStore{
		"127.0.0.1:1": full,
		"127.0.0.1:2": newFakeStore(),
	}}
	sw := NewSweeper(Config{Self: self, State: st, Local: local, Peer: fleet})
	sw.Sweep(context.Background())

	sort.Strings(owned)
	if got := local.Keys(); !slices.Equal(got, owned) {
		t.Fatalf("after sweep local holds %d keys, want the %d owned ones", len(got), len(owned))
	}
	if s := sw.Stats(); s.Pulls != int64(len(owned)) || s.Sweeps != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestSweeperOrphanHandoff: a fallback artifact computed on a
// non-replica is delivered to every owner, then dropped locally; an
// undeliverable orphan is retained for the next round.
func TestSweeperOrphanHandoff(t *testing.T) {
	peers := []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}
	st := NewState(peers, 2)
	_, ring := st.View()

	self := "127.0.0.1:3"
	var orphan string
	for _, d := range testDigests(200) {
		if !contains(ring.Owners(d, 2), self) {
			orphan = d
			break
		}
	}
	if orphan == "" {
		t.Fatal("no non-owned digest found")
	}
	owners := ring.Owners(orphan, 2)

	local := newFakeStore()
	local.markOrphan(orphan)
	fleet := &fakeFleet{state: st, local: local, stores: map[string]*fakeStore{
		"127.0.0.1:1": newFakeStore(),
		"127.0.0.1:2": newFakeStore(),
	}, down: map[string]bool{owners[0]: true}}

	sw := NewSweeper(Config{Self: self, State: st, Local: local, Peer: fleet})
	sw.Sweep(context.Background())
	if !local.Has(orphan) {
		t.Fatal("orphan dropped while an owner was unreachable")
	}

	fleet.down = nil
	sw.Sweep(context.Background())
	if local.Has(orphan) {
		t.Fatal("orphan retained after successful handoff")
	}
	for _, o := range owners {
		if !fleet.stores[o].Has(orphan) {
			t.Fatalf("owner %s missing the handed-off copy", o)
		}
	}
	if s := sw.Stats(); s.Handoffs != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestSweeperAdoptsOrphanWhenPlacementChanges: if membership churn
// makes this node an owner of a tagged artifact, the tag is cleared
// instead of handing the copy away.
func TestSweeperAdoptsOrphanWhenPlacementChanges(t *testing.T) {
	st := NewState([]string{"127.0.0.1:1", "127.0.0.1:2"}, 1)
	_, ring := st.View()
	self := "127.0.0.1:2"
	var d string
	for _, c := range testDigests(100) {
		if contains(ring.Owners(c, 1), self) {
			d = c
			break
		}
	}
	local := newFakeStore()
	local.markOrphan(d)
	fleet := &fakeFleet{state: st, local: local, stores: map[string]*fakeStore{"127.0.0.1:1": newFakeStore()}}
	sw := NewSweeper(Config{Self: self, State: st, Local: local, Peer: fleet})
	sw.Sweep(context.Background())
	if !local.Has(d) || len(local.Orphans()) != 0 {
		t.Fatal("owned orphan was not adopted")
	}
	if s := sw.Stats(); s.Adoptions != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestSweeperRejoinsWhenDroppedFromMembership: a node missing from the
// adopted view calls the Rejoin hook instead of repairing against a
// ring it is not on.
func TestSweeperRejoinsWhenDroppedFromMembership(t *testing.T) {
	st := NewState([]string{"127.0.0.1:1", "127.0.0.1:2"}, 1)
	st.Apply(Membership{Epoch: 9, Peers: []string{"127.0.0.1:1"}, Replicas: 1})
	rejoined := false
	local := newFakeStore()
	fleet := &fakeFleet{state: st, local: local, stores: map[string]*fakeStore{"127.0.0.1:1": newFakeStore()}}
	sw := NewSweeper(Config{Self: "127.0.0.1:2", State: st, Local: local, Peer: fleet,
		Rejoin: func() { rejoined = true }})
	sw.Sweep(context.Background())
	if !rejoined {
		t.Fatal("sweeper did not rejoin after losing membership")
	}
}

func testDigests(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = digestOfInt(i)
	}
	return out
}

func digestOfInt(i int) string {
	const hexdig = "0123456789abcdef"
	b := make([]byte, 64)
	for j := range b {
		b[j] = hexdig[(i>>(j%8))&0xf]
	}
	return string(b)
}
