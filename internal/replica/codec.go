// Wire codecs for the replication surfaces: the sorted key-list
// format behind GET /v1/cluster/keys and the JSON membership and join
// bodies behind the /v1/cluster handshake endpoints. Everything here
// reads from untrusted peers, so every decoder follows the wire-tier
// discipline: declared counts are validated against hard limits before
// sizing anything, allocations grow incrementally against what the
// stream actually delivers, and a hostile header can never force an
// allocation bigger than the bytes the peer really sent.
package replica

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"avtmor/internal/store"
)

// keyListMagic opens a key-list stream: magic, format version, and the
// declared entry count, newline-terminated. Each entry is then exactly
// one 64-hex-digit content address plus '\n', so the whole body has a
// length fixed by its header — malformed framing is detected at the
// first bad line, not absorbed.
const keyListMagic = "AVTMKEYS"

// keyListVersion is the current key-list format version.
const keyListVersion = 1

// MaxKeys bounds the entry count one key-list response may declare.
// At 65 bytes per entry this caps the body at ~64 MiB — far above any
// plausible shard, low enough to refuse absurd headers outright.
const MaxKeys = 1 << 20

// keyListAllocCap caps the capacity hinted from a declared count: a
// peer claiming a million keys still starts from a modest slice that
// grows only as real entries arrive.
const keyListAllocCap = 4096

// WriteKeyList writes keys (64-hex content addresses) to w in the
// key-list format, sorting a copy first so every node serves the same
// shard in the same byte order and diffs are a linear merge.
func WriteKeyList(w io.Writer, keys []string) error {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d %d\n", keyListMagic, keyListVersion, len(sorted))
	for _, k := range sorted {
		bw.WriteString(k)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadKeyList decodes a key-list stream, returning the sorted content
// addresses. It refuses oversized counts, malformed digests, unsorted
// or duplicate entries, and bodies that end early or run long — and it
// allocates incrementally, so a hostile count cannot reserve more
// memory than the entries actually streamed.
func ReadKeyList(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var magic string
	var version, count int
	if _, err := fmt.Fscanf(br, "%s %d %d\n", &magic, &version, &count); err != nil {
		return nil, fmt.Errorf("replica: bad key-list header: %w", err)
	}
	if magic != keyListMagic {
		return nil, fmt.Errorf("replica: bad key-list magic %q", magic)
	}
	if version != keyListVersion {
		return nil, fmt.Errorf("replica: unsupported key-list version %d", version)
	}
	if count < 0 || count > MaxKeys {
		return nil, fmt.Errorf("replica: key-list count %d outside 0..%d", count, MaxKeys)
	}
	keys := make([]string, 0, min(count, keyListAllocCap))
	line := make([]byte, store.DigestLen+1)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, line); err != nil {
			return nil, fmt.Errorf("replica: key list truncated at entry %d/%d: %w", i, count, err)
		}
		if line[store.DigestLen] != '\n' {
			return nil, fmt.Errorf("replica: key-list entry %d is not a %d-hex digest line", i, store.DigestLen)
		}
		k := string(line[:store.DigestLen])
		if !store.ValidDigest(k) {
			return nil, fmt.Errorf("replica: key-list entry %d is not a content address", i)
		}
		if len(keys) > 0 && keys[len(keys)-1] >= k {
			return nil, fmt.Errorf("replica: key list unsorted at entry %d", i)
		}
		keys = append(keys, k)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("replica: trailing bytes after %d key-list entries", count)
	}
	return keys, nil
}

// maxJSONBody bounds the membership and join handshake bodies. A
// MaxPeers-sized peer list of MaxAddrLen addresses fits comfortably.
const maxJSONBody = 512 << 10

// JoinRequest is the body of POST /v1/cluster/join and /leave: the
// address of the node entering or departing the fleet.
type JoinRequest struct {
	Node string `json:"node"`
}

// DecodeJoin reads and validates a join/leave request body.
func DecodeJoin(r io.Reader) (JoinRequest, error) {
	var req JoinRequest
	if err := decodeJSON(r, &req); err != nil {
		return JoinRequest{}, err
	}
	if req.Node == "" || len(req.Node) > MaxAddrLen {
		return JoinRequest{}, fmt.Errorf("replica: invalid join node %q", req.Node)
	}
	return req, nil
}

// DecodeMembership reads and validates a membership body (the join
// handshake response and the gossip POST body).
func DecodeMembership(r io.Reader) (Membership, error) {
	var m Membership
	if err := decodeJSON(r, &m); err != nil {
		return Membership{}, err
	}
	if err := m.Validate(); err != nil {
		return Membership{}, err
	}
	return m, nil
}

// EncodeMembership writes m as JSON.
func EncodeMembership(w io.Writer, m Membership) error {
	return json.NewEncoder(w).Encode(m)
}

// decodeJSON decodes one JSON value from a size-capped reader and
// rejects trailing content, so a handshake body is exactly one value.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxJSONBody))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("replica: bad handshake body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("replica: trailing content after handshake body")
	}
	return nil
}
