// Package replica is the replication and membership brain of the
// cluster tier: epoch-versioned dynamic membership over the
// consistent-hash ring, and the anti-entropy sweeper that keeps every
// artifact on its R ring owners as nodes join, leave, and crash.
//
// PR 5's ring was a static -peers list with replication factor 1: an
// owner crash orphaned its shard's only stored copies, and changing
// the fleet meant a synchronized redeploy. This package fixes both
// halves. Placement becomes R>1 (cluster.Ring.Owners — the R distinct
// clockwise successors), so a write lands on R nodes and a crash
// leaves R-1 servable copies. Membership becomes a mutable, versioned
// value: a Membership is (epoch, peer list, replication factor), and
// State holds the current one next to the ring built from it. Nodes
// exchange memberships on a join/leave handshake and in the
// anti-entropy sweep; Compare defines a total order so every node
// adopting "the greater membership" converges on the same view with no
// coordinator. Mid-transition divergence is bounded by the serve
// tier's one-hop forwarding guard: two nodes with different epochs
// disagree about placement for at most one hop, because a forwarded
// request is always served where it lands.
//
// Anti-entropy makes convergence traffic-independent: content
// addressing turns "what am I missing" into a set difference over
// sorted digest lists (the /v1/cluster/keys surface), so a cold or
// repaired node pulls exactly the artifacts it should own and a
// non-replica hands off (then drops) fallback copies it computed while
// an owner was down. The economics mirror short-block amortization in
// distributed coding (Fang, arXiv:1010.3150): a small constant write
// cost per artifact buys out the expensive recompute on every failure.
package replica

import (
	"fmt"
	"strings"
	"sync"

	"avtmor/internal/cluster"
)

// MaxPeers bounds the peer list a membership message may carry: far
// above any realistic fleet, low enough that a hostile handshake body
// cannot demand an absurd allocation or an absurd ring rebuild.
const MaxPeers = 1024

// MaxAddrLen bounds one peer address in a membership or join message.
const MaxAddrLen = 256

// Membership is the epoch-versioned cluster view: who is in the fleet
// and how many copies of each artifact it keeps. It is a value —
// compare with Compare, adopt the greater — and its peer list is
// always normalized, deduplicated, and sorted (the canonical form
// cluster.New produces), so equal views are textually equal.
type Membership struct {
	// Epoch counts membership transitions. A join or leave bumps it by
	// one; higher epochs win everywhere.
	Epoch uint64 `json:"epoch"`
	// Peers is the full fleet address list, canonical form.
	Peers []string `json:"peers"`
	// Replicas is the fleet-wide replication factor R: every artifact
	// is placed on the R distinct clockwise ring successors of its
	// content address. Clamped to [1, len(Peers)] at use sites.
	Replicas int `json:"replicas"`
}

// Compare totally orders memberships: by epoch, then peer-list length,
// then the joined peer list. The tie-breakers make concurrent
// transitions that minted the same epoch on different nodes converge —
// every node adopts the same winner, and the loser's sweeper notices
// it lost (its node may be missing from the winning view) and
// re-joins. Returns -1, 0, or +1.
func Compare(a, b Membership) int {
	switch {
	case a.Epoch != b.Epoch:
		if a.Epoch < b.Epoch {
			return -1
		}
		return 1
	case len(a.Peers) != len(b.Peers):
		if len(a.Peers) < len(b.Peers) {
			return -1
		}
		return 1
	default:
		return strings.Compare(strings.Join(a.Peers, ","), strings.Join(b.Peers, ","))
	}
}

// Validate checks the structural bounds a membership read off the wire
// must satisfy before a ring is built from it.
func (m Membership) Validate() error {
	if len(m.Peers) == 0 {
		return fmt.Errorf("replica: membership has no peers")
	}
	if len(m.Peers) > MaxPeers {
		return fmt.Errorf("replica: %d peers exceeds the limit of %d", len(m.Peers), MaxPeers)
	}
	for _, p := range m.Peers {
		if p == "" || len(p) > MaxAddrLen {
			return fmt.Errorf("replica: invalid peer address %q", p)
		}
	}
	if m.Replicas < 1 || m.Replicas > MaxPeers {
		return fmt.Errorf("replica: replication factor %d outside 1..%d", m.Replicas, MaxPeers)
	}
	return nil
}

// State is the mutable membership of one node: the current Membership
// and the ring built from its peer list. It is safe for concurrent
// use; all transitions go through Apply/Join/Leave, which keep the
// ring and the view in lockstep.
type State struct {
	mu   sync.RWMutex
	ms   Membership    // guarded by mu
	ring *cluster.Ring // guarded by mu; always cluster.New(ms.Peers)
}

// NewState builds the epoch-1 state over a static bootstrap peer list.
// The list is canonicalized through the ring build; replicas is
// clamped to at least 1.
func NewState(peers []string, replicas int) *State {
	if replicas < 1 {
		replicas = 1
	}
	ring := cluster.New(peers, 0)
	return &State{
		ms:   Membership{Epoch: 1, Peers: ring.Nodes(), Replicas: replicas},
		ring: ring,
	}
}

// View returns the current membership and its ring. The membership's
// peer slice and the ring are shared snapshots; callers must not
// mutate them (both are rebuilt, never edited, on transition).
func (s *State) View() (Membership, *cluster.Ring) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ms, s.ring
}

// Epoch returns the current membership epoch.
func (s *State) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ms.Epoch
}

// Ring returns the current ring.
func (s *State) Ring() *cluster.Ring {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring
}

// Replicas returns the current replication factor, clamped to the
// fleet size.
func (s *State) Replicas() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return min(s.ms.Replicas, s.ring.Len())
}

// Apply adopts m if it is greater than the current view (Compare
// order) and reports whether a transition happened. An invalid m is
// ignored. The ring is rebuilt from the adopted peer list.
func (s *State) Apply(m Membership) bool {
	if m.Validate() != nil {
		return false
	}
	ring := cluster.New(m.Peers, 0)
	if ring.Len() == 0 {
		return false // every peer normalized away: an empty ring owns nothing
	}
	m.Peers = ring.Nodes() // canonical form, so Compare is textual
	s.mu.Lock()
	defer s.mu.Unlock()
	if Compare(m, s.ms) <= 0 {
		return false
	}
	s.ms = m
	s.ring = ring
	return true
}

// Join adds node to the fleet, bumping the epoch, and returns the new
// membership (the current one unchanged if node is already a member
// or normalizes to nothing). The caller broadcasts the result.
func (s *State) Join(node string) Membership {
	node = cluster.Normalize(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	if node == "" || s.ring.Contains(node) {
		return s.ms
	}
	ring := cluster.New(append([]string{node}, s.ms.Peers...), 0)
	s.ms = Membership{Epoch: s.ms.Epoch + 1, Peers: ring.Nodes(), Replicas: s.ms.Replicas}
	s.ring = ring
	return s.ms
}

// Leave removes node from the fleet, bumping the epoch, and returns
// the new membership (unchanged if node was not a member, and the
// last node never removes itself — an empty ring owns nothing, which
// would strand every key).
func (s *State) Leave(node string) Membership {
	node = cluster.Normalize(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	if node == "" || !s.ring.Contains(node) || s.ring.Len() == 1 {
		return s.ms
	}
	peers := make([]string, 0, len(s.ms.Peers)-1)
	for _, p := range s.ms.Peers {
		if p != node {
			peers = append(peers, p)
		}
	}
	ring := cluster.New(peers, 0)
	s.ms = Membership{Epoch: s.ms.Epoch + 1, Peers: ring.Nodes(), Replicas: s.ms.Replicas}
	s.ring = ring
	return s.ms
}

// Contains reports whether node (normalized) is in the current view.
func (s *State) Contains(node string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Contains(node)
}
