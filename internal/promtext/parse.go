package promtext

// The reader half: Parse validates a text exposition document and
// returns its metric families, so the CI smokes and the docs
// drift-guard test can hold a live /metrics scrape to the format
// contract (metadata before samples, valid names and label syntax,
// histogram bucket invariants) and to the documented name set.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the sample name as written (histogram samples carry the
	// _bucket/_sum/_count suffix here; Family.Name does not).
	Name string
	// Labels are the sample's label pairs in document order.
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Family is one parsed metric family: the base name (histogram
// suffixes stripped), its metadata, and its samples in document order.
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram, summary, or untyped
	Help    string
	Samples []Sample
}

// Scrape is one parsed exposition document.
type Scrape struct {
	byName map[string]*Family
	order  []string
}

// Families returns the family names in document order.
func (s *Scrape) Families() []string {
	return append([]string(nil), s.order...)
}

// Family returns the named family, or nil.
func (s *Scrape) Family(name string) *Family {
	return s.byName[name]
}

// Value sums every sample named exactly name across label sets —
// counters and gauges add naturally; for a histogram pass the
// name_count/name_sum spelling explicitly. ok is false when no such
// sample exists.
func (s *Scrape) Value(name string) (v float64, ok bool) {
	for _, fam := range s.byName {
		for _, smp := range fam.Samples {
			if smp.Name == name {
				v += smp.Value
				ok = true
			}
		}
	}
	return v, ok
}

// maxLineBytes bounds one exposition line; a scrape target emitting an
// unbounded line is broken, not big.
const maxLineBytes = 1 << 20

// Parse reads and validates one exposition document. Violations of the
// format — samples before their # TYPE, bad metric or label names,
// malformed values, duplicate samples, histogram children missing
// +Inf or with non-cumulative buckets, counters going negative — are
// errors.
func Parse(r io.Reader) (*Scrape, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	out := &Scrape{byName: map[string]*Family{}}
	seen := map[string]bool{} // name + rendered labels → duplicate guard
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := out.parseMeta(line, lineNo); err != nil {
				return nil, err
			}
			continue
		}
		if err := out.parseSample(line, lineNo, seen); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: reading scrape: %w", err)
	}
	for _, name := range out.order {
		if err := out.byName[name].validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// family returns (creating if needed) the family record for a base
// name.
func (s *Scrape) family(name string) *Family {
	fam := s.byName[name]
	if fam == nil {
		fam = &Family{Name: name, Type: "untyped"}
		s.byName[name] = fam
		s.order = append(s.order, name)
	}
	return fam
}

func (s *Scrape) parseMeta(line string, lineNo int) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // free-form comment; the format allows it
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("promtext: line %d: malformed HELP line", lineNo)
		}
		fam := s.family(fields[2])
		if len(fam.Samples) > 0 {
			return fmt.Errorf("promtext: line %d: HELP for %s after its samples", lineNo, fields[2])
		}
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("promtext: line %d: malformed TYPE line", lineNo)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("promtext: line %d: unknown metric type %q", lineNo, fields[3])
		}
		fam := s.family(fields[2])
		if len(fam.Samples) > 0 {
			return fmt.Errorf("promtext: line %d: TYPE for %s after its samples", lineNo, fields[2])
		}
		if fam.Type != "untyped" && fam.Type != fields[3] {
			return fmt.Errorf("promtext: line %d: %s re-typed %s → %s", lineNo, fields[2], fam.Type, fields[3])
		}
		fam.Type = fields[3]
	}
	return nil
}

func (s *Scrape) parseSample(line string, lineNo int, seen map[string]bool) error {
	name, rest, err := splitName(line)
	if err != nil {
		return fmt.Errorf("promtext: line %d: %v", lineNo, err)
	}
	labels, rest, err := splitLabels(rest)
	if err != nil {
		return fmt.Errorf("promtext: line %d: %v", lineNo, err)
	}
	valText, _, _ := strings.Cut(strings.TrimSpace(rest), " ") // optional timestamp ignored
	value, err := parseValue(valText)
	if err != nil {
		return fmt.Errorf("promtext: line %d: value %q: %v", lineNo, valText, err)
	}
	key := name + "{" + labelKey(labels) + "}"
	if seen[key] {
		return fmt.Errorf("promtext: line %d: duplicate sample %s", lineNo, key)
	}
	seen[key] = true

	// Resolve the base family: a _bucket/_sum/_count suffix folds into
	// a declared histogram (or summary) family.
	base := name
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed == name {
			continue
		}
		if fam := s.byName[trimmed]; fam != nil && (fam.Type == "histogram" || fam.Type == "summary") {
			base = trimmed
			break
		}
	}
	fam := s.family(base)
	if fam.Type == "counter" && base == name && value < 0 {
		return fmt.Errorf("promtext: line %d: counter %s is negative (%v)", lineNo, name, value)
	}
	fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: value})
	return nil
}

// validate checks the per-family invariants that need the whole
// document: histogram children must carry cumulative buckets ending in
// +Inf whose total equals _count.
func (f *Family) validate() error {
	if f.Type != "histogram" {
		return nil
	}
	type hchild struct {
		bounds []float64
		counts []float64
		count  float64
		hasCnt bool
		hasSum bool
	}
	children := map[string]*hchild{}
	childOf := func(ls []Label) *hchild {
		base := make([]Label, 0, len(ls))
		for _, l := range ls {
			if l.Name != "le" {
				base = append(base, l)
			}
		}
		key := labelKey(base)
		c := children[key]
		if c == nil {
			c = &hchild{}
			children[key] = c
		}
		return c
	}
	for _, smp := range f.Samples {
		c := childOf(smp.Labels)
		switch {
		case smp.Name == f.Name+"_bucket":
			le := ""
			for _, l := range smp.Labels {
				if l.Name == "le" {
					le = l.Value
				}
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("promtext: histogram %s: bad le %q", f.Name, le)
			}
			c.bounds = append(c.bounds, bound)
			c.counts = append(c.counts, smp.Value)
		case smp.Name == f.Name+"_count":
			c.count, c.hasCnt = smp.Value, true
		case smp.Name == f.Name+"_sum":
			c.hasSum = true
		default:
			return fmt.Errorf("promtext: histogram %s carries stray sample %s", f.Name, smp.Name)
		}
	}
	for _, c := range children {
		if !c.hasCnt || !c.hasSum {
			return fmt.Errorf("promtext: histogram %s child missing _count or _sum", f.Name)
		}
		if len(c.bounds) == 0 {
			return fmt.Errorf("promtext: histogram %s child has no buckets", f.Name)
		}
		// Buckets may arrive in any order per the format; sort by bound.
		idx := make([]int, len(c.bounds))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return c.bounds[idx[a]] < c.bounds[idx[b]] })
		prev := math.Inf(-1)
		prevCount := 0.0
		for _, i := range idx {
			if c.counts[i] < prevCount {
				return fmt.Errorf("promtext: histogram %s buckets are not cumulative", f.Name)
			}
			prev, prevCount = c.bounds[i], c.counts[i]
		}
		if !math.IsInf(prev, 1) {
			return fmt.Errorf("promtext: histogram %s child lacks a +Inf bucket", f.Name)
		}
		if prevCount != c.count {
			return fmt.Errorf("promtext: histogram %s +Inf bucket %v != _count %v", f.Name, prevCount, c.count)
		}
	}
	return nil
}

// splitName peels the metric name off a sample line.
func splitName(line string) (name, rest string, err error) {
	end := 0
	for end < len(line) && line[end] != '{' && line[end] != ' ' && line[end] != '\t' {
		end++
	}
	name = line[:end]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[end:], nil
}

// splitLabels parses an optional {name="value",...} block.
func splitLabels(rest string) ([]Label, string, error) {
	if !strings.HasPrefix(rest, "{") {
		return nil, rest, nil
	}
	var labels []Label
	i := 1
	for {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == ',') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return labels, rest[i+1:], nil
		}
		start := i
		for i < len(rest) && rest[i] != '=' {
			i++
		}
		if i >= len(rest) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		lname := strings.TrimSpace(rest[start:i])
		if !validLabelName(lname) && lname != "le" {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		i++ // '='
		if i >= len(rest) || rest[i] != '"' {
			return nil, "", fmt.Errorf("label %s: value is not quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("label %s: unterminated value", lname)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(rest) {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: unknown escape \\%c", lname, rest[i])
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
	}
}

// parseValue parses a sample value, accepting the Prometheus special
// spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	case "":
		return 0, fmt.Errorf("empty value")
	}
	return strconv.ParseFloat(s, 64)
}
