package promtext

import (
	"math"
	"strings"
	"testing"
)

// TestWriterRoundTrip renders a registry with all three kinds and
// re-reads it through Parse: the writer's output must satisfy the
// reader's validation, and values must survive.
func TestWriterRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("avtmor_test_total", "a counter")
	c.Add(41)
	c.Inc()
	r.GaugeFunc("avtmor_test_depth", "a gauge", func() float64 { return 3.5 })
	r.CounterFunc("avtmor_test_peer_total", "per-peer counter",
		func() float64 { return 7 }, Label{Name: "peer", Value: "node-b:9/\\\"x\""})
	h := r.Histogram("avtmor_test_seconds", "a histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(100)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	doc := sb.String()
	scrape, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse of writer output: %v\n%s", err, doc)
	}
	if v, ok := scrape.Value("avtmor_test_total"); !ok || v != 42 {
		t.Fatalf("counter = %v, %v; want 42, true", v, ok)
	}
	if v, ok := scrape.Value("avtmor_test_depth"); !ok || v != 3.5 {
		t.Fatalf("gauge = %v, %v; want 3.5, true", v, ok)
	}
	if v, ok := scrape.Value("avtmor_test_peer_total"); !ok || v != 7 {
		t.Fatalf("labeled counter = %v, %v; want 7, true", v, ok)
	}
	fam := scrape.Family("avtmor_test_seconds")
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", fam)
	}
	if v, ok := scrape.Value("avtmor_test_seconds_count"); !ok || v != 4 {
		t.Fatalf("histogram count = %v, %v; want 4, true", v, ok)
	}
	if v, _ := scrape.Value("avtmor_test_seconds_sum"); math.Abs(v-102.55) > 1e-9 {
		t.Fatalf("histogram sum = %v; want 102.55", v)
	}
	// The labeled peer value must round-trip its escapes.
	pf := scrape.Family("avtmor_test_peer_total")
	if got := pf.Samples[0].Labels[0].Value; got != "node-b:9/\\\"x\"" {
		t.Fatalf("label value round-trip: %q", got)
	}
}

func TestWriterStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b")
	r.Counter("a_total", "a")
	var first, second strings.Builder
	r.WriteTo(&first)
	r.WriteTo(&second)
	if first.String() != second.String() {
		t.Fatal("repeated scrapes differ")
	}
	if bi, ai := strings.Index(first.String(), "b_total"), strings.Index(first.String(), "a_total"); bi > ai {
		t.Fatal("registration order not preserved")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	var sb strings.Builder
	r.WriteTo(&sb)
	doc := sb.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 2`,
		`h_seconds_bucket{le="+Inf"} 3`,
		`h_seconds_count 3`,
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("missing %q in:\n%s", want, doc)
		}
	}
}

func TestOnScrapeRunsFirst(t *testing.T) {
	r := NewRegistry()
	var snapshot float64
	r.OnScrape(func() { snapshot = 9 })
	r.GaugeFunc("g", "", func() float64 { return snapshot })
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), "g 9") {
		t.Fatalf("prelude did not run before gauge func:\n%s", sb.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("0bad", "") }},
		{"bad label name", func(r *Registry) { r.Counter("ok_total", "", Label{Name: "__reserved", Value: "x"}) }},
		{"kind clash", func(r *Registry) {
			r.Counter("x_total", "")
			r.GaugeFunc("x_total", "", func() float64 { return 0 })
		}},
		{"duplicate label set", func(r *Registry) {
			r.Counter("y_total", "", Label{Name: "a", Value: "1"})
			r.Counter("y_total", "", Label{Name: "a", Value: "1"})
		}},
		{"empty histogram bounds", func(r *Registry) { r.Histogram("h", "", nil) }},
		{"unsorted histogram bounds", func(r *Registry) { r.Histogram("h", "", []float64{2, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d; want 5", c.Value())
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"metadata after samples", "x_total 1\n# TYPE x_total counter\n"},
		{"bad name", "9bad 1\n"},
		{"bad value", "x_total one\n"},
		{"duplicate sample", "x_total 1\nx_total 2\n"},
		{"negative counter", "# TYPE x_total counter\nx_total -1\n"},
		{"unknown type", "# TYPE x gibberish\n"},
		{"unterminated labels", `x{a="1" 2` + "\n"},
		{"unquoted label value", "x{a=1} 2\n"},
		{"histogram missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"histogram count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("accepted invalid doc:\n%s", tc.doc)
			}
		})
	}
}

func TestParseAccepts(t *testing.T) {
	doc := `# free-form comment
# HELP x_total helpful "text" with \ backslash
# TYPE x_total counter
x_total{instance="a"} 1 1700000000000
x_total{instance="b"} 2
# TYPE g gauge
g -0.5
untyped_metric 7
`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := s.Value("x_total"); !ok || v != 3 {
		t.Fatalf("x_total = %v, %v; want 3, true", v, ok)
	}
	if got := s.Family("untyped_metric").Type; got != "untyped" {
		t.Fatalf("untyped family type = %q", got)
	}
	if len(s.Families()) != 3 {
		t.Fatalf("families = %v", s.Families())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 10})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("count = %d; want 4000", h.Count())
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	if _, err := Parse(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("round-trip after concurrent observes: %v", err)
	}
}
