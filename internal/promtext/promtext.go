// Package promtext is a dependency-free writer and validating reader
// for the Prometheus text exposition format (version 0.0.4) — the
// subset the avtmor serving tier needs: counters, gauges, and
// cumulative histograms, with optional constant label sets per child.
//
// The writer side is a Registry: metrics are registered once (value
// cells, value functions, or histograms), and WriteTo renders the
// whole registry as one exposition document in registration order, so
// repeated scrapes of an unchanged registry are textually stable. The
// reader side (Parse) validates a scraped document — metadata
// ordering, name/label syntax, histogram bucket invariants — and is
// what the CI smoke and the docs drift-guard test use to hold the
// emitted surface to the documented one.
//
// Deliberately not implemented: summaries, exemplars, timestamps,
// OpenMetrics framing, and runtime label cardinality (labels are fixed
// at registration; a new label set is a new registered child).
package promtext

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds rendered in # TYPE lines.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Label is one constant name/value pair attached to a metric child at
// registration time.
type Label struct {
	Name, Value string
}

// Registry holds registered metric families and renders them as one
// Prometheus text exposition document.
type Registry struct {
	mu       sync.Mutex
	families []*family          // guarded by mu; registration order
	byName   map[string]*family // guarded by mu
	preludes []func()           // guarded by mu; run at the start of every WriteTo
}

// family is one metric name: its metadata and its children (one per
// label set).
type family struct {
	name, help, kind string
	children         []child
}

type child interface {
	labels() []Label
	write(sb *strings.Builder, fam *family)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// OnScrape registers a hook that runs at the start of every WriteTo,
// before any value function is called and under the registry lock —
// the place to take one consistent snapshot of state that several
// gauges render pieces of (membership epoch + node count, say), so a
// scrape can never observe a torn combination.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.preludes = append(r.preludes, f)
}

// register validates and files one child under name, creating the
// family on first use. Registration problems (bad name, kind clash,
// duplicate label set) are programmer errors and panic, like expvar.
func (r *Registry) register(name, help, kind string, c child) {
	if !validMetricName(name) {
		panic("promtext: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range c.labels() {
		if !validLabelName(l.Name) {
			panic("promtext: invalid label name " + strconv.Quote(l.Name) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	} else if fam.kind != kind {
		panic("promtext: metric " + name + " registered as both " + fam.kind + " and " + kind)
	}
	key := labelKey(c.labels())
	for _, prev := range fam.children {
		if labelKey(prev.labels()) == key {
			panic("promtext: duplicate registration of " + name + "{" + key + "}")
		}
	}
	fam.children = append(fam.children, c)
}

// Counter is a monotonically increasing integer cell.
type Counter struct {
	v  atomic.Int64
	ls []Label
}

// Counter registers and returns a counter cell. The name should end
// in _total by Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{ls: labels}
	r.register(name, help, KindCounter, c)
	return c
}

// Add increments the counter; negative deltas are ignored (counters
// are monotonic by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) labels() []Label { return c.ls }

func (c *Counter) write(sb *strings.Builder, fam *family) {
	writeSample(sb, fam.name, c.ls, nil, float64(c.v.Load()))
}

// funcChild renders a value function as one sample.
type funcChild struct {
	f  func() float64
	ls []Label
}

func (c *funcChild) labels() []Label { return c.ls }

func (c *funcChild) write(sb *strings.Builder, fam *family) {
	writeSample(sb, fam.name, c.ls, nil, c.f())
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — the bridge from pre-existing counters (expvar cells, stats
// snapshots) without double bookkeeping. f must be monotonic.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, KindCounter, &funcChild{f: f, ls: labels})
}

// GaugeFunc registers a gauge whose value is read from f at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, KindGauge, &funcChild{f: f, ls: labels})
}

// Histogram is a cumulative histogram with fixed upper bounds. Observe
// is lock-free (atomic per-bucket counts and a CAS-accumulated sum),
// so it is safe on hot serving paths.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
	ls      []Label
}

// Histogram registers a histogram with the given ascending bucket
// upper bounds (+Inf is implicit). Bounds must be strictly increasing
// and non-empty.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("promtext: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("promtext: histogram " + name + " bounds must be strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
		ls:     labels,
	}
	r.register(name, help, KindHistogram, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Find the first bound >= v. Bucket arrays are short (≤ ~20);
	// linear scan beats binary search at this size and stays obvious.
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total + h.inf.Load()
}

func (h *Histogram) labels() []Label { return h.ls }

func (h *Histogram) write(sb *strings.Builder, fam *family) {
	// Cumulative bucket counts: each le bucket includes everything
	// below it, and +Inf equals _count.
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := Label{Name: "le", Value: formatBound(b)}
		writeSample(sb, fam.name+"_bucket", h.ls, &le, float64(cum))
	}
	cum += h.inf.Load()
	le := Label{Name: "le", Value: "+Inf"}
	writeSample(sb, fam.name+"_bucket", h.ls, &le, float64(cum))
	writeSample(sb, fam.name+"_sum", h.ls, nil, math.Float64frombits(h.sumBits.Load()))
	writeSample(sb, fam.name+"_count", h.ls, nil, float64(cum))
}

// WriteTo renders the registry as one exposition document.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	for _, f := range r.preludes {
		f()
	}
	var sb strings.Builder
	for _, fam := range r.families {
		sb.WriteString("# HELP ")
		sb.WriteString(fam.name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(fam.help))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(fam.name)
		sb.WriteByte(' ')
		sb.WriteString(fam.kind)
		sb.WriteByte('\n')
		for _, c := range fam.children {
			c.write(&sb, fam)
		}
	}
	r.mu.Unlock()
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// writeSample renders one "name{labels} value" line. extra is an
// additional label (the histogram le) appended after the constant set.
func writeSample(sb *strings.Builder, name string, ls []Label, extra *Label, v float64) {
	sb.WriteString(name)
	if len(ls) > 0 || extra != nil {
		sb.WriteByte('{')
		for i, l := range ls {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeLabel(sb, l)
		}
		if extra != nil {
			if len(ls) > 0 {
				sb.WriteByte(',')
			}
			writeLabel(sb, *extra)
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

func writeLabel(sb *strings.Builder, l Label) {
	sb.WriteString(l.Name)
	sb.WriteString(`="`)
	sb.WriteString(escapeLabelValue(l.Value))
	sb.WriteByte('"')
}

// formatValue renders a sample value: integers without an exponent
// (scrape diffing stays trivial), everything else in Go's shortest
// round-trippable form, specials in Prometheus spelling.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// formatBound renders a bucket upper bound for the le label.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labelKey is a canonical fingerprint of a label set (order
// independent), used only to reject duplicate registrations.
func labelKey(ls []Label) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
