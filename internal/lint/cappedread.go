package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CappedRead is the PR 6 16-EiB-prefix lesson as a lint: in the wire
// tier (romio, systemio, internal/wire — scoping is applied by the
// caller), a make whose size derives from a raw decoded integer must be
// preceded by a bound check on that value. Otherwise one corrupted or
// adversarial length prefix turns into an arbitrary upfront allocation.
//
// "Raw decoded" means the result of a u16/u32/u64 (or Uint16/32/64)
// method call — the unvalidated wire readers. Self-clamping helpers
// like romio's dim() or wire's count(), which reject implausible values
// before returning, are the sanctioned idiom and do not taint. A taint
// is cleared by any if-condition comparing the tainted variable (the
// shape of romio's str() and wire's blob() guards); growth via append
// or slices.Grow against bytes actually read is invisible to the
// analyzer and always fine.
var CappedRead = &Analyzer{
	Name: "cappedread",
	Doc:  "wire-tier makes sized by raw decoded lengths need a preceding bound check",
	Run:  runCappedRead,
}

// rawDecodeNames are the method names whose results taint: unvalidated
// fixed-width integer reads.
var rawDecodeNames = map[string]bool{
	"u16": true, "u32": true, "u64": true,
	"Uint16": true, "Uint32": true, "Uint64": true,
}

func runCappedRead(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkCappedFunc(pass, fn)
			}
		}
	}
	return nil
}

type taintState struct {
	tainted map[*types.Var]token.Pos // var -> position of the tainting decode
	guarded map[*types.Var]token.Pos // var -> position of the clearing comparison
}

func checkCappedFunc(pass *Pass, fn *ast.FuncDecl) {
	st := &taintState{
		tainted: map[*types.Var]token.Pos{},
		guarded: map[*types.Var]token.Pos{},
	}
	// ast.Inspect visits in source order, which is exactly the
	// positional semantics the taint/guard bookkeeping needs.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.recordAssign(pass, n)
		case *ast.IfStmt:
			st.recordGuards(pass, n.Cond)
		case *ast.CallExpr:
			st.checkMake(pass, n)
		}
		return true
	})
}

// recordAssign propagates taint through simple assignments: a raw
// decode call (possibly inside a conversion) taints its target; copying
// a tainted variable copies the taint and its guard state.
func (st *taintState) recordAssign(pass *Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		id, ok := n.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok {
			continue
		}
		switch src := taintSource(pass, st, rhs); src {
		case taintRaw:
			st.tainted[v] = rhs.Pos()
			delete(st.guarded, v)
		case taintCopyGuarded:
			st.tainted[v] = rhs.Pos()
			st.guarded[v] = rhs.Pos()
		case taintNone:
			// Reassignment from a clean source launders the variable.
			delete(st.tainted, v)
			delete(st.guarded, v)
		}
	}
}

type taintKind int

const (
	taintNone taintKind = iota
	taintRaw
	taintCopyGuarded
)

// taintSource classifies an RHS expression: a raw decode call, a copy
// of a tainted variable (carrying its guard state), or clean.
// Conversions unwrap; min/max results are bounded by construction.
func taintSource(pass *Pass, st *taintState, e ast.Expr) taintKind {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			if _, ok := st.tainted[v]; ok {
				if _, g := st.guarded[v]; g {
					return taintCopyGuarded
				}
				return taintRaw
			}
		}
		return taintNone
	case *ast.CallExpr:
		if fn := calleeFunc(pass.TypesInfo, e); fn != nil {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && rawDecodeNames[fn.Name()] {
				return taintRaw
			}
			return taintNone
		}
		// Conversions like int(x) preserve the operand's taint; builtin
		// min/max clamp and therefore clean it.
		if id := calleeIdent(e); id != nil {
			if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok {
				if b.Name() == "min" || b.Name() == "max" {
					return taintNone
				}
			}
		}
		if len(e.Args) == 1 && pass.TypesInfo.Types[e.Fun].IsType() {
			return taintSource(pass, st, e.Args[0])
		}
		return taintNone
	case *ast.BinaryExpr:
		x, y := taintSource(pass, st, e.X), taintSource(pass, st, e.Y)
		if x == taintRaw || y == taintRaw {
			return taintRaw
		}
		if x == taintCopyGuarded || y == taintCopyGuarded {
			return taintCopyGuarded
		}
		return taintNone
	}
	return taintNone
}

// recordGuards clears taint for every tainted variable compared inside
// an if condition (recursing through && and ||).
func (st *taintState) recordGuards(pass *Pass, cond ast.Expr) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch bin.Op {
	case token.LAND, token.LOR:
		st.recordGuards(pass, bin.X)
		st.recordGuards(pass, bin.Y)
		return
	case token.GTR, token.LSS, token.GEQ, token.LEQ:
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
					if _, t := st.tainted[v]; t {
						st.guarded[v] = bin.Pos()
					}
				}
			}
		}
	}
}

// checkMake flags make calls whose size or capacity mentions a tainted,
// unguarded variable.
func (st *taintState) checkMake(pass *Pass, call *ast.CallExpr) {
	id := calleeIdent(call)
	if id == nil {
		return
	}
	if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	for _, arg := range call.Args[1:] {
		ast.Inspect(arg, func(n ast.Node) bool {
			use, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.ObjectOf(use).(*types.Var)
			if !ok {
				return true
			}
			if _, t := st.tainted[v]; !t {
				return true
			}
			if _, g := st.guarded[v]; g {
				return true
			}
			pass.Reportf(call.Pos(), "make sized by %s, a raw decoded length with no preceding bound check: cap it or read incrementally (an adversarial prefix controls this allocation)", use.Name)
			return true
		})
	}
}
