package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
)

// RunFixture loads testdata/src/<pkgpath> (relative to dir, normally
// the package directory of the calling test) and checks the analyzer's
// post-suppression findings against the fixture's `// want "regexp"`
// expectations, analysistest style: every finding must match a want on
// its line, and every want must be matched by a finding. Fixture files
// may import fake packages that live under testdata/src by their
// one-element path (a fake "mat", say), plus anything in the standard
// library. The returned issues are test failures; an empty slice means
// the fixture passed.
func RunFixture(dir string, a *Analyzer, pkgpath string) ([]string, error) {
	root, err := filepath.Abs(filepath.Join(dir, "testdata", "src"))
	if err != nil {
		return nil, err
	}
	l := NewLoader("", "", root)
	pkg, err := l.LoadDir(filepath.Join(root, filepath.FromSlash(pkgpath)), pkgpath)
	if err != nil {
		return nil, err
	}
	findings, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		return nil, err
	}
	wants, err := wantComments(pkg.Fset, pkg.Files)
	if err != nil {
		return nil, err
	}

	var issues []string
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(f.Message) {
				w.hit()
				matched = true
			}
		}
		if !matched {
			issues = append(issues, fmt.Sprintf("%s: unexpected finding: %s", f.Pos, f.Message))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				issues = append(issues, fmt.Sprintf("%s:%d: no finding matched want %q", key.file, key.line, w.re))
			}
		}
	}
	return issues, nil
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func (w *want) hit() { w.matched = true }

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wantComments parses `// want "re" ["re" ...]` expectations from
// fixture comments, keyed by file and line.
func wantComments(fset *token.FileSet, files []*ast.File) (map[lineKey][]*want, error) {
	out := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := lineKey{pos.Filename, pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pat := strings.ReplaceAll(arg[1], `\"`, `"`)
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %w", pos, pat, err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out, nil
}
