package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, typechecked package: the unit RunAnalyzers
// operates on. Only non-test files are loaded — the analyzers guard
// production invariants, and test files routinely (and legitimately)
// drop contexts, leak fixtures, and range over maps.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and typechecks packages without the go command's
// build cache or any module downloads: module-internal imports resolve
// against the module root by import-path prefix, fixture imports
// against an optional testdata/src root, and everything else falls back
// to the standard library's source importer (GOROOT only, so loading
// works offline). Cgo is disabled so every package resolves to its
// pure-Go file set.
type Loader struct {
	fset       *token.FileSet
	std        types.ImporterFrom
	ctxt       build.Context
	modulePath string
	moduleRoot string
	// fixtureRoot, when set, resolves imports testdata-first — the
	// analysistest convention where testdata/src/<path> shadows the
	// world so fixtures can fake the packages they exercise.
	fixtureRoot string
	pkgs        map[string]*Package
	loading     map[string]bool
}

// NewLoader returns a Loader for the module rooted at moduleRoot with
// the given module path (the first `module` line of go.mod).
// fixtureRoot is "" outside fixture tests.
func NewLoader(moduleRoot, modulePath, fixtureRoot string) *Loader {
	fset := token.NewFileSet()
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		fset:        fset,
		std:         importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		ctxt:        ctxt,
		modulePath:  modulePath,
		moduleRoot:  moduleRoot,
		fixtureRoot: fixtureRoot,
		pkgs:        map[string]*Package{},
		loading:     map[string]bool{},
	}
}

// FindModule walks upward from dir to the enclosing go.mod and returns
// the module root and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadPatterns expands go-list patterns (relative to workDir, as the go
// command would) and loads each resulting package. Patterns may name
// directories under testdata explicitly — the go command only hides
// them from wildcards.
func (l *Loader) LoadPatterns(workDir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = workDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("lint: go list %s%s", strings.Join(patterns, " "), detail)
	}
	var pkgs []*Package
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, dir, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and typechecks the package in dir, registering it
// under importPath.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor("gc", l.ctxt.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader's resolution order (fixtures, module,
// standard library) to the go/types importer interfaces.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.fixtureRoot != "" {
		dir := filepath.Join(l.fixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			pkg, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	if rel, ok := l.moduleRel(path); ok {
		pkg, err := l.LoadDir(filepath.Join(l.moduleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

func (l *Loader) moduleRel(path string) (string, bool) {
	if l.modulePath == "" {
		return "", false
	}
	if path == l.modulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return rest, true
	}
	return "", false
}
