package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//avtmorlint:ignore name[,name...] reason
//
// The directive silences the named analyzers on its own line and the
// line below it (so it can ride at the end of the flagged line or on
// the line above). A directive with no reason text is deliberately
// inert: suppressions must say why the invariant does not apply.
const ignorePrefix = "avtmorlint:ignore"

// suppressed records, per file and line, which analyzers are silenced.
type suppressed map[string]map[int]map[string]bool

func (s suppressed) ignores(analyzer string, pos token.Position) bool {
	return s[pos.Filename][pos.Line][analyzer]
}

// suppressions collects every ignore directive in files.
func suppressions(fset *token.FileSet, files []*ast.File) suppressed {
	out := suppressed{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				names, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				for _, name := range strings.Split(names, ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return out
}
