// Package pool seeds a wspool violation for the CI smoke test: the
// lint wall must exit nonzero on this tree. Deliberately wrong — do
// not fix. It imports the real mat package, so it also exercises the
// loader's module-internal import path.
package pool

import "avtmor/internal/mat"

// Leak borrows a pooled vector and hands it to the caller, stranding
// it outside the pool.
func Leak(n int) []float64 {
	w := mat.GetVec(n)
	w[0] = 1
	return w
}
