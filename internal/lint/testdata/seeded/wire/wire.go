// Package wire seeds a cappedread violation for the CI smoke test:
// the lint wall must exit nonzero on this tree. Deliberately wrong —
// do not fix. The directory is named wire so it lands in cappedread's
// wire-tier scope.
package wire

type reader struct{}

func (reader) u64() uint64 { return 1 << 60 }

// Read allocates whatever length the wire claims.
func Read(r reader) []byte {
	n := r.u64()
	return make([]byte, n)
}
