// Package locked seeds a lockedfield violation for the CI smoke test:
// the lint wall must exit nonzero on this tree. Deliberately wrong —
// do not fix.
package locked

import "sync"

type state struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Bump increments the counter without taking the lock.
func Bump(s *state) {
	s.n++
}
