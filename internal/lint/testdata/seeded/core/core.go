// Package core seeds a detrom violation for the CI smoke test: the
// lint wall must exit nonzero on this tree. Deliberately wrong — do
// not fix. The directory is named core so it lands in detrom's
// determinism-critical scope.
package core

// Sum folds map values in iteration order, which Go randomizes.
func Sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
