// Package flow seeds a ctxflow violation for the CI smoke test: the
// lint wall must exit nonzero on this tree. Deliberately wrong — do
// not fix.
package flow

import "context"

type fac struct{}

func (fac) Solve(rhs []float64) {}

func (fac) SolveCtx(ctx context.Context, rhs []float64) error { return nil }

// Drop holds a context but calls the context-free Solve anyway.
func Drop(ctx context.Context, f fac) {
	f.Solve(nil)
}
