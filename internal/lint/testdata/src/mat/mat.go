// Package mat is a fixture stand-in for avtmor/internal/mat: it
// mirrors the pooled-buffer API surface the wspool analyzer pairs up
// (GetVec/PutVec, GetCVec/PutCVec, Workspace.Get/Put) without pulling
// the real numerics package into analyzer fixtures.
package mat

// Workspace mimics the per-integration buffer arena.
type Workspace struct{}

// Get hands out a pooled real vector.
func (w *Workspace) Get(n int) []float64 { return make([]float64, n) }

// Put returns a vector obtained from Get.
func (w *Workspace) Put(buf []float64) {}

// GetVec hands out a pooled real vector.
func GetVec(n int) []float64 { return make([]float64, n) }

// PutVec returns a vector obtained from GetVec.
func PutVec(buf []float64) {}

// GetCVec hands out a pooled complex vector.
func GetCVec(n int) []complex128 { return make([]complex128, n) }

// PutCVec returns a vector obtained from GetCVec.
func PutCVec(buf []complex128) {}
