// Package a exercises the cappedread analyzer: allocation sizes that
// come straight off the wire must be bounds-checked (or clamped) first.
package a

type rd struct{}

func (rd) u64() uint64 { return 0 }

func (rd) u32() uint32 { return 0 }

// dim is a self-clamping helper in the style of the ROM codec: its
// result is already validated, so it does not taint.
func (rd) dim() int { return 0 }

func uncapped(r rd) []byte {
	n := r.u64()
	return make([]byte, n) // want "make sized by n, a raw decoded length"
}

func viaConv(r rd) []float64 {
	n := int(r.u32())
	out := make([]float64, n) // want "make sized by n, a raw decoded length"
	return out
}

func viaCopy(r rd) []byte {
	n := r.u64()
	m := n
	return make([]byte, m) // want "make sized by m, a raw decoded length"
}

func arith(r rd) []byte {
	n := r.u32()
	return make([]byte, int(n)*8) // want "make sized by n, a raw decoded length"
}

// guarded compares the decoded length against a bound before
// allocating: the sanctioned idiom.
func guarded(r rd, max uint64) []byte {
	n := r.u64()
	if n > max {
		return nil
	}
	return make([]byte, n)
}

// viaMin clamps through the min builtin, which also sanitizes.
func viaMin(r rd) []byte {
	n := r.u64()
	c := min(n, 1<<16)
	return make([]byte, c)
}

// validatedHelper sizes from a self-clamping decoder helper, not a raw
// integer read.
func validatedHelper(r rd) []int {
	n := r.dim()
	return make([]int, n)
}

// paramSized allocates from an ordinary parameter: not wire-tainted.
func paramSized(n int) []byte {
	return make([]byte, n)
}
