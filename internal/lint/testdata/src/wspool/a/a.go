// Package a exercises the wspool analyzer: pooled buffers from the
// mat arena must be returned on every path and must not outlive the
// function that borrowed them.
package a

import "mat"

func leaky(n int) error {
	w := mat.GetVec(n)
	if n > 3 {
		return nil // want "return without PutVec"
	}
	mat.PutVec(w)
	return nil
}

func escapes(n int) []float64 {
	w := mat.GetVec(n)
	defer mat.PutVec(w)
	return w // want "is returned"
}

type holder struct{ buf []float64 }

func fieldEscape(h *holder, n int) {
	b := mat.GetVec(n)
	h.buf = b // want "is stored in a field"
	mat.PutVec(b)
}

func implicitLeak(n int) {
	z := mat.GetCVec(n)
	z[0] = 1i
} // want "return without PutCVec"

// deferredPut is the sanctioned idiom: a deferred Put covers every
// return path, including ones added later.
func deferredPut(n int) error {
	w := mat.GetVec(n)
	defer mat.PutVec(w)
	if n > 3 {
		return nil
	}
	w[0] = 1
	return nil
}

// paired releases positionally before the (implicit) return.
func paired(n int) {
	w := mat.GetVec(n)
	w[0]++
	mat.PutVec(w)
}

// workspacePair pairs the method form Get/Put.
func workspacePair(ws *mat.Workspace, n int) {
	b := ws.Get(n)
	b[0] = 2
	ws.Put(b)
}

// valueElem copies a float64 element out of the buffer: a value copy
// is not an escape.
func valueElem(n int) float64 {
	w := mat.GetVec(n)
	v := w[0]
	mat.PutVec(w)
	return v
}

// sized may pass the buffer to len and cap without escaping it.
func sized(n int) int {
	w := mat.GetVec(n)
	c := len(w) + cap(w)
	mat.PutVec(w)
	return c
}
