// Package a exercises the lockedfield analyzer: fields annotated
// `guarded by <mu>` must be touched under that lock, or from a
// function whose doc declares the caller-holds convention.
package a

import (
	"sync"

	"foosync"
)

type pool struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	hits  int            // guarded by mu
	limit int
}

func (p *pool) get(k string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits++
	return p.items[k]
}

func (p *pool) bad(k string) int {
	return p.items[k] // want "items is guarded by mu but accessed without a preceding"
}

func (p *pool) bump() {
	p.hits++ // want "hits is guarded by mu but accessed without a preceding"
	p.mu.Lock()
	p.hits++
	p.mu.Unlock()
}

// flush drains the table. Caller holds p.mu.
func (p *pool) flush() {
	p.items = map[string]int{}
}

func (p *pool) size() int {
	n := p.limit // limit is immutable after construction: unannotated
	p.mu.Lock()
	defer p.mu.Unlock()
	return n + len(p.items)
}

type stats struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

// read may take the read lock: RLock satisfies the guard.
func (s *stats) read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

type broken struct {
	// guarded by lock
	data int // want "annotated .guarded by lock. but the struct has no field lock"
}

// decoy's mu is a foosync.Fake: it has a Lock method and its printed
// type name contains "sync.", but it is not a sync mutex, so calling
// it never satisfies the guard.
type decoy struct {
	mu    foosync.Fake
	count int // guarded by mu
}

func (d *decoy) bump() {
	d.mu.Lock()
	d.count++ // want "count is guarded by mu but accessed without a preceding"
	d.mu.Unlock()
}

// shared holds its mutex behind a pointer: still a sync mutex, still a
// valid guard.
type shared struct {
	mu *sync.Mutex
	n  int // guarded by mu
}

func (s *shared) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}
