// Package a exercises the ctxflow analyzer: inside a function that
// receives a context, calls must prefer a Ctx/Context-suffixed sibling
// when one exists.
package a

import "context"

type fac struct{}

func (fac) Solve(rhs []float64) {}

func (fac) SolveCtx(ctx context.Context, rhs []float64) error { return nil }

func (*fac) Reduce(n int) {}

func (*fac) ReduceContext(ctx context.Context, n int) {}

func run(x int) {}

func runContext(ctx context.Context, x int) {}

func noSibling(x int) {}

func drops(ctx context.Context, f fac) {
	f.Solve(nil) // want "call to Solve drops ctx: SolveCtx takes a context.Context"
	f.Reduce(1)  // want "call to Reduce drops ctx: ReduceContext takes a context.Context"
	run(1)       // want "call to run drops ctx: runContext takes a context.Context"
	noSibling(2) // no sibling: nothing to prefer
}

func forwards(ctx context.Context, f fac) {
	_ = f.SolveCtx(ctx, nil)
	f.ReduceContext(ctx, 1)
	runContext(ctx, 1)
}

// noCtx has no context parameter, so there is nothing to drop.
func noCtx(f fac) {
	f.Solve(nil)
	run(1)
}

// blankCtx cannot forward its context: the parameter is unnamed.
func blankCtx(_ context.Context, f fac) {
	f.Solve(nil)
	run(1)
}

// severs mints fresh roots instead of forwarding ctx: the callee gets
// a context, but not the caller's — cancellation is cut exactly as if
// ctx had been dropped.
func severs(ctx context.Context, f fac) {
	_ = f.SolveCtx(context.Background(), nil) // want "context.Background.. severs ctx"
	runContext(context.TODO(), 1)             // want "context.TODO.. severs ctx"
	runContext((context.Background()), 1)     // want "context.Background.. severs ctx"
}

// derived contexts keep the chain: only literal roots are flagged.
func derives(ctx context.Context, f fac) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = f.SolveCtx(c, nil)
	runContext(ctx, 1)
}

func detachJustified(ctx context.Context, f fac) {
	//avtmorlint:ignore ctxflow this solve outlives the request on purpose
	_ = f.SolveCtx(context.Background(), nil)
}

func justified(ctx context.Context, f fac) {
	//avtmorlint:ignore ctxflow this solve is a sub-microsecond 2x2 and the ctx plumbing would dominate it
	f.Solve(nil)
}

func badDirective(ctx context.Context, f fac) {
	//avtmorlint:ignore ctxflow
	f.Solve(nil) // want "call to Solve drops ctx: SolveCtx takes a context.Context"
}
