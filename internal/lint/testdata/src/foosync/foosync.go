// Package foosync is a decoy for the lockedfield fixture: its printed
// type name ("foosync.Fake") contains the substring "sync." and it has
// Lock/Unlock methods, but it is not a sync mutex and must not satisfy
// a `guarded by` annotation.
package foosync

type Fake struct{}

func (*Fake) Lock()   {}
func (*Fake) Unlock() {}
