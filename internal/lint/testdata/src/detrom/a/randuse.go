package a

import "math/rand" // want "import of \"math/rand\""

func roll() int { return rand.Intn(6) }
