// Package a exercises the detrom analyzer: determinism-critical code
// must not range over maps without sorting, read the wall clock, or
// import randomness.
package a

import (
	"slices"
	"sort"
	"time"
)

func mapRange(m map[string]int) int {
	s := 0
	for _, v := range m { // want "range over map"
		s += v
	}
	return s
}

// sortedKeys is the sanctioned collect-then-sort idiom: a key-only
// range whose sole statement appends to a slice that is sorted before
// use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsorted collects keys but never sorts them, so the collected order
// still leaks map iteration order.
func unsorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

// sortedSlices is the same idiom through the slices package.
func sortedSlices(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// reversed hands the keys to the slices package without sorting them:
// Reverse (like Contains or Search) imposes no order, so the collected
// slice still leaks map iteration order.
func reversed(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	slices.Reverse(keys)
	return keys
}

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now in a determinism-critical package"
}

func justified() time.Time {
	return time.Now() //avtmorlint:ignore detrom observability only; never feeds ROM bytes or cache keys
}
