package lint

import "testing"

// TestFixtures runs each analyzer over its fixture package under
// testdata/src and checks the findings against the fixtures'
// `// want "re"` expectations. Every fixture carries both positive
// cases and the sanctioned negative idioms (deferred Put,
// collect-then-sort map ranges, guarded wire reads, doc-declared
// caller-holds locking) that must stay unflagged.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkg      string
	}{
		{CtxFlow, "ctxflow/a"},
		{WsPool, "wspool/a"},
		{DetROM, "detrom/a"},
		{CappedRead, "cappedread/a"},
		{LockedField, "lockedfield/a"},
	}
	for _, c := range cases {
		t.Run(c.analyzer.Name, func(t *testing.T) {
			issues, err := RunFixture(".", c.analyzer, c.pkg)
			if err != nil {
				t.Fatal(err)
			}
			for _, issue := range issues {
				t.Error(issue)
			}
		})
	}
}

// TestAllAnalyzers pins the wall's composition: a new analyzer must be
// registered here (and in the scope table of cmd/avtmorlint) to ship.
func TestAllAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"ctxflow", "wspool", "detrom", "cappedread", "lockedfield"} {
		if !names[want] {
			t.Fatalf("analyzer %q missing from All()", want)
		}
	}
}
