package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockedField enforces `// guarded by <mu>` field annotations: a struct
// field carrying that comment (where <mu> names a sibling mutex field)
// may only be selected in a function that has already taken the lock.
// An access is considered locked when, earlier in the same function
// (source order), the same base expression calls <mu>.Lock or
// <mu>.RLock — `rd.mu.Lock()` before `rd.cache` — or when the
// function's doc comment declares the caller-holds convention with
// "holds <base>.<mu>" (the shape of Reducer.cacheAdd's "Caller holds
// rd.mu.").
//
// The check is positional: it does not see Unlock, branches, or locks
// taken by callers without the doc convention. That under-approximation
// is the point — it keeps every access either provably near its lock or
// explicitly documented.
var LockedField = &Analyzer{
	Name: "lockedfield",
	Doc:  "fields annotated `guarded by <mu>` are only accessed with that mutex held",
	Run:  runLockedField,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)
var holdsRE = regexp.MustCompile(`holds (?:(\w+)\.)?(\w+)`)

func runLockedField(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkLockedFunc(pass, fn, guards)
			}
		}
	}
	return nil
}

// collectGuards maps annotated field objects to the name of the mutex
// field guarding them.
func collectGuards(pass *Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(f.Pos(), "field is annotated `guarded by %s` but the struct has no field %s", mu, mu)
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.ObjectOf(name).(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockEvent is one point after which "<base>.<mu>" is considered held.
type lockEvent struct {
	key string // rendered "<base>.<mu>"
	pos token.Pos
}

func checkLockedFunc(pass *Pass, fn *ast.FuncDecl, guards map[*types.Var]string) {
	var locks []lockEvent
	// The caller-holds doc convention counts as a lock at body start.
	if fn.Doc != nil {
		for _, m := range holdsRE.FindAllStringSubmatch(fn.Doc.Text(), -1) {
			key := m[2]
			if m[1] != "" {
				key = m[1] + "." + m[2]
			}
			locks = append(locks, lockEvent{key: key, pos: fn.Body.Pos()})
		}
	}
	type access struct {
		sel *ast.SelectorExpr
		mu  string
	}
	var accesses []access
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if key, ok := lockCallKey(pass, sel); ok {
			locks = append(locks, lockEvent{key: key, pos: sel.Pos()})
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		if mu, guarded := guards[v]; guarded {
			accesses = append(accesses, access{sel: sel, mu: mu})
		}
		return true
	})
	for _, a := range accesses {
		base := exprString(a.sel.X)
		if base == "" {
			continue
		}
		want := base + "." + a.mu
		held := false
		for _, l := range locks {
			if l.pos < a.sel.Pos() && (l.key == want || l.key == a.mu) {
				held = true
				break
			}
		}
		if !held {
			pass.Reportf(a.sel.Pos(), "%s is guarded by %s but accessed without a preceding %s.Lock in this function (take the lock, or document the caller-holds convention with `holds %s` in the doc comment)",
				base+"."+a.sel.Sel.Name, a.mu, want, want)
		}
	}
}

// lockCallKey matches the selector of a <base>.<mu>.Lock / RLock call
// and returns the rendered "<base>.<mu>".
func lockCallKey(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
		return "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Only count mutex-typed receivers, so a field that happens to have
	// a Lock method does not satisfy a guard by name collision.
	if !isSyncMutex(pass.TypesInfo.Types[sel.X].Type) {
		return "", false
	}
	key := exprString(inner)
	if key == "" {
		return "", false
	}
	return key, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer), resolved by package path rather than printed name
// so a foosync.Fake with a Lock method cannot satisfy a guard. As with
// isPkgFunc, a fixture fake whose path ends in "/sync" stands in for
// the real package.
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return false
	}
	return obj.Pkg() != nil && pathMatches(obj.Pkg().Path(), "sync")
}
