package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetROM guards the bit-exactness contract: ROM bytes and cache keys
// must be pure functions of their inputs, so the packages that produce
// them (core, assoc, qldae, and the root package's romio/cache-key
// code — scoping is applied by the caller) may not consult iteration
// order, the clock, or a random source. Three patterns are flagged:
//
//   - `range` over a map, unless the loop only collects keys into a
//     slice that is sorted later in the same function (the sanctioned
//     collect-then-sort idiom);
//   - time.Now — wall-clock observability near the numerics is
//     legitimate but must carry an ignore directive stating that the
//     value stays outside ROM bytes and cache keys;
//   - importing math/rand or math/rand/v2 at all.
var DetROM = &Analyzer{
	Name: "detrom",
	Doc:  "no map iteration order, wall clock, or randomness in determinism-critical packages",
	Run:  runDetROM,
}

func runDetROM(pass *Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(), "import of %s in a determinism-critical package: ROM bytes and cache keys must not depend on randomness", imp.Path.Value)
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					checkMapRange(pass, fn, n)
				case *ast.CallExpr:
					if fn := calleeFunc(pass.TypesInfo, n); fn != nil && fn.Name() == "Now" &&
						fn.Pkg() != nil && fn.Pkg().Path() == "time" {
						pass.Reportf(n.Pos(), "time.Now in a determinism-critical package: keep the clock out of ROM bytes and cache keys (or justify with an ignore directive)")
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkMapRange flags a range over a map unless it is the key-collection
// half of the collect-then-sort idiom.
func checkMapRange(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if sortedKeyCollection(pass, fn, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "range over map is iteration-order dependent in a determinism-critical package: collect the keys and sort them first")
}

// sortedKeyCollection recognizes
//
//	for k := range m { keys = append(keys, k) }
//	...
//	sort.Xxx(keys) / slices.Sort(keys)
//
// the loop must do nothing but append the key to one slice, and that
// slice must flow into a sort call later in the same function.
func sortedKeyCollection(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	if rng.Value != nil || rng.Key == nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if id := calleeIdent(call); id == nil || id.Name != "append" {
		return false
	}
	dstObj := pass.TypesInfo.ObjectOf(dst)
	if dstObj == nil {
		return false
	}
	return sortedAfter(pass, fn, dstObj, rng.End())
}

// sortingFuncs is the closed set of calls that actually impose an
// order. Anything else from those packages (slices.Reverse,
// slices.Contains, sort.Search, ...) leaves the collected keys in map
// iteration order and must not sanction the range.
var sortingFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Ints": true, "Strings": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether obj is passed to a genuine sorting call
// (sortingFuncs) after pos within fn.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found || len(call.Args) == 0 {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if !sortingFuncs[callee.Pkg().Path()][callee.Name()] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}
