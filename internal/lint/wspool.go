package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WsPool enforces workspace-pool hygiene around internal/mat's pooled
// buffers: a slice obtained from mat.GetVec/mat.GetCVec (or a
// Workspace's Get method) and bound to a local variable must be
// released by the matching Put on every return path, and must not
// escape the function (returned, sent, stored in a field, global, or
// composite literal) — an escaped buffer aliases whatever the pool
// hands out next after the Put.
//
// The analysis is positional and intentionally under-approximating:
// a return path counts as covered when any matching Put (or a deferred
// one) appears between the Get and the return in source order, and only
// buffers bound via a simple assignment (`w := mat.GetVec(n)`) are
// tracked. Pool handoffs that move release into another function are
// real escapes to the analyzer and carry //avtmorlint:ignore directives
// explaining their ownership story.
var WsPool = &Analyzer{
	Name: "wspool",
	Doc:  "pooled mat workspace vectors must be Put on all return paths and must not escape",
	Run:  runWsPool,
}

// wsPairs maps Get entry points to their required Put, for both the
// package-level pool helpers and Workspace methods.
var wsPairs = map[string]string{
	"GetVec":  "PutVec",
	"GetCVec": "PutCVec",
	"Get":     "Put",
}

func runWsPool(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkWsFunc(pass, fn)
			}
		}
	}
	return nil
}

// tracked is one pooled buffer bound to a local variable.
type tracked struct {
	obj      *types.Var
	getName  string
	putName  string
	getPos   token.Pos
	reported bool
}

func checkWsFunc(pass *Pass, fn *ast.FuncDecl) {
	var (
		vars    []*tracked
		byObj   = map[*types.Var]*tracked{}
		puts    []wsPut
		returns []token.Pos
	)
	deferDepth := 0
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.DeferStmt); ok {
				deferDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are separate ownership domains: a Get inside one
			// is not tracked here, and a closure's returns are not the
			// enclosing function's return paths. Handoffs into closures
			// therefore read as unreleased — by design.
			return false
		case *ast.DeferStmt:
			deferDepth++
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				get := wsGetName(pass, rhs)
				if get == "" || i >= len(n.Lhs) || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
					t := &tracked{obj: v, getName: get, putName: wsPairs[get], getPos: rhs.Pos()}
					vars = append(vars, t)
					byObj[v] = t
				}
			}
		case *ast.CallExpr:
			if name, arg := wsPutCall(pass, n); name != "" {
				if v, ok := pass.TypesInfo.ObjectOf(arg).(*types.Var); ok {
					puts = append(puts, wsPut{obj: v, name: name, pos: n.Pos(), deferred: deferDepth > 0})
				}
			}
		case *ast.Ident:
			v, isVar := pass.TypesInfo.ObjectOf(n).(*types.Var)
			if !isVar {
				break
			}
			if t, ok := byObj[v]; ok && n.Pos() > t.getPos {
				if reason := escapeReason(pass, n, stack); reason != "" && !t.reported {
					t.reported = true
					pass.Reportf(n.Pos(), "%s (from %s) %s; the pooled buffer aliases later Get results", t.obj.Name(), t.getName, reason)
				}
			}
		}
		stack = append(stack, n)
		return true
	})

	// Implicit return when control can fall off the end of the body.
	if n := len(fn.Body.List); n == 0 || !terminates(fn.Body.List[n-1]) {
		returns = append(returns, fn.Body.End())
	}

	for _, t := range vars {
		checkReleased(pass, t, puts, returns)
	}
}

type wsPut struct {
	obj      *types.Var
	name     string
	pos      token.Pos
	deferred bool
}

// checkReleased verifies every return after the Get is preceded by a
// matching Put (source order), or that a deferred Put covers them all.
func checkReleased(pass *Pass, t *tracked, puts []wsPut, returns []token.Pos) {
	var putPos []token.Pos
	for _, p := range puts {
		if p.obj != t.obj || p.name != t.putName || p.pos <= t.getPos {
			continue
		}
		if p.deferred {
			return
		}
		putPos = append(putPos, p.pos)
	}
	for _, ret := range returns {
		if ret <= t.getPos {
			continue
		}
		covered := false
		for _, p := range putPos {
			if p < ret {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(ret, "return without %s(%s): buffer from %s at %s leaks from the pool on this path",
				t.putName, t.obj.Name(), t.getName, pass.Fset.Position(t.getPos))
		}
	}
}

// wsGetName returns the Get entry point a call expression invokes, or "".
func wsGetName(pass *Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	switch fn.Name() {
	case "GetVec", "GetCVec":
		if isPkgFunc(fn, "mat", fn.Name()) {
			return fn.Name()
		}
	case "Get":
		if isWorkspaceMethod(fn) {
			return "Get"
		}
	}
	return ""
}

// wsPutCall matches a Put call and returns its name and the released
// identifier.
func wsPutCall(pass *Pass, call *ast.CallExpr) (string, *ast.Ident) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || len(call.Args) == 0 {
		return "", nil
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return "", nil
	}
	switch fn.Name() {
	case "PutVec", "PutCVec":
		if isPkgFunc(fn, "mat", fn.Name()) {
			return fn.Name(), arg
		}
	case "Put":
		if isWorkspaceMethod(fn) {
			return "Put", arg
		}
	}
	return "", nil
}

func isWorkspaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), "mat") {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Workspace"
}

// escapeReason classifies a use of a tracked buffer given the node
// stack (outermost first). Size queries via len/cap never alias.
func escapeReason(pass *Pass, id *ast.Ident, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.CallExpr:
			if fn, ok := pass.TypesInfo.ObjectOf(calleeIdent(n)).(*types.Builtin); ok {
				if name := fn.Name(); name == "len" || name == "cap" {
					return ""
				}
			}
		case *ast.IndexExpr:
			// z[k] on a []float64 copies an element value — no alias
			// leaves the pool. Only keep looking when the indexed result
			// itself is a reference (e.g. a row of a [][]float64).
			if within(id, n.X) {
				if t := pass.TypesInfo.Types[n].Type; t != nil {
					if _, basic := t.Underlying().(*types.Basic); basic {
						return ""
					}
				}
			}
		case *ast.ReturnStmt:
			return "is returned"
		case *ast.SendStmt:
			if within(id, n.Value) {
				return "is sent on a channel"
			}
		case *ast.CompositeLit:
			return "is stored in a composite literal"
		case *ast.AssignStmt:
			if lhs := assignTarget(n, id); lhs != nil && !isLocalTarget(pass, lhs) {
				return "is stored in " + describeTarget(lhs)
			}
			return ""
		case *ast.FuncLit, *ast.BlockStmt:
			return ""
		}
	}
	return ""
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

func within(id *ast.Ident, e ast.Expr) bool {
	return e != nil && e.Pos() <= id.Pos() && id.End() <= e.End()
}

// assignTarget returns the LHS expression matching the RHS element that
// contains id, or nil when id is on the LHS itself.
func assignTarget(n *ast.AssignStmt, id *ast.Ident) ast.Expr {
	for i, rhs := range n.Rhs {
		if !within(id, rhs) {
			continue
		}
		if len(n.Lhs) == len(n.Rhs) {
			return n.Lhs[i]
		}
		return n.Lhs[0]
	}
	return nil
}

func isLocalTarget(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
}

// terminates reports whether control cannot flow past stmt (return or
// panic): used to decide if the function has an implicit return at the
// end of its body.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id := calleeIdent(call)
		return id != nil && id.Name == "panic"
	case *ast.ForStmt:
		return s.Cond == nil
	}
	return false
}

func describeTarget(e ast.Expr) string {
	switch ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return "a field"
	case *ast.IndexExpr:
		return "an indexed element"
	case *ast.StarExpr:
		return "a pointed-to location"
	}
	return "a package-level variable"
}
