// Package lint is avtmor's project-specific static-analysis suite: five
// analyzers that mechanically enforce invariants the design docs only
// promise — cancellation threading (ctxflow), workspace pool hygiene
// (wspool), bit-exact determinism (detrom), adversarial-length
// allocation caps (cappedread), and mutex-guarded field access
// (lockedfield). cmd/avtmorlint runs them as a multichecker beside the
// stock vet passes; CI blocks on the result.
//
// The analyzer surface deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, testdata/src fixtures with `// want`
// expectations) so the suite can migrate onto the upstream framework by
// swapping imports. It is reimplemented here on the standard library
// alone because the build must stay dependency-free: packages load
// through go/build + go/parser, typecheck through go/types with the
// source importer, and fixtures run under the analysistest-style driver
// in linttest.go.
//
// Findings are suppressed line by line with
//
//	//avtmorlint:ignore <name>[,<name>...] <reason>
//
// on the flagged line or the line above it. The reason is mandatory: a
// directive without one is inert and the finding stands, so every
// suppression in the tree documents why the invariant does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in findings, -disable flags, and
	// ignore directives.
	Name string
	// Doc states the invariant the analyzer enforces and the
	// under-approximations it accepts.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// A Pass hands one package's syntax and types to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is one post-filter diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies analyzers to pkg, drops diagnostics suppressed by
// //avtmorlint:ignore directives, and returns the survivors in file
// order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	supp := suppressions(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if supp.ignores(a.Name, pos) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, WsPool, DetROM, CappedRead, LockedField}
}

// exprString renders simple ident/selector chains ("rd", "s.pool.mu")
// for position-insensitive comparison; other expression shapes yield "".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return ""
}

// calleeFunc resolves the *types.Func a call invokes (package function
// or method), or nil for builtins, conversions, and indirect calls
// through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function name in a
// package whose import path is path or ends in "/"+path (so fixture
// fakes under testdata/src stand in for the real package).
func isPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return pathMatches(fn.Pkg().Path(), path)
}

func pathMatches(got, want string) bool {
	return got == want || len(got) > len(want)+1 && got[len(got)-len(want)-1] == '/' && got[len(got)-len(want):] == want
}
