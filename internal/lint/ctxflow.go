package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces cancellation threading: a function that receives a
// context.Context parameter must pass a context to any callee that
// offers a Ctx/Context sibling (FooCtx or FooContext with a leading
// context.Context parameter, on the same type for methods or in the
// same package for functions). This is the chain that keeps Reduce →
// core → assoc → ShiftedCache → spLU abortable; dropping the context at
// any hop silently turns cancellation into a no-op for everything
// below. Passing a freshly minted root — context.Background() or
// context.TODO() as a literal argument — severs the chain just the
// same, so it is flagged too; a deliberate detach (a singleflight
// that must outlive any one waiter, say) carries an ignore directive
// stating why.
//
// Only context parameters of the enclosing function trigger the check.
// Types that store a context in a field (assoc.Realization binds one at
// construction and polls it at loop tops by design) are out of scope:
// their methods hold no parameter to forward.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "a function holding a ctx parameter must use the Ctx/Context variant of its callees",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxName := contextParam(pass, fn)
			if ctxName == "" {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCtxCall(pass, call, ctxName)
				return true
			})
		}
	}
	return nil
}

// contextParam returns the name of fn's first usable context.Context
// parameter, or "" when fn has none (unnamed and blank parameters
// cannot be forwarded).
func contextParam(pass *Pass, fn *ast.FuncDecl) string {
	for _, field := range fn.Type.Params.List {
		if !isContextType(pass.TypesInfo.Types[field.Type].Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

func checkCtxCall(pass *Pass, call *ast.CallExpr, ctxName string) {
	for _, arg := range call.Args {
		if !isContextType(pass.TypesInfo.Types[arg].Type) {
			continue
		}
		// A context flows into the call — but a root minted in place
		// severs the caller's cancellation exactly like dropping ctx,
		// so Background/TODO literals do not satisfy the invariant.
		if root := freshRootContext(pass.TypesInfo, arg); root != "" {
			pass.Reportf(arg.Pos(), "%s severs %s: pass %s (or a context derived from it), or justify the detach with an ignore directive", root, ctxName, ctxName)
		}
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sibling := ctxSibling(fn)
	if sibling == "" {
		return
	}
	pass.Reportf(call.Pos(), "call to %s drops %s: %s takes a context.Context", fn.Name(), ctxName, sibling)
}

// freshRootContext matches a literal context.Background() / context.TODO()
// call and returns its rendered form, or "".
func freshRootContext(info *types.Info, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	for _, name := range []string{"Background", "TODO"} {
		if isPkgFunc(calleeFunc(info, call), "context", name) {
			return "context." + name + "()"
		}
	}
	return ""
}

// ctxSibling returns the name of fn's Ctx/Context variant (same method
// set for methods, same package scope for functions, first parameter a
// context.Context), or "".
func ctxSibling(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	for _, suffix := range []string{"Ctx", "Context"} {
		name := fn.Name() + suffix
		if recv := sig.Recv(); recv != nil {
			if method := lookupMethod(recv.Type(), name); takesLeadingContext(method) {
				return name
			}
		} else if fn.Pkg() != nil {
			obj, _ := fn.Pkg().Scope().Lookup(name).(*types.Func)
			if takesLeadingContext(obj) {
				return name
			}
		}
	}
	return ""
}

func lookupMethod(recv types.Type, name string) *types.Func {
	ms := types.NewMethodSet(recv)
	if _, isPtr := recv.(*types.Pointer); !isPtr && !types.IsInterface(recv) {
		ms = types.NewMethodSet(types.NewPointer(recv))
	}
	for i := 0; i < ms.Len(); i++ {
		if m := ms.At(i).Obj(); m.Name() == name {
			fn, _ := m.(*types.Func)
			return fn
		}
	}
	return nil
}

func takesLeadingContext(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
