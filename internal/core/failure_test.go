package core

import (
	"math/rand"
	"strings"
	"testing"

	"avtmor/internal/circuits"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
)

// Failure-injection coverage: the reduction must fail loudly and
// informatively on the singular/degenerate configurations a user can
// realistically hit.

func TestReduceSingularG1AtDC(t *testing.T) {
	// The exactly quadratic-linearized line has a singular G1; expanding
	// at DC must produce an actionable error, not garbage.
	w := circuits.NTLVoltage(6)
	_, err := Reduce(w.Sys, Options{K1: 2, K2: 1, S0: 0})
	if err == nil {
		t.Fatal("expected singular-shift error at s0 = 0")
	}
	if !strings.Contains(err.Error(), "singular") && !strings.Contains(err.Error(), "Sylvester") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// The documented workaround (non-DC expansion) must work.
	if _, err := Reduce(w.Sys, Options{K1: 2, K2: 1, S0: w.S0}); err != nil {
		t.Fatalf("non-DC expansion should succeed: %v", err)
	}
}

func TestReduceNORMSingularG1AtDC(t *testing.T) {
	w := circuits.NTLVoltage(6)
	if _, err := ReduceNORM(w.Sys, Options{K1: 2, K2: 1, S0: 0}); err == nil {
		t.Fatal("expected singular-shift error")
	}
	if _, err := ReduceNORM(w.Sys, Options{K1: 2, K2: 1, S0: w.S0}); err != nil {
		t.Fatalf("non-DC NORM should succeed: %v", err)
	}
}

func TestReduceInvalidSystem(t *testing.T) {
	bad := &qldae.System{N: 4, G1: mat.NewDense(3, 3)}
	if _, err := Reduce(bad, Options{K1: 1}); err == nil {
		t.Fatal("invalid system must be rejected")
	}
	if _, err := ReduceNORM(bad, Options{K1: 1}); err == nil {
		t.Fatal("invalid system must be rejected by NORM too")
	}
}

func TestReduceResonantShiftCollision(t *testing.T) {
	// Pick s0 exactly at an eigenvalue of G1: the H1 chain's shifted LU
	// is singular and must be reported.
	sys := &qldae.System{
		N:  2,
		G1: mat.Diag([]float64{-1, -2}),
		B:  mat.FromRows([][]float64{{1}, {1}}),
		L:  mat.FromRows([][]float64{{1, 0}}),
	}
	g2b := sparse.NewBuilder(2, 4)
	g2b.Add(0, 0, 0.1)
	sys.G2 = g2b.Build()
	if _, err := Reduce(sys, Options{K1: 2, K2: 1, S0: -1}); err == nil {
		t.Fatal("expected failure for s0 at an eigenvalue")
	}
}

func TestH3ErrorRejectsMIMO(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sys := testSystem(rng, 8, false)
	sys.B = mat.RandDense(rng, 8, 2)
	rom, err := Reduce(sys, Options{K1: 2, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rom.H3Error(0.1); err == nil {
		t.Fatal("H3Error on a MIMO system must error")
	}
}

func TestAllCandidatesDeflated(t *testing.T) {
	// A zero input column deflates everything: Reduce must report it
	// instead of returning an empty projection.
	sys := &qldae.System{
		N:  3,
		G1: mat.Diag([]float64{-1, -2, -3}),
		B:  mat.NewDense(3, 1), // zero input map
		L:  mat.FromRows([][]float64{{1, 0, 0}}),
	}
	if _, err := Reduce(sys, Options{K1: 2}); err == nil {
		t.Fatal("expected 'all candidates deflated' error")
	}
}
