package core

import (
	"testing"

	"avtmor/internal/circuits"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
)

// denseEqual reports bitwise equality of two dense matrices (nil-safe).
func densesEqual(a, b interface {
	Row(int) []float64
}, rows int) bool {
	for i := 0; i < rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		if len(ra) != len(rb) {
			return false
		}
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}

func csrEqual(a, b *sparse.CSR) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	return true
}

// sysBitEqual compares every matrix of two reduced systems bit for bit.
func sysBitEqual(t *testing.T, a, b *qldae.System) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("order differs: %d vs %d", a.N, b.N)
	}
	if !densesEqual(a.G1, b.G1, a.N) {
		t.Fatal("G1 differs between blocked and single-RHS reductions")
	}
	if !densesEqual(a.B, b.B, a.N) {
		t.Fatal("B differs")
	}
	if !densesEqual(a.L, b.L, a.L.R) {
		t.Fatal("L differs")
	}
	if !csrEqual(a.G2, b.G2) {
		t.Fatal("G2 differs")
	}
	if !csrEqual(a.G3, b.G3) {
		t.Fatal("G3 differs")
	}
	if len(a.D1) != len(b.D1) {
		t.Fatal("D1 count differs")
	}
	for i := range a.D1 {
		if (a.D1[i] == nil) != (b.D1[i] == nil) {
			t.Fatalf("D1[%d] presence differs", i)
		}
		if a.D1[i] != nil && !densesEqual(a.D1[i], b.D1[i], a.N) {
			t.Fatalf("D1[%d] differs", i)
		}
	}
}

// TestReduceBlockedBitExact asserts the acceptance contract of the
// block solve path: with batching on (BlockSize 0, the default) the ROM
// is bit-identical to the vector-granular single-RHS path (BlockSize
// 1), across nonlinear, multipoint, decoupled-H2, and large-sparse
// workloads, and the batch counters actually move when batching is on.
func TestReduceBlockedBitExact(t *testing.T) {
	cases := []struct {
		name string
		sys  *qldae.System
		opt  Options
	}{
		{"ntl-current-h123", circuits.NTLCurrent(30).Sys,
			Options{K1: 4, K2: 2, K3: 2, S0: circuits.NTLCurrent(30).S0}},
		{"rf-receiver-mimo", circuits.RFReceiver().Sys,
			Options{K1: 3, K2: 2, S0: circuits.RFReceiver().S0}},
		{"ntl-current-decoupled", circuits.NTLCurrent(24).Sys,
			Options{K1: 3, K2: 2, S0: circuits.NTLCurrent(24).S0, DecoupledH2: true}},
		{"rlc-multipoint-sparse", circuits.RLCLine(160).Sys,
			Options{K1: 5, ExtraPoints: []float64{0.4, 0.9}}},
		{"varistor-cubic", circuits.Varistor().Sys,
			Options{K1: 3, K2: 2, K3: 2, S0: circuits.Varistor().S0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blocked := tc.opt
			blocked.BlockSize = 0
			single := tc.opt
			single.BlockSize = 1
			rb, err := Reduce(tc.sys, blocked)
			if err != nil {
				t.Fatalf("blocked reduce: %v", err)
			}
			rs, err := Reduce(tc.sys, single)
			if err != nil {
				t.Fatalf("single-RHS reduce: %v", err)
			}
			sysBitEqual(t, rb.Sys, rs.Sys)
			if !densesEqual(rb.V, rs.V, rb.V.R) {
				t.Fatal("projection basis differs between blocked and single-RHS reductions")
			}
			if rb.Stats.BatchSolves == 0 {
				t.Fatal("blocked reduction recorded no batch solves")
			}
			if rb.Stats.BatchColumns < rb.Stats.BatchSolves {
				t.Fatalf("batch columns %d < batch solves %d", rb.Stats.BatchColumns, rb.Stats.BatchSolves)
			}
		})
	}
}

// TestReduceBlockedParallelBitExact is the same contract under the
// WithParallel fan-out (run with -race in CI): concurrent generators
// share the singleflight shifted cache and must still produce the
// bit-identical ROM.
func TestReduceBlockedParallelBitExact(t *testing.T) {
	w := circuits.NTLCurrent(30)
	base := Options{K1: 4, K2: 2, K3: 2, S0: w.S0}
	serial := base
	par := base
	par.Parallel = true
	r1, err := Reduce(w.Sys, serial)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Reduce(w.Sys, par)
	if err != nil {
		t.Fatal(err)
	}
	sysBitEqual(t, r1.Sys, r2.Sys)
	if r2.Stats.Factorizations != r1.Stats.Factorizations {
		t.Fatalf("parallel run paid %d factorizations, serial %d — singleflight failed",
			r2.Stats.Factorizations, r1.Stats.Factorizations)
	}
}
