package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/solver"
)

// ReduceNORM is the classical Krylov NMOR baseline (NORM, Li & Pileggi
// DAC'03/TCAD'05): it moment-matches the multivariate transfer functions
// H2(s1,s2) and H3(s1,s2,s3) about (s0, …, s0) directly. Because every
// combination of per-axis moment indices generates a subspace vector, the
// candidate count grows as O(k1 + k2³ + k3⁴) — the "dimensionality curse"
// the associated transform removes.
//
// The generator sets below follow the published NORM moment spaces:
//
//	H1:  M1^{−(a+1)}·b                                      a < k1
//	H2:  M2^{−(c+1)}·[G2(h_a⊗h_b) + G2(h_b⊗h_a)]            a+b+c < k2
//	     M2^{−(c+1)}·[D1ᵢ·h_a terms]                        a+c   < k2
//	H3:  M3^{−(e+1)}·[G2(h_a⊗w) + G2(w⊗h_a)], M3^{−(e+1)}·D1·w
//	                                             a+deg(w)+e < k3
//	     M3^{−(e+1)}·G3(h_a⊗h_b⊗h_c)                        a+b+c+e < k3
//
// with Mr = G1 − r·s0·I and w ranging over the H2 state-moment generators.
func ReduceNORM(sys *qldae.System, opt Options) (*ROM, error) {
	return ReduceNORMContext(context.Background(), sys, opt)
}

// ReduceNORMContext is ReduceNORM with cooperative cancellation: the
// multivariate generator loops poll ctx per moment chain, which is what
// bounds NORM's O(k2³)/O(k3⁴) blow-up when the caller gives up.
func ReduceNORMContext(ctx context.Context, sys *qldae.System, opt Options) (*ROM, error) {
	start := time.Now() //avtmorlint:ignore detrom wall-clock feeds Stats.Build only; the numerics and the cache key never read it

	allocs0 := heapAllocs()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if opt.K1 <= 0 && opt.K2 <= 0 && opt.K3 <= 0 {
		return nil, errors.New("core: at least one moment count must be positive")
	}
	n := sys.N
	m := sys.Inputs()
	// The r-fold shifted pencils G1 − r·s0·I share one solver-backed
	// cache, so the backend (dense vs sparse LU) follows opt.Solver just
	// as in the associated-transform path.
	sc := solver.NewShiftedCache(solver.Operand(sys.G1, sys.G1S), nil, solver.ByKind(opt.Solver))
	factor := func(r float64) (solver.Factorization, error) {
		f, err := sc.FactorCtx(ctx, -r*opt.S0)
		if err != nil {
			return nil, fmt.Errorf("core: NORM shift %g: %w", r*opt.S0, err)
		}
		// max(‖G1‖_max, |shift|) tracks the shifted pencil's scale.
		if scale := math.Max(sc.Scale(), math.Abs(r*opt.S0)); f.MinAbsPivot() < 1e-12*scale {
			return nil, fmt.Errorf("core: NORM shift %g is numerically singular (pivot ratio %.2g); expand at a non-DC point",
				r*opt.S0, f.MinAbsPivot()/scale)
		}
		return f, nil
	}
	m1, err := factor(1)
	if err != nil {
		return nil, err
	}
	// Coarse per-stage progress: NORM's generator loops are monolithic
	// (no per-point fan-out like the associated path), so one event per
	// Volterra stage is the honest granularity.
	momentStages := 1
	if opt.K2 > 0 && (sys.G2 != nil || sys.D1 != nil) {
		momentStages++
	}
	if opt.K3 > 0 && m == 1 {
		momentStages++
	}
	stagesDone := 0
	stageDone := func() {
		stagesDone++
		if opt.Progress != nil {
			opt.Progress(Progress{Stage: "moments", Done: stagesDone, Total: momentStages})
		}
	}
	var cols [][]float64

	// H1 chains h^i_a (kept unnormalized within a chain so the products
	// below carry consistent relative scale; each emitted candidate is
	// normalized by the final orthonormalization).
	kH1 := max(opt.K1, max(opt.K2, opt.K3))
	h := make([][][]float64, m)
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur := sys.B.Col(i)
		for a := 0; a < kH1; a++ {
			next := make([]float64, n)
			m1.Solve(next, cur)
			h[i] = append(h[i], next)
			cur = next
		}
	}
	for i := 0; i < m; i++ {
		for a := 0; a < opt.K1 && a < len(h[i]); a++ {
			cols = append(cols, mat.CopyVec(h[i][a]))
		}
	}
	stageDone()

	// H2 multivariate moments. w-pool entries remember their total degree
	// for reuse by the H3 stage.
	type degVec struct {
		deg int
		v   []float64
	}
	var wPool []degVec
	if opt.K2 > 0 && (sys.G2 != nil || sys.D1 != nil) {
		m2, err := factor(2)
		if err != nil {
			return nil, err
		}
		// NORM matches the moments of H2(s1,s2) with respect to EVERY
		// frequency axis independently: index bounds a < k2, b < k2,
		// c < k2 rather than a total-degree budget — this per-axis
		// product is precisely the O(k2³) growth of §4.
		kk := max(opt.K2, opt.K3)
		for i := 0; i < m; i++ {
			for j := i; j < m; j++ {
				for a := 0; a < kk; a++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					for b := 0; b < kk; b++ {
						if sys.G2 == nil {
							break
						}
						if i == j && b < a {
							continue // (a,b) and (b,a) coincide for one input
						}
						g := make([]float64, n)
						sys.G2.QuadApply(g, h[i][a], h[j][b])
						tmp := make([]float64, n)
						sys.G2.QuadApply(tmp, h[j][b], h[i][a])
						mat.Axpy(1, tmp, g)
						cur := g
						for c := 0; c < kk; c++ {
							next := make([]float64, n)
							m2.Solve(next, cur)
							deg := max(a, max(b, c))
							wPool = append(wPool, degVec{deg: deg, v: next})
							if a < opt.K2 && b < opt.K2 && c < opt.K2 {
								cols = append(cols, mat.CopyVec(next))
							}
							cur = next
						}
					}
					// D1 cross terms.
					if sys.D1 == nil {
						continue
					}
					d := make([]float64, n)
					any := false
					tmp := make([]float64, n)
					if sys.D1[i] != nil {
						sys.D1[i].MulVec(tmp, h[j][a])
						mat.Axpy(1, tmp, d)
						any = true
					}
					if sys.D1[j] != nil {
						sys.D1[j].MulVec(tmp, h[i][a])
						mat.Axpy(1, tmp, d)
						any = true
					}
					if !any {
						continue
					}
					cur := d
					for c := 0; c < kk; c++ {
						next := make([]float64, n)
						m2.Solve(next, cur)
						wPool = append(wPool, degVec{deg: max(a, c), v: next})
						if a < opt.K2 && c < opt.K2 {
							cols = append(cols, mat.CopyVec(next))
						}
						cur = next
					}
				}
			}
		}
		stageDone()
	}

	// H3 multivariate moments (SISO).
	if opt.K3 > 0 && m == 1 {
		m3, err := factor(3)
		if err != nil {
			return nil, err
		}
		if sys.G2 != nil || sys.D1 != nil {
			for _, w := range wPool {
				if w.deg >= opt.K3 {
					continue
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				for a := 0; a < opt.K3; a++ {
					g := make([]float64, n)
					if sys.G2 != nil {
						sys.G2.QuadApply(g, h[0][a], w.v)
						tmp := make([]float64, n)
						sys.G2.QuadApply(tmp, w.v, h[0][a])
						mat.Axpy(1, tmp, g)
					}
					if sys.D1 != nil && sys.D1[0] != nil && a == 0 {
						tmp := make([]float64, n)
						sys.D1[0].MulVec(tmp, w.v)
						mat.Axpy(1, tmp, g)
					}
					cur := g
					for e := 0; e < opt.K3; e++ {
						next := make([]float64, n)
						m3.Solve(next, cur)
						cols = append(cols, mat.CopyVec(next))
						cur = next
					}
				}
			}
		}
		if sys.G3 != nil {
			for a := 0; a < opt.K3; a++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				for b := a; b < opt.K3; b++ {
					for c := b; c < opt.K3; c++ {
						g := make([]float64, n)
						sys.G3.TriApply(g, h[0][a], h[0][b], h[0][c])
						cur := g
						for e := 0; e < opt.K3; e++ {
							next := make([]float64, n)
							m3.Solve(next, cur)
							cols = append(cols, mat.CopyVec(next))
							cur = next
						}
					}
				}
			}
		}
		stageDone()
	}
	// NORM as published performs no rank-revealing deflation — its ROM
	// order equals the generator count (the "ad hoc order choice" of §4).
	// Only numerically exact duplicates are dropped unless the caller set
	// an explicit tolerance.
	if opt.DropTol == 0 {
		opt.DropTol = 1e-14
	}
	rom, err := finish(ctx, sys, cols, opt, "norm", start)
	if err != nil {
		return nil, err
	}
	rom.fillSolverStats(sc.BackendName(), sc.Stats())
	rom.Stats.Allocs = heapAllocs() - allocs0
	return rom, nil
}
