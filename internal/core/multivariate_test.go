package core

import (
	"math/rand"
	"testing"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/volterra"
)

// multiH2OutErr evaluates the multivariate H2(s1,s2) of full model and ROM
// at a point and returns the relative output error.
func multiH2OutErr(t *testing.T, r *ROM, s1, s2 complex128) float64 {
	t.Helper()
	xf, err := volterra.H2(r.Full, 0, 0, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	xr, err := volterra.H2(r.Sys, 0, 0, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	return r.relOutErr(xf, xr)
}

// TestNORMMatchesMultivariateExactly pins down the theoretical contrast
// between the two methods: NORM's projection contains the multivariate
// H2 state moments, so its reduced H2(s1,s2) agrees to rounding accuracy
// near (s0,s0); the associated-transform ROM targets the single-s
// associated function instead and carries a small projection gap there.
func TestNORMMatchesMultivariateExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sys := testSystem(rng, 14, true)
	opt := Options{K1: 4, K2: 3}
	nm, err := ReduceNORM(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := complex(0.01, 0.008), complex(0.012, -0.006)
	if e := multiH2OutErr(t, nm, s1, s2); e > 1e-6 {
		t.Fatalf("NORM multivariate H2 near-error %g, want rounding level", e)
	}
	pr, err := Reduce(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	eNorm := multiH2OutErr(t, nm, s1, s2)
	eProp := multiH2OutErr(t, pr, s1, s2)
	if eProp > 0.5 {
		t.Fatalf("proposed multivariate H2 near-error %g out of expected band", eProp)
	}
	if eProp < eNorm {
		t.Fatalf("expected NORM (%g) to beat proposed (%g) on the multivariate metric it matches exactly", eNorm, eProp)
	}
	// On the associated metric the proposed ROM is accurate at a fraction
	// of the order.
	if eA, err := pr.H2Error(0, 0, complex(0.01, 0.008)); err != nil || eA > 2e-2 {
		t.Fatalf("proposed associated H2 error %g (%v)", eA, err)
	}
}

// TestAccuracyImprovesWithMoments verifies the convergence direction: more
// matched moments must shrink the associated-H2 near-field error.
func TestAccuracyImprovesWithMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sys := testSystem(rng, 20, true)
	lo, err := Reduce(sys, Options{K1: 2, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Reduce(sys, Options{K1: 6, K2: 4, K3: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := complex(0.05, 0.04)
	elo, err := lo.H2Error(0, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	ehi, err := hi.H2Error(0, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if ehi > elo {
		t.Fatalf("H2 error did not improve with moments: k-low %g vs k-high %g", elo, ehi)
	}
	e1lo, _ := lo.H1Error(0, complex(0.5, 0.3))
	e1hi, _ := hi.H1Error(0, complex(0.5, 0.3))
	if e1hi > e1lo {
		t.Fatalf("H1 mid-field error did not improve: %g vs %g", e1lo, e1hi)
	}
}

// TestProjectionBasisContainsKrylov sanity-checks that the first Krylov
// vector G1⁻¹b is reproduced by V·Vᵀ.
func TestProjectionBasisContainsKrylov(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	sys := testSystem(rng, 10, false)
	rom, err := Reduce(sys, Options{K1: 3, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := rom.V
	b := sys.B.Col(0)
	w, err := sparseSolve(sys.G1, b)
	if err != nil {
		t.Fatal(err)
	}
	coef := make([]float64, v.C)
	v.MulVecT(coef, w)
	rec := make([]float64, sys.N)
	v.MulVec(rec, coef)
	mat.Axpy(-1, w, rec)
	if mat.Norm2(rec) > 1e-8*mat.Norm2(w) {
		t.Fatalf("G1⁻¹b not in projection span: residual %g", mat.Norm2(rec))
	}
}

func sparseSolve(g *mat.Dense, b []float64) ([]float64, error) {
	return lu.Solve(g, b)
}
