// External test package so the backend-agreement measurement can be
// shared with the scale experiment (exper imports core, so an internal
// test would force a duplicated helper).
package core_test

import (
	"testing"

	"avtmor/internal/circuits"
	"avtmor/internal/core"
	"avtmor/internal/exper"
	"avtmor/internal/ode"
	"avtmor/internal/solver"
)

// TestScaleSparseMatchesDense1000 is the solver-spine acceptance check:
// on a ≥1000-state RLC transmission line, Reduce through the sparse LU
// must (a) produce a ROM whose transfer function matches the dense-LU
// ROM to ≤1e-10 relative, and (b) beat the dense path by a wide margin
// in wall-clock (the factor step drops from O(n³) to O(n) on the
// near-banded line).
func TestScaleSparseMatchesDense1000(t *testing.T) {
	if testing.Short() {
		t.Skip("dense 1023-state factorization path; skipped in -short")
	}
	cmp, err := exper.CompareBackends(512, 8) // n = 1023
	if err != nil {
		t.Fatal(err)
	}
	if cmp.N < 1000 {
		t.Fatalf("workload too small for the scale check: n = %d", cmp.N)
	}
	if cmp.Mismatch > 1e-10 {
		t.Errorf("sparse vs dense transfer mismatch %.3g > 1e-10", cmp.Mismatch)
	}
	// Wall-clock is reported, not tightly asserted: the ≥10× headline
	// ratio is recorded by BenchmarkSolver*/BENCH_solver.json, and CI
	// runners are too noisy for ratio thresholds. The one flake-proof
	// signal — the sparse path losing to dense outright — still fails.
	if cmp.DenseTime < cmp.SparseTime {
		t.Errorf("sparse path slower than dense: dense %v vs sparse %v", cmp.DenseTime, cmp.SparseTime)
	}
	t.Logf("n=%d: dense %v, sparse %v (%.1f×), mismatch %.3g",
		cmp.N, cmp.DenseTime, cmp.SparseTime, float64(cmp.DenseTime)/float64(cmp.SparseTime), cmp.Mismatch)
}

// TestScaleCSROnlyReduceAndSimulate covers the regime the dense path
// cannot represent: a CSR-only line (no dense G1 exists) is reduced
// through the sparse spine and the ROM transient tracks the full-order
// sparse-Newton reference.
func TestScaleCSROnlyReduceAndSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-state transient; skipped in -short")
	}
	w := circuits.RLCLine(2000) // n = 3999
	if w.Sys.G1 != nil {
		t.Fatal("expected a CSR-only system beyond the dense mirror limit")
	}
	rom, err := core.Reduce(w.Sys, core.Options{K1: 8, Parallel: true})
	if err != nil {
		t.Fatalf("CSR-only Reduce: %v", err)
	}
	x0 := make([]float64, w.Sys.N)
	full, err := ode.TrapezoidalSolver(w.Sys, x0, w.U, 10, 400, solver.Sparse{})
	if err != nil {
		t.Fatalf("full sparse transient: %v", err)
	}
	red, err := ode.Trapezoidal(rom.Sys, make([]float64, rom.Order()), w.U, 10, 400)
	if err != nil {
		t.Fatalf("ROM transient: %v", err)
	}
	if e := ode.MaxRelErr(full, red, 0); e > 1e-6 {
		t.Fatalf("ROM transient error %.3g too large", e)
	}
}

// TestParallelReduceMatchesSerial checks the Options.Parallel fan-out is
// a pure wall-clock change: identical candidate ordering, identical ROM.
func TestParallelReduceMatchesSerial(t *testing.T) {
	w := circuits.NTLCurrent(40)
	opt := core.Options{K1: 4, K2: 2, K3: 2, S0: w.S0, ExtraPoints: []float64{0.4, 0.9}}
	serial, err := core.Reduce(w.Sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = true
	par, err := core.Reduce(w.Sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Order() != par.Order() || serial.Stats.Candidates != par.Stats.Candidates {
		t.Fatalf("parallel changed the reduction: order %d/%d candidates %d/%d",
			serial.Order(), par.Order(), serial.Stats.Candidates, par.Stats.Candidates)
	}
	if !serial.V.Equalish(par.V, 1e-13) {
		t.Fatal("parallel fan-out produced a different projection basis")
	}
}
