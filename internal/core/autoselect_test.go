package core

import (
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
)

func TestSuggestOrdersShape(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	sys := testSystem(rng, 18, true)
	opt, err := SuggestOrders(sys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.K1 < 1 || opt.K1 > 18 {
		t.Fatalf("k1 = %d out of range", opt.K1)
	}
	if opt.K2 != (opt.K1+1)/2 || opt.K3 != (opt.K1+2)/3 {
		t.Fatalf("taper wrong: %+v", opt)
	}
}

func TestSuggestOrdersTolMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	sys := testSystem(rng, 20, false)
	loose, err := SuggestOrders(sys, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SuggestOrders(sys, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if tight.K1 < loose.K1 {
		t.Fatalf("tightening tol reduced k1: %d -> %d", loose.K1, tight.K1)
	}
}

func TestAutoReduceAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	sys := testSystem(rng, 22, true)
	rom, err := AutoReduce(sys, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if rom.Order() >= sys.N {
		t.Fatalf("no reduction: q = %d", rom.Order())
	}
	// The HSV cut at 1e-5 should give a ROM whose linear transfer is
	// accurate well beyond the expansion point.
	for _, s := range []complex128{0.05, 0.3i, 0.2 + 0.4i} {
		if e, err := rom.H1Error(0, s); err != nil || e > 1e-2 {
			t.Fatalf("H1 error %g at %v (%v)", e, s, err)
		}
	}
}

func TestSuggestOrdersCubicOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	sys := cubicSystem(rng, 12)
	opt, err := SuggestOrders(sys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.K2 != 0 {
		t.Fatalf("cubic system must not request H2 moments: %+v", opt)
	}
	if opt.K3 == 0 {
		t.Fatalf("cubic system should request H3 moments: %+v", opt)
	}
}

func TestSuggestOrdersZeroesForMIMOCubic(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	sys := cubicSystem(rng, 10)
	sys.B = mat.RandDense(rng, 10, 2)
	opt, err := SuggestOrders(sys, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.K3 != 0 {
		t.Fatalf("MIMO H3 not supported; k3 must be 0: %+v", opt)
	}
}

func TestSuggestOrdersRejectsInvalid(t *testing.T) {
	bad := &qldae.System{N: 3}
	if _, err := SuggestOrders(bad, 1e-4); err == nil {
		t.Fatal("invalid system must error")
	}
}
