package core

import (
	"errors"
	"fmt"

	"avtmor/internal/balance"
	"avtmor/internal/qldae"
)

// SuggestOrders implements the paper's §4 (first bullet) observation:
// because the associated transforms are ordinary single-s transfer
// functions, the moment counts can be chosen automatically from "the
// Hankel singular values or similar measure inherent to linear MOR"
// instead of NORM's ad hoc order choice.
//
// k1 is the number of Hankel singular values of the linear part
// (G1, B, L) above tol·σ_max; k2 and k3 taper as ⌈k1/2⌉ and ⌈k1/3⌉ — the
// ratio the paper's own experiments use (6/3/2). Orders for absent
// nonlinear terms are zeroed. Requires a strictly stable G1 (the Lyapunov
// equations of a marginally stable system are singular; quadratic-
// linearized models with neutral manifold directions should pick orders
// manually and expand off DC).
func SuggestOrders(sys *qldae.System, tol float64) (Options, error) {
	if err := sys.Validate(); err != nil {
		return Options{}, err
	}
	if tol <= 0 {
		tol = 1e-4
	}
	if sys.G1 == nil {
		return Options{}, errors.New("core: Hankel order selection needs a dense G1 (CSR-only system); pick moment counts manually")
	}
	hsv, err := balance.HSV(sys.G1, sys.B, sys.L)
	if err != nil {
		return Options{}, fmt.Errorf("core: Hankel singular values: %w", err)
	}
	k1 := balance.SuggestOrder(hsv, tol)
	opt := Options{K1: k1}
	if sys.G2 != nil || sys.D1 != nil {
		opt.K2 = (k1 + 1) / 2
	}
	if (sys.G2 != nil || sys.G3 != nil) && sys.Inputs() == 1 {
		opt.K3 = (k1 + 2) / 3
	}
	return opt, nil
}

// AutoReduce composes SuggestOrders and Reduce.
func AutoReduce(sys *qldae.System, tol float64) (*ROM, error) {
	opt, err := SuggestOrders(sys, tol)
	if err != nil {
		return nil, err
	}
	return Reduce(sys, opt)
}
