// Package core exposes the nonlinear model order reduction entry points:
//
//   - Reduce — the paper's associated-transform NMOR: one single-s Krylov
//     subspace per Volterra order (H1, A2(H2), A3(H3)), projection size
//     O(k1+k2+k3).
//   - ReduceNORM — the classical NORM baseline (Li & Pileggi), which
//     moment-matches the multivariate H2(s1,s2), H3(s1,s2,s3) directly and
//     grows as O(k1 + k2³ + k3⁴).
//
// Both return a Galerkin-projected QLDAE that package ode simulates
// directly, plus the projection basis and bookkeeping for the experiment
// harness.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"avtmor/internal/assoc"
	"avtmor/internal/kron"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/qr"
	"avtmor/internal/solver"
)

// Options selects moment counts and the expansion point.
type Options struct {
	// K1, K2, K3 are the matched moment counts of H1(s), A2(H2)(s),
	// A3(H3)(s) (or their multivariate counterparts for NORM). Zero skips
	// the order.
	K1, K2, K3 int
	// S0 is the (real) expansion frequency; 0 gives DC moment matching
	// (paper §2.3: more accurate for low-pass responses at the cost of
	// one LU of G1).
	S0 float64
	// ExtraPoints adds further expansion frequencies: H1 and H2 moments
	// are generated about S0 and every extra point (multipoint moment
	// matching, §4 bullet 3 — "particularly straightforward with this
	// associated transform approach" since every Hn(s) is single-s).
	// H3 moments are generated about S0 only.
	ExtraPoints []float64
	// DropTol is the deflation tolerance of the rank-revealing
	// orthonormalization; 0 selects 1e-8.
	DropTol float64
	// DecoupledH2 selects the Eq.-(18) Sylvester-decoupled H2 moment
	// generation (two independent Krylov chains after solving
	// G1·Π + G2 = Π·⊕²G1) instead of the default block-triangular
	// realization path. Results are span-equivalent; the paths differ in
	// cost profile (see BenchmarkAblationDecoupledH2).
	DecoupledH2 bool
	// Solver selects the linear-solver backend for every shift-invert
	// factorization: auto (dense below the routing cutoff, sparse LU for
	// large sparse G1), or forced dense/sparse. Auto is what makes
	// ≥10³-state circuits reduce in O(nnz·fill) instead of O(n³).
	Solver solver.Kind
	// Parallel fans the independent moment generators out over
	// goroutines: one per expansion point (H1+H2 about S0 and every
	// ExtraPoints entry) plus one per Volterra-3 branch, with concurrent
	// execution clamped to runtime.GOMAXPROCS(0) so the fan-out never
	// oversubscribes the host. Candidate ordering — and therefore the
	// ROM — is identical to the serial path; only wall-clock changes.
	Parallel bool
	// BlockSize caps how many right-hand sides the moment generators
	// group into one SolveBatch call: 0 (the default) batches every
	// column that shares a shifted factorization, 1 forces the
	// vector-granular legacy path, k > 1 caps blocks at k columns.
	// SolveBatch is arithmetic-identical per column to looped Solve, so
	// the ROM is bit-exact for every setting — only memory locality and
	// allocation behavior move (see Stats.BatchSolves/Allocs).
	BlockSize int
	// Progress, when non-nil, receives coarse build events: one per
	// completed moment-generator task plus the orthonormalize/project
	// tail. With Parallel it may be called from multiple goroutines
	// concurrently, and events may be observed out of order (each Done
	// value is delivered exactly once, but a consumer should take the
	// max, not assume monotone arrival).
	Progress func(Progress)
}

// Progress is one build event for Options.Progress.
type Progress struct {
	// Stage is "moments", "orthonormalize", or "project".
	Stage string
	// Done/Total count completed vs scheduled units within the stage.
	Done, Total int
}

func (o Options) dropTol() float64 {
	if o.DropTol > 0 {
		return o.DropTol
	}
	return 1e-8
}

// ROM is a reduced-order model together with its projection data.
type ROM struct {
	V    *mat.Dense    // n×q orthonormal projection basis
	Sys  *qldae.System // the reduced QLDAE
	Full *qldae.System // the original system
	// Method is "assoc" or "norm".
	Method string
	Stats  Stats

	cache *evalPair // lazily built verification realizations
}

// Stats records reduction bookkeeping for the experiment tables.
type Stats struct {
	// Candidates is the number of moment/Krylov vectors generated before
	// deflation; Order is the final ROM dimension q.
	Candidates int
	Order      int
	// Build is the wall-clock time of subspace construction + projection
	// (the "Arnoldi" row of Table 1).
	Build time.Duration
	// Backend names the linear-solver backend that actually factored
	// the shifted pencils ("dense" or "sparse"; the Auto policy is
	// resolved to its per-operand routing decision).
	Backend string
	// Factorizations counts the shifted-pencil factor steps actually
	// paid; SolveCacheHits counts the factor requests answered by
	// solver.ShiftedCache instead — the paper's "LU of G1 for once"
	// amortization made observable.
	Factorizations int64
	SolveCacheHits int64
	// BatchSolves counts the SolveBatch calls issued against the cached
	// shifted factorizations and BatchColumns the right-hand-side
	// columns they carried; BatchColumns/BatchSolves is the realized
	// multi-RHS width of the block solve path.
	BatchSolves  int64
	BatchColumns int64
	// SymbolicAnalyses counts the sparse factor steps that paid the full
	// symbolic analysis (pattern DFS, RCM, CSC conversion) and
	// NumericRefactors those served numeric-only from the pencil's cached
	// symbolic object — the per-pattern amortization of the
	// symbolic/numeric split made observable. Dense-routed builds report
	// zero for both.
	SymbolicAnalyses int64
	NumericRefactors int64
	// Allocs is the approximate heap-allocation count of the build
	// (process-wide /gc/heap/allocs:objects delta, so concurrent
	// activity in the same process inflates it): the zero-allocation
	// workspace discipline of the chain iterations made observable.
	Allocs uint64
}

// heapAllocs reads the process's cumulative heap allocation count via
// runtime/metrics (cheap — no stop-the-world).
func heapAllocs() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return sample[0].Value.Uint64()
	}
	return 0
}

// Order returns the reduced dimension q.
func (r *ROM) Order() int { return r.Sys.N }

// Reduce runs the proposed associated-transform NMOR. All shift-invert
// factorizations route through the backend named by opt.Solver and are
// cached per expansion point inside the shared realization; with
// opt.Parallel the per-point and per-order generators run concurrently
// (they are independent Krylov chains — §2.3's "can be computed in
// parallel" remark) while the candidate ordering stays deterministic.
func Reduce(sys *qldae.System, opt Options) (*ROM, error) {
	return ReduceContext(context.Background(), sys, opt)
}

// ReduceContext is Reduce with cooperative cancellation: ctx is
// threaded through every moment chain, Arnoldi step, and shifted
// factorization (including the sparse-LU column loop), so a canceled
// reduction returns within one Krylov step's worth of work.
func ReduceContext(ctx context.Context, sys *qldae.System, opt Options) (*ROM, error) {
	start := time.Now() //avtmorlint:ignore detrom wall-clock feeds Stats.Build only; the numerics and the cache key never read it

	allocs0 := heapAllocs()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if opt.K1 <= 0 && opt.K2 <= 0 && opt.K3 <= 0 {
		return nil, errors.New("core: at least one moment count must be positive")
	}
	r, err := assoc.NewWithSolverCtx(ctx, sys, solver.ByKind(opt.Solver))
	if err != nil {
		return nil, err
	}
	r.SetBlockSize(opt.BlockSize)
	points := append([]float64{opt.S0}, opt.ExtraPoints...)
	// Independent generator tasks, gathered in deterministic order.
	type genOut struct {
		cols [][]float64
		err  error
	}
	wantH2 := sys.G2 != nil || sys.D1 != nil
	wantH3 := wantH2 && opt.K3 > 0 && sys.Inputs() == 1
	wantH3Cubic := sys.G3 != nil && opt.K3 > 0 && sys.Inputs() == 1
	slots := make([]genOut, 2*len(points)+2)
	scheduled := len(points)
	if wantH2 {
		scheduled += len(points)
	}
	if wantH3 {
		scheduled++
	}
	if wantH3Cubic {
		scheduled++
	}
	var completed atomic.Int64
	taskDone := func() {
		done := completed.Add(1)
		if opt.Progress != nil {
			opt.Progress(Progress{Stage: "moments", Done: int(done), Total: scheduled})
		}
	}
	var wg sync.WaitGroup
	failed := false // serial mode short-circuits after the first error
	// Parallel fan-out is clamped to the scheduler's actual parallelism:
	// unbounded goroutine-per-task was measurably slower than serial on a
	// single-CPU host (oversubscribed Krylov chains thrash the shifted
	// cache's memory instead of overlapping compute). Results land in
	// their per-task slots and are gathered by index, so the clamp —
	// like the fan-out itself — cannot reorder candidates or change the
	// ROM.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	run := func(slot int, f func() ([][]float64, error)) {
		if !opt.Parallel {
			if failed || ctx.Err() != nil {
				return
			}
			slots[slot].cols, slots[slot].err = f()
			failed = slots[slot].err != nil
			taskDone()
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			slots[slot].cols, slots[slot].err = f()
			taskDone()
		}()
	}
	for i, s0 := range points {
		i, s0 := i, s0
		run(2*i, func() ([][]float64, error) {
			h1, err := r.H1Moments(opt.K1, s0)
			if err != nil {
				return nil, fmt.Errorf("core: H1 moments at s0=%g: %w", s0, err)
			}
			return h1, nil
		})
		if !wantH2 {
			continue
		}
		run(2*i+1, func() ([][]float64, error) {
			var h2 [][]float64
			var err error
			if opt.DecoupledH2 {
				h2, err = r.H2CandidatesDecoupled(opt.K2, s0)
			} else {
				h2, err = r.H2Candidates(opt.K2, s0)
			}
			if err != nil {
				return nil, fmt.Errorf("core: H2 candidates at s0=%g: %w", s0, err)
			}
			return h2, nil
		})
	}
	if wantH3 {
		run(2*len(points), func() ([][]float64, error) {
			h3, err := r.H3Moments(opt.K3, opt.S0)
			if err != nil {
				return nil, fmt.Errorf("core: H3 moments: %w", err)
			}
			return h3, nil
		})
	}
	if wantH3Cubic {
		run(2*len(points)+1, func() ([][]float64, error) {
			if sys.G1 == nil {
				return nil, errors.New("core: cubic H3 moments need a dense G1")
			}
			s3, err := kron.NewSumSolver3(sys.G1)
			if err != nil {
				return nil, err
			}
			h3c, err := r.H3MomentsCubic(s3, opt.K3, opt.S0)
			if err != nil {
				return nil, fmt.Errorf("core: cubic H3 moments: %w", err)
			}
			return h3c, nil
		})
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cols [][]float64
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		cols = append(cols, s.cols...)
	}
	rom, err := finish(ctx, sys, cols, opt, "assoc", start)
	if err != nil {
		return nil, err
	}
	rom.fillSolverStats(r.SolverBackend(), r.SolverStats())
	rom.Stats.Allocs = heapAllocs() - allocs0
	return rom, nil
}

// fillSolverStats copies the shifted-cache observability counters into
// the ROM's stats. backend is the backend that actually factored the
// pencil (Auto resolved), not the requested policy.
func (r *ROM) fillSolverStats(backend string, cs solver.CacheStats) {
	r.Stats.Backend = backend
	r.Stats.Factorizations = cs.Factorizations
	r.Stats.SolveCacheHits = cs.Hits
	r.Stats.BatchSolves = cs.BatchSolves
	r.Stats.BatchColumns = cs.BatchColumns
	r.Stats.SymbolicAnalyses = cs.SymbolicAnalyses
	r.Stats.NumericRefactors = cs.NumericRefactors
}

// finish orthonormalizes the candidate set and projects. ctx is
// polled around the orthonormalize/projection tail so a canceled
// reduction reports cancellation deterministically instead of
// completing (and, via the Reducer, being cached) by accident.
func finish(ctx context.Context, sys *qldae.System, cols [][]float64, opt Options, method string, start time.Time) (*ROM, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Progress != nil {
		opt.Progress(Progress{Stage: "orthonormalize", Done: 0, Total: 1})
	}
	v := qr.Orthonormalize(cols, opt.dropTol())
	if v == nil {
		return nil, errors.New("core: all candidate vectors deflated; nothing to project onto")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rom := &ROM{
		V:      v,
		Sys:    sys.Project(v),
		Full:   sys,
		Method: method,
	}
	rom.Stats = Stats{
		Candidates: len(cols),
		Order:      v.C,
		Build:      time.Since(start),
	}
	if opt.Progress != nil {
		opt.Progress(Progress{Stage: "project", Done: 1, Total: 1})
	}
	return rom, nil
}
