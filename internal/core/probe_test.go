package core

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/volterra"
)

func TestProbeMultivariateConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	rng := rand.New(rand.NewSource(42))
	sys := testSystem(rng, 14, true)
	s1, s2 := complex(0.01, 0.008), complex(0.012, -0.006)
	for _, k := range [][3]int{{2, 1, 0}, {4, 3, 0}, {4, 3, 2}, {6, 4, 3}, {8, 6, 4}, {10, 8, 5}} {
		rom, err := Reduce(sys, Options{K1: k[0], K2: k[1], K3: k[2]})
		if err != nil {
			t.Fatal(err)
		}
		xf, _ := volterra.H2(rom.Full, 0, 0, s1, s2)
		xr, _ := volterra.H2(rom.Sys, 0, 0, s1, s2)
		yf := mat.CDot(mat.ToComplex(sys.L.Row(0)), xf)
		lr := make([]complex128, rom.Sys.N)
		for i := range lr {
			lr[i] = complex(rom.Sys.L.At(0, i), 0)
		}
		yr := mat.CDot(lr, xr)
		a2, _ := rom.H2Error(0, 0, complex(0.02, 0.015))
		t.Logf("k=%v q=%d multiH2relerr=%.3g assocH2err=%.3g yf=%.4g", k, rom.Order(), cmplx.Abs(yf-yr)/cmplx.Abs(yf), a2, cmplx.Abs(yf))
	}
}
