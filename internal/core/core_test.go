package core

import (
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/qr"
	"avtmor/internal/sparse"
)

// testSystem builds a small random stable SISO QLDAE.
func testSystem(rng *rand.Rand, n int, withD1 bool) *qldae.System {
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 3*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.3*(2*rng.Float64()-1))
	}
	s := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G2: g2b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	if withD1 {
		s.D1 = []*mat.Dense{mat.RandDense(rng, n, n).Scale(0.2)}
	}
	return s
}

func cubicSystem(rng *rand.Rand, n int) *qldae.System {
	g3b := sparse.NewBuilder(n, n*n*n)
	for i := 0; i < 3*n; i++ {
		g3b.Add(rng.Intn(n), rng.Intn(n*n*n), 0.2*(2*rng.Float64()-1))
	}
	return &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G3: g3b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
}

func TestReduceBasicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys := testSystem(rng, 12, true)
	rom, err := Reduce(sys, Options{K1: 3, K2: 2, K3: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rom.Order() > 6 {
		t.Fatalf("associated-transform ROM order %d exceeds k1+k2+k3", rom.Order())
	}
	if rom.Order() < 3 {
		t.Fatalf("ROM order %d suspiciously small", rom.Order())
	}
	if qr.OrthoError(rom.V) > 1e-10 {
		t.Fatal("projection basis not orthonormal")
	}
	if err := rom.Sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if rom.Method != "assoc" || rom.Stats.Order != rom.Order() {
		t.Fatalf("bookkeeping wrong: %+v", rom.Stats)
	}
}

// checkTransferMatch verifies the accuracy structure of the ROM near the
// expansion point. H1 moments are matched exactly (pure linear Krylov), so
// the H1 error must be at rounding level. The associated H2/H3 transfer
// functions are matched through the Galerkin projection of the quadratic
// term, whose n²-space chain is only reproduced through V⊗V — a small,
// k-dependent gap remains (the paper's own transient errors, Figs. 2–4,
// sit at the same ~1e-2..1e-3 level).
func checkTransferMatch(t *testing.T, rom *ROM, withH3 bool) {
	t.Helper()
	near := complex(0.02, 0.015)
	if e, err := rom.H1Error(0, near); err != nil || e > 1e-6 {
		t.Fatalf("H1 near-match error %g (%v)", e, err)
	}
	if e, err := rom.H2Error(0, 0, near); err != nil || e > 2e-2 {
		t.Fatalf("H2 near-match error %g (%v)", e, err)
	}
	if withH3 {
		if e, err := rom.H3Error(near); err != nil || e > 5e-2 {
			t.Fatalf("H3 near-match error %g (%v)", e, err)
		}
	}
	far := complex(3.0, 2.0)
	if e, err := rom.H1Error(0, far); err != nil {
		t.Fatal(err)
	} else if e > 1.5 {
		t.Fatalf("H1 far error %g out of control", e)
	}
}

func TestReduceMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys := testSystem(rng, 14, true)
	rom, err := Reduce(sys, Options{K1: 5, K2: 3, K3: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkTransferMatch(t, rom, true)
}

func TestReduceNoD1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := testSystem(rng, 12, false)
	rom, err := Reduce(sys, Options{K1: 4, K2: 2, K3: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkTransferMatch(t, rom, true)
}

func TestReduceNORMMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sys := testSystem(rng, 14, true)
	rom, err := ReduceNORM(sys, Options{K1: 5, K2: 3, K3: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rom.Method != "norm" {
		t.Fatal("method label wrong")
	}
	checkTransferMatch(t, rom, true)
}

func TestSubspaceGrowthContrast(t *testing.T) {
	// The headline claim: at equal moment counts the proposed ROM is much
	// smaller — O(k1+k2+k3) vs O(k1+k2³+k3⁴).
	rng := rand.New(rand.NewSource(5))
	sys := testSystem(rng, 30, true)
	opt := Options{K1: 4, K2: 3, K3: 2}
	a, err := Reduce(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := ReduceNORM(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Order() > opt.K1+opt.K2+opt.K3 {
		t.Fatalf("proposed ROM order %d > k1+k2+k3", a.Order())
	}
	if nm.Order() < 2*a.Order() {
		t.Fatalf("NORM order %d not substantially larger than proposed %d", nm.Order(), a.Order())
	}
	if nm.Stats.Candidates <= a.Stats.Candidates {
		t.Fatal("NORM candidate count should exceed proposed")
	}
}

func TestReduceCubic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sys := cubicSystem(rng, 10)
	rom, err := Reduce(sys, Options{K1: 4, K3: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rom.Order() > 6 {
		t.Fatalf("cubic ROM order %d", rom.Order())
	}
	near := complex(0.02, 0.01)
	if e, err := rom.H1Error(0, near); err != nil || e > 1e-6 {
		t.Fatalf("cubic H1 near error %g (%v)", e, err)
	}
	if e, err := rom.H3Error(near); err != nil || e > 5e-2 {
		t.Fatalf("cubic H3 near error %g (%v)", e, err)
	}
}

func TestReduceNORMCubic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sys := cubicSystem(rng, 10)
	rom, err := ReduceNORM(sys, Options{K1: 4, K3: 2})
	if err != nil {
		t.Fatal(err)
	}
	near := complex(0.02, 0.01)
	if e, err := rom.H3Error(near); err != nil || e > 5e-2 {
		t.Fatalf("NORM cubic H3 near error %g (%v)", e, err)
	}
}

func TestReduceMISO(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 16
	sys := testSystem(rng, n, false)
	sys.B = mat.RandDense(rng, n, 2)
	rom, err := Reduce(sys, Options{K1: 3, K2: 2})
	if err != nil {
		t.Fatal(err)
	}
	near := complex(0.02, 0.01)
	for i := 0; i < 2; i++ {
		if e, err := rom.H1Error(i, near); err != nil || e > 1e-6 {
			t.Fatalf("MISO H1 input %d error %g (%v)", i, e, err)
		}
		for j := i; j < 2; j++ {
			if e, err := rom.H2Error(i, j, near); err != nil || e > 2e-2 {
				t.Fatalf("MISO H2 pair (%d,%d) error %g (%v)", i, j, e, err)
			}
		}
	}
}

func TestReduceRejectsEmptyOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sys := testSystem(rng, 6, false)
	if _, err := Reduce(sys, Options{}); err == nil {
		t.Fatal("expected error for zero moment counts")
	}
	if _, err := ReduceNORM(sys, Options{}); err == nil {
		t.Fatal("expected error for zero moment counts")
	}
}

func TestReduceNonzeroExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sys := testSystem(rng, 12, true)
	s0 := -0.4
	rom, err := Reduce(sys, Options{K1: 4, K2: 2, K3: 1, S0: s0})
	if err != nil {
		t.Fatal(err)
	}
	near := complex(s0+0.02, 0.01)
	if e, err := rom.H1Error(0, near); err != nil || e > 1e-6 {
		t.Fatalf("H1 near s0 error %g (%v)", e, err)
	}
	if e, err := rom.H2Error(0, 0, near); err != nil || e > 2e-2 {
		t.Fatalf("H2 near s0 error %g (%v)", e, err)
	}
}
