package core

import (
	"math/rand"
	"testing"
)

// TestMultipointMatchesBothPoints verifies §4 bullet 3: with expansion
// points {0, 1} the ROM must be accurate near BOTH points, where a
// single-point ROM of the same total moment budget degrades away from its
// expansion point.
func TestMultipointMatchesBothPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sys := testSystem(rng, 24, true)
	multi, err := Reduce(sys, Options{K1: 3, K2: 1, ExtraPoints: []float64{1.0}})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Reduce(sys, Options{K1: 6, K2: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Both ROMs spend a comparable moment budget.
	if multi.Order() > single.Order()+3 {
		t.Fatalf("multipoint order %d vs single %d: budgets not comparable",
			multi.Order(), single.Order())
	}
	// Near s = 0 both must be excellent.
	if e, err := multi.H1Error(0, 0.01); err != nil || e > 1e-6 {
		t.Fatalf("multipoint near 0: %g (%v)", e, err)
	}
	// Near s = 1 the multipoint ROM matches to Krylov accuracy.
	e1, err := multi.H1Error(0, 1.01)
	if err != nil {
		t.Fatal(err)
	}
	if e1 > 1e-6 {
		t.Fatalf("multipoint near its second point: %g", e1)
	}
	// H2 coverage at the second point: the associated H2 moments about
	// s0=1 are in the span, so the error there must be small.
	e2, err := multi.H2Error(0, 0, 1.02)
	if err != nil {
		t.Fatal(err)
	}
	if e2 > 5e-2 {
		t.Fatalf("multipoint H2 near second point: %g", e2)
	}
}

// TestMultipointOrdersAdditive checks the candidate accounting: p points
// at (k1, k2) generate p·(k1·m + k2·pairs) candidates.
func TestMultipointOrdersAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	sys := testSystem(rng, 20, false)
	rom, err := Reduce(sys, Options{K1: 2, K2: 1, ExtraPoints: []float64{0.5, 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * (2 + 1) // 3 points × (2 H1 + 1 H2)
	if rom.Stats.Candidates != want {
		t.Fatalf("candidates = %d, want %d", rom.Stats.Candidates, want)
	}
}

// TestMultipointDegenerate confirms a repeated expansion point deflates
// instead of inflating the ROM.
func TestMultipointDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	sys := testSystem(rng, 15, false)
	a, err := Reduce(sys, Options{K1: 3, K2: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reduce(sys, Options{K1: 3, K2: 1, ExtraPoints: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Order() != a.Order() {
		t.Fatalf("duplicate point changed order: %d vs %d", b.Order(), a.Order())
	}
}
