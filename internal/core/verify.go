package core

import (
	"errors"

	"avtmor/internal/assoc"
	"avtmor/internal/kron"
	"avtmor/internal/mat"
)

// Verification helpers: evaluate the output-side transfer functions
// L·H1(s), L·A2(H2)(s), L·A3(H3)(s) of the full model and the ROM at a
// frequency s and report the relative deviation. Near the expansion point
// the deviation decays like |s−s0|^k for k matched moments; away from it
// the curves quantify ROM fidelity (this is how EXPERIMENTS.md tabulates
// "paper vs measured" accuracy).

type evalPair struct {
	full *assoc.Realization
	red  *assoc.Realization
	s3f  *kron.SumSolver3
	s3r  *kron.SumSolver3
}

func (r *ROM) pair() (*evalPair, error) {
	if r.cache != nil {
		return r.cache, nil
	}
	full, err := assoc.New(r.Full)
	if err != nil {
		return nil, err
	}
	red, err := assoc.New(r.Sys)
	if err != nil {
		return nil, err
	}
	p := &evalPair{full: full, red: red}
	if r.Full.G3 != nil {
		if p.s3f, err = kron.NewSumSolver3(r.Full.G1); err != nil {
			return nil, err
		}
		if p.s3r, err = kron.NewSumSolver3(r.Sys.G1); err != nil {
			return nil, err
		}
	}
	r.cache = p
	return p, nil
}

// relOutErr maps two state-space vectors through the respective output
// maps and returns the relative output difference.
func (r *ROM) relOutErr(xf, xr []complex128) float64 {
	lf := r.Full.L.Complex()
	lr := r.Sys.L.Complex()
	yf := make([]complex128, lf.R)
	yr := make([]complex128, lr.R)
	lf.MulVec(yf, xf)
	lr.MulVec(yr, xr)
	den := mat.CNorm2(yf)
	if den == 0 {
		return mat.CNorm2(yr)
	}
	d := make([]complex128, len(yf))
	for i := range d {
		d[i] = yf[i] - yr[i]
	}
	return mat.CNorm2(d) / den
}

// H1Error returns the relative output error of H1 at s (input column in).
func (r *ROM) H1Error(in int, s complex128) (float64, error) {
	p, err := r.pair()
	if err != nil {
		return 0, err
	}
	xf, err := p.full.EvalH1(in, s)
	if err != nil {
		return 0, err
	}
	xr, err := p.red.EvalH1(in, s)
	if err != nil {
		return 0, err
	}
	return r.relOutErr(xf, xr), nil
}

// H2Error returns the relative output error of A2(H2) for input pair
// (i, j) at s.
func (r *ROM) H2Error(i, j int, s complex128) (float64, error) {
	p, err := r.pair()
	if err != nil {
		return 0, err
	}
	xf, err := p.full.EvalAssocH2(i, j, s)
	if err != nil {
		return 0, err
	}
	xr, err := p.red.EvalAssocH2(i, j, s)
	if err != nil {
		return 0, err
	}
	return r.relOutErr(xf, xr), nil
}

// H3Error returns the relative output error of A3(H3) at s (SISO systems;
// uses the quadratic or the cubic branch automatically).
func (r *ROM) H3Error(s complex128) (float64, error) {
	if r.Full.Inputs() != 1 {
		return 0, errors.New("core: H3Error is SISO only")
	}
	p, err := r.pair()
	if err != nil {
		return 0, err
	}
	var xf, xr []complex128
	if r.Full.G3 != nil {
		xf, err = p.full.EvalAssocH3Cubic(p.s3f, s)
		if err != nil {
			return 0, err
		}
		xr, err = p.red.EvalAssocH3Cubic(p.s3r, s)
		if err != nil {
			return 0, err
		}
	} else {
		xf, err = p.full.EvalAssocH3(s)
		if err != nil {
			return 0, err
		}
		xr, err = p.red.EvalAssocH3(s)
		if err != nil {
			return 0, err
		}
	}
	return r.relOutErr(xf, xr), nil
}
