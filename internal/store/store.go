// Package store persists ROM artifacts on disk, content-addressed by
// the Reducer cache key (system fingerprint + canonical reduction
// options): each ROM lives in one file named by the SHA-256 digest of
// its key, in the bit-exact wire format of avtmor.ROM.WriteTo. The
// store is the durable second tier behind the in-memory Reducer cache —
// reduce once, serve the artifact across restarts and processes.
//
// Invariants:
//
//   - Writes are atomic: a ROM is serialized to a hidden temp file in
//     the store directory, fsynced, and renamed into place. Readers
//     (including concurrent processes sharing the directory) only ever
//     see complete files.
//   - Corruption is quarantined, never served: a file that fails
//     ReadFrom validation — at open-time scan or on a later load — is
//     moved into the quarantine/ subdirectory for post-mortem and
//     dropped from the index, so the daemon self-heals by re-reducing.
//   - The in-memory index is rebuilt by scanning the directory on
//     Open; no sidecar manifest exists that could go stale. The scan
//     deserializes every artifact, so Open costs O(total store bytes)
//     — the price of guaranteeing that everything indexed is servable
//     before the daemon starts accepting traffic.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"avtmor"
)

const (
	romExt        = ".rom"
	orphanExt     = ".orphan"
	tmpPrefix     = ".tmp-"
	quarantineDir = "quarantine"
)

// DigestLen is the length of a content address: hex SHA-256.
const DigestLen = 2 * sha256.Size

// Store is a content-addressed on-disk ROM store. It implements
// avtmor.ROMStore and is safe for concurrent use.
type Store struct {
	dir string

	mu          sync.Mutex
	index       map[string]bool // guarded by mu; digest → present
	orphans     map[string]bool // guarded by mu; digest → stored here but owned elsewhere
	quarantined int64
	loads, hits int64
	rawOpens    int64
}

// Stats is a snapshot of the store's population and lifetime counters.
type Stats struct {
	// ROMs is the current indexed artifact count.
	ROMs int
	// Quarantined counts files moved aside as corrupt (scan + load).
	Quarantined int64
	// Loads counts Load/Get calls; Hits the ones that returned a ROM.
	Loads, Hits int64
	// RawOpens counts OpenRaw calls that handed out a file for
	// zero-copy serving — artifact bytes that left the store without a
	// single parse.
	RawOpens int64
	// Orphans is the current count of artifacts marked as stored here
	// but owned elsewhere on the cluster ring, awaiting anti-entropy
	// handoff.
	Orphans int
}

// Digest returns the content address of a cache key: the hex SHA-256
// of the canonical key string. It is the artifact's file stem on disk
// and the ROM id in the serve package's URLs.
func Digest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// ValidDigest reports whether d is a well-formed content address:
// exactly DigestLen lowercase hex digits.
func ValidDigest(d string) bool {
	if len(d) != DigestLen {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Open creates dir if needed and rebuilds the index by scanning it:
// leftover temp files from a crashed writer are removed, files that
// are not well-formed ROMs (bad name, bad magic, truncation, failed
// validation) are quarantined, everything else is indexed and
// servable.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, index: map[string]bool{}, orphans: map[string]bool{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// The scan builds local maps and installs them under the lock at
	// the end: the store is not published yet, but keeping every
	// guarded-field access locked lets the invariant stay checkable.
	index := map[string]bool{}
	orphans := map[string]bool{}
	var markers []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasSuffix(name, orphanExt) {
			markers = append(markers, strings.TrimSuffix(name, orphanExt))
			continue
		}
		if !strings.HasSuffix(name, romExt) {
			continue
		}
		digest := strings.TrimSuffix(name, romExt)
		if !ValidDigest(digest) || s.validate(filepath.Join(dir, name)) != nil {
			s.quarantine(name)
			continue
		}
		index[digest] = true
	}
	// Orphan markers survive restarts, but a marker whose artifact is
	// gone (handed off, quarantined) is stale — remove it.
	for _, d := range markers {
		if ValidDigest(d) && index[d] {
			orphans[d] = true
		} else {
			os.Remove(filepath.Join(dir, d+orphanExt))
		}
	}
	s.mu.Lock()
	s.index = index
	s.orphans = orphans
	s.mu.Unlock()
	return s, nil
}

// validate reads the file as a ROM, returning any deserialization
// error.
func (s *Store) validate(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = avtmor.ReadROM(bufio.NewReader(f))
	return err
}

// quarantine moves a store file aside so it is never served again. A
// failed move (or a name collision in quarantine/) falls back to
// leaving the file unindexed — the effect on serving is the same.
func (s *Store) quarantine(name string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name))
	}
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the indexed artifact count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys returns the sorted digests of every indexed artifact.
func (s *Store) Keys() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.index))
	for d := range s.index {
		out = append(out, d)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Has reports whether an artifact with the given content address is
// servable, without deserializing it: an index hit answers
// immediately, and an unindexed digest falls back to a filesystem
// stat so artifacts dropped in by a sibling process after Open are
// still visible. It is the cheap local-presence probe the serve
// tier's cluster routing uses to decide whether a by-address request
// needs forwarding at all.
func (s *Store) Has(digest string) bool {
	if !ValidDigest(digest) {
		return false
	}
	s.mu.Lock()
	present := s.index[digest]
	s.mu.Unlock()
	if present {
		return true
	}
	if _, err := os.Stat(filepath.Join(s.dir, digest+romExt)); err != nil {
		return false
	}
	// Seen on disk but not indexed: a sibling wrote it. Do not index it
	// here — Get validates before indexing, Has must stay O(stat).
	return true
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{ROMs: len(s.index), Quarantined: s.quarantined, Loads: s.loads, Hits: s.hits, RawOpens: s.rawOpens, Orphans: len(s.orphans)}
}

// OpenRaw returns the stored artifact's open file and its FileInfo
// (size, mtime) for zero-copy serving — http.ServeContent can hand the
// file straight to the socket (sendfile-eligible) without the
// parse + re-serialize round trip of Get. A miss, an invalid digest,
// or a file that fails the magic sniff reports fs.ErrNotExist; the
// caller owns closing the returned file.
//
// Only the 8-byte magic header is sniffed (then the offset is rewound
// to 0): the scan at Open validated every indexed artifact in full,
// writes are atomic, and Get quarantines on any later load failure, so
// the sniff's job is catching a file truncated or zeroed behind the
// store's back — which it also quarantines — not re-proving
// wire-format integrity on every request. Deeper post-scan corruption
// is caught by the client-side parse of the served bytes.
func (s *Store) OpenRaw(digest string) (*os.File, os.FileInfo, error) {
	s.mu.Lock()
	s.rawOpens++
	s.mu.Unlock()
	if !ValidDigest(digest) {
		return nil, nil, fs.ErrNotExist
	}
	name := digest + romExt
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			s.drop(digest)
			return nil, nil, fs.ErrNotExist
		}
		return nil, nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || !avtmor.SniffROM(magic[:]) {
		f.Close()
		s.drop(digest)
		s.quarantine(name)
		return nil, nil, fs.ErrNotExist
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	s.mu.Lock()
	s.index[digest] = true
	s.mu.Unlock()
	return f, fi, nil
}

// Load returns the ROM stored under the cache key, or (nil, nil) on a
// miss. It implements avtmor.ROMStore.
func (s *Store) Load(key string) (*avtmor.ROM, error) {
	return s.Get(Digest(key))
}

// Get returns the ROM with the given content address, or (nil, nil)
// when absent. A file that exists but fails deserialization is
// quarantined and reported as a miss. Addresses not in the index are
// still tried against the filesystem, so artifacts dropped in by a
// sibling process after Open are picked up.
func (s *Store) Get(digest string) (*avtmor.ROM, error) {
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	if !ValidDigest(digest) {
		return nil, nil
	}
	name := digest + romExt
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			s.drop(digest)
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	rom, err := avtmor.ReadROM(bufio.NewReader(f))
	if err != nil {
		s.drop(digest)
		s.quarantine(name)
		return nil, nil
	}
	s.mu.Lock()
	s.index[digest] = true
	s.hits++
	s.mu.Unlock()
	return rom, nil
}

func (s *Store) drop(digest string) {
	s.mu.Lock()
	delete(s.index, digest)
	orphan := s.orphans[digest]
	delete(s.orphans, digest)
	s.mu.Unlock()
	if orphan {
		os.Remove(filepath.Join(s.dir, digest+orphanExt))
	}
}

// Store persists rom under the cache key with an atomic tmp+rename
// write; an artifact already present under the same address is left
// untouched (same key, same bytes). It implements avtmor.ROMStore.
func (s *Store) Store(key string, rom *avtmor.ROM) error {
	digest := Digest(key)
	s.mu.Lock()
	present := s.index[digest]
	s.mu.Unlock()
	if present {
		return nil
	}
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	_, err = rom.WriteTo(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(s.dir, digest+romExt))
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	s.mu.Lock()
	s.index[digest] = true
	s.mu.Unlock()
	return nil
}

// PutRaw persists an already-serialized artifact under its content
// address — the replication write path, where a replica receives the
// primary's bytes instead of recomputing the reduction. The bytes are
// fully deserialized first, so a corrupt or malicious push can never
// be indexed, and the write is the same atomic tmp+rename as Store.
// An artifact already present is left untouched (content addressing:
// same address, same bytes). The digest is the sender's claim about
// the cache key, which this node cannot recompute from the bytes; it
// is validated in form here and in substance when a client checks the
// X-Avtmor-Rom-Key header against its own canonical key.
func (s *Store) PutRaw(digest string, raw []byte) error {
	if !ValidDigest(digest) {
		return fs.ErrInvalid
	}
	if _, err := avtmor.ReadROM(bufio.NewReader(bytes.NewReader(raw))); err != nil {
		return err
	}
	s.mu.Lock()
	present := s.index[digest]
	s.mu.Unlock()
	if present {
		return nil
	}
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(raw)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(s.dir, digest+romExt))
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	s.mu.Lock()
	s.index[digest] = true
	s.mu.Unlock()
	return nil
}

// Remove deletes the artifact with the given content address (and any
// orphan marker) from disk and the index. Removing an absent artifact
// is a no-op.
func (s *Store) Remove(digest string) error {
	if !ValidDigest(digest) {
		return fs.ErrInvalid
	}
	err := os.Remove(filepath.Join(s.dir, digest+romExt))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	s.drop(digest)
	return nil
}

// MarkOrphan tags a stored artifact as owned elsewhere on the cluster
// ring: this node computed it as an owner-down fallback and keeps it
// only until the anti-entropy sweep hands it to the real owners. The
// marker is a sidecar file, so the tag survives restarts.
func (s *Store) MarkOrphan(digest string) error {
	if !ValidDigest(digest) {
		return fs.ErrInvalid
	}
	s.mu.Lock()
	already := s.orphans[digest]
	s.orphans[digest] = true
	s.mu.Unlock()
	if already {
		return nil
	}
	f, err := os.Create(filepath.Join(s.dir, digest+orphanExt))
	if err != nil {
		s.mu.Lock()
		delete(s.orphans, digest)
		s.mu.Unlock()
		return err
	}
	return f.Close()
}

// ClearOrphan removes the orphan tag: the artifact is rightfully this
// node's (placement changed, or it became an owner).
func (s *Store) ClearOrphan(digest string) {
	s.mu.Lock()
	present := s.orphans[digest]
	delete(s.orphans, digest)
	s.mu.Unlock()
	if present {
		os.Remove(filepath.Join(s.dir, digest+orphanExt))
	}
}

// Orphans returns the sorted content addresses currently tagged as
// orphaned.
func (s *Store) Orphans() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.orphans))
	for d := range s.orphans {
		out = append(out, d)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// RawBytes returns the stored artifact's bytes, or fs.ErrNotExist —
// the replication read side of PutRaw, used when pushing a copy to a
// peer.
func (s *Store) RawBytes(digest string) ([]byte, error) {
	if !ValidDigest(digest) {
		return nil, fs.ErrNotExist
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, digest+romExt))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fs.ErrNotExist
		}
		return nil, err
	}
	return raw, nil
}
