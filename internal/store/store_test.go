package store_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"avtmor"
	"avtmor/internal/store"
)

func testROM(t testing.TB) (*avtmor.ROM, string) {
	t.Helper()
	w := avtmor.NTLCurrent(20)
	opts := []avtmor.Option{avtmor.WithOrders(3, 1, 0), avtmor.WithExpansion(w.S0)}
	rom, err := avtmor.Reduce(context.Background(), w.System, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rom, avtmor.RequestKey(w.System, opts...)
}

func romBytes(t testing.TB, rom *avtmor.ROM) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := rom.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestStoreRoundTrip: Store then Load returns a bit-identical artifact,
// addressed both by key and by digest.
func TestStoreRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rom, key := testROM(t)
	if got, err := s.Load(key); err != nil || got != nil {
		t.Fatalf("empty store Load = %v, %v; want miss", got, err)
	}
	if err := s.Store(key, rom); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := s.Load(key)
	if err != nil || got == nil {
		t.Fatalf("Load after Store = %v, %v", got, err)
	}
	if !bytes.Equal(romBytes(t, got), romBytes(t, rom)) {
		t.Fatal("store round trip is not bit-exact")
	}
	byAddr, err := s.Get(store.Digest(key))
	if err != nil || byAddr == nil {
		t.Fatalf("Get by digest = %v, %v", byAddr, err)
	}
	// Re-storing the same key is a no-op, not an error.
	if err := s.Store(key, rom); err != nil || s.Len() != 1 {
		t.Fatalf("idempotent Store: %v, len %d", err, s.Len())
	}
	st := s.Stats()
	if st.ROMs != 1 || st.Loads != 3 || st.Hits != 2 || st.Quarantined != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestStoreReopenScan: a fresh Open on the same directory rebuilds the
// index from the files alone, and leftover temp files are swept.
func TestStoreReopenScan(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rom, key := testROM(t)
	if err := s.Store(key, rom); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d ROMs, want 1", s2.Len())
	}
	got, err := s2.Load(key)
	if err != nil || got == nil {
		t.Fatalf("Load after reopen = %v, %v", got, err)
	}
	if !bytes.Equal(romBytes(t, got), romBytes(t, rom)) {
		t.Fatal("reopened artifact differs")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("crashed temp file survived the scan")
	}
}

// TestStoreQuarantine: corrupt files — wrong name, garbage content,
// truncation — are moved aside at scan time and on load, and are never
// served.
func TestStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	rom, key := testROM(t)
	valid := romBytes(t, rom)
	digest := store.Digest(key)

	garbage := store.Digest("garbage")
	if err := os.WriteFile(filepath.Join(dir, garbage+".rom"), []byte("not a rom at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	truncated := store.Digest("truncated")
	if err := os.WriteFile(filepath.Join(dir, truncated+".rom"), valid[:len(valid)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "not-a-digest.rom"), valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, digest+".rom"), valid, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("indexed %d ROMs, want only the valid one", s.Len())
	}
	if got := s.Keys(); len(got) != 1 || got[0] != digest {
		t.Fatalf("keys %v", got)
	}
	if st := s.Stats(); st.Quarantined != 3 {
		t.Fatalf("quarantined %d files, want 3", st.Quarantined)
	}
	for _, d := range []string{garbage, truncated} {
		if got, err := s.Get(d); err != nil || got != nil {
			t.Fatalf("quarantined artifact %s was served: %v, %v", d, got, err)
		}
		if _, err := os.Stat(filepath.Join(dir, "quarantine", d+".rom")); err != nil {
			t.Fatalf("quarantine file for %s: %v", d, err)
		}
	}

	// Corruption that lands after Open (e.g. disk fault) is caught at
	// load time: quarantined, reported as a miss, index self-heals.
	if err := os.WriteFile(filepath.Join(dir, digest+".rom"), valid[:16], 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Load(key); err != nil || got != nil {
		t.Fatalf("post-Open corruption served: %v, %v", got, err)
	}
	if s.Len() != 0 {
		t.Fatalf("corrupt entry still indexed (len %d)", s.Len())
	}
	if st := s.Stats(); st.Quarantined != 4 {
		t.Fatalf("quarantined %d, want 4", st.Quarantined)
	}
}

// TestStoreSidecarPickup: an artifact written into the directory by a
// sibling process after Open is found on Get despite not being in the
// scan-time index.
func TestStoreSidecarPickup(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rom, key := testROM(t)
	sibling, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := sibling.Store(key, rom); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(key)
	if err != nil || got == nil {
		t.Fatalf("sibling-written artifact not found: %v, %v", got, err)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after pickup", s.Len())
	}
}

// TestStoreHas: Has is a cheap presence probe — index hit, stat-level
// sibling pickup, and no index pollution for merely stat'ed files.
func TestStoreHas(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rom, key := testROM(t)
	digest := store.Digest(key)
	if s.Has(digest) {
		t.Fatal("empty store claims presence")
	}
	if s.Has("not-a-digest") {
		t.Fatal("malformed digest claims presence")
	}
	if err := s.Store(key, rom); err != nil {
		t.Fatal(err)
	}
	if !s.Has(digest) {
		t.Fatal("stored artifact not visible to Has")
	}
	// Sibling-written artifact: visible via stat without being indexed
	// (Get still validates before indexing).
	sibling, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rom2, key2 := func() (*avtmor.ROM, string) {
		w := avtmor.NTLCurrent(20)
		opts := []avtmor.Option{avtmor.WithOrders(2, 1, 0), avtmor.WithExpansion(w.S0)}
		r, err := avtmor.Reduce(context.Background(), w.System, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return r, avtmor.RequestKey(w.System, opts...)
	}()
	if err := sibling.Store(key2, rom2); err != nil {
		t.Fatal(err)
	}
	d2 := store.Digest(key2)
	if !s.Has(d2) {
		t.Fatal("sibling-written artifact invisible to Has")
	}
	if s.Len() != 1 {
		t.Fatalf("Has indexed a merely stat'ed file: len %d", s.Len())
	}
	// The sibling file was never indexed by s, so deleting it makes
	// Has's stat fallback answer false immediately. (An *indexed*
	// digest would keep answering true until a Get heals the index —
	// the index hit short-circuits the stat by design.)
	os.Remove(filepath.Join(dir, d2+".rom"))
	if s.Has(d2) {
		t.Fatal("unindexed deleted artifact claims presence")
	}
}

// TestStoreOpenRaw: the zero-copy accessor hands out the exact stored
// bytes with size/mtime and no parse, misses report fs.ErrNotExist,
// and a file corrupted behind the store's back is quarantined at the
// magic sniff instead of being served raw.
func TestStoreOpenRaw(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rom, key := testROM(t)
	digest := store.Digest(key)

	if _, _, err := s.OpenRaw(digest); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty-store OpenRaw err = %v, want fs.ErrNotExist", err)
	}
	if _, _, err := s.OpenRaw("not-a-digest"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("invalid-digest OpenRaw err = %v, want fs.ErrNotExist", err)
	}
	if err := s.Store(key, rom); err != nil {
		t.Fatal(err)
	}
	want := romBytes(t, rom)

	loadsBefore := s.Stats().Loads
	f, fi, err := s.OpenRaw(digest)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if fi.Size() != int64(len(want)) {
		t.Fatalf("FileInfo size %d, want %d", fi.Size(), len(want))
	}
	if fi.ModTime().IsZero() {
		t.Fatal("FileInfo carries no mtime")
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("OpenRaw bytes differ from the serialized artifact")
	}
	// Zero-copy means zero parses: the Loads counter must not move,
	// while RawOpens records the raw serve.
	st := s.Stats()
	if st.Loads != loadsBefore {
		t.Fatalf("OpenRaw bumped Loads (%d -> %d)", loadsBefore, st.Loads)
	}
	if st.RawOpens == 0 {
		t.Fatal("RawOpens not counted")
	}

	// A sibling-written artifact (on disk, not in this index) is served
	// raw too, like Has/Get pick it up.
	sibling, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2 := avtmor.NTLCurrent(20)
	opts2 := []avtmor.Option{avtmor.WithOrders(2, 1, 0), avtmor.WithExpansion(w2.S0)}
	rom2, err := avtmor.Reduce(context.Background(), w2.System, opts2...)
	if err != nil {
		t.Fatal(err)
	}
	key2 := avtmor.RequestKey(w2.System, opts2...)
	if err := sibling.Store(key2, rom2); err != nil {
		t.Fatal(err)
	}
	f2, _, err := s.OpenRaw(store.Digest(key2))
	if err != nil {
		t.Fatalf("sibling artifact invisible to OpenRaw: %v", err)
	}
	f2.Close()

	// Corrupt the stored file's magic: OpenRaw must refuse, quarantine,
	// and report absence so the caller falls back honestly.
	path := filepath.Join(dir, digest+".rom")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.OpenRaw(digest); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("corrupt-file OpenRaw err = %v, want fs.ErrNotExist", err)
	}
	if q := s.Stats().Quarantined; q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in place after quarantine")
	}
}
