package schur

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"avtmor/internal/mat"
)

// checkSchur validates orthogonality, reconstruction, and quasi-triangular
// structure of a decomposition of a.
func checkSchur(t *testing.T, a *mat.Dense, s *Schur, tol float64) {
	t.Helper()
	n := a.R
	// Q orthogonal.
	if d := s.Q.T().Mul(s.Q).Sub(mat.Eye(n)).MaxAbs(); d > tol {
		t.Fatalf("QᵀQ-I = %g", d)
	}
	// A = Q T Qᵀ.
	rec := s.Q.Mul(s.T).Mul(s.Q.T())
	if d := rec.Sub(a).MaxAbs(); d > tol*(1+a.MaxAbs()) {
		t.Fatalf("reconstruction error %g", d)
	}
	// Quasi-triangular: nothing below the first subdiagonal, and no two
	// consecutive nonzero subdiagonals.
	for i := 0; i < n; i++ {
		for j := 0; j < i-1; j++ {
			if s.T.At(i, j) != 0 {
				t.Fatalf("T[%d][%d] = %g below subdiagonal", i, j, s.T.At(i, j))
			}
		}
	}
	for i := 1; i < n-1; i++ {
		if s.T.At(i, i-1) != 0 && s.T.At(i+1, i) != 0 {
			t.Fatalf("consecutive subdiagonals at %d", i)
		}
	}
	// 2×2 blocks standardized: equal diagonals, opposite off-diag signs.
	for _, blk := range s.Blocks() {
		if blk[1] == 2 {
			i := blk[0]
			if math.Abs(s.T.At(i, i)-s.T.At(i+1, i+1)) > tol {
				t.Fatalf("2×2 block at %d not standardized: diag %g vs %g",
					i, s.T.At(i, i), s.T.At(i+1, i+1))
			}
			if s.T.At(i, i+1)*s.T.At(i+1, i) >= 0 {
				t.Fatalf("2×2 block at %d has real eigenvalues", i)
			}
		}
	}
}

func TestDecomposeSmallKnown(t *testing.T) {
	// Rotation-like matrix with eigenvalues 1 ± 2i.
	a := mat.FromRows([][]float64{{1, 2}, {-2, 1}})
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	checkSchur(t, a, s, 1e-12)
	eigs := s.Eigenvalues()
	sortC(eigs)
	if cmplx.Abs(eigs[0]-(1-2i)) > 1e-12 || cmplx.Abs(eigs[1]-(1+2i)) > 1e-12 {
		t.Fatalf("eigs = %v", eigs)
	}
}

func TestDecomposeDiagonal(t *testing.T) {
	a := mat.Diag([]float64{3, -1, 2})
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	checkSchur(t, a, s, 1e-13)
	eigs := s.Eigenvalues()
	sortC(eigs)
	want := []complex128{-1, 2, 3}
	for i := range want {
		if cmplx.Abs(eigs[i]-want[i]) > 1e-12 {
			t.Fatalf("eigs = %v", eigs)
		}
	}
}

func TestDecomposeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	b := mat.RandDense(rng, n, n)
	a := b.Plus(b.T()) // symmetric → all real eigenvalues
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	checkSchur(t, a, s, 1e-10)
	for _, e := range s.Eigenvalues() {
		if imag(e) != 0 {
			t.Fatalf("symmetric matrix produced complex eigenvalue %v", e)
		}
	}
}

func TestDecomposeRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := mat.RandDense(rng, n, n)
		s, err := Decompose(a)
		if err != nil {
			return false
		}
		rec := s.Q.Mul(s.T).Mul(s.Q.T())
		if rec.Sub(a).MaxAbs() > 1e-9*(1+a.MaxAbs()) {
			return false
		}
		return s.Q.T().Mul(s.Q).Sub(mat.Eye(n)).MaxAbs() < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeStableCircuitLike(t *testing.T) {
	// The regime that matters: stable, moderately sparse, n ~ 100.
	rng := rand.New(rand.NewSource(2))
	a := mat.RandStable(rng, 100, 0.5)
	s, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	checkSchur(t, a, s, 1e-8)
	for _, e := range s.Eigenvalues() {
		if real(e) >= 0 {
			t.Fatalf("stable matrix produced eigenvalue %v", e)
		}
	}
}

func TestEigenvaluesTraceDet(t *testing.T) {
	// Sum of eigenvalues = trace; product = det (checked on 3×3 with a
	// complex pair).
	a := mat.FromRows([][]float64{{0, 1, 0}, {-1, 0, 0}, {0, 0, 2}})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum, prod complex128 = 0, 1
	for _, e := range eigs {
		sum += e
		prod *= e
	}
	if cmplx.Abs(sum-2) > 1e-12 {
		t.Fatalf("trace mismatch: %v", sum)
	}
	if cmplx.Abs(prod-2) > 1e-12 {
		t.Fatalf("det mismatch: %v", prod)
	}
}

func TestEigenvalueConjugatePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandDense(rng, 15, 15)
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	// Complex eigenvalues must come in conjugate pairs.
	for _, e := range eigs {
		if imag(e) == 0 {
			continue
		}
		found := false
		for _, f := range eigs {
			if cmplx.Abs(f-cmplx.Conj(e)) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no conjugate for %v", e)
		}
	}
}

func TestCharacteristicPolynomial3x3(t *testing.T) {
	// Companion matrix of p(λ) = λ³ - 6λ² + 11λ - 6 = (λ-1)(λ-2)(λ-3).
	a := mat.FromRows([][]float64{
		{0, 0, 6},
		{1, 0, -11},
		{0, 1, 6},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	re := []float64{real(eigs[0]), real(eigs[1]), real(eigs[2])}
	sort.Float64s(re)
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(re[i]-want) > 1e-9 || imag(eigs[i]) != 0 {
			t.Fatalf("eigs = %v", eigs)
		}
	}
}

func TestEigenResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := mat.RandStable(rng, n, 0.3)
		e, err := Eigen(a)
		if err != nil {
			return false
		}
		return e.residual(a) < 1e-7*a.MaxAbs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenInverseVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mat.RandStable(rng, 12, 0.3)
	e, err := Eigen(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := e.InverseVectors()
	if err != nil {
		t.Fatal(err)
	}
	prod := e.Vectors.Mul(inv)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(prod.At(i, j)-want) > 1e-8 {
				t.Fatalf("V·V⁻¹ entry (%d,%d) = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestEigenReconstructsMatrix(t *testing.T) {
	// A = V Λ V⁻¹.
	rng := rand.New(rand.NewSource(5))
	a := mat.RandStable(rng, 10, 0.3)
	e, err := Eigen(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := e.InverseVectors()
	if err != nil {
		t.Fatal(err)
	}
	lam := mat.NewCDense(10, 10)
	for i, v := range e.Values {
		lam.Set(i, i, v)
	}
	rec := e.Vectors.Mul(lam).Mul(inv)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if cmplx.Abs(rec.At(i, j)-complex(a.At(i, j), 0)) > 1e-7 {
				t.Fatalf("reconstruction at (%d,%d): %v vs %v", i, j, rec.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestDecomposeN1AndN2(t *testing.T) {
	s, err := Decompose(mat.Diag([]float64{5}))
	if err != nil || s.Eigenvalues()[0] != 5 {
		t.Fatalf("n=1 failed: %v %v", err, s)
	}
	a := mat.FromRows([][]float64{{0, 1}, {0, 0}}) // defective, eigs {0,0}
	s2, err := Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	checkSchur(t, a, s2, 1e-14)
}

func TestNonSquareRejected(t *testing.T) {
	if _, err := Decompose(mat.NewDense(2, 3)); err == nil {
		t.Fatal("expected error")
	}
}

func sortC(v []complex128) {
	sort.Slice(v, func(i, j int) bool {
		if real(v[i]) != real(v[j]) {
			return real(v[i]) < real(v[j])
		}
		return imag(v[i]) < imag(v[j])
	})
}

func BenchmarkDecompose100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandStable(rng, 100, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(a); err != nil {
			b.Fatal(err)
		}
	}
}
