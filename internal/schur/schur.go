// Package schur computes the real Schur decomposition A = Q T Qᵀ with Q
// orthogonal and T upper quasi-triangular (1×1 and standardized 2×2
// diagonal blocks), via Householder–Hessenberg reduction followed by the
// Francis implicit double-shift QR iteration.
//
// The paper's fast solver stack (§2.3) rests on this form: with
// G1 = Q R Qᵀ, the Kronecker sum ⊕ᵏG1 becomes quasi-triangular after the
// transform (Q⊗…⊗Q), so every resolvent application reduces to
// back-substitution. Package sylv and kron consume the factorization.
package schur

import (
	"errors"
	"math"

	"avtmor/internal/mat"
)

// Schur holds a real Schur decomposition A = Q·T·Qᵀ.
type Schur struct {
	Q *mat.Dense // orthogonal
	T *mat.Dense // upper quasi-triangular with standardized 2×2 blocks
	// BlockStart[i] reports whether a diagonal block starts at index i.
	// A 2×2 block starting at i occupies i, i+1.
	blockStart []bool
}

// maxIterFactor bounds the total QR sweeps at maxIterFactor·n.
const maxIterFactor = 60

// ErrNoConvergence is returned when the QR iteration fails to deflate.
var ErrNoConvergence = errors.New("schur: QR iteration did not converge")

// Decompose computes the real Schur decomposition of a square matrix.
// The input is not modified.
func Decompose(a *mat.Dense) (*Schur, error) {
	if a.R != a.C {
		return nil, errors.New("schur: matrix must be square")
	}
	n := a.R
	t := a.Clone()
	q := mat.Eye(n)
	hessenberg(t, q)
	if err := francis(t, q); err != nil {
		return nil, err
	}
	s := &Schur{Q: q, T: t}
	s.scanBlocks()
	return s, nil
}

// hessenberg reduces h to upper Hessenberg form in place, accumulating the
// orthogonal transform into q (q ← q·P for each reflector P).
func hessenberg(h, q *mat.Dense) {
	n := h.R
	for k := 0; k+2 < n; k++ {
		// Householder vector for h[k+1:n, k].
		x := make([]float64, n-k-1)
		for i := k + 1; i < n; i++ {
			x[i-k-1] = h.At(i, k)
		}
		alpha := mat.Norm2(x)
		if alpha == 0 {
			continue
		}
		if x[0] > 0 {
			alpha = -alpha
		}
		v := mat.CopyVec(x)
		v[0] -= alpha
		vn := mat.Norm2(v)
		if vn == 0 {
			continue
		}
		mat.ScaleVec(1/vn, v)
		reflectRows(h, v, k+1, 0)
		reflectCols(h, v, k+1, 0)
		reflectCols(q, v, k+1, 0)
		// Clean the annihilated entries.
		h.Set(k+1, k, alpha)
		for i := k + 2; i < n; i++ {
			h.Set(i, k, 0)
		}
	}
}

// reflectRows applies P = I − 2vvᵀ (v occupying rows r0..r0+len(v)-1) from
// the left: m ← P·m, touching columns c0..end.
func reflectRows(m *mat.Dense, v []float64, r0, c0 int) {
	for j := c0; j < m.C; j++ {
		s := 0.0
		for i, vi := range v {
			s += vi * m.At(r0+i, j)
		}
		s *= 2
		if s == 0 {
			continue
		}
		for i, vi := range v {
			m.Add(r0+i, j, -s*vi)
		}
	}
}

// reflectCols applies P from the right: m ← m·P, v occupying columns
// c0..c0+len(v)-1, touching rows r0..end.
func reflectCols(m *mat.Dense, v []float64, c0, r0 int) {
	for i := r0; i < m.R; i++ {
		row := m.Row(i)
		s := 0.0
		for j, vj := range v {
			s += vj * row[c0+j]
		}
		s *= 2
		if s == 0 {
			continue
		}
		for j, vj := range v {
			row[c0+j] -= s * vj
		}
	}
}

// francis runs the implicit double-shift QR iteration on the Hessenberg
// matrix h, accumulating transforms into q, until h is quasi-triangular.
func francis(h, q *mat.Dense) error {
	n := h.R
	if n <= 1 {
		return nil
	}
	const ulp = 2.220446049250313e-16
	smlnum := math.SmallestNonzeroFloat64 / ulp * float64(n)
	hi := n - 1
	sinceDeflate := 0
	budget := maxIterFactor * n
	for hi >= 0 {
		if budget <= 0 {
			return ErrNoConvergence
		}
		// Find the start of the active block: walk up while the
		// subdiagonal is non-negligible.
		lo := hi
		for lo > 0 {
			sub := math.Abs(h.At(lo, lo-1))
			if sub <= smlnum || sub <= ulp*(math.Abs(h.At(lo-1, lo-1))+math.Abs(h.At(lo, lo))) {
				h.Set(lo, lo-1, 0)
				break
			}
			lo--
		}
		switch {
		case lo == hi: // 1×1 block converged
			hi--
			sinceDeflate = 0
		case lo == hi-1: // 2×2 block converged: standardize and deflate
			standardize2x2(h, q, lo)
			hi -= 2
			sinceDeflate = 0
		default:
			sinceDeflate++
			budget--
			exceptional := sinceDeflate%14 == 0
			doubleShiftSweep(h, q, lo, hi, exceptional)
		}
	}
	return nil
}

// doubleShiftSweep performs one implicit double-shift bulge chase on the
// active window rows/cols lo..hi (inclusive, size ≥ 3).
func doubleShiftSweep(h, q *mat.Dense, lo, hi int, exceptional bool) {
	var s, t float64
	if exceptional {
		// Ad-hoc exceptional shift (Wilkinson's recipe) breaks cycles.
		w := math.Abs(h.At(hi, hi-1)) + math.Abs(h.At(hi-1, hi-2))
		s = 1.5 * w
		t = w * w * 0.75 * 0.9375
	} else {
		s = h.At(hi-1, hi-1) + h.At(hi, hi)
		t = h.At(hi-1, hi-1)*h.At(hi, hi) - h.At(hi-1, hi)*h.At(hi, hi-1)
	}
	x := h.At(lo, lo)*h.At(lo, lo) + h.At(lo, lo+1)*h.At(lo+1, lo) - s*h.At(lo, lo) + t
	y := h.At(lo+1, lo) * (h.At(lo, lo) + h.At(lo+1, lo+1) - s)
	z := h.At(lo+1, lo) * h.At(lo+2, lo+1)

	for k := lo; k <= hi-2; k++ {
		vec := []float64{x, y, z}
		if k == hi-2 {
			// Final reflector is 2-dimensional only when the bulge
			// reaches the bottom; handled below by the trailing Givens.
			vec = []float64{x, y, z}
		}
		v, ok := householder3(vec)
		if ok {
			reflectRows(h, v, k, 0)
			reflectCols(h, v, k, 0)
			reflectCols(q, v, k, 0)
		}
		if k < hi-2 {
			x = h.At(k+1, k)
			y = h.At(k+2, k)
			if k+3 <= hi {
				z = h.At(k+3, k)
			} else {
				z = 0
			}
		}
	}
	// Trailing 2-vector reflector to restore Hessenberg form at the bottom.
	x = h.At(hi-1, hi-2)
	y = h.At(hi, hi-2)
	if v, ok := householder2([]float64{x, y}); ok {
		reflectRows(h, v, hi-1, 0)
		reflectCols(h, v, hi-1, 0)
		reflectCols(q, v, hi-1, 0)
	}
	// Clean below-bulge entries that should be exactly zero.
	for i := lo + 2; i <= hi; i++ {
		for j := lo; j <= i-2; j++ {
			h.Set(i, j, 0)
		}
	}
}

// householder3 builds a unit reflector vector for a 3-vector (len may be 3
// with trailing zeros). Returns ok=false when the input is already e1-like.
func householder3(x []float64) ([]float64, bool) {
	alpha := mat.Norm2(x)
	if alpha == 0 {
		return nil, false
	}
	if x[0] > 0 {
		alpha = -alpha
	}
	v := mat.CopyVec(x)
	v[0] -= alpha
	vn := mat.Norm2(v)
	if vn == 0 {
		return nil, false
	}
	mat.ScaleVec(1/vn, v)
	return v, true
}

func householder2(x []float64) ([]float64, bool) { return householder3(x) }

// standardize2x2 rotates the 2×2 diagonal block at rows/cols p, p+1 into
// standard form: either upper triangular (real eigenvalues) or
// [[α, β],[γ, α]] with βγ < 0 (complex pair α ± i√(−βγ)). The rotation is
// applied as a full similarity on h and accumulated into q.
func standardize2x2(h, q *mat.Dense, p int) {
	a, b := h.At(p, p), h.At(p, p+1)
	c, d := h.At(p+1, p), h.At(p+1, p+1)
	if c == 0 {
		return // already triangular
	}
	tr := a + d
	det := a*d - b*c
	disc := tr*tr/4 - det
	if disc >= 0 {
		// Real eigenvalues: rotate an eigenvector onto e1.
		root := math.Sqrt(disc)
		// Pick the eigenvalue that keeps the eigenvector well-scaled.
		lambda := tr/2 + root
		if math.Abs(lambda-a) < math.Abs(tr/2-root-a) {
			lambda = tr/2 - root
		}
		// Eigenvector of [[a-λ, b],[c, d-λ]]: rows are parallel; use the
		// better-conditioned one.
		var vx, vy float64
		if math.Abs(b)+math.Abs(a-lambda) >= math.Abs(d-lambda)+math.Abs(c) {
			vx, vy = b, lambda-a
		} else {
			vx, vy = lambda-d, c
		}
		applyGivens(h, q, p, vx, vy)
		h.Set(p+1, p, 0)
		return
	}
	// Complex pair: rotate so the diagonal entries are equal.
	// For G = [[cs,sn],[-sn,cs]]: (GMGᵀ)00 − (GMGᵀ)11 =
	// cos2θ·(a−d) + sin2θ·(b+c); solve for θ.
	var cs, sn float64
	if b+c == 0 {
		if a == d {
			return
		}
		// Need cos2θ = 0: θ = π/4.
		cs, sn = math.Sqrt2/2, math.Sqrt2/2
	} else {
		theta := 0.5 * math.Atan2(-(a-d), b+c)
		cs, sn = math.Cos(theta), math.Sin(theta)
	}
	rotate(h, q, p, cs, sn)
	// Force exact symmetry of the standardized form.
	avg := (h.At(p, p) + h.At(p+1, p+1)) / 2
	h.Set(p, p, avg)
	h.Set(p+1, p+1, avg)
}

// applyGivens builds the Givens rotation aligning (vx,vy) with e1 and
// applies it as a similarity at position p.
func applyGivens(h, q *mat.Dense, p int, vx, vy float64) {
	r := math.Hypot(vx, vy)
	if r == 0 {
		return
	}
	rotate(h, q, p, vx/r, vy/r)
}

// rotate applies G = [[cs, sn],[-sn, cs]] as h ← G·h·Gᵀ at rows/cols
// p, p+1 and accumulates q ← q·Gᵀ.
func rotate(h, q *mat.Dense, p int, cs, sn float64) {
	n := h.C
	for j := 0; j < n; j++ {
		u, v := h.At(p, j), h.At(p+1, j)
		h.Set(p, j, cs*u+sn*v)
		h.Set(p+1, j, -sn*u+cs*v)
	}
	for i := 0; i < h.R; i++ {
		u, v := h.At(i, p), h.At(i, p+1)
		h.Set(i, p, cs*u+sn*v)
		h.Set(i, p+1, -sn*u+cs*v)
	}
	for i := 0; i < q.R; i++ {
		u, v := q.At(i, p), q.At(i, p+1)
		q.Set(i, p, cs*u+sn*v)
		q.Set(i, p+1, -sn*u+cs*v)
	}
}

// scanBlocks records where diagonal blocks start.
func (s *Schur) scanBlocks() {
	n := s.T.R
	s.blockStart = make([]bool, n)
	for i := 0; i < n; {
		s.blockStart[i] = true
		if i+1 < n && s.T.At(i+1, i) != 0 {
			i += 2
		} else {
			i++
		}
	}
}

// Blocks returns the start index and size (1 or 2) of each diagonal block.
func (s *Schur) Blocks() [][2]int {
	var out [][2]int
	n := s.T.R
	for i := 0; i < n; {
		if i+1 < n && s.T.At(i+1, i) != 0 {
			out = append(out, [2]int{i, 2})
			i += 2
		} else {
			out = append(out, [2]int{i, 1})
			i++
		}
	}
	return out
}

// Eigenvalues returns the spectrum read off the quasi-triangular factor.
func (s *Schur) Eigenvalues() []complex128 {
	t := s.T
	n := t.R
	eig := make([]complex128, 0, n)
	for _, blk := range s.Blocks() {
		i, sz := blk[0], blk[1]
		if sz == 1 {
			eig = append(eig, complex(t.At(i, i), 0))
			continue
		}
		alpha := (t.At(i, i) + t.At(i+1, i+1)) / 2
		prod := t.At(i, i+1) * t.At(i+1, i)
		beta := math.Sqrt(math.Max(0, -prod))
		eig = append(eig, complex(alpha, beta), complex(alpha, -beta))
	}
	return eig
}

// Eigenvalues computes the eigenvalues of a square matrix.
func Eigenvalues(a *mat.Dense) ([]complex128, error) {
	s, err := Decompose(a)
	if err != nil {
		return nil, err
	}
	return s.Eigenvalues(), nil
}
