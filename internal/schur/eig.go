package schur

import (
	"errors"
	"math/rand"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
)

// Eig holds an eigendecomposition A·V = V·diag(Values) for a
// diagonalizable real matrix (values and vectors may be complex).
type Eig struct {
	Values  []complex128
	Vectors *mat.CDense // columns are unit-norm right eigenvectors
}

// Eigen computes eigenvalues via the real Schur form and right eigenvectors
// by shifted inverse iteration on the original matrix. This is the spectral
// backend used by the analytic-association test oracle and the ⊕³ spectral
// solver; it assumes a diagonalizable A (true for the generic circuit
// matrices in this repository — a defective A surfaces as a residual
// failure, reported as an error).
func Eigen(a *mat.Dense) (*Eig, error) {
	s, err := Decompose(a)
	if err != nil {
		return nil, err
	}
	vals := s.Eigenvalues()
	n := a.R
	vecs := mat.NewCDense(n, n)
	rng := rand.New(rand.NewSource(0x5eed))
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	for j, lam := range vals {
		v, err := inverseIterate(a, lam, scale, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			vecs.Set(i, j, v[i])
		}
	}
	e := &Eig{Values: vals, Vectors: vecs}
	if r := e.residual(a); r > 1e-6*scale {
		return nil, errors.New("schur: eigenvector residual too large (defective or ill-conditioned matrix)")
	}
	return e, nil
}

// inverseIterate runs a few steps of inverse iteration with shift λ+ε.
func inverseIterate(a *mat.Dense, lam complex128, scale float64, rng *rand.Rand) ([]complex128, error) {
	n := a.R
	// Perturb the shift so (A − σI) is safely invertible even when λ is
	// computed exactly.
	eps := complex(1e-10*scale, 1e-10*scale)
	f, err := lu.ShiftedReal(a, -(lam + eps))
	if err != nil {
		// Extremely unlucky perturbation direction: retry once, larger.
		f, err = lu.ShiftedReal(a, -(lam + 64*eps))
		if err != nil {
			return nil, err
		}
	}
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	normalize(v)
	for iter := 0; iter < 3; iter++ {
		f.Solve(v, v)
		normalize(v)
	}
	return v, nil
}

func normalize(v []complex128) {
	n := mat.CNorm2(v)
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
}

// residual returns max over columns of ||A v − λ v||₂.
func (e *Eig) residual(a *mat.Dense) float64 {
	n := a.R
	ac := a.Complex()
	worst := 0.0
	col := make([]complex128, n)
	av := make([]complex128, n)
	for j, lam := range e.Values {
		for i := 0; i < n; i++ {
			col[i] = e.Vectors.At(i, j)
		}
		ac.MulVec(av, col)
		mat.CAxpy(-lam, col, av)
		if r := mat.CNorm2(av); r > worst {
			worst = r
		}
	}
	return worst
}

// InverseVectors returns V⁻¹ (complex LU solve against the identity),
// needed by the spectral Kronecker-sum solver.
func (e *Eig) InverseVectors() (*mat.CDense, error) {
	n := e.Vectors.R
	f, err := lu.FactorC(e.Vectors)
	if err != nil {
		return nil, err
	}
	inv := mat.NewCDense(n, n)
	col := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		f.Solve(col, col)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
