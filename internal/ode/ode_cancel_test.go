package ode

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/solver"
	"avtmor/internal/sparse"
)

// mustCtxFact fails the test if the context-free SolveBatch is ever
// used: the Newton correction of TrapezoidalSolverCtx must stay on the
// cancellable SolveBatchCtx path (the ctxflow contract this package was
// once caught violating).
type mustCtxFact struct{ solver.Factorization }

func (mustCtxFact) SolveBatch([][]float64) {
	panic("ode: SolveBatch used where the cancellable SolveBatchCtx is required")
}

// wrapSolver decorates a backend so every factorization it hands out
// rejects context-free batch solves, and optionally runs a hook after
// each successful factor step.
type wrapSolver struct {
	inner    solver.LinearSolver
	onFactor func()
}

func (w *wrapSolver) Name() string { return w.inner.Name() }

func (w *wrapSolver) Factor(a *solver.Matrix) (solver.Factorization, error) {
	return w.FactorCtx(context.Background(), a)
}

func (w *wrapSolver) FactorCtx(ctx context.Context, a *solver.Matrix) (solver.Factorization, error) {
	f, err := w.inner.FactorCtx(ctx, a)
	if err != nil {
		return nil, err
	}
	if w.onFactor != nil {
		w.onFactor()
	}
	return mustCtxFact{f}, nil
}

func nonlinearCancelSystem() *qldae.System {
	rng := rand.New(rand.NewSource(11))
	n := 6
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 2*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.3*(2*rng.Float64()-1))
	}
	return &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.5),
		G2: g2b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
}

// TestTrapezoidalNewtonUsesCtxSolves pins the cancellation plumbing of
// the implicit integrator: the whole run must go through SolveBatchCtx
// (mustCtxFact panics otherwise) and still produce a finite trajectory.
func TestTrapezoidalNewtonUsesCtxSolves(t *testing.T) {
	sys := nonlinearCancelSystem()
	u := func(ts float64) []float64 { return []float64{0.4 * math.Cos(3*ts)} }
	res, err := TrapezoidalSolverCtx(context.Background(), sys, make([]float64, sys.N), u, 1, 100, &wrapSolver{inner: solver.Dense{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewtonIters == 0 {
		t.Fatal("Newton never iterated; the test exercised nothing")
	}
	for _, y := range res.Y {
		if math.IsNaN(y[0]) || math.IsInf(y[0], 0) {
			t.Fatalf("non-finite output %v", y[0])
		}
	}
}

// TestTrapezoidalCancelMidNewton cancels the context between a Newton
// factorization and its back-solve: the integrator must surface
// context.Canceled from inside the iteration instead of completing the
// step (SolveBatchCtx aborts; the old SolveBatch call could not).
func TestTrapezoidalCancelMidNewton(t *testing.T) {
	sys := nonlinearCancelSystem()
	u := func(ts float64) []float64 { return []float64{0.4 * math.Cos(3*ts)} }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ls := &wrapSolver{inner: solver.Dense{}, onFactor: cancel}
	_, err := TrapezoidalSolverCtx(ctx, sys, make([]float64, sys.N), u, 1, 100, ls)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled after mid-Newton cancel, got %v", err)
	}
}
