// Package ode integrates QLDAE systems (full models and ROMs) for the
// paper's transient experiments: classical RK4, adaptive Dormand–Prince
// RK45 for the smooth receiver/transmission-line waveforms, and an
// implicit trapezoidal method with Newton iteration for the stiff varistor
// surge simulation of §3.4.
package ode

import (
	"context"
	"errors"
	"fmt"
	"math"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/solver"
	"avtmor/internal/sparse"
)

// Input is a scalar-per-channel input signal u(t).
type Input func(t float64) []float64

// workspace is the per-integrator scratch set: the stage, residual, and
// Newton vectors every step reuses, borrowed from the shared pool for
// the lifetime of one integration and returned on exit. Combined with
// the allocation-free System.Eval and the pooled solver substitutions,
// it keeps the inner stepping loops of all three integrators from
// allocating per step.
type workspace struct{ bufs [][]float64 }

// vec borrows a length-n scratch vector for the integration. The
// buffer deliberately outlives this function: the workspace tracks it
// until release() hands it back to the pool.
func (w *workspace) vec(n int) []float64 {
	b := mat.GetVec(n)
	w.bufs = append(w.bufs, b) //avtmorlint:ignore wspool the workspace owns b until release() returns it to the pool
	return b                   //avtmorlint:ignore wspool callers borrow through the workspace, which releases on integrator exit
}

// release returns every borrowed vector to the pool.
func (w *workspace) release() {
	for _, b := range w.bufs {
		mat.PutVec(b)
	}
	w.bufs = nil
}

// Const wraps a constant input vector.
func Const(u []float64) Input {
	return func(float64) []float64 { return u }
}

// Result is a recorded trajectory.
type Result struct {
	T []float64
	// Y[k] is the output vector at T[k].
	Y [][]float64
	// Steps counts accepted integrator steps; Rejected counts adaptive
	// rejections; NewtonIters counts total Newton iterations (implicit
	// methods only).
	Steps, Rejected, NewtonIters int
}

// OutputAt linearly interpolates output channel ch at time t.
func (r *Result) OutputAt(t float64, ch int) float64 {
	k := 0
	for k < len(r.T)-1 && r.T[k+1] < t {
		k++
	}
	if k >= len(r.T)-1 {
		return r.Y[len(r.Y)-1][ch]
	}
	t0, t1 := r.T[k], r.T[k+1]
	if t1 == t0 {
		return r.Y[k][ch]
	}
	w := (t - t0) / (t1 - t0)
	return (1-w)*r.Y[k][ch] + w*r.Y[k+1][ch]
}

// RK4 integrates with the classical fixed-step fourth-order Runge–Kutta
// scheme from x0 over [0, tEnd] with nSteps steps, recording the output at
// every step.
func RK4(sys *qldae.System, x0 []float64, u Input, tEnd float64, nSteps int) *Result {
	res, _ := RK4Ctx(context.Background(), sys, x0, u, tEnd, nSteps)
	return res
}

// RK4Ctx is RK4 with cooperative cancellation: ctx is polled once per
// step and the partial trajectory is discarded on abort.
func RK4Ctx(ctx context.Context, sys *qldae.System, x0 []float64, u Input, tEnd float64, nSteps int) (*Result, error) {
	n := sys.N
	if len(x0) != n {
		panic("ode: RK4 state length mismatch")
	}
	h := tEnd / float64(nSteps)
	x := mat.CopyVec(x0)
	res := &Result{}
	res.T = append(res.T, 0)
	res.Y = append(res.Y, sys.Output(x))
	ws := &workspace{}
	defer ws.release()
	k1 := ws.vec(n)
	k2 := ws.vec(n)
	k3 := ws.vec(n)
	k4 := ws.vec(n)
	xs := ws.vec(n)
	for s := 0; s < nSteps; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := float64(s) * h
		sys.Eval(k1, x, u(t))
		for i := range xs {
			xs[i] = x[i] + 0.5*h*k1[i]
		}
		sys.Eval(k2, xs, u(t+0.5*h))
		for i := range xs {
			xs[i] = x[i] + 0.5*h*k2[i]
		}
		sys.Eval(k3, xs, u(t+0.5*h))
		for i := range xs {
			xs[i] = x[i] + h*k3[i]
		}
		sys.Eval(k4, xs, u(t+h))
		for i := range x {
			x[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		res.Steps++
		res.T = append(res.T, t+h)
		res.Y = append(res.Y, sys.Output(x))
	}
	return res, nil
}

// dopri5 Butcher tableau (Dormand–Prince 5(4)).
var (
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpE = [7]float64{ // b5 − b4 error weights
		35.0/384 - 5179.0/57600, 0, 500.0/1113 - 7571.0/16695,
		125.0/192 - 393.0/640, -2187.0/6784 + 92097.0/339200,
		11.0/84 - 187.0/2100, -1.0 / 40,
	}
)

// Dopri5 integrates with the adaptive Dormand–Prince 5(4) pair. rtol/atol
// control the local error; outputs are recorded at every accepted step.
func Dopri5(sys *qldae.System, x0 []float64, u Input, tEnd, rtol, atol float64) (*Result, error) {
	return Dopri5Ctx(context.Background(), sys, x0, u, tEnd, rtol, atol)
}

// Dopri5Ctx is Dopri5 with cooperative cancellation (polled once per
// attempted step).
func Dopri5Ctx(ctx context.Context, sys *qldae.System, x0 []float64, u Input, tEnd, rtol, atol float64) (*Result, error) {
	n := sys.N
	x := mat.CopyVec(x0)
	res := &Result{}
	res.T = append(res.T, 0)
	res.Y = append(res.Y, sys.Output(x))
	ws := &workspace{}
	defer ws.release()
	k := make([][]float64, 7)
	for i := range k {
		k[i] = ws.vec(n)
	}
	xs := ws.vec(n)
	t := 0.0
	h := tEnd / 100
	hMin := tEnd * 1e-12
	const maxSteps = 10_000_000
	for t < tEnd {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.Steps+res.Rejected > maxSteps {
			return nil, errors.New("ode: Dopri5 exceeded step budget")
		}
		if t+h > tEnd {
			h = tEnd - t
		}
		sys.Eval(k[0], x, u(t))
		for stage := 1; stage < 7; stage++ {
			copy(xs, x)
			for j := 0; j < stage; j++ {
				a := dpA[stage][j]
				if a == 0 {
					continue
				}
				mat.Axpy(h*a, k[j], xs)
			}
			sys.Eval(k[stage], xs, u(t+dpC[stage]*h))
		}
		// 5th-order solution is the last stage state (FSAL structure).
		// Error estimate.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			e := 0.0
			for st := 0; st < 7; st++ {
				e += dpE[st] * k[st][i]
			}
			e *= h
			sc := atol + rtol*math.Max(math.Abs(x[i]), math.Abs(xs[i]))
			r := e / sc
			errNorm += r * r
		}
		errNorm = math.Sqrt(errNorm / float64(n))
		if errNorm <= 1 {
			t += h
			copy(x, xs)
			res.Steps++
			res.T = append(res.T, t)
			res.Y = append(res.Y, sys.Output(x))
		} else {
			res.Rejected++
		}
		// Step controller.
		fac := 0.9 * math.Pow(math.Max(errNorm, 1e-10), -0.2)
		fac = math.Min(5, math.Max(0.2, fac))
		h *= fac
		if h < hMin {
			return nil, fmt.Errorf("ode: Dopri5 step collapsed at t=%g", t)
		}
	}
	return res, nil
}

// Trapezoidal integrates with the implicit trapezoidal rule and Newton
// iteration. Suitable for the stiff varistor surge of §3.4 where explicit
// methods need punishing step sizes. Equivalent to TrapezoidalSolver with
// the auto-routed backend.
func Trapezoidal(sys *qldae.System, x0 []float64, u Input, tEnd float64, nSteps int) (*Result, error) {
	return TrapezoidalSolverCtx(context.Background(), sys, x0, u, tEnd, nSteps, nil)
}

// newtonRefresh is the modified-Newton refactorization cadence: the
// step's Jacobian is factored once at the predictor state and reused;
// while the iteration has not converged, it is refactored at the
// current iterate every newtonRefresh iterations (an unconditional
// cadence — there is no separate stall detector).
const newtonRefresh = 6

// TrapezoidalSolver is Trapezoidal with an explicit linear-solver
// backend (nil selects solver.Auto). The Newton matrix I − h/2·∂f/∂x is
// factored once per step through the LinearSolver interface — in CSR
// form for systems carrying a sparse G1 mirror beyond the dense routing
// cutoff — so full-order reference simulations of large circuits pay
// O(nnz·fill) per step, not O(n³) per Newton iteration.
func TrapezoidalSolver(sys *qldae.System, x0 []float64, u Input, tEnd float64, nSteps int, ls solver.LinearSolver) (*Result, error) {
	return TrapezoidalSolverCtx(context.Background(), sys, x0, u, tEnd, nSteps, ls)
}

// TrapezoidalSolverCtx is TrapezoidalSolver with cooperative
// cancellation: ctx is polled once per step and inside the Newton
// refactorization, so even a stiff large-system run aborts within one
// factor-plus-a-few-solves of the cancel.
func TrapezoidalSolverCtx(ctx context.Context, sys *qldae.System, x0 []float64, u Input, tEnd float64, nSteps int, ls solver.LinearSolver) (*Result, error) {
	n := sys.N
	if ls == nil {
		ls = solver.Auto{}
	}
	// Assemble the Newton matrix in the representation the backend will
	// factor: CSR whenever the dense G1 is absent, or when the system is
	// mirrored sparse and large (or the caller forced the sparse LU).
	sparseAssembly := sys.G1 == nil
	switch ls.(type) {
	case solver.Sparse:
		sparseAssembly = true
	case solver.Dense:
		sparseAssembly = sys.G1 == nil
	default:
		sparseAssembly = sparseAssembly || (sys.G1S != nil && n >= solver.AutoDenseCutoff)
	}
	var eye *sparse.CSR
	var jb *sparse.Builder
	if sparseAssembly {
		eye = sparse.Eye(n)
		jb = sparse.NewBuilder(n, n)
	}
	newtonMatrix := func(xn []float64, u1 []float64, h float64) *solver.Matrix {
		if sparseAssembly {
			return solver.FromCSR(sparse.Add(1, eye, -0.5*h, sys.JacobianCSRInto(jb, xn, u1)))
		}
		jac := sys.Jacobian(xn, u1).Scale(-0.5 * h)
		for i := 0; i < n; i++ {
			jac.Add(i, i, 1)
		}
		return solver.FromDense(jac)
	}
	// One symbolic analysis serves the whole transient: Newton matrices
	// share the Jacobian's sparsity pattern across iterations, steps, and
	// step-size changes (h scales values, not structure), so every sparse
	// refactorization after the first is numeric-only unless threshold
	// pivoting rejects the recorded sequence or the pattern genuinely
	// moves (a D1 block switching on with its input re-analyzes once).
	// Either way the factors — and the trajectory — are bit-identical to
	// factoring fresh every time.
	var sym solver.SymbolicCache
	h := tEnd / float64(nSteps)
	x := mat.CopyVec(x0)
	res := &Result{}
	res.T = append(res.T, 0)
	res.Y = append(res.Y, sys.Output(x))
	ws := &workspace{}
	defer ws.release()
	f0 := ws.vec(n)
	f1 := ws.vec(n)
	g := ws.vec(n)
	// The Newton correction solves through the factorization's batch
	// path with a persistent one-column block (g solved in place), so a
	// stiff run's thousands of Newton iterations share one workspace
	// instead of allocating per solve.
	newton := [][]float64{g}
	const maxNewton = 25
	for s := 0; s < nSteps; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := float64(s) * h
		u0 := u(t)
		u1 := u(t + h)
		sys.Eval(f0, x, u0)
		// Predictor: forward Euler.
		xn := mat.CopyVec(x)
		mat.Axpy(h, f0, xn)
		converged := false
		var fac solver.Factorization
		for it := 0; it < maxNewton; it++ {
			res.NewtonIters++
			sys.Eval(f1, xn, u1)
			// g = xn − x − h/2 (f0 + f1).
			for i := 0; i < n; i++ {
				g[i] = xn[i] - x[i] - 0.5*h*(f0[i]+f1[i])
			}
			gn := mat.NormInf(g)
			scale := 1 + mat.NormInf(xn)
			if gn <= 1e-12*scale {
				converged = true
				break
			}
			if fac == nil || (it > 0 && it%newtonRefresh == 0) {
				var err error
				fac, err = sym.FactorCtx(ctx, ls, newtonMatrix(xn, u1, h))
				if err != nil {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					return nil, fmt.Errorf("ode: Newton Jacobian singular at t=%g: %w", t, err)
				}
			}
			// The Newton correction must stay abortable: SolveBatch would
			// strand a cancellation until the next step boundary on large
			// systems (the back-solve is O(n²) per iteration).
			if err := fac.SolveBatchCtx(ctx, newton); err != nil {
				return nil, err
			}
			mat.Axpy(-1, g, xn)
			if mat.NormInf(g) <= 1e-10*scale {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("ode: Newton failed to converge at t=%g", t)
		}
		copy(x, xn)
		res.Steps++
		res.T = append(res.T, t+h)
		res.Y = append(res.Y, sys.Output(x))
	}
	return res, nil
}

// RelErrSeries returns the pointwise relative error |yref − y|/max|yref|
// of output channel ch, with both results sampled on ref's time grid.
// Normalizing by the peak (rather than the pointwise value) matches how
// the paper's relative-error plots behave near zero crossings.
func RelErrSeries(ref, approx *Result, ch int) ([]float64, []float64) {
	peak := 0.0
	for _, y := range ref.Y {
		if a := math.Abs(y[ch]); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		peak = 1
	}
	ts := make([]float64, len(ref.T))
	es := make([]float64, len(ref.T))
	for k, t := range ref.T {
		ts[k] = t
		es[k] = math.Abs(ref.Y[k][ch]-approx.OutputAt(t, ch)) / peak
	}
	return ts, es
}

// MaxRelErr returns the maximum of RelErrSeries.
func MaxRelErr(ref, approx *Result, ch int) float64 {
	_, es := RelErrSeries(ref, approx, ch)
	m := 0.0
	for _, e := range es {
		if e > m {
			m = e
		}
	}
	return m
}
