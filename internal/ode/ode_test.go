package ode

import (
	"math"
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
)

// linearScalar builds dx/dt = a·x + u with output x.
func linearScalar(a float64) *qldae.System {
	return &qldae.System{
		N:  1,
		G1: mat.Diag([]float64{a}),
		B:  mat.FromRows([][]float64{{1}}),
		L:  mat.FromRows([][]float64{{1}}),
	}
}

func TestRK4ExponentialDecay(t *testing.T) {
	sys := linearScalar(-2)
	res := RK4(sys, []float64{1}, Const([]float64{0}), 1, 200)
	want := math.Exp(-2)
	got := res.Y[len(res.Y)-1][0]
	if math.Abs(got-want) > 1e-8 {
		t.Fatalf("RK4 decay: got %v want %v", got, want)
	}
}

func TestRK4ConvergenceOrder(t *testing.T) {
	// Halving h must cut the error by ~2⁴.
	sys := linearScalar(-1.3)
	exact := math.Exp(-1.3)
	err1 := math.Abs(RK4(sys, []float64{1}, Const([]float64{0}), 1, 10).Y[10][0] - exact)
	err2 := math.Abs(RK4(sys, []float64{1}, Const([]float64{0}), 1, 20).Y[20][0] - exact)
	ratio := err1 / err2
	if ratio < 12 || ratio > 20 {
		t.Fatalf("RK4 order ratio %v, want ≈16", ratio)
	}
}

func TestDopri5MatchesRK4(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 8
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 2*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.2*(2*rng.Float64()-1))
	}
	sys := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.5),
		G2: g2b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	u := func(t float64) []float64 { return []float64{0.5 * math.Sin(2*t) * math.Exp(-0.3*t)} }
	x0 := make([]float64, n)
	ref := RK4(sys, x0, u, 5, 20000)
	got, err := Dopri5(sys, x0, u, 5, 1e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Compare on the adaptive grid (the dense RK4 grid interpolates
	// accurately there; the reverse direction would measure linear
	// interpolation error across the large adaptive steps).
	if e := MaxRelErr(got, ref, 0); e > 1e-6 {
		t.Fatalf("Dopri5 vs RK4 error %g", e)
	}
	if got.Steps == 0 || got.T[len(got.T)-1] != 5 {
		t.Fatal("Dopri5 did not integrate to tEnd")
	}
}

func TestDopri5AdaptsToTolerance(t *testing.T) {
	sys := linearScalar(-1)
	loose, err := Dopri5(sys, []float64{1}, Const([]float64{0}), 2, 1e-3, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Dopri5(sys, []float64{1}, Const([]float64{0}), 2, 1e-10, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Steps <= loose.Steps {
		t.Fatalf("tolerance did not change step count: %d vs %d", loose.Steps, tight.Steps)
	}
}

func TestTrapezoidalStiffDecay(t *testing.T) {
	// λ = −10⁴: explicit RK4 with 100 steps over [0,1] would explode;
	// trapezoidal stays stable and accurate at the resolved scale.
	sys := linearScalar(-1e4)
	res, err := Trapezoidal(sys, []float64{1}, Const([]float64{0}), 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Y[len(res.Y)-1][0]
	if math.Abs(got) > 1e-3 {
		t.Fatalf("stiff decay not damped: %v", got)
	}
	if res.NewtonIters == 0 {
		t.Fatal("Newton iteration counter not incremented")
	}
}

func TestTrapezoidalMatchesRK4OnNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 6
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 2*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.3*(2*rng.Float64()-1))
	}
	sys := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.5),
		G2: g2b.Build(),
		D1: []*mat.Dense{mat.RandDense(rng, n, n).Scale(0.1)},
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	u := func(t float64) []float64 { return []float64{0.4 * math.Cos(3*t)} }
	x0 := make([]float64, n)
	ref := RK4(sys, x0, u, 3, 30000)
	got, err := Trapezoidal(sys, x0, u, 3, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxRelErr(ref, got, 0); e > 1e-4 {
		t.Fatalf("trapezoidal vs RK4 error %g", e)
	}
}

func TestOutputAtInterpolation(t *testing.T) {
	r := &Result{T: []float64{0, 1, 2}, Y: [][]float64{{0}, {2}, {6}}}
	if v := r.OutputAt(0.5, 0); math.Abs(v-1) > 1e-15 {
		t.Fatalf("interp: %v", v)
	}
	if v := r.OutputAt(1.5, 0); math.Abs(v-4) > 1e-15 {
		t.Fatalf("interp: %v", v)
	}
	if v := r.OutputAt(99, 0); v != 6 {
		t.Fatalf("extrapolation clamp: %v", v)
	}
}

func TestRelErrSeries(t *testing.T) {
	a := &Result{T: []float64{0, 1}, Y: [][]float64{{2}, {4}}}
	b := &Result{T: []float64{0, 1}, Y: [][]float64{{2}, {3}}}
	_, es := RelErrSeries(a, b, 0)
	if math.Abs(es[0]) > 1e-15 || math.Abs(es[1]-0.25) > 1e-15 {
		t.Fatalf("rel err series: %v", es)
	}
	if m := MaxRelErr(a, b, 0); math.Abs(m-0.25) > 1e-15 {
		t.Fatalf("max rel err: %v", m)
	}
}

// TestVolterraSecondOrderResponse validates the association theory in the
// time domain (Fig. 1 of the paper): for an impulse-like excitation of a
// D1-free quadratic system, the ε²-component of the response equals the
// diagonal kernel h2(t,t), whose Laplace transform is A2(H2). We compare
// the Richardson-extrapolated simulation against the explicit realization
// c̃2·e^{G̃2·t}·b̃2 evaluated by dense matrix exponential.
func TestVolterraSecondOrderResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 4
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 2*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.5*(2*rng.Float64()-1))
	}
	sys := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.5),
		G2: g2b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.Eye(n), // observe the full state
	}
	// Impulse of area ε through b ≡ initial condition x(0) = ε·b.
	const eps = 1e-3
	b := sys.B.Col(0)
	x0 := mat.CopyVec(b)
	mat.ScaleVec(eps, x0)
	tEnd := 1.2
	res := RK4(sys, x0, Const([]float64{0}), tEnd, 4000)
	// h1(t) = e^{G1·t}·b via Expm; h2(t,t) = c̃2·e^{G̃2·t}·b̃2.
	n2 := n + n*n
	gt2 := mat.NewDense(n2, n2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			gt2.Set(i, j, sys.G1.At(i, j))
		}
	}
	g2d := sys.G2.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n*n; j++ {
			gt2.Set(i, n+j, g2d.At(i, j))
		}
	}
	// ⊕²G1 block.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				// (G1⊗I)[(i,k),(j,k)] and (I⊗G1)[(k,i),(k,j)].
				gt2.Add(n+i*n+k, n+j*n+k, sys.G1.At(i, j))
				gt2.Add(n+k*n+i, n+k*n+j, sys.G1.At(i, j))
			}
		}
	}
	bt2 := make([]float64, n2)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			bt2[n+p*n+q] = b[p] * b[q]
		}
	}
	for _, tt := range []float64{0.3, 0.7, 1.1} {
		// Simulated second-order component.
		h1 := make([]float64, n)
		mat.Expm(sys.G1.Clone().Scale(tt)).MulVec(h1, b)
		x2 := make([]float64, n)
		for i := 0; i < n; i++ {
			x2[i] = (res.OutputAt(tt, i) - eps*h1[i]) / (eps * eps)
		}
		// Realization value.
		full := make([]float64, n2)
		mat.Expm(gt2.Clone().Scale(tt)).MulVec(full, bt2)
		want := full[:n]
		d := make([]float64, n)
		mat.SubVec(d, x2, want)
		if mat.Norm2(d) > 2e-2*(1+mat.Norm2(want)) {
			t.Fatalf("t=%v: simulated h2(t,t)=%v vs realization %v", tt, x2, want)
		}
	}
}
