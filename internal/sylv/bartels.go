package sylv

import (
	"avtmor/internal/mat"
	"avtmor/internal/schur"
)

// Full-matrix Bartels–Stewart wrappers. The Schur decompositions dominate
// the cost; callers that solve repeatedly against the same A (as the MOR
// pipeline does with G1) should cache them and use the Factored variants.

// Solve computes X with A·X + X·B = C for general square A, B.
func Solve(a, b, c *mat.Dense) (*mat.Dense, error) {
	sa, err := schur.Decompose(a)
	if err != nil {
		return nil, err
	}
	sb, err := schur.Decompose(b)
	if err != nil {
		return nil, err
	}
	return SolveFactored(sa, sb, c)
}

// SolveFactored solves A·X + X·B = C given the Schur forms of A and B.
func SolveFactored(sa, sb *schur.Schur, c *mat.Dense) (*mat.Dense, error) {
	// A = Qa·Ra·Qaᵀ, B = Qb·Rb·Qbᵀ ⇒ Ra·Y + Y·Rb = Qaᵀ·C·Qb, X = Qa·Y·Qbᵀ.
	ct := sa.Q.T().Mul(c).Mul(sb.Q)
	y, err := TrSylvN(sa.T, sb.T, 0, ct)
	if err != nil {
		return nil, err
	}
	return sa.Q.Mul(y).Mul(sb.Q.T()), nil
}

// SolveT computes X with A·X + X·Bᵀ = C.
func SolveT(a, b, c *mat.Dense) (*mat.Dense, error) {
	sa, err := schur.Decompose(a)
	if err != nil {
		return nil, err
	}
	sb, err := schur.Decompose(b)
	if err != nil {
		return nil, err
	}
	return SolveTFactored(sa, sb, c)
}

// SolveTFactored solves A·X + X·Bᵀ = C given Schur forms of A and B.
// Note Bᵀ = Qb·Rbᵀ·Qbᵀ, so the reduced equation is Ra·Y + Y·Rbᵀ = QaᵀCQb.
func SolveTFactored(sa, sb *schur.Schur, c *mat.Dense) (*mat.Dense, error) {
	ct := sa.Q.T().Mul(c).Mul(sb.Q)
	y, err := TrSylvT(sa.T, sb.T, 0, ct)
	if err != nil {
		return nil, err
	}
	return sa.Q.Mul(y).Mul(sb.Q.T()), nil
}

// Lyapunov solves A·X + X·Aᵀ = C with a single Schur decomposition.
func Lyapunov(a, c *mat.Dense) (*mat.Dense, error) {
	sa, err := schur.Decompose(a)
	if err != nil {
		return nil, err
	}
	return SolveTFactored(sa, sa, c)
}
