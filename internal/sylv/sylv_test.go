package sylv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"avtmor/internal/mat"
	"avtmor/internal/schur"
)

// randQuasiTri produces an upper quasi-triangular matrix with a random
// mix of 1×1 and standardized 2×2 diagonal blocks, stable diagonal.
func randQuasiTri(rng *rand.Rand, n int) *mat.Dense {
	t := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.Set(i, j, 2*rng.Float64()-1)
		}
	}
	for i := 0; i < n; {
		if i+1 < n && rng.Float64() < 0.4 {
			// Standardized 2×2 block: [[α, β],[γ, α]], βγ < 0.
			alpha := -0.5 - rng.Float64()
			beta := 0.3 + rng.Float64()
			gamma := -(0.3 + rng.Float64())
			t.Set(i, i, alpha)
			t.Set(i+1, i+1, alpha)
			t.Set(i, i+1, beta)
			t.Set(i+1, i, gamma)
			i += 2
		} else {
			t.Set(i, i, -0.5-rng.Float64())
			i++
		}
	}
	return t
}

func residualN(a, b, x, c *mat.Dense, sigma float64) float64 {
	r := a.Mul(x).Plus(x.Mul(b)).AddScaled(sigma, x).Sub(c)
	return r.MaxAbs()
}

func residualT(a, b, x, c *mat.Dense, sigma float64) float64 {
	r := a.Mul(x).Plus(x.Mul(b.T())).AddScaled(sigma, x).Sub(c)
	return r.MaxAbs()
}

func TestTrSylvNRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randQuasiTri(rng, m)
		b := randQuasiTri(rng, n)
		c := mat.RandDense(rng, m, n)
		x, err := TrSylvN(a, b, 0, c)
		if err != nil {
			return false
		}
		return residualN(a, b, x, c, 0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTrSylvTRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randQuasiTri(rng, m)
		b := randQuasiTri(rng, n)
		c := mat.RandDense(rng, m, n)
		x, err := TrSylvT(a, b, 0, c)
		if err != nil {
			return false
		}
		return residualT(a, b, x, c, 0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTrSylvShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randQuasiTri(rng, 9)
	b := randQuasiTri(rng, 7)
	c := mat.RandDense(rng, 9, 7)
	sigma := -0.37
	x, err := TrSylvN(a, b, sigma, c)
	if err != nil {
		t.Fatal(err)
	}
	if r := residualN(a, b, x, c, sigma); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
	xt, err := TrSylvT(a, b, sigma, c)
	if err != nil {
		t.Fatal(err)
	}
	if r := residualT(a, b, xt, c, sigma); r > 1e-10 {
		t.Fatalf("T residual %g", r)
	}
}

func TestTrSylvSingularDetected(t *testing.T) {
	// A = [1], B = [-1]: λ(A)+λ(B) = 0 exactly.
	a := mat.Diag([]float64{1})
	b := mat.Diag([]float64{-1})
	c := mat.Diag([]float64{1})
	if _, err := TrSylvN(a, b, 0, c); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestTrSylvDiagonalKnown(t *testing.T) {
	// Diagonal A, B: X_ij = C_ij / (a_i + b_j).
	a := mat.Diag([]float64{1, 2})
	b := mat.Diag([]float64{3, 4})
	c := mat.FromRows([][]float64{{4, 5}, {5, 6}})
	x, err := TrSylvN(a, b, 0, c)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	if !x.Equalish(want, 1e-14) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveGeneral(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(15), 2+rng.Intn(15)
		a := mat.RandStable(rng, m, 0.2)
		b := mat.RandStable(rng, n, 0.2).Scale(-1) // eigenvalues in right half plane
		// λ(A) < 0 and λ(B) > 0 would collide; flip B back to keep
		// λi(A)+λj(B) < 0 bounded away from zero.
		b = b.Scale(-1)
		c := mat.RandDense(rng, m, n)
		x, err := Solve(a, b, c)
		if err != nil {
			return false
		}
		return residualN(a, b, x, c, 0) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTGeneral(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(15), 2+rng.Intn(15)
		a := mat.RandStable(rng, m, 0.2)
		b := mat.RandStable(rng, n, 0.2)
		c := mat.RandDense(rng, m, n)
		x, err := SolveT(a, b, c)
		if err != nil {
			return false
		}
		return residualT(a, b, x, c, 0) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLyapunov(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.RandStable(rng, 20, 0.3)
	c := mat.RandDense(rng, 20, 20)
	x, err := Lyapunov(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if r := residualT(a, a, x, c, 0); r > 1e-8 {
		t.Fatalf("Lyapunov residual %g", r)
	}
}

func TestSolveFactoredReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandStable(rng, 12, 0.3)
	b := mat.RandStable(rng, 8, 0.3)
	sa, err := schur.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := schur.Decompose(b)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		c := mat.RandDense(rng, 12, 8)
		x, err := SolveFactored(sa, sb, c)
		if err != nil {
			t.Fatal(err)
		}
		if r := residualN(a, b, x, c, 0); r > 1e-8 {
			t.Fatalf("trial %d residual %g", trial, r)
		}
	}
}

func TestTrSylvNCComplex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randQuasiTri(rng, m)
		b := randQuasiTri(rng, n)
		c := mat.NewCDense(m, n)
		for i := range c.A {
			c.A[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
		sigma := complex(0.2*rng.Float64(), 1.5*rng.Float64())
		x, err := TrSylvNC(a, b, sigma, c)
		if err != nil {
			return false
		}
		// Residual A·X + X·B + σX − C.
		r := a.Complex().Mul(x)
		xb := x.Mul(b.Complex())
		for i := range r.A {
			r.A[i] += xb.A[i] + sigma*x.A[i] - c.A[i]
		}
		return r.MaxAbs() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTrSylvTCComplex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randQuasiTri(rng, m)
		b := randQuasiTri(rng, n)
		c := mat.NewCDense(m, n)
		for i := range c.A {
			c.A[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
		sigma := complex(0.3*rng.Float64(), -1.2*rng.Float64())
		x, err := TrSylvTC(a, b, sigma, c)
		if err != nil {
			return false
		}
		r := a.Complex().Mul(x)
		xbt := x.Mul(b.T().Complex())
		for i := range r.A {
			r.A[i] += xbt.A[i] + sigma*x.A[i] - c.A[i]
		}
		return r.MaxAbs() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComplexMatchesRealOnRealData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randQuasiTri(rng, 8)
	b := randQuasiTri(rng, 6)
	c := mat.RandDense(rng, 8, 6)
	xr, err := TrSylvN(a, b, 0.1, c)
	if err != nil {
		t.Fatal(err)
	}
	xc, err := TrSylvNC(a, b, 0.1, c.Complex())
	if err != nil {
		t.Fatal(err)
	}
	for i := range xr.A {
		if d := xr.A[i] - real(xc.A[i]); d > 1e-12 || d < -1e-12 || imag(xc.A[i]) > 1e-12 || imag(xc.A[i]) < -1e-12 {
			t.Fatalf("real/complex mismatch at %d: %v vs %v", i, xr.A[i], xc.A[i])
		}
	}
}

func BenchmarkTrSylvT100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randQuasiTri(rng, 100)
	bm := randQuasiTri(rng, 100)
	c := mat.RandDense(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrSylvT(a, bm, 0, c); err != nil {
			b.Fatal(err)
		}
	}
}
