// Package sylv solves Sylvester equations
//
//	A·X + X·B  + σ·X = C      (variant N)
//	A·X + X·Bᵀ + σ·X = C      (variant T)
//
// for A, B upper quasi-triangular (real Schur factors), by the classic
// block back-substitution of Bartels & Stewart (the dtrsyl algorithm),
// plus full-matrix wrappers that compute the Schur forms first.
//
// This is the workhorse behind the paper's structured solves: the
// Kronecker-sum resolvents of Theorem 1, the Sylvester decoupling
// G1·Π + G2 = Π·(⊕²G1) of Eq. (18), and the quasi-triangular
// back-substitution advocated in §2.3 all reduce to these kernels.
package sylv

import (
	"errors"
	"fmt"

	"avtmor/internal/mat"
)

// ErrSingular indicates the equation is (numerically) singular: some
// eigenvalue pairing λi(A) + λj(B) + σ vanishes.
var ErrSingular = errors.New("sylv: singular Sylvester equation (λi(A)+λj(B)+σ ≈ 0)")

// blocks returns the quasi-triangular diagonal block partition of t.
func blocks(t *mat.Dense) [][2]int {
	var out [][2]int
	n := t.R
	for i := 0; i < n; {
		if i+1 < n && t.At(i+1, i) != 0 {
			out = append(out, [2]int{i, 2})
			i += 2
		} else {
			out = append(out, [2]int{i, 1})
			i++
		}
	}
	return out
}

// TrSylvN solves A·X + X·B + σ·X = C for upper quasi-triangular A (m×m)
// and B (n×n), real σ, dense C (m×n). C is not modified.
func TrSylvN(a, b *mat.Dense, sigma float64, c *mat.Dense) (*mat.Dense, error) {
	return trSylvReal(a, b, sigma, c, false)
}

// TrSylvT solves A·X + X·Bᵀ + σ·X = C (same shapes as TrSylvN).
func TrSylvT(a, b *mat.Dense, sigma float64, c *mat.Dense) (*mat.Dense, error) {
	return trSylvReal(a, b, sigma, c, true)
}

func trSylvReal(a, b *mat.Dense, sigma float64, c *mat.Dense, transB bool) (*mat.Dense, error) {
	m, n := a.R, b.R
	if a.C != m || b.C != n || c.R != m || c.C != n {
		panic(fmt.Sprintf("sylv: shape mismatch A %d×%d B %d×%d C %d×%d", a.R, a.C, b.R, b.C, c.R, c.C))
	}
	x := mat.NewDense(m, n)
	ab := blocks(a)
	bb := blocks(b)
	// Column-block processing order depends on the B variant.
	lIdx := make([]int, len(bb))
	for i := range lIdx {
		if transB {
			lIdx[i] = len(bb) - 1 - i // right to left
		} else {
			lIdx[i] = i // left to right
		}
	}
	var f [4]float64
	for _, li := range lIdx {
		l0, ln := bb[li][0], bb[li][1]
		for ki := len(ab) - 1; ki >= 0; ki-- {
			k0, kn := ab[ki][0], ab[ki][1]
			// RHS block F = C_kl − Σ_{j>k} A_kj X_jl − (X·B or X·Bᵀ terms).
			for p := 0; p < kn; p++ {
				for q := 0; q < ln; q++ {
					s := c.At(k0+p, l0+q)
					// Rows below the k block of A (A upper: columns j > k block).
					for j := k0 + kn; j < m; j++ {
						s -= a.At(k0+p, j) * x.At(j, l0+q)
					}
					if transB {
						// (X Bᵀ)_{k,l} = Σ_{i>l-block} X_ki·B_{l i} over processed cols.
						for i := l0 + ln; i < n; i++ {
							s -= x.At(k0+p, i) * b.At(l0+q, i)
						}
					} else {
						// (X B)_{k,l} = Σ_{i<l-block} X_ki·B_{i l}.
						for i := 0; i < l0; i++ {
							s -= x.At(k0+p, i) * b.At(i, l0+q)
						}
					}
					f[p*ln+q] = s
				}
			}
			if err := solveSmallReal(a, b, k0, kn, l0, ln, sigma, transB, f[:kn*ln], x); err != nil {
				return nil, err
			}
		}
	}
	return x, nil
}

// solveSmallReal solves the ≤2×2 by ≤2×2 block equation
// A_kk·Xb + Xb·Bop + σ·Xb = F, with Bop = B_ll or B_llᵀ, and writes the
// block into x.
func solveSmallReal(a, b *mat.Dense, k0, kn, l0, ln int, sigma float64, transB bool, f []float64, x *mat.Dense) error {
	sz := kn * ln
	var sys [16]float64
	// Unknown ordering: x_{pq} at index p*ln+q.
	for p := 0; p < kn; p++ {
		for q := 0; q < ln; q++ {
			row := (p*ln + q) * sz
			for r := 0; r < kn; r++ {
				for s := 0; s < ln; s++ {
					v := 0.0
					if s == q {
						v += a.At(k0+p, k0+r)
					}
					if r == p {
						if transB {
							v += b.At(l0+q, l0+s) // (Bᵀ)_{sq} = B_{qs}
						} else {
							v += b.At(l0+s, l0+q)
						}
					}
					if r == p && s == q {
						v += sigma
					}
					sys[row+r*ln+s] = v
				}
			}
		}
	}
	var sol [4]float64
	if !gauss(sys[:sz*sz], f, sol[:sz], sz) {
		return ErrSingular
	}
	for p := 0; p < kn; p++ {
		for q := 0; q < ln; q++ {
			x.Set(k0+p, l0+q, sol[p*ln+q])
		}
	}
	return nil
}

// gauss solves an n×n (n ≤ 4) dense system in place with partial pivoting.
func gauss(a []float64, b []float64, x []float64, n int) bool {
	var aa [16]float64
	var bb [4]float64
	copy(aa[:], a[:n*n])
	copy(bb[:], b[:n])
	for k := 0; k < n; k++ {
		p, best := k, abs(aa[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := abs(aa[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return false
		}
		if p != k {
			for j := 0; j < n; j++ {
				aa[p*n+j], aa[k*n+j] = aa[k*n+j], aa[p*n+j]
			}
			bb[p], bb[k] = bb[k], bb[p]
		}
		inv := 1 / aa[k*n+k]
		for i := k + 1; i < n; i++ {
			l := aa[i*n+k] * inv
			if l == 0 {
				continue
			}
			for j := k; j < n; j++ {
				aa[i*n+j] -= l * aa[k*n+j]
			}
			bb[i] -= l * bb[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := bb[i]
		for j := i + 1; j < n; j++ {
			s -= aa[i*n+j] * x[j]
		}
		x[i] = s / aa[i*n+i]
	}
	return true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
