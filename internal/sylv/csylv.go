package sylv

import (
	"fmt"
	"math/cmplx"

	"avtmor/internal/mat"
)

// Complex-shift variants. A and B stay real quasi-triangular (they come
// from one cached real Schur decomposition); the shift σ and the
// right-hand side are complex. These appear whenever a 2×2 Schur block
// (complex eigenvalue pair) is complexified into a single shifted solve,
// and when evaluating transfer functions at s = jω.

// TrSylvNC solves A·X + X·B + σ·X = C with complex σ and C.
func TrSylvNC(a, b *mat.Dense, sigma complex128, c *mat.CDense) (*mat.CDense, error) {
	return trSylvCplx(a, b, sigma, c, false)
}

// TrSylvTC solves A·X + X·Bᵀ + σ·X = C with complex σ and C.
func TrSylvTC(a, b *mat.Dense, sigma complex128, c *mat.CDense) (*mat.CDense, error) {
	return trSylvCplx(a, b, sigma, c, true)
}

func trSylvCplx(a, b *mat.Dense, sigma complex128, c *mat.CDense, transB bool) (*mat.CDense, error) {
	m, n := a.R, b.R
	if a.C != m || b.C != n || c.R != m || c.C != n {
		panic(fmt.Sprintf("sylv: shape mismatch A %d×%d B %d×%d C %d×%d", a.R, a.C, b.R, b.C, c.R, c.C))
	}
	x := mat.NewCDense(m, n)
	ab := blocks(a)
	bb := blocks(b)
	lIdx := make([]int, len(bb))
	for i := range lIdx {
		if transB {
			lIdx[i] = len(bb) - 1 - i
		} else {
			lIdx[i] = i
		}
	}
	var f [4]complex128
	for _, li := range lIdx {
		l0, ln := bb[li][0], bb[li][1]
		for ki := len(ab) - 1; ki >= 0; ki-- {
			k0, kn := ab[ki][0], ab[ki][1]
			for p := 0; p < kn; p++ {
				for q := 0; q < ln; q++ {
					s := c.At(k0+p, l0+q)
					for j := k0 + kn; j < m; j++ {
						s -= complex(a.At(k0+p, j), 0) * x.At(j, l0+q)
					}
					if transB {
						for i := l0 + ln; i < n; i++ {
							s -= x.At(k0+p, i) * complex(b.At(l0+q, i), 0)
						}
					} else {
						for i := 0; i < l0; i++ {
							s -= x.At(k0+p, i) * complex(b.At(i, l0+q), 0)
						}
					}
					f[p*ln+q] = s
				}
			}
			if err := solveSmallCplx(a, b, k0, kn, l0, ln, sigma, transB, f[:kn*ln], x); err != nil {
				return nil, err
			}
		}
	}
	return x, nil
}

func solveSmallCplx(a, b *mat.Dense, k0, kn, l0, ln int, sigma complex128, transB bool, f []complex128, x *mat.CDense) error {
	sz := kn * ln
	var sys [16]complex128
	for p := 0; p < kn; p++ {
		for q := 0; q < ln; q++ {
			row := (p*ln + q) * sz
			for r := 0; r < kn; r++ {
				for s := 0; s < ln; s++ {
					var v complex128
					if s == q {
						v += complex(a.At(k0+p, k0+r), 0)
					}
					if r == p {
						if transB {
							v += complex(b.At(l0+q, l0+s), 0)
						} else {
							v += complex(b.At(l0+s, l0+q), 0)
						}
					}
					if r == p && s == q {
						v += sigma
					}
					sys[row+r*ln+s] = v
				}
			}
		}
	}
	var sol [4]complex128
	if !gaussC(sys[:sz*sz], f, sol[:sz], sz) {
		return ErrSingular
	}
	for p := 0; p < kn; p++ {
		for q := 0; q < ln; q++ {
			x.Set(k0+p, l0+q, sol[p*ln+q])
		}
	}
	return nil
}

func gaussC(a []complex128, b []complex128, x []complex128, n int) bool {
	var aa [16]complex128
	var bb [4]complex128
	copy(aa[:], a[:n*n])
	copy(bb[:], b[:n])
	for k := 0; k < n; k++ {
		p, best := k, cmplx.Abs(aa[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(aa[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return false
		}
		if p != k {
			for j := 0; j < n; j++ {
				aa[p*n+j], aa[k*n+j] = aa[k*n+j], aa[p*n+j]
			}
			bb[p], bb[k] = bb[k], bb[p]
		}
		inv := 1 / aa[k*n+k]
		for i := k + 1; i < n; i++ {
			l := aa[i*n+k] * inv
			if l == 0 {
				continue
			}
			for j := k; j < n; j++ {
				aa[i*n+j] -= l * aa[k*n+j]
			}
			bb[i] -= l * bb[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := bb[i]
		for j := i + 1; j < n; j++ {
			s -= aa[i*n+j] * x[j]
		}
		x[i] = s / aa[i*n+i]
	}
	return true
}
