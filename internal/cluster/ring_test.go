package cluster

import (
	"fmt"
	"math"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like the serve tier's placement keys: hex digests.
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

// TestRingDeterministic: placement is a pure function of the peer
// list — independent of list order, ":port" vs "127.0.0.1:port"
// spelling, duplicates, and of which process builds the ring.
func TestRingDeterministic(t *testing.T) {
	a := New([]string{"127.0.0.1:8081", "127.0.0.1:8082", "127.0.0.1:8083"}, 0)
	b := New([]string{":8083", " 127.0.0.1:8082", ":8081", ":8081"}, 0)
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("node counts %d, %d; want 3", a.Len(), b.Len())
	}
	for i, n := range a.Nodes() {
		if b.Nodes()[i] != n {
			t.Fatalf("normalized node lists differ: %v vs %v", a.Nodes(), b.Nodes())
		}
	}
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s differs across equivalent rings: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
	// Rebuilding the identical ring moves nothing.
	c := New(a.Nodes(), 0)
	for _, k := range keys(500) {
		if a.Owner(k) != c.Owner(k) {
			t.Fatal("rebuild of the same node list moved a key")
		}
	}
}

// TestRingBalance: with the default virtual-node count, no node of a
// 4-node ring strays far from its fair share of a large key set.
func TestRingBalance(t *testing.T) {
	nodes := []string{":8081", ":8082", ":8083", ":8084"}
	r := New(nodes, 0)
	counts := map[string]int{}
	ks := keys(20000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	fair := float64(len(ks)) / float64(len(nodes))
	for n, c := range counts {
		if dev := math.Abs(float64(c)-fair) / fair; dev > 0.35 {
			t.Fatalf("node %s owns %d of %d keys (%.0f%% off fair share %g)", n, c, len(ks), dev*100, fair)
		}
	}
	if len(counts) != len(nodes) {
		t.Fatalf("only %d of %d nodes own any keys", len(counts), len(nodes))
	}
}

// TestRingStability: removing one node only reassigns the keys it
// owned; everything placed on a surviving node stays put. This is the
// property that makes owner-down fallback cheap — the rest of the
// fleet's cache and store placement is undisturbed.
func TestRingStability(t *testing.T) {
	full := New([]string{":8081", ":8082", ":8083", ":8084"}, 0)
	reduced := New([]string{":8081", ":8082", ":8084"}, 0)
	moved, kept := 0, 0
	for _, k := range keys(5000) {
		was := full.Owner(k)
		now := reduced.Owner(k)
		if was == "127.0.0.1:8083" {
			if now == "127.0.0.1:8083" {
				t.Fatal("removed node still owns a key")
			}
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %s moved %s -> %s although its owner survived", k, was, now)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved %d, kept %d", moved, kept)
	}
}

// TestRingEdgeCases: empty and single-node rings, Contains, Normalize.
func TestRingEdgeCases(t *testing.T) {
	empty := New(nil, 0)
	if empty.Owner("anything") != "" || empty.Len() != 0 {
		t.Fatal("empty ring must own nothing")
	}
	solo := New([]string{":9000"}, 0)
	for _, k := range keys(50) {
		if solo.Owner(k) != "127.0.0.1:9000" {
			t.Fatal("single-node ring must own everything")
		}
	}
	r := New([]string{":8081", "10.0.0.2:8082"}, 0)
	if !r.Contains("127.0.0.1:8081") || !r.Contains(":8081") || r.Contains(":8082") {
		t.Fatalf("Contains over %v misbehaves", r.Nodes())
	}
	for in, want := range map[string]string{
		":8081":          "127.0.0.1:8081",
		" 10.1.2.3:80 ":  "10.1.2.3:80",
		"":               "",
		"   ":            "",
		"host.name:8080": "host.name:8080",
	} {
		if got := Normalize(in); got != want {
			t.Fatalf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

// BenchmarkRingOwner measures one placement decision on a 3-node
// default ring — the per-request cost the serve tier pays to route.
// Recorded in BENCH_solver.json.
func BenchmarkRingOwner(b *testing.B) {
	r := New([]string{":8081", ":8082", ":8083"}, 0)
	ks := keys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owner(ks[i%len(ks)]) == "" {
			b.Fatal("empty owner")
		}
	}
}
