// Package cluster places keyed artifacts on a static set of peer
// nodes with a consistent-hash ring, so a fleet of avtmord daemons
// divides the ROM key space instead of every node recomputing and
// storing every artifact. Each node is projected onto the ring at many
// virtual points (SHA-256 of "node#vnode"); a key is owned by the node
// whose virtual point is the first one clockwise of the key's hash.
// Placement is a pure function of (peer list, key): every node with
// the same peer list computes the same owner with no coordination, no
// gossip, and no shared state — exactly the property a forwarding tier
// needs. Virtual points keep the load split even (~128 points per node
// bound the imbalance to a few percent), and removing one node only
// reassigns that node's arcs instead of reshuffling the whole space.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// DefaultVirtualNodes is the per-node virtual point count used when
// New is given n <= 0. 128 points per node keeps the expected load
// imbalance of a handful of nodes within a few percent while the ring
// stays small enough to rebuild instantly.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a static node list.
// It is safe for concurrent use.
type Ring struct {
	nodes  []string // sorted, deduplicated
	points []point  // sorted by hash
}

// point is one virtual node: a position on the ring owned by a node.
type point struct {
	hash uint64
	node string
}

// New builds a ring with vnodes virtual points per node (vnodes <= 0
// selects DefaultVirtualNodes). Node addresses are normalized with
// Normalize, deduplicated, and sorted, so every peer that is handed
// the same list — in any order, with or without explicit loopback
// hosts — builds the identical ring. An empty node list yields a ring
// that owns nothing (Owner returns "").
func New(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		n = Normalize(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	r.points = make([]point, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(n + "#" + strconv.Itoa(v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between virtual points is vanishingly
		// rare; break the tie by node name so the winner is still
		// deterministic across processes.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the normalized, sorted node list the ring was built
// over. The slice is shared; callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Contains reports whether node (after normalization) is on the ring.
func (r *Ring) Contains(node string) bool {
	node = Normalize(node)
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owner returns the node that owns key: the first virtual point
// clockwise of the key's hash. It returns "" only on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Owners returns the first n distinct nodes clockwise of the key's
// hash — the key's replica set, primary first. Fewer than n nodes on
// the ring returns them all; an empty ring returns nil. The returned
// slice is freshly allocated.
//
// Because deleting one node's virtual points never reorders the
// remaining points, the clockwise distinct-node sequence of the
// surviving nodes is unchanged when a node leaves: every key's replica
// set after a departure is its old (n+1)-set with the departed node
// struck out — the property that lets anti-entropy repair a crash by
// copying only the dead node's arcs.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	for i, walked := r.search(key), 0; walked < len(r.points) && len(out) < n; walked++ {
		node := r.points[i].node
		if !slices.Contains(out, node) { // n is small: linear beats a set
			out = append(out, node)
		}
		if i++; i == len(r.points) {
			i = 0 // wrap past twelve o'clock
		}
	}
	return out
}

// search locates the first virtual point clockwise of the key's hash.
// The ring must be non-empty.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past twelve o'clock
	}
	return i
}

// Normalize canonicalizes a node address so that the strings peers
// exchange in flags ("-peers :8081,127.0.0.1:8082") hash identically
// on every node: a bare ":port" gains the loopback host it implies.
// Whitespace-only input normalizes to "". Hosts are otherwise
// compared textually — no DNS resolution — so a fleet must spell each
// peer identically everywhere ("localhost:8081" and "127.0.0.1:8081"
// are different ring nodes).
func Normalize(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return ""
	}
	if addr[0] == ':' {
		return "127.0.0.1" + addr
	}
	return addr
}

// hash64 is the ring's placement hash: the first 8 bytes of SHA-256.
// Cryptographic diffusion keeps virtual points uniform even for the
// highly structured inputs we feed it (hex digests, "host:port#k"),
// and the function is stable across Go versions and processes —
// unlike maphash — so placement never shifts under a rolling upgrade.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// String renders a small diagnostic summary.
func (r *Ring) String() string {
	return fmt.Sprintf("cluster.Ring{%d nodes, %d points}", len(r.nodes), len(r.points))
}
