package cluster

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// TestRingOwnersProperties is the replica-placement contract of
// Owners(key, r): r distinct nodes, primary agreeing with Owner,
// determinism across peer-list orderings, and subsequence stability
// under node removal — the property the anti-entropy sweep leans on.
func TestRingOwnersProperties(t *testing.T) {
	nodes := []string{":8081", ":8082", ":8083", ":8084", ":8085"}
	ring := New(nodes, 0)

	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}

	for _, key := range keys {
		for r := 1; r <= len(nodes)+2; r++ {
			owners := ring.Owners(key, r)
			want := min(r, len(nodes))
			if len(owners) != want {
				t.Fatalf("Owners(%q, %d) returned %d nodes, want %d", key, r, len(owners), want)
			}
			seen := map[string]bool{}
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("Owners(%q, %d) repeats node %s: %v", key, r, o, owners)
				}
				seen[o] = true
				if !ring.Contains(o) {
					t.Fatalf("Owners(%q, %d) invented node %s", key, r, o)
				}
			}
			// The r-set extends the (r-1)-set: replica sets nest, so
			// raising -replicas only adds copies, never moves them.
			if r > 1 {
				prev := ring.Owners(key, r-1)
				if !slices.Equal(owners[:len(prev)], prev) {
					t.Fatalf("Owners(%q, %d)=%v does not extend Owners(%q, %d)=%v", key, r, owners, key, r-1, prev)
				}
			}
		}
		if owner, first := ring.Owner(key), ring.Owners(key, 1)[0]; owner != first {
			t.Fatalf("Owner(%q)=%s but Owners(...,1)=[%s]", key, owner, first)
		}
	}
}

// TestRingOwnersDeterministic: every node handed the same peer list —
// in any order — computes the same replica sets.
func TestRingOwnersDeterministic(t *testing.T) {
	nodes := []string{":8081", ":8082", ":8083", ":8084"}
	ring := New(nodes, 0)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := slices.Clone(nodes)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		other := New(shuffled, 0)
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("key-%d", i)
			if a, b := ring.Owners(key, 3), other.Owners(key, 3); !slices.Equal(a, b) {
				t.Fatalf("shuffled peer list changed Owners(%q, 3): %v vs %v", key, a, b)
			}
		}
	}
}

// TestRingOwnersStability: removing one node strikes it from every
// replica set without reordering the survivors — Owners after the
// removal equals Owners(r+1) before it with the dead node deleted.
// This is what bounds a crash's blast radius to the dead node's arcs.
func TestRingOwnersStability(t *testing.T) {
	nodes := []string{":8081", ":8082", ":8083", ":8084", ":8085"}
	const r = 2
	before := New(nodes, 0)
	for _, removed := range nodes {
		var rest []string
		for _, n := range nodes {
			if n != removed {
				rest = append(rest, n)
			}
		}
		after := New(rest, 0)
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("key-%d", i)
			wide := before.Owners(key, r+1)
			want := make([]string, 0, r)
			for _, n := range wide {
				if n != Normalize(removed) && len(want) < r {
					want = append(want, n)
				}
			}
			if got := after.Owners(key, r); !slices.Equal(got, want) {
				t.Fatalf("removing %s moved Owners(%q, %d): got %v, want %v (pre-removal %v)",
					removed, key, r, got, want, wide)
			}
		}
	}
}

func BenchmarkRingOwners(b *testing.B) {
	ring := New([]string{":8081", ":8082", ":8083"}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ring.Owners("0123456789abcdef0123456789abcdef", 2)
	}
}
