package sparse

// Kernels for the Kronecker-power couplings of the QLDAE: a row of
// G2 ∈ R^{n×n²} indexes column (p·n+q) ↔ the monomial x_p·x_q, matching
// package kron's (x⊗x)[p·n+q] = x_p·x_q convention; G3 ∈ R^{n×n³} indexes
// (p·n+q)·n+r ↔ x_p·x_q·x_r.

// quadIndex decodes and caches the (p, q) factor indices of every
// nonzero for Kronecker-square columns (c = p·n + q). Decoding once
// removes the per-nonzero integer division from the simulation hot loop.
func (m *CSR) quadIndex(n int) {
	if m.qp != nil {
		return
	}
	m.qp = make([]int32, len(m.ColIdx))
	m.qq = make([]int32, len(m.ColIdx))
	for k, c := range m.ColIdx {
		m.qp[k] = int32(c / n)
		m.qq[k] = int32(c % n)
	}
}

// cubeIndex is the Kronecker-cube analogue of quadIndex.
func (m *CSR) cubeIndex(n int) {
	if m.cp != nil {
		return
	}
	m.cp = make([]int32, len(m.ColIdx))
	m.cq = make([]int32, len(m.ColIdx))
	m.cr = make([]int32, len(m.ColIdx))
	for k, c := range m.ColIdx {
		m.cp[k] = int32(c / (n * n))
		m.cq[k] = int32((c / n) % n)
		m.cr[k] = int32(c % n)
	}
}

// QuadApply computes dst = G2·(x⊗y) without forming x⊗y.
// n = len(x) = len(y) must satisfy m.Cols == n².
func (m *CSR) QuadApply(dst, x, y []float64) {
	n := len(x)
	if len(y) != n || m.Cols != n*n || len(dst) != m.Rows {
		panic("sparse: QuadApply length mismatch")
	}
	m.quadIndex(n)
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.qp[k]] * y[m.qq[k]]
		}
		dst[r] = s
	}
}

// QuadAddApply computes dst += a·G2·(x⊗y).
func (m *CSR) QuadAddApply(dst []float64, a float64, x, y []float64) {
	n := len(x)
	if len(y) != n || m.Cols != n*n || len(dst) != m.Rows {
		panic("sparse: QuadAddApply length mismatch")
	}
	m.quadIndex(n)
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.qp[k]] * y[m.qq[k]]
		}
		dst[r] += a * s
	}
}

// QuadJacobian accumulates ∂/∂x [G2·(x⊗x)] = G2·(I⊗x + x⊗I) into dst
// (dense n×n row-major, dst[i*n+j] += ...), scaled by a.
func (m *CSR) QuadJacobian(dst []float64, a float64, x []float64) {
	n := len(x)
	if m.Cols != n*n || len(dst) != m.Rows*n {
		panic("sparse: QuadJacobian length mismatch")
	}
	m.quadIndex(n)
	for r := 0; r < m.Rows; r++ {
		row := dst[r*n : (r+1)*n]
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			p, q := m.qp[k], m.qq[k]
			v := a * m.Val[k]
			row[p] += v * x[q]
			row[q] += v * x[p]
		}
	}
}

// QuadJacobianVisit reports each entry of a·∂/∂x [G2·(x⊗x)] through
// visit(row, col, val) — the triplet form the sparse Newton assembly of
// package ode consumes instead of a dense n×n scatter.
func (m *CSR) QuadJacobianVisit(a float64, x []float64, visit func(r, c int, v float64)) {
	n := len(x)
	if m.Cols != n*n {
		panic("sparse: QuadJacobianVisit length mismatch")
	}
	m.quadIndex(n)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			p, q := m.qp[k], m.qq[k]
			v := a * m.Val[k]
			visit(r, int(p), v*x[q])
			visit(r, int(q), v*x[p])
		}
	}
}

// CubeApply computes dst = G3·(x⊗x⊗x) without forming the Kronecker cube.
func (m *CSR) CubeApply(dst, x []float64) {
	n := len(x)
	if m.Cols != n*n*n || len(dst) != m.Rows {
		panic("sparse: CubeApply length mismatch")
	}
	m.cubeIndex(n)
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.cp[k]] * x[m.cq[k]] * x[m.cr[k]]
		}
		dst[r] = s
	}
}

// CubeJacobian accumulates a·∂/∂x [G3·(x⊗x⊗x)] into dst (dense n×n
// row-major): the derivative of x_p·x_q·x_r contributes to columns p, q, r.
func (m *CSR) CubeJacobian(dst []float64, a float64, x []float64) {
	n := len(x)
	if m.Cols != n*n*n || len(dst) != m.Rows*n {
		panic("sparse: CubeJacobian length mismatch")
	}
	m.cubeIndex(n)
	for r := 0; r < m.Rows; r++ {
		row := dst[r*n : (r+1)*n]
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			p, q, t := m.cp[k], m.cq[k], m.cr[k]
			v := a * m.Val[k]
			row[p] += v * x[q] * x[t]
			row[q] += v * x[p] * x[t]
			row[t] += v * x[p] * x[q]
		}
	}
}

// CubeJacobianVisit is the triplet-form counterpart of CubeJacobian.
func (m *CSR) CubeJacobianVisit(a float64, x []float64, visit func(r, c int, v float64)) {
	n := len(x)
	if m.Cols != n*n*n {
		panic("sparse: CubeJacobianVisit length mismatch")
	}
	m.cubeIndex(n)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			p, q, t := m.cp[k], m.cq[k], m.cr[k]
			v := a * m.Val[k]
			visit(r, int(p), v*x[q]*x[t])
			visit(r, int(q), v*x[p]*x[t])
			visit(r, int(t), v*x[p]*x[q])
		}
	}
}

// QuadApplyC computes dst = G2·(x⊗y) for complex vectors (the transfer
// function and oracle paths evaluate at complex frequencies).
func (m *CSR) QuadApplyC(dst, x, y []complex128) {
	n := len(x)
	if len(y) != n || m.Cols != n*n || len(dst) != m.Rows {
		panic("sparse: QuadApplyC length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		var s complex128
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			s += complex(m.Val[k], 0) * x[c/n] * y[c%n]
		}
		dst[r] = s
	}
}

// CubeApplyC computes dst = G3·(x⊗y⊗z) for complex vectors.
func (m *CSR) CubeApplyC(dst, x, y, z []complex128) {
	n := len(x)
	if len(y) != n || len(z) != n || m.Cols != n*n*n || len(dst) != m.Rows {
		panic("sparse: CubeApplyC length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		var s complex128
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			s += complex(m.Val[k], 0) * x[c/(n*n)] * y[(c/n)%n] * z[c%n]
		}
		dst[r] = s
	}
}

// TriApply computes dst = G3·(x⊗y⊗z) for distinct real vectors.
func (m *CSR) TriApply(dst, x, y, z []float64) {
	n := len(x)
	if len(y) != n || len(z) != n || m.Cols != n*n*n || len(dst) != m.Rows {
		panic("sparse: TriApply length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			s += m.Val[k] * x[c/(n*n)] * y[(c/n)%n] * z[c%n]
		}
		dst[r] = s
	}
}
