package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"avtmor/internal/kron"
	"avtmor/internal/mat"
)

func randCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < nnz; i++ {
		b.Add(rng.Intn(rows), rng.Intn(cols), 2*rng.Float64()-1)
	}
	return b.Build()
}

func TestBuildSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1.5)
	b.Add(0, 1, 2.5)
	b.Add(1, 0, -1)
	b.Add(1, 0, 1) // cancels to zero → dropped
	m := b.Build()
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", m.NNZ())
	}
	if m.Dense().At(0, 1) != 4 {
		t.Fatalf("sum wrong: %v", m.Dense())
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randCSR(rng, rows, cols, rng.Intn(3*rows*cols/2+1))
		x := mat.RandVec(rng, cols)
		got := make([]float64, rows)
		m.MulVec(got, x)
		want := make([]float64, rows)
		m.Dense().MulVec(want, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randCSR(rng, 6, 4, 10)
	x := mat.RandVec(rng, 4)
	dst := mat.RandVec(rng, 6)
	orig := mat.CopyVec(dst)
	m.AddMulVec(dst, 2.0, x)
	mx := make([]float64, 6)
	m.MulVec(mx, x)
	for i := range dst {
		if math.Abs(dst[i]-(orig[i]+2*mx[i])) > 1e-13 {
			t.Fatal("AddMulVec wrong")
		}
	}
}

func TestMulVecC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randCSR(rng, 5, 5, 12)
	xr := mat.RandVec(rng, 5)
	xi := mat.RandVec(rng, 5)
	x := make([]complex128, 5)
	for i := range x {
		x[i] = complex(xr[i], xi[i])
	}
	got := make([]complex128, 5)
	m.MulVecC(got, x)
	wr := make([]float64, 5)
	wi := make([]float64, 5)
	m.MulVec(wr, xr)
	m.MulVec(wi, xi)
	for i := range got {
		if math.Abs(real(got[i])-wr[i]) > 1e-13 || math.Abs(imag(got[i])-wi[i]) > 1e-13 {
			t.Fatal("MulVecC wrong")
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randCSR(rng, 7, 4, 12)
	if !m.T().Dense().Equalish(m.Dense().T(), 1e-15) {
		t.Fatal("transpose mismatch")
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := mat.RandDense(rng, 6, 8)
	if !FromDense(d).Dense().Equalish(d, 0) {
		t.Fatal("FromDense round trip failed")
	}
}

func TestScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randCSR(rng, 4, 4, 8)
	want := m.Dense().Scale(3)
	m.Scale(3)
	if !m.Dense().Equalish(want, 1e-15) {
		t.Fatal("Scale wrong")
	}
}

func TestQuadApplyAgainstKron(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g2 := randCSR(rng, n, n*n, 2*n)
		x := mat.RandVec(rng, n)
		y := mat.RandVec(rng, n)
		got := make([]float64, n)
		g2.QuadApply(got, x, y)
		want := make([]float64, n)
		g2.MulVec(want, kron.VecKron(x, y))
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuadAddApply(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 4
	g2 := randCSR(rng, n, n*n, 8)
	x := mat.RandVec(rng, n)
	dst := mat.RandVec(rng, n)
	orig := mat.CopyVec(dst)
	g2.QuadAddApply(dst, -1.5, x, x)
	q := make([]float64, n)
	g2.QuadApply(q, x, x)
	for i := range dst {
		if math.Abs(dst[i]-(orig[i]-1.5*q[i])) > 1e-13 {
			t.Fatal("QuadAddApply wrong")
		}
	}
}

func TestQuadJacobianFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	g2 := randCSR(rng, n, n*n, 12)
	x := mat.RandVec(rng, n)
	jac := make([]float64, n*n)
	g2.QuadJacobian(jac, 1, x)
	const h = 1e-6
	f0 := make([]float64, n)
	g2.QuadApply(f0, x, x)
	for j := 0; j < n; j++ {
		xp := mat.CopyVec(x)
		xp[j] += h
		fp := make([]float64, n)
		g2.QuadApply(fp, xp, xp)
		for i := 0; i < n; i++ {
			fd := (fp[i] - f0[i]) / h
			if math.Abs(fd-jac[i*n+j]) > 1e-4 {
				t.Fatalf("Jacobian (%d,%d): fd %v vs analytic %v", i, j, fd, jac[i*n+j])
			}
		}
	}
}

func TestCubeApplyAgainstKron(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 3
	g3 := randCSR(rng, n, n*n*n, 10)
	x := mat.RandVec(rng, n)
	got := make([]float64, n)
	g3.CubeApply(got, x)
	want := make([]float64, n)
	g3.MulVec(want, kron.VecKron(kron.VecKron(x, x), x))
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CubeApply mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCubeJacobianFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4
	g3 := randCSR(rng, n, n*n*n, 10)
	x := mat.RandVec(rng, n)
	jac := make([]float64, n*n)
	g3.CubeJacobian(jac, 1, x)
	const h = 1e-6
	f0 := make([]float64, n)
	g3.CubeApply(f0, x)
	for j := 0; j < n; j++ {
		xp := mat.CopyVec(x)
		xp[j] += h
		fp := make([]float64, n)
		g3.CubeApply(fp, xp)
		for i := 0; i < n; i++ {
			fd := (fp[i] - f0[i]) / h
			if math.Abs(fd-jac[i*n+j]) > 1e-4 {
				t.Fatalf("cube Jacobian (%d,%d): fd %v vs analytic %v", i, j, fd, jac[i*n+j])
			}
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func BenchmarkQuadApply100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	g2 := randCSR(rng, n, n*n, 4*n)
	x := mat.RandVec(rng, n)
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g2.QuadApply(dst, x, x)
	}
}
