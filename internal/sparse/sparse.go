// Package sparse provides compressed-sparse-row matrices for the circuit
// matrices of the QLDAE model. The quadratic coupling G2 ∈ R^{n×n²} and
// cubic coupling G3 ∈ R^{n×n³} are far too large to hold densely, but each
// row has only a handful of nonzeros (one per nonlinear branch); CSR plus
// dedicated x⊗x / x⊗x⊗x evaluation kernels keep every RHS evaluation
// O(nnz) without ever materializing the Kronecker powers.
package sparse

import (
	"fmt"
	"sort"

	"avtmor/internal/mat"
)

// Coord is one COO triplet.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// Cached Kronecker factor indices of each nonzero (decoded from
	// ColIdx on first use by the Quad/Cube kernels); see quadIndex and
	// cubeIndex in quadratic.go.
	qp, qq     []int32
	cp, cq, cr []int32
}

// Builder accumulates COO triplets; duplicate coordinates sum.
type Builder struct {
	rows, cols int
	entries    []Coord
}

// NewBuilder returns a builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Reset empties the builder for reuse, keeping its entry capacity, so
// assembly loops that rebuild a same-shape matrix many times — the
// per-Newton-iteration Jacobians of a stiff transient — amortize the
// triplet slab instead of regrowing it every call.
func (b *Builder) Reset() { b.entries = b.entries[:0] }

// Add accumulates v at (r, c).
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of %d×%d", r, c, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries = append(b.entries, Coord{r, c, v})
}

// Build converts to CSR, summing duplicates and dropping exact zeros.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].Row != b.entries[j].Row {
			return b.entries[i].Row < b.entries[j].Row
		}
		return b.entries[i].Col < b.entries[j].Col
	})
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	for i := 0; i < len(b.entries); {
		j := i
		v := 0.0
		for j < len(b.entries) && b.entries[j].Row == b.entries[i].Row && b.entries[j].Col == b.entries[i].Col {
			v += b.entries[j].Val
			j++
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, b.entries[i].Col)
			m.Val = append(m.Val, v)
			m.RowPtr[b.entries[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes dst = M·x (dst must not alias x).
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("sparse: MulVec length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[r] = s
	}
}

// MulVecTo is the in-place multiply under its batch-era name: exactly
// MulVec (dst = M·x, no allocation), the named sibling of MulBatchTo.
func (m *CSR) MulVecTo(dst, x []float64) { m.MulVec(dst, x) }

// MulBatchTo computes dst[c] = M·xs[c] for every column of the batch,
// in place and allocation-free. The row-pointer/column-index metadata
// is traversed once per batch rather than once per column — the sparse
// analogue of the block back-solve amortization. dst[c] must not alias
// any xs column.
func (m *CSR) MulBatchTo(dst, xs [][]float64) {
	if len(dst) != len(xs) {
		panic("sparse: MulBatchTo batch size mismatch")
	}
	for c, x := range xs {
		if len(x) != m.Cols || len(dst[c]) != m.Rows {
			panic("sparse: MulBatchTo length mismatch")
		}
	}
	for r := 0; r < m.Rows; r++ {
		k0, k1 := m.RowPtr[r], m.RowPtr[r+1]
		for c, x := range xs {
			s := 0.0
			for k := k0; k < k1; k++ {
				s += m.Val[k] * x[m.ColIdx[k]]
			}
			dst[c][r] = s
		}
	}
}

// MulVecC computes dst = M·x for complex x.
func (m *CSR) MulVecC(dst, x []complex128) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("sparse: MulVecC length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		var s complex128
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += complex(m.Val[k], 0) * x[m.ColIdx[k]]
		}
		dst[r] = s
	}
}

// AddMulVec computes dst += a·M·x.
func (m *CSR) AddMulVec(dst []float64, a float64, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("sparse: AddMulVec length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[r] += a * s
	}
}

// Dense expands to a dense matrix (small sizes / tests).
func (m *CSR) Dense() *mat.Dense {
	d := mat.NewDense(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			d.Add(r, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// FromDense converts a dense matrix, dropping zeros.
func FromDense(d *mat.Dense) *CSR {
	b := NewBuilder(d.R, d.C)
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			if v := d.At(i, j); v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// Eye returns the n×n identity in CSR form.
func Eye(n int) *CSR {
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// Add returns alpha·a + beta·b for same-shape operands (b may be nil,
// giving alpha·a). The row-merge keeps the result sorted without a
// builder round-trip, so shifted-system assembly (G + s·C) is O(nnz).
func Add(alpha float64, a *CSR, beta float64, b *CSR) *CSR {
	if b == nil {
		out := &CSR{Rows: a.Rows, Cols: a.Cols,
			RowPtr: append([]int(nil), a.RowPtr...),
			ColIdx: append([]int(nil), a.ColIdx...),
			Val:    make([]float64, len(a.Val))}
		for i, v := range a.Val {
			out.Val[i] = alpha * v
		}
		return out
	}
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("sparse: Add shape mismatch")
	}
	out := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	for r := 0; r < a.Rows; r++ {
		ka, ea := a.RowPtr[r], a.RowPtr[r+1]
		kb, eb := b.RowPtr[r], b.RowPtr[r+1]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && a.ColIdx[ka] < b.ColIdx[kb]):
				out.ColIdx = append(out.ColIdx, a.ColIdx[ka])
				out.Val = append(out.Val, alpha*a.Val[ka])
				ka++
			case ka >= ea || b.ColIdx[kb] < a.ColIdx[ka]:
				out.ColIdx = append(out.ColIdx, b.ColIdx[kb])
				out.Val = append(out.Val, beta*b.Val[kb])
				kb++
			default:
				out.ColIdx = append(out.ColIdx, a.ColIdx[ka])
				out.Val = append(out.Val, alpha*a.Val[ka]+beta*b.Val[kb])
				ka++
				kb++
			}
		}
		out.RowPtr[r+1] = len(out.ColIdx)
	}
	return out
}

// MulDense computes M·X for a dense right factor, O(nnz·X.C).
func (m *CSR) MulDense(x *mat.Dense) *mat.Dense {
	if m.Cols != x.R {
		panic("sparse: MulDense shape mismatch")
	}
	out := mat.NewDense(m.Rows, x.C)
	for r := 0; r < m.Rows; r++ {
		orow := out.Row(r)
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			v := m.Val[k]
			xrow := x.Row(m.ColIdx[k])
			for j, xv := range xrow {
				orow[j] += v * xv
			}
		}
	}
	return out
}

// T returns the transpose as a new CSR.
func (m *CSR) T() *CSR {
	b := NewBuilder(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			b.Add(m.ColIdx[k], r, m.Val[k])
		}
	}
	return b.Build()
}

// Scale multiplies all values in place and returns m.
func (m *CSR) Scale(a float64) *CSR {
	for i := range m.Val {
		m.Val[i] *= a
	}
	return m
}
