package volterra

import (
	"errors"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/schur"
)

// PF is a vector-valued partial-fraction expansion Σ_m Res_m/(s − Pole_m).
// Poles are not deduplicated; evaluation is a plain sum.
type PF struct {
	Poles []complex128
	Res   [][]complex128
	n     int
}

// Eval computes Σ Res_m/(s − Pole_m).
func (pf *PF) Eval(s complex128) []complex128 {
	out := make([]complex128, pf.n)
	for m, p := range pf.Poles {
		d := s - p
		for i, r := range pf.Res[m] {
			out[i] += r / d
		}
	}
	return out
}

// SumResidues returns Σ_m Res_m, which equals the t→0⁺ value of the
// associated kernel h(t) (used to cross-check h2(0,0) = D1·b, the origin
// of the D1²b term in A3(H3)).
func (pf *PF) SumResidues() []complex128 {
	out := make([]complex128, pf.n)
	for _, r := range pf.Res {
		for i, v := range r {
			out[i] += v
		}
	}
	return out
}

func (pf *PF) add(pole complex128, res []complex128) {
	pf.Poles = append(pf.Poles, pole)
	pf.Res = append(pf.Res, res)
}

// Oracle computes associated transforms analytically through the
// eigendecomposition of G1 and the scalar association rules:
//
//	A2[1/((s1−λp)(s2−λq))] = 1/(s−λp−λq)      (Theorem 1, scalar)
//	A2[(s1−λ)⁻¹]           = 1                (Theorem 2, scalar)
//	A[F(s1+…+sn)·G]        = F(s)·A[G]        (property (8))
//
// It requires a diagonalizable G1 with simple pole sums (generic case).
type Oracle struct {
	sys  *qldae.System
	eig  *schur.Eig
	sinv *mat.CDense
	bhat [][]complex128 // S⁻¹·b per input column
}

// NewOracle eigendecomposes G1.
func NewOracle(sys *qldae.System) (*Oracle, error) {
	e, err := schur.Eigen(sys.G1)
	if err != nil {
		return nil, err
	}
	sinv, err := e.InverseVectors()
	if err != nil {
		return nil, err
	}
	o := &Oracle{sys: sys, eig: e, sinv: sinv}
	for in := 0; in < sys.Inputs(); in++ {
		bh := make([]complex128, sys.N)
		sinv.MulVec(bh, mat.ToComplex(sys.B.Col(in)))
		o.bhat = append(o.bhat, bh)
	}
	return o, nil
}

// eigvec returns column p of S scaled by c.
func (o *Oracle) eigvec(p int, c complex128) []complex128 {
	n := o.sys.N
	v := make([]complex128, n)
	for i := 0; i < n; i++ {
		v[i] = o.eig.Vectors.At(i, p) * c
	}
	return v
}

// resolvePF splits (sI−G1)⁻¹·g/(s−ν) into first-order poles and adds them
// to pf: residue (νI−G1)⁻¹g at ν and −S_:i·ĝ_i/(ν−λ_i) at each λ_i.
func (o *Oracle) resolvePF(pf *PF, nu complex128, g []complex128) error {
	n := o.sys.N
	ghat := make([]complex128, n)
	o.sinv.MulVec(ghat, g)
	atNu := make([]complex128, n)
	for i := 0; i < n; i++ {
		den := nu - o.eig.Values[i]
		if den == 0 {
			return errors.New("volterra: oracle pole collision (non-generic spectrum)")
		}
		c := ghat[i] / den
		// Accumulate S·diag(1/(ν−λ))·ĝ for the ν pole.
		for r := 0; r < n; r++ {
			atNu[r] += o.eig.Vectors.At(r, i) * c
		}
		// −S_:i ĝ_i/(ν−λi) at λi.
		pf.add(o.eig.Values[i], o.eigvec(i, -c))
	}
	pf.add(nu, atNu)
	return nil
}

// resolveConstPF adds (sI−G1)⁻¹·g (poles at each λ_i) to pf.
func (o *Oracle) resolveConstPF(pf *PF, g []complex128) {
	n := o.sys.N
	ghat := make([]complex128, n)
	o.sinv.MulVec(ghat, g)
	for i := 0; i < n; i++ {
		pf.add(o.eig.Values[i], o.eigvec(i, ghat[i]))
	}
}

// AssocH2 returns the partial-fraction form of A2(H2⁽ⁱʲ⁾)(s).
func (o *Oracle) AssocH2(i, j int) (*PF, error) {
	sys := o.sys
	n := sys.N
	pf := &PF{n: n}
	// G2 part: ½ Σ_pq G2(S_:p⊗S_:q)(b̂ᵢ_p b̂ⱼ_q + b̂ⱼ_p b̂ᵢ_q) / ((s−λp−λq)(sI−G1)).
	if sys.G2 != nil {
		g := make([]complex128, n)
		for p := 0; p < n; p++ {
			sp := o.eigvec(p, 1)
			for q := 0; q < n; q++ {
				coef := 0.5 * (o.bhat[i][p]*o.bhat[j][q] + o.bhat[j][p]*o.bhat[i][q])
				if coef == 0 {
					continue
				}
				sq := o.eigvec(q, 1)
				sys.G2.QuadApplyC(g, sp, sq)
				for r := range g {
					g[r] *= coef
				}
				if err := o.resolvePF(pf, o.eig.Values[p]+o.eig.Values[q], g); err != nil {
					return nil, err
				}
			}
		}
	}
	// D1 part: (sI−G1)⁻¹ · ½(D1ᵢ·bⱼ + D1ⱼ·bᵢ)  (Theorem 2).
	d := d1Cross(sys, i, j)
	if d != nil {
		o.resolveConstPF(pf, mat.ToComplex(d))
	}
	return pf, nil
}

// d1Cross returns ½(D1ᵢ·bⱼ + D1ⱼ·bᵢ), or nil when there is no D1.
func d1Cross(sys *qldae.System, i, j int) []float64 {
	if sys.D1 == nil {
		return nil
	}
	n := sys.N
	out := make([]float64, n)
	any := false
	tmp := make([]float64, n)
	if sys.D1[i] != nil {
		sys.D1[i].MulVec(tmp, sys.B.Col(j))
		mat.Axpy(0.5, tmp, out)
		any = true
	}
	if sys.D1[j] != nil {
		sys.D1[j].MulVec(tmp, sys.B.Col(i))
		mat.Axpy(0.5, tmp, out)
		any = true
	}
	if !any {
		return nil
	}
	return out
}

// AssocH3 returns the partial-fraction form of A3(H3)(s) for a SISO
// quadratic QLDAE: (sI−G1)⁻¹[G2·T(s) + D1²b] with
// T(s) = Σ_{p,m} [S_:p b̂_p ⊗ res_m + res_m ⊗ S_:p b̂_p]/(s−λp−μm),
// where {μm, res_m} is the PF of the diagonal kernel h2(t,t) = A2(H2).
func (o *Oracle) AssocH3() (*PF, error) {
	sys := o.sys
	if sys.Inputs() != 1 {
		return nil, errors.New("volterra: AssocH3 oracle is SISO only")
	}
	n := sys.N
	h2pf, err := o.AssocH2(0, 0)
	if err != nil {
		return nil, err
	}
	pf := &PF{n: n}
	if sys.G2 != nil {
		g := make([]complex128, n)
		tmp := make([]complex128, n)
		for p := 0; p < n; p++ {
			if o.bhat[0][p] == 0 {
				continue
			}
			sp := o.eigvec(p, o.bhat[0][p])
			for m := range h2pf.Poles {
				sys.G2.QuadApplyC(g, sp, h2pf.Res[m])
				sys.G2.QuadApplyC(tmp, h2pf.Res[m], sp)
				for r := range g {
					g[r] += tmp[r]
				}
				nu := o.eig.Values[p] + h2pf.Poles[m]
				if err := o.resolvePF(pf, nu, g); err != nil {
					return nil, err
				}
			}
		}
	}
	// D1 part: (sI−G1)⁻¹·D1·h2(0,0) with h2(0,0) = Σ residues of A2(H2).
	if sys.D1 != nil && sys.D1[0] != nil {
		h200 := h2pf.SumResidues()
		d := make([]complex128, n)
		sys.D1[0].Complex().MulVec(d, h200)
		o.resolveConstPF(pf, d)
	}
	return pf, nil
}

// AssocH3Cubic returns the partial-fraction form of A3(H3)(s) for a SISO
// cubic system: (sI−G1)⁻¹ G3 Σ_{pqr} (S_:p⊗S_:q⊗S_:r)·b̂_p b̂_q b̂_r /
// (s−λp−λq−λr)  (Corollary 1 applied entrywise).
func (o *Oracle) AssocH3Cubic() (*PF, error) {
	sys := o.sys
	if sys.Inputs() != 1 || sys.G3 == nil {
		return nil, errors.New("volterra: AssocH3Cubic needs a SISO cubic system")
	}
	n := sys.N
	pf := &PF{n: n}
	g := make([]complex128, n)
	for p := 0; p < n; p++ {
		if o.bhat[0][p] == 0 {
			continue
		}
		sp := o.eigvec(p, o.bhat[0][p])
		for q := 0; q < n; q++ {
			sq := o.eigvec(q, o.bhat[0][q])
			for r := 0; r < n; r++ {
				sr := o.eigvec(r, o.bhat[0][r])
				sys.G3.CubeApplyC(g, sp, sq, sr)
				nu := o.eig.Values[p] + o.eig.Values[q] + o.eig.Values[r]
				if err := o.resolvePF(pf, nu, g); err != nil {
					return nil, err
				}
			}
		}
	}
	return pf, nil
}
