package volterra

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
)

func testSystem(rng *rand.Rand, n, m int, withD1 bool) *qldae.System {
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 3*n; i++ {
		g2b.Add(rng.Intn(n), rng.Intn(n*n), 0.3*(2*rng.Float64()-1))
	}
	s := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G2: g2b.Build(),
		B:  mat.RandDense(rng, n, m),
		L:  mat.RandDense(rng, 1, n),
	}
	if withD1 {
		s.D1 = make([]*mat.Dense, m)
		for i := range s.D1 {
			s.D1[i] = mat.RandDense(rng, n, n).Scale(0.2)
		}
	}
	return s
}

func cdist(a, b []complex128) float64 {
	d := make([]complex128, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	return mat.CNorm2(d)
}

func TestH1AgainstComplexLU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys := testSystem(rng, 8, 1, false)
	s := 0.4 + 1.2i
	got, err := H1(sys, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	// Direct: (sI − G1) x = b.
	a := sys.G1.Clone().Scale(-1).Complex()
	for i := 0; i < 8; i++ {
		a.Set(i, i, a.At(i, i)+s)
	}
	want, err := lu.SolveC(a, mat.ToComplex(sys.B.Col(0)))
	if err != nil {
		t.Fatal(err)
	}
	if cdist(got, want) > 1e-10 {
		t.Fatalf("H1 mismatch %g", cdist(got, want))
	}
}

func TestH2SymmetricInArguments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys := testSystem(rng, 7, 1, true)
	s1, s2 := 0.3+0.8i, -0.1+1.5i
	a, err := H2(sys, 0, 0, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := H2(sys, 0, 0, s2, s1)
	if err != nil {
		t.Fatal(err)
	}
	if cdist(a, b) > 1e-10*(1+mat.CNorm2(a)) {
		t.Fatalf("H2 not symmetric: %g", cdist(a, b))
	}
}

func TestH2PairExchange(t *testing.T) {
	// H2^{(ij)}(s1,s2) = H2^{(ji)}(s2,s1) by construction.
	rng := rand.New(rand.NewSource(3))
	sys := testSystem(rng, 6, 2, true)
	s1, s2 := 0.2+0.5i, 0.7-0.3i
	a, err := H2(sys, 0, 1, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := H2(sys, 1, 0, s2, s1)
	if err != nil {
		t.Fatal(err)
	}
	if cdist(a, b) > 1e-10*(1+mat.CNorm2(a)) {
		t.Fatalf("pair exchange broken: %g", cdist(a, b))
	}
}

func TestH3PermutationSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sys := testSystem(rng, 5, 1, true)
	s1, s2, s3 := 0.2+0.4i, 0.5-0.2i, -0.1+0.9i
	a, err := H3(sys, s1, s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][3]complex128{{s2, s1, s3}, {s3, s2, s1}, {s2, s3, s1}} {
		b, err := H3(sys, p[0], p[1], p[2])
		if err != nil {
			t.Fatal(err)
		}
		if cdist(a, b) > 1e-9*(1+mat.CNorm2(a)) {
			t.Fatalf("H3 not permutation symmetric: %g", cdist(a, b))
		}
	}
}

func TestH3CubicPermutationSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 5
	g3b := sparse.NewBuilder(n, n*n*n)
	for i := 0; i < 3*n; i++ {
		g3b.Add(rng.Intn(n), rng.Intn(n*n*n), 0.3*(2*rng.Float64()-1))
	}
	sys := &qldae.System{
		N: n, G1: mat.RandStable(rng, n, 0.4), G3: g3b.Build(),
		B: mat.RandDense(rng, n, 1), L: mat.RandDense(rng, 1, n),
	}
	s1, s2, s3 := 0.1+0.6i, 0.4-0.1i, 0.8+0.2i
	a, err := H3Cubic(sys, s1, s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := H3Cubic(sys, s3, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if cdist(a, b) > 1e-10*(1+mat.CNorm2(a)) {
		t.Fatalf("cubic H3 not symmetric: %g", cdist(a, b))
	}
}

func TestPFEval(t *testing.T) {
	pf := &PF{n: 2}
	pf.add(complex(-1, 0), []complex128{1, 0})
	pf.add(complex(-2, 0), []complex128{0, 3})
	got := pf.Eval(0)
	if cmplx.Abs(got[0]-1) > 1e-15 || cmplx.Abs(got[1]-1.5) > 1e-15 {
		t.Fatalf("PF eval wrong: %v", got)
	}
	sum := pf.SumResidues()
	if sum[0] != 1 || sum[1] != 3 {
		t.Fatalf("SumResidues wrong: %v", sum)
	}
}

func TestOracleAssocH2LinearPlusBilinear(t *testing.T) {
	// With G2 = nil, A2(H2) = (sI−G1)⁻¹·D1·b exactly; the oracle must
	// reproduce this without any Kronecker machinery.
	rng := rand.New(rand.NewSource(6))
	n := 6
	sys := &qldae.System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		D1: []*mat.Dense{mat.RandDense(rng, n, n).Scale(0.5)},
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	o, err := NewOracle(sys)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := o.AssocH2(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := 0.3 + 0.7i
	got := pf.Eval(s)
	d1b := make([]float64, n)
	sys.D1[0].MulVec(d1b, sys.B.Col(0))
	want, err := resolve(sys.G1, s, mat.ToComplex(d1b))
	if err != nil {
		t.Fatal(err)
	}
	if cdist(got, want) > 1e-8*(1+mat.CNorm2(want)) {
		t.Fatalf("oracle linear case mismatch %g", cdist(got, want))
	}
}

func TestOracleRejectsMIMOH3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sys := testSystem(rng, 5, 2, false)
	o, err := NewOracle(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.AssocH3(); err == nil {
		t.Fatal("expected SISO-only error")
	}
}
