// Package volterra evaluates the multivariate Volterra transfer functions
// of a QLDAE obtained by harmonic probing (Eq. (14) of the paper), and
// provides an analytic-association oracle: for a diagonalizable G1 the
// associated transforms A2(H2), A3(H3) have closed partial-fraction forms
// built from the scalar association rules (Theorem 1 applied entrywise in
// eigencoordinates, Theorem 2 for the D1 terms). The oracle shares no
// resolvent machinery with the realizations in package assoc, so agreement
// between the two validates Eq. (17) and the H̃3 construction end to end.
package volterra

import (
	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/qldae"
)

// resolve computes (sI − G1)⁻¹·v by a complex shifted LU factorization.
func resolve(g1 *mat.Dense, s complex128, v []complex128) ([]complex128, error) {
	f, err := lu.ShiftedReal(g1.Clone().Scale(-1), s)
	if err != nil {
		return nil, err
	}
	x := make([]complex128, len(v))
	f.Solve(x, v)
	return x, nil
}

// H1 evaluates the first-order transfer function (sI−G1)⁻¹·b_in (14a).
func H1(sys *qldae.System, in int, s complex128) ([]complex128, error) {
	return resolve(sys.G1, s, mat.ToComplex(sys.B.Col(in)))
}

// H2 evaluates the symmetric second-order transfer function for input
// pair (i, j) at (s1, s2) (Eq. (14b) generalized to multiple inputs):
//
//	H2⁽ⁱʲ⁾ = ½((s1+s2)I−G1)⁻¹ { G2[H1ᵢ(s1)⊗H1ⱼ(s2) + H1ⱼ(s2)⊗H1ᵢ(s1)]
//	        + D1ᵢ·H1ⱼ(s2) + D1ⱼ·H1ᵢ(s1) }.
func H2(sys *qldae.System, i, j int, s1, s2 complex128) ([]complex128, error) {
	n := sys.N
	h1i, err := H1(sys, i, s1)
	if err != nil {
		return nil, err
	}
	h1j, err := H1(sys, j, s2)
	if err != nil {
		return nil, err
	}
	rhs := make([]complex128, n)
	if sys.G2 != nil {
		tmp := make([]complex128, n)
		sys.G2.QuadApplyC(tmp, h1i, h1j)
		for k := range rhs {
			rhs[k] += tmp[k]
		}
		sys.G2.QuadApplyC(tmp, h1j, h1i)
		for k := range rhs {
			rhs[k] += tmp[k]
		}
	}
	addD1 := func(d *mat.Dense, h []complex128) {
		if d == nil {
			return
		}
		tmp := make([]complex128, n)
		d.Complex().MulVec(tmp, h)
		for k := range rhs {
			rhs[k] += tmp[k]
		}
	}
	if sys.D1 != nil {
		addD1(sys.D1[i], h1j)
		addD1(sys.D1[j], h1i)
	}
	out, err := resolve(sys.G1, s1+s2, rhs)
	if err != nil {
		return nil, err
	}
	for k := range out {
		out[k] *= 0.5
	}
	return out, nil
}

// H3 evaluates the symmetric third-order transfer function of a SISO
// quadratic QLDAE at (s1, s2, s3), Eq. (14c).
func H3(sys *qldae.System, s1, s2, s3 complex128) ([]complex128, error) {
	n := sys.N
	rhs := make([]complex128, n)
	tmp := make([]complex128, n)
	// G2 part: the six H1(sa)⊗H2(sb,sc) orderings.
	type pair struct {
		a  complex128
		bc [2]complex128
	}
	combos := []pair{
		{s1, [2]complex128{s2, s3}},
		{s2, [2]complex128{s1, s3}},
		{s3, [2]complex128{s1, s2}},
	}
	for _, c := range combos {
		h1, err := H1(sys, 0, c.a)
		if err != nil {
			return nil, err
		}
		h2, err := H2(sys, 0, 0, c.bc[0], c.bc[1])
		if err != nil {
			return nil, err
		}
		if sys.G2 != nil {
			sys.G2.QuadApplyC(tmp, h1, h2)
			for k := range rhs {
				rhs[k] += tmp[k]
			}
			sys.G2.QuadApplyC(tmp, h2, h1)
			for k := range rhs {
				rhs[k] += tmp[k]
			}
		}
		if sys.D1 != nil && sys.D1[0] != nil {
			sys.D1[0].Complex().MulVec(tmp, h2)
			for k := range rhs {
				rhs[k] += tmp[k]
			}
		}
	}
	out, err := resolve(sys.G1, s1+s2+s3, rhs)
	if err != nil {
		return nil, err
	}
	third := complex(1.0/3.0, 0)
	for k := range out {
		out[k] *= third
	}
	return out, nil
}

// H3Cubic evaluates the symmetric third-order transfer function of a SISO
// cubic system x' = G1 x + G3 x^{3⊗} + b u:
//
//	H3 = ((s1+s2+s3)I−G1)⁻¹ G3 · avg over the 6 orderings of
//	     H1(sa)⊗H1(sb)⊗H1(sc).
func H3Cubic(sys *qldae.System, s1, s2, s3 complex128) ([]complex128, error) {
	n := sys.N
	h := make(map[complex128][]complex128, 3)
	for _, s := range []complex128{s1, s2, s3} {
		if _, ok := h[s]; ok {
			continue
		}
		v, err := H1(sys, 0, s)
		if err != nil {
			return nil, err
		}
		h[s] = v
	}
	rhs := make([]complex128, n)
	tmp := make([]complex128, n)
	perms := [][3]complex128{
		{s1, s2, s3}, {s1, s3, s2}, {s2, s1, s3},
		{s2, s3, s1}, {s3, s1, s2}, {s3, s2, s1},
	}
	for _, p := range perms {
		sys.G3.CubeApplyC(tmp, h[p[0]], h[p[1]], h[p[2]])
		for k := range rhs {
			rhs[k] += tmp[k] / 6
		}
	}
	return resolve(sys.G1, s1+s2+s3, rhs)
}
