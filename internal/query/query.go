// Package query is the reduce-request grammar both ends of the wire
// speak: the URL query parameters that select reduction options and
// the body sniff that distinguishes netlist text from a serialized
// System. The serve package uses it to parse incoming requests; the
// avtmorclient package uses the *same* code to compute the canonical
// cache key client-side, so a ring-aware client places a request on
// the identical owner the server would — any drift between the two
// parsers would silently break client-side placement and the key
// verification that guards it.
package query

import (
	"bytes"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"

	"avtmor"
)

// Request is a parsed reduce request: the option set that (with the
// system) determines the canonical cache key, the method switch, and
// the per-request deadline. The cost-model fields (K1..K3, Auto,
// Shifts) mirror the order selection so the serving tier can price a
// request before running it — they do not affect the cache key, which
// is derived from Opts alone.
type Request struct {
	Opts    []avtmor.Option
	Norm    bool
	Timeout time.Duration

	// K1, K2, K3 are the explicit moment counts, zero when Auto.
	K1, K2, K3 int
	// Auto reports Hankel auto-order selection (order unknown until
	// the reduction runs).
	Auto bool
	// Shifts is the number of expansion points: 1 plus any xp extras.
	Shifts int
}

// Key returns the canonical cache key of sys under this request — the
// content identity that addresses the artifact fleet-wide.
func (r *Request) Key(sys *avtmor.System) string {
	if r.Norm {
		return avtmor.RequestKeyNORM(sys, r.Opts...)
	}
	return avtmor.RequestKey(sys, r.Opts...)
}

// System sniffs a request body: serialized System bytes, or netlist
// text for anything that does not carry the System magic.
func System(body []byte) (*avtmor.System, error) {
	if len(bytes.TrimSpace(body)) == 0 {
		return nil, errors.New("empty body; POST a netlist or a serialized System")
	}
	sys, err := avtmor.ReadSystem(bytes.NewReader(body))
	if err == nil {
		return sys, nil
	}
	if !errors.Is(err, avtmor.ErrBadSystemMagic) {
		// It was a System stream — just a broken one. Netlist parsing
		// would only produce a misleading error.
		return nil, err
	}
	return avtmor.ParseNetlist(bytes.NewReader(body))
}

// Parse maps reduce query parameters to engine options.
//
// Parameters (all optional):
//
//	k1,k2,k3     moment counts (WithOrders)
//	auto         Hankel auto-order tolerance (WithAutoOrders); the
//	             default when no k1/k2/k3 is given either
//	s0           real expansion frequency, xp=f1,f2,… extra points
//	droptol      deflation tolerance
//	decoupledh2  1/true selects the Eq.-(18) Sylvester path
//	solver       auto|dense|sparse
//	parallel     1/true fans moment generation out over goroutines
//	method       assoc (default) | norm
//	timeout      per-request deadline (Go duration, e.g. 30s)
func Parse(q url.Values) (*Request, error) {
	req := &Request{}
	getInt := func(name string) (int, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, false, errf("parameter %s: %v", name, err)
		}
		return n, true, nil
	}
	getFloat := func(name string) (float64, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, false, errf("parameter %s: %v", name, err)
		}
		return f, true, nil
	}
	getBool := func(name string) (bool, error) {
		switch v := q.Get(name); v {
		case "", "0", "false":
			return false, nil
		case "1", "true":
			return true, nil
		default:
			return false, errf("parameter %s: want 1/true or 0/false, got %q", name, v)
		}
	}

	k1, hasK1, err := getInt("k1")
	if err != nil {
		return nil, err
	}
	k2, hasK2, err := getInt("k2")
	if err != nil {
		return nil, err
	}
	k3, hasK3, err := getInt("k3")
	if err != nil {
		return nil, err
	}
	hasK := hasK1 || hasK2 || hasK3
	if k1 < 0 || k2 < 0 || k3 < 0 {
		return nil, errf("moment counts must be non-negative, got k1=%d k2=%d k3=%d", k1, k2, k3)
	}
	auto, hasAuto, err := getFloat("auto")
	if err != nil {
		return nil, err
	}
	switch {
	case hasAuto && hasK:
		return nil, errf("auto and k1/k2/k3 are mutually exclusive")
	case hasAuto:
		req.Opts = append(req.Opts, avtmor.WithAutoOrders(auto))
		req.Auto = true
	case hasK:
		if k1+k2+k3 == 0 {
			return nil, errf("explicit orders need at least one positive count (or drop them for auto selection)")
		}
		req.Opts = append(req.Opts, avtmor.WithOrders(k1, k2, k3))
		req.K1, req.K2, req.K3 = k1, k2, k3
	default:
		// No order selection at all: pick them from the Hankel decay.
		req.Opts = append(req.Opts, avtmor.WithAutoOrders(0))
		req.Auto = true
	}

	s0, hasS0, err := getFloat("s0")
	if err != nil {
		return nil, err
	}
	var extra []float64
	if xp := q.Get("xp"); xp != "" {
		for _, part := range strings.Split(xp, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, errf("parameter xp: %v", err)
			}
			extra = append(extra, f)
		}
	}
	if hasS0 || len(extra) > 0 {
		req.Opts = append(req.Opts, avtmor.WithExpansion(s0, extra...))
	}
	req.Shifts = 1 + len(extra)

	if tol, ok, err := getFloat("droptol"); err != nil {
		return nil, err
	} else if ok {
		req.Opts = append(req.Opts, avtmor.WithDropTol(tol))
	}
	if dec, err := getBool("decoupledh2"); err != nil {
		return nil, err
	} else if dec {
		req.Opts = append(req.Opts, avtmor.WithDecoupledH2())
	}
	if par, err := getBool("parallel"); err != nil {
		return nil, err
	} else if par {
		req.Opts = append(req.Opts, avtmor.WithParallel())
	}
	switch v := q.Get("solver"); v {
	case "", "auto":
	case "dense":
		req.Opts = append(req.Opts, avtmor.WithSolver(avtmor.SolverDense))
	case "sparse":
		req.Opts = append(req.Opts, avtmor.WithSolver(avtmor.SolverSparse))
	default:
		return nil, errf("parameter solver: want auto, dense, or sparse, got %q", v)
	}
	switch v := q.Get("method"); v {
	case "", "assoc":
	case "norm":
		req.Norm = true
	default:
		return nil, errf("parameter method: want assoc or norm, got %q", v)
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, errf("parameter timeout: want a positive Go duration, got %q", v)
		}
		req.Timeout = d
	}
	return req, nil
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
