// Package netlist parses a small SPICE-like circuit description and
// assembles it into the QLDAE form of package qldae, performing the
// quadratic-linearization of exponential diodes automatically (the
// QLMOR-style substitution z = e^{v/vt} − 1 that turns Eq. (1)'s strong
// nonlinearities into the quadratic-linear format).
//
// Supported cards (one per line, '*' or ';' starts a comment, ".end"
// optional):
//
//	R<name> a b value          linear resistor
//	C<name> a b value          capacitor (every non-ground node needs
//	                           capacitance to ground for a regular C)
//	L<name> a b value          inductor (adds a branch-current state)
//	G<name> a b g gamma        polynomial conductance i = g·w + gamma·w²
//	D<name> a b is vt          diode i = is·(e^{w/vt} − 1) (adds one
//	                           auxiliary state; linearized exactly)
//	I<name> a b IN<k> scale    current source driven by input channel k
//	.out node                  output = voltage of node (repeatable)
//
// Node "0" (or "gnd") is ground. Ideal voltage sources are not supported:
// model them as Norton equivalents (current source ∥ resistor), which is
// also what keeps the descriptor matrix regular (paper §2's trimmed form).
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"avtmor/internal/mat"
	"avtmor/internal/qldae"
	"avtmor/internal/sparse"
)

// Circuit is the parsed intermediate representation.
type Circuit struct {
	Nodes     []string // non-ground nodes in first-appearance order
	nodeIdx   map[string]int
	Resistors []twoTerminal
	Caps      []twoTerminal
	Inductors []twoTerminal
	Quads     []quadCond
	Diodes    []diode
	Sources   []source
	Outputs   []string
}

type twoTerminal struct {
	name string
	a, b int // node indices, -1 = ground
	val  float64
}

type quadCond struct {
	name   string
	a, b   int
	g, gam float64
}

type diode struct {
	name   string
	a, b   int
	is, vt float64
}

type source struct {
	name  string
	a, b  int // current flows from a to b through the source (into b)
	input int
	scale float64
}

// Parse reads a netlist.
func Parse(r io.Reader) (*Circuit, error) {
	c := &Circuit{nodeIdx: map[string]int{}}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '*' || line[0] == ';' {
			continue
		}
		if strings.EqualFold(line, ".end") {
			break
		}
		fields := strings.Fields(line)
		card := strings.ToUpper(fields[0])
		fail := func(msg string) error {
			return fmt.Errorf("netlist: line %d (%s): %s", lineNo, fields[0], msg)
		}
		if card == ".OUT" {
			if len(fields) != 2 {
				return nil, fail("usage: .out node")
			}
			c.Outputs = append(c.Outputs, fields[1])
			continue
		}
		if len(fields) < 4 {
			return nil, fail("too few fields")
		}
		a := c.node(fields[1])
		b := c.node(fields[2])
		switch card[0] {
		case 'R', 'C', 'L':
			v, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || v <= 0 {
				return nil, fail("bad positive value")
			}
			t := twoTerminal{name: fields[0], a: a, b: b, val: v}
			switch card[0] {
			case 'R':
				c.Resistors = append(c.Resistors, t)
			case 'C':
				c.Caps = append(c.Caps, t)
			case 'L':
				c.Inductors = append(c.Inductors, t)
			}
		case 'G':
			if len(fields) != 5 {
				return nil, fail("usage: G a b g gamma")
			}
			g, err1 := strconv.ParseFloat(fields[3], 64)
			gam, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fail("bad coefficients")
			}
			c.Quads = append(c.Quads, quadCond{name: fields[0], a: a, b: b, g: g, gam: gam})
		case 'D':
			if len(fields) != 5 {
				return nil, fail("usage: D a b is vt")
			}
			is, err1 := strconv.ParseFloat(fields[3], 64)
			vt, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil || vt == 0 {
				return nil, fail("bad diode parameters")
			}
			c.Diodes = append(c.Diodes, diode{name: fields[0], a: a, b: b, is: is, vt: vt})
		case 'I':
			if len(fields) != 5 {
				return nil, fail("usage: I a b IN<k> scale")
			}
			in := strings.ToUpper(fields[3])
			if !strings.HasPrefix(in, "IN") {
				return nil, fail("source must reference an input channel IN<k>")
			}
			k, err := strconv.Atoi(in[2:])
			if err != nil || k < 0 {
				return nil, fail("bad input channel")
			}
			scale, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fail("bad scale")
			}
			c.Sources = append(c.Sources, source{name: fields[0], a: a, b: b, input: k, scale: scale})
		default:
			return nil, fail("unknown card type")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("netlist: no nodes")
	}
	return c, nil
}

// node interns a node name; ground returns -1.
func (c *Circuit) node(name string) int {
	l := strings.ToLower(name)
	if l == "0" || l == "gnd" {
		return -1
	}
	if i, ok := c.nodeIdx[l]; ok {
		return i
	}
	i := len(c.Nodes)
	c.nodeIdx[l] = i
	c.Nodes = append(c.Nodes, l)
	return i
}

// NodeIndex returns the state index of a node name (for custom outputs).
func (c *Circuit) NodeIndex(name string) (int, error) {
	l := strings.ToLower(name)
	i, ok := c.nodeIdx[l]
	if !ok {
		return 0, fmt.Errorf("netlist: unknown node %q", name)
	}
	return i, nil
}

// Build assembles the QLDAE. State layout: node voltages, inductor branch
// currents, then one auxiliary z-state per diode. Requires every node to
// carry capacitance to ground (checked) so the descriptor is regular.
func (c *Circuit) Build() (*qldae.System, error) {
	nv := len(c.Nodes)
	nl := len(c.Inductors)
	nd := len(c.Diodes)
	n := nv + nl + nd
	// Node capacitances.
	capAt := make([]float64, nv)
	for _, cc := range c.Caps {
		switch {
		case cc.a >= 0 && cc.b < 0:
			capAt[cc.a] += cc.val
		case cc.b >= 0 && cc.a < 0:
			capAt[cc.b] += cc.val
		default:
			return nil, fmt.Errorf("netlist: %s: floating capacitors are not supported; connect one end to ground", cc.name)
		}
	}
	for i, v := range capAt {
		if v <= 0 {
			return nil, fmt.Errorf("netlist: node %q has no grounded capacitance (singular descriptor)", c.Nodes[i])
		}
	}
	// Input count.
	m := 0
	for _, s := range c.Sources {
		if s.input+1 > m {
			m = s.input + 1
		}
	}
	if m == 0 {
		return nil, fmt.Errorf("netlist: no inputs (add an I card)")
	}

	// Linear node equations: capAt[i]·v̇_i = Σ currents into node i.
	// Assemble as rows over the full state plus input columns, then scale
	// by 1/C. av holds ∂v̇/∂state; bv per input.
	av := mat.NewDense(nv, n)
	bv := mat.NewDense(nv, m)
	stampG := func(a, b int, g float64) {
		// Conductance g between a and b (−1 = ground).
		if a >= 0 {
			av.Add(a, a, -g)
			if b >= 0 {
				av.Add(a, b, g)
			}
		}
		if b >= 0 {
			av.Add(b, b, -g)
			if a >= 0 {
				av.Add(b, a, g)
			}
		}
	}
	for _, r := range c.Resistors {
		stampG(r.a, r.b, 1/r.val)
	}
	for _, q := range c.Quads {
		stampG(q.a, q.b, q.g)
	}
	for _, d := range c.Diodes {
		// Small-signal part of the exact substitution lives in the z
		// column (i = is·z), so no conductance stamp here.
		_ = d
	}
	// Inductor branch currents: state index nv+k; L·i̇ = v_a − v_b and the
	// current leaves node a, enters node b.
	for k, l := range c.Inductors {
		st := nv + k
		if l.a >= 0 {
			av.Add(l.a, st, -1)
		}
		if l.b >= 0 {
			av.Add(l.b, st, 1)
		}
	}
	// Diode currents i = is·z from a to b (z is state nv+nl+k).
	for k, d := range c.Diodes {
		st := nv + nl + k
		if d.a >= 0 {
			av.Add(d.a, st, -d.is)
		}
		if d.b >= 0 {
			av.Add(d.b, st, d.is)
		}
	}
	// Sources: current from a to b means +scale·u into b, −scale·u into a.
	for _, s := range c.Sources {
		if s.a >= 0 {
			bv.Add(s.a, s.input, -s.scale)
		}
		if s.b >= 0 {
			bv.Add(s.b, s.input, s.scale)
		}
	}
	// Scale node rows by 1/C.
	for i := 0; i < nv; i++ {
		inv := 1 / capAt[i]
		mat.ScaleVec(inv, av.Row(i))
		mat.ScaleVec(inv, bv.Row(i))
	}

	g1 := mat.NewDense(n, n)
	b := mat.NewDense(n, m)
	for i := 0; i < nv; i++ {
		copy(g1.Row(i), av.Row(i))
		copy(b.Row(i), bv.Row(i))
	}
	// Inductor rows: i̇ = (v_a − v_b)/L.
	for k, l := range c.Inductors {
		st := nv + k
		if l.a >= 0 {
			g1.Add(st, l.a, 1/l.val)
		}
		if l.b >= 0 {
			g1.Add(st, l.b, -1/l.val)
		}
	}

	g2b := sparse.NewBuilder(n, n*n)
	var d1 []*mat.Dense
	// Quadratic conductances: branch current g·w + gam·w², w = v_a − v_b,
	// leaves a, enters b; the γ·w² part expands into G2 monomials.
	for _, q := range c.Quads {
		if q.gam == 0 {
			continue
		}
		mono := quadMonomials(q.a, q.b)
		for _, mn := range mono {
			if q.a >= 0 {
				g2b.Add(q.a, mn.p*n+mn.q, -q.gam*mn.c/capAt[q.a])
			}
			if q.b >= 0 {
				g2b.Add(q.b, mn.p*n+mn.q, q.gam*mn.c/capAt[q.b])
			}
		}
	}
	// Diode auxiliary states: ż = (1/vt)·(1+z)·ẇ with ẇ = v̇_a − v̇_b, so
	// ż = (1/vt)·ẇ (linear + input parts) + (1/vt)·z·ẇ (G2 and D1 parts).
	for k, d := range c.Diodes {
		st := nv + nl + k
		wRow := make([]float64, n)
		wIn := make([]float64, m)
		if d.a >= 0 {
			mat.Axpy(1, av.Row(d.a), wRow)
			mat.Axpy(1, bv.Row(d.a), wIn)
		}
		if d.b >= 0 {
			mat.Axpy(-1, av.Row(d.b), wRow)
			mat.Axpy(-1, bv.Row(d.b), wIn)
		}
		inv := 1 / d.vt
		for j, cv := range wRow {
			if cv == 0 {
				continue
			}
			g1.Add(st, j, inv*cv)
			g2b.Add(st, st*n+j, inv*cv)
		}
		for j, cv := range wIn {
			if cv == 0 {
				continue
			}
			b.Add(st, j, inv*cv)
			if d1 == nil {
				d1 = make([]*mat.Dense, m)
			}
			if d1[j] == nil {
				d1[j] = mat.NewDense(n, n)
			}
			d1[j].Add(st, st, inv*cv)
		}
	}

	// Outputs.
	outs := c.Outputs
	if len(outs) == 0 {
		outs = []string{c.Nodes[0]}
	}
	l := mat.NewDense(len(outs), n)
	for r, name := range outs {
		idx, err := c.NodeIndex(name)
		if err != nil {
			return nil, err
		}
		l.Set(r, idx, 1)
	}
	// The CSR mirror of G1 lets the solver layer route large parsed
	// circuits through the sparse LU; small ones still factor densely.
	sys := &qldae.System{N: n, G1: g1, G1S: sparse.FromDense(g1), G2: g2b.Build(), D1: d1, B: b, L: l}
	if sys.G2.NNZ() == 0 {
		sys.G2 = nil
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

type monomial struct {
	p, q int
	c    float64
}

// quadMonomials expands (v_a − v_b)² into state monomials (ground = 0).
func quadMonomials(a, b int) []monomial {
	var out []monomial
	if a >= 0 {
		out = append(out, monomial{a, a, 1})
	}
	if b >= 0 {
		out = append(out, monomial{b, b, 1})
	}
	if a >= 0 && b >= 0 {
		out = append(out, monomial{a, b, -2})
	}
	return out
}

// Summary returns a human-readable inventory for diagnostics.
func (c *Circuit) Summary() string {
	names := make([]string, len(c.Nodes))
	copy(names, c.Nodes)
	sort.Strings(names)
	return fmt.Sprintf("nodes=%d R=%d C=%d L=%d G=%d D=%d I=%d outputs=%v",
		len(c.Nodes), len(c.Resistors), len(c.Caps), len(c.Inductors),
		len(c.Quads), len(c.Diodes), len(c.Sources), c.Outputs)
}
