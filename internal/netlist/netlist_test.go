package netlist

import (
	"math"
	"strings"
	"testing"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/ode"
	"avtmor/internal/schur"
)

const rcLine = `
* two-node RC line driven by a current source
I1 0 n1 IN0 1.0
R1 n1 n2 1.0
C1 n1 0 1.0
C2 n2 0 1.0
R2 n2 0 2.0
.out n2
.end
`

func TestParseRC(t *testing.T) {
	c, err := Parse(strings.NewReader(rcLine))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 2 || len(c.Resistors) != 2 || len(c.Caps) != 2 {
		t.Fatalf("inventory wrong: %s", c.Summary())
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.N != 2 || sys.Inputs() != 1 || sys.G2 != nil {
		t.Fatalf("system shape wrong: n=%d m=%d", sys.N, sys.Inputs())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"R1 a b -1\n",                 // negative value
		"X1 a b 1\n",                  // unknown card
		"I1 0 n1 DC 1\n",              // non-channel source
		"R1 a b\n",                    // too few fields
		"D1 a 0 1e-3 0\n",             // vt = 0
		"G1 a b 1\nI1 0 a IN0 1\n",    // G needs gamma
		"I1 0 n1 IN0 1\nC1 n1 n2 1\n", // floating cap
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			// Some of these fail at Build time instead.
			c, err2 := Parse(strings.NewReader(bad))
			if err2 != nil {
				continue
			}
			if _, err3 := c.Build(); err3 == nil {
				t.Fatalf("input %q: expected an error", bad)
			}
		}
	}
}

func TestBuildRequiresGroundedCaps(t *testing.T) {
	c, err := Parse(strings.NewReader("I1 0 n1 IN0 1\nR1 n1 0 1\nC1 n1 0 1\nR2 n1 n2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build(); err == nil {
		t.Fatal("node without capacitance must be rejected")
	}
}

const diodeLine = `
* current-driven RC stage with one diode to ground
I1 0 n1 IN0 1.0
C1 n1 0 1.0
R1 n1 0 1.0
D1 n1 0 1.0 0.025
.out n1
`

func TestDiodeLinearizationMatchesRawODE(t *testing.T) {
	c, err := Parse(strings.NewReader(diodeLine))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.N != 2 { // v1 + one z state
		t.Fatalf("n = %d, want 2", sys.N)
	}
	if sys.D1 == nil || sys.D1[0].MaxAbs() == 0 {
		t.Fatal("diode driven by the source node must produce a D1 term")
	}
	// Raw ODE: v̇ = u − v − (e^{v/0.025} − 1), simulated with RK4.
	u := func(tt float64) []float64 { return []float64{0.02 * math.Sin(tt)} }
	res := ode.RK4(sys, make([]float64, 2), u, 5, 20000)
	v := 0.0
	h := 5.0 / 20000
	rk := func(v float64, uu float64) float64 {
		f := func(x float64) float64 { return uu - x - (math.Exp(x/0.025) - 1) }
		k1 := f(v)
		k2 := f(v + 0.5*h*k1)
		k3 := f(v + 0.5*h*k2)
		k4 := f(v + h*k3)
		return v + h/6*(k1+2*k2+2*k3+k4)
	}
	worst := 0.0
	for s := 0; s < 20000; s++ {
		tt := float64(s) * h
		// Use midpoint input for comparable accuracy.
		v = rk(v, u(tt + 0.5*h)[0])
		if d := math.Abs(v - res.Y[s+1][0]); d > worst {
			worst = d
		}
	}
	if worst > 5e-4 {
		t.Fatalf("linearized netlist deviates from raw diode ODE by %g", worst)
	}
}

func TestInductorStamp(t *testing.T) {
	src := `
I1 0 n1 IN0 1.0
C1 n1 0 1.0
L1 n1 n2 0.5
C2 n2 0 1.0
R1 n2 0 1.0
.out n2
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.N != 3 {
		t.Fatalf("n = %d, want 3 (2 nodes + 1 inductor)", sys.N)
	}
	// RLC circuit must be stable and have a complex pair.
	eigs, err := schur.Eigenvalues(sys.G1)
	if err != nil {
		t.Fatal(err)
	}
	cplx := 0
	for _, e := range eigs {
		if real(e) >= 0 {
			t.Fatalf("unstable netlist eigenvalue %v", e)
		}
		if imag(e) != 0 {
			cplx++
		}
	}
	if cplx == 0 {
		t.Fatal("expected a complex pair from the LC loop")
	}
}

func TestQuadConductance(t *testing.T) {
	src := `
I1 0 n1 IN0 1.0
C1 n1 0 1.0
G1 n1 0 1.0 0.5
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	// v̇ = u − v − 0.5·v²: check Eval at v = 0.2, u = 0.1.
	dst := make([]float64, 1)
	sys.Eval(dst, []float64{0.2}, []float64{0.1})
	want := 0.1 - 0.2 - 0.5*0.04
	if math.Abs(dst[0]-want) > 1e-14 {
		t.Fatalf("Eval = %v, want %v", dst[0], want)
	}
}

func TestOutputsAndSummary(t *testing.T) {
	c, err := Parse(strings.NewReader(rcLine))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Summary(), "nodes=2") {
		t.Fatalf("summary: %s", c.Summary())
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Output selects n2.
	y := sys.Output([]float64{3, 7})
	if y[0] != 7 {
		t.Fatalf("output %v", y)
	}
	if _, err := c.NodeIndex("nope"); err == nil {
		t.Fatal("unknown node must error")
	}
}

func TestDCGainRC(t *testing.T) {
	c, err := Parse(strings.NewReader(rcLine))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	// DC: solve G1·x = −B·u for u = 1 and read the output.
	rhs := make([]float64, sys.N)
	for i := 0; i < sys.N; i++ {
		rhs[i] = -sys.B.At(i, 0)
	}
	x, err := solveDense(sys.G1, rhs)
	if err != nil {
		t.Fatal(err)
	}
	y := sys.Output(x)
	if math.Abs(y[0]-2) > 1e-12 {
		t.Fatalf("DC gain %v, want 2 (current through R2)", y[0])
	}
}

func solveDense(g *mat.Dense, b []float64) ([]float64, error) {
	return lu.Solve(g, b)
}
