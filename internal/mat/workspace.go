package mat

import "sync"

// Workspace is a reusable scratch-vector pool for the allocation-free
// hot paths of the numerics spine: triangular back-solves, Krylov chain
// iterations, and Newton steps borrow their temporaries here instead of
// calling make per iteration. It is safe for concurrent use (the
// parallel moment generators share one pool), and a zero Workspace is
// ready to use.
//
// Buffers come back with undefined contents: callers must fully
// overwrite what they Get. A buffer too small for the requested length
// is dropped on the floor rather than grown, so a pool that serves one
// problem size — the steady state of every chain — reaches zero
// allocations after the first iteration.
type Workspace struct {
	pool sync.Pool
}

// Get returns a length-n scratch vector with undefined contents.
func (w *Workspace) Get(n int) []float64 {
	if v := w.pool.Get(); v != nil {
		if buf := *(v.(*[]float64)); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

// Put returns a buffer obtained from Get. The caller must not use buf
// (or any slice aliasing it) afterwards.
func (w *Workspace) Put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	w.pool.Put(&buf)
}

// shared is the process-wide workspace behind GetVec/PutVec. The
// numeric layers all solve over a handful of stable dimensions per
// reduction, which is exactly the reuse pattern Workspace wants.
var shared Workspace

// GetVec borrows a length-n scratch vector (undefined contents) from
// the shared workspace pool.
func GetVec(n int) []float64 { return shared.Get(n) }

// PutVec returns a GetVec buffer to the shared pool.
func PutVec(buf []float64) { shared.Put(buf) }

// csharedPool mirrors the shared pool for complex scratch (the
// verification-path evaluators).
var cshared sync.Pool

// GetCVec borrows a length-n complex scratch vector (undefined
// contents) from the shared pool.
func GetCVec(n int) []complex128 {
	if v := cshared.Get(); v != nil {
		if buf := *(v.(*[]complex128)); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]complex128, n)
}

// PutCVec returns a GetCVec buffer to the shared pool.
func PutCVec(buf []complex128) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	cshared.Put(&buf)
}
