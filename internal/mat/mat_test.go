package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(3, 4)
	if m.R != 3 || m.C != 4 {
		t.Fatalf("got %d×%d", m.R, m.C)
	}
	for i := range m.A {
		if m.A[i] != 0 {
			t.Fatalf("nonzero init at %d", i)
		}
	}
}

func TestEyeDiag(t *testing.T) {
	e := Eye(3)
	d := Diag([]float64{1, 1, 1})
	if !e.Equalish(d, 0) {
		t.Fatal("Eye(3) != Diag(ones)")
	}
}

func TestAtSetAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("got %v", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandDense(rng, 4, 7)
	if !m.T().T().Equalish(m, 0) {
		t.Fatal("(Mᵀ)ᵀ != M")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandDense(rng, 5, 5)
	if !m.Mul(Eye(5)).Equalish(m, 1e-15) || !Eye(5).Mul(m).Equalish(m, 1e-15) {
		t.Fatal("identity multiplication failed")
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandDense(r, 3, 4)
		b := RandDense(r, 4, 5)
		c := RandDense(r, 5, 2)
		return a.Mul(b).Mul(c).Equalish(a.Mul(b.Mul(c)), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandDense(r, 3, 5)
		b := RandDense(r, 5, 4)
		// (AB)ᵀ = BᵀAᵀ
		return a.Mul(b).T().Equalish(b.T().Mul(a.T()), 1e-13)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandDense(rng, 6, 3)
	x := RandVec(rng, 3)
	dst := make([]float64, 6)
	a.MulVec(dst, x)
	xm := NewDense(3, 1)
	copy(xm.A, x)
	want := a.Mul(xm)
	for i := range dst {
		if math.Abs(dst[i]-want.At(i, 0)) > 1e-14 {
			t.Fatalf("row %d: %v vs %v", i, dst[i], want.At(i, 0))
		}
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandDense(rng, 6, 3)
	x := RandVec(rng, 6)
	dst := make([]float64, 3)
	a.MulVecT(dst, x)
	want := make([]float64, 3)
	a.T().MulVec(want, x)
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-14 {
			t.Fatalf("col %d: %v vs %v", i, dst[i], want[i])
		}
	}
}

func TestHStackVStack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5}, {6}})
	h := HStack(a, b)
	if h.R != 2 || h.C != 3 || h.At(0, 2) != 5 || h.At(1, 2) != 6 {
		t.Fatalf("HStack wrong: %v", h)
	}
	c := FromRows([][]float64{{7, 8}})
	v := VStack(a, c)
	if v.R != 3 || v.C != 2 || v.At(2, 0) != 7 || v.At(2, 1) != 8 {
		t.Fatalf("VStack wrong: %v", v)
	}
}

func TestSlice(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Slice(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equalish(want, 0) {
		t.Fatalf("Slice wrong: %v", s)
	}
}

func TestColSetCol(t *testing.T) {
	m := NewDense(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	got := m.Col(1)
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("col mismatch at %d", i)
		}
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{3, -4}, {0, 0}})
	if m.FrobNorm() != 5 {
		t.Fatalf("frob = %v", m.FrobNorm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("maxabs = %v", m.MaxAbs())
	}
	if m.Norm1() != 4 {
		t.Fatalf("norm1 = %v", m.Norm1())
	}
}

func TestVecKernels(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("dot = %v", Dot(x, y))
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("norm2")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("norminf")
	}
	z := CopyVec(y)
	Axpy(2, x, z) // z = y + 2x
	for i := range z {
		if z[i] != y[i]+2*x[i] {
			t.Fatal("axpy")
		}
	}
	d := make([]float64, 3)
	SubVec(d, y, x)
	if d[0] != 3 || d[1] != 3 || d[2] != 3 {
		t.Fatal("subvec")
	}
	AddVec(d, x, y)
	if d[2] != 9 {
		t.Fatal("addvec")
	}
	e := Basis(4, 2)
	if e[2] != 1 || Norm2(e) != 1 {
		t.Fatal("basis")
	}
}

func TestNorm2Extreme(t *testing.T) {
	// Values whose squares overflow float64 must still produce a finite norm.
	x := []float64{1e200, 1e200}
	got := Norm2(x)
	want := math.Sqrt2 * 1e200
	if math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExpmDiagonal(t *testing.T) {
	m := Diag([]float64{0, 1, -2})
	e := Expm(m)
	want := Diag([]float64{1, math.E, math.Exp(-2)})
	if !e.Equalish(want, 1e-12) {
		t.Fatalf("Expm diag wrong:\n%v", e)
	}
}

func TestExpmNilpotent(t *testing.T) {
	// For strictly upper triangular N with N² = 0: e^N = I + N.
	n := FromRows([][]float64{{0, 3}, {0, 0}})
	e := Expm(n)
	want := FromRows([][]float64{{1, 3}, {0, 1}})
	if !e.Equalish(want, 1e-13) {
		t.Fatalf("Expm nilpotent wrong:\n%v", e)
	}
}

func TestExpmInverse(t *testing.T) {
	// e^A · e^{-A} = I for random A.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandDense(r, 4, 4)
		prod := Expm(a).Mul(Expm(a.Clone().Scale(-1)))
		return prod.Equalish(Eye(4), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCDenseMul(t *testing.T) {
	a := NewCDense(2, 2)
	a.Set(0, 0, 1i)
	a.Set(1, 1, 1i)
	p := a.Mul(a)
	if p.At(0, 0) != -1 || p.At(1, 1) != -1 {
		t.Fatalf("(iI)² != -I: %v", p.A)
	}
}

func TestComplexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := RandDense(rng, 3, 3)
	c := m.Complex()
	for i := range m.A {
		if real(c.A[i]) != m.A[i] || imag(c.A[i]) != 0 {
			t.Fatal("Complex() mismatch")
		}
	}
	x := RandVec(rng, 3)
	cx := ToComplex(x)
	if NormInf(SubVecNew(RealPart(cx), x)) != 0 {
		t.Fatal("ToComplex/RealPart round trip")
	}
}

// SubVecNew is a tiny test helper returning x-y.
func SubVecNew(x, y []float64) []float64 {
	d := make([]float64, len(x))
	SubVec(d, x, y)
	return d
}

func TestCVecKernels(t *testing.T) {
	x := []complex128{1 + 1i, 2}
	y := []complex128{1 - 1i, 1i}
	// Unconjugated dot: (1+i)(1-i) + 2i = 2 + 2i.
	if got := CDot(x, y); got != 2+2i {
		t.Fatalf("CDot = %v", got)
	}
	if math.Abs(CNorm2([]complex128{3i, 4})-5) > 1e-15 {
		t.Fatal("CNorm2")
	}
	z := make([]complex128, 2)
	CAxpy(2i, x, z)
	if z[0] != (1+1i)*2i || z[1] != 4i {
		t.Fatal("CAxpy")
	}
	CZero(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("CZero")
	}
}

func TestRandStableGershgorin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := RandStable(rng, 8, 0.5)
	// Every Gershgorin disc must lie strictly in the left half plane.
	for i := 0; i < 8; i++ {
		radius := 0.0
		for j := 0; j < 8; j++ {
			if j != i {
				radius += math.Abs(m.At(i, j))
			}
		}
		if m.At(i, i)+radius >= 0 {
			t.Fatalf("row %d disc reaches %v", i, m.At(i, i)+radius)
		}
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).Mul(NewDense(3, 3))
}
