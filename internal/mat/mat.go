// Package mat provides small dense real and complex matrices and the
// vector kernels used throughout avtmor.
//
// Matrices are row-major. Dimensions in this code base are moderate
// (n ≲ a few hundred on the dense side), so the package favours clarity
// and numerical robustness over blocking and cache tricks.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense real matrix.
type Dense struct {
	R, C int
	A    []float64 // len R*C, element (i,j) at A[i*C+j]
}

// NewDense returns an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{R: r, C: c, A: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.A[i*c:(i+1)*c], row)
	}
	return m
}

// Eye returns the n×n identity.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.A[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.A[i*n+i] = v
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.A[i*m.C+j] += v }

// Row returns a view of row i (shared storage).
func (m *Dense) Row(i int) []float64 { return m.A[i*m.C : (i+1)*m.C] }

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	v := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		v[i] = m.A[i*m.C+j]
	}
	return v
}

// SetCol assigns column j from v.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.R {
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.A[i*m.C+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.R, m.C)
	copy(n.A, m.A)
	return n
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.A[j*t.C+i] = m.A[i*m.C+j]
		}
	}
	return t
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.A {
		m.A[i] *= s
	}
	return m
}

// AddScaled adds s*b to m in place (m and b must be the same shape).
func (m *Dense) AddScaled(s float64, b *Dense) *Dense {
	if m.R != b.R || m.C != b.C {
		panic("mat: AddScaled shape mismatch")
	}
	for i := range m.A {
		m.A[i] += s * b.A[i]
	}
	return m
}

// Sub returns m - b as a new matrix.
func (m *Dense) Sub(b *Dense) *Dense {
	out := m.Clone()
	return out.AddScaled(-1, b)
}

// Plus returns m + b as a new matrix.
func (m *Dense) Plus(b *Dense) *Dense {
	out := m.Clone()
	return out.AddScaled(1, b)
}

// Mul returns m*b as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.C != b.R {
		panic(fmt.Sprintf("mat: Mul shape mismatch %d×%d · %d×%d", m.R, m.C, b.R, b.C))
	}
	out := NewDense(m.R, b.C)
	for i := 0; i < m.R; i++ {
		arow := m.A[i*m.C : (i+1)*m.C]
		orow := out.A[i*b.C : (i+1)*b.C]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.A[k*b.C : (k+1)*b.C]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// MulVec computes dst = m*x. dst must have length m.R and must not alias x.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.C || len(dst) != m.R {
		panic("mat: MulVec length mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.A[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecTo is the in-place multiply under its batch-era name: it is
// exactly MulVec (dst = m*x, no allocation), kept as the named sibling
// of MulBatchTo so call sites that batch and call sites that cannot
// read uniformly.
func (m *Dense) MulVecTo(dst, x []float64) { m.MulVec(dst, x) }

// MulBatchTo computes dst[c] = m*xs[c] for every column of the batch,
// in place and allocation-free. Each matrix row is read once per batch
// instead of once per column, which is what amortizes the O(n²) row
// traffic across the right-hand sides of a block solve or a grouped
// Krylov step. dst[c] must not alias any xs column.
func (m *Dense) MulBatchTo(dst, xs [][]float64) {
	if len(dst) != len(xs) {
		panic("mat: MulBatchTo batch size mismatch")
	}
	for c, x := range xs {
		if len(x) != m.C || len(dst[c]) != m.R {
			panic("mat: MulBatchTo length mismatch")
		}
	}
	for i := 0; i < m.R; i++ {
		row := m.A[i*m.C : (i+1)*m.C]
		for c, x := range xs {
			s := 0.0
			for j, v := range row {
				s += v * x[j]
			}
			dst[c][i] = s
		}
	}
}

// MulVecT computes dst = mᵀ*x. dst must have length m.C and must not alias x.
func (m *Dense) MulVecT(dst, x []float64) {
	if len(x) != m.R || len(dst) != m.C {
		panic("mat: MulVecT length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.R; i++ {
		row := m.A[i*m.C : (i+1)*m.C]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Dense) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.A {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobNorm returns the Frobenius norm.
func (m *Dense) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.A {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the maximum absolute column sum.
func (m *Dense) Norm1() float64 {
	sums := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			sums[j] += math.Abs(m.A[i*m.C+j])
		}
	}
	mx := 0.0
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Equalish reports whether m and b agree elementwise within tol.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	if m.R != b.R || m.C != b.C {
		return false
	}
	for i := range m.A {
		if math.Abs(m.A[i]-b.A[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			fmt.Fprintf(&sb, "% .6g ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// HStack concatenates matrices left to right (equal row counts).
func HStack(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	r := ms[0].R
	c := 0
	for _, m := range ms {
		if m.R != r {
			panic("mat: HStack row mismatch")
		}
		c += m.C
	}
	out := NewDense(r, c)
	off := 0
	for _, m := range ms {
		for i := 0; i < r; i++ {
			copy(out.A[i*c+off:i*c+off+m.C], m.Row(i))
		}
		off += m.C
	}
	return out
}

// VStack concatenates matrices top to bottom (equal column counts).
func VStack(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	c := ms[0].C
	r := 0
	for _, m := range ms {
		if m.C != c {
			panic("mat: VStack column mismatch")
		}
		r += m.R
	}
	out := NewDense(r, c)
	row := 0
	for _, m := range ms {
		copy(out.A[row*c:(row+m.R)*c], m.A)
		row += m.R
	}
	return out
}

// Slice returns a copy of the submatrix rows [r0,r1) × cols [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.R || c0 < 0 || c1 > m.C || r0 > r1 || c0 > c1 {
		panic("mat: Slice out of range")
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.A[i*m.C+c0:i*m.C+c1])
	}
	return out
}
