package mat

import "math"

// Expm returns the matrix exponential e^M computed by scaling and squaring
// with a diagonal Padé(6,6) approximant. It is used by the test suite to
// verify Kronecker-sum identities (e^{A⊕B} = e^A ⊗ e^B, the engine behind
// Theorem 1 of the paper); accuracy on the well-scaled test matrices is far
// below the test tolerances.
func Expm(m *Dense) *Dense {
	if m.R != m.C {
		panic("mat: Expm needs a square matrix")
	}
	n := m.R
	// Scale so that ||A/2^s||_1 <= 0.5.
	norm := m.Norm1()
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	a := m.Clone().Scale(math.Pow(2, -float64(s)))

	// Padé(6,6): N(A) = sum c_k A^k, D(A) = sum (-1)^k c_k A^k.
	c := padeCoeffs(6)
	pow := Eye(n) // A^k, starting at k = 0
	num := Eye(n).Scale(c[0])
	den := Eye(n).Scale(c[0])
	sign := 1.0
	for k := 1; k <= 6; k++ {
		pow = pow.Mul(a)
		sign = -sign
		num.AddScaled(c[k], pow)
		den.AddScaled(sign*c[k], pow)
	}
	x := solveDense(den, num)
	for i := 0; i < s; i++ {
		x = x.Mul(x)
	}
	return x
}

func padeCoeffs(q int) []float64 {
	c := make([]float64, q+1)
	c[0] = 1
	for k := 1; k <= q; k++ {
		c[k] = c[k-1] * float64(q-k+1) / float64(k*(2*q-k+1))
	}
	return c
}

// solveDense solves A X = B by Gaussian elimination with partial pivoting.
// A local copy so that mat does not depend on package lu (which depends on
// mat). Only used by Expm; sizes are small.
func solveDense(a, b *Dense) *Dense {
	n := a.R
	if a.C != n || b.R != n {
		panic("mat: solveDense shape mismatch")
	}
	lu := a.Clone()
	x := b.Clone()
	for k := 0; k < n; k++ {
		// Pivot.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			panic("mat: solveDense singular matrix")
		}
		if p != k {
			swapRows(lu, p, k)
			swapRows(x, p, k)
		}
		piv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / piv
			if f == 0 {
				continue
			}
			lu.Set(i, k, 0)
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
			for j := 0; j < x.C; j++ {
				x.Add(i, j, -f*x.At(k, j))
			}
		}
	}
	for k := n - 1; k >= 0; k-- {
		piv := lu.At(k, k)
		for j := 0; j < x.C; j++ {
			s := x.At(k, j)
			for i := k + 1; i < n; i++ {
				s -= lu.At(k, i) * x.At(i, j)
			}
			x.Set(k, j, s/piv)
		}
	}
	return x
}

func swapRows(m *Dense, i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
