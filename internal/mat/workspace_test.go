package mat

import (
	"math/rand"
	"testing"
)

func TestWorkspaceReuse(t *testing.T) {
	var w Workspace
	a := w.Get(64)
	if len(a) != 64 {
		t.Fatalf("Get(64) returned length %d", len(a))
	}
	for i := range a {
		a[i] = float64(i)
	}
	w.Put(a)
	b := w.Get(32) // smaller request may reuse the same backing array
	if len(b) != 32 {
		t.Fatalf("Get(32) returned length %d", len(b))
	}
	w.Put(b)
	// A too-large request after a small pooled buffer must still work.
	c := w.Get(128)
	if len(c) != 128 {
		t.Fatalf("Get(128) returned length %d", len(c))
	}
	w.Put(c)
	// Zero-capacity put is a no-op, not a poison pill.
	w.Put(nil)
	if d := w.Get(8); len(d) != 8 {
		t.Fatal("pool poisoned by nil Put")
	}
}

func TestMulBatchToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := RandDense(rng, 23, 17)
	const k = 5
	xs := make([][]float64, k)
	dst := make([][]float64, k)
	want := make([][]float64, k)
	for c := 0; c < k; c++ {
		xs[c] = RandVec(rng, 17)
		dst[c] = make([]float64, 23)
		want[c] = make([]float64, 23)
		m.MulVec(want[c], xs[c])
	}
	m.MulBatchTo(dst, xs)
	for c := 0; c < k; c++ {
		for i := range dst[c] {
			if dst[c][i] != want[c][i] {
				t.Fatalf("col %d row %d: batch %v, MulVec %v", c, i, dst[c][i], want[c][i])
			}
		}
	}
	// MulVecTo is MulVec by another name.
	one := make([]float64, 23)
	m.MulVecTo(one, xs[0])
	for i := range one {
		if one[i] != want[0][i] {
			t.Fatal("MulVecTo diverged from MulVec")
		}
	}
}
