package mat

import "math/rand"

// Test-support generators. They live in the main package (not _test) because
// several downstream packages' tests and benchmarks share them.

// RandDense returns an r×c matrix with entries uniform in [-1, 1).
func RandDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.A {
		m.A[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandVec returns a length-n vector with entries uniform in [-1, 1).
func RandVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

// RandStable returns an n×n matrix whose eigenvalues all have real part
// below -margin: a random matrix shifted left by its Gershgorin radius.
// Such matrices model the G1 of a dissipative circuit and guarantee the
// solvability condition λi+λj+λk ≠ 0 used by the Sylvester decoupling.
func RandStable(rng *rand.Rand, n int, margin float64) *Dense {
	m := RandDense(rng, n, n)
	for i := 0; i < n; i++ {
		radius := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				radius += abs(m.At(i, j))
			}
		}
		m.Set(i, i, -radius-margin-abs(m.At(i, i)))
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
