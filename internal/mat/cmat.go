package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CDense is a row-major dense complex matrix.
type CDense struct {
	R, C int
	A    []complex128
}

// NewCDense returns an r×c zero complex matrix.
func NewCDense(r, c int) *CDense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &CDense{R: r, C: c, A: make([]complex128, r*c)}
}

// Complex converts a real matrix to complex.
func (m *Dense) Complex() *CDense {
	out := NewCDense(m.R, m.C)
	for i, v := range m.A {
		out.A[i] = complex(v, 0)
	}
	return out
}

// At returns element (i, j).
func (m *CDense) At(i, j int) complex128 { return m.A[i*m.C+j] }

// Set assigns element (i, j).
func (m *CDense) Set(i, j int, v complex128) { m.A[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *CDense) Clone() *CDense {
	n := NewCDense(m.R, m.C)
	copy(n.A, m.A)
	return n
}

// Mul returns m*b.
func (m *CDense) Mul(b *CDense) *CDense {
	if m.C != b.R {
		panic("mat: CDense Mul shape mismatch")
	}
	out := NewCDense(m.R, b.C)
	for i := 0; i < m.R; i++ {
		arow := m.A[i*m.C : (i+1)*m.C]
		orow := out.A[i*b.C : (i+1)*b.C]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.A[k*b.C : (k+1)*b.C]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// MulVec computes dst = m*x for complex vectors.
func (m *CDense) MulVec(dst, x []complex128) {
	if len(x) != m.C || len(dst) != m.R {
		panic("mat: CDense MulVec length mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.A[i*m.C : (i+1)*m.C]
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MaxAbs returns the largest element modulus.
func (m *CDense) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.A {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Complex vector helpers.

// CDot returns the unconjugated product xᵀy (bilinear, matching the
// real-coefficient algebra used by the transfer-function formulas).
func CDot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic("mat: CDot length mismatch")
	}
	var s complex128
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// CNorm2 returns the Euclidean norm of a complex vector.
func CNorm2(x []complex128) float64 {
	s := 0.0
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// CAxpy computes y += a*x.
func CAxpy(a complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic("mat: CAxpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ToComplex widens a real vector.
func ToComplex(x []float64) []complex128 {
	y := make([]complex128, len(x))
	for i, v := range x {
		y[i] = complex(v, 0)
	}
	return y
}

// RealPart extracts the real parts of x.
func RealPart(x []complex128) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = real(v)
	}
	return y
}

// ImagPart extracts the imaginary parts of x.
func ImagPart(x []complex128) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = imag(v)
	}
	return y
}

// CZero clears x.
func CZero(x []complex128) {
	for i := range x {
		x[i] = 0
	}
}
