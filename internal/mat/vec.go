package mat

import "math"

// Vector kernels on []float64. All functions panic on length mismatch,
// mirroring the matrix API.

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation to dodge overflow on extreme inputs.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-abs element of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// SubVec computes dst = x - y.
func SubVec(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: SubVec length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// AddVec computes dst = x + y.
func AddVec(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: AddVec length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Basis returns the length-n unit vector e_i.
func Basis(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}
