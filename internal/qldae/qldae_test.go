package qldae

import (
	"math"
	"math/rand"
	"testing"

	"avtmor/internal/kron"
	"avtmor/internal/mat"
	"avtmor/internal/qr"
	"avtmor/internal/sparse"
)

// randSystem builds a random stable QLDAE with m inputs, with quadratic
// and bilinear terms.
func randSystem(rng *rand.Rand, n, m int) *System {
	g2b := sparse.NewBuilder(n, n*n)
	for i := 0; i < 3*n; i++ {
		p, q := rng.Intn(n), rng.Intn(n)
		g2b.Add(rng.Intn(n), p*n+q, 0.3*(2*rng.Float64()-1))
	}
	d1 := make([]*mat.Dense, m)
	for i := range d1 {
		d1[i] = mat.RandDense(rng, n, n).Scale(0.2)
	}
	return &System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.5),
		G2: g2b.Build(),
		D1: d1,
		B:  mat.RandDense(rng, n, m),
		L:  mat.RandDense(rng, 1, n),
	}
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randSystem(rng, 6, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *s
	bad.B = mat.NewDense(5, 2)
	if bad.Validate() == nil {
		t.Fatal("expected B shape error")
	}
	bad2 := *s
	bad2.D1 = bad2.D1[:1]
	if bad2.Validate() == nil {
		t.Fatal("expected D1 count error")
	}
}

func TestEvalAgainstExplicitKron(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, m := 7, 2
	s := randSystem(rng, n, m)
	x := mat.RandVec(rng, n)
	u := mat.RandVec(rng, m)
	got := make([]float64, n)
	s.Eval(got, x, u)
	// Explicit: G1x + G2(x⊗x) + D1_i x u_i + B u.
	want := make([]float64, n)
	s.G1.MulVec(want, x)
	xx := kron.VecKron(x, x)
	g2x := make([]float64, n)
	s.G2.MulVec(g2x, xx)
	mat.Axpy(1, g2x, want)
	tmp := make([]float64, n)
	for i := 0; i < m; i++ {
		s.D1[i].MulVec(tmp, x)
		mat.Axpy(u[i], tmp, want)
	}
	s.B.MulVec(tmp, u)
	mat.Axpy(1, tmp, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Eval mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestJacobianFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 6, 2
	s := randSystem(rng, n, m)
	// Add a cubic term too.
	g3b := sparse.NewBuilder(n, n*n*n)
	for i := 0; i < n; i++ {
		g3b.Add(rng.Intn(n), rng.Intn(n*n*n), 0.1*(2*rng.Float64()-1))
	}
	s.G3 = g3b.Build()
	x := mat.RandVec(rng, n)
	u := mat.RandVec(rng, m)
	jac := s.Jacobian(x, u)
	const h = 1e-6
	f0 := make([]float64, n)
	s.Eval(f0, x, u)
	fp := make([]float64, n)
	for j := 0; j < n; j++ {
		xp := mat.CopyVec(x)
		xp[j] += h
		s.Eval(fp, xp, u)
		for i := 0; i < n; i++ {
			fd := (fp[i] - f0[i]) / h
			if math.Abs(fd-jac.At(i, j)) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("Jacobian (%d,%d): fd %v vs %v", i, j, fd, jac.At(i, j))
			}
		}
	}
}

func TestRegularize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 5
	s := randSystem(rng, n, 1)
	// Well-conditioned C.
	c := mat.RandStable(rng, n, 1)
	reg, err := Regularize(c, s)
	if err != nil {
		t.Fatal(err)
	}
	// C·RHS_reg(x,u) must equal RHS_orig(x,u).
	x := mat.RandVec(rng, n)
	u := []float64{0.7}
	rr := make([]float64, n)
	reg.Eval(rr, x, u)
	crr := make([]float64, n)
	c.MulVec(crr, rr)
	want := make([]float64, n)
	s.Eval(want, x, u)
	for i := range want {
		if math.Abs(crr[i]-want[i]) > 1e-9 {
			t.Fatalf("Regularize mismatch at %d: %v vs %v", i, crr[i], want[i])
		}
	}
}

func TestRegularizeSingularC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randSystem(rng, 3, 1)
	c := mat.NewDense(3, 3) // singular
	if _, err := Regularize(c, s); err == nil {
		t.Fatal("expected error for singular C")
	}
}

func TestProjectGalerkinConsistency(t *testing.T) {
	// For x = V·x̂ the reduced RHS must equal Vᵀ·RHS(V·x̂): exactness of
	// Galerkin projection on the reduced manifold.
	rng := rand.New(rand.NewSource(6))
	n, m, q := 10, 2, 4
	s := randSystem(rng, n, m)
	// Add a cubic term to exercise projectCube.
	g3b := sparse.NewBuilder(n, n*n*n)
	for i := 0; i < 2*n; i++ {
		g3b.Add(rng.Intn(n), rng.Intn(n*n*n), 0.05*(2*rng.Float64()-1))
	}
	s.G3 = g3b.Build()
	cols := make([][]float64, q)
	for i := range cols {
		cols[i] = mat.RandVec(rng, n)
	}
	v := qr.Orthonormalize(cols, 1e-12)
	rom := s.Project(v)
	if err := rom.Validate(); err != nil {
		t.Fatal(err)
	}
	xhat := mat.RandVec(rng, q)
	u := mat.RandVec(rng, m)
	// Reduced RHS.
	rhat := make([]float64, q)
	rom.Eval(rhat, xhat, u)
	// Vᵀ·RHS(V·x̂).
	x := LiftState(v, xhat)
	rfull := make([]float64, n)
	s.Eval(rfull, x, u)
	want := make([]float64, q)
	v.MulVecT(want, rfull)
	for i := range want {
		if math.Abs(rhat[i]-want[i]) > 1e-9 {
			t.Fatalf("Galerkin mismatch at %d: %v vs %v", i, rhat[i], want[i])
		}
	}
	// Output map consistency: L̂·x̂ = L·V·x̂.
	yhat := rom.Output(xhat)
	y := s.Output(x)
	if math.Abs(yhat[0]-y[0]) > 1e-10 {
		t.Fatalf("output mismatch: %v vs %v", yhat[0], y[0])
	}
}

func TestProjectIdentityBasis(t *testing.T) {
	// Projecting with V = I must reproduce the system exactly.
	rng := rand.New(rand.NewSource(7))
	n := 6
	s := randSystem(rng, n, 1)
	rom := s.Project(mat.Eye(n))
	x := mat.RandVec(rng, n)
	u := []float64{0.3}
	a := make([]float64, n)
	b := make([]float64, n)
	s.Eval(a, x, u)
	rom.Eval(b, x, u)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-10 {
			t.Fatalf("identity projection mismatch at %d", i)
		}
	}
}

func TestOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randSystem(rng, 5, 1)
	s.L = mat.RandDense(rng, 3, 5)
	y := s.Output(mat.RandVec(rng, 5))
	if len(y) != 3 {
		t.Fatalf("output length %d", len(y))
	}
	if s.Outputs() != 3 || s.Inputs() != 1 {
		t.Fatal("dims wrong")
	}
}
