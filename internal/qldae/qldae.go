// Package qldae models quadratic-linear differential-algebraic systems
//
//	C·x' = G1·x + G2·(x⊗x) + G3·(x⊗x⊗x) + Σ_i D1_i·x·u_i + B·u,   y = L·x
//
// — Eq. (1)/(2) of the paper, extended with the cubic term of §3.4 and
// multi-input structure (§3.3). An invertible C is absorbed by
// Regularize, matching the paper's trimmed form (2).
package qldae

import (
	"errors"
	"fmt"
	"sort"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/solver"
	"avtmor/internal/sparse"
)

// System is a (regularized) QLDAE in the trimmed form (2): x' = G1 x +
// G2 (x⊗x) + G3 (x⊗x⊗x) + Σ D1_i x u_i + B u, y = L x. Any of G2, G3,
// D1 may be nil.
//
// G1 exists in up to two representations: the dense G1 and the CSR
// mirror G1S. Small systems carry only the dense form; circuit builders
// attach G1S so the solver layer can route large systems through the
// sparse LU; and systems beyond the dense regime (n ≳ a few thousand)
// may carry only G1S — at least one of the two must be present. Paths
// that structurally need the dense form (the Schur-based H2/H3
// associated solves, Hankel order selection, complex-frequency
// verification) report an error on CSR-only systems.
type System struct {
	N   int          // state dimension
	G1  *mat.Dense   // n×n, nil only when G1S is set
	G1S *sparse.CSR  // optional n×n CSR mirror of G1
	G2  *sparse.CSR  // n×n², nil if absent
	G3  *sparse.CSR  // n×n³, nil if absent
	D1  []*mat.Dense // one n×n block per input, nil entries/slice if absent
	B   *mat.Dense   // n×m
	L   *mat.Dense   // p×n output map
}

// Inputs returns the input count m.
func (s *System) Inputs() int { return s.B.C }

// Outputs returns the output count p.
func (s *System) Outputs() int { return s.L.R }

// Validate checks dimensional consistency.
func (s *System) Validate() error {
	n := s.N
	if s.G1 == nil && s.G1S == nil {
		return fmt.Errorf("qldae: G1 must be present (dense or CSR)")
	}
	if s.G1 != nil && (s.G1.R != n || s.G1.C != n) {
		return fmt.Errorf("qldae: G1 must be %d×%d", n, n)
	}
	if s.G1S != nil && (s.G1S.Rows != n || s.G1S.Cols != n) {
		return fmt.Errorf("qldae: G1S must be %d×%d, got %d×%d", n, n, s.G1S.Rows, s.G1S.Cols)
	}
	if s.G2 != nil && (s.G2.Rows != n || s.G2.Cols != n*n) {
		return fmt.Errorf("qldae: G2 must be %d×%d, got %d×%d", n, n*n, s.G2.Rows, s.G2.Cols)
	}
	if s.G3 != nil && (s.G3.Rows != n || s.G3.Cols != n*n*n) {
		return fmt.Errorf("qldae: G3 must be %d×%d", n, n*n*n)
	}
	if s.B == nil || s.B.R != n || s.B.C < 1 {
		return errors.New("qldae: B must have n rows and at least one column")
	}
	if s.D1 != nil && len(s.D1) != s.B.C {
		return fmt.Errorf("qldae: D1 must have one block per input (%d), got %d", s.B.C, len(s.D1))
	}
	for i, d := range s.D1 {
		if d != nil && (d.R != n || d.C != n) {
			return fmt.Errorf("qldae: D1[%d] must be %d×%d", i, n, n)
		}
	}
	if s.L == nil || s.L.C != n || s.L.R < 1 {
		return errors.New("qldae: L must have n columns and at least one row")
	}
	return nil
}

// Regularize absorbs an invertible descriptor matrix C, returning the
// trimmed system with every coefficient pre-multiplied by C⁻¹ (the
// paper's reduction from (1) to (2) for regular systems).
func Regularize(c *mat.Dense, s *System) (*System, error) {
	f, err := lu.Factor(c)
	if err != nil {
		return nil, fmt.Errorf("qldae: descriptor matrix not invertible: %w", err)
	}
	out := &System{N: s.N, L: s.L.Clone()}
	out.G1 = f.SolveMat(s.G1)
	out.B = f.SolveMat(s.B)
	if s.G2 != nil {
		out.G2 = solveCSR(f, s.G2)
	}
	if s.G3 != nil {
		out.G3 = solveCSR(f, s.G3)
	}
	if s.D1 != nil {
		out.D1 = make([]*mat.Dense, len(s.D1))
		for i, d := range s.D1 {
			if d != nil {
				out.D1[i] = f.SolveMat(d)
			}
		}
	}
	return out, nil
}

// solveCSRBatch caps how many nonzero columns one batched substitution
// carries during Regularize: wide enough to amortize the factor
// traversal, narrow enough that the k·n scratch of a G3 regularization
// (n³ columns in the worst case) stays modest.
const solveCSRBatch = 32

// solveCSR computes C⁻¹·M for a sparse M, returning a sparse result.
// Only the nonzero columns are solved, grouped solveCSRBatch at a time
// through the dense LU's block substitution — each per-column solution
// is bit-identical to a scalar solve, so the grouping is invisible in
// the output.
func solveCSR(f *lu.LU, m *sparse.CSR) *sparse.CSR {
	n := f.N()
	// Group nonzeros by column.
	colEntries := map[int][]sparse.Coord{}
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.ColIdx[k]
			colEntries[c] = append(colEntries[c], sparse.Coord{Row: r, Col: c, Val: m.Val[k]})
		}
	}
	b := sparse.NewBuilder(m.Rows, m.Cols)
	batch := make([][]float64, 0, solveCSRBatch)
	colIDs := make([]int, 0, solveCSRBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		f.SolveBatch(batch)
		for bi, col := range batch {
			for i, v := range col {
				if v != 0 {
					b.Add(i, colIDs[bi], v)
				}
			}
			mat.PutVec(col)
		}
		batch = batch[:0]
		colIDs = colIDs[:0]
	}
	// Iterate columns in sorted order: map iteration order would vary
	// run to run, and while the builder re-sorts its entries, the batch
	// grouping (and thus the floating-point accumulation pattern of any
	// future batched kernel) must not depend on the scheduler.
	cols := make([]int, 0, len(colEntries))
	for c := range colEntries {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for _, c := range cols {
		col := mat.GetVec(n)
		mat.Zero(col)
		for _, e := range colEntries[c] {
			col[e.Row] += e.Val
		}
		batch = append(batch, col)
		colIDs = append(colIDs, c)
		if len(batch) == solveCSRBatch {
			flush()
		}
	}
	flush()
	//avtmorlint:ignore wspool every col is released by flush above: ownership moves into the batch at append time
	return b.Build()
}

// MulG1 computes dst = G1·x through whichever representation is present
// (CSR preferred when the dense form is absent).
func (s *System) MulG1(dst, x []float64) {
	if s.G1 != nil {
		s.G1.MulVecTo(dst, x)
		return
	}
	s.G1S.MulVecTo(dst, x)
}

// Eval computes dst = RHS(x, u). Scratch comes from the shared
// workspace pool, so the per-stage integrator loops (four Evals per RK4
// step, one per Newton iteration) evaluate allocation-free.
func (s *System) Eval(dst, x, u []float64) {
	if len(x) != s.N || len(dst) != s.N || len(u) != s.Inputs() {
		panic("qldae: Eval length mismatch")
	}
	s.MulG1(dst, x)
	if s.G2 != nil {
		s.G2.QuadAddApply(dst, 1, x, x)
	}
	if s.G3 != nil {
		cube := mat.GetVec(s.N)
		s.G3.CubeApply(cube, x)
		mat.Axpy(1, cube, dst)
		mat.PutVec(cube)
	}
	var tmp []float64
	for i, d := range s.D1 {
		if d == nil || u[i] == 0 {
			continue
		}
		if tmp == nil {
			tmp = mat.GetVec(s.N)
		}
		d.MulVec(tmp, x)
		mat.Axpy(u[i], tmp, dst)
	}
	if tmp != nil {
		mat.PutVec(tmp)
	}
	for i := 0; i < s.Inputs(); i++ {
		if u[i] == 0 {
			continue
		}
		for r := 0; r < s.N; r++ {
			dst[r] += s.B.At(r, i) * u[i]
		}
	}
}

// Jacobian returns ∂RHS/∂x at (x, u) as a dense matrix.
func (s *System) Jacobian(x, u []float64) *mat.Dense {
	var j *mat.Dense
	if s.G1 != nil {
		j = s.G1.Clone()
	} else {
		j = s.G1S.Dense()
	}
	if s.G2 != nil {
		s.G2.QuadJacobian(j.A, 1, x)
	}
	if s.G3 != nil {
		s.G3.CubeJacobian(j.A, 1, x)
	}
	for i, d := range s.D1 {
		if d == nil || u[i] == 0 {
			continue
		}
		j.AddScaled(u[i], d)
	}
	return j
}

// JacobianCSR assembles ∂RHS/∂x at (x, u) directly in CSR form, never
// touching n² dense entries: G1 nonzeros (CSR mirror preferred), the
// quadratic/cubic Jacobian triplets, and the nonzeros of any active D1
// blocks. This is the operand the sparse-direct Newton path of
// ode.Trapezoidal factors once per step.
func (s *System) JacobianCSR(x, u []float64) *sparse.CSR {
	return s.JacobianCSRInto(sparse.NewBuilder(s.N, s.N), x, u)
}

// JacobianCSRInto is JacobianCSR assembling through a caller-owned
// builder (Reset here before use): the Newton loop of ode.Trapezoidal
// assembles a same-structure Jacobian thousands of times per transient,
// and reusing one triplet slab keeps that path from regrowing COO
// storage on every iteration. The built CSR is fresh either way.
func (s *System) JacobianCSRInto(b *sparse.Builder, x, u []float64) *sparse.CSR {
	b.Reset()
	if s.G1S != nil {
		g := s.G1S
		for r := 0; r < g.Rows; r++ {
			for k := g.RowPtr[r]; k < g.RowPtr[r+1]; k++ {
				b.Add(r, g.ColIdx[k], g.Val[k])
			}
		}
	} else {
		for i := 0; i < s.N; i++ {
			for j, v := range s.G1.Row(i) {
				if v != 0 {
					b.Add(i, j, v)
				}
			}
		}
	}
	if s.G2 != nil {
		s.G2.QuadJacobianVisit(1, x, b.Add)
	}
	if s.G3 != nil {
		s.G3.CubeJacobianVisit(1, x, b.Add)
	}
	for i, d := range s.D1 {
		if d == nil || u[i] == 0 {
			continue
		}
		for r := 0; r < d.R; r++ {
			for c, v := range d.Row(r) {
				if v != 0 {
					b.Add(r, c, u[i]*v)
				}
			}
		}
	}
	return b.Build()
}

// Output computes y = L·x.
func (s *System) Output(x []float64) []float64 {
	y := make([]float64, s.L.R)
	s.L.MulVec(y, x)
	return y
}

// projectSparseCutoff is the state dimension beyond which Project
// routes the G1 congruence through the CSR mirror when one exists. It
// is the solver layer's dense routing cutoff, referenced (not copied)
// so retuning the routing policy keeps projection and factorization on
// the same side and small systems keep their dense-path numerics bit
// for bit.
const projectSparseCutoff = solver.AutoDenseCutoff

// Project performs the Galerkin reduction x ≈ V·x̂ with column-orthonormal
// V ∈ R^{n×q}: Ĝ1 = VᵀG1V, Ĝ2 = VᵀG2(V⊗V), Ĝ3 = VᵀG3(V⊗V⊗V),
// D̂1 = VᵀD1V, B̂ = VᵀB, L̂ = LV.
func (s *System) Project(v *mat.Dense) *System {
	if v.R != s.N {
		panic("qldae: Project basis row mismatch")
	}
	q := v.C
	vt := v.T()
	out := &System{N: q}
	if s.G1 != nil && (s.G1S == nil || s.N < projectSparseCutoff) {
		out.G1 = vt.Mul(s.G1).Mul(v)
	} else {
		// Vᵀ·(G1S·V): O(nnz·q) instead of O(n²·q). Large mirrored
		// systems take this route too — the dense Vᵀ·G1 pass is the
		// single biggest flop block of a big-circuit reduction, and the
		// CSR mirror holds the same entries.
		out.G1 = vt.Mul(s.G1S.MulDense(v))
	}
	out.B = vt.Mul(s.B)
	out.L = s.L.Mul(v)
	if s.D1 != nil {
		out.D1 = make([]*mat.Dense, len(s.D1))
		for i, d := range s.D1 {
			if d != nil {
				out.D1[i] = vt.Mul(d).Mul(v)
			}
		}
	}
	if s.G2 != nil {
		out.G2 = projectQuad(s.G2, v)
	}
	if s.G3 != nil {
		out.G3 = projectCube(s.G3, v)
	}
	return out
}

// projectQuad computes Vᵀ·G2·(V⊗V) as a CSR of the dense q×q² result.
func projectQuad(g2 *sparse.CSR, v *mat.Dense) *sparse.CSR {
	n, q := v.R, v.C
	// t = G2·(V⊗V) ∈ R^{n×q²}: row i gets Σ val·V[p,a]·V[r,b] at (a·q+b).
	t := mat.NewDense(n, q*q)
	for i := 0; i < g2.Rows; i++ {
		ti := t.Row(i)
		for k := g2.RowPtr[i]; k < g2.RowPtr[i+1]; k++ {
			c := g2.ColIdx[k]
			p, r := c/n, c%n
			val := g2.Val[k]
			vp := v.Row(p)
			vr := v.Row(r)
			for a := 0; a < q; a++ {
				va := val * vp[a]
				if va == 0 {
					continue
				}
				base := a * q
				for b := 0; b < q; b++ {
					ti[base+b] += va * vr[b]
				}
			}
		}
	}
	return sparse.FromDense(v.T().Mul(t))
}

// projectCube computes Vᵀ·G3·(V⊗V⊗V) as a CSR of the dense q×q³ result.
func projectCube(g3 *sparse.CSR, v *mat.Dense) *sparse.CSR {
	n, q := v.R, v.C
	t := mat.NewDense(n, q*q*q)
	for i := 0; i < g3.Rows; i++ {
		ti := t.Row(i)
		for k := g3.RowPtr[i]; k < g3.RowPtr[i+1]; k++ {
			c := g3.ColIdx[k]
			p, r, w := c/(n*n), (c/n)%n, c%n
			val := g3.Val[k]
			vp, vr, vw := v.Row(p), v.Row(r), v.Row(w)
			for a := 0; a < q; a++ {
				va := val * vp[a]
				if va == 0 {
					continue
				}
				for b := 0; b < q; b++ {
					vab := va * vr[b]
					if vab == 0 {
						continue
					}
					base := (a*q + b) * q
					for cc := 0; cc < q; cc++ {
						ti[base+cc] += vab * vw[cc]
					}
				}
			}
		}
	}
	return sparse.FromDense(v.T().Mul(t))
}

// LiftState maps a reduced state back to full coordinates: x = V·x̂.
func LiftState(v *mat.Dense, xhat []float64) []float64 {
	x := make([]float64, v.R)
	v.MulVec(x, xhat)
	return x
}
