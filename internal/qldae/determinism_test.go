package qldae

import (
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

func sameCSR(a, b *sparse.CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// TestRegularizeDeterministic pins the detrom contract on solveCSR:
// Regularize must produce bit-identical sparse coefficients on every
// run. The column work list used to come from ranging over a map, so
// the batch grouping — and with it the door to grouping-dependent
// floating-point accumulation in any future batched kernel — varied
// with Go's randomized map iteration order; columns are now solved in
// sorted order.
func TestRegularizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 6
	s := randSystem(rng, n, 1)
	c := mat.RandStable(rng, n, 1)
	ref, err := Regularize(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if ref.G2 == nil || len(ref.G2.Val) == 0 {
		t.Fatal("fixture has no sparse G2; the test exercises nothing")
	}
	for run := 0; run < 20; run++ {
		got, err := Regularize(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if !sameCSR(ref.G2, got.G2) {
			t.Fatalf("run %d: Regularize G2 differs bit for bit from the first run", run)
		}
	}
}
