package qldae

import (
	"math"
	"math/rand"
	"testing"

	"avtmor/internal/mat"
	"avtmor/internal/sparse"
)

// Additional coverage of the descriptor path and state lifting.

func TestRegularizeWithCubicTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 5
	g3b := sparse.NewBuilder(n, n*n*n)
	for i := 0; i < 2*n; i++ {
		g3b.Add(rng.Intn(n), rng.Intn(n*n*n), 0.2*(2*rng.Float64()-1))
	}
	s := &System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		G3: g3b.Build(),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	c := mat.RandStable(rng, n, 1)
	reg, err := Regularize(c, s)
	if err != nil {
		t.Fatal(err)
	}
	// C·RHS_reg = RHS_orig on a random state (cubic path included).
	x := mat.RandVec(rng, n)
	u := []float64{0.4}
	rr := make([]float64, n)
	reg.Eval(rr, x, u)
	crr := make([]float64, n)
	c.MulVec(crr, rr)
	want := make([]float64, n)
	s.Eval(want, x, u)
	for i := range want {
		if math.Abs(crr[i]-want[i]) > 1e-9 {
			t.Fatalf("cubic Regularize mismatch at %d: %v vs %v", i, crr[i], want[i])
		}
	}
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegularizeDiagonalDescriptor(t *testing.T) {
	// The MNA-typical case: C = diag(capacitances). Regularize must scale
	// each row by 1/C_i exactly.
	rng := rand.New(rand.NewSource(62))
	n := 4
	s := &System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		B:  mat.RandDense(rng, n, 1),
		L:  mat.RandDense(rng, 1, n),
	}
	caps := []float64{1, 2, 0.5, 4}
	c := mat.Diag(caps)
	reg, err := Regularize(c, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := s.G1.At(i, j) / caps[i]
			if math.Abs(reg.G1.At(i, j)-want) > 1e-12 {
				t.Fatalf("row scaling wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestLiftState(t *testing.T) {
	v := mat.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	x := LiftState(v, []float64{2, 3})
	want := []float64{2, 3, 5}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("lift wrong at %d: %v", i, x[i])
		}
	}
}

func TestProjectMISO(t *testing.T) {
	// MIMO projection must reduce B and every D1 block consistently.
	rng := rand.New(rand.NewSource(63))
	n, m := 8, 3
	s := &System{
		N:  n,
		G1: mat.RandStable(rng, n, 0.4),
		B:  mat.RandDense(rng, n, m),
		L:  mat.RandDense(rng, 2, n),
		D1: []*mat.Dense{mat.RandDense(rng, n, n).Scale(0.1), nil, mat.RandDense(rng, n, n).Scale(0.1)},
	}
	v := mat.NewDense(n, 3)
	v.Set(0, 0, 1)
	v.Set(3, 1, 1)
	v.Set(6, 2, 1)
	rom := s.Project(v)
	if rom.Inputs() != m || rom.Outputs() != 2 {
		t.Fatalf("dims lost: inputs %d outputs %d", rom.Inputs(), rom.Outputs())
	}
	if rom.D1[1] != nil {
		t.Fatal("nil D1 block must stay nil")
	}
	if rom.D1[0] == nil || rom.D1[2] == nil {
		t.Fatal("non-nil D1 blocks must be projected")
	}
}
