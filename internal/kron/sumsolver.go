package kron

import (
	"avtmor/internal/mat"
	"avtmor/internal/schur"
	"avtmor/internal/sylv"
)

// SumSolver2 solves (⊕²A − σI)·z = v through the Sylvester equation
// A·X + X·Aᵀ − σ·X = V with one cached real Schur decomposition of A.
type SumSolver2 struct {
	n  int
	s  *schur.Schur
	qt *mat.Dense // Qᵀ cached
}

// NewSumSolver2 caches the Schur form of a.
func NewSumSolver2(a *mat.Dense) (*SumSolver2, error) {
	s, err := schur.Decompose(a)
	if err != nil {
		return nil, err
	}
	return &SumSolver2{n: a.R, s: s, qt: s.Q.T()}, nil
}

// FromSchur builds a solver around an existing decomposition.
func FromSchur(s *schur.Schur) *SumSolver2 {
	return &SumSolver2{n: s.T.R, s: s, qt: s.Q.T()}
}

// N returns the base dimension n (the solver acts on length-n² vectors).
func (ss *SumSolver2) N() int { return ss.n }

// Schur exposes the cached decomposition of A.
func (ss *SumSolver2) Schur() *schur.Schur { return ss.s }

// Solve computes z with (⊕²A − σI)·z = v for real σ.
func (ss *SumSolver2) Solve(sigma float64, v []float64) ([]float64, error) {
	n := ss.n
	vm := Unvec(v, n, n)
	// Y = Qᵀ V Q;  R·X̃ + X̃·Rᵀ − σ·X̃ = Y;  X = Q X̃ Qᵀ.
	y := ss.qt.Mul(vm).Mul(ss.s.Q)
	xt, err := sylv.TrSylvT(ss.s.T, ss.s.T, -sigma, y)
	if err != nil {
		return nil, err
	}
	x := ss.s.Q.Mul(xt).Mul(ss.qt)
	return Vec(x), nil
}

// SolveC computes z with (⊕²A − σI)·z = v for complex σ and v.
func (ss *SumSolver2) SolveC(sigma complex128, v []complex128) ([]complex128, error) {
	n := ss.n
	vm := UnvecC(v, n, n)
	y := mulRealLeft(ss.qt, mulRealRight(vm, ss.s.Q))
	xt, err := sylv.TrSylvTC(ss.s.T, ss.s.T, -sigma, y)
	if err != nil {
		return nil, err
	}
	x := mulRealLeft(ss.s.Q, mulRealRight(xt, ss.qt))
	return VecC(x), nil
}

// mulRealLeft returns A·X for real A, complex X.
func mulRealLeft(a *mat.Dense, x *mat.CDense) *mat.CDense {
	if a.C != x.R {
		panic("kron: mulRealLeft shape mismatch")
	}
	out := mat.NewCDense(a.R, x.C)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			ca := complex(aik, 0)
			xrow := x.A[k*x.C : (k+1)*x.C]
			orow := out.A[i*x.C : (i+1)*x.C]
			for j := range xrow {
				orow[j] += ca * xrow[j]
			}
		}
	}
	return out
}

// mulRealRight returns X·B for complex X, real B.
func mulRealRight(x *mat.CDense, b *mat.Dense) *mat.CDense {
	if x.C != b.R {
		panic("kron: mulRealRight shape mismatch")
	}
	out := mat.NewCDense(x.R, b.C)
	for i := 0; i < x.R; i++ {
		xrow := x.A[i*x.C : (i+1)*x.C]
		orow := out.A[i*b.C : (i+1)*b.C]
		for k, xik := range xrow {
			if xik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				if bkj != 0 {
					orow[j] += xik * complex(bkj, 0)
				}
			}
		}
	}
	return out
}

// SumSolver3 solves (⊕³A − σI)·z = v by a Bartels–Stewart recurrence over
// the Schur form of A on the right factor, with order-2 solves inside:
// viewing z = vec(X), X ∈ R^{n²×n},
//
//	(⊕²A)·X + X·Aᵀ − σ·X = V.
//
// Complex-conjugate 2×2 Schur blocks are handled by one complexified
// order-2 solve per pair (real path) or by diagonalizing the block
// (complex path).
type SumSolver3 struct {
	n  int
	s2 *SumSolver2
}

// NewSumSolver3 caches the Schur form of a.
func NewSumSolver3(a *mat.Dense) (*SumSolver3, error) {
	s2, err := NewSumSolver2(a)
	if err != nil {
		return nil, err
	}
	return &SumSolver3{n: a.R, s2: s2}, nil
}

// N returns the base dimension n (the solver acts on length-n³ vectors).
func (ss *SumSolver3) N() int { return ss.n }

// Solve computes z with (⊕³A − σI)·z = v for real σ and v of length n³.
// Viewing z = vec(X) with X ∈ R^{n²×n}, the equation is
// (⊕²A)·X + X·Aᵀ − σ·X = V, handled by the shared column recurrence with
// L = ⊕²A.
func (ss *SumSolver3) Solve(sigma float64, v []float64) ([]float64, error) {
	n := ss.n
	if len(v) != n*n*n {
		panic("kron: SumSolver3 length mismatch")
	}
	return ColumnSylvester(ss.s2, ss.s2.s, sigma, v)
}

// SolveC computes z with (⊕³A − σI)·z = v for complex σ, v.
func (ss *SumSolver3) SolveC(sigma complex128, v []complex128) ([]complex128, error) {
	n := ss.n
	if len(v) != n*n*n {
		panic("kron: SumSolver3 length mismatch")
	}
	return ColumnSylvesterC(ss.s2, ss.s2.s, sigma, v)
}

// rightMulCols computes the column-block product W = Z·M where Z is
// stored as cols columns of length rows (column-major), M is small.
func rightMulCols(z []float64, m *mat.Dense, rows int) []float64 {
	cols := m.R
	out := make([]float64, rows*m.C)
	for j := 0; j < m.C; j++ {
		oj := out[j*rows : (j+1)*rows]
		for k := 0; k < cols; k++ {
			mkj := m.At(k, j)
			if mkj == 0 {
				continue
			}
			zk := z[k*rows : (k+1)*rows]
			for i := range oj {
				oj[i] += mkj * zk[i]
			}
		}
	}
	return out
}

func rightMulColsC(z []complex128, m *mat.Dense, rows int) []complex128 {
	cols := m.R
	out := make([]complex128, rows*m.C)
	for j := 0; j < m.C; j++ {
		oj := out[j*rows : (j+1)*rows]
		for k := 0; k < cols; k++ {
			mkj := complex(m.At(k, j), 0)
			if mkj == 0 {
				continue
			}
			zk := z[k*rows : (k+1)*rows]
			for i := range oj {
				oj[i] += mkj * zk[i]
			}
		}
	}
	return out
}
