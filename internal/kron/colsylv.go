package kron

import (
	"math"
	"math/cmplx"

	"avtmor/internal/schur"
)

func cmplxSqrt(z complex128) complex128 { return cmplx.Sqrt(z) }

// ShiftedSolver abstracts an operator L through its shifted resolvent:
// SolveShifted computes (L − τI)⁻¹·rhs. Implementations in this repo:
// SumSolver2 (L = ⊕²G1) and assoc's G̃2 solver (L = the block-triangular
// realization matrix of Eq. (17)).
type ShiftedSolver interface {
	// Dim is the dimension L acts on.
	Dim() int
	// SolveShifted computes (L − τI)⁻¹ rhs for real τ.
	SolveShifted(tau float64, rhs []float64) ([]float64, error)
	// SolveShiftedC computes (L − τI)⁻¹ rhs for complex τ.
	SolveShiftedC(tau complex128, rhs []complex128) ([]complex128, error)
}

// Solve and SolveC of SumSolver2 already have the right shape; expose the
// interface explicitly.
func (ss *SumSolver2) SolveShifted(tau float64, rhs []float64) ([]float64, error) {
	return ss.Solve(tau, rhs)
}

// SolveShiftedC implements ShiftedSolver.
func (ss *SumSolver2) SolveShiftedC(tau complex128, rhs []complex128) ([]complex128, error) {
	return ss.SolveC(tau, rhs)
}

// Dim implements ShiftedSolver: SumSolver2 acts on length-n² vectors.
func (ss *SumSolver2) Dim() int { return ss.n * ss.n }

// ColumnSylvester solves the operator Sylvester equation
//
//	L(X) + X·Aᵀ − σ·X = V,   X ∈ R^{N×n},
//
// given a ShiftedSolver for L and the real Schur form A = Q·R·Qᵀ. X and V
// are stored column-stacked (vec). This is the outer recurrence of the
// paper's §2.3 solver stack: after the right-side Schur transform, each
// column block needs one shifted L-solve (complexified across 2×2 blocks).
func ColumnSylvester(op ShiftedSolver, sa *schur.Schur, sigma float64, v []float64) ([]float64, error) {
	nn := op.Dim()
	n := sa.T.R
	if len(v) != nn*n {
		panic("kron: ColumnSylvester length mismatch")
	}
	r := sa.T
	vt := rightMulCols(v, sa.Q, nn)
	xt := make([]float64, nn*n)
	blks := sa.Blocks()
	for bi := len(blks) - 1; bi >= 0; bi-- {
		l0, ln := blks[bi][0], blks[bi][1]
		rhs := make([][]float64, ln)
		for p := 0; p < ln; p++ {
			w := make([]float64, nn)
			copy(w, vt[(l0+p)*nn:(l0+p+1)*nn])
			for k := l0 + ln; k < n; k++ {
				rlk := r.At(l0+p, k)
				if rlk == 0 {
					continue
				}
				xk := xt[k*nn : (k+1)*nn]
				for i := range w {
					w[i] -= rlk * xk[i]
				}
			}
			rhs[p] = w
		}
		if ln == 1 {
			x, err := op.SolveShifted(sigma-r.At(l0, l0), rhs[0])
			if err != nil {
				return nil, err
			}
			copy(xt[l0*nn:(l0+1)*nn], x)
			continue
		}
		// Standardized 2×2 block [[α,β],[γ,α]], βγ<0: complexify into one
		// complex solve (L − (σ−α−iμ)I)·(x_p + i·s·x_q) = w_p + i·s·w_q
		// with μ = √(−βγ), s = −β/μ.
		alpha := r.At(l0, l0)
		beta := r.At(l0, l0+1)
		gamma := r.At(l0+1, l0)
		mu := math.Sqrt(-beta * gamma)
		sc := -beta / mu
		w := make([]complex128, nn)
		for i := range w {
			w[i] = complex(rhs[0][i], sc*rhs[1][i])
		}
		z, err := op.SolveShiftedC(complex(sigma-alpha, -mu), w)
		if err != nil {
			return nil, err
		}
		xp := xt[l0*nn : (l0+1)*nn]
		xq := xt[(l0+1)*nn : (l0+2)*nn]
		for i, zi := range z {
			xp[i] = real(zi)
			xq[i] = imag(zi) / sc
		}
	}
	return rightMulCols(xt, sa.Q.T(), nn), nil
}

// ColumnSylvesterC is the fully complex variant of ColumnSylvester
// (complex σ and V): 2×2 blocks are decoupled by diagonalizing the block
// coupling instead of conjugate complexification.
func ColumnSylvesterC(op ShiftedSolver, sa *schur.Schur, sigma complex128, v []complex128) ([]complex128, error) {
	nn := op.Dim()
	n := sa.T.R
	if len(v) != nn*n {
		panic("kron: ColumnSylvesterC length mismatch")
	}
	r := sa.T
	vt := rightMulColsC(v, sa.Q, nn)
	xt := make([]complex128, nn*n)
	blks := sa.Blocks()
	for bi := len(blks) - 1; bi >= 0; bi-- {
		l0, ln := blks[bi][0], blks[bi][1]
		rhs := make([][]complex128, ln)
		for p := 0; p < ln; p++ {
			w := make([]complex128, nn)
			copy(w, vt[(l0+p)*nn:(l0+p+1)*nn])
			for k := l0 + ln; k < n; k++ {
				rlk := complex(r.At(l0+p, k), 0)
				if rlk == 0 {
					continue
				}
				xk := xt[k*nn : (k+1)*nn]
				for i := range w {
					w[i] -= rlk * xk[i]
				}
			}
			rhs[p] = w
		}
		if ln == 1 {
			x, err := op.SolveShiftedC(sigma-complex(r.At(l0, l0), 0), rhs[0])
			if err != nil {
				return nil, err
			}
			copy(xt[l0*nn:(l0+1)*nn], x)
			continue
		}
		alpha := complex(r.At(l0, l0), 0)
		beta := complex(r.At(l0, l0+1), 0)
		gamma := complex(r.At(l0+1, l0), 0)
		m := cmplxSqrt(beta * gamma)
		w1 := make([]complex128, nn)
		w2 := make([]complex128, nn)
		for i := 0; i < nn; i++ {
			wp, wq := rhs[0][i], rhs[1][i]
			w1[i] = wp*gamma + wq*m
			w2[i] = wp*gamma - wq*m
		}
		y1, err := op.SolveShiftedC(sigma-(alpha+m), w1)
		if err != nil {
			return nil, err
		}
		y2, err := op.SolveShiftedC(sigma-(alpha-m), w2)
		if err != nil {
			return nil, err
		}
		det := -2 * gamma * m
		xp := xt[l0*nn : (l0+1)*nn]
		xq := xt[(l0+1)*nn : (l0+2)*nn]
		for i := 0; i < nn; i++ {
			xp[i] = (y1[i]*(-m) + y2[i]*(-m)) / det
			xq[i] = (y1[i]*(-gamma) + y2[i]*gamma) / det
		}
	}
	return rightMulColsC(xt, sa.Q.T(), nn), nil
}
