// Package kron provides Kronecker-product/sum utilities and structured
// solvers for the shifted Kronecker-sum resolvents
//
//	(⊕²A − σI)⁻¹ ∈ R^{n²×n²}   and   (⊕³A − σI)⁻¹ ∈ R^{n³×n³},
//
// which by Theorem 1 / Corollary 1 of the paper are exactly the associated
// transforms of Kronecker products of resolvents. The solvers never form
// the big operators: order 2 reduces to a quasi-triangular Sylvester
// equation over one cached real Schur form of A, and order 3 to a
// Bartels–Stewart recurrence whose inner solves are order-2 solves
// (complexified across 2×2 Schur blocks).
//
// Conventions (column-stacking): vec(X)[j·rows+i] = X[i][j], so
// (A⊗B)·vec(X) = vec(B·X·Aᵀ) and (x⊗y)[p·len(y)+q] = x[p]·y[q].
package kron

import (
	"avtmor/internal/mat"
)

// Vec column-stacks a matrix.
func Vec(x *mat.Dense) []float64 {
	v := make([]float64, x.R*x.C)
	for j := 0; j < x.C; j++ {
		for i := 0; i < x.R; i++ {
			v[j*x.R+i] = x.At(i, j)
		}
	}
	return v
}

// Unvec reshapes a column-stacked vector into rows×cols.
func Unvec(v []float64, rows, cols int) *mat.Dense {
	if len(v) != rows*cols {
		panic("kron: Unvec length mismatch")
	}
	x := mat.NewDense(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			x.Set(i, j, v[j*rows+i])
		}
	}
	return x
}

// VecC and UnvecC are the complex counterparts.
func VecC(x *mat.CDense) []complex128 {
	v := make([]complex128, x.R*x.C)
	for j := 0; j < x.C; j++ {
		for i := 0; i < x.R; i++ {
			v[j*x.R+i] = x.At(i, j)
		}
	}
	return v
}

// UnvecC reshapes a column-stacked complex vector into rows×cols.
func UnvecC(v []complex128, rows, cols int) *mat.CDense {
	if len(v) != rows*cols {
		panic("kron: UnvecC length mismatch")
	}
	x := mat.NewCDense(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			x.Set(i, j, v[j*rows+i])
		}
	}
	return x
}

// VecKron returns x⊗y.
func VecKron(x, y []float64) []float64 {
	out := make([]float64, len(x)*len(y))
	for p, xp := range x {
		if xp == 0 {
			continue
		}
		base := p * len(y)
		for q, yq := range y {
			out[base+q] = xp * yq
		}
	}
	return out
}

// VecKronC returns x⊗y for complex vectors.
func VecKronC(x, y []complex128) []complex128 {
	out := make([]complex128, len(x)*len(y))
	for p, xp := range x {
		if xp == 0 {
			continue
		}
		base := p * len(y)
		for q, yq := range y {
			out[base+q] = xp * yq
		}
	}
	return out
}

// Dense returns A⊗B explicitly (test/diagnostic use; O((mn)²) storage).
func Dense(a, b *mat.Dense) *mat.Dense {
	out := mat.NewDense(a.R*b.R, a.C*b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			aij := a.At(i, j)
			if aij == 0 {
				continue
			}
			for p := 0; p < b.R; p++ {
				for q := 0; q < b.C; q++ {
					out.Set(i*b.R+p, j*b.C+q, aij*b.At(p, q))
				}
			}
		}
	}
	return out
}

// SumDense returns A⊕B = A⊗I + I⊗B explicitly (test/diagnostic use).
func SumDense(a, b *mat.Dense) *mat.Dense {
	if a.R != a.C || b.R != b.C {
		panic("kron: SumDense needs square matrices")
	}
	out := Dense(a, mat.Eye(b.R))
	ib := Dense(mat.Eye(a.R), b)
	return out.AddScaled(1, ib)
}

// SumApply2 computes dst = (⊕²A)·z for z of length n², without forming
// the operator: unvec, A·X + X·Aᵀ, re-vec.
func SumApply2(a *mat.Dense, dst, z []float64) {
	n := a.R
	if len(z) != n*n || len(dst) != n*n {
		panic("kron: SumApply2 length mismatch")
	}
	x := Unvec(z, n, n)
	r := a.Mul(x).Plus(x.Mul(a.T()))
	copy(dst, Vec(r))
}

// SumApply3 computes dst = (⊕³A)·z for z of length n³, viewing z as an
// n²×n matrix X with (⊕³A)vec(X) = vec((⊕²A)X + X·Aᵀ).
func SumApply3(a *mat.Dense, dst, z []float64) {
	n := a.R
	n2 := n * n
	if len(z) != n2*n || len(dst) != n2*n {
		panic("kron: SumApply3 length mismatch")
	}
	col := make([]float64, n2)
	tmp := make([]float64, n2)
	// (⊕²A)·X part, column by column.
	for j := 0; j < n; j++ {
		copy(col, z[j*n2:(j+1)*n2])
		SumApply2(a, tmp, col)
		copy(dst[j*n2:(j+1)*n2], tmp)
	}
	// X·Aᵀ part: dst[:,j] += Σ_k X[:,k]·A[j][k].
	for j := 0; j < n; j++ {
		dj := dst[j*n2 : (j+1)*n2]
		for k := 0; k < n; k++ {
			ajk := a.At(j, k)
			if ajk == 0 {
				continue
			}
			xk := z[k*n2 : (k+1)*n2]
			for i := range dj {
				dj[i] += ajk * xk[i]
			}
		}
	}
}
