package kron

import (
	"errors"

	"avtmor/internal/mat"
	"avtmor/internal/schur"
)

// Spectral is the eigendecomposition backend for Kronecker-sum resolvents:
// with A = S·Λ·S⁻¹, (⊕ᵈA − σI)⁻¹ = (⊗ᵈS)·diag(1/(λ_{i1}+…+λ_{id}−σ))·(⊗ᵈS)⁻¹,
// applied by d mode multiplications. It requires a diagonalizable A and is
// used to cross-validate the Schur/Sylvester solvers and for the analytic
// association oracle.
type Spectral struct {
	n    int
	vals []complex128
	s    *mat.CDense
	sinv *mat.CDense
}

// NewSpectral eigendecomposes a.
func NewSpectral(a *mat.Dense) (*Spectral, error) {
	e, err := schur.Eigen(a)
	if err != nil {
		return nil, err
	}
	inv, err := e.InverseVectors()
	if err != nil {
		return nil, err
	}
	return &Spectral{n: a.R, vals: e.Values, s: e.Vectors, sinv: inv}, nil
}

// Values returns the eigenvalues of A.
func (sp *Spectral) Values() []complex128 { return sp.vals }

// Solve computes z with (⊕ᵈA − σI)·z = v for d ∈ {1, 2, 3}.
// v has length n^d; the result is complex (real inputs with real σ give
// results with negligible imaginary part, which callers may discard).
func (sp *Spectral) Solve(d int, sigma complex128, v []complex128) ([]complex128, error) {
	n := sp.n
	size := 1
	for i := 0; i < d; i++ {
		size *= n
	}
	if len(v) != size {
		panic("kron: Spectral Solve length mismatch")
	}
	if d < 1 || d > 3 {
		return nil, errors.New("kron: Spectral supports d = 1, 2, 3")
	}
	w := make([]complex128, size)
	copy(w, v)
	// Transform to eigencoordinates: apply S⁻¹ along every mode.
	for m := 0; m < d; m++ {
		w = modeMul(sp.sinv, w, n, d, m)
	}
	// Divide by λ_{i1}+…+λ_{id} − σ.
	idx := make([]int, d)
	for flat := 0; flat < size; flat++ {
		f := flat
		var lam complex128
		for m := d - 1; m >= 0; m-- {
			idx[m] = f % n
			f /= n
		}
		for _, i := range idx {
			lam += sp.vals[i]
		}
		den := lam - sigma
		if den == 0 {
			return nil, errors.New("kron: Spectral singular shift")
		}
		w[flat] /= den
	}
	// Transform back.
	for m := 0; m < d; m++ {
		w = modeMul(sp.s, w, n, d, m)
	}
	return w, nil
}

// modeMul applies the n×n matrix m along mode "mode" of a d-way tensor
// stored flat with mode 0 slowest (index i0·n^{d-1} + i1·n^{d-2} + …).
// Mode index convention matches VecKron: (x⊗y)[p·n+q] means mode 0 is the
// first Kronecker factor.
func modeMul(mm *mat.CDense, t []complex128, n, d, mode int) []complex128 {
	// stride between consecutive values of the mode index.
	stride := 1
	for m := d - 1; m > mode; m-- {
		stride *= n
	}
	outer := len(t) / (n * stride) // number of blocks of the slower modes
	out := make([]complex128, len(t))
	for o := 0; o < outer; o++ {
		base := o * n * stride
		for s := 0; s < stride; s++ {
			// Gather the fiber, multiply, scatter.
			for i := 0; i < n; i++ {
				var acc complex128
				row := mm.A[i*n : (i+1)*n]
				for k := 0; k < n; k++ {
					acc += row[k] * t[base+k*stride+s]
				}
				out[base+i*stride+s] = acc
			}
		}
	}
	return out
}
