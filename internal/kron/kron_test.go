package kron

import (
	"math/rand"
	"testing"
	"testing/quick"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
)

func TestVecUnvecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.RandDense(rng, 4, 7)
	if !Unvec(Vec(x), 4, 7).Equalish(x, 0) {
		t.Fatal("vec/unvec round trip failed")
	}
}

func TestVecKronOuterProduct(t *testing.T) {
	// x⊗y = vec(y·xᵀ).
	x := []float64{1, 2, 3}
	y := []float64{4, 5}
	k := VecKron(x, y)
	outer := mat.NewDense(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			outer.Set(i, j, y[i]*x[j])
		}
	}
	v := Vec(outer)
	for i := range k {
		if k[i] != v[i] {
			t.Fatalf("x⊗y != vec(yxᵀ) at %d: %v vs %v", i, k[i], v[i])
		}
	}
}

func TestDenseMixedProduct(t *testing.T) {
	// (M1⊗M2)(N1⊗N2) = (M1N1)⊗(M2N2) — property (i) used in Theorem 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := mat.RandDense(rng, 3, 2)
		m2 := mat.RandDense(rng, 2, 4)
		n1 := mat.RandDense(rng, 2, 3)
		n2 := mat.RandDense(rng, 4, 2)
		lhs := Dense(m1, m2).Mul(Dense(n1, n2))
		rhs := Dense(m1.Mul(n1), m2.Mul(n2))
		return lhs.Equalish(rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKronVecAgainstDense(t *testing.T) {
	// (A⊗B)(x⊗y) = (Ax)⊗(By).
	rng := rand.New(rand.NewSource(2))
	a := mat.RandDense(rng, 3, 3)
	b := mat.RandDense(rng, 4, 4)
	x := mat.RandVec(rng, 3)
	y := mat.RandVec(rng, 4)
	big := Dense(a, b)
	lhs := make([]float64, 12)
	big.MulVec(lhs, VecKron(x, y))
	ax := make([]float64, 3)
	by := make([]float64, 4)
	a.MulVec(ax, x)
	b.MulVec(by, y)
	rhs := VecKron(ax, by)
	for i := range lhs {
		if d := lhs[i] - rhs[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestExpKronSumIdentity(t *testing.T) {
	// e^{A⊕B} = e^A ⊗ e^B — property (ii), the engine of Theorem 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := mat.RandDense(rng, 3, 3)
		b := mat.RandDense(rng, 2, 2)
		lhs := mat.Expm(SumDense(a, b))
		rhs := Dense(mat.Expm(a), mat.Expm(b))
		return lhs.Equalish(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSumApply2AgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5
	a := mat.RandDense(rng, n, n)
	big := SumDense(a, a)
	z := mat.RandVec(rng, n*n)
	want := make([]float64, n*n)
	big.MulVec(want, z)
	got := make([]float64, n*n)
	SumApply2(a, got, z)
	for i := range got {
		if d := got[i] - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("SumApply2 mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSumApply3AgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 3
	a := mat.RandDense(rng, n, n)
	big := SumDense(SumDense(a, a), a) // (A⊕A)⊕A = ⊕³A with matching index order
	z := mat.RandVec(rng, n*n*n)
	want := make([]float64, n*n*n)
	big.MulVec(want, z)
	got := make([]float64, n*n*n)
	SumApply3(a, got, z)
	for i := range got {
		if d := got[i] - want[i]; d > 1e-11 || d < -1e-11 {
			t.Fatalf("SumApply3 mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSumSolver2AgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := mat.RandStable(rng, n, 0.3)
		ss, err := NewSumSolver2(a)
		if err != nil {
			return false
		}
		v := mat.RandVec(rng, n*n)
		sigma := 0.5 * rng.Float64() // eigenvalues of ⊕²A are < 0; σ ≥ 0 keeps it regular
		z, err := ss.Solve(sigma, v)
		if err != nil {
			return false
		}
		// Residual (⊕²A − σI)z − v.
		r := make([]float64, n*n)
		SumApply2(a, r, z)
		mat.Axpy(-sigma, z, r)
		mat.Axpy(-1, v, r)
		return mat.NormInf(r) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSumSolver2Complex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := mat.RandStable(rng, n, 0.3)
		ss, err := NewSumSolver2(a)
		if err != nil {
			return false
		}
		v := make([]complex128, n*n)
		for i := range v {
			v[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
		sigma := complex(0.3*rng.Float64(), 2*rng.Float64()-1)
		z, err := ss.SolveC(sigma, v)
		if err != nil {
			return false
		}
		// Residual via dense operator.
		big := SumDense(a, a).Complex()
		r := make([]complex128, n*n)
		big.MulVec(r, z)
		mat.CAxpy(-sigma, z, r)
		mat.CAxpy(-1, v, r)
		return mat.CNorm2(r) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSumSolver3AgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := mat.RandStable(rng, n, 0.3)
		ss, err := NewSumSolver3(a)
		if err != nil {
			return false
		}
		v := mat.RandVec(rng, n*n*n)
		sigma := 0.4 * rng.Float64()
		z, err := ss.Solve(sigma, v)
		if err != nil {
			return false
		}
		r := make([]float64, n*n*n)
		SumApply3(a, r, z)
		mat.Axpy(-sigma, z, r)
		mat.Axpy(-1, v, r)
		return mat.NormInf(r) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// rotationBlock returns a matrix guaranteed to have complex eigenvalue
// pairs, exercising the 2×2-block complexification paths.
func rotationBlock(rng *rand.Rand, n int) *mat.Dense {
	a := mat.NewDense(n, n)
	i := 0
	for ; i+1 < n; i += 2 {
		re := -0.5 - rng.Float64()
		im := 0.5 + rng.Float64()
		a.Set(i, i, re)
		a.Set(i+1, i+1, re)
		a.Set(i, i+1, im)
		a.Set(i+1, i, -im)
	}
	if i < n {
		a.Set(i, i, -1-rng.Float64())
	}
	// Mild random coupling keeps it non-normal but stable.
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if r != c {
				a.Add(r, c, 0.05*(2*rng.Float64()-1))
			}
		}
	}
	return a
}

func TestSumSolver3ComplexPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 4
		a := rotationBlock(rng, n)
		ss, err := NewSumSolver3(a)
		if err != nil {
			t.Fatal(err)
		}
		v := mat.RandVec(rng, n*n*n)
		z, err := ss.Solve(0.1, v)
		if err != nil {
			t.Fatal(err)
		}
		r := make([]float64, n*n*n)
		SumApply3(a, r, z)
		mat.Axpy(-0.1, z, r)
		mat.Axpy(-1, v, r)
		if mat.NormInf(r) > 1e-7 {
			t.Fatalf("trial %d residual %g", trial, mat.NormInf(r))
		}
	}
}

func TestSumSolver3SolveC(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 4
	a := rotationBlock(rng, n)
	ss, err := NewSumSolver3(a)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, n*n*n)
	for i := range v {
		v[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	sigma := 0.2 + 1.7i
	z, err := ss.SolveC(sigma, v)
	if err != nil {
		t.Fatal(err)
	}
	// Residual with complex apply through the real operator.
	zr, zi := mat.RealPart(z), mat.ImagPart(z)
	rr := make([]float64, len(z))
	ri := make([]float64, len(z))
	SumApply3(a, rr, zr)
	SumApply3(a, ri, zi)
	r := make([]complex128, len(z))
	for i := range r {
		r[i] = complex(rr[i], ri[i]) - sigma*z[i] - v[i]
	}
	if mat.CNorm2(r) > 1e-7 {
		t.Fatalf("residual %g", mat.CNorm2(r))
	}
}

func TestSpectralMatchesSumSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	a := mat.RandStable(rng, n, 0.3)
	sp, err := NewSpectral(a)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSumSolver2(a)
	if err != nil {
		t.Fatal(err)
	}
	v := mat.RandVec(rng, n*n)
	z2, err := s2.Solve(0.25, v)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := sp.Solve(2, 0.25, mat.ToComplex(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range z2 {
		if d := z2[i] - real(zs[i]); d > 1e-8 || d < -1e-8 {
			t.Fatalf("spectral/sylvester mismatch at %d: %v vs %v", i, z2[i], zs[i])
		}
	}
}

func TestSpectralD1IsResolvent(t *testing.T) {
	// d=1: (A − σI)⁻¹ v — compare against LU.
	rng := rand.New(rand.NewSource(8))
	n := 6
	a := mat.RandStable(rng, n, 0.3)
	sp, err := NewSpectral(a)
	if err != nil {
		t.Fatal(err)
	}
	v := mat.RandVec(rng, n)
	z, err := sp.Solve(1, 0.5, mat.ToComplex(v))
	if err != nil {
		t.Fatal(err)
	}
	shifted := a.Clone()
	for i := 0; i < n; i++ {
		shifted.Add(i, i, -0.5)
	}
	want, err := lu.Solve(shifted, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := want[i] - real(z[i]); d > 1e-8 || d < -1e-8 {
			t.Fatalf("d=1 mismatch at %d", i)
		}
	}
}

func TestSpectralD3MatchesSumSolver3(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 3
	a := rotationBlock(rng, n)
	sp, err := NewSpectral(a)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := NewSumSolver3(a)
	if err != nil {
		t.Fatal(err)
	}
	v := mat.RandVec(rng, n*n*n)
	z3, err := s3.Solve(0.1, v)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := sp.Solve(3, 0.1, mat.ToComplex(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range z3 {
		if d := z3[i] - real(zs[i]); d > 1e-7 || d < -1e-7 {
			t.Fatalf("d=3 mismatch at %d: %v vs %v", i, z3[i], zs[i])
		}
	}
}

func BenchmarkSumSolver2N70(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandStable(rng, 70, 0.3)
	ss, err := NewSumSolver2(a)
	if err != nil {
		b.Fatal(err)
	}
	v := mat.RandVec(rng, 70*70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ss.Solve(0, v); err != nil {
			b.Fatal(err)
		}
	}
}
