package kron

import (
	"math/rand"
	"testing"

	"avtmor/internal/lu"
	"avtmor/internal/mat"
	"avtmor/internal/schur"
)

// denseShiftedSolver adapts a dense matrix to ShiftedSolver via LU (test
// double for the structured operators).
type denseShiftedSolver struct{ m *mat.Dense }

func (d denseShiftedSolver) Dim() int { return d.m.R }

func (d denseShiftedSolver) SolveShifted(tau float64, rhs []float64) ([]float64, error) {
	s := d.m.Clone()
	for i := 0; i < s.R; i++ {
		s.Add(i, i, -tau)
	}
	return lu.Solve(s, rhs)
}

func (d denseShiftedSolver) SolveShiftedC(tau complex128, rhs []complex128) ([]complex128, error) {
	f, err := lu.ShiftedReal(d.m, -tau)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(rhs))
	f.Solve(out, rhs)
	return out, nil
}

func TestColumnSylvesterAgainstDense(t *testing.T) {
	// Solve L·X + X·Aᵀ − σX = V with a dense L and compare against the
	// fully assembled (A ⊗ I + I ⊗ L − σI) system.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		nL := 3 + rng.Intn(3)
		nA := 2 + rng.Intn(4)
		l := mat.RandStable(rng, nL, 0.3)
		a := mat.RandStable(rng, nA, 0.3)
		sa, err := schur.Decompose(a)
		if err != nil {
			t.Fatal(err)
		}
		sigma := 0.2 * rng.Float64()
		v := mat.RandVec(rng, nL*nA)
		got, err := ColumnSylvester(denseShiftedSolver{l}, sa, sigma, v)
		if err != nil {
			t.Fatal(err)
		}
		big := SumDense(a, l) // A⊗I + I⊗L acting on vec(X), X ∈ R^{nL×nA}
		for i := 0; i < big.R; i++ {
			big.Add(i, i, -sigma)
		}
		want, err := lu.Solve(big, v)
		if err != nil {
			t.Fatal(err)
		}
		diff := make([]float64, len(v))
		mat.SubVec(diff, got, want)
		if mat.Norm2(diff) > 1e-8*(1+mat.Norm2(want)) {
			t.Fatalf("trial %d: column recurrence differs from dense by %g", trial, mat.Norm2(diff))
		}
	}
}

func TestColumnSylvesterComplexPairs(t *testing.T) {
	// Force 2×2 Schur blocks on the A side.
	rng := rand.New(rand.NewSource(2))
	a := rotationBlock(rng, 4)
	l := mat.RandStable(rng, 3, 0.3)
	sa, err := schur.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	has2x2 := false
	for _, b := range sa.Blocks() {
		if b[1] == 2 {
			has2x2 = true
		}
	}
	if !has2x2 {
		t.Fatal("test matrix produced no 2×2 blocks; vacuous")
	}
	v := mat.RandVec(rng, 3*4)
	got, err := ColumnSylvester(denseShiftedSolver{l}, sa, 0.1, v)
	if err != nil {
		t.Fatal(err)
	}
	big := SumDense(a, l)
	for i := 0; i < big.R; i++ {
		big.Add(i, i, -0.1)
	}
	want, err := lu.Solve(big, v)
	if err != nil {
		t.Fatal(err)
	}
	diff := make([]float64, len(v))
	mat.SubVec(diff, got, want)
	if mat.Norm2(diff) > 1e-8*(1+mat.Norm2(want)) {
		t.Fatalf("complex-pair path differs from dense by %g", mat.Norm2(diff))
	}
}

func TestColumnSylvesterCAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := rotationBlock(rng, 4)
	l := mat.RandStable(rng, 3, 0.3)
	sa, err := schur.Decompose(a)
	if err != nil {
		t.Fatal(err)
	}
	sigma := 0.1 + 0.9i
	v := make([]complex128, 12)
	for i := range v {
		v[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	got, err := ColumnSylvesterC(denseShiftedSolver{l}, sa, sigma, v)
	if err != nil {
		t.Fatal(err)
	}
	big := SumDense(a, l).Complex()
	for i := 0; i < 12; i++ {
		big.Set(i, i, big.At(i, i)-sigma)
	}
	want, err := lu.SolveC(big, v)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]complex128, 12)
	for i := range d {
		d[i] = got[i] - want[i]
	}
	if mat.CNorm2(d) > 1e-8*(1+mat.CNorm2(want)) {
		t.Fatalf("complex column recurrence differs from dense by %g", mat.CNorm2(d))
	}
}
