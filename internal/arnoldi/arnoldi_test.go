package arnoldi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"avtmor/internal/mat"
	"avtmor/internal/qr"
	"avtmor/internal/solver"
)

func TestKrylovSpansPowers(t *testing.T) {
	// For a dense A and single b, the basis must span {b, Ab, ..., A^{k-1}b}.
	rng := rand.New(rand.NewSource(1))
	n, k := 12, 5
	a := mat.RandDense(rng, n, n)
	b := mat.RandVec(rng, n)
	res := Krylov(MatOp{a}, [][]float64{b}, k, 0)
	if res.V == nil || res.V.C != k {
		t.Fatalf("basis has %v columns, want %d", res.V, k)
	}
	if qr.OrthoError(res.V) > 1e-12 {
		t.Fatal("basis not orthonormal")
	}
	// Check every power is reproduced by the projector.
	w := mat.CopyVec(b)
	tmp := make([]float64, n)
	for p := 0; p < k; p++ {
		coef := make([]float64, res.V.C)
		res.V.MulVecT(coef, w)
		rec := make([]float64, n)
		res.V.MulVec(rec, coef)
		mat.Axpy(-1, w, rec)
		if mat.Norm2(rec) > 1e-9*mat.Norm2(w) {
			t.Fatalf("A^%d b not in span (err %g)", p, mat.Norm2(rec))
		}
		a.MulVec(tmp, w)
		w, tmp = mat.CopyVec(tmp), w
	}
}

func TestKrylovDeflationOnInvariantSubspace(t *testing.T) {
	// A = I: Krylov space is 1-dimensional regardless of steps.
	n := 8
	b := make([]float64, n)
	b[3] = 2
	res := Krylov(MatOp{mat.Eye(n)}, [][]float64{b}, 5, 0)
	if res.V.C != 1 {
		t.Fatalf("want 1 basis vector, got %d", res.V.C)
	}
	if res.Deflated == 0 {
		t.Fatal("expected deflations to be counted")
	}
}

func TestKrylovBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 10
	a := mat.RandDense(rng, n, n)
	b1 := mat.RandVec(rng, n)
	b2 := mat.RandVec(rng, n)
	res := Krylov(MatOp{a}, [][]float64{b1, b2}, 3, 0)
	if res.V.C != 6 {
		t.Fatalf("block basis has %d columns, want 6", res.V.C)
	}
	if qr.OrthoError(res.V) > 1e-12 {
		t.Fatal("block basis not orthonormal")
	}
	// A·b2 must lie in the span.
	ab2 := make([]float64, n)
	a.MulVec(ab2, b2)
	coef := make([]float64, res.V.C)
	res.V.MulVecT(coef, ab2)
	rec := make([]float64, n)
	res.V.MulVec(rec, coef)
	mat.Axpy(-1, ab2, rec)
	if mat.Norm2(rec) > 1e-10*mat.Norm2(ab2) {
		t.Fatal("A·b2 not in block Krylov span")
	}
}

func TestKrylovZeroStart(t *testing.T) {
	res := Krylov(MatOp{mat.Eye(3)}, [][]float64{{0, 0, 0}}, 3, 0)
	if res.V != nil || res.Deflated != 1 {
		t.Fatalf("zero start should fully deflate: %+v", res)
	}
}

func TestShiftInvertedKrylovMatchesMoments(t *testing.T) {
	// Moments of (sI−A)⁻¹b at s=0 span {A⁻¹b, A⁻²b, ...}; driving the
	// Krylov iteration through a solver.Factorization via SolveOp must
	// give the same span (the adapter every shift-invert consumer uses).
	rng := rand.New(rand.NewSource(3))
	n, k := 9, 4
	a := mat.RandStable(rng, n, 0.3)
	f, err := solver.Dense{}.Factor(solver.FromDense(a))
	if err != nil {
		t.Fatal(err)
	}
	b := mat.RandVec(rng, n)
	inv0 := make([]float64, n)
	f.Solve(inv0, b)
	res := Krylov(SolveOp{F: f}, [][]float64{inv0}, k, 0)
	if res.V.C != k {
		t.Fatalf("got %d vectors", res.V.C)
	}
	// A^{-j}b for j=1..k must be in span.
	w := mat.CopyVec(inv0)
	for j := 1; j <= k; j++ {
		coef := make([]float64, res.V.C)
		res.V.MulVecT(coef, w)
		rec := make([]float64, n)
		res.V.MulVec(rec, coef)
		mat.Axpy(-1, w, rec)
		if mat.Norm2(rec) > 1e-8*mat.Norm2(w) {
			t.Fatalf("A^{-%d}b not in span", j)
		}
		f.Solve(w, w)
	}
}

func TestDecomposeArnoldiRelation(t *testing.T) {
	// A·V_k = V_{k+1}·H̃ must hold to machine precision.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		k := 1 + rng.Intn(n-1)
		a := mat.RandDense(rng, n, n)
		b := mat.RandVec(rng, n)
		d := Decompose(MatOp{a}, b, k)
		vk := d.V.Slice(0, n, 0, d.K)
		lhs := a.Mul(vk)
		rhs := d.V.Mul(d.H)
		return lhs.Equalish(rhs, 1e-10*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeHappyBreakdown(t *testing.T) {
	// Start vector inside a 2-dimensional invariant subspace.
	a := mat.Diag([]float64{1, 2, 3, 4})
	b := []float64{1, 1, 0, 0}
	d := Decompose(MatOp{a}, b, 4)
	if d.K != 2 {
		t.Fatalf("expected breakdown at 2 steps, got %d", d.K)
	}
	// Relation still holds on the truncated factorization.
	vk := d.V.Slice(0, 4, 0, d.K)
	if !a.Mul(vk).Equalish(d.V.Mul(d.H), 1e-12) {
		t.Fatal("truncated Arnoldi relation broken")
	}
}

func TestDecomposeHessenbergStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := mat.RandDense(rng, 10, 10)
	d := Decompose(MatOp{a}, mat.RandVec(rng, 10), 6)
	for i := 0; i < d.H.R; i++ {
		for j := 0; j < d.H.C; j++ {
			if i > j+1 && d.H.At(i, j) != 0 {
				t.Fatalf("H[%d][%d] = %v below subdiagonal", i, j, d.H.At(i, j))
			}
		}
	}
}

func TestFuncOp(t *testing.T) {
	op := FuncOp{N: 2, F: func(dst, src []float64) { dst[0], dst[1] = 2*src[0], 3*src[1] }}
	if op.Dim() != 2 {
		t.Fatal("dim")
	}
	dst := make([]float64, 2)
	op.Apply(dst, []float64{1, 1})
	if math.Abs(dst[0]-2) > 0 || math.Abs(dst[1]-3) > 0 {
		t.Fatal("apply")
	}
}
