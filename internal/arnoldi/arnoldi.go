// Package arnoldi implements Arnoldi/block-Krylov subspace construction
// over an abstract operator, with modified Gram–Schmidt and a second
// reorthogonalization pass (§2.3 of the paper: "the subspace basis
// construction is popularly done through the Arnoldi iteration").
//
// The operators fed in here are shift-inverted: Apply computes
// (s0·I − A)⁻¹·x through the structured solvers, so the generated basis
// spans the moment space of the transfer function about s0.
package arnoldi

import (
	"avtmor/internal/mat"
	"avtmor/internal/solver"
)

// Op is a linear operator on R^Dim.
type Op interface {
	Dim() int
	// Apply computes dst = Op·src; dst and src do not alias.
	Apply(dst, src []float64)
}

// FuncOp adapts a closure to Op.
type FuncOp struct {
	N int
	F func(dst, src []float64)
}

// Dim returns the operator dimension.
func (f FuncOp) Dim() int { return f.N }

// Apply invokes the closure.
func (f FuncOp) Apply(dst, src []float64) { f.F(dst, src) }

// BatchOp is an Op that can apply itself to a whole block of vectors at
// once. Krylov detects it and pushes each frontier through one
// ApplyBatch call instead of per-column Apply calls, so shift-inverted
// operators amortize their factor traversal across the block (the
// multi-RHS substitution win). ApplyBatch must be column-wise
// equivalent to Apply — same values, bit for bit — which keeps the
// generated basis independent of the batching decision.
type BatchOp interface {
	Op
	// ApplyBatch computes dst[c] = Op·src[c] for every column; dst
	// columns must not alias src columns.
	ApplyBatch(dst, src [][]float64)
}

// SolveOp adapts a solver.Factorization to Op: every Apply is one
// back-solve, so Krylov over SolveOp spans the shift-inverted moment
// space of the factored pencil. (The moment generators of
// internal/assoc now drive their factorizations through their own
// block-size-aware batching; SolveOp remains the generic adapter for
// any Factorization-backed subspace iteration.) It implements BatchOp
// through the factorization's block substitution — note ApplyBatch
// pushes the whole frontier as one block, uncapped.
type SolveOp struct{ F solver.Factorization }

// Dim returns the factorization dimension.
func (s SolveOp) Dim() int { return s.F.N() }

// Apply computes dst = A⁻¹·src.
func (s SolveOp) Apply(dst, src []float64) { s.F.Solve(dst, src) }

// ApplyBatch computes dst[c] = A⁻¹·src[c] through one SolveBatch.
func (s SolveOp) ApplyBatch(dst, src [][]float64) {
	for c := range dst {
		copy(dst[c], src[c])
	}
	s.F.SolveBatch(dst)
}

// MatOp adapts a dense matrix to Op.
type MatOp struct{ M *mat.Dense }

// Dim returns the matrix dimension.
func (m MatOp) Dim() int { return m.M.R }

// Apply computes dst = M·src.
func (m MatOp) Apply(dst, src []float64) { m.M.MulVec(dst, src) }

// Result carries the output of a Krylov run.
type Result struct {
	// V is the orthonormal basis, Dim × k (k ≤ steps·blockWidth after
	// deflation). Nil when everything deflated.
	V *mat.Dense
	// Deflated counts start or iterate vectors dropped as numerically
	// dependent.
	Deflated int
}

// defaultDropTol is the relative deflation threshold for MGS.
const defaultDropTol = 1e-10

// Krylov builds an orthonormal basis of the block Krylov subspace
// span{B, Op·B, …, Op^{steps-1}·B} where the columns of B are the start
// block. Each new candidate is orthogonalized (two MGS passes) against the
// existing basis and deflated when its remainder falls below dropTol times
// its pre-projection norm. dropTol ≤ 0 selects the default.
func Krylov(op Op, start [][]float64, steps int, dropTol float64) *Result {
	if dropTol <= 0 {
		dropTol = defaultDropTol
	}
	n := op.Dim()
	res := &Result{}
	var basis [][]float64
	// Frontier: the most recent orthonormalized image of each start
	// column that survived deflation.
	frontier := make([][]float64, 0, len(start))
	for _, b := range start {
		if len(b) != n {
			panic("arnoldi: start vector length mismatch")
		}
		if q, ok := orthoAdd(&basis, b, dropTol); ok {
			frontier = append(frontier, q)
		} else {
			res.Deflated++
		}
	}
	bop, batching := op.(BatchOp)
	tmp := make([]float64, n)
	var block [][]float64 // batched images of the frontier, lazily sized
	for step := 1; step < steps && len(frontier) > 0; step++ {
		next := frontier[:0:0]
		if batching && len(frontier) > 1 {
			// Apply the whole frontier in one batched operator call,
			// then orthogonalize in the same order as the scalar path —
			// per-column values are identical, so the basis is too.
			for len(block) < len(frontier) {
				block = append(block, make([]float64, n))
			}
			bop.ApplyBatch(block[:len(frontier)], frontier)
			for i := range frontier {
				if q, ok := orthoAdd(&basis, block[i], dropTol); ok {
					next = append(next, q)
				} else {
					res.Deflated++
				}
			}
		} else {
			for _, f := range frontier {
				op.Apply(tmp, f)
				if q, ok := orthoAdd(&basis, tmp, dropTol); ok {
					next = append(next, q)
				} else {
					res.Deflated++
				}
			}
		}
		frontier = next
	}
	if len(basis) > 0 {
		v := mat.NewDense(n, len(basis))
		for j, q := range basis {
			v.SetCol(j, q)
		}
		res.V = v
	}
	return res
}

// orthoAdd orthogonalizes w against basis (two MGS passes); on success the
// normalized vector is appended and returned.
func orthoAdd(basis *[][]float64, w []float64, dropTol float64) ([]float64, bool) {
	orig := mat.Norm2(w)
	if orig == 0 {
		return nil, false
	}
	v := mat.CopyVec(w)
	for pass := 0; pass < 2; pass++ {
		for _, q := range *basis {
			mat.Axpy(-mat.Dot(q, v), q, v)
		}
	}
	rem := mat.Norm2(v)
	if rem <= dropTol*orig {
		return nil, false
	}
	mat.ScaleVec(1/rem, v)
	*basis = append(*basis, v)
	return v, true
}

// Decomposition is a classical single-vector Arnoldi factorization
// A·V_k = V_{k+1}·H̃ with H̃ ∈ R^{(k+1)×k} upper Hessenberg; used for
// validation and spectral diagnostics.
type Decomposition struct {
	V *mat.Dense // n×(k+1)
	H *mat.Dense // (k+1)×k
	K int        // completed steps (may stop early on happy breakdown)
}

// Decompose runs k steps of single-vector Arnoldi from b.
func Decompose(op Op, b []float64, k int) *Decomposition {
	n := op.Dim()
	v := mat.NewDense(n, k+1)
	h := mat.NewDense(k+1, k)
	q := mat.CopyVec(b)
	nb := mat.Norm2(q)
	if nb == 0 {
		panic("arnoldi: zero start vector")
	}
	mat.ScaleVec(1/nb, q)
	v.SetCol(0, q)
	w := make([]float64, n)
	for j := 0; j < k; j++ {
		op.Apply(w, v.Col(j))
		for i := 0; i <= j; i++ {
			qi := v.Col(i)
			hij := mat.Dot(qi, w)
			h.Set(i, j, hij)
			mat.Axpy(-hij, qi, w)
		}
		// Reorthogonalization pass for robustness.
		for i := 0; i <= j; i++ {
			qi := v.Col(i)
			c := mat.Dot(qi, w)
			h.Add(i, j, c)
			mat.Axpy(-c, qi, w)
		}
		nw := mat.Norm2(w)
		h.Set(j+1, j, nw)
		if nw < 1e-13 {
			return &Decomposition{V: v.Slice(0, n, 0, j+2), H: h.Slice(0, j+2, 0, j+1), K: j + 1}
		}
		nq := mat.CopyVec(w)
		mat.ScaleVec(1/nw, nq)
		v.SetCol(j+1, nq)
	}
	return &Decomposition{V: v, H: h, K: k}
}
