package exper

import (
	"testing"

	"avtmor/internal/circuits"
	"avtmor/internal/core"
	"avtmor/internal/schur"
)

// Diagnostic (skipped in -short): candidate/deflation profile and ROM
// spectral abscissae on the experiment workloads.
func TestDiagnosticReductionProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	maxRe := func(m interface {
		Eigenvalues() []complex128
	}) float64 {
		worst := -1e300
		for _, e := range m.Eigenvalues() {
			if real(e) > worst {
				worst = real(e)
			}
		}
		return worst
	}
	_ = maxRe
	for _, tc := range []struct {
		name string
		w    *circuits.Workload
		opt  core.Options
	}{
		{"fig3-ntl70", circuits.NTLCurrent(70), core.Options{K1: 6, K2: 3, K3: 2}},
		{"fig4-rf173", circuits.RFReceiver(), core.Options{K1: 4, K2: 2}},
	} {
		for _, drop := range []float64{1e-8, 1e-12} {
			opt := tc.opt
			opt.S0 = tc.w.S0
			opt.DropTol = drop
			p, err := core.Reduce(tc.w.Sys, opt)
			if err != nil {
				t.Fatal(err)
			}
			nm, err := core.ReduceNORM(tc.w.Sys, opt)
			if err != nil {
				t.Fatal(err)
			}
			sp, _ := schur.Decompose(p.Sys.G1)
			sn, _ := schur.Decompose(nm.Sys.G1)
			worst := func(s *schur.Schur) float64 {
				w := -1e300
				for _, e := range s.Eigenvalues() {
					if real(e) > w {
						w = real(e)
					}
				}
				return w
			}
			t.Logf("%s drop=%g: prop cand=%d q=%d maxRe=%.3g | norm cand=%d q=%d maxRe=%.3g",
				tc.name, drop, p.Stats.Candidates, p.Order(), worst(sp),
				nm.Stats.Candidates, nm.Order(), worst(sn))
		}
	}
}
